// lobster_report — offline analysis of a Lobster DB journal (paper §5).
//
// "All of these records are stored in the Lobster DB, so that it becomes
// easy to generate histograms and time lines showing the distribution of
// behavior at each stage of the execution."  This tool is that drill-down:
// point it at a journal written with Db::save_journal() and it prints the
// workflow state, per-segment time distributions, the runtime breakdown,
// and the §5 diagnosis.
//
// Usage: lobster_report <journal.jsonl> [--csv]
//        lobster_report --trace <trace.jsonl>
//   --csv    additionally dump the task table as CSV to stdout
//   --trace  analyse a structured trace written by `lobster_sim --trace`
//            (or Engine::enable_tracing) instead of a DB journal: the file
//            is validated (well-formed JSON, monotone timestamps, balanced
//            begin/end spans — non-zero exit on failure, so CI can use this
//            as a smoke check), then the per-task end-event payloads are
//            replayed into a Monitor for the runtime breakdown and the §5
//            diagnosis, and the final counter plane is printed.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/db.hpp"
#include "core/monitor.hpp"
#include "core/trace_replay.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {

/// Counter-plane table, shared by the journal and trace reports (the
/// journal synthesises the same name->value shape via Db::counter_plane so
/// both paths render identically).
void print_counter_plane(
    const char* title,
    const std::vector<std::pair<std::string, double>>& counters) {
  if (counters.empty()) return;
  std::printf("\n%s:\n", title);
  util::Table table({"counter", "value"});
  for (const auto& [name, value] : counters) {
    // Casting a double >= 2^63 to long long is UB, so range-check before
    // treating the value as an integer; out-of-range counters fall through
    // to %.0f, which renders them exactly for any uint64-backed counter.
    const bool integral =
        std::floor(value) == value && std::fabs(value) < 9.2e18;
    if (integral) {
      table.row({name, util::Table::integer(static_cast<long long>(value))});
    } else if (std::floor(value) == value) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.0f", value);
      table.row({name, buf});
    } else {
      table.row({name, util::Table::num(value, 1)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

/// The Figure 8 table, shared by the journal and trace reports.
void print_breakdown_and_diagnosis(const core::Monitor& monitor) {
  const auto b = monitor.breakdown();
  std::puts("\nruntime breakdown (Figure 8 form):");
  util::Table breakdown({"phase", "time", "fraction"});
  const double total = b.total();
  auto frac = [total](double v) {
    return total > 0.0 ? util::Table::num(100.0 * v / total, 1) + " %" : "-";
  };
  breakdown.row({"Task CPU Time", util::format_duration(b.cpu), frac(b.cpu)});
  breakdown.row({"Task I/O Time", util::format_duration(b.io), frac(b.io)});
  breakdown.row({"Task Failed", util::format_duration(b.failed),
                 frac(b.failed)});
  breakdown.row({"WQ Stage In", util::format_duration(b.stage_in + b.other),
                 frac(b.stage_in + b.other)});
  breakdown.row({"WQ Stage Out", util::format_duration(b.stage_out),
                 frac(b.stage_out)});
  std::fputs(breakdown.str().c_str(), stdout);

  std::puts("\ndiagnosis (paper SS5 rules):");
  const auto diags = monitor.diagnose();
  if (diags.empty()) std::puts("  no bottlenecks detected");
  for (const auto& d : diags)
    std::printf("  [%.2f] %s\n         -> %s\n", d.severity, d.symptom.c_str(),
                d.advice.c_str());
}

int report_trace(const std::string& path) {
  std::vector<util::TraceEvent> events;
  try {
    events = util::read_trace_jsonl(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const std::string problem = util::validate_trace(events);
  if (!problem.empty()) {
    std::fprintf(stderr, "error: invalid trace %s: %s\n", path.c_str(),
                 problem.c_str());
    return 1;
  }

  const core::TraceReplay replay = core::replay_trace(events);
  std::printf("== Lobster trace report: %s ==\n\n", path.c_str());
  std::printf("%zu events, %zu task records", events.size(),
              replay.records.size());
  if (replay.open_spans > 0)
    std::printf(" (%zu spans still open — truncated run)", replay.open_spans);
  std::puts("");

  core::Monitor monitor(600.0);
  std::uint64_t tasklets = 0;
  for (const auto& rec : replay.records) {
    monitor.on_task_finished(rec);
    if (rec.status == core::TaskStatus::Done &&
        rec.kind == core::TaskKind::Analysis)
      tasklets += rec.tasklets.size();
  }
  util::Table state({"result", "value"});
  state.row({"tasks seen", util::Table::integer(
                               static_cast<long long>(monitor.tasks_seen()))});
  state.row({"tasks failed / evicted",
             util::Table::integer(
                 static_cast<long long>(monitor.tasks_failed())) +
                 " / " +
                 util::Table::integer(
                     static_cast<long long>(monitor.tasks_evicted()))});
  state.row({"tasklets processed",
             util::Table::integer(static_cast<long long>(tasklets))});
  std::fputs(state.str().c_str(), stdout);

  print_breakdown_and_diagnosis(monitor);

  print_counter_plane("final counter plane", replay.final_counters);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <journal.jsonl> [--csv]\n"
                 "       %s --trace <trace.jsonl>\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "--trace") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --trace <trace.jsonl>\n", argv[0]);
      return 2;
    }
    return report_trace(argv[2]);
  }
  const std::string path = argv[1];
  const bool want_csv = argc > 2 && std::strcmp(argv[2], "--csv") == 0;

  core::Db db;
  try {
    db = core::Db::load_journal(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("== Lobster DB report: %s ==\n\n", path.c_str());

  // ---- workflow state --------------------------------------------------------
  util::Table state({"tasklet status", "count"});
  for (const auto& [status, n] : db.tasklet_status_counts())
    state.row({core::to_string(status),
               util::Table::integer(static_cast<long long>(n))});
  std::fputs(state.str().c_str(), stdout);

  util::Table tasks({"task status", "count"});
  for (const auto& [status, n] : db.task_status_counts())
    tasks.row({core::to_string(status),
               util::Table::integer(static_cast<long long>(n))});
  std::fputs(tasks.str().c_str(), stdout);

  // ---- per-segment totals -----------------------------------------------------
  const auto totals = db.segment_totals();
  double grand = 0.0;
  for (double v : totals) grand += v;
  util::Table segments({"segment", "total time", "fraction"});
  for (std::size_t s = 0; s < core::kNumSegments; ++s) {
    segments.row(
        {core::to_string(static_cast<core::Segment>(s)),
         util::format_duration(totals[s]),
         grand > 0.0 ? util::Table::num(100.0 * totals[s] / grand, 1) + " %"
                     : "-"});
  }
  segments.row({"(lost to eviction)", util::format_duration(db.total_lost_time()),
                ""});
  std::fputs(segments.str().c_str(), stdout);

  // ---- segment histograms ------------------------------------------------------
  for (const auto segment :
       {core::Segment::EnvSetup, core::Segment::Execute,
        core::Segment::StageOut}) {
    // Range heuristic: four times the per-task mean of this segment.
    const double mean =
        totals[static_cast<std::size_t>(segment)] /
        static_cast<double>(std::max<std::size_t>(1, db.num_tasks()));
    const auto h = db.segment_histogram(segment, 12, std::max(1.0, 4.0 * mean));
    std::printf("\nsegment '%s' duration distribution:\n",
                core::to_string(segment));
    std::fputs(h.ascii(40).c_str(), stdout);
  }

  // ---- reconstructed monitor + diagnosis ---------------------------------------
  core::Monitor monitor(600.0);
  for (std::uint64_t id = 1; id <= db.num_tasks(); ++id) {
    const auto& rec = db.task(id);
    if (rec.status == core::TaskStatus::Done ||
        rec.status == core::TaskStatus::Failed ||
        rec.status == core::TaskStatus::Evicted)
      monitor.on_task_finished(rec);
  }
  print_breakdown_and_diagnosis(monitor);

  // The journal's aggregates rendered in the trace plane's counter shape —
  // one renderer for both modes, so operators compare like with like.
  print_counter_plane("counter plane (from journal)", db.counter_plane());

  if (want_csv) {
    std::puts("\n-- task table (CSV) --");
    std::fputs(db.tasks_csv().c_str(), stdout);
  }
  return 0;
}

// lobster_compare — side-by-side run comparison and trace diff (the
// operator plane's "where did the time go" tool).
//
// The paper's operators tuned the facility by running a configuration
// twice and comparing dashboards; this tool does the comparison
// numerically.  Each positional argument is one run, given either as
//
//   *.jsonl  a structured trace written by `lobster_sim --trace` or
//            Engine::enable_tracing — validated, then replayed into
//            TaskRecords (no simulation executed), or
//   *.ini    a scenario file (the lobster_sim grammar, shared via
//            lobsim::spec_from_config) — all scenarios execute through ONE
//            Campaign, so `--jobs M` runs them concurrently and results
//            stay in submission order.
//
// Modes (combinable):
//   (default)            side-by-side metric table, runs as columns
//   --diff               trace-diff of exactly two runs: per-bucket wall
//                        seconds (7 wrapper segments + "failed" + "lost",
//                        the Figure 8 accounting) diffed between the runs,
//                        movers ranked by |delta| with share-of-movement
//   --expect-mover NAME  exit 1 unless the top --diff mover is NAME (CI
//                        gates assert *why* a mitigation won, not just
//                        that it won)
//   --json / --csv       machine-readable output on stdout (JSON is plain
//                        RFC 8259, `python3 -m json.tool` clean)
//   --trace-dir DIR      run mode: write each scenario's trace into DIR
//                        and replay it for bucket attribution (--diff on
//                        scenarios requires this — the buckets live in the
//                        trace, not in the scalar RunStats)
//   --seeds N / --jobs M seed sweep / worker threads for run mode; the
//                        table and diff use each scenario's first seed
//
// Labels are input basenames (extension stripped), so
// `lobster_compare off.jsonl on.jsonl --diff` reads as "off -> on".
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/trace_diff.hpp"
#include "core/trace_replay.hpp"
#include "lobsim/campaign.hpp"
#include "lobsim/spec_config.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {

struct Options {
  std::vector<std::string> inputs;
  bool diff = false;
  bool json = false;
  bool csv = false;
  std::string expect_mover;
  std::string trace_dir;
  std::size_t seeds = 1;
  std::size_t jobs = 1;
};

/// One run loaded onto the attribution plane.  Scenario runs without a
/// --trace-dir carry headline metrics only (`has_records` false).
struct LoadedRun {
  std::string label;
  core::RunAttribution attr;
  std::vector<core::TaskRecord> records;
  bool has_records = false;
};

std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Trace mode: validate + replay an on-disk trace into the attribution
/// plane.  Throws on unreadable or malformed traces.
LoadedRun load_trace(const std::string& path, const std::string& label) {
  const std::vector<util::TraceEvent> events = util::read_trace_jsonl(path);
  const std::string problem = util::validate_trace(events);
  if (!problem.empty())
    throw std::runtime_error("invalid trace " + path + ": " + problem);
  core::TraceReplay replay = core::replay_trace(events);
  LoadedRun run;
  run.label = label;
  run.records = std::move(replay.records);
  run.has_records = true;
  run.attr = core::attribute_records(run.records, label);
  return run;
}

/// Run mode fallback when no trace hit disk: headline metrics from the
/// scalar RunStats, buckets left empty (the table skips them).
LoadedRun stats_only_run(const std::string& label,
                         const lobsim::RunStats& stats) {
  LoadedRun run;
  run.label = label;
  run.attr.label = label;
  run.attr.tasks = stats.tasks_completed + stats.tasks_failed +
                   stats.tasks_evicted + stats.merge_tasks_completed;
  run.attr.failures = stats.tasks_failed + stats.tasks_evicted;
  run.attr.tasklets_processed = stats.tasklets_processed;
  run.attr.makespan = stats.makespan;
  if (run.attr.makespan > 0.0)
    run.attr.goodput = static_cast<double>(run.attr.tasklets_processed) /
                       (run.attr.makespan / 3600.0);
  return run;
}

// ---- output: human tables ---------------------------------------------------

void print_side_by_side(const std::vector<LoadedRun>& runs) {
  std::vector<std::string> headers = {"metric"};
  for (const auto& r : runs) headers.push_back(r.label);
  util::Table table(headers);
  auto row = [&](const char* metric, auto&& cell) {
    std::vector<std::string> cells = {metric};
    for (const auto& r : runs) cells.push_back(cell(r));
    table.row(cells);
  };
  row("makespan", [](const LoadedRun& r) {
    return util::format_duration(r.attr.makespan);
  });
  row("goodput (tasklets/h)", [](const LoadedRun& r) {
    return util::Table::num(r.attr.goodput, 1);
  });
  row("tasks", [](const LoadedRun& r) {
    return util::Table::integer(static_cast<long long>(r.attr.tasks));
  });
  row("tasks failed+evicted", [](const LoadedRun& r) {
    return util::Table::integer(static_cast<long long>(r.attr.failures));
  });
  row("tasklets processed", [](const LoadedRun& r) {
    return util::Table::integer(
        static_cast<long long>(r.attr.tasklets_processed));
  });
  bool any_buckets = false;
  for (const auto& r : runs) any_buckets |= r.has_records;
  if (any_buckets) {
    for (std::size_t bkt = 0; bkt < core::kNumDiffBuckets; ++bkt) {
      const std::string name =
          std::string("wall: ") + core::diff_bucket_name(bkt);
      row(name.c_str(), [bkt](const LoadedRun& r) {
        return r.has_records
                   ? util::format_duration(r.attr.bucket_seconds[bkt])
                   : std::string("-");
      });
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_diff(const core::TraceDiff& diff) {
  std::printf("\ntrace diff: %s -> %s\n", diff.a.label.c_str(),
              diff.b.label.c_str());
  std::printf("  makespan %s -> %s (%+.1f s)\n",
              util::format_duration(diff.a.makespan).c_str(),
              util::format_duration(diff.b.makespan).c_str(),
              diff.makespan_delta);
  std::printf("  goodput  %.1f -> %.1f tasklets/h (%+.1f)\n", diff.a.goodput,
              diff.b.goodput, diff.goodput_delta);
  std::puts("\nmovers (wall seconds per bucket, |delta| descending):");
  util::Table movers({"bucket", "before", "after", "delta", "share"});
  for (const auto& m : diff.movers)
    movers.row({m.bucket, util::format_duration(m.before),
                util::format_duration(m.after),
                (m.delta < 0 ? "-" : "+") +
                    util::format_duration(std::fabs(m.delta)),
                util::Table::num(100.0 * m.share, 1) + " %"});
  std::fputs(movers.str().c_str(), stdout);
}

// ---- output: machine formats ------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void print_json(const std::vector<LoadedRun>& runs,
                const core::TraceDiff* diff) {
  std::printf("{\n  \"runs\": [");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::printf("%s\n    {\"label\": \"%s\", \"tasks\": %llu, "
                "\"failures\": %llu, \"tasklets_processed\": %llu, "
                "\"makespan\": %s, \"goodput\": %s",
                i ? "," : "", json_escape(r.label).c_str(),
                static_cast<unsigned long long>(r.attr.tasks),
                static_cast<unsigned long long>(r.attr.failures),
                static_cast<unsigned long long>(r.attr.tasklets_processed),
                json_num(r.attr.makespan).c_str(),
                json_num(r.attr.goodput).c_str());
    if (r.has_records) {
      std::printf(", \"buckets\": {");
      for (std::size_t bkt = 0; bkt < core::kNumDiffBuckets; ++bkt)
        std::printf("%s\"%s\": %s", bkt ? ", " : "",
                    core::diff_bucket_name(bkt),
                    json_num(r.attr.bucket_seconds[bkt]).c_str());
      std::printf("}");
    }
    std::printf("}");
  }
  std::printf("\n  ]");
  if (diff) {
    std::printf(",\n  \"diff\": {\"from\": \"%s\", \"to\": \"%s\", "
                "\"makespan_delta\": %s, \"goodput_delta\": %s, "
                "\"movers\": [",
                json_escape(diff->a.label).c_str(),
                json_escape(diff->b.label).c_str(),
                json_num(diff->makespan_delta).c_str(),
                json_num(diff->goodput_delta).c_str());
    for (std::size_t i = 0; i < diff->movers.size(); ++i) {
      const auto& m = diff->movers[i];
      std::printf("%s\n    {\"bucket\": \"%s\", \"before\": %s, "
                  "\"after\": %s, \"delta\": %s, \"share\": %s}",
                  i ? "," : "", json_escape(m.bucket).c_str(),
                  json_num(m.before).c_str(), json_num(m.after).c_str(),
                  json_num(m.delta).c_str(), json_num(m.share).c_str());
    }
    std::printf("\n  ]}");
  }
  std::printf("\n}\n");
}

void print_csv(const std::vector<LoadedRun>& runs,
               const core::TraceDiff* diff) {
  std::printf("label,tasks,failures,tasklets_processed,makespan_s,"
              "goodput_per_h");
  for (std::size_t bkt = 0; bkt < core::kNumDiffBuckets; ++bkt)
    std::printf(",%s_s", core::diff_bucket_name(bkt));
  std::puts("");
  for (const auto& r : runs) {
    std::printf("%s,%llu,%llu,%llu,%.17g,%.17g", r.label.c_str(),
                static_cast<unsigned long long>(r.attr.tasks),
                static_cast<unsigned long long>(r.attr.failures),
                static_cast<unsigned long long>(r.attr.tasklets_processed),
                r.attr.makespan, r.attr.goodput);
    for (std::size_t bkt = 0; bkt < core::kNumDiffBuckets; ++bkt)
      std::printf(",%.17g", r.attr.bucket_seconds[bkt]);
    std::puts("");
  }
  if (diff) {
    std::puts("");
    std::puts("bucket,before_s,after_s,delta_s,share");
    for (const auto& m : diff->movers)
      std::printf("%s,%.17g,%.17g,%.17g,%.17g\n", m.bucket.c_str(), m.before,
                  m.after, m.delta, m.share);
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <run.jsonl|scenario.ini> [more runs...]\n"
               "          [--diff] [--expect-mover NAME] [--json] [--csv]\n"
               "          [--trace-dir DIR] [--seeds N] [--jobs M]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--diff") {
      opt.diff = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--expect-mover") {
      opt.expect_mover = value("--expect-mover");
    } else if (arg == "--trace-dir") {
      opt.trace_dir = value("--trace-dir");
    } else if (arg == "--seeds") {
      opt.seeds = static_cast<std::size_t>(
          std::strtoull(value("--seeds").c_str(), nullptr, 10));
      if (opt.seeds == 0) {
        std::fprintf(stderr, "error: --seeds must be >= 1\n");
        return 2;
      }
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<std::size_t>(
          std::strtoull(value("--jobs").c_str(), nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (opt.inputs.size() < 2) {
    std::fprintf(stderr, "error: need at least two runs to compare\n");
    return usage(argv[0]);
  }
  if (opt.diff && opt.inputs.size() != 2) {
    std::fprintf(stderr, "error: --diff compares exactly two runs (got %zu)\n",
                 opt.inputs.size());
    return 2;
  }
  if (!opt.expect_mover.empty() && !opt.diff) {
    std::fprintf(stderr, "error: --expect-mover requires --diff\n");
    return 2;
  }

  std::vector<LoadedRun> runs;
  try {
    // Partition inputs: traces replay directly; scenarios queue into one
    // Campaign and execute together (order restored by submission index).
    runs.resize(opt.inputs.size());
    lobsim::Campaign campaign(opt.jobs);
    std::vector<std::size_t> scenario_slots;
    for (std::size_t i = 0; i < opt.inputs.size(); ++i) {
      const std::string& path = opt.inputs[i];
      const std::string label = basename_no_ext(path);
      if (ends_with(path, ".jsonl")) {
        runs[i] = load_trace(path, label);
        continue;
      }
      if (!ends_with(path, ".ini"))
        throw std::runtime_error("cannot tell what '" + path +
                                 "' is: expected *.jsonl (trace) or *.ini "
                                 "(scenario)");
      lobsim::RunSpec spec = lobsim::spec_from_config(util::Config::load(path));
      spec.label = label;
      if (!opt.trace_dir.empty()) {
        spec.trace_path = opt.trace_dir + "/" + label + ".jsonl";
        spec.trace_format = util::TraceFormat::Jsonl;
      }
      // Extra seeds sharpen the aggregate but the comparison plane uses
      // each scenario's first (base-seed) run for determinism.
      std::vector<std::uint64_t> seeds;
      for (std::size_t s = 0; s < opt.seeds; ++s)
        seeds.push_back(spec.seed + s);
      if (opt.seeds > 1) {
        // Only the first seed keeps the exact trace path; the rest would
        // overwrite it, so they run untraced.
        lobsim::RunSpec first = spec;
        campaign.add(std::move(first));
        for (std::size_t s = 1; s < seeds.size(); ++s) {
          lobsim::RunSpec rest = spec;
          rest.seed = seeds[s];
          rest.trace_path.clear();
          campaign.add(std::move(rest));
        }
      } else {
        campaign.add(spec);
      }
      scenario_slots.push_back(i);
    }
    if (!scenario_slots.empty()) {
      std::fprintf(stderr, "running %zu scenario%s (%zu seed%s, %zu job%s)\n",
                   scenario_slots.size(),
                   scenario_slots.size() == 1 ? "" : "s", opt.seeds,
                   opt.seeds == 1 ? "" : "s", campaign.jobs(),
                   campaign.jobs() == 1 ? "" : "s");
      const auto& results = campaign.run();
      // Submission order: per scenario, one base-seed run then opt.seeds-1
      // sweep runs; only the base-seed run feeds the comparison.
      const std::size_t per_scenario = opt.seeds;
      for (std::size_t k = 0; k < scenario_slots.size(); ++k) {
        const lobsim::RunResult& r = results[k * per_scenario];
        if (!r.ok())
          throw std::runtime_error("run '" + r.label + "' failed: " + r.error);
        const std::size_t slot = scenario_slots[k];
        const std::string label = basename_no_ext(opt.inputs[slot]);
        if (!opt.trace_dir.empty()) {
          runs[slot] =
              load_trace(opt.trace_dir + "/" + label + ".jsonl", label);
        } else {
          runs[slot] = stats_only_run(label, r.stats);
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  core::TraceDiff diff;
  const core::TraceDiff* diff_ptr = nullptr;
  if (opt.diff) {
    if (!runs[0].has_records || !runs[1].has_records) {
      std::fprintf(stderr,
                   "error: --diff needs per-task records; for scenario "
                   "inputs pass --trace-dir DIR so the traces hit disk\n");
      return 2;
    }
    diff = core::diff_task_records(runs[0].records, runs[1].records,
                                   runs[0].label, runs[1].label);
    diff_ptr = &diff;
  }

  if (opt.json) {
    print_json(runs, diff_ptr);
  } else if (opt.csv) {
    print_csv(runs, diff_ptr);
  } else {
    print_side_by_side(runs);
    if (diff_ptr) print_diff(*diff_ptr);
  }

  if (!opt.expect_mover.empty()) {
    const std::string& top = diff.movers.front().bucket;
    if (top != opt.expect_mover) {
      std::fprintf(stderr,
                   "FAIL: top mover is '%s' (expected '%s') — the delta is "
                   "not attributed where claimed\n",
                   top.c_str(), opt.expect_mover.c_str());
      return 1;
    }
    std::fprintf(stderr, "top mover '%s' matches expectation\n", top.c_str());
  }
  return 0;
}

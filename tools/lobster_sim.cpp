// lobster_sim — run a cluster-scale Lobster scenario from a configuration
// file and report the outcome.  This is the "plan before you burn CPU" CLI:
// describe the opportunistic cluster and the workflow in INI form, and the
// DES engine predicts makespan, efficiency, failure behaviour and the §5
// diagnosis.
//
// Usage: lobster_sim <scenario.ini> [--seeds N] [--jobs M]
//                    [--availability SPEC] [--advisor on|off]
//                    [--trace PATH] [--trace-format jsonl|chrome]
//
// With --seeds N the scenario becomes a campaign: N runs seeded
// base..base+N-1 execute across M worker threads (lobsim::Campaign), the
// first run is reported in full, and a mean +/- stddev table summarises the
// sweep.  Aggregates are submission-ordered, so --jobs does not change them.
// --availability overrides the scenario's availability model (what-if: the
// same workflow under a harsher climate).  --advisor on|off overrides the
// scenario's `[advisor]` section (the online mitigation loop; see
// src/lobsim/advisor.hpp).
//
// --trace PATH writes a structured trace of the run: per-task lifecycle
// spans, segment spans and the final counter snapshot.  jsonl is the
// line-oriented analysis format (feed it to `lobster_report --trace`);
// chrome is a Chrome-trace-event JSON loadable in Perfetto / about:tracing.
// A single seed writes exactly PATH; a seed sweep treats PATH (minus its
// extension) as a prefix and writes one `<prefix>-run<I>-seed<S>` file per
// run.  The `[trace]` scenario section (`file`, `format`) sets the same
// thing; the flags override it.
//
// Example scenario file:
//
//   [cluster]
//   cores = 5000
//   cores_per_worker = 8
//   ramp = 1h
//   availability = weibull           # or weibull:scale=8,shape=0.8 /
//                                    # trace:/path/intervals.csv /
//                                    # diurnal:amplitude=0.6,peak=14 /
//                                    # adversarial-burst:period=6h,fraction=0.5
//   availability_hours = 8           # legacy shorthand for the scale
//   evictions = true
//   uplink = 10          # Gbit/s
//   squids = 1
//   chirp_connections = 24
//
//   [workflow]
//   tasklets = 30000
//   tasklets_per_task = 6
//   tasklet_cpu = 10m
//   input_per_tasklet = 350MB
//   read_fraction = 0.3
//   output_per_tasklet = 20MB
//   access = stream            # or stage
//   merge = interleaved        # or sequential / hadoop
//   dispatch = fifo            # or tail-shrink / site-aware / lifetime /
//                              # partitioned / stealing
//   lifetime_safety = 0.25     # lifetime dispatch: fraction of the expected
//                              # remaining worker lifetime a task may fill
//   lifetime_max_tasklets = 24 # lifetime dispatch: per-task cap (0 = 4x
//                              # tasklets_per_task)
//   steal_penalty_factor = 0.5 # stealing dispatch: input fraction a stolen
//                              # task re-stages over the thief's WAN uplink
//   steal_min_backlog = 12     # stealing dispatch: smallest victim backlog
//                              # worth stealing from (0 = 2x
//                              # tasklets_per_task)
//
//   [failures]
//   outage_start = 3h          # optional WAN outage window
//   outage_duration = 30m
//
//   [run]
//   time_cap = 30d             # simulated-time budget; unfinished runs are
//                              # reported as INCOMPLETE, not as finished
//
//   [advisor]
//   enabled = true             # online mitigation loop (default off)
//   period = 5m                # observation window / tick period
//   failed_fraction = 0.2      # thresholds; see core::AdvisorThresholds
//   proxy_waste_fraction = 0.05 # squid thrash-bytes fraction that throttles
//   throttle_share = 0.3       # dispatch share under squid/chirp overload
//   probe_share = 0.05         # probe trickle during an outage
//   restore_step = 0.25        # share added per clean tick while restoring
//
//   [trace]
//   file = run-trace.jsonl     # where the structured trace goes
//   format = jsonl             # or chrome (Perfetto-loadable)
#include <cstdio>
#include <string>

#include "lobsim/campaign.hpp"
#include "lobsim/spec_config.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: %s <scenario.ini> [--seeds N] [--jobs M] "
                 "[--availability SPEC] [--advisor on|off] [--trace PATH] "
                 "[--trace-format jsonl|chrome]\n",
                 argv[0]);
    return 2;
  }

  util::Config cfg;
  try {
    cfg = util::Config::load(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  lobsim::RunSpec spec;
  try {
    spec = lobsim::spec_from_config(cfg);
    // Flag overrides on top of the scenario (what-if knobs).  Values are
    // consumed here so a value that itself starts with "--" (or a later
    // scan such as parse_campaign_flags) is never re-read as a flag.
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg != "--availability" && arg != "--advisor") continue;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--availability") {
        spec.cluster.availability = lobsim::parse_availability_spec(value);
      } else if (value == "on") {
        spec.advisor.enabled = true;
      } else if (value == "off") {
        spec.advisor.enabled = false;
      } else {
        std::fprintf(stderr, "error: --advisor takes on|off, got '%s'\n",
                     value.c_str());
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto& cluster = spec.cluster;
  const auto& workload = spec.workload;

  // Trace destination: `[trace]` section first, then the flags on top
  // (CLI wins).  The format may be given on its own; it then applies to the
  // INI-configured file.
  std::string trace_path = cfg.get_string("trace", "file", "");
  util::TraceFormat trace_format = util::TraceFormat::Jsonl;
  try {
    trace_format =
        util::parse_trace_format(cfg.get_string("trace", "format", "jsonl"));
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg != "--trace" && arg != "--trace-format") continue;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return 2;
      }
      // Consume the value here so later scans never re-read it as a flag.
      if (arg == "--trace")
        trace_path = argv[++i];
      else
        trace_format = util::parse_trace_format(argv[++i]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cfg.get_int("workflow", "seed", 2015));
  lobsim::CampaignOptions opts;
  try {
    opts = lobsim::parse_campaign_flags(
        argc, argv, base_seed, 1,
        {"--availability", "--advisor", "--trace", "--trace-format"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("simulating %zu cores (%s availability), %llu tasklets "
              "(%s each), %zu seed%s",
              cluster.target_cores,
              cluster.evictions ? lobsim::to_string(cluster.availability.kind)
                                : "none",
              static_cast<unsigned long long>(workload.num_tasklets),
              util::format_duration(workload.tasklet_cpu_mean).c_str(),
              opts.seeds.size(), opts.seeds.size() == 1 ? "" : "s");
  if (opts.seeds.size() > 1) std::printf(" x %zu jobs", opts.jobs);
  std::puts("...");

  lobsim::Campaign campaign(opts.jobs);
  campaign.keep_metrics(true);  // the report wants the first run's monitor
  if (!trace_path.empty()) {
    if (opts.seeds.size() == 1) {
      // One run: honour the path exactly.
      spec.trace_path = trace_path;
      spec.trace_format = trace_format;
      std::printf("tracing to %s (%s)\n", trace_path.c_str(),
                  util::to_string(trace_format));
    } else {
      // A sweep: strip the extension (if the conventional one) and write
      // one trace per run under that prefix.
      std::string prefix = trace_path;
      const std::string ext = util::trace_extension(trace_format);
      if (prefix.size() > ext.size() &&
          prefix.compare(prefix.size() - ext.size(), ext.size(), ext) == 0)
        prefix.resize(prefix.size() - ext.size());
      campaign.trace_to(prefix, trace_format);
      std::printf("tracing each run to %s-run<I>-seed<S>%s (%s)\n",
                  prefix.c_str(), ext.c_str(), util::to_string(trace_format));
    }
  }
  campaign.add_seed_sweep(spec, opts.seeds);
  campaign.run();

  const auto& first = campaign.results().front();
  if (!first.ok()) {
    std::fprintf(stderr, "error: %s\n", first.error.c_str());
    return 1;
  }
  const auto& m = *first.metrics;
  const auto b = m.monitor.breakdown();
  const double total = b.total();

  if (!m.completed)
    std::printf("WARNING: INCOMPLETE at time cap (%s) — %llu tasklet%s still "
                "unprocessed; times below are lower bounds\n",
                util::format_duration(spec.time_cap).c_str(),
                static_cast<unsigned long long>(workload.num_tasklets -
                                                m.tasklets_processed),
                workload.num_tasklets - m.tasklets_processed == 1 ? "" : "s");

  util::Table table({"result", "value"});
  table.row({"makespan", m.completed
                             ? util::format_duration(m.makespan)
                             : "INCOMPLETE (>" +
                                   util::format_duration(spec.time_cap) + ")"});
  table.row({"peak concurrent tasks",
             util::Table::integer(static_cast<long long>(m.peak_running))});
  table.row({"tasklets processed",
             util::Table::integer(static_cast<long long>(m.tasklets_processed))});
  table.row({"tasks evicted / failed",
             util::Table::integer(static_cast<long long>(m.tasks_evicted)) +
                 " / " +
                 util::Table::integer(static_cast<long long>(m.tasks_failed))});
  table.row({"WAN streamed", util::format_bytes(m.bytes_streamed)});
  table.row({"staged out", util::format_bytes(m.bytes_staged_out)});
  table.row({"merged files", util::Table::integer(static_cast<long long>(
                                 m.merge_tasks_completed))});
  if (total > 0.0) {
    table.row({"CPU fraction", util::Table::num(100.0 * b.cpu / total, 1) + " %"});
    table.row({"I/O fraction", util::Table::num(100.0 * b.io / total, 1) + " %"});
    table.row({"failed fraction",
               util::Table::num(100.0 * b.failed / total, 1) + " %"});
  }
  std::fputs(table.str().c_str(), stdout);

  if (opts.seeds.size() > 1) {
    std::printf("\nacross %zu seeds (seed %llu..%llu):\n", opts.seeds.size(),
                static_cast<unsigned long long>(opts.seeds.front()),
                static_cast<unsigned long long>(opts.seeds.back()));
    const auto aggregates = campaign.aggregate();
    const auto& agg = aggregates.front();
    util::Table sweep({"metric", "mean", "stddev", "min", "max"});
    auto stat_row = [&sweep](const char* name, const util::RunningStats& s,
                             bool duration) {
      auto fmt = [duration](double v) {
        return duration ? util::format_duration(v) : util::Table::num(v, 1);
      };
      sweep.row({name, fmt(s.mean()), fmt(s.stddev()), fmt(s.min()),
                 fmt(s.max())});
    };
    stat_row("makespan", agg.makespan, true);
    stat_row("tasks evicted", agg.tasks_evicted, false);
    stat_row("tasks failed", agg.tasks_failed, false);
    stat_row("merged files", agg.merge_tasks, false);
    stat_row("peak running", agg.peak_running, false);
    std::fputs(sweep.str().c_str(), stdout);
    if (agg.incomplete > 0)
      std::printf("  (%llu of %llu runs INCOMPLETE at the %s time cap; "
                  "makespan rows are lower bounds)\n",
                  static_cast<unsigned long long>(agg.incomplete),
                  static_cast<unsigned long long>(agg.runs),
                  util::format_duration(spec.time_cap).c_str());
    if (agg.errors > 0)
      std::printf("  (%llu run%s failed)\n",
                  static_cast<unsigned long long>(agg.errors),
                  agg.errors == 1 ? "" : "s");
  }

  std::puts("\ndiagnosis:");
  const auto diags = m.monitor.diagnose();
  if (diags.empty()) std::puts("  no bottlenecks detected");
  for (const auto& d : diags)
    std::printf("  [%.2f] %s\n         -> %s\n", d.severity, d.symptom.c_str(),
                d.advice.c_str());
  return 0;
}

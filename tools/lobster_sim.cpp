// lobster_sim — run a cluster-scale Lobster scenario from a configuration
// file and report the outcome.  This is the "plan before you burn CPU" CLI:
// describe the opportunistic cluster and the workflow in INI form, and the
// DES engine predicts makespan, efficiency, failure behaviour and the §5
// diagnosis.
//
// Usage: lobster_sim <scenario.ini>
//
// Example scenario file:
//
//   [cluster]
//   cores = 5000
//   cores_per_worker = 8
//   ramp = 1h
//   availability_hours = 8
//   evictions = true
//   uplink = 10          # Gbit/s
//   squids = 1
//   chirp_connections = 24
//
//   [workflow]
//   tasklets = 30000
//   tasklets_per_task = 6
//   tasklet_cpu = 10m
//   input_per_tasklet = 350MB
//   read_fraction = 0.3
//   output_per_tasklet = 20MB
//   access = stream            # or stage
//   merge = interleaved        # or sequential / hadoop
//
//   [failures]
//   outage_start = 3h          # optional WAN outage window
//   outage_duration = 30m
#include <cstdio>
#include <string>

#include "lobsim/engine.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <scenario.ini>\n", argv[0]);
    return 2;
  }

  util::Config cfg;
  try {
    cfg = util::Config::load(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  lobsim::ClusterParams cluster;
  cluster.target_cores = static_cast<std::size_t>(
      cfg.get_int("cluster", "cores", 5000));
  cluster.cores_per_worker = static_cast<std::size_t>(
      cfg.get_int("cluster", "cores_per_worker", 8));
  cluster.ramp_seconds = cfg.get_duration("cluster", "ramp", 3600.0);
  cluster.availability_scale_hours =
      cfg.get_double("cluster", "availability_hours", 8.0);
  cluster.evictions = cfg.get_bool("cluster", "evictions", true);
  cluster.federation.campus_uplink_rate =
      util::gbit_per_s(cfg.get_double("cluster", "uplink", 10.0));
  cluster.num_squids =
      static_cast<std::size_t>(cfg.get_int("cluster", "squids", 1));
  cluster.chirp.max_connections =
      cfg.get_int("cluster", "chirp_connections", 24);

  lobsim::WorkloadParams workload;
  workload.num_tasklets = static_cast<std::uint64_t>(
      cfg.get_int("workflow", "tasklets", 30000));
  workload.tasklets_per_task = static_cast<std::uint32_t>(
      cfg.get_int("workflow", "tasklets_per_task", 6));
  workload.tasklet_cpu_mean =
      cfg.get_duration("workflow", "tasklet_cpu", 600.0);
  workload.tasklet_cpu_sigma = workload.tasklet_cpu_mean / 2.0;
  workload.tasklet_input_bytes =
      cfg.get_size("workflow", "input_per_tasklet", 350e6);
  workload.read_fraction = cfg.get_double("workflow", "read_fraction", 0.3);
  workload.tasklet_output_bytes =
      cfg.get_size("workflow", "output_per_tasklet", 20e6);

  const std::string access = cfg.get_string("workflow", "access", "stream");
  if (access == "stage")
    workload.access = core::DataAccessMode::Stage;
  else if (access != "stream") {
    std::fprintf(stderr, "error: unknown access mode '%s'\n", access.c_str());
    return 1;
  }
  const std::string merge = cfg.get_string("workflow", "merge", "interleaved");
  if (merge == "sequential")
    workload.merge_mode = core::MergeMode::Sequential;
  else if (merge == "hadoop")
    workload.merge_mode = core::MergeMode::Hadoop;
  else if (merge != "interleaved") {
    std::fprintf(stderr, "error: unknown merge mode '%s'\n", merge.c_str());
    return 1;
  }

  lobsim::Engine engine(cluster, workload,
                        static_cast<std::uint64_t>(
                            cfg.get_int("workflow", "seed", 2015)));
  const double outage_start = cfg.get_duration("failures", "outage_start", 0.0);
  const double outage_duration =
      cfg.get_duration("failures", "outage_duration", 0.0);
  if (outage_start > 0.0 && outage_duration > 0.0)
    engine.schedule_outage(outage_start, outage_duration);

  std::printf("simulating %zu cores, %llu tasklets (%s each)...\n",
              cluster.target_cores,
              static_cast<unsigned long long>(workload.num_tasklets),
              util::format_duration(workload.tasklet_cpu_mean).c_str());
  const auto& m = engine.run(30.0 * 86400.0);
  const auto b = m.monitor.breakdown();
  const double total = b.total();

  util::Table table({"result", "value"});
  table.row({"makespan", util::format_duration(m.makespan)});
  table.row({"peak concurrent tasks",
             util::Table::integer(static_cast<long long>(m.peak_running))});
  table.row({"tasklets processed",
             util::Table::integer(static_cast<long long>(m.tasklets_processed))});
  table.row({"tasks evicted / failed",
             util::Table::integer(static_cast<long long>(m.tasks_evicted)) +
                 " / " +
                 util::Table::integer(static_cast<long long>(m.tasks_failed))});
  table.row({"WAN streamed", util::format_bytes(m.bytes_streamed)});
  table.row({"staged out", util::format_bytes(m.bytes_staged_out)});
  table.row({"merged files", util::Table::integer(static_cast<long long>(
                                 m.merge_tasks_completed))});
  if (total > 0.0) {
    table.row({"CPU fraction", util::Table::num(100.0 * b.cpu / total, 1) + " %"});
    table.row({"I/O fraction", util::Table::num(100.0 * b.io / total, 1) + " %"});
    table.row({"failed fraction",
               util::Table::num(100.0 * b.failed / total, 1) + " %"});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\ndiagnosis:");
  const auto diags = m.monitor.diagnose();
  if (diags.empty()) std::puts("  no bottlenecks detected");
  for (const auto& d : diags)
    std::printf("  [%.2f] %s\n         -> %s\n", d.severity, d.symptom.c_str(),
                d.advice.c_str());
  return 0;
}

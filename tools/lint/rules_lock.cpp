// rules_lock.cpp — the three corpus-level lock-discipline rules.
//
//   lockorder    — global lock-acquisition graph over the LockModel:
//                  lexical nesting plus call edges (A locks m1 then calls B
//                  which locks m2).  Cycles are potential deadlocks;
//                  cross-class edges must be declared with
//                  LOBSTER_ACQUIRED_BEFORE/AFTER on the mutex member.
//   guardeduse   — accesses of LOBSTER_GUARDED_BY members whose lexical
//                  lock-set lacks the guarding mutex.
//   counterplane — counter/gauge registration literals obey the
//                  `layer.subsystem.metric` grammar, are registered once,
//                  and every counter named in the docs exists in code.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "lint/lockmodel.hpp"

namespace lobster::lint {

namespace {

std::string first_segment(const std::string& chain) {
  std::size_t e = 0;
  while (e < chain.size() && is_identifier_char(chain[e])) ++e;
  return chain.substr(0, e);
}

/// Memoized transitive-include reachability.  Name-based fallback
/// resolution (a receiver whose type we can't see) only considers classes
/// whose defining file the accessing file actually includes — a local
/// variable in tools/ can't be an instance of a src/cvmfs/ class the TU
/// never heard of.
class Reach {
 public:
  explicit Reach(const Corpus& corpus) : corpus_(corpus) {}

  bool reachable(const SourceFile* from, const SourceFile* target) const {
    if (!from || !target) return false;
    return closure(from).count(target) != 0;
  }

 private:
  const std::set<const SourceFile*>& closure(const SourceFile* f) const {
    const auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    std::set<const SourceFile*> seen{f};
    std::vector<const SourceFile*> work{f};
    while (!work.empty()) {
      const SourceFile* cur = work.back();
      work.pop_back();
      for (const std::string& inc : cur->includes) {
        const SourceFile* t = corpus_.resolve(inc);
        if (t && seen.insert(t).second) work.push_back(t);
      }
    }
    return memo_[f] = std::move(seen);
  }

  const Corpus& corpus_;
  mutable std::map<const SourceFile*, std::set<const SourceFile*>> memo_;
};

/// Qualify a lexical LockRef to a canonical "Cls::member" id; "" when the
/// receiver cannot be resolved to a modelled class.
std::string resolve_lock(const LockModel& model, const Reach& reach,
                         const SourceFile* from, const std::string& method_cls,
                         const LockRef& ref) {
  if (ref.receiver == "this") {
    const ClassModel* own = model.find_class(method_cls);
    if (own && own->mutexes.count(ref.name))
      return method_cls + "::" + ref.name;
  } else {
    const ClassModel* own = model.find_class(method_cls);
    if (own) {
      const auto it = own->member_class.find(first_segment(ref.receiver));
      if (it != own->member_class.end()) {
        const ClassModel* c2 = model.find_class(it->second);
        if (c2 && c2->mutexes.count(ref.name))
          return it->second + "::" + ref.name;
      }
    }
  }
  // Fallback: the mutex member name identifies exactly one modelled class
  // visible from the acquiring file (`state->m` where only ObjectState has
  // a mutex `m`).
  std::string found;
  for (const auto& [name, cls] : model.classes) {
    if (!cls.mutexes.count(ref.name)) continue;
    if (!reach.reachable(from, cls.file)) continue;
    if (!found.empty()) return "";  // ambiguous
    found = name + "::" + ref.name;
  }
  return found;
}

/// Method names too generic for name-based call resolution: a lock-holding
/// call to a std::vector's `size()` must not resolve to Channel::size().
/// Calls to these resolve only through a member's declared type.
bool generic_method_name(const std::string& n) {
  static const std::set<std::string> kGeneric = {
      "size",    "empty",   "clear",   "push_back", "pop_front", "pop_back",
      "push",    "pop",     "front",   "back",      "at",        "find",
      "begin",   "end",     "count",   "erase",     "insert",    "emplace",
      "emplace_back", "reserve", "resize", "load",  "store",     "exchange",
      "fetch_add", "fetch_sub", "lock", "unlock",   "try_lock",  "get",
      "reset",   "c_str",   "str",     "data",      "swap",      "top",
      "join",    "joinable", "detach", "wait",      "wait_for",  "notify_one",
      "notify_all", "compare_exchange_strong", "compare_exchange_weak",
      "value",   "has_value", "owns_lock", "name",  "add",       "append",
      "substr",  "contains",
  };
  return kGeneric.count(n) != 0;
}

struct MethodIndex {
  /// "Cls::name" -> method bodies (overloads and split definitions merge).
  std::map<std::string, std::vector<const MethodModel*>> by_key;
  /// name -> classes defining a body for it.
  std::map<std::string, std::set<std::string>> classes_of;
};

MethodIndex index_methods(const LockModel& model) {
  MethodIndex idx;
  for (const MethodModel& m : model.methods) {
    idx.by_key[m.cls + "::" + m.name].push_back(&m);
    idx.classes_of[m.name].insert(m.cls);
  }
  return idx;
}

/// Candidate callee keys for a call event.  Member-typed receivers resolve
/// exactly; otherwise distinctive method names resolve to every class that
/// defines them (the union is the conservative over-approximation for
/// deadlock detection).
std::vector<std::string> resolve_call(const LockModel& model,
                                      const MethodIndex& idx,
                                      const Reach& reach,
                                      const SourceFile* from,
                                      const std::string& method_cls,
                                      const Call& call) {
  if (call.receiver.empty()) {
    const std::string key = method_cls + "::" + call.name;
    if (idx.by_key.count(key)) return {key};
    return {};
  }
  const ClassModel* own = model.find_class(method_cls);
  if (own) {
    const auto it = own->member_class.find(first_segment(call.receiver));
    if (it != own->member_class.end()) {
      const std::string key = it->second + "::" + call.name;
      if (idx.by_key.count(key)) return {key};
      if (model.find_class(it->second)) return {};  // known type, no body
    }
  }
  if (generic_method_name(call.name)) return {};
  std::vector<std::string> out;
  const auto it = idx.classes_of.find(call.name);
  if (it == idx.classes_of.end()) return out;
  for (const std::string& cls : it->second) {
    const ClassModel* cm = model.find_class(cls);
    if (cm && !reach.reachable(from, cm->file)) continue;
    out.push_back(cls + "::" + call.name);
  }
  return out;
}

std::string cls_of_id(const std::string& id) {
  return id.substr(0, id.find("::"));
}

/// Where an edge was observed, for finding locations.
struct EdgeWitness {
  const SourceFile* file = nullptr;
  std::size_t line = 0;
  std::string method;  ///< "Cls::name" of the observing body
  std::string via;     ///< callee key for call edges, "" for lexical ones
};

// ---------------------------------------------------------------------------
// Rule: lockorder
// ---------------------------------------------------------------------------

class LockOrderRule final : public Rule {
 public:
  const char* name() const override { return "lockorder"; }
  const char* tag() const override { return "lockorder"; }
  void check(const SourceFile&, const Corpus&,
             std::vector<Finding>&) const override {}

  void check_corpus(const Corpus& corpus,
                    std::vector<Finding>& out) const override {
    const LockModel model = build_lock_model(corpus);
    const MethodIndex idx = index_methods(model);
    const Reach reach(corpus);

    // Per-method transitive acquire sets (fixpoint over the call graph).
    std::map<std::string, std::set<std::string>> acquires;
    std::map<std::string, std::set<std::string>> callees;
    for (const MethodModel& m : model.methods) {
      const std::string key = m.cls + "::" + m.name;
      for (const Acquisition& a : m.acquisitions) {
        const std::string q = resolve_lock(model, reach, m.file, m.cls, a.lock);
        if (!q.empty()) acquires[key].insert(q);
      }
      for (const Call& c : m.calls)
        for (const std::string& callee : resolve_call(model, idx, reach, m.file, m.cls, c))
          if (callee != key) callees[key].insert(callee);
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& [key, calls] : callees) {
        auto& acc = acquires[key];
        const std::size_t before = acc.size();
        for (const std::string& callee : calls) {
          const auto it = acquires.find(callee);
          if (it != acquires.end())
            acc.insert(it->second.begin(), it->second.end());
        }
        if (acc.size() != before) changed = true;
      }
    }

    // Observed edges, each with its first witness.
    std::map<std::pair<std::string, std::string>, EdgeWitness> observed;
    auto note_edge = [&](const std::string& from, const std::string& to,
                         const MethodModel& m, std::size_t line,
                         const std::string& via) {
      const auto key = std::make_pair(from, to);
      if (observed.count(key)) return;
      observed[key] = EdgeWitness{m.file, line, m.cls + "::" + m.name, via};
    };
    for (const MethodModel& m : model.methods) {
      for (const Acquisition& a : m.acquisitions) {
        const std::string to = resolve_lock(model, reach, m.file, m.cls, a.lock);
        if (to.empty()) continue;
        for (const LockRef& h : a.held) {
          const std::string from = resolve_lock(model, reach, m.file, m.cls, h);
          if (from.empty()) continue;
          if (from == to) {
            // Same canonical mutex: only this->this lexical nesting is a
            // provable recursive self-deadlock; nesting across two
            // instances of one class is indistinguishable from safe code.
            if (h.receiver == "this" && a.lock.receiver == "this")
              note_edge(from, to, m, a.line, "");
            continue;
          }
          note_edge(from, to, m, a.line, "");
        }
      }
      for (const Call& c : m.calls) {
        if (c.held.empty()) continue;
        for (const std::string& callee : resolve_call(model, idx, reach, m.file, m.cls, c)) {
          const auto it = acquires.find(callee);
          if (it == acquires.end()) continue;
          for (const std::string& to : it->second) {
            for (const LockRef& h : c.held) {
              const std::string from = resolve_lock(model, reach, m.file, m.cls, h);
              if (from.empty() || from == to) continue;
              note_edge(from, to, m, c.line, callee);
            }
          }
        }
      }
    }

    // Declared hierarchy edges.
    std::set<std::pair<std::string, std::string>> declared;
    std::map<std::pair<std::string, std::string>, ClassModel::DeclaredEdge>
        declared_at;
    for (const auto& [cname, cls] : model.classes) {
      for (const auto& e : cls.declared_edges) {
        const std::string before = resolve_declared(model, cname, e.before);
        const std::string after = resolve_declared(model, cname, e.after);
        if (before.empty() || after.empty()) {
          const std::string& bad = before.empty() ? e.before : e.after;
          if (!suppressed(*e.file, e.line))
            out.push_back(
                {e.file->path, e.line, name(),
                 "LOBSTER_ACQUIRED_BEFORE/AFTER names `" + bad +
                     "`, which does not resolve to a known mutex member "
                     "(spell cross-class mutexes `Cls::member`)"});
          continue;
        }
        declared.insert({before, after});
        declared_at[{before, after}] = e;
      }
    }

    // Recursive self-acquisition (from == to lexical nesting).
    for (const auto& [edge, w] : observed) {
      if (edge.first != edge.second) continue;
      if (suppressed(*w.file, w.line)) continue;
      out.push_back({w.file->path, w.line, name(),
                     "`" + edge.first +
                         "` is acquired while already held in " + w.method +
                         " — recursive self-deadlock"});
    }

    // Cycle detection over observed + declared edges (a declared A->B with
    // an observed B->A is exactly the contradiction we want loud).
    std::map<std::string, std::set<std::string>> adj;
    for (const auto& [edge, w] : observed) {
      (void)w;
      if (edge.first != edge.second) adj[edge.first].insert(edge.second);
    }
    for (const auto& edge : declared) adj[edge.first].insert(edge.second);
    for (const std::vector<std::string>& cycle : find_cycles(adj)) {
      // Locate the finding at the first observed edge of the cycle;
      // contradictions between two declarations land on a declaration.
      const SourceFile* file = nullptr;
      std::size_t line = 0;
      std::string via;
      for (std::size_t i = 0; i < cycle.size() && !file; ++i) {
        const auto e = std::make_pair(cycle[i], cycle[(i + 1) % cycle.size()]);
        const auto it = observed.find(e);
        if (it != observed.end()) {
          file = it->second.file;
          line = it->second.line;
          via = it->second.method;
          continue;
        }
        const auto dit = declared_at.find(e);
        if (dit != declared_at.end()) {
          file = dit->second.file;
          line = dit->second.line;
          via = "the declared hierarchy";
        }
      }
      if (!file) continue;
      if (suppressed(*file, line)) continue;
      std::string chain;
      for (const std::string& n : cycle) chain += "`" + n + "` -> ";
      chain += "`" + cycle.front() + "`";
      out.push_back({file->path, line, name(),
                     "lock-order cycle " + chain + " (witnessed in " + via +
                         ") — two threads taking these paths in opposite "
                         "order deadlock"});
    }

    // Undeclared cross-class edges.
    for (const auto& [edge, w] : observed) {
      if (edge.first == edge.second) continue;
      if (cls_of_id(edge.first) == cls_of_id(edge.second)) continue;
      if (declared.count(edge)) continue;
      if (suppressed(*w.file, w.line)) continue;
      std::string msg = "cross-class lock acquisition `" + edge.first +
                        "` -> `" + edge.second + "`";
      if (!w.via.empty()) msg += " (via call to " + w.via + ")";
      msg +=
          " is not in the declared hierarchy: add LOBSTER_ACQUIRED_BEFORE on "
          "`" +
          edge.first + "` (or ACQUIRED_AFTER on `" + edge.second +
          "`) and record it in DESIGN.md";
      out.push_back({w.file->path, w.line, name(), msg});
    }
  }

 private:
  bool suppressed(const SourceFile& f, std::size_t line_1based) const {
    const Suppression s = find_suppression(f, line_1based - 1, tag());
    return s.present && s.valid;
  }

  static std::string resolve_declared(const LockModel& model,
                                      const std::string& own_cls,
                                      const std::string& text) {
    std::string t = trim(text);
    const std::size_t colons = t.rfind("::");
    if (colons == std::string::npos) {
      const ClassModel* own = model.find_class(own_cls);
      if (own && own->mutexes.count(t)) return own_cls + "::" + t;
      return "";
    }
    const std::string member = t.substr(colons + 2);
    std::string rest = t.substr(0, colons);
    const std::size_t prev = rest.rfind("::");
    const std::string cls =
        prev == std::string::npos ? rest : rest.substr(prev + 2);
    const ClassModel* cm = model.find_class(cls);
    if (cm && cm->mutexes.count(member)) return cls + "::" + member;
    return "";
  }

  /// One representative cycle per non-trivial strongly connected component
  /// (Tarjan, iterative), walked from the SCC's smallest node.
  static std::vector<std::vector<std::string>> find_cycles(
      const std::map<std::string, std::set<std::string>>& adj) {
    std::map<std::string, int> index, low, comp;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    int next_index = 0, next_comp = 0;
    struct Frame {
      std::string node;
      std::set<std::string>::const_iterator it, end;
    };
    static const std::set<std::string> kEmpty;
    for (const auto& [root, succ_unused] : adj) {
      (void)succ_unused;
      if (index.count(root)) continue;
      std::vector<Frame> frames;
      const auto push_node = [&](const std::string& n) {
        index[n] = low[n] = next_index++;
        stack.push_back(n);
        on_stack.insert(n);
        const auto ait = adj.find(n);
        const std::set<std::string>& succ =
            ait == adj.end() ? kEmpty : ait->second;
        frames.push_back(Frame{n, succ.begin(), succ.end()});
      };
      push_node(root);
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.it != f.end) {
          const std::string next = *f.it++;
          if (!index.count(next)) {
            push_node(next);
          } else if (on_stack.count(next)) {
            low[f.node] = std::min(low[f.node], index[next]);
          }
        } else {
          const std::string done = f.node;
          frames.pop_back();
          if (!frames.empty())
            low[frames.back().node] =
                std::min(low[frames.back().node], low[done]);
          if (low[done] == index[done]) {
            while (true) {
              const std::string n = stack.back();
              stack.pop_back();
              on_stack.erase(n);
              comp[n] = next_comp;
              if (n == done) break;
            }
            ++next_comp;
          }
        }
      }
    }
    std::map<int, std::vector<std::string>> members;
    for (const auto& [n, c] : comp) members[c].push_back(n);
    std::vector<std::vector<std::string>> cycles;
    for (auto& [c, nodes] : members) {
      (void)c;
      if (nodes.size() < 2) continue;  // self-loops are reported separately
      std::sort(nodes.begin(), nodes.end());
      // Walk a cycle from the smallest node, staying inside the component.
      const std::set<std::string> in_comp(nodes.begin(), nodes.end());
      std::vector<std::string> path{nodes.front()};
      std::set<std::string> seen{nodes.front()};
      while (true) {
        const auto ait = adj.find(path.back());
        if (ait == adj.end()) break;
        std::string next;
        for (const std::string& s : ait->second) {
          if (!in_comp.count(s)) continue;
          if (s == nodes.front()) {
            next = s;
            break;
          }
          if (!seen.count(s) && next.empty()) next = s;
        }
        if (next.empty() || next == nodes.front()) break;
        path.push_back(next);
        seen.insert(next);
      }
      cycles.push_back(path);
    }
    return cycles;
  }
};

// ---------------------------------------------------------------------------
// Rule: guardeduse
// ---------------------------------------------------------------------------

class GuardedUseRule final : public Rule {
 public:
  const char* name() const override { return "guardeduse"; }
  const char* tag() const override { return "guardeduse"; }
  void check(const SourceFile&, const Corpus&,
             std::vector<Finding>&) const override {}

  void check_corpus(const Corpus& corpus,
                    std::vector<Finding>& out) const override {
    const LockModel model = build_lock_model(corpus);
    const Reach reach(corpus);
    for (const MethodModel& m : model.methods) {
      if (m.ctor_dtor) continue;  // no concurrent access before/after life
      const ClassModel* own = model.find_class(m.cls);
      std::set<std::pair<std::size_t, std::string>> reported;
      for (const Access& a : m.accesses) {
        std::string guard;
        if (a.receiver == "this") {
          if (!own) continue;
          const auto it = own->guarded_by.find(a.name);
          if (it == own->guarded_by.end()) continue;
          guard = it->second;
        } else {
          const ClassModel* c2 = nullptr;
          if (own) {
            const auto mit = own->member_class.find(first_segment(a.receiver));
            if (mit != own->member_class.end())
              c2 = model.find_class(mit->second);
          }
          if (!c2) {
            // Unique-owner fallback: exactly one modelled class visible
            // from this file guards a member of this name.
            for (const auto& [cname, cls] : model.classes) {
              (void)cname;
              if (!cls.guarded_by.count(a.name)) continue;
              if (!reach.reachable(m.file, cls.file)) continue;
              if (c2) {
                c2 = nullptr;
                break;
              }
              c2 = &cls;
            }
          }
          if (!c2) continue;
          const auto it = c2->guarded_by.find(a.name);
          if (it == c2->guarded_by.end()) continue;
          guard = it->second;
        }
        const LockRef needed{a.receiver, guard};
        bool held = false;
        for (const LockRef& h : a.held)
          if (h == needed) held = true;
        if (held) continue;
        if (!reported.insert({a.line, a.name}).second) continue;
        const Suppression s = find_suppression(*m.file, a.line - 1, tag());
        if (s.present && s.valid) continue;
        std::string held_txt;
        for (const LockRef& h : a.held) {
          if (!held_txt.empty()) held_txt += ", ";
          held_txt += (h.receiver == "this" ? "" : h.receiver + "->") + h.name;
        }
        out.push_back(
            {m.file->path, a.line, name(),
             "`" +
                 (a.receiver == "this" ? a.name : a.receiver + "->" + a.name) +
                 "` is LOBSTER_GUARDED_BY(" + guard + ") but " + m.cls +
                 "::" + m.name + " touches it with lexical lock-set {" +
                 held_txt +
                 "} — take the mutex (atomic loads and cv-wait predicates "
                 "included) or declare the contract with LOBSTER_REQUIRES"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: counterplane
// ---------------------------------------------------------------------------

class CounterPlaneRule final : public Rule {
 public:
  const char* name() const override { return "counterplane"; }
  const char* tag() const override { return "counterplane"; }
  void check(const SourceFile&, const Corpus&,
             std::vector<Finding>&) const override {}

  void check_corpus(const Corpus& corpus,
                    std::vector<Finding>& out) const override {
    std::vector<Site> sites;
    for (const SourceFile& f : corpus.files) collect_sites(f, sites);

    std::set<std::string> known;
    for (const Site& s : sites) known.insert(s.name);

    // Grammar: exactly layer.subsystem.metric, lower_snake segments.
    for (const Site& s : sites) {
      if (well_formed(s.name)) continue;
      if (suppressed(*s.file, s.line)) continue;
      out.push_back({s.file->path, s.line, name(),
                     "counter `" + s.name +
                         "` violates the `layer.subsystem.metric` grammar "
                         "(exactly three lower_snake segments)"});
    }

    // Exactly one registration site per counter; kinds must not conflict.
    std::map<std::string, std::vector<const Site*>> regs;
    for (const Site& s : sites)
      if (s.registration) regs[s.name].push_back(&s);
    for (auto& [cname, list] : regs) {
      std::sort(list.begin(), list.end(), [](const Site* a, const Site* b) {
        if (a->file->path != b->file->path)
          return a->file->path < b->file->path;
        return a->line < b->line;
      });
      for (std::size_t i = 1; i < list.size(); ++i) {
        const Site& s = *list[i];
        if (suppressed(*s.file, s.line)) continue;
        out.push_back({s.file->path, s.line, name(),
                       "counter `" + cname +
                           "` is registered more than once (first at " +
                           normalize_path(list[0]->file->path) + ":" +
                           std::to_string(list[0]->line) +
                           ") — one registration site per counter"});
      }
      for (std::size_t i = 1; i < list.size(); ++i) {
        if (list[i]->gauge == list[0]->gauge) continue;
        const Site& s = *list[i];
        if (suppressed(*s.file, s.line)) continue;
        out.push_back({s.file->path, s.line, name(),
                       "`" + cname +
                           "` is registered both as a counter and as a "
                           "gauge — pick one kind"});
        break;
      }
    }

    // Doc cross-check: backticked counter names must exist in code.
    for (const DocFile& doc : corpus.docs) {
      for (std::size_t i = 0; i < doc.raw.size(); ++i) {
        for (const std::string& tok : backticked_tokens(doc.raw[i])) {
          for (const std::string& cname : expand_braces(tok)) {
            if (!well_formed(cname)) continue;
            if (cname == "layer.subsystem.metric") continue;  // the grammar
            if (known.count(cname)) continue;
            out.push_back({doc.path, i + 1, name(),
                           "doc references counter `" + cname +
                               "`, which is registered nowhere in the "
                               "scanned tree"});
          }
        }
      }
    }
  }

 private:
  struct Site {
    const SourceFile* file = nullptr;
    std::size_t line = 0;  ///< 1-based
    std::string name;
    bool gauge = false;
    /// `counter("x")` registers; `counter("x", v)` samples an existing one.
    bool registration = false;
  };

  bool suppressed(const SourceFile& f, std::size_t line_1based) const {
    const Suppression s = find_suppression(f, line_1based - 1, tag());
    return s.present && s.valid;
  }

  /// `registry.counter("wq.master.submitted")` registrations and
  /// `tracer().counter("lobsim.engine.running_tasks", n)` samples; the code
  /// line gates on the blanked-string shape, the literal text comes from
  /// the raw line at the same columns.
  static void collect_sites(const SourceFile& f, std::vector<Site>& sites) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const char* tok : {"counter", "gauge"}) {
        const std::string token(tok);
        std::size_t pos = 0;
        while ((pos = line.find(token, pos)) != std::string::npos) {
          const std::size_t start = pos;
          const std::size_t end = pos + token.size();
          pos = end;
          if (start > 0 && is_identifier_char(line[start - 1])) continue;
          if (end < line.size() && is_identifier_char(line[end])) continue;
          std::size_t j = end;
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j])))
            ++j;
          if (j >= line.size() || line[j] != '(') continue;
          ++j;
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j])))
            ++j;
          if (j >= line.size() || line[j] != '"') continue;
          const std::size_t close = line.find('"', j + 1);
          if (close == std::string::npos) continue;
          Site s;
          s.file = &f;
          s.line = i + 1;
          s.name = f.raw[i].substr(j + 1, close - j - 1);
          s.gauge = token == "gauge";
          std::size_t k = close + 1;
          while (k < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[k])))
            ++k;
          s.registration = k < line.size() && line[k] == ')';
          sites.push_back(s);
        }
      }
    }
  }

  static bool well_formed(const std::string& name) {
    std::vector<std::string> segs;
    std::string cur;
    for (char c : name) {
      if (c == '.') {
        segs.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    segs.push_back(cur);
    if (segs.size() != 3) return false;
    for (const std::string& s : segs) {
      if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
        return false;
      for (char c : s)
        if (!std::islower(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)) && c != '_')
          return false;
    }
    return true;
  }

  /// Backticked tokens made of counter-name characters (dots mandatory);
  /// `wq.steal.{attempts,tasks}` comes back verbatim for expand_braces.
  static std::vector<std::string> backticked_tokens(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      const std::size_t close = line.find('`', pos + 1);
      if (close == std::string::npos) break;
      const std::string tok = line.substr(pos + 1, close - pos - 1);
      pos = close + 1;
      if (tok.find('.') == std::string::npos) continue;
      bool ok = !tok.empty();
      for (char c : tok)
        if (!std::islower(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.' && c != '{' && c != '}' && c != ',')
          ok = false;
      if (ok) out.push_back(tok);
    }
    return out;
  }

  /// `wq.steal.{attempts,tasks}` -> wq.steal.attempts, wq.steal.tasks.
  static std::vector<std::string> expand_braces(const std::string& tok) {
    const std::size_t open = tok.find('{');
    if (open == std::string::npos) return {tok};
    const std::size_t close = tok.find('}', open);
    if (close == std::string::npos) return {tok};
    const std::string prefix = tok.substr(0, open);
    const std::string suffix = tok.substr(close + 1);
    std::vector<std::string> out;
    std::string alt;
    for (std::size_t i = open + 1; i <= close; ++i) {
      if (i == close || tok[i] == ',') {
        out.push_back(prefix + alt + suffix);
        alt.clear();
      } else {
        alt.push_back(tok[i]);
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_lockorder_rule() {
  return std::make_unique<LockOrderRule>();
}
std::unique_ptr<Rule> make_guardeduse_rule() {
  return std::make_unique<GuardedUseRule>();
}
std::unique_ptr<Rule> make_counterplane_rule() {
  return std::make_unique<CounterPlaneRule>();
}

}  // namespace lobster::lint

// lint.cpp — corpus loading, comment/string stripping, include resolution,
// unordered-container symbol tables, suppression parsing.
#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lobster::lint {

namespace fs = std::filesystem;

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool has_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_identifier_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_identifier_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool opens_class_body(const std::string& stmt) {
  const std::string t = trim(stmt);
  if (t.empty()) return false;
  if (has_token(t, "enum")) return false;  // enum class bodies: enumerators
  if (!has_token(t, "class") && !has_token(t, "struct")) return false;
  // `struct Entry* p = ...` or a function returning a struct would carry
  // '=' or '(' before the brace.
  if (t.find('=') != std::string::npos) return false;
  if (t.find('(') != std::string::npos) return false;
  return true;
}

namespace {

/// Blank comments and string/char literals to spaces, preserving line
/// structure so findings keep their line numbers and tokens never merge.
/// `comment_out` records where each line's `//` comment starts (npos when
/// none) — a `//` inside a string literal is not a comment.
std::vector<std::string> strip_comments(const std::vector<std::string>& raw,
                                        std::vector<std::size_t>& comment_out) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  comment_out.assign(raw.size(), std::string::npos);
  bool in_block = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        comment_out[li] = i;
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        s[i] = quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;  // skip the escaped char (also blanked)
          } else if (line[i] == quote) {
            s[i] = quote;
            break;
          }
          ++i;
        }
        continue;
      }
      s[i] = c;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Include targets are read from the raw lines: stripping blanks string
/// literal contents, and the target of `#include "..."` is one.
std::vector<std::string> scan_includes_raw(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  for (const std::string& line : raw) {
    const std::string t = trimmed(line);
    if (t.rfind("#include", 0) != 0) continue;
    const std::size_t open = t.find('"');
    if (open == std::string::npos) continue;
    const std::size_t close = t.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(t.substr(open + 1, close - open - 1));
  }
  return out;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Variable names declared with an unordered container type in this file
/// (including through `using X = std::unordered_map<...>` aliases declared
/// in the same file).
std::set<std::string> local_unordered_names(const SourceFile& f) {
  std::set<std::string> aliases;
  // Pass 1: type aliases.
  for (const std::string& line : f.code) {
    const std::string t = trimmed(line);
    if (t.rfind("using ", 0) != 0) continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) continue;
    const std::string rhs = trimmed(t.substr(eq + 1));
    if (rhs.rfind("std::unordered_map<", 0) == 0 ||
        rhs.rfind("std::unordered_set<", 0) == 0 ||
        rhs.rfind("std::unordered_multimap<", 0) == 0 ||
        rhs.rfind("std::unordered_multiset<", 0) == 0)
      aliases.insert(trimmed(t.substr(6, eq - 6)));
  }
  // Pass 2: declarations — members, locals and function parameters alike.
  // Any `std::unordered_*<...>` followed by a declarator identifier names
  // an unordered container; template arguments spanning lines are missed
  // (acceptable for a line-based scan).
  std::set<std::string> names;
  static const char* kUnorderedTypes[] = {
      "std::unordered_map<", "std::unordered_set<",
      "std::unordered_multimap<", "std::unordered_multiset<"};
  for (const std::string& line : f.code) {
    for (const char* type : kUnorderedTypes) {
      const std::string prefix(type);
      std::size_t pos = 0;
      while ((pos = line.find(prefix, pos)) != std::string::npos) {
        // Skip the template argument list to find the declarator.
        std::size_t i = pos + prefix.size() - 1;  // at '<'
        int depth = 0;
        for (; i < line.size(); ++i) {
          if (line[i] == '<') ++depth;
          if (line[i] == '>') {
            if (--depth == 0) {
              ++i;
              break;
            }
          }
        }
        // Declarator: first identifier after the type (skip *, & and
        // spaces).  `>::iterator` and bare type mentions yield nothing.
        while (i < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[i])) ||
                line[i] == '*' || line[i] == '&'))
          ++i;
        std::size_t e = i;
        while (e < line.size() && is_identifier_char(line[e])) ++e;
        if (e > i) names.insert(line.substr(i, e - i));
        pos += prefix.size();
      }
    }
    // Alias use: `Store shared_store_;`
    std::string t = trimmed(line);
    if (t.empty() || t.back() != ';') continue;
    for (bool again = true; again;) {
      again = false;
      for (const char* q : {"mutable ", "static ", "inline ", "constexpr ",
                            "const "}) {
        if (t.rfind(q, 0) == 0) {
          t = trimmed(t.substr(std::string(q).size()));
          again = true;
        }
      }
    }
    const std::size_t space = t.find(' ');
    if (space == std::string::npos) continue;
    if (!aliases.count(t.substr(0, space))) continue;
    std::size_t b = space;
    while (b < t.size() &&
           (std::isspace(static_cast<unsigned char>(t[b])) || t[b] == '*' ||
            t[b] == '&'))
      ++b;
    std::size_t e = b;
    while (e < t.size() && is_identifier_char(t[e])) ++e;
    if (e > b) names.insert(t.substr(b, e - b));
  }
  return names;
}

}  // namespace

SourceFile make_source(std::string path, const std::string& text) {
  SourceFile f;
  f.path = std::move(path);
  const std::string ext = fs::path(f.path).extension().string();
  f.header = ext == ".hpp" || ext == ".h";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  f.code = strip_comments(f.raw, f.comment);
  f.includes = scan_includes_raw(f.raw);
  return f;
}

DocFile make_doc(std::string path, const std::string& text) {
  DocFile d;
  d.path = std::move(path);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    d.raw.push_back(line);
  }
  return d;
}

void load_doc(Corpus& corpus, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("lobster_lint: cannot read doc " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  corpus.docs.push_back(make_doc(path, buf.str()));
}

Corpus load_corpus(const std::vector<std::string>& roots) {
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      paths.push_back(p.string());
      continue;
    }
    if (!fs::is_directory(p))
      throw std::runtime_error("lobster_lint: no such file or directory: " +
                               root);
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      if (!lintable_extension(entry.path())) continue;
      const std::string s = entry.path().string();
      if (s.find("/build/") != std::string::npos) continue;
      if (s.find("/.git/") != std::string::npos) continue;
      paths.push_back(s);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  Corpus corpus;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("lobster_lint: cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.files.push_back(make_source(path, buf.str()));
  }
  return corpus;
}

const SourceFile* Corpus::resolve(const std::string& include) const {
  for (const SourceFile& f : files) {
    if (f.path == include) return &f;
    if (f.path.size() > include.size() &&
        f.path.compare(f.path.size() - include.size(), include.size(),
                       include) == 0 &&
        f.path[f.path.size() - include.size() - 1] == '/')
      return &f;
  }
  return nullptr;
}

std::set<std::string> Corpus::unordered_names(const SourceFile& f) const {
  std::set<std::string> names;
  std::set<const SourceFile*> visited;
  std::vector<const SourceFile*> work{&f};
  while (!work.empty()) {
    const SourceFile* cur = work.back();
    work.pop_back();
    if (!visited.insert(cur).second) continue;
    const auto local = local_unordered_names(*cur);
    names.insert(local.begin(), local.end());
    for (const std::string& inc : cur->includes)
      if (const SourceFile* target = resolve(inc)) work.push_back(target);
  }
  return names;
}

Suppression find_suppression(const SourceFile& f, std::size_t line_idx,
                             const std::string& tag) {
  const std::string marker = "lobster-lint: " + tag + "-ok(";
  for (std::size_t back = 0; back < 2; ++back) {
    if (back > line_idx) break;
    const std::string& line = f.raw[line_idx - back];
    const std::size_t comment = f.comment[line_idx - back];
    if (comment == std::string::npos) continue;
    const std::size_t pos = line.find(marker, comment);
    if (pos == std::string::npos) continue;
    Suppression s;
    s.present = true;
    const std::size_t open = pos + marker.size() - 1;
    const std::size_t close = line.find(')', open + 1);
    if (close != std::string::npos)
      s.reason = trimmed(line.substr(open + 1, close - open - 1));
    s.valid = !s.reason.empty();
    if (s.valid) f.suppressions_used.insert(line_idx - back);
    return s;
  }
  return {};
}

std::vector<Finding> run(const Corpus& corpus, const Options& opts) {
  std::vector<Finding> findings;
  const auto rules = make_rules(opts);
  for (const SourceFile& f : corpus.files) f.suppressions_used.clear();
  for (const SourceFile& f : corpus.files)
    for (const auto& rule : rules) rule->check(f, corpus, findings);
  for (const auto& rule : rules) rule->check_corpus(corpus, findings);

  // Audited suppressions: a marker with an empty reason is a finding in
  // its own right — the audit trail is the point — and so is a valid
  // marker that silenced nothing this run (stale after a refactor; dead
  // suppressions would hide future findings).  Only comment text is
  // considered (string literals may legitimately mention the marker), and
  // prose placeholders spelled `<like this>` are documentation, not
  // suppressions.
  for (const SourceFile& f : corpus.files) {
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
      const std::size_t comment = f.comment[i];
      if (comment == std::string::npos) continue;
      const std::size_t pos = f.raw[i].find("lobster-lint: ", comment);
      if (pos == std::string::npos) continue;
      const std::size_t open = f.raw[i].find('(', pos);
      if (open == std::string::npos) {
        findings.push_back({f.path, i + 1, "suppression",
                            "malformed suppression: expected "
                            "`lobster-lint: <rule>-ok(<reason>)`"});
        continue;
      }
      const std::string tag =
          trimmed(f.raw[i].substr(pos + 14, open - (pos + 14)));
      if (tag.find('<') != std::string::npos)
        continue;  // `lobster-lint: <tag>-ok(...)` in prose about the syntax
      const std::size_t close = f.raw[i].find(')', open);
      const std::string reason =
          close == std::string::npos
              ? ""
              : trimmed(f.raw[i].substr(open + 1, close - open - 1));
      if (reason.empty()) {
        findings.push_back({f.path, i + 1, "suppression",
                            "suppression without a reason: state why the "
                            "flagged pattern is safe"});
        continue;
      }
      if (reason.front() == '<' && reason.back() == '>')
        continue;  // `hotpath-ok(<reason>)` in prose about the protocol
      if (f.suppressions_used.count(i)) continue;
      findings.push_back(
          {f.path, i + 1, "suppression",
           "stale suppression `" + tag +
               "(...)`: it no longer silences any finding — delete it so a "
               "future regression here cannot hide behind it"});
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

}  // namespace lobster::lint

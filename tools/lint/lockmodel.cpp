// lockmodel.cpp — builds the corpus-wide lock model (see lockmodel.hpp).
//
// Pass A: structural scan of every file.  Brace-tracked contexts distinguish
// class bodies (member statements are analyzed at each ';'), method bodies
// (located and skipped — pass B owns them) and everything else.  Pass B:
// each method body is re-scanned with the lexical lock-set tracker.
#include "lint/lockmodel.hpp"

#include <algorithm>
#include <cctype>

namespace lobster::lint {

namespace {

bool is_ident(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s)
    if (!is_identifier_char(c)) return false;
  return true;
}

/// Last identifier run of `s` ("" when s doesn't end in one).
std::string trailing_ident(const std::string& s) {
  std::size_t e = s.size();
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  std::size_t b = e;
  while (b > 0 && is_identifier_char(s[b - 1])) --b;
  return s.substr(b, e - b);
}

/// Strip one balanced `MACRO(...)` occurrence; returns true when found and
/// stores the argument text in `args`.
bool strip_macro(std::string& t, const std::string& macro, std::string* args) {
  const std::size_t pos = t.find(macro);
  if (pos == std::string::npos) return false;
  const std::size_t open = t.find('(', pos);
  if (open == std::string::npos) return false;
  int depth = 0;
  std::size_t close = open;
  for (; close < t.size(); ++close) {
    if (t[close] == '(') ++depth;
    if (t[close] == ')' && --depth == 0) break;
  }
  if (close >= t.size()) return false;
  if (args) *args = trim(t.substr(open + 1, close - open - 1));
  t = t.substr(0, pos) + " " + t.substr(close + 1);
  return true;
}

std::vector<std::string> split_top_level_commas(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

const char* kMutexTypes[] = {"std::mutex", "std::shared_mutex",
                             "std::recursive_mutex", "std::timed_mutex"};
const char* kLockTypes[] = {"std::scoped_lock", "std::lock_guard",
                            "std::unique_lock", "std::shared_lock"};

bool starts_with_token(const std::string& t, const std::string& prefix) {
  return t.rfind(prefix, 0) == 0 &&
         (t.size() == prefix.size() || !is_identifier_char(t[prefix.size()]));
}

/// `util::Channel<TaskSpec>*` -> "Channel"; the simple class name of a
/// declared member type.
std::string type_class_name(std::string type) {
  type = trim(type);
  const std::size_t lt = type.find('<');
  if (lt != std::string::npos) type = type.substr(0, lt);
  while (!type.empty() && (type.back() == '*' || type.back() == '&' ||
                           std::isspace(static_cast<unsigned char>(type.back()))))
    type.pop_back();
  const std::size_t colons = type.rfind("::");
  if (colons != std::string::npos) type = type.substr(colons + 2);
  return is_ident(type) ? type : "";
}

/// Class name from a `class X : public Y` / `template <class T> struct X`
/// header: the last identifier before the base-clause colon that is not a
/// keyword or a template parameter.
std::string class_name_from_header(const std::string& stmt) {
  std::string t = trim(stmt);
  // Drop a trailing base clause (`: public TaskSource`), taking care not to
  // cut inside `::`.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] != ':') continue;
    const bool left = i > 0 && t[i - 1] == ':';
    const bool right = i + 1 < t.size() && t[i + 1] == ':';
    if (!left && !right) {
      t = trim(t.substr(0, i));
      break;
    }
    if (right) ++i;
  }
  // Drop attribute/export macros trailing the name; the name is now the
  // last identifier, as long as a class/struct keyword precedes something.
  const std::string name = trailing_ident(t);
  if (name == "class" || name == "struct" || name == "final") {
    // `struct {` anonymous, or `class ... final` — retry without `final`.
    if (name == "final") {
      std::string head = trim(t.substr(0, t.size() - 5));
      return trailing_ident(head);
    }
    return "";
  }
  return name;
}

struct MethodHeader {
  bool found = false;
  std::string cls;   ///< "" when not qualified (use enclosing class)
  std::string name;  ///< may equal cls for constructors
};

/// Parse a function-definition header: the identifier before the first
/// top-level '(' plus an optional `Cls::` qualifier.  `= lambda` inits and
/// brace-initialized members are rejected by the caller ('=' before '(').
MethodHeader parse_method_header(const std::string& stmt) {
  MethodHeader h;
  const std::size_t open = stmt.find('(');
  if (open == std::string::npos) return h;
  std::size_t e = open;
  while (e > 0 && std::isspace(static_cast<unsigned char>(stmt[e - 1]))) --e;
  std::size_t b = e;
  while (b > 0 && is_identifier_char(stmt[b - 1])) --b;
  if (b == e) return h;
  h.name = stmt.substr(b, e - b);
  if (b >= 1 && stmt[b - 1] == '~') h.name = "~" + h.name;
  // Optional `Cls::` (possibly `ns::Outer::Inner::`): take the innermost.
  std::size_t q = b;
  if (h.name[0] == '~') --q;
  if (q >= 2 && stmt[q - 1] == ':' && stmt[q - 2] == ':') {
    std::size_t ce = q - 2, cb = ce;
    while (cb > 0 && is_identifier_char(stmt[cb - 1])) --cb;
    if (cb < ce) h.cls = stmt.substr(cb, ce - cb);
  }
  h.found = true;
  return h;
}

/// Normalize a receiver chain: `this->x` -> `x`, `self->x` -> `x` (the
/// `auto* self = const_cast<...>(this)` idiom), "" and "this"/"self" ->
/// "this".
std::string normalize_receiver(std::string r) {
  r = trim(r);
  if (r.rfind("this->", 0) == 0) r = trim(r.substr(6));
  if (r.rfind("self->", 0) == 0) r = trim(r.substr(6));
  if (r.empty() || r == "this" || r == "self" || r == "(*this)") return "this";
  return r;
}

}  // namespace

bool parse_lock_ref(const std::string& text, LockRef& out) {
  std::string t = trim(text);
  while (!t.empty() && (t.front() == '*' || t.front() == '&'))
    t = trim(t.substr(1));
  if (t.empty()) return false;
  if (t.find("::") != std::string::npos) return false;  // std::try_to_lock &c
  if (t.find('(') != std::string::npos) return false;   // calls, casts
  // Split at the last `->` or `.`.
  std::size_t split = std::string::npos;
  bool arrow = false;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i] == '-' && t[i + 1] == '>') {
      split = i;
      arrow = true;
    } else if (t[i] == '.') {
      split = i;
      arrow = false;
    }
  }
  if (split == std::string::npos) {
    if (!is_ident(t)) return false;
    out = {"this", t};
    return true;
  }
  const std::string name = trim(t.substr(split + (arrow ? 2 : 1)));
  if (!is_ident(name)) return false;
  out = {normalize_receiver(t.substr(0, split)), name};
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// Pass A — class inventory and method-body location.
// ---------------------------------------------------------------------------

struct BodySpan {
  std::string cls;
  std::string name;
  bool ctor_dtor = false;
  std::vector<LockRef> entry_locks;
  std::size_t line = 0;  ///< 0-based line of the opening brace
  std::size_t col = 0;   ///< column just after the opening brace
};

std::vector<LockRef> parse_requires_args(const std::string& args) {
  std::vector<LockRef> out;
  for (const std::string& a : split_top_level_commas(args)) {
    LockRef ref;
    if (parse_lock_ref(a, ref)) out.push_back(ref);
  }
  return out;
}

/// Analyze one class-scope statement flushed at ';'.
void analyze_class_member(const std::string& text, std::size_t line_idx,
                          const SourceFile& f, ClassModel& cls) {
  std::string t = trim(text);
  if (t.empty()) return;
  static const char* kSkipPrefixes[] = {
      "public",   "private", "protected", "using",    "typedef", "template",
      "enum",     "class",   "struct",    "operator", "return",  "#",
      "friend",
  };
  for (const char* p : kSkipPrefixes)
    if (starts_with_token(t, p) || t[0] == '#' || t[0] == '~') return;

  std::string guard, before_args, after_args, requires_args;
  const bool guarded = strip_macro(t, "LOBSTER_GUARDED_BY", &guard);
  strip_macro(t, "LOBSTER_PT_GUARDED_BY", nullptr);
  strip_macro(t, "LOBSTER_NOT_GUARDED", nullptr);
  const bool has_before =
      strip_macro(t, "LOBSTER_ACQUIRED_BEFORE", &before_args);
  const bool has_after = strip_macro(t, "LOBSTER_ACQUIRED_AFTER", &after_args);
  const bool has_requires = strip_macro(t, "LOBSTER_REQUIRES", &requires_args);
  strip_macro(t, "LOBSTER_EXCLUDES", nullptr);
  t = trim(t);
  if (t.empty()) return;

  if (t.find('(') != std::string::npos) {
    // A method declaration: record its REQUIRES contract, if any.
    if (has_requires) {
      const MethodHeader h = parse_method_header(t);
      if (h.found)
        cls.method_requires[h.name] = parse_requires_args(requires_args);
    }
    return;
  }

  for (bool again = true; again;) {
    again = false;
    for (const char* q :
         {"mutable ", "inline ", "static ", "const ", "volatile "}) {
      if (t.rfind(q, 0) == 0) {
        t = trim(t.substr(std::string(q).size()));
        again = true;
      }
    }
  }
  if (t.empty()) return;

  // Cut a default member initializer before extracting the declarator.
  std::string decl = t;
  const std::size_t eq = decl.find('=');
  if (eq != std::string::npos) decl = trim(decl.substr(0, eq));
  const std::string member = trailing_ident(decl);
  if (member.empty()) return;

  bool is_mutex = false;
  for (const char* m : kMutexTypes)
    if (starts_with_token(t, m)) is_mutex = true;
  if (is_mutex) {
    cls.mutexes.insert(member);
    auto note_edges = [&](const std::string& args, bool member_is_after) {
      for (const std::string& a : split_top_level_commas(args)) {
        ClassModel::DeclaredEdge e;
        if (member_is_after) {
          e.before = a;
          e.after = member;
        } else {
          e.before = member;
          e.after = a;
        }
        e.file = &f;
        e.line = line_idx + 1;
        cls.declared_edges.push_back(e);
      }
    };
    if (has_after) note_edges(after_args, /*member_is_after=*/true);
    if (has_before) note_edges(before_args, /*member_is_after=*/false);
    return;
  }

  if (guarded) {
    LockRef g;
    if (parse_lock_ref(guard, g)) cls.guarded_by[member] = g.name;
  }
  // Member type, for receiver resolution (`local_.try_receive()`).
  const std::size_t name_pos = decl.rfind(member);
  const std::string cls_name = type_class_name(decl.substr(0, name_pos));
  if (!cls_name.empty()) cls.member_class[member] = cls_name;
}

void scan_file_structure(const SourceFile& f, LockModel& model,
                         std::vector<BodySpan>& bodies) {
  struct Ctx {
    enum Kind { Other, Class, Body } kind = Other;
    std::string cls;  ///< for Class contexts
  };
  std::vector<Ctx> stack;
  std::string stmt;
  int body_depth = 0;  // >0: inside a method/function body, brace-count only
  int init_depth = 0;  // >0: inside a member's brace initializer `{0}`

  auto current_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (it->kind == Ctx::Class) return it->cls;
    return "";
  };

  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (trim(line).rfind('#', 0) == 0 && body_depth == 0) continue;
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (body_depth > 0) {
        if (c == '{') ++body_depth;
        if (c == '}') --body_depth;
        continue;
      }
      if (init_depth > 0) {
        // Swallow a balanced brace initializer; the member statement stays
        // pending so the ';' flush still analyzes it.
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        continue;
      }
      if (c == '{') {
        const std::string t = trim(stmt);
        if (opens_class_body(t)) {
          stmt.clear();
          Ctx ctx;
          ctx.kind = Ctx::Class;
          ctx.cls = class_name_from_header(t);
          stack.push_back(ctx);
          if (!ctx.cls.empty()) {
            ClassModel& cm = model.classes[ctx.cls];
            if (cm.name.empty()) {
              cm.name = ctx.cls;
              cm.file = &f;
              cm.line = li + 1;
            }
          }
          continue;
        }
        // Function definition?  '=' before the first '(' means an
        // initializer (lambda member, array init), not a header.  Member
        // annotation macros carry parentheses of their own
        // (`T x_ LOBSTER_GUARDED_BY(m){0}`), so strip them before testing.
        std::string ht = t;
        std::string requires_args;
        const bool has_requires =
            strip_macro(ht, "LOBSTER_REQUIRES", &requires_args);
        for (const char* m :
             {"LOBSTER_GUARDED_BY", "LOBSTER_PT_GUARDED_BY",
              "LOBSTER_NOT_GUARDED", "LOBSTER_ACQUIRED_BEFORE",
              "LOBSTER_ACQUIRED_AFTER", "LOBSTER_EXCLUDES"})
          while (strip_macro(ht, m, nullptr)) {
          }
        const std::size_t open = ht.find('(');
        const std::size_t eq = ht.find('=');
        const bool header_like =
            open != std::string::npos && (eq == std::string::npos || eq > open);
        if (header_like) {
          stmt.clear();
          const MethodHeader h = parse_method_header(ht);
          std::string cls = h.cls.empty() ? current_class() : h.cls;
          if (h.found && !cls.empty()) {
            BodySpan span;
            span.cls = cls;
            span.name = h.name;
            span.ctor_dtor = h.name == cls || h.name == "~" + cls;
            if (has_requires)
              span.entry_locks = parse_requires_args(requires_args);
            span.line = li;
            span.col = ci + 1;
            bodies.push_back(span);
            // Also record a REQUIRES contract attached to a definition.
            if (has_requires && model.classes.count(cls))
              model.classes[cls].method_requires[h.name] = span.entry_locks;
          }
          body_depth = 1;
          continue;
        }
        if (!stack.empty() && stack.back().kind == Ctx::Class && !t.empty()) {
          // A member's brace initializer: keep the statement pending so the
          // trailing ';' still flushes it through analyze_class_member.
          init_depth = 1;
          continue;
        }
        stmt.clear();
        stack.push_back(Ctx{});  // plain block at this level
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        stmt.clear();
        continue;
      }
      if (c == ';') {
        if (!stack.empty() && stack.back().kind == Ctx::Class &&
            !stack.back().cls.empty())
          analyze_class_member(stmt, li, f, model.classes[stack.back().cls]);
        stmt.clear();
        continue;
      }
      if (c == ':' && !stack.empty() && stack.back().kind == Ctx::Class) {
        const std::string t = trim(stmt);
        if (t == "public" || t == "private" || t == "protected") {
          stmt.clear();
          continue;
        }
      }
      stmt.push_back(c);
    }
    stmt.push_back(' ');
  }
}

// ---------------------------------------------------------------------------
// Pass B — lexical lock-set tracking over one method body.
// ---------------------------------------------------------------------------

const char* kStmtKeywords[] = {
    "if",       "for",         "while",    "switch",   "return",  "sizeof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast", "catch",
    "assert",   "do",          "else",     "case",     "new",     "delete",
    "throw",    "co_return",   "alignof",  "decltype", "noexcept",
};

bool is_keyword(const std::string& w) {
  for (const char* k : kStmtKeywords)
    if (w == k) return true;
  return false;
}

struct BodyScanner {
  const SourceFile& f;
  const std::set<std::string>& guarded_names;
  MethodModel& out;

  std::vector<std::vector<LockRef>> scopes{{}};

  std::vector<LockRef> flatten() const {
    std::vector<LockRef> all = out.entry_locks;
    for (const auto& s : scopes) all.insert(all.end(), s.begin(), s.end());
    return all;
  }

  /// RAII lock declaration: record acquisitions, return true when the
  /// statement was one.
  bool try_lock_decl(const std::string& t, std::size_t line) {
    for (const char* lt : kLockTypes) {
      const std::size_t pos = t.find(lt);
      if (pos == std::string::npos) continue;
      if (pos > 0 && is_identifier_char(t[pos - 1])) continue;
      std::size_t i = pos + std::string(lt).size();
      if (i < t.size() && is_identifier_char(t[i])) continue;
      // Optional template argument list.
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      if (i < t.size() && t[i] == '<') {
        int depth = 0;
        for (; i < t.size(); ++i) {
          if (t[i] == '<') ++depth;
          if (t[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      // Guard variable name.
      std::size_t e = i;
      while (e < t.size() && is_identifier_char(t[e])) ++e;
      if (e == i) return false;  // no declarator: not a declaration
      i = e;
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      if (i >= t.size() || t[i] != '(') return false;  // `std::unique_lock lk;`
      int depth = 0;
      std::size_t close = i;
      for (; close < t.size(); ++close) {
        if (t[close] == '(') ++depth;
        if (t[close] == ')' && --depth == 0) break;
      }
      if (close >= t.size()) return false;
      const std::string args = t.substr(i + 1, close - i - 1);
      if (args.find("defer_lock") != std::string::npos) return true;
      const std::vector<LockRef> held_before = flatten();
      for (const std::string& a : split_top_level_commas(args)) {
        LockRef ref;
        if (!parse_lock_ref(a, ref)) continue;  // tags, durations
        Acquisition acq;
        acq.line = line;
        acq.lock = ref;
        acq.held = held_before;
        out.acquisitions.push_back(acq);
        scopes.back().push_back(ref);
      }
      return true;
    }
    return false;
  }

  /// Receiver chain ending just before position `b` ("" when none):
  /// `state->` yields "state", `it->second.` yields "it->second".
  static std::string receiver_before(const std::string& t, std::size_t b) {
    std::size_t i = b;
    bool any = false;
    while (i > 0) {
      if (i >= 2 && t[i - 1] == '>' && t[i - 2] == '-') {
        i -= 2;
        any = true;
      } else if (t[i - 1] == '.' &&
                 !(i >= 2 && std::isdigit(static_cast<unsigned char>(t[i - 2])))) {
        i -= 1;
        any = true;
      } else {
        break;
      }
      // The segment before the separator.
      std::size_t sb = i;
      while (sb > 0 && is_identifier_char(t[sb - 1])) --sb;
      if (sb == i) break;  // `).x` etc: give up on the chain
      i = sb;
    }
    if (!any) return "";
    return t.substr(i, b - i);
  }

  void scan_statement(const std::string& raw_stmt, std::size_t line) {
    const std::string t = trim(raw_stmt);
    if (t.empty()) return;
    if (t[0] == '#') return;
    if (try_lock_decl(t, line)) return;
    const std::vector<LockRef> held = flatten();
    // Token walk: every identifier is a call (followed by '(') or a
    // candidate guarded access.
    for (std::size_t i = 0; i < t.size();) {
      if (!is_identifier_char(t[i])) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < t.size() && is_identifier_char(t[e])) ++e;
      const std::string word = t.substr(i, e - i);
      // Skip qualified names (std::foo) and digits.
      const bool qualified =
          (i >= 2 && t[i - 1] == ':' && t[i - 2] == ':') ||
          (e + 1 < t.size() && t[e] == ':' && t[e + 1] == ':');
      const bool digit = std::isdigit(static_cast<unsigned char>(t[i]));
      std::size_t j = e;
      while (j < t.size() && std::isspace(static_cast<unsigned char>(t[j])))
        ++j;
      const bool is_call = j < t.size() && t[j] == '(';
      if (!qualified && !digit && !is_keyword(word)) {
        std::string recv = receiver_before(t, i);
        // Drop the trailing separator (`state->` -> `state`).
        if (recv.size() >= 2 && recv.compare(recv.size() - 2, 2, "->") == 0)
          recv = recv.substr(0, recv.size() - 2);
        else if (!recv.empty() && recv.back() == '.')
          recv = recv.substr(0, recv.size() - 1);
        if (is_call) {
          Call call;
          call.line = line;
          call.receiver = recv.empty() ? "" : normalize_receiver(recv);
          call.name = word;
          call.held = held;
          out.calls.push_back(call);
        } else if (guarded_names.count(word)) {
          Access a;
          a.line = line;
          a.receiver = normalize_receiver(recv);
          a.name = word;
          a.held = held;
          out.accesses.push_back(a);
        }
      }
      i = e;
    }
  }

  /// Walk the body from just after its opening brace to the matching close.
  void scan(std::size_t start_line, std::size_t start_col) {
    std::string stmt;
    int depth = 1;
    for (std::size_t li = start_line; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      std::size_t ci = li == start_line ? start_col : 0;
      if (trim(line).rfind('#', 0) == 0) continue;
      for (; ci < line.size(); ++ci) {
        const char c = line[ci];
        if (c == '{') {
          scan_statement(stmt, li + 1);
          stmt.clear();
          scopes.push_back({});
          ++depth;
          continue;
        }
        if (c == '}') {
          scan_statement(stmt, li + 1);
          stmt.clear();
          if (!scopes.empty()) scopes.pop_back();
          if (--depth == 0) return;
          continue;
        }
        if (c == ';') {
          scan_statement(stmt, li + 1);
          stmt.clear();
          continue;
        }
        stmt.push_back(c);
      }
      stmt.push_back(' ');
    }
  }
};

}  // namespace

LockModel build_lock_model(const Corpus& corpus) {
  LockModel model;
  std::vector<std::pair<const SourceFile*, std::vector<BodySpan>>> all_bodies;
  for (const SourceFile& f : corpus.files) {
    std::vector<BodySpan> bodies;
    scan_file_structure(f, model, bodies);
    all_bodies.emplace_back(&f, std::move(bodies));
  }
  for (const auto& [name, cls] : model.classes)
    for (const auto& [member, guard] : cls.guarded_by)
      model.guarded_names.insert(member);

  for (auto& [file, bodies] : all_bodies) {
    for (const BodySpan& span : bodies) {
      MethodModel m;
      m.cls = span.cls;
      m.name = span.name;
      m.file = file;
      m.line = span.line + 1;
      m.ctor_dtor = span.ctor_dtor;
      m.entry_locks = span.entry_locks;
      // REQUIRES declared on the in-class declaration applies to the
      // out-of-class definition too.
      if (m.entry_locks.empty()) {
        const auto cit = model.classes.find(m.cls);
        if (cit != model.classes.end()) {
          const auto rit = cit->second.method_requires.find(m.name);
          if (rit != cit->second.method_requires.end())
            m.entry_locks = rit->second;
        }
      }
      BodyScanner scanner{*file, model.guarded_names, m};
      scanner.scan(span.line, span.col);
      model.methods.push_back(std::move(m));
    }
  }
  return model;
}

}  // namespace lobster::lint

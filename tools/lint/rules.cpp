// rules.cpp — the four lobster_lint hygiene rules.
//
// Everything here is deliberately lexer-light: token scans over
// comment/string-stripped lines, brace counting for class bodies, and the
// corpus include graph for cross-file container types.  The fixture corpus
// under tests/lint/ pins what each rule must and must not flag.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#include "lint/lint.hpp"

namespace lobster::lint {

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// First occurrence of `token` (identifier-delimited) in `line`, or npos.
std::size_t token_pos(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_identifier_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_identifier_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

/// Next non-space character at or after `pos`; '\0' when none.
char next_nonspace(const std::string& line, std::size_t pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  return pos < line.size() ? line[pos] : '\0';
}

// ---------------------------------------------------------------------------
// Rule: entropy — no wall-clock or entropy sources.
// ---------------------------------------------------------------------------

class EntropyRule final : public Rule {
 public:
  explicit EntropyRule(std::vector<std::string> allowlist)
      : allowlist_(std::move(allowlist)) {}

  const char* name() const override { return "entropy"; }
  const char* tag() const override { return "entropy"; }

  void check(const SourceFile& f, const Corpus&,
             std::vector<Finding>& out) const override {
    for (const std::string& suffix : allowlist_) {
      if (f.path.size() >= suffix.size() &&
          f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
        return;
    }
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      std::string hit;
      // Straight token hits: any appearance is a nondeterminism source.
      for (const char* token :
           {"random_device", "system_clock", "high_resolution_clock",
            "gettimeofday", "srand"}) {
        if (has_token(line, token)) {
          hit = token;
          break;
        }
      }
      // rand( — the call, not identifiers that merely contain "rand".
      if (hit.empty()) {
        const std::size_t pos = token_pos(line, "rand");
        if (pos != std::string::npos &&
            next_nonspace(line, pos + 4) == '(')
          hit = "rand()";
      }
      // time(nullptr) / time(NULL) / time(0).
      if (hit.empty()) {
        const std::size_t pos = token_pos(line, "time");
        if (pos != std::string::npos) {
          std::size_t j = pos + 4;
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j])))
            ++j;
          if (j < line.size() && line[j] == '(') {
            const std::size_t close = line.find(')', j);
            if (close != std::string::npos) {
              const std::string arg = trimmed(line.substr(j + 1, close - j - 1));
              if (arg == "nullptr" || arg == "NULL" || arg == "0")
                hit = "time(" + arg + ")";
            }
          }
        }
      }
      if (hit.empty()) continue;
      const Suppression s = find_suppression(f, i, tag());
      if (s.present && s.valid) continue;
      out.push_back(
          {f.path, i + 1, name(),
           "wall-clock/entropy source `" + hit +
               "`: simulated time comes from des::Simulation and randomness "
               "from a seeded util::Rng; allowlist the harness file or add "
               "`// lobster-lint: entropy-ok(<reason>)`"});
    }
  }

 private:
  std::vector<std::string> allowlist_;
};

// ---------------------------------------------------------------------------
// Rule: ordered — no order-sensitive work inside unordered iteration.
// ---------------------------------------------------------------------------

class OrderedIterationRule final : public Rule {
 public:
  const char* name() const override { return "ordered"; }
  const char* tag() const override { return "ordered"; }

  void check(const SourceFile& f, const Corpus& corpus,
             std::vector<Finding>& out) const override {
    const std::set<std::string> unordered = corpus.unordered_names(f);
    if (unordered.empty()) return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string range = range_for_target(f.code[i]);
      if (range.empty()) continue;
      const std::string var = trailing_identifier(range);
      if (var.empty() || !unordered.count(var)) continue;
      const std::string hazard = body_hazard(f, i);
      if (hazard.empty()) continue;
      const Suppression s = find_suppression(f, i, tag());
      if (s.present && s.valid) continue;
      out.push_back(
          {f.path, i + 1, name(),
           "iteration over unordered container `" + var + "` feeds " + hazard +
               " — the result depends on hash order; use an ordered "
               "container, sort the keys first, or add `// lobster-lint: "
               "ordered-ok(<reason>)`"});
    }
  }

 private:
  /// The range expression of a single-line range-for, or "".
  static std::string range_for_target(const std::string& line) {
    const std::size_t pos = token_pos(line, "for");
    if (pos == std::string::npos) return "";
    std::size_t open = pos + 3;
    while (open < line.size() &&
           std::isspace(static_cast<unsigned char>(line[open])))
      ++open;
    if (open >= line.size() || line[open] != '(') return "";
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = open; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool scope_left = j > 0 && line[j - 1] == ':';
        const bool scope_right = j + 1 < line.size() && line[j + 1] == ':';
        if (!scope_left && !scope_right) colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) return "";
    return trimmed(line.substr(colon + 1, close - colon - 1));
  }

  /// "cache_" from "cache_", "self->objects_" or "group.seen_"; "" for
  /// calls and anything else a token scan cannot resolve.
  static std::string trailing_identifier(const std::string& expr) {
    std::string e = trimmed(expr);
    if (e.empty() || e.back() == ')') return "";  // function call
    std::size_t b = e.size();
    while (b > 0 && is_identifier_char(e[b - 1])) --b;
    const std::string id = e.substr(b);
    if (id.empty()) return "";
    // Whatever qualifies it (obj., ptr->, ns::) does not change the
    // container's identity for our purposes.
    return id;
  }

  /// Scan the loop body (braced block or single statement) for
  /// order-sensitive operations; returns a description or "".
  static std::string body_hazard(const SourceFile& f, std::size_t for_line) {
    std::string body;
    int depth = 0;
    bool saw_brace = false;
    bool past_header = false;
    int header_depth = 0;
    const std::size_t limit = std::min(f.code.size(), for_line + 200);
    for (std::size_t i = for_line; i < limit; ++i) {
      for (const char c : f.code[i]) {
        if (!past_header) {
          if (c == '(') ++header_depth;
          if (c == ')' && --header_depth == 0) past_header = true;
          continue;
        }
        if (c == '{') {
          ++depth;
          saw_brace = true;
        }
        if (c == '}') {
          if (--depth == 0) return scan_hazards(body);
        }
        body.push_back(c);
        if (!saw_brace && c == ';') return scan_hazards(body);
      }
      body.push_back('\n');
    }
    return scan_hazards(body);
  }

  static std::string scan_hazards(const std::string& body) {
    if (body.find("+=") != std::string::npos)
      return "an accumulation (`+=`)";
    for (const char* t : {"push_back", "emplace_back", "append"})
      if (has_token(body, t)) return std::string("output appends (`") + t + "`)";
    if (body.find(".add(") != std::string::npos ||
        body.find("->add(") != std::string::npos)
      return "metrics accumulation (`.add(...)`)";
    if (body.find("<<") != std::string::npos) return "stream output (`<<`)";
    // Identifiers that smell like RNG use: `rng`, `rng_`, `engine_rng`, ...
    std::string ident;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const char c = i < body.size() ? body[i] : ' ';
      if (is_identifier_char(c)) {
        ident.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        continue;
      }
      if (ident.find("rng") != std::string::npos || ident == "random")
        return "an RNG draw (`" + ident + "`)";
      ident.clear();
    }
    return "";
  }
};

// ---------------------------------------------------------------------------
// Rule: guarded — mutex-holding classes annotate every member.
// ---------------------------------------------------------------------------

class GuardedByRule final : public Rule {
 public:
  const char* name() const override { return "guarded"; }
  const char* tag() const override { return "guarded"; }

  void check(const SourceFile& f, const Corpus&,
             std::vector<Finding>& out) const override {
    struct Scope {
      bool is_class = false;
      bool has_mutex = false;
      struct Member {
        std::size_t line;
        std::string name;
        bool annotated;
      };
      std::vector<Member> members;
    };
    std::vector<Scope> stack;
    std::string stmt;       // statement accumulator for the innermost scope
    bool discard_stmt = false;  // a nested block interrupted the statement

    auto flush = [&](std::size_t line_idx) {
      if (stack.empty() || !stack.back().is_class) {
        stmt.clear();
        return;
      }
      const std::string text = trimmed(stmt);
      stmt.clear();
      if (text.empty()) return;
      analyze_member(text, line_idx, stack.back());
    };

    for (std::size_t i = 0; i < f.code.size(); ++i) {
      for (const char c : f.code[i]) {
        if (c == '{') {
          const bool is_class = opens_class_body(stmt);
          if (is_class) {
            stack.push_back(Scope{});
            stack.back().is_class = true;
            stmt.clear();
            discard_stmt = false;
          } else {
            stack.push_back(Scope{});
            // A '{' inside a member statement is either a brace initializer
            // or a function body; either way the nested text is not member
            // text.  Keep the prefix (the declaration) for when we pop.
            discard_stmt = false;
          }
          continue;
        }
        if (c == '}') {
          if (!stack.empty()) {
            if (stack.back().is_class) finish_class(f, stack.back(), out);
            stack.pop_back();
          }
          // After a nested block closes, only `;` may extend the statement
          // (brace initializers); anything else starts fresh.
          discard_stmt = true;
          continue;
        }
        if (stack.size() >= 1 && stack.back().is_class) {
          if (c == ';') {
            flush(i);
            discard_stmt = false;
            continue;
          }
          // `public:` / `private:` / `protected:` end a "statement" without
          // a ';' — without this, the access label glues onto the next
          // member declaration and hides it behind the skip-prefix check.
          if (c == ':') {
            const std::string t = trimmed(stmt);
            if (t == "public" || t == "private" || t == "protected") {
              stmt.clear();
              continue;
            }
          }
          if (discard_stmt &&
              !std::isspace(static_cast<unsigned char>(c))) {
            // Statement resumed after a nested block without a ';' —
            // whatever was buffered belonged to a function definition.
            stmt.clear();
            discard_stmt = false;
          }
          if (!discard_stmt) stmt.push_back(c);
        } else {
          // Outside class bodies we only track statement text far enough
          // to recognise `class X {` headers.
          if (c == ';') {
            stmt.clear();
            discard_stmt = false;
          } else if (discard_stmt &&
                     !std::isspace(static_cast<unsigned char>(c))) {
            stmt.clear();
            discard_stmt = false;
            stmt.push_back(c);
          } else if (!discard_stmt) {
            stmt.push_back(c);
          }
        }
      }
      stmt.push_back(' ');
    }
  }

 private:
  struct ScopeRef;  // (documentation aid only)

  static void analyze_member(const std::string& text, std::size_t line_idx,
                             auto& scope) {
    static const char* kSkipPrefixes[] = {
        "public", "private", "protected", "using", "friend",  "typedef",
        "template", "static", "constexpr", "enum", "class",   "struct",
        "explicit", "virtual", "operator", "~",    "return",  "#",
    };
    for (const char* p : kSkipPrefixes) {
      const std::string prefix(p);
      if (text.rfind(prefix, 0) == 0 &&
          (text.size() == prefix.size() ||
           !is_identifier_char(text[prefix.size()]) ||
           !is_identifier_char(prefix.back())))
        return;
    }
    // Strip annotation macros (they contain parens, which would otherwise
    // look like a function declaration below).
    std::string t = text;
    bool annotated = false;
    for (const char* macro :
         {"LOBSTER_GUARDED_BY", "LOBSTER_PT_GUARDED_BY",
          "LOBSTER_NOT_GUARDED"}) {
      const std::size_t pos = t.find(macro);
      if (pos == std::string::npos) continue;
      const std::size_t open = t.find('(', pos);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      for (; close < t.size(); ++close) {
        if (t[close] == '(') ++depth;
        if (t[close] == ')' && --depth == 0) break;
      }
      if (close >= t.size()) continue;
      annotated = true;
      t = t.substr(0, pos) + t.substr(close + 1);
    }
    t = trimmed(t);
    if (t.empty()) return;
    // Function declarations, constructors, `= delete` lines.
    if (t.find('(') != std::string::npos) return;
    // Leading qualifiers.
    for (bool again = true; again;) {
      again = false;
      for (const char* q : {"mutable ", "inline ", "const ", "volatile "}) {
        if (t.rfind(q, 0) == 0) {
          t = trimmed(t.substr(std::string(q).size()));
          again = true;
        }
      }
    }
    // The declared type, template arguments included, decides the category.
    if (starts_with_any(t, {"std::mutex", "std::shared_mutex",
                            "std::recursive_mutex", "std::timed_mutex"})) {
      scope.has_mutex = true;
      return;
    }
    if (starts_with_any(t, {"std::condition_variable", "std::atomic",
                            "std::counting_semaphore", "std::binary_semaphore",
                            "std::once_flag", "std::stop_token"}))
      return;
    // Default-member-initializers: cut at '=' before naming the declarator.
    const std::size_t eq = t.find('=');
    if (eq != std::string::npos) t = trimmed(t.substr(0, eq));
    if (t.empty()) return;
    std::size_t b = t.size();
    while (b > 0 && is_identifier_char(t[b - 1])) --b;
    const std::string member = t.substr(b);
    if (member.empty() || b == 0) return;  // no type before the name
    typename std::remove_reference_t<decltype(scope)>::Member m{
        line_idx, member, annotated};
    scope.members.push_back(m);
  }

  static bool starts_with_any(const std::string& t,
                              std::initializer_list<const char*> prefixes) {
    for (const char* p : prefixes) {
      const std::string prefix(p);
      if (t.rfind(prefix, 0) == 0 &&
          (t.size() == prefix.size() ||
           !is_identifier_char(t[prefix.size()])))
        return true;
    }
    return false;
  }

  template <typename ScopeT>
  void finish_class(const SourceFile& f, const ScopeT& scope,
                    std::vector<Finding>& out) const {
    if (!scope.has_mutex) return;
    for (const auto& m : scope.members) {
      if (m.annotated) continue;
      const Suppression s = find_suppression(f, m.line, tag());
      if (s.present && s.valid) continue;
      out.push_back(
          {f.path, m.line + 1, name(),
           "member `" + m.name +
               "` of a mutex-holding class lacks a lock annotation: add "
               "LOBSTER_GUARDED_BY(<mutex>) or LOBSTER_NOT_GUARDED(<why>) "
               "(util/thread_annotations.hpp)"});
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: nodiscard — metrics/stats accessors must be [[nodiscard]].
// ---------------------------------------------------------------------------

class NodiscardRule final : public Rule {
 public:
  const char* name() const override { return "nodiscard"; }
  const char* tag() const override { return "nodiscard"; }

  void check(const SourceFile& f, const Corpus&,
             std::vector<Finding>& out) const override {
    if (!f.header) return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      const std::string fn = accessor_declaration(line);
      if (fn.empty()) continue;
      if (f.raw[i].find("[[nodiscard]]") != std::string::npos) continue;
      if (i > 0 && f.raw[i - 1].find("[[nodiscard]]") != std::string::npos)
        continue;
      const Suppression s = find_suppression(f, i, tag());
      if (s.present && s.valid) continue;
      out.push_back({f.path, i + 1, name(),
                     "metrics accessor `" + fn +
                         "()` must be [[nodiscard]]: a discarded metrics "
                         "read is always a bug"});
    }
  }

 private:
  /// Returns the function name when `line` declares a no-argument const
  /// member function whose name is in the metrics-accessor set and whose
  /// return type is not void; "" otherwise.
  static std::string accessor_declaration(const std::string& line) {
    // Find `name ( ) const` with the name in the accessor set.
    for (std::size_t i = 0; i < line.size();) {
      if (!is_identifier_char(line[i])) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < line.size() && is_identifier_char(line[e])) ++e;
      const std::string word = line.substr(i, e - i);
      std::size_t j = e;
      const bool named = metrics_name(word);
      if (named) {
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])))
          ++j;
        if (j < line.size() && line[j] == '(') {
          std::size_t k = j + 1;
          while (k < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[k])))
            ++k;
          if (k < line.size() && line[k] == ')') {
            std::size_t m = k + 1;
            while (m < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[m])))
              ++m;
            if (line.compare(m, 5, "const") == 0 &&
                (m + 5 >= line.size() || !is_identifier_char(line[m + 5]))) {
              // Must be a declaration: a return type precedes the name and
              // it is not `void`; a call site (`x.hits()`) has '.'/'->'
              // or nothing but punctuation before the name.
              if (has_return_type(line, i)) return word;
            }
          }
        }
      }
      i = e;
    }
    return "";
  }

  static bool has_return_type(const std::string& line, std::size_t name_pos) {
    // Walk back over whitespace; the previous character must end a type
    // token (identifier, '>', '&', '*', or ':').
    std::size_t p = name_pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) --p;
    if (p == 0) return false;  // name first on the line: type unknown, skip
    const char prev = line[p - 1];
    if (!(is_identifier_char(prev) || prev == '>' || prev == '&' ||
          prev == '*'))
      return false;  // `.hits()`, `->hits()`, `(hits()` — a call site
    // Reject `void name() const`.
    std::size_t tb = p;
    while (tb > 0 && (is_identifier_char(line[tb - 1]) || line[tb - 1] == ':'))
      --tb;
    return line.compare(tb, p - tb, "void") != 0;
  }

  static bool metrics_name(const std::string& w) {
    static const std::set<std::string> kExact = {
        "hits",        "misses",       "refreshes",  "requests",
        "timeouts",    "errors",       "entries",    "count",
        "total",       "sum",          "mean",       "variance",
        "stddev",      "min",          "max",        "summary",
        "breakdown",   "diagnose",     "stats",      "metrics",
        "makespan",    "turnaround",   "seen",       "queue_depth",
        "submitted",   "dispatched",   "completed",  "failed",
        "evicted",     "tasks_run",    "hit_rate",   "efficiency",
        "events_executed", "pending_events", "live_processes",
    };
    static const char* kPrefixes[] = {"bytes_",    "total_", "num_",
                                      "resident_", "stored_", "peak_",
                                      "lost_",     "tasklets_", "tasks_"};
    // Timeline accessors (completed_timeline, efficiency_timeline, ...)
    // are pure queries too: computing one and dropping it is always a bug.
    static const char* kSuffixes[] = {"_timeline"};
    if (kExact.count(w)) return true;
    for (const char* p : kPrefixes)
      if (w.rfind(p, 0) == 0) return true;
    for (const char* s : kSuffixes) {
      const std::size_t n = std::strlen(s);
      if (w.size() > n && w.compare(w.size() - n, n, s) == 0) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Rule: hotpath — no map members in DES hot-path classes.
// ---------------------------------------------------------------------------

class HotpathRule final : public Rule {
 public:
  explicit HotpathRule(std::vector<std::string> roots)
      : roots_(std::move(roots)) {}

  const char* name() const override { return "hotpath"; }
  const char* tag() const override { return "hotpath"; }

  void check(const SourceFile& f, const Corpus&,
             std::vector<Finding>& out) const override {
    bool in_root = false;
    for (const std::string& r : roots_)
      if (f.path.find(r) != std::string::npos) {
        in_root = true;
        break;
      }
    if (!in_root) return;

    // Brace-tracked class scopes, as in GuardedByRule: a statement flushed
    // at ';' (or interrupted by a '{' brace initializer / function body)
    // inside a class scope is a candidate member declaration.
    std::vector<char> stack;  // 'c' class scope, 'b' any other block
    std::string stmt;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      for (const char c : f.code[i]) {
        if (c == '{') {
          if (!stack.empty() && stack.back() == 'c' &&
              !opens_class_body(stmt))
            maybe_flag(f, stmt, i, out);  // `std::map<...> m_{...};`
          stack.push_back(opens_class_body(stmt) ? 'c' : 'b');
          stmt.clear();
        } else if (c == '}') {
          if (!stack.empty()) stack.pop_back();
          stmt.clear();
        } else if (c == ';') {
          if (!stack.empty() && stack.back() == 'c') maybe_flag(f, stmt, i, out);
          stmt.clear();
        } else if (c == ':') {
          const std::string t = trimmed(stmt);
          if (t == "public" || t == "private" || t == "protected")
            stmt.clear();
          else
            stmt.push_back(c);
        } else {
          stmt.push_back(c);
        }
      }
      stmt.push_back(' ');
    }
  }

 private:
  void maybe_flag(const SourceFile& f, const std::string& stmt,
                  std::size_t line_idx, std::vector<Finding>& out) const {
    std::string type;
    if (!declares_map_member(stmt, &type)) return;
    const Suppression s = find_suppression(f, line_idx, tag());
    if (s.present && s.valid) return;
    out.push_back(
        {f.path, line_idx + 1, name(),
         "`" + type +
             "` data member in a DES hot-path class: node-based containers "
             "reintroduce per-entity allocation and pointer chasing on the "
             "event path — use handle-indexed flat arrays (des/handle.hpp) "
             "or suppress with `lobster-lint: hotpath-ok(<why>)` after an "
             "audit"});
  }

  /// True when the statement declares a data member whose type is a map:
  /// leading qualifiers stripped, the type token leads, and the declarator
  /// that follows is a name not followed by '(' (which would be a member
  /// function returning a map — allocation off the hot path).
  static bool declares_map_member(const std::string& text, std::string* type) {
    std::string t = trimmed(text);
    for (bool again = true; again;) {
      again = false;
      for (const char* q : {"mutable ", "static ", "inline ", "const ",
                            "constexpr ", "volatile "}) {
        if (t.rfind(q, 0) == 0) {
          t = trimmed(t.substr(std::strlen(q)));
          again = true;
        }
      }
    }
    for (const char* ty : {"std::unordered_map", "std::map"}) {
      const std::string prefix(ty);
      if (t.rfind(prefix, 0) != 0) continue;
      if (t.size() > prefix.size() && is_identifier_char(t[prefix.size()]))
        continue;  // e.g. std::unordered_map... longer identifier
      // Skip the template argument list.
      std::size_t p = prefix.size();
      if (p < t.size() && t[p] == '<') {
        int depth = 0;
        for (; p < t.size(); ++p) {
          if (t[p] == '<') ++depth;
          if (t[p] == '>' && --depth == 0) {
            ++p;
            break;
          }
        }
      }
      while (p < t.size() && (std::isspace(static_cast<unsigned char>(t[p])) ||
                              t[p] == '&' || t[p] == '*'))
        ++p;
      std::size_t e = p;
      while (e < t.size() && is_identifier_char(t[e])) ++e;
      if (e == p) return false;  // no declarator name (e.g. a using-type)
      if (next_nonspace(t, e) == '(') return false;  // function declaration
      *type = prefix;
      return true;
    }
    return false;
  }

  std::vector<std::string> roots_;
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_rules(const Options& opts) {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<EntropyRule>(opts.entropy_allowlist));
  rules.push_back(std::make_unique<OrderedIterationRule>());
  rules.push_back(std::make_unique<GuardedByRule>());
  rules.push_back(std::make_unique<NodiscardRule>());
  rules.push_back(std::make_unique<HotpathRule>(opts.hotpath_roots));
  rules.push_back(make_lockorder_rule());
  rules.push_back(make_guardeduse_rule());
  rules.push_back(make_counterplane_rule());
  return rules;
}

}  // namespace lobster::lint

// lockmodel.hpp — the corpus-wide lock model behind the lockorder and
// guardeduse rules.
//
// Pass A walks every file's brace structure and records, per class: mutex
// members, LOBSTER_GUARDED_BY members, member->class types (for receiver
// resolution), LOBSTER_ACQUIRED_BEFORE/AFTER hierarchy declarations and
// LOBSTER_REQUIRES method contracts.  Pass B re-scans every method body
// (in-class definitions and out-of-class `Cls::name(...)` definitions
// alike) with a lexical lock-set tracker: RAII acquisitions
// (scoped_lock/lock_guard/unique_lock/shared_lock) are pushed onto the
// enclosing lexical scope and popped when it closes, and every statement is
// scanned for calls and for reads/writes of guarded members, each tagged
// with the lock-set held at that point.  Lambda bodies (condition-variable
// wait predicates in particular) are nested scopes of the enclosing
// function, so predicate reads carry the caller's lock-set.
//
// Known, deliberate approximations (all conservative-permissive — they can
// hide a finding, never invent one):
//   * manual guard.unlock()/lock() cycles are ignored: the lock counts as
//     held for its whole lexical scope;
//   * std::try_to_lock / std::adopt_lock acquisitions count as held (the
//     surrounding code re-locks on failure in every tree use);
//   * a std::defer_lock declaration acquires nothing.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint/lint.hpp"

namespace lobster::lint {

/// A mutex reference as it appears lexically: the receiver chain ("this"
/// for bare members, with leading `this->` / `self->` stripped) plus the
/// member name.  `state->m` has receiver "state"; `mutex_` has "this".
struct LockRef {
  std::string receiver;
  std::string name;

  friend bool operator<(const LockRef& a, const LockRef& b) {
    return std::tie(a.receiver, a.name) < std::tie(b.receiver, b.name);
  }
  friend bool operator==(const LockRef& a, const LockRef& b) {
    return a.receiver == b.receiver && a.name == b.name;
  }
};

/// One RAII lock acquisition; `held` is the lock-set before this statement
/// (simultaneous multi-mutex scoped_lock arguments do not appear in each
/// other's held sets — std::scoped_lock is deadlock-free by design).
struct Acquisition {
  std::size_t line = 0;  ///< 1-based
  LockRef lock;
  std::vector<LockRef> held;
};

struct Call {
  std::size_t line = 0;
  std::string receiver;  ///< "" for bare calls
  std::string name;
  std::vector<LockRef> held;
};

/// A read or write of a member in the guarded-member universe.
struct Access {
  std::size_t line = 0;
  std::string receiver;  ///< "this" for bare members
  std::string name;
  std::vector<LockRef> held;
};

struct MethodModel {
  std::string cls;   ///< owning class (simple name)
  std::string name;  ///< method name; == cls for constructors
  const SourceFile* file = nullptr;
  std::size_t line = 0;  ///< 1-based line of the body's opening brace
  bool ctor_dtor = false;
  std::vector<LockRef> entry_locks;  ///< from LOBSTER_REQUIRES
  std::vector<Acquisition> acquisitions;
  std::vector<Call> calls;
  std::vector<Access> accesses;
};

struct ClassModel {
  std::string name;
  const SourceFile* file = nullptr;
  std::size_t line = 0;
  std::set<std::string> mutexes;  ///< std::mutex/shared_mutex/... members
  /// member -> guarding mutex (LOBSTER_GUARDED_BY argument, normalized).
  std::map<std::string, std::string> guarded_by;
  /// member -> simple class name of its declared type (Channel, StealGroup,
  /// ...); only consulted when the name resolves to a modelled class.
  std::map<std::string, std::string> member_class;
  /// method name -> entry locks from LOBSTER_REQUIRES on the declaration.
  std::map<std::string, std::vector<LockRef>> method_requires;

  /// LOBSTER_ACQUIRED_BEFORE/AFTER declarations, as written: `before` and
  /// `after` are the macro/member spellings (possibly `ns::Cls::member`
  /// qualified); the lockorder rule resolves them to canonical ids.
  struct DeclaredEdge {
    std::string before;
    std::string after;
    const SourceFile* file = nullptr;
    std::size_t line = 0;
  };
  std::vector<DeclaredEdge> declared_edges;
};

struct LockModel {
  std::map<std::string, ClassModel> classes;
  std::vector<MethodModel> methods;
  /// Union of every class's guarded member names (the access filter).
  std::set<std::string> guarded_names;

  const ClassModel* find_class(const std::string& name) const {
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
  }
};

LockModel build_lock_model(const Corpus& corpus);

/// Parse "state->m" / "this->mutex_" / "mutex_" into a LockRef; false when
/// the text is not a member reference (qualified names, literals, tags).
bool parse_lock_ref(const std::string& text, LockRef& out);

}  // namespace lobster::lint

// lint.hpp — the lobster_lint rule engine.
//
// A from-scratch, lexer-light static-analysis pass (line/token based, no
// libclang) that enforces the simulation-hygiene rules the Campaign/Engine
// determinism contract depends on.  The golden-metrics harness pins
// bitwise-identical serial-vs-parallel output; a single unordered_map
// iteration feeding an RNG draw or a floating-point fold, or one stray
// wall-clock read, silently corrupts every golden file.  This tool makes
// those mistakes loud at lint time instead of mysterious at figure time.
//
// Rules (each has a tag used in suppression comments):
//
//   entropy    — no wall-clock / entropy sources (std::random_device,
//                rand()/srand(), time(nullptr), system_clock,
//                high_resolution_clock, gettimeofday) outside allowlisted
//                harness files.  Simulated time comes from des::Simulation;
//                randomness from util::Rng seeded by the RunSpec.
//   ordered    — no range-for over an unordered_map/unordered_set in code
//                that draws from an RNG, appends to metrics/output, or
//                accumulates floating-point sums: iteration order is
//                implementation-defined, so the result is too.
//   guarded    — every data member of a mutex-holding class carries a
//                LOBSTER_GUARDED_BY / LOBSTER_NOT_GUARDED annotation
//                (util/thread_annotations.hpp).
//   nodiscard  — metrics/stats accessors ([[nodiscard]] name set below)
//                declared in headers must be [[nodiscard]]: a discarded
//                metrics read is always a bug.
//   hotpath    — no std::map / std::unordered_map data members in classes
//                under the DES hot-path roots (src/des/, src/lobsim/): the
//                kernel flattening replaced node-based containers with
//                handle-indexed slab arrays (des/handle.hpp), and a new map
//                member reintroduces per-entity allocation and pointer
//                chasing on the event path.  Audited exceptions carry a
//                `lobster-lint: hotpath-ok(<reason>)` suppression.
//
// Suppressions are audited: `// lobster-lint: <tag>-ok(<reason>)` on the
// flagged line or the line above silences that rule there; an empty reason
// is itself a finding.
//
// Include-graph awareness: `#include "a/b.hpp"` edges between scanned files
// are resolved by path suffix, so a .cpp iterating a container declared in
// its header is still caught.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lobster::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;
  bool header = false;
  /// Original text, line by line (suppression comments live here).
  std::vector<std::string> raw;
  /// Same lines with comments and string/char literals blanked to spaces,
  /// so token scans never fire inside a string or a comment.
  std::vector<std::string> code;
  /// Start column of the `//` comment on each line (npos when none); a
  /// `//` inside a string literal is not a comment.
  std::vector<std::size_t> comment;
  /// Targets of `#include "..."` directives, as written.
  std::vector<std::string> includes;
};

/// Build a SourceFile from in-memory text (fixture tests use this).
SourceFile make_source(std::string path, const std::string& text);

struct Corpus {
  std::vector<SourceFile> files;

  /// Resolve an include target ("util/rng.hpp") to a corpus file by path
  /// suffix; nullptr when the target is outside the scanned set.
  const SourceFile* resolve(const std::string& include) const;

  /// Names of variables declared with an unordered container type in `f`
  /// or any transitively included corpus file.
  std::set<std::string> unordered_names(const SourceFile& f) const;
};

/// Recursively collect .hpp/.cpp/.h/.cc files under `roots` (files may also
/// be named directly).  Deterministic order; throws on an unreadable root.
Corpus load_corpus(const std::vector<std::string>& roots);

struct Suppression {
  bool present = false;  ///< a `lobster-lint: <tag>-ok(...)` marker exists
  bool valid = false;    ///< ...and carries a non-empty reason
  std::string reason;
};

/// Look for a suppression of `tag` on raw line `line_idx` (0-based) or the
/// line above.
Suppression find_suppression(const SourceFile& f, std::size_t line_idx,
                             const std::string& tag);

struct Options {
  /// Path suffixes allowed to read wall clocks / entropy (timing harnesses).
  std::vector<std::string> entropy_allowlist;
  /// Path fragments whose classes may not hold std::map / std::unordered_map
  /// data members (the hotpath rule).
  std::vector<std::string> hotpath_roots = {"src/des/", "src/lobsim/"};
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  /// Suppression tag (`<tag>-ok`).
  virtual const char* tag() const = 0;
  virtual void check(const SourceFile& f, const Corpus& corpus,
                     std::vector<Finding>& out) const = 0;
};

std::vector<std::unique_ptr<Rule>> make_rules(const Options& opts);

/// Run every rule over every file; also flags suppression markers with an
/// empty reason.  Findings are ordered by file, then line.
std::vector<Finding> run(const Corpus& corpus, const Options& opts);

// ---- shared token helpers (exposed for the rule implementations/tests) ----

bool is_identifier_char(char c);
/// True when `token` occurs in `line` delimited by non-identifier chars.
bool has_token(const std::string& line, const std::string& token);

}  // namespace lobster::lint

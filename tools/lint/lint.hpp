// lint.hpp — the lobster_lint rule engine.
//
// A from-scratch, lexer-light static-analysis pass (line/token based, no
// libclang) that enforces the simulation-hygiene rules the Campaign/Engine
// determinism contract depends on.  The golden-metrics harness pins
// bitwise-identical serial-vs-parallel output; a single unordered_map
// iteration feeding an RNG draw or a floating-point fold, or one stray
// wall-clock read, silently corrupts every golden file.  This tool makes
// those mistakes loud at lint time instead of mysterious at figure time.
//
// Rules (each has a tag used in suppression comments):
//
//   entropy    — no wall-clock / entropy sources (std::random_device,
//                rand()/srand(), time(nullptr), system_clock,
//                high_resolution_clock, gettimeofday) outside allowlisted
//                harness files.  Simulated time comes from des::Simulation;
//                randomness from util::Rng seeded by the RunSpec.
//   ordered    — no range-for over an unordered_map/unordered_set in code
//                that draws from an RNG, appends to metrics/output, or
//                accumulates floating-point sums: iteration order is
//                implementation-defined, so the result is too.
//   guarded    — every data member of a mutex-holding class carries a
//                LOBSTER_GUARDED_BY / LOBSTER_NOT_GUARDED annotation
//                (util/thread_annotations.hpp).
//   nodiscard  — metrics/stats accessors ([[nodiscard]] name set below)
//                declared in headers must be [[nodiscard]]: a discarded
//                metrics read is always a bug.
//   hotpath    — no std::map / std::unordered_map data members in classes
//                under the DES hot-path roots (src/des/, src/lobsim/): the
//                kernel flattening replaced node-based containers with
//                handle-indexed slab arrays (des/handle.hpp), and a new map
//                member reintroduces per-entity allocation and pointer
//                chasing on the event path.  Audited exceptions carry a
//                `lobster-lint: hotpath-ok(<reason>)` suppression.
//   lockorder  — corpus-wide lock-acquisition graph: RAII acquisitions in
//                nested lexical scopes plus call edges resolved through the
//                class model (method A locks m1 then calls B which locks
//                m2).  Any cycle is a potential deadlock; any cross-class
//                edge must be declared with LOBSTER_ACQUIRED_BEFORE/AFTER
//                on the mutex member (the canonical hierarchy lives in
//                DESIGN.md).
//   guardeduse — reads/writes of a LOBSTER_GUARDED_BY(m) member from a
//                method whose lexical lock-set does not include `m` (the
//                lost-wakeup class PR 8 fixed by hand).  Condition-variable
//                wait predicates are accesses; atomic loads of guarded
//                members outside the mutex are findings, not exemptions.
//   counterplane — every counter/gauge registration literal matches the
//                `layer.subsystem.metric` grammar and is registered at
//                exactly one site; every counter named in the docs passed
//                via --doc (README/EXPERIMENTS) exists in code.
//
// Suppressions are audited: `// lobster-lint: <tag>-ok(<reason>)` on the
// flagged line or the line above silences that rule there; an empty reason
// is itself a finding, and so is a stale suppression that no longer
// silences anything (placeholder reasons spelled `<like this>` in prose
// comments are exempt).
//
// Include-graph awareness: `#include "a/b.hpp"` edges between scanned files
// are resolved by path suffix, so a .cpp iterating a container declared in
// its header is still caught.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lobster::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;
  bool header = false;
  /// Original text, line by line (suppression comments live here).
  std::vector<std::string> raw;
  /// Same lines with comments and string/char literals blanked to spaces,
  /// so token scans never fire inside a string or a comment.
  std::vector<std::string> code;
  /// Start column of the `//` comment on each line (npos when none); a
  /// `//` inside a string literal is not a comment.
  std::vector<std::size_t> comment;
  /// Targets of `#include "..."` directives, as written.
  std::vector<std::string> includes;
  /// 0-based lines whose suppression marker silenced a finding this run;
  /// filled by find_suppression, read by the stale-suppression audit.
  mutable std::set<std::size_t> suppressions_used;
};

/// A documentation file (README/EXPERIMENTS) cross-checked by the
/// counterplane rule: backticked `layer.subsystem.metric` tokens must name
/// counters that exist in code.
struct DocFile {
  std::string path;
  std::vector<std::string> raw;
};

/// Build a SourceFile from in-memory text (fixture tests use this).
SourceFile make_source(std::string path, const std::string& text);

struct Corpus {
  std::vector<SourceFile> files;
  std::vector<DocFile> docs;

  /// Resolve an include target ("util/rng.hpp") to a corpus file by path
  /// suffix; nullptr when the target is outside the scanned set.
  const SourceFile* resolve(const std::string& include) const;

  /// Names of variables declared with an unordered container type in `f`
  /// or any transitively included corpus file.
  std::set<std::string> unordered_names(const SourceFile& f) const;
};

/// Recursively collect .hpp/.cpp/.h/.cc files under `roots` (files may also
/// be named directly).  Deterministic order; throws on an unreadable root.
Corpus load_corpus(const std::vector<std::string>& roots);

/// Build a DocFile from in-memory text (fixture tests use this).
DocFile make_doc(std::string path, const std::string& text);

/// Load a documentation file into the corpus; throws when unreadable.
void load_doc(Corpus& corpus, const std::string& path);

struct Suppression {
  bool present = false;  ///< a `lobster-lint: <tag>-ok(...)` marker exists
  bool valid = false;    ///< ...and carries a non-empty reason
  std::string reason;
};

/// Look for a suppression of `tag` on raw line `line_idx` (0-based) or the
/// line above.
Suppression find_suppression(const SourceFile& f, std::size_t line_idx,
                             const std::string& tag);

struct Options {
  /// Path suffixes allowed to read wall clocks / entropy (timing harnesses).
  std::vector<std::string> entropy_allowlist;
  /// Path fragments whose classes may not hold std::map / std::unordered_map
  /// data members (the hotpath rule).
  std::vector<std::string> hotpath_roots = {"src/des/", "src/lobsim/"};
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  /// Suppression tag (`<tag>-ok`).
  virtual const char* tag() const = 0;
  virtual void check(const SourceFile& f, const Corpus& corpus,
                     std::vector<Finding>& out) const = 0;
  /// Whole-corpus analyses (lockorder, guardeduse, counterplane) override
  /// this instead of the per-file hook.
  virtual void check_corpus(const Corpus& corpus,
                            std::vector<Finding>& out) const {
    (void)corpus;
    (void)out;
  }
};

std::vector<std::unique_ptr<Rule>> make_rules(const Options& opts);

/// The corpus-level rule factories (rules_lock.cpp); make_rules includes
/// all three.
std::unique_ptr<Rule> make_lockorder_rule();
std::unique_ptr<Rule> make_guardeduse_rule();
std::unique_ptr<Rule> make_counterplane_rule();

/// Run every rule over every file, then every corpus-level rule; also
/// audits suppressions (empty reason, malformed marker, stale marker that
/// silenced nothing).  Findings are ordered by file, then line.
std::vector<Finding> run(const Corpus& corpus, const Options& opts);

// ---- baseline & machine-readable output -----------------------------------

/// One baselined finding class: `count` occurrences of `message` from
/// `rule` in `file` (path normalized to its repo-relative suffix, line
/// numbers deliberately excluded so unrelated edits don't churn the file).
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string message;
  std::size_t count = 0;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Strip everything before the repo-relative root (src/, tools/, bench/,
/// tests/, examples/) so baselines match regardless of invocation cwd.
std::string normalize_path(const std::string& path);

Baseline make_baseline(const std::vector<Finding>& findings);
std::string baseline_to_json(const Baseline& b);
/// Throws std::runtime_error on malformed input.
Baseline parse_baseline_json(const std::string& text);

/// Baseline drift: `fresh` findings not covered by the baseline, `stale`
/// baseline entries (or occurrence surplus) no longer produced — CI fails
/// on either direction.
struct BaselineDiff {
  std::vector<Finding> fresh;
  std::vector<BaselineEntry> stale;
};
BaselineDiff diff_against_baseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings);

std::string findings_to_json(const std::vector<Finding>& findings);
/// SARIF 2.1.0 (one run, physical locations with 1-based lines).
std::string findings_to_sarif(const std::vector<Finding>& findings);

// ---- shared token helpers (exposed for the rule implementations/tests) ----

bool is_identifier_char(char c);
/// True when `token` occurs in `line` delimited by non-identifier chars.
bool has_token(const std::string& line, const std::string& token);
/// Copy of `s` without leading/trailing whitespace.
std::string trim(const std::string& s);
/// Does the buffered statement text introduce a class/struct body?  Shared
/// by every rule that tracks class scopes by brace counting.
bool opens_class_body(const std::string& stmt);

}  // namespace lobster::lint

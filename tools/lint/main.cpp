// lobster_lint — determinism & concurrency hygiene linter for the lobster
// tree.  See lint.hpp for the rule catalogue.
//
// Usage: lobster_lint [--allow-entropy SUFFIX]... [--hotpath-root FRAG]...
//        [--doc FILE]... [--baseline FILE | --write-baseline FILE]
//        [--format text|json] [--sarif FILE] <path>...
//
// Exit codes: 0 clean, 1 findings (or baseline drift), 2 usage/IO error.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: lobster_lint [options] <path>...\n"
      "\n"
      "Scans .hpp/.cpp/.h/.cc files under each path for determinism\n"
      "and concurrency hygiene violations (entropy sources, unordered\n"
      "iteration feeding order-sensitive work, unannotated members of\n"
      "mutex-holding classes, non-[[nodiscard]] metrics accessors,\n"
      "map members in DES hot-path classes, lock-order cycles and\n"
      "undeclared cross-class lock edges, guarded-member accesses\n"
      "outside the mutex, and counter-plane contract violations).\n"
      "\n"
      "  --allow-entropy SUFFIX   path suffix permitted to read wall\n"
      "                           clocks / entropy (repeatable)\n"
      "  --hotpath-root FRAG      path fragment whose classes may not\n"
      "                           hold std::map members (repeatable;\n"
      "                           default: src/des/ src/lobsim/)\n"
      "  --doc FILE               documentation file whose backticked\n"
      "                           counter names must exist in code\n"
      "                           (repeatable)\n"
      "  --baseline FILE          known-findings baseline; exit 1 only on\n"
      "                           drift (new findings OR stale entries)\n"
      "  --write-baseline FILE    write the current findings as the\n"
      "                           baseline and exit 0\n"
      "  --format text|json       findings format on stdout/stderr\n"
      "                           (default text, to stderr)\n"
      "  --sarif FILE             also write SARIF 2.1.0 to FILE\n");
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << text;
  return static_cast<bool>(os);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  return text;
}

void print_findings(const std::vector<lobster::lint::Finding>& findings) {
  for (const auto& f : findings)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> docs;
  lobster::lint::Options opts;
  std::string baseline_path, write_baseline_path, sarif_path;
  std::string format = "text";
  bool hotpath_overridden = false;

  const auto need_value = [&](int i) {
    if (i + 1 < argc) return true;
    usage();
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-entropy") {
      if (!need_value(i)) return 2;
      opts.entropy_allowlist.push_back(argv[++i]);
    } else if (arg == "--hotpath-root") {
      if (!need_value(i)) return 2;
      if (!hotpath_overridden) {
        opts.hotpath_roots.clear();
        hotpath_overridden = true;
      }
      opts.hotpath_roots.push_back(argv[++i]);
    } else if (arg == "--doc") {
      if (!need_value(i)) return 2;
      docs.push_back(argv[++i]);
    } else if (arg == "--baseline") {
      if (!need_value(i)) return 2;
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (!need_value(i)) return 2;
      write_baseline_path = argv[++i];
    } else if (arg == "--sarif") {
      if (!need_value(i)) return 2;
      sarif_path = argv[++i];
    } else if (arg == "--format") {
      if (!need_value(i)) return 2;
      format = argv[++i];
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "lobster_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lobster_lint: unknown flag '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty() ||
      (!baseline_path.empty() && !write_baseline_path.empty())) {
    usage();
    return 2;
  }

  try {
    lobster::lint::Corpus corpus = lobster::lint::load_corpus(roots);
    for (const std::string& doc : docs) lobster::lint::load_doc(corpus, doc);
    const std::vector<lobster::lint::Finding> findings =
        lobster::lint::run(corpus, opts);

    if (!sarif_path.empty() &&
        !write_file(sarif_path, lobster::lint::findings_to_sarif(findings))) {
      std::fprintf(stderr, "lobster_lint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    if (!write_baseline_path.empty()) {
      const lobster::lint::Baseline b = lobster::lint::make_baseline(findings);
      if (!write_file(write_baseline_path,
                      lobster::lint::baseline_to_json(b))) {
        std::fprintf(stderr, "lobster_lint: cannot write %s\n",
                     write_baseline_path.c_str());
        return 2;
      }
      std::fprintf(stderr,
                   "lobster_lint: wrote baseline with %zu entry(ies) "
                   "covering %zu finding(s)\n",
                   b.entries.size(), findings.size());
      return 0;
    }

    if (format == "json") std::fputs(
        lobster::lint::findings_to_json(findings).c_str(), stdout);

    if (!baseline_path.empty()) {
      const lobster::lint::Baseline baseline =
          lobster::lint::parse_baseline_json(read_file(baseline_path));
      const lobster::lint::BaselineDiff diff =
          lobster::lint::diff_against_baseline(baseline, findings);
      if (format == "text") print_findings(diff.fresh);
      for (const auto& e : diff.stale)
        std::fprintf(stderr,
                     "%s: [%s] stale baseline entry (%zux): %s\n",
                     e.file.c_str(), e.rule.c_str(), e.count,
                     e.message.c_str());
      std::fprintf(stderr,
                   "lobster_lint: %zu file(s), %zu finding(s), %zu new, "
                   "%zu stale baseline entry(ies)\n",
                   corpus.files.size(), findings.size(), diff.fresh.size(),
                   diff.stale.size());
      return diff.fresh.empty() && diff.stale.empty() ? 0 : 1;
    }

    if (format == "text") print_findings(findings);
    std::fprintf(stderr, "lobster_lint: %zu file(s), %zu finding(s)\n",
                 corpus.files.size(), findings.size());
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lobster_lint: %s\n", e.what());
    return 2;
  }
}

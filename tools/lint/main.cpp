// lobster_lint — determinism & concurrency hygiene linter for the lobster
// tree.  See lint.hpp for the rule catalogue.
//
// Usage: lobster_lint [--allow-entropy SUFFIX]... [--hotpath-root FRAG]...
//        <path>...
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lobster_lint [--allow-entropy SUFFIX]... <path>...\n"
               "\n"
               "Scans .hpp/.cpp/.h/.cc files under each path for determinism\n"
               "and concurrency hygiene violations (entropy sources, unordered\n"
               "iteration feeding order-sensitive work, unannotated members of\n"
               "mutex-holding classes, non-[[nodiscard]] metrics accessors,\n"
               "map members in DES hot-path classes).\n"
               "\n"
               "  --allow-entropy SUFFIX   path suffix permitted to read wall\n"
               "                           clocks / entropy (repeatable)\n"
               "  --hotpath-root FRAG      path fragment whose classes may not\n"
               "                           hold std::map members (repeatable;\n"
               "                           default: src/des/ src/lobsim/)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  lobster::lint::Options opts;
  bool hotpath_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-entropy") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      opts.entropy_allowlist.push_back(argv[++i]);
    } else if (arg == "--hotpath-root") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      if (!hotpath_overridden) {
        opts.hotpath_roots.clear();
        hotpath_overridden = true;
      }
      opts.hotpath_roots.push_back(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lobster_lint: unknown flag '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  try {
    const lobster::lint::Corpus corpus = lobster::lint::load_corpus(roots);
    const std::vector<lobster::lint::Finding> findings =
        lobster::lint::run(corpus, opts);
    for (const auto& f : findings)
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    std::fprintf(stderr, "lobster_lint: %zu file(s), %zu finding(s)\n",
                 corpus.files.size(), findings.size());
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lobster_lint: %s\n", e.what());
    return 2;
  }
}

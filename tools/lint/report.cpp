// report.cpp — baseline bookkeeping and machine-readable output for
// lobster_lint.
//
// The baseline fingerprints each finding as (rule, normalized path,
// message, count) — no line numbers, so unrelated edits above a baselined
// finding don't churn the file.  CI fails on drift in either direction:
// fresh findings mean a regression, stale entries mean the baseline lies
// about the tree and must be re-generated (--write-baseline).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lint/lint.hpp"

namespace lobster::lint {

namespace {

const char* const kRoots[] = {"src/", "tools/", "bench/", "tests/",
                              "examples/"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---- a tiny strict JSON reader (objects/arrays/strings/numbers only; just
// enough for baseline files, which this tool also writes) ------------------

struct JsonReader {
  const std::string& text;
  std::size_t pos = 0;

  explicit JsonReader(const std::string& t) : text(t) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("baseline JSON: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (pos + 4 > text.size()) fail("short \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (v < 0x80) out.push_back(static_cast<char>(v));
            else fail("non-ASCII \\u escape unsupported");
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }
  std::size_t number() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    if (pos == start) fail("expected a number");
    return static_cast<std::size_t>(
        std::stoull(text.substr(start, pos - start)));
  }
};

}  // namespace

std::string normalize_path(const std::string& path) {
  // Prefer the latest (deepest) marker so an absolute build path like
  // /home/x/repo/tools/lint/foo.cpp trims to tools/lint/foo.cpp.
  std::size_t best = std::string::npos;
  for (const char* root : kRoots) {
    std::size_t from = 0;
    while (true) {
      const std::size_t hit = path.find(root, from);
      if (hit == std::string::npos) break;
      if (hit == 0 || path[hit - 1] == '/')
        if (best == std::string::npos || hit > best) best = hit;
      from = hit + 1;
    }
  }
  if (best == std::string::npos) return path;
  return path.substr(best);
}

Baseline make_baseline(const std::vector<Finding>& findings) {
  std::map<std::tuple<std::string, std::string, std::string>, std::size_t>
      counts;
  for (const Finding& f : findings)
    ++counts[{f.rule, normalize_path(f.file), f.message}];
  Baseline b;
  for (const auto& [key, count] : counts)
    b.entries.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), count});
  return b;
}

std::string baseline_to_json(const Baseline& b) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const BaselineEntry& e = b.entries[i];
    os << (i ? "," : "") << "\n    {\"rule\": \"" << json_escape(e.rule)
       << "\", \"file\": \"" << json_escape(e.file) << "\", \"count\": "
       << e.count << ",\n     \"message\": \"" << json_escape(e.message)
       << "\"}";
  }
  if (!b.entries.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

Baseline parse_baseline_json(const std::string& text) {
  JsonReader r(text);
  Baseline b;
  r.expect('{');
  while (r.peek() != '}') {
    const std::string key = r.string();
    r.expect(':');
    if (key == "version") {
      if (r.number() != 1)
        throw std::runtime_error("baseline JSON: unsupported version");
    } else if (key == "findings") {
      r.expect('[');
      while (r.peek() != ']') {
        r.expect('{');
        BaselineEntry e;
        while (r.peek() != '}') {
          const std::string k = r.string();
          r.expect(':');
          if (k == "rule") e.rule = r.string();
          else if (k == "file") e.file = r.string();
          else if (k == "message") e.message = r.string();
          else if (k == "count") e.count = r.number();
          else r.fail("unknown entry key `" + k + "`");
          if (r.peek() == ',') ++r.pos;
        }
        r.expect('}');
        if (e.rule.empty() || e.file.empty() || e.message.empty() ||
            e.count == 0)
          r.fail("incomplete baseline entry");
        b.entries.push_back(e);
        if (r.peek() == ',') ++r.pos;
      }
      r.expect(']');
    } else {
      r.fail("unknown top-level key `" + key + "`");
    }
    if (r.peek() == ',') ++r.pos;
  }
  r.expect('}');
  return b;
}

BaselineDiff diff_against_baseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings) {
  std::map<std::tuple<std::string, std::string, std::string>, std::size_t>
      budget;
  for (const BaselineEntry& e : baseline.entries)
    budget[{e.rule, e.file, e.message}] += e.count;

  BaselineDiff diff;
  for (const Finding& f : findings) {
    const auto key =
        std::make_tuple(f.rule, normalize_path(f.file), f.message);
    const auto it = budget.find(key);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    diff.fresh.push_back(f);
  }
  for (const auto& [key, left] : budget) {
    if (left == 0) continue;
    diff.stale.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), left});
  }
  return diff;
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "\n    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\",\n     \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  if (!findings.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

std::string findings_to_sarif(const std::vector<Finding>& findings) {
  // Rule catalogue: one reportingDescriptor per distinct rule seen.
  std::vector<std::string> rules;
  std::map<std::string, std::size_t> rule_index;
  for (const Finding& f : findings)
    if (rule_index.emplace(f.rule, rules.size()).second)
      rules.push_back(f.rule);

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\"name\": \"lobster_lint\", "
        "\"informationUri\": \"tools/lint\", \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i)
    os << (i ? ", " : "") << "{\"id\": \"" << json_escape(rules[i]) << "\"}";
  os << "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "\n      {\"ruleId\": \"" << json_escape(f.rule)
       << "\", \"ruleIndex\": " << rule_index[f.rule]
       << ", \"level\": \"error\",\n       \"message\": {\"text\": \""
       << json_escape(f.message) << "\"},\n       \"locations\": "
       << "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(normalize_path(f.file))
       << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  if (!findings.empty()) os << "\n    ";
  os << "]\n  }]\n}\n";
  return os.str();
}

}  // namespace lobster::lint

// bench_gate — the perf-regression gate over BENCH_*.json snapshots.
//
// Each micro/fig bench writes a headline snapshot (bench/bench_json.hpp):
//
//   {"bench": "micro_des", "events_per_s": 6.9e6, "wall_s": 0.14, ...}
//
// The repo commits the snapshots measured at merge time; CI re-runs the
// benches and feeds both files to this gate, which fails when the fresh
// events/s falls more than the allowed fraction below the committed
// baseline.  The headline numbers are steady-state event throughput with
// setup excluded, so a regression here is a real hot-path regression, not
// a build-farm hiccup in workload construction.
//
// Usage: bench_gate [--max-regress PCT] BASELINE FRESH [BASELINE FRESH]...
//
// Exit codes: 0 within bounds, 1 regression, 2 usage/IO error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Snapshot {
  std::string bench;
  double events_per_s = 0.0;
};

/// Minimal parse of the flat snapshot JSON: the files are produced by
/// bench_json.hpp, so a key scan is sufficient (no nesting, no escapes in
/// the values we read).
bool parse_snapshot(const std::string& path, Snapshot* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  const auto number_after = [&](const std::string& key, double* value) {
    const std::size_t k = text.find("\"" + key + "\"");
    if (k == std::string::npos) return false;
    const std::size_t colon = text.find(':', k);
    if (colon == std::string::npos) return false;
    *value = std::strtod(text.c_str() + colon + 1, nullptr);
    return true;
  };
  const std::size_t k = text.find("\"bench\"");
  if (k != std::string::npos) {
    const std::size_t open = text.find('"', text.find(':', k));
    const std::size_t close =
        open == std::string::npos ? open : text.find('"', open + 1);
    if (close != std::string::npos)
      out->bench = text.substr(open + 1, close - open - 1);
  }
  return number_after("events_per_s", &out->events_per_s) &&
         out->events_per_s > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regress_pct = 15.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: --max-regress needs a value\n");
        return 2;
      }
      max_regress_pct = std::atof(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      std::fprintf(stderr,
                   "usage: bench_gate [--max-regress PCT] BASELINE FRESH "
                   "[BASELINE FRESH]...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || files.size() % 2 != 0) {
    std::fprintf(stderr,
                 "bench_gate: need BASELINE FRESH file pairs "
                 "(got %zu file(s))\n",
                 files.size());
    return 2;
  }

  bool regressed = false;
  for (std::size_t i = 0; i + 1 < files.size(); i += 2) {
    Snapshot base, fresh;
    if (!parse_snapshot(files[i], &base)) {
      std::fprintf(stderr, "bench_gate: cannot read baseline %s\n",
                   files[i].c_str());
      return 2;
    }
    if (!parse_snapshot(files[i + 1], &fresh)) {
      std::fprintf(stderr, "bench_gate: cannot read fresh %s\n",
                   files[i + 1].c_str());
      return 2;
    }
    const double delta_pct =
        100.0 * (fresh.events_per_s - base.events_per_s) / base.events_per_s;
    const bool bad = delta_pct < -max_regress_pct;
    regressed = regressed || bad;
    std::printf("%-28s %12.4g -> %12.4g events/s  %+7.2f%%  %s\n",
                (base.bench.empty() ? files[i] : base.bench).c_str(),
                base.events_per_s, fresh.events_per_s, delta_pct,
                bad ? "REGRESSION" : "ok");
  }
  if (regressed) {
    std::fprintf(stderr,
                 "bench_gate: events/s fell more than %.1f%% below the "
                 "committed snapshot\n",
                 max_regress_pct);
    return 1;
  }
  return 0;
}

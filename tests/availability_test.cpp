// Tests for the pluggable availability models: spec parsing, trace CSV
// loading, the bit-for-bit equivalence of the weibull model with the legacy
// empirical-log draw, trace replay phase arithmetic, diurnal modulation and
// burst correlation, and the expected_lifetime() query every model exposes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/task_size_model.hpp"
#include "lobsim/availability.hpp"
#include "util/rng.hpp"

namespace lobster::lobsim {
namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(body.c_str(), f);
  std::fclose(f);
  return path;
}

// ---- spec parsing ----------------------------------------------------------

TEST(AvailabilitySpec, DefaultsPerKind) {
  const auto w = parse_availability_spec("weibull");
  EXPECT_EQ(w.kind, AvailabilityKind::Weibull);
  EXPECT_DOUBLE_EQ(w.scale_hours, 4.0);
  EXPECT_DOUBLE_EQ(w.shape, 0.8);

  const auto d = parse_availability_spec("diurnal");
  EXPECT_EQ(d.kind, AvailabilityKind::Diurnal);
  EXPECT_DOUBLE_EQ(d.diurnal_amplitude, 0.6);
  EXPECT_DOUBLE_EQ(d.diurnal_peak_hour, 14.0);

  const auto b = parse_availability_spec("adversarial-burst");
  EXPECT_EQ(b.kind, AvailabilityKind::AdversarialBurst);
  EXPECT_DOUBLE_EQ(b.burst_period_hours, 6.0);
  EXPECT_DOUBLE_EQ(b.burst_fraction, 0.5);
  // "burst" is accepted as shorthand.
  EXPECT_EQ(parse_availability_spec("burst").kind,
            AvailabilityKind::AdversarialBurst);
}

TEST(AvailabilitySpec, KeyValueOverrides) {
  const auto w = parse_availability_spec("weibull:scale=8,shape=1.2");
  EXPECT_DOUBLE_EQ(w.scale_hours, 8.0);
  EXPECT_DOUBLE_EQ(w.shape, 1.2);

  const auto d =
      parse_availability_spec("diurnal:amplitude=0.3,peak=9,scale=6");
  EXPECT_DOUBLE_EQ(d.diurnal_amplitude, 0.3);
  EXPECT_DOUBLE_EQ(d.diurnal_peak_hour, 9.0);
  EXPECT_DOUBLE_EQ(d.scale_hours, 6.0);

  const auto b = parse_availability_spec("burst:period=3,fraction=0.8");
  EXPECT_DOUBLE_EQ(b.burst_period_hours, 3.0);
  EXPECT_DOUBLE_EQ(b.burst_fraction, 0.8);
}

TEST(AvailabilitySpec, ScaleAcceptsDurationSuffixes) {
  EXPECT_DOUBLE_EQ(parse_availability_spec("weibull:scale=90m").scale_hours,
                   1.5);
  EXPECT_DOUBLE_EQ(parse_availability_spec("weibull:scale=1.5h").scale_hours,
                   1.5);
  EXPECT_DOUBLE_EQ(
      parse_availability_spec("burst:period=30m").burst_period_hours, 0.5);
}

TEST(AvailabilitySpec, TracePathShorthand) {
  const auto bare = parse_availability_spec("trace:/data/evictions.csv");
  EXPECT_EQ(bare.kind, AvailabilityKind::Trace);
  EXPECT_EQ(bare.trace_path, "/data/evictions.csv");
  const auto keyed = parse_availability_spec("trace:path=/data/evictions.csv");
  EXPECT_EQ(keyed.trace_path, "/data/evictions.csv");
}

TEST(AvailabilitySpec, RejectsUnknownKindsAndKeys) {
  EXPECT_THROW(parse_availability_spec("uniform"), std::invalid_argument);
  EXPECT_THROW(parse_availability_spec("weibull:period=3"),
               std::invalid_argument);
  EXPECT_THROW(parse_availability_spec("diurnal:path=/x"),
               std::invalid_argument);
  EXPECT_THROW(parse_availability_spec("weibull:scale"),
               std::invalid_argument);
  EXPECT_THROW(parse_availability_spec("weibull:scale=abc"),
               std::invalid_argument);
  EXPECT_THROW(parse_availability_spec("diurnal:amplitude=0.3x"),
               std::invalid_argument);
}

TEST(AvailabilitySpec, ToStringRoundTrip) {
  for (const char* name :
       {"weibull", "trace", "diurnal", "adversarial-burst"}) {
    auto cfg = parse_availability_spec(name);
    EXPECT_STREQ(to_string(cfg.kind), name);
  }
}

// ---- trace CSV loading -----------------------------------------------------

TEST(TraceCsv, ParsesCommentsBlanksAndColumns) {
  const auto path = write_temp("trace_ok.csv",
                               "# eviction intervals, seconds\n"
                               "3600\n"
                               "\n"
                               "1800, 7200,  900\n"
                               "120.5  # trailing comment\n");
  const auto intervals = load_trace_csv(path);
  ASSERT_EQ(intervals.size(), 5u);
  EXPECT_DOUBLE_EQ(intervals[0], 3600.0);
  EXPECT_DOUBLE_EQ(intervals[1], 1800.0);
  EXPECT_DOUBLE_EQ(intervals[2], 7200.0);
  EXPECT_DOUBLE_EQ(intervals[3], 900.0);
  EXPECT_DOUBLE_EQ(intervals[4], 120.5);
  std::remove(path.c_str());
}

TEST(TraceCsv, RejectsBadInput) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"),
               std::invalid_argument);
  const auto empty = write_temp("trace_empty.csv", "# only comments\n\n");
  EXPECT_THROW(load_trace_csv(empty), std::invalid_argument);
  std::remove(empty.c_str());
  const auto soup = write_temp("trace_soup.csv", "3600\nbanana\n");
  EXPECT_THROW(load_trace_csv(soup), std::invalid_argument);
  std::remove(soup.c_str());
  const auto negative = write_temp("trace_neg.csv", "3600\n-5\n");
  EXPECT_THROW(load_trace_csv(negative), std::invalid_argument);
  std::remove(negative.c_str());
}

// ---- weibull: bit-for-bit with the legacy draw -----------------------------

TEST(WeibullAvailabilityTest, MatchesLegacyEmpiricalDrawBitForBit) {
  // The pre-refactor SiteManager synthesized a 50k-lifetime log from the
  // site's "availability" stream and drew via inverse CDF from the worker's
  // stream.  The weibull model must reproduce that draw sequence exactly.
  util::Rng root(2015);
  const core::EmpiricalEviction legacy(util::EmpiricalDistribution(
      core::synthesize_availability_log(50000, root.stream("availability", 0),
                                        0.8, 4.0)));
  const WeibullAvailability model(root.stream("availability", 0), 0.8, 4.0);

  util::Rng worker_a = root.stream("node.campus", 3);
  util::Rng worker_b = root.stream("node.campus", 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.sample_survival(worker_a),
              legacy.sample_survival(worker_b));
  }
  // The clocked entry point ignores now/phase: same stream, same draws.
  util::Rng worker_c = root.stream("node.campus", 3);
  util::Rng worker_d = root.stream("node.campus", 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample_survival_at(worker_c, 1e6 * i, 17u),
              model.sample_survival_at(worker_d, 0.0, 0u));
  }
  EXPECT_GT(model.expected_lifetime(0.0), 0.0);
  EXPECT_EQ(model.expected_lifetime(0.0), model.distribution().mean());
}

TEST(WeibullAvailabilityTest, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_THROW(WeibullAvailability(rng, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(WeibullAvailability(rng, 0.8, -1.0), std::invalid_argument);
}

// ---- trace replay ----------------------------------------------------------

TEST(TraceAvailabilityTest, CyclesWithPhaseOffsets) {
  const auto intervals = std::make_shared<const std::vector<double>>(
      std::vector<double>{100.0, 200.0, 300.0});
  const TraceAvailability model(intervals);
  util::Rng rng(7);
  // Incarnation k of the worker at phase p reads entry (p + k) mod n.
  EXPECT_DOUBLE_EQ(model.sample_survival_at(rng, 0.0, 0), 100.0);
  EXPECT_DOUBLE_EQ(model.sample_survival_at(rng, 0.0, 1), 200.0);
  EXPECT_DOUBLE_EQ(model.sample_survival_at(rng, 0.0, 2), 300.0);
  EXPECT_DOUBLE_EQ(model.sample_survival_at(rng, 0.0, 3), 100.0);
  EXPECT_DOUBLE_EQ(model.sample_survival_at(rng, 5e5, 1000001), 300.0);
  // The replay consumes no RNG state: the stream is untouched.
  util::Rng fresh(7);
  EXPECT_EQ(rng.uniform(), fresh.uniform());
  // Expected lifetime is the log mean, clock-independent.
  EXPECT_DOUBLE_EQ(model.expected_lifetime(0.0), 200.0);
  EXPECT_DOUBLE_EQ(model.expected_lifetime(12345.0), 200.0);
}

TEST(TraceAvailabilityTest, ClockFreeDrawSamplesTheLog) {
  const auto intervals = std::make_shared<const std::vector<double>>(
      std::vector<double>{100.0, 200.0, 300.0});
  const TraceAvailability model(intervals);
  util::Rng rng(99);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) {
    const double v = model.sample_survival(rng);
    EXPECT_TRUE(v == 100.0 || v == 200.0 || v == 300.0);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u) << "uniform draw should cover the log";
}

TEST(TraceAvailabilityTest, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(
      TraceAvailability(std::make_shared<const std::vector<double>>()),
      std::invalid_argument);
  EXPECT_THROW(TraceAvailability(std::make_shared<const std::vector<double>>(
                   std::vector<double>{60.0, 0.0})),
               std::invalid_argument);
  EXPECT_THROW(TraceAvailability(nullptr), std::invalid_argument);
}

// ---- diurnal modulation ----------------------------------------------------

TEST(DiurnalAvailabilityTest, ScaleBottomsOutAtPeakHour) {
  const DiurnalAvailability model(0.8, 4.0, 0.6, 14.0);
  const double base = 4.0 * 3600.0;
  const double at_peak = model.scale_at(14.0 * 3600.0);
  const double at_trough = model.scale_at(2.0 * 3600.0);  // 12 h later
  EXPECT_NEAR(at_peak, base * 0.4, 1e-6);
  EXPECT_NEAR(at_trough, base * 1.6, 1e-6);
  // 24 h periodicity.
  EXPECT_NEAR(model.scale_at(14.0 * 3600.0 + 86400.0 * 3.0), at_peak, 1e-6);
  // Expected lifetime tracks the scale: harshest at the peak hour.
  EXPECT_LT(model.expected_lifetime(14.0 * 3600.0),
            model.expected_lifetime(2.0 * 3600.0));
  // Weibull mean = scale * Gamma(1 + 1/shape).
  EXPECT_NEAR(model.expected_lifetime(14.0 * 3600.0),
              at_peak * std::tgamma(1.0 + 1.0 / 0.8), 1e-6);
}

TEST(DiurnalAvailabilityTest, ZeroAmplitudeIsTimeInvariant) {
  const DiurnalAvailability model(0.8, 4.0, 0.0, 14.0);
  for (double t : {0.0, 3600.0, 50400.0, 200000.0})
    EXPECT_DOUBLE_EQ(model.scale_at(t), 4.0 * 3600.0);
  // Same stream, same instant: identical draw (determinism).
  util::Rng a(5), b(5);
  EXPECT_EQ(model.sample_survival_at(a, 7200.0, 0),
            model.sample_survival_at(b, 7200.0, 9));
}

TEST(DiurnalAvailabilityTest, RejectsBadParameters) {
  EXPECT_THROW(DiurnalAvailability(0.8, 4.0, 1.0, 14.0),
               std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.8, 4.0, -0.1, 14.0),
               std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.8, 4.0, 0.6, 24.0),
               std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.0, 4.0, 0.6, 14.0),
               std::invalid_argument);
}

// ---- adversarial bursts ----------------------------------------------------

TEST(AdversarialBurstTest, VictimsDieExactlyAtTheNextBurst) {
  // fraction = 1: every incarnation is a victim, so every survival ends at
  // the next burst instant — total correlation.
  const AdversarialBurstAvailability model(0.8, 4.0, 2.0, 1.0);
  const double period = 2.0 * 3600.0;
  util::Rng rng(11);
  for (double now : {0.0, 100.0, 7100.0, 7200.0, 100000.0}) {
    const double survival = model.sample_survival_at(rng, now, 0);
    const double expected = (std::floor(now / period) + 1.0) * period - now;
    EXPECT_DOUBLE_EQ(survival, expected) << "now = " << now;
    EXPECT_DOUBLE_EQ(model.next_burst(now) - now, expected);
  }
  // Two workers starting together die together: the correlation that makes
  // this climate the worst case for merge-group loss.
  util::Rng a(1), b(2);
  EXPECT_EQ(model.sample_survival_at(a, 555.0, 0),
            model.sample_survival_at(b, 555.0, 7));
}

TEST(AdversarialBurstTest, ZeroFractionIsPlainWeibull) {
  const AdversarialBurstAvailability model(0.8, 4.0, 2.0, 0.0);
  util::Rng a(42), b(42);
  // chance(0.0) must still consume the stream identically for determinism,
  // so compare against a model draw, not a raw weibull draw.
  const double s1 = model.sample_survival_at(a, 0.0, 0);
  const double s2 = model.sample_survival_at(b, 0.0, 0);
  EXPECT_EQ(s1, s2);
  EXPECT_GT(s1, 0.0);
  // Expected lifetime reduces to the Weibull mean.
  EXPECT_NEAR(model.expected_lifetime(0.0),
              4.0 * 3600.0 * std::tgamma(1.0 + 1.0 / 0.8), 1e-6);
}

TEST(AdversarialBurstTest, ExpectedLifetimeBlendsBurstAndBase) {
  const AdversarialBurstAvailability model(0.8, 4.0, 2.0, 0.5);
  const double weibull_mean = 4.0 * 3600.0 * std::tgamma(1.0 + 1.0 / 0.8);
  // Just after a burst the next one is a full period away; just before it,
  // victims have almost no time left, so the expectation dips.
  const double after = model.expected_lifetime(0.0);
  const double before = model.expected_lifetime(2.0 * 3600.0 - 1.0);
  EXPECT_NEAR(after, 0.5 * 2.0 * 3600.0 + 0.5 * weibull_mean, 1e-6);
  EXPECT_LT(before, after);
  EXPECT_THROW(AdversarialBurstAvailability(0.8, 4.0, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(AdversarialBurstAvailability(0.8, 4.0, 2.0, 1.5),
               std::invalid_argument);
}

// ---- factory ---------------------------------------------------------------

TEST(AvailabilityFactory, BuildsEveryKind) {
  util::Rng root(2015);
  AvailabilityConfig cfg;
  for (auto kind : {AvailabilityKind::Weibull, AvailabilityKind::Diurnal,
                    AvailabilityKind::AdversarialBurst}) {
    cfg.kind = kind;
    const auto model = make_availability_model(cfg, root.stream("a", 0));
    ASSERT_NE(model, nullptr);
    EXPECT_STREQ(model->name(), to_string(kind));
    EXPECT_GT(model->expected_lifetime(0.0), 0.0);
  }
  cfg.kind = AvailabilityKind::Trace;
  cfg.trace = std::make_shared<const std::vector<double>>(
      std::vector<double>{60.0, 120.0});
  const auto trace = make_availability_model(cfg, root.stream("a", 0));
  EXPECT_STREQ(trace->name(), "trace");
  EXPECT_DOUBLE_EQ(trace->expected_lifetime(0.0), 90.0);
}

TEST(AvailabilityFactory, TraceLoadsCsvWhenNotPreloaded) {
  const auto path = write_temp("factory_trace.csv", "600\n1200\n");
  AvailabilityConfig cfg;
  cfg.kind = AvailabilityKind::Trace;
  cfg.trace_path = path;
  const auto model = make_availability_model(cfg, util::Rng(1));
  EXPECT_DOUBLE_EQ(model->expected_lifetime(0.0), 900.0);
  std::remove(path.c_str());

  AvailabilityConfig missing;
  missing.kind = AvailabilityKind::Trace;
  EXPECT_THROW(make_availability_model(missing, util::Rng(1)),
               std::invalid_argument);
}

TEST(AvailabilityFactory, AlwaysAvailableIsInfinite) {
  const AlwaysAvailable model;
  util::Rng rng(3);
  EXPECT_TRUE(std::isinf(model.sample_survival_at(rng, 0.0, 0)));
  EXPECT_TRUE(std::isinf(model.expected_lifetime(1e9)));
}

}  // namespace
}  // namespace lobster::lobsim

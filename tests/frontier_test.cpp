// Tests for the Frontier conditions-data service: IOV resolution, proxy
// caching with serial-based invalidation, chaining, and thread safety.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "frontier/frontier.hpp"

namespace fr = lobster::frontier;

namespace {
fr::ConditionsDatabase two_tag_db() {
  fr::ConditionsDatabase db;
  db.publish("ALIGN_v1", {100, 199, "align-a"});
  db.publish("ALIGN_v1", {200, 299, "align-b"});
  db.publish("BEAMSPOT_v2", {100, 299, "beamspot"});
  return db;
}
}  // namespace

TEST(Conditions, IovResolution) {
  const auto db = two_tag_db();
  EXPECT_EQ(db.lookup("ALIGN_v1", 150)->blob, "align-a");
  EXPECT_EQ(db.lookup("ALIGN_v1", 200)->blob, "align-b");
  EXPECT_EQ(db.lookup("ALIGN_v1", 299)->blob, "align-b");
  EXPECT_FALSE(db.lookup("ALIGN_v1", 99).has_value());
  EXPECT_FALSE(db.lookup("ALIGN_v1", 300).has_value());
  EXPECT_FALSE(db.lookup("UNKNOWN", 150).has_value());
}

TEST(Conditions, OverlappingIovRejected) {
  fr::ConditionsDatabase db;
  db.publish("T", {100, 199, "a"});
  EXPECT_THROW(db.publish("T", {150, 250, "b"}), fr::FrontierError);
  EXPECT_THROW(db.publish("T", {50, 100, "c"}), fr::FrontierError);
  EXPECT_THROW(db.publish("T", {120, 110, "d"}), fr::FrontierError)
      << "inverted interval";
  db.publish("T", {200, 299, "ok"});  // adjacent is fine
}

TEST(Conditions, SerialBumpsOnPublish) {
  fr::ConditionsDatabase db;
  EXPECT_EQ(db.tag_serial("T"), 0u);
  db.publish("T", {1, 10, "a"});
  EXPECT_EQ(db.tag_serial("T"), 1u);
  db.publish("T", {11, 20, "b"});
  EXPECT_EQ(db.tag_serial("T"), 2u);
}

TEST(FrontierServer, QueryAndErrors) {
  const auto db = two_tag_db();
  fr::FrontierServer server(db);
  EXPECT_EQ(server.query("BEAMSPOT_v2", 250), "beamspot");
  EXPECT_THROW(server.query("BEAMSPOT_v2", 9999), fr::FrontierError);
  EXPECT_EQ(server.queries(), 2u);
}

TEST(FrontierProxy, CachesQueries) {
  const auto db = two_tag_db();
  fr::FrontierServer server(db);
  fr::FrontierProxy proxy(server, db);
  EXPECT_EQ(proxy.query("ALIGN_v1", 150), "align-a");
  EXPECT_EQ(proxy.query("ALIGN_v1", 150), "align-a");
  EXPECT_EQ(proxy.query("ALIGN_v1", 150), "align-a");
  EXPECT_EQ(server.queries(), 1u) << "only the first query went upstream";
  EXPECT_EQ(proxy.hits(), 2u);
  EXPECT_EQ(proxy.misses(), 1u);
}

TEST(FrontierProxy, RepublishInvalidatesCache) {
  auto db = two_tag_db();
  fr::FrontierServer server(db);
  fr::FrontierProxy proxy(server, db);
  EXPECT_EQ(proxy.query("ALIGN_v1", 250), "align-b");
  // A new IOV is appended to the tag: the serial bumps, cached entries for
  // the tag refresh on next access.
  db.publish("ALIGN_v1", {300, 399, "align-c"});
  EXPECT_EQ(proxy.query("ALIGN_v1", 250), "align-b");
  EXPECT_EQ(proxy.refreshes(), 1u);
  EXPECT_EQ(proxy.query("ALIGN_v1", 350), "align-c");
}

TEST(FrontierProxy, ChainsThroughTiers) {
  const auto db = two_tag_db();
  fr::FrontierServer server(db);
  fr::FrontierProxy site_proxy(server, db);
  fr::FrontierProxy campus_proxy(site_proxy, db);
  EXPECT_EQ(campus_proxy.query("ALIGN_v1", 150), "align-a");
  EXPECT_EQ(campus_proxy.query("ALIGN_v1", 150), "align-a");
  EXPECT_EQ(server.queries(), 1u);
  EXPECT_EQ(site_proxy.misses(), 1u);
  EXPECT_EQ(campus_proxy.hits(), 1u);
}

TEST(FrontierProxy, ThreadSafeUnderLoad) {
  const auto db = two_tag_db();
  fr::FrontierServer server(db);
  fr::FrontierProxy proxy(server, db);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const std::uint32_t run = 100 + static_cast<std::uint32_t>(i % 200);
        const auto blob = proxy.query("ALIGN_v1", run);
        if (blob != (run < 200 ? "align-a" : "align-b")) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(proxy.hits() + proxy.misses(), 4000u);
  EXPECT_EQ(proxy.entries(), 200u) << "one entry per distinct (tag, run)";
  // Each of the 200 distinct queries goes upstream once, plus a handful of
  // thundering-herd duplicates when threads miss the same key concurrently.
  EXPECT_GE(server.queries(), 200u);
  EXPECT_LE(server.queries(), 400u);
}

TEST(SyntheticConditions, CoversRunRangeForEveryTag) {
  const auto db = fr::make_synthetic_conditions(/*tags=*/5, /*first_run=*/1000,
                                                /*runs=*/200,
                                                /*blob_bytes=*/256,
                                                /*seed=*/7);
  const auto tags = db.tags();
  ASSERT_EQ(tags.size(), 5u);
  for (const auto& tag : tags) {
    for (std::uint32_t run = 1000; run < 1200; run += 13)
      EXPECT_TRUE(db.lookup(tag, run).has_value())
          << tag << " run " << run;
    EXPECT_FALSE(db.lookup(tag, 999).has_value());
    EXPECT_FALSE(db.lookup(tag, 1200).has_value());
  }
}

TEST(SyntheticConditions, RejectsEmptySpec) {
  EXPECT_THROW(fr::make_synthetic_conditions(0, 1, 1, 1, 1),
               fr::FrontierError);
  EXPECT_THROW(fr::make_synthetic_conditions(1, 1, 0, 1, 1),
               fr::FrontierError);
}

// End-to-end integration tests: the Lobster Scheduler driving real Work
// Queue workers, with eviction injection, interleaved/sequential merging,
// hadoop merging through the HDFS substrate, and adaptive task sizing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/scheduler.hpp"
#include "hdfs/hdfs.hpp"
#include "wq/worker.hpp"

namespace core = lobster::core;
namespace wq = lobster::wq;
using namespace std::chrono_literals;

namespace {

std::vector<core::Tasklet> make_tasklets(std::size_t n,
                                         double out_bytes = 1000.0) {
  std::vector<core::Tasklet> tasklets;
  for (std::size_t i = 1; i <= n; ++i) {
    core::Tasklet t;
    t.id = i;
    t.input_lfn = "/store/f.root";
    t.events = 100;
    t.input_bytes = 10 * out_bytes;
    t.expected_output_bytes = out_bytes;
    tasklets.push_back(t);
  }
  return tasklets;
}

// An analysis payload doing a short cancellable "computation" per tasklet.
core::AnalysisPayload quick_analysis(std::atomic<int>* tasklets_processed,
                                     int spin_ms = 1) {
  return [tasklets_processed,
          spin_ms](const std::vector<core::Tasklet>& tasklets) {
    double out_bytes = 0.0;
    for (const auto& t : tasklets) out_bytes += t.expected_output_bytes;
    return core::WrapperStages{
        .execute =
            [tasklets_processed, spin_ms, n = tasklets.size(),
             out_bytes](wq::TaskContext& ctx) {
              for (std::size_t i = 0; i < n; ++i) {
                if (ctx.cancel.cancelled()) return 1;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(spin_ms));
              }
              if (tasklets_processed)
                tasklets_processed->fetch_add(static_cast<int>(n));
              char buf[32];
              std::snprintf(buf, sizeof buf, "%.1f", out_bytes);
              ctx.outputs[core::wrapper_keys::kOutputBytes] = buf;
              return 0;
            },
    };
  };
}

core::MergePayload quick_merge(std::atomic<int>* merges_done) {
  return [merges_done](const core::MergeGroup&,
                       const std::vector<core::OutputRecord>&) {
    return core::WrapperStages{
        .execute =
            [merges_done](wq::TaskContext& ctx) {
              if (ctx.cancel.cancelled()) return 1;
              std::this_thread::sleep_for(1ms);
              if (merges_done) merges_done->fetch_add(1);
              return 0;
            },
    };
  };
}

}  // namespace

TEST(Scheduler, CompletesWorkflowAndMerges) {
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 4;
  cfg.task_buffer = 16;
  cfg.merge_mode = core::MergeMode::Interleaved;
  cfg.merge_policy.target_bytes = 5000.0;  // ~5 outputs per merge
  std::atomic<int> processed{0};
  std::atomic<int> merged{0};
  core::Scheduler sched(cfg, quick_analysis(&processed), quick_merge(&merged));

  wq::Master master;
  wq::Worker w1("w1", master, 4);
  wq::Worker w2("w2", master, 4);
  const auto report = sched.run(master, make_tasklets(60));
  w1.join();
  w2.join();

  EXPECT_EQ(report.tasklets_total, 60u);
  EXPECT_EQ(report.tasklets_processed, 60u);
  EXPECT_EQ(report.tasklets_failed, 0u);
  EXPECT_EQ(processed.load(), 60);
  EXPECT_GT(report.merge_tasks, 0u);
  EXPECT_EQ(merged.load(), static_cast<int>(report.merge_tasks));
  EXPECT_FALSE(report.merged_files.empty());
  // Every output ended up merged.
  EXPECT_TRUE(sched.db().unmerged_outputs().empty());
  // All tasklets reached the Merged state.
  const auto counts = sched.db().tasklet_status_counts();
  EXPECT_EQ(counts.at(core::TaskletStatus::Merged), 60u);
}

TEST(Scheduler, SurvivesWorkerEviction) {
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 2;
  cfg.task_buffer = 8;
  cfg.merge_mode = core::MergeMode::Sequential;
  cfg.merge_policy.target_bytes = 1e12;  // single merge at the end
  std::atomic<int> processed{0};
  core::Scheduler sched(cfg, quick_analysis(&processed, 3),
                        quick_merge(nullptr));

  wq::Master master;
  auto victim = std::make_unique<wq::Worker>("victim", master, 2);
  wq::Worker reliable("reliable", master, 2);

  // Evict the victim shortly into the run, from a separate thread.
  std::thread evictor([&victim] {
    std::this_thread::sleep_for(30ms);
    victim->evict();
  });

  const auto report = sched.run(master, make_tasklets(40));
  evictor.join();
  victim->join();
  reliable.join();

  EXPECT_EQ(report.tasklets_processed, 40u);
  EXPECT_EQ(report.tasklets_failed, 0u);
  EXPECT_GT(report.evictions, 0u) << "the victim's tasks must be evicted";
  // Despite evictions, nothing processed twice *successfully*: the DB holds
  // exactly 40 processed/merged tasklets.
  const auto counts = sched.db().tasklet_status_counts();
  std::size_t done = 0;
  for (const auto& [st, n] : counts)
    if (st == core::TaskletStatus::Processed ||
        st == core::TaskletStatus::Merged)
      done += n;
  EXPECT_EQ(done, 40u);
}

TEST(Scheduler, PermanentFailuresExhaustAttempts) {
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 1;
  cfg.task_buffer = 4;
  cfg.max_attempts = 3;
  cfg.merge_mode = core::MergeMode::Sequential;
  // Analysis always fails.
  auto failing = [](const std::vector<core::Tasklet>&) {
    return core::WrapperStages{
        .execute = [](wq::TaskContext&) { return 99; },
    };
  };
  core::Scheduler sched(cfg, failing, quick_merge(nullptr));
  wq::Master master;
  wq::Worker worker("w0", master, 2);
  const auto report = sched.run(master, make_tasklets(5));
  worker.join();
  EXPECT_EQ(report.tasklets_processed, 0u);
  EXPECT_EQ(report.tasklets_failed, 5u);
  EXPECT_GE(report.failures, 5u * 3u) << "3 attempts each";
  for (std::uint64_t id = 1; id <= 5; ++id)
    EXPECT_EQ(sched.db().tasklet_attempts(id), 3u);
}

TEST(Scheduler, HadoopModeLeavesOutputsForExternalMerge) {
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 3;
  cfg.task_buffer = 8;
  cfg.merge_mode = core::MergeMode::Hadoop;
  std::atomic<int> processed{0};
  core::Scheduler sched(cfg, quick_analysis(&processed), nullptr);

  wq::Master master;
  wq::Worker worker("w0", master, 4);
  const auto report = sched.run(master, make_tasklets(30));
  worker.join();
  EXPECT_EQ(report.tasklets_processed, 30u);
  EXPECT_EQ(report.merge_tasks, 0u);
  const auto outputs = sched.db().unmerged_outputs();
  ASSERT_FALSE(outputs.empty());

  // Now merge via the Hadoop substrate, as the production system does:
  // store the small files in HDFS, group them by planned merged file (map),
  // concatenate (reduce).
  lobster::hdfs::Cluster cluster(4, 2, 4096);
  std::vector<std::string> inputs;
  std::map<std::string, std::string> target_of;  // input path -> merged name
  core::MergePolicy policy;
  policy.target_bytes = 5000.0;
  const auto groups = core::plan_merges(outputs, policy, false, 0);
  double planned_bytes = 0.0;
  for (const auto& g : groups) {
    planned_bytes += g.total_bytes;
    for (const auto oid : g.output_ids) {
      const auto& rec = sched.db().output(oid);
      const std::string path = "/small/" + std::to_string(oid);
      cluster.put(path, std::string(static_cast<std::size_t>(rec.bytes), 'x'));
      inputs.push_back(path);
      target_of[path] = g.merged_path;
    }
  }
  const auto stats = lobster::hdfs::run_mapreduce(
      cluster, inputs,
      [&target_of](const std::string& path, const std::string& content) {
        return std::vector<lobster::hdfs::KeyValue>{
            {target_of.at(path), content}};
      },
      [](const std::string&, const std::vector<std::string>& values) {
        std::string out;
        for (const auto& v : values) out += v;
        return out;
      },
      "/merged/");
  EXPECT_EQ(stats.reduce_tasks, groups.size());
  double merged_bytes = 0.0;
  for (const auto& path : stats.outputs)
    merged_bytes += static_cast<double>(cluster.stat(path).size);
  EXPECT_DOUBLE_EQ(merged_bytes, planned_bytes) << "merging conserves bytes";
}

TEST(Scheduler, AdaptiveSizingShrinksUnderEviction) {
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 8;
  cfg.task_buffer = 4;
  cfg.adaptive_sizing = true;
  cfg.max_attempts = 100;
  cfg.merge_mode = core::MergeMode::Sequential;
  cfg.merge_policy.target_bytes = 1e12;

  // A payload that fails as "evicted" (cancelled) for large tasks: simulate
  // a hostile cluster where long tasks rarely finish.  We do this by
  // cancelling from within when the task has many tasklets.
  std::atomic<int> processed{0};
  auto hostile = [&processed](const std::vector<core::Tasklet>& tasklets) {
    return core::WrapperStages{
        .execute =
            [n = tasklets.size(), &processed](wq::TaskContext& ctx) {
              if (n > 2) {
                ctx.cancel.cancel();  // "evicted" mid-task
                return 1;
              }
              processed.fetch_add(static_cast<int>(n));
              return 0;
            },
    };
  };
  core::Scheduler sched(cfg, hostile, quick_merge(nullptr));
  wq::Master master;
  wq::Worker worker("w0", master, 4);
  const auto report = sched.run(master, make_tasklets(300));
  worker.join();
  EXPECT_EQ(report.tasklets_processed, 300u);
  EXPECT_LE(sched.tasklets_per_task(), 2u)
      << "controller must shrink the task size until tasks survive";
  EXPECT_GT(report.evictions, 0u);
}

TEST(Scheduler, NullPayloadsRejected) {
  core::WorkflowConfig cfg;
  EXPECT_THROW(core::Scheduler(cfg, nullptr, quick_merge(nullptr)),
               std::invalid_argument);
  cfg.merge_mode = core::MergeMode::Sequential;
  EXPECT_THROW(core::Scheduler(cfg, quick_analysis(nullptr), nullptr),
               std::invalid_argument);
}

TEST(Scheduler, ResumesFromCrashJournal) {
  // Phase 1: a run is interrupted "mid-flight" — we fabricate the crash by
  // building a DB with some tasklets processed and some assigned, saving
  // the journal, and abandoning the scheduler that owned it.
  core::Db crashed;
  {
    std::vector<core::Tasklet> tasklets = make_tasklets(20);
    crashed.register_tasklets(tasklets);
    const auto t1 = crashed.create_task(core::TaskKind::Analysis,
                                        {1, 2, 3, 4, 5}, 0.0);
    core::TaskRecord done;
    done.status = core::TaskStatus::Done;
    done.cpu_time = 50.0;
    crashed.finish_task(t1, done);
    crashed.record_output(t1, "out/t1.root", 5000.0);
    crashed.create_task(core::TaskKind::Analysis, {6, 7, 8}, 1.0);  // lost
  }
  const std::string path = ::testing::TempDir() + "crash_journal.jsonl";
  crashed.save_journal(path);

  // Phase 2: a fresh Lobster process resumes from the journal.
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 4;
  cfg.task_buffer = 8;
  cfg.merge_mode = core::MergeMode::Sequential;
  cfg.merge_policy.target_bytes = 1e12;
  std::atomic<int> processed{0};
  core::Scheduler sched(cfg, quick_analysis(&processed), quick_merge(nullptr));
  wq::Master master;
  wq::Worker worker("w0", master, 2);
  const auto report =
      sched.resume(master, core::Db::load_journal(path));
  worker.join();
  std::remove(path.c_str());

  EXPECT_EQ(report.tasklets_total, 20u);
  EXPECT_EQ(report.tasklets_processed, 20u)
      << "5 preserved from before the crash + 15 processed after";
  // Only the 15 unfinished tasklets were re-executed.
  EXPECT_EQ(processed.load(), 15);
  EXPECT_EQ(sched.db().tasklet_attempts(6), 1u)
      << "the in-flight task cost its tasklets one attempt";
}

// Differential-testing battery for the incremental max-min solver.
//
// des::BandwidthLink re-solves only the cap-bound/fair-share boundary and
// batches same-timestamp updates; tests/reference_link.hpp is the naive
// from-scratch water-filler with the same canonical arithmetic.  A seeded
// schedule fuzzer drives both through thousands of generated
// join/finish/cap-change/outage interleavings and demands:
//
//   * completion outcomes bit-identical (same flows finish, at exactly the
//     same simulated timestamps);
//   * probed per-flow remaining bytes bit-identical;
//   * probed per-flow rates within 1 ulp;
//   * probed aggregate allocation within 1 ulp-scale relative tolerance.
//
// On mismatch the failing schedule is greedily shrunk (drop one op at a
// time while the failure persists) and printed as a replayable C++
// literal; paste it into the Replay test below to debug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "des/bandwidth.hpp"
#include "des/simulation.hpp"
#include "reference_link.hpp"
#include "util/rng.hpp"

namespace lobster {
namespace {

constexpr double kUncapped = des::BandwidthLink::kUncapped;

enum class OpKind { Join, SetCapacity };

struct Op {
  double at = 0.0;
  OpKind kind = OpKind::Join;
  /// Join: transfer size in bytes.  SetCapacity: the new capacity.
  double value = 0.0;
  /// Join only: per-flow rate cap (kUncapped for none).
  double cap = kUncapped;
};

struct Schedule {
  double capacity = 0.0;
  double horizon = 0.0;
  std::vector<Op> ops;
};

struct FlowOutcome {
  bool completed = false;
  double at = 0.0;
};

struct FlowProbe {
  std::uint64_t id = 0;
  double remaining = 0.0;
  double rate = 0.0;
};

struct ProbePoint {
  double at = 0.0;
  double allocated = 0.0;
  std::vector<FlowProbe> flows;  // ascending flow id
};

struct RunTrace {
  std::vector<FlowOutcome> outcomes;  // indexed by join order
  std::vector<ProbePoint> probes;
};

template <typename Link>
des::Process join_proc(des::Simulation& sim, Link& link, double bytes,
                       double cap, FlowOutcome& out) {
  co_await link.transfer(bytes, cap);
  out.completed = true;
  out.at = sim.now();
}

// Ops land on a 2^-3 time grid and probes 2^-6 after each op timestamp:
// dyadic, so probe events sort strictly after every same-timestamp op
// *and* after the incremental link's zero-delay batch flush — probes never
// observe a half-applied burst.
constexpr double kProbeOffset = 0.015625;

template <typename Link>
RunTrace run_schedule(const Schedule& s) {
  des::Simulation sim;
  Link link(sim, s.capacity);
  RunTrace trace;
  std::size_t joins = 0;
  for (const Op& op : s.ops)
    if (op.kind == OpKind::Join) ++joins;
  trace.outcomes.resize(joins);

  std::size_t join_index = 0;
  double last_probe_at = -1.0;
  for (const Op& op : s.ops) {
    if (op.kind == OpKind::Join) {
      FlowOutcome& out = trace.outcomes[join_index++];
      const double bytes = op.value;
      const double cap = op.cap;
      sim.schedule(op.at, [&sim, &link, bytes, cap, &out] {
        sim.spawn(join_proc(sim, link, bytes, cap, out));
      });
    } else {
      const double capacity = op.value;
      sim.schedule(op.at, [&link, capacity] { link.set_capacity(capacity); });
    }
    const double probe_at = op.at + kProbeOffset;
    if (probe_at == last_probe_at) continue;  // one probe per burst
    last_probe_at = probe_at;
    sim.schedule(probe_at, [&sim, &link, &trace] {
      ProbePoint p;
      p.at = sim.now();
      p.allocated = link.allocated_rate();
      link.for_each_flow([&p](std::uint64_t id, double /*total*/,
                              double remaining, double /*cap*/, double rate) {
        p.flows.push_back(FlowProbe{id, remaining, rate});
      });
      trace.probes.push_back(std::move(p));
    });
  }
  sim.run_until(s.horizon);
  return trace;
}

bool within_one_ulp(double a, double b) {
  if (a == b) return true;
  return std::nextafter(a, b) == b;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Run the schedule through both links; empty string on agreement, else a
/// description of the first divergence.
std::string compare_run(const Schedule& s) {
  const RunTrace inc = run_schedule<des::BandwidthLink>(s);
  const RunTrace ref = run_schedule<testref::ReferenceLink>(s);

  for (std::size_t i = 0; i < inc.outcomes.size(); ++i) {
    const FlowOutcome& a = inc.outcomes[i];
    const FlowOutcome& b = ref.outcomes[i];
    if (a.completed != b.completed)
      return "join #" + std::to_string(i) + " completion disagrees: inc=" +
             (a.completed ? "done" : "pending") + " ref=" +
             (b.completed ? "done" : "pending");
    // Bit-identical, not a tolerance band: both solvers must schedule the
    // completion timer for exactly the same timestamp.
    if (a.completed && a.at != b.at)
      return "join #" + std::to_string(i) + " completion time drifted: inc=" +
             fmt(a.at) + " ref=" + fmt(b.at);
  }
  if (inc.probes.size() != ref.probes.size())
    return "probe count disagrees (harness bug)";
  for (std::size_t i = 0; i < inc.probes.size(); ++i) {
    const ProbePoint& a = inc.probes[i];
    const ProbePoint& b = ref.probes[i];
    if (a.flows.size() != b.flows.size())
      return "probe at t=" + fmt(a.at) + ": live flow count inc=" +
             std::to_string(a.flows.size()) + " ref=" +
             std::to_string(b.flows.size());
    // Per-flow rates are held to 1 ulp below; the aggregate is only held to
    // a tight relative tolerance because the two sides sum in different
    // orders by design (cached cap-bound prefix + (n-k)*fair vs. the
    // oracle's naive id-order sum), which legitimately drifts a few ulps.
    const double alloc_tol =
        1e-12 * std::max(std::abs(a.allocated), std::abs(b.allocated));
    if (std::abs(a.allocated - b.allocated) > alloc_tol &&
        !within_one_ulp(a.allocated, b.allocated))
      return "probe at t=" + fmt(a.at) + ": allocated_rate inc=" +
             fmt(a.allocated) + " ref=" + fmt(b.allocated);
    for (std::size_t j = 0; j < a.flows.size(); ++j) {
      if (a.flows[j].id != b.flows[j].id)
        return "probe at t=" + fmt(a.at) + ": flow id order diverged";
      if (a.flows[j].remaining != b.flows[j].remaining)
        return "probe at t=" + fmt(a.at) + " flow " +
               std::to_string(a.flows[j].id) + ": remaining inc=" +
               fmt(a.flows[j].remaining) + " ref=" + fmt(b.flows[j].remaining);
      if (!within_one_ulp(a.flows[j].rate, b.flows[j].rate))
        return "probe at t=" + fmt(a.at) + " flow " +
               std::to_string(a.flows[j].id) + ": rate inc=" +
               fmt(a.flows[j].rate) + " ref=" + fmt(b.flows[j].rate);
    }
  }
  return {};
}

// ------------------------------------------------------- schedule fuzzer ----

Schedule gen_schedule(std::uint64_t seed) {
  util::Rng rng(seed);
  util::Rng shape = rng.stream("shape");
  util::Rng values = rng.stream("values");

  Schedule s;
  s.capacity = std::pow(10.0, shape.uniform(0.0, 3.0));
  const std::int64_t n_ops = 4 + shape.uniform_int(0, 36);
  double t = 0.0;
  double capacity_now = s.capacity;
  for (std::int64_t i = 0; i < n_ops; ++i) {
    const double advance_roll = shape.uniform();
    if (i > 0 && advance_roll < 0.30) {
      // same-timestamp burst: exercises the coalesced batch flush
    } else if (advance_roll < 0.65) {
      t += 0.125;
    } else {
      t += 0.125 * static_cast<double>(1 + shape.uniform_int(0, 40));
    }
    Op op;
    op.at = t;
    if (shape.uniform() < 0.75) {
      op.kind = OpKind::Join;
      const double size_roll = values.uniform();
      if (size_roll < 0.10) {
        // Sub-epsilon joiner: completes at its own join timestamp.
        op.value = values.uniform(1e-9, 1e-6);
      } else {
        op.value = std::pow(10.0, values.uniform(-3.0, 4.0));
      }
      const double cap_roll = values.uniform();
      if (cap_roll < 0.30) {
        op.cap = kUncapped;
      } else if (cap_roll < 0.50) {
        // Near-equal caps: stresses the boundary scan's tie handling and
        // the Kahan prefix's rounding discipline.
        op.cap = 1.0 + values.uniform(0.0, 1e-9);
      } else {
        op.cap = std::pow(10.0, values.uniform(-2.0, 2.0));
      }
    } else {
      op.kind = OpKind::SetCapacity;
      op.value =
          values.uniform() < 0.30 ? 0.0 : std::pow(10.0, values.uniform(0.0, 3.0));
      capacity_now = op.value;
    }
    s.ops.push_back(op);
  }
  if (capacity_now == 0.0) {
    // Outages always lift: "capacity to 0 and back" must include the back.
    t += 0.125;
    s.ops.push_back(Op{t, OpKind::SetCapacity, s.capacity, kUncapped});
  }
  s.horizon = t + 1e7;  // generous drain window; stragglers stay pending
  return s;
}

Schedule drop_op(const Schedule& s, std::size_t index) {
  Schedule out = s;
  out.ops.erase(out.ops.begin() + static_cast<std::ptrdiff_t>(index));
  return out;
}

/// Greedy shrink: repeatedly drop any op whose removal keeps the failure.
Schedule shrink(Schedule s) {
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < s.ops.size(); ++i) {
      Schedule candidate = drop_op(s, i);
      if (!compare_run(candidate).empty()) {
        s = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  return s;
}

std::string as_literal(const Schedule& s) {
  std::string out = "Schedule{/*capacity=*/" + fmt(s.capacity) +
                    ", /*horizon=*/" + fmt(s.horizon) + ", {\n";
  for (const Op& op : s.ops) {
    out += "  {/*at=*/" + fmt(op.at) + ", OpKind::" +
           (op.kind == OpKind::Join ? "Join" : "SetCapacity") + ", /*value=*/" +
           fmt(op.value) + ", /*cap=*/" +
           (op.cap == kUncapped ? std::string("kUncapped") : fmt(op.cap)) +
           "},\n";
  }
  out += "}}";
  return out;
}

// ------------------------------------------------------------------ tests ----

TEST(BandwidthDiff, FuzzedSchedulesMatchOracle) {
  std::uint64_t schedules = 5000;
  if (const char* env = std::getenv("LOBSTER_DIFF_SCHEDULES"))
    schedules = std::strtoull(env, nullptr, 10);
  for (std::uint64_t seed = 1; seed <= schedules; ++seed) {
    const Schedule s = gen_schedule(seed);
    const std::string mismatch = compare_run(s);
    if (mismatch.empty()) continue;
    const Schedule minimal = shrink(s);
    FAIL() << "seed " << seed << ": " << mismatch << "\n"
           << "shrunk to " << minimal.ops.size() << " ops ("
           << compare_run(minimal) << ");\nreplay with:\n"
           << as_literal(minimal);
  }
}

// Targeted interleavings the fuzzer relies on probability to hit.

TEST(BandwidthDiff, SameTimestampBurstCoalesces) {
  Schedule s{/*capacity=*/100.0, /*horizon=*/1e6, {}};
  for (int i = 0; i < 32; ++i)
    s.ops.push_back(Op{1.0, OpKind::Join, 250.0 + 10.0 * i,
                       i % 3 == 0 ? 5.0 : kUncapped});
  EXPECT_EQ(compare_run(s), "");
}

TEST(BandwidthDiff, CapacityToZeroAndBackMidFlight) {
  const Schedule s{/*capacity=*/100.0, /*horizon=*/1e6,
                   {
                       {0.0, OpKind::Join, 1000.0, kUncapped},
                       {0.5, OpKind::Join, 400.0, 30.0},
                       {1.0, OpKind::SetCapacity, 0.0, kUncapped},
                       {1.0, OpKind::Join, 500.0, kUncapped},
                       {8.0, OpKind::SetCapacity, 100.0, kUncapped},
                   }};
  EXPECT_EQ(compare_run(s), "");
}

// Sub-epsilon joiners complete at the next sweeping event — a later
// same-timestamp join/capacity change, or their own tiny completion timer —
// never at the link's internal batch flush (which the naive semantics lack).
TEST(BandwidthDiff, SubEpsilonJoinersMatchOracle) {
  const Schedule s{/*capacity=*/10.0, /*horizon=*/1e6,
                   {
                       {0.0, OpKind::Join, 100.0, kUncapped},
                       {1.0, OpKind::Join, 5e-7, kUncapped},
                       {1.0, OpKind::Join, 1e-8, 0.001},
                       {2.0, OpKind::Join, 50.0, 2.0},
                   }};
  EXPECT_EQ(compare_run(s), "");
}

TEST(BandwidthDiff, NearEqualCapBandMigration) {
  // Caps straddle the fair share so joins migrate flows cap-bound ->
  // fair-share (the solve() band walk) and completions migrate them back.
  Schedule s{/*capacity=*/64.0, /*horizon=*/1e6, {}};
  for (int i = 0; i < 24; ++i)
    s.ops.push_back(Op{0.25 * i, OpKind::Join, 100.0 + 7.0 * i,
                       2.0 + 0.125 * (i % 8)});
  EXPECT_EQ(compare_run(s), "");
}

// Paste a shrunk schedule literal here to debug a fuzzer failure.
TEST(BandwidthDiff, Replay) {
  const Schedule s{/*capacity=*/100.0, /*horizon=*/1e6, {}};
  EXPECT_EQ(compare_run(s), "");
}

}  // namespace
}  // namespace lobster

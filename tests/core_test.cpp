// Tests for core Lobster logic: workflow decomposition, the Figure 3 task
// size model, the Lobster DB (with journal persistence), and merge planning.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/task_size_model.hpp"
#include "core/workflow.hpp"
#include "dbs/dbs.hpp"

namespace core = lobster::core;
namespace dbs = lobster::dbs;
namespace lu = lobster::util;

// -------------------------------------------------------------- workflow ----

namespace {
dbs::Dataset small_dataset(std::size_t files = 4, std::uint32_t lumis = 12) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = files;
  spec.lumis_per_file = lumis;
  spec.mean_file_bytes = 1.2e9;
  return dbs::make_synthetic_dataset(spec, lu::Rng(11));
}
}  // namespace

TEST(Decompose, CoversEveryLumiExactlyOnce) {
  const auto ds = small_dataset();
  core::DecompositionSpec spec;
  spec.lumis_per_tasklet = 5;
  const auto tasklets = core::decompose(ds, spec);
  // 12 lumis / 5 per tasklet = 3 tasklets per file (5+5+2).
  EXPECT_EQ(tasklets.size(), 4u * 3u);
  // Ids unique and dense.
  std::set<std::uint64_t> ids;
  for (const auto& t : tasklets) ids.insert(t.id);
  EXPECT_EQ(ids.size(), tasklets.size());
  // Conservation of bytes and events per file.
  double total_bytes = 0.0;
  for (const auto& t : tasklets) total_bytes += t.input_bytes;
  EXPECT_NEAR(total_bytes, ds.total_bytes(), 1.0);
}

TEST(Decompose, TaskletsNeverSpanFiles) {
  const auto ds = small_dataset(3, 7);
  const auto tasklets = core::decompose(ds, {.lumis_per_tasklet = 5});
  for (const auto& t : tasklets) {
    EXPECT_FALSE(t.input_lfn.empty());
    EXPECT_LE(t.first_lumi, t.last_lumi);
  }
  // 7 lumis -> tasklets of 5 and 2 per file.
  EXPECT_EQ(tasklets.size(), 3u * 2u);
}

TEST(Decompose, OutputRatioApplied) {
  const auto ds = small_dataset(1, 10);
  const auto tasklets =
      core::decompose(ds, {.lumis_per_tasklet = 10, .output_ratio = 0.1});
  ASSERT_EQ(tasklets.size(), 1u);
  EXPECT_NEAR(tasklets[0].expected_output_bytes, tasklets[0].input_bytes * 0.1,
              1.0);
}

TEST(Decompose, RejectsBadSpec) {
  EXPECT_THROW(core::decompose(small_dataset(), {.lumis_per_tasklet = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      core::decompose(small_dataset(),
                      {.lumis_per_tasklet = 1, .output_ratio = -0.5}),
      std::invalid_argument);
}

TEST(DecomposeSimulation, EventQuota) {
  const auto tasklets = core::decompose_simulation(1050, 100, 2e5);
  ASSERT_EQ(tasklets.size(), 11u);
  std::uint64_t events = 0;
  for (const auto& t : tasklets) {
    events += t.events;
    EXPECT_TRUE(t.input_lfn.empty());
    EXPECT_DOUBLE_EQ(t.input_bytes, 0.0);
  }
  EXPECT_EQ(events, 1050u);
  EXPECT_EQ(tasklets.back().events, 50u);
}

// -------------------------------------------------------- task size model ----

TEST(TaskSizeModel, NoEvictionApproachesOne) {
  core::TaskSizeModelParams p;
  p.num_tasklets = 20000;  // smaller for test speed
  p.num_workers = 1600;
  const core::NoEviction none;
  const auto short_tasks = core::simulate_task_size(p, none, 0.5);
  const auto long_tasks = core::simulate_task_size(p, none, 10.0);
  EXPECT_LT(short_tasks.efficiency, 0.70);
  EXPECT_GT(long_tasks.efficiency, 0.90);
  EXPECT_EQ(long_tasks.evictions, 0u);
  EXPECT_DOUBLE_EQ(long_tasks.lost_time, 0.0);
}

TEST(TaskSizeModel, AccountingIdentityHolds) {
  core::TaskSizeModelParams p;
  p.num_tasklets = 5000;
  p.num_workers = 400;
  const core::ConstantEviction constant(0.1);
  const auto r = core::simulate_task_size(p, constant, 2.0);
  EXPECT_NEAR(r.total_time, r.effective_time + r.overhead_time + r.lost_time,
              1e-6);
  EXPECT_GT(r.evictions, 0u);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LT(r.efficiency, 1.0);
}

TEST(TaskSizeModel, EvictionCreatesInteriorOptimum) {
  // Figure 3: with eviction the efficiency peaks at an intermediate task
  // length (paper: ~70% at about one hour) and falls off for long tasks.
  core::TaskSizeModelParams p;
  p.num_tasklets = 20000;
  p.num_workers = 1600;
  const core::ConstantEviction constant(0.1);
  const auto sweep = core::sweep_task_sizes(
      p, constant, {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  const double opt = core::optimal_task_hours(sweep);
  EXPECT_GE(opt, 0.5);
  EXPECT_LE(opt, 8.0) << "long tasks must lose to eviction";
  // Efficiency at the extreme must be below the optimum.
  const double best = sweep[1].efficiency;
  EXPECT_LT(sweep.back().efficiency, best);
}

TEST(TaskSizeModel, ObservedAndConstantAgreeRoughly) {
  // Paper: "This simulation is not sensitive to differences between the
  // observed probability and a constant one."
  core::TaskSizeModelParams p;
  p.num_tasklets = 20000;
  p.num_workers = 1600;
  const core::ConstantEviction constant(0.1);
  const auto log = core::synthesize_availability_log(20000, lu::Rng(5));
  const core::EmpiricalEviction observed{lu::EmpiricalDistribution(log)};
  const auto a = core::simulate_task_size(p, constant, 1.0);
  const auto b = core::simulate_task_size(p, observed, 1.0);
  EXPECT_NEAR(a.efficiency, b.efficiency, 0.15);
}

TEST(TaskSizeModel, DeterministicForSeed) {
  core::TaskSizeModelParams p;
  p.num_tasklets = 2000;
  p.num_workers = 100;
  const core::ConstantEviction eviction(0.1);
  const auto a = core::simulate_task_size(p, eviction, 1.0);
  const auto b = core::simulate_task_size(p, eviction, 1.0);
  EXPECT_DOUBLE_EQ(a.efficiency, b.efficiency);
  EXPECT_EQ(a.evictions, b.evictions);
}

TEST(TaskSizeModel, InvalidInputsRejected) {
  core::TaskSizeModelParams p;
  EXPECT_THROW(core::simulate_task_size(p, core::NoEviction{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(core::ConstantEviction(0.0), std::invalid_argument);
  EXPECT_THROW(core::EmpiricalEviction(lu::EmpiricalDistribution{}),
               std::invalid_argument);
  EXPECT_THROW(core::optimal_task_hours({}), std::invalid_argument);
}

TEST(EvictionCurve, ShapeAndErrors) {
  const auto log = core::synthesize_availability_log(50000, lu::Rng(3),
                                                     /*shape=*/0.8,
                                                     /*scale_hours=*/4.0);
  const auto curve = core::eviction_probability_curve(log, 20, 20.0);
  ASSERT_EQ(curve.size(), 20u);
  // Every bin: valid probability with a binomial error.
  for (const auto& pt : curve) {
    EXPECT_GE(pt.probability, 0.0);
    EXPECT_LE(pt.probability, 1.0);
    if (pt.at_risk > 0) EXPECT_GE(pt.sigma, 0.0);
  }
  // Weibull shape<1: the hazard decreases with availability time.
  EXPECT_GT(curve[0].probability, curve[10].probability);
  // At-risk counts are non-increasing.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].at_risk, curve[i - 1].at_risk);
}

// -------------------------------------------------------------------- db ----

namespace {
std::vector<core::Tasklet> db_tasklets(std::size_t n) {
  std::vector<core::Tasklet> out;
  for (std::size_t i = 1; i <= n; ++i) {
    core::Tasklet t;
    t.id = i;
    t.input_lfn = "/store/f" + std::to_string(i / 3) + ".root";
    t.events = 100 * i;
    t.input_bytes = 1e8;
    t.expected_output_bytes = 5e6;
    t.first_lumi = {1, static_cast<std::uint32_t>(i)};
    t.last_lumi = {1, static_cast<std::uint32_t>(i)};
    out.push_back(t);
  }
  return out;
}

core::TaskRecord done_record(double cpu = 100.0) {
  core::TaskRecord r;
  r.status = core::TaskStatus::Done;
  r.worker = "w0";
  r.finish_time = 1000.0;
  r.cpu_time = cpu;
  r.segment_time[static_cast<std::size_t>(core::Segment::Execute)] = cpu;
  r.segment_time[static_cast<std::size_t>(core::Segment::StageOut)] = 10.0;
  return r;
}
}  // namespace

TEST(Db, TaskletLifecycle) {
  core::Db db;
  db.register_tasklets(db_tasklets(10));
  EXPECT_EQ(db.num_tasklets(), 10u);
  EXPECT_EQ(db.pending_tasklets(100).size(), 10u);

  const auto id = db.create_task(core::TaskKind::Analysis, {1, 2, 3}, 0.0);
  EXPECT_EQ(db.tasklet_status(1), core::TaskletStatus::Assigned);
  EXPECT_EQ(db.pending_tasklets(100).size(), 7u);

  db.finish_task(id, done_record());
  EXPECT_EQ(db.tasklet_status(1), core::TaskletStatus::Processed);
  EXPECT_EQ(db.task(id).status, core::TaskStatus::Done);
}

TEST(Db, EvictionReturnsTaskletsToPending) {
  core::Db db;
  db.register_tasklets(db_tasklets(5));
  const auto id = db.create_task(core::TaskKind::Analysis, {1, 2}, 0.0);
  core::TaskRecord r;
  r.status = core::TaskStatus::Evicted;
  r.lost_time = 55.0;
  db.finish_task(id, r);
  EXPECT_EQ(db.tasklet_status(1), core::TaskletStatus::Pending);
  EXPECT_EQ(db.tasklet_attempts(1), 1u);
  EXPECT_EQ(db.pending_tasklets(100).size(), 5u);
  EXPECT_DOUBLE_EQ(db.total_lost_time(), 55.0);
}

TEST(Db, InvalidTransitionsRejected) {
  core::Db db;
  db.register_tasklets(db_tasklets(3));
  const auto id = db.create_task(core::TaskKind::Analysis, {1}, 0.0);
  EXPECT_THROW(db.create_task(core::TaskKind::Analysis, {1}, 0.0),
               std::logic_error)
      << "tasklet already assigned";
  EXPECT_THROW(db.create_task(core::TaskKind::Analysis, {99}, 0.0),
               std::out_of_range);
  db.finish_task(id, done_record());
  EXPECT_THROW(db.finish_task(id, done_record()), std::logic_error)
      << "double finish";
  core::TaskRecord open;
  open.status = core::TaskStatus::Submitted;
  const auto id2 = db.create_task(core::TaskKind::Analysis, {2}, 0.0);
  EXPECT_THROW(db.finish_task(id2, open), std::logic_error)
      << "finish requires a terminal status";
}

TEST(Db, OutputsAndMergeMarking) {
  core::Db db;
  db.register_tasklets(db_tasklets(4));
  const auto t1 = db.create_task(core::TaskKind::Analysis, {1, 2}, 0.0);
  db.finish_task(t1, done_record());
  const auto o1 = db.record_output(t1, "out/1.root", 5e7);
  const auto t2 = db.create_task(core::TaskKind::Analysis, {3, 4}, 0.0);
  db.finish_task(t2, done_record());
  const auto o2 = db.record_output(t2, "out/2.root", 6e7);

  EXPECT_EQ(db.unmerged_outputs().size(), 2u);
  db.mark_merged({o1, o2});
  EXPECT_TRUE(db.unmerged_outputs().empty());
  EXPECT_EQ(db.tasklet_status(1), core::TaskletStatus::Merged);
  EXPECT_THROW(db.mark_merged({o1}), std::logic_error) << "double merge";
}

TEST(Db, SegmentAggregates) {
  core::Db db;
  db.register_tasklets(db_tasklets(4));
  for (int i = 0; i < 2; ++i) {
    const auto id = db.create_task(
        core::TaskKind::Analysis,
        {static_cast<std::uint64_t>(2 * i + 1),
         static_cast<std::uint64_t>(2 * i + 2)},
        0.0);
    db.finish_task(id, done_record(100.0));
  }
  const auto totals = db.segment_totals();
  EXPECT_DOUBLE_EQ(totals[static_cast<std::size_t>(core::Segment::Execute)],
                   200.0);
  EXPECT_DOUBLE_EQ(totals[static_cast<std::size_t>(core::Segment::StageOut)],
                   20.0);
  EXPECT_DOUBLE_EQ(db.total_cpu_time(), 200.0);
  const auto h = db.segment_histogram(core::Segment::Execute, 10, 1000.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Db, JournalRoundTrip) {
  core::Db db;
  db.register_tasklets(db_tasklets(6));
  const auto t1 = db.create_task(core::TaskKind::Analysis, {1, 2, 3}, 5.0);
  db.finish_task(t1, done_record());
  db.record_output(t1, "out/\"quoted\".root", 5e7);
  const auto t2 = db.create_task(core::TaskKind::Analysis, {4, 5}, 6.0);
  core::TaskRecord ev;
  ev.status = core::TaskStatus::Evicted;
  ev.lost_time = 12.0;
  db.finish_task(t2, ev);

  const std::string path = ::testing::TempDir() + "lobster_journal.jsonl";
  db.save_journal(path);
  const auto restored = core::Db::load_journal(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored.num_tasklets(), 6u);
  EXPECT_EQ(restored.num_tasks(), 2u);
  EXPECT_EQ(restored.num_outputs(), 1u);
  EXPECT_EQ(restored.tasklet_status(1), core::TaskletStatus::Processed);
  EXPECT_EQ(restored.tasklet_status(4), core::TaskletStatus::Pending);
  EXPECT_EQ(restored.tasklet_attempts(4), 1u);
  EXPECT_EQ(restored.task(t1).status, core::TaskStatus::Done);
  EXPECT_DOUBLE_EQ(restored.task(t2).lost_time, 12.0);
  EXPECT_EQ(restored.output(1).path, "out/\"quoted\".root");
  // The restored DB keeps allocating fresh ids.
  const auto t3 = const_cast<core::Db&>(restored)
                      .create_task(core::TaskKind::Analysis, {4}, 7.0);
  EXPECT_GT(t3, t2);
}

TEST(Db, TasksCsvHasHeaderAndRows) {
  core::Db db;
  db.register_tasklets(db_tasklets(2));
  const auto id = db.create_task(core::TaskKind::Analysis, {1, 2}, 0.0);
  db.finish_task(id, done_record());
  const auto csv = db.tasks_csv();
  EXPECT_NE(csv.find("task_id,kind,status"), std::string::npos);
  EXPECT_NE(csv.find("analysis,done"), std::string::npos);
}

// ----------------------------------------------------------------- merge ----

namespace {
std::vector<core::OutputRecord> make_outputs(
    const std::vector<double>& sizes) {
  std::vector<core::OutputRecord> out;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    core::OutputRecord r;
    r.output_id = i + 1;
    r.task_id = i + 1;
    r.path = "out/" + std::to_string(i) + ".root";
    r.bytes = sizes[i];
    out.push_back(r);
  }
  return out;
}
}  // namespace

TEST(MergePlanner, GroupsNearTargetSize) {
  core::MergePolicy policy;
  policy.target_bytes = 100.0;
  policy.min_fill = 0.9;
  const auto outputs = make_outputs({40, 40, 40, 40, 40, 40});
  const auto groups = core::plan_merges(outputs, policy, false, 0);
  // 40+40 = 80 < 90; +40 would exceed 100 -> groups of ~2-3.
  double total = 0.0;
  std::set<std::uint64_t> seen;
  for (const auto& g : groups) {
    total += g.total_bytes;
    EXPECT_LE(g.total_bytes, 140.0);
    for (auto id : g.output_ids) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_DOUBLE_EQ(total, 240.0) << "merging conserves bytes";
  EXPECT_EQ(seen.size(), 6u);
}

TEST(MergePlanner, OnlyFullSuppressesTrailingGroup) {
  core::MergePolicy policy;
  policy.target_bytes = 100.0;
  const auto outputs = make_outputs({95, 95, 30});
  const auto full = core::plan_merges(outputs, policy, true, 0);
  ASSERT_EQ(full.size(), 2u);  // the trailing 30 is held back
  const auto sweep = core::plan_merges(outputs, policy, false, 0);
  EXPECT_EQ(sweep.size(), 3u);
}

TEST(MergePlanner, UniqueNamesAcrossCalls) {
  core::MergePolicy policy;
  policy.target_bytes = 50.0;
  const auto a = core::plan_merges(make_outputs({60}), policy, false, 0);
  const auto b = core::plan_merges(make_outputs({60}), policy, false, 1);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].merged_path, b[0].merged_path);
}

TEST(MergePlanner, RejectsMergedInputsAndBadPolicy) {
  auto outputs = make_outputs({10});
  outputs[0].merged = true;
  EXPECT_THROW(core::plan_merges(outputs, {}, false, 0), std::logic_error);
  core::MergePolicy bad;
  bad.target_bytes = 0.0;
  EXPECT_THROW(core::plan_merges(make_outputs({10}), bad, false, 0),
               std::invalid_argument);
}

TEST(MergePlanner, InterleaveReadyAtTenPercent) {
  core::Db db;
  db.register_tasklets(db_tasklets(20));
  core::MergePolicy policy;  // start_fraction = 0.10
  EXPECT_FALSE(core::interleave_ready(db, policy));
  // Process 2 of 20 tasklets = exactly 10%.
  const auto id = db.create_task(core::TaskKind::Analysis, {1, 2}, 0.0);
  db.finish_task(id, done_record());
  EXPECT_TRUE(core::interleave_ready(db, policy));
}

TEST(Db, RecoverInFlightReturnsAssignedTasklets) {
  core::Db db;
  db.register_tasklets(db_tasklets(8));
  const auto done_id = db.create_task(core::TaskKind::Analysis, {1, 2}, 0.0);
  db.finish_task(done_id, done_record());
  db.create_task(core::TaskKind::Analysis, {3, 4}, 1.0);  // in flight
  db.create_task(core::TaskKind::Analysis, {5}, 2.0);     // in flight

  // Crash + reboot: journal round-trip, then recovery.
  const std::string path = ::testing::TempDir() + "recover_journal.jsonl";
  db.save_journal(path);
  auto restored = core::Db::load_journal(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored.recover_in_flight(), 2u);
  EXPECT_EQ(restored.tasklet_status(1), core::TaskletStatus::Processed)
      << "finished work is preserved";
  EXPECT_EQ(restored.tasklet_status(3), core::TaskletStatus::Pending);
  EXPECT_EQ(restored.tasklet_attempts(3), 1u) << "recovery costs an attempt";
  EXPECT_EQ(restored.tasklet_status(5), core::TaskletStatus::Pending);
  EXPECT_EQ(restored.task_status_counts().at(core::TaskStatus::Evicted), 2u);
  // Idempotent: nothing left to recover.
  EXPECT_EQ(restored.recover_in_flight(), 0u);
}

// Operator-plane tests: trace-diff attribution arithmetic, windowed
// counter-plane helpers (snapshot_delta, EwmaRate), the online Advisor's
// trigger/ladder edge cases, and campaign determinism with the advisor on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/monitor.hpp"
#include "core/trace_diff.hpp"
#include "lobsim/advisor.hpp"
#include "lobsim/campaign.hpp"
#include "util/trace.hpp"

namespace lobster::lobsim {
namespace {

using core::Segment;
using core::TaskRecord;
using core::TaskStatus;

double& seg(TaskRecord& rec, Segment s) {
  return rec.segment_time[static_cast<std::size_t>(s)];
}

TaskRecord done_record(std::uint64_t id, double env_setup, double execute,
                       double finish, std::size_t tasklets) {
  TaskRecord rec;
  rec.task_id = id;
  rec.status = TaskStatus::Done;
  rec.tasklets.resize(tasklets);
  rec.finish_time = finish;
  seg(rec, Segment::EnvSetup) = env_setup;
  seg(rec, Segment::Execute) = execute;
  rec.cpu_time = execute;
  return rec;
}

TaskRecord failed_record(std::uint64_t id, double env_setup, double finish) {
  TaskRecord rec;
  rec.task_id = id;
  rec.status = TaskStatus::Failed;
  rec.exit_code = 174;
  rec.finish_time = finish;
  seg(rec, Segment::EnvSetup) = env_setup;
  return rec;
}

// ---------------------------------------------------------------------------
// Trace-diff attribution
// ---------------------------------------------------------------------------

TEST(TraceDiff, AttributesSegmentsOfSuccessfulTasksAndWallOfFailedOnes) {
  std::vector<TaskRecord> run;
  run.push_back(done_record(1, 100.0, 50.0, 200.0, 2));
  run.push_back(failed_record(2, 60.0, 300.0));

  const core::RunAttribution a = core::attribute_records(run, "a");
  EXPECT_EQ(a.tasks, 2u);
  EXPECT_EQ(a.failures, 1u);
  EXPECT_EQ(a.tasklets_processed, 2u);  // failed task's tasklets don't count
  EXPECT_EQ(a.makespan, 300.0);
  EXPECT_EQ(a.goodput, 2.0 / (300.0 / 3600.0));
  // The successful task's env_setup lands in its segment bucket; every
  // second of the failed task's wall lands in "failed", none in env_setup.
  EXPECT_EQ(a.bucket_seconds[static_cast<std::size_t>(Segment::EnvSetup)],
            100.0);
  EXPECT_EQ(a.bucket_seconds[core::kBucketFailed], 60.0);
}

TEST(TraceDiff, TopMoverCarriesSignAndShareOfDelta) {
  std::vector<TaskRecord> before;
  before.push_back(done_record(1, 100.0, 50.0, 200.0, 2));
  before.push_back(failed_record(2, 60.0, 300.0));
  std::vector<TaskRecord> after;
  after.push_back(done_record(1, 10.0, 50.0, 110.0, 2));
  after.push_back(done_record(2, 10.0, 50.0, 150.0, 1));

  const core::TraceDiff diff =
      core::diff_task_records(before, after, "before", "after");
  // env_setup moved 100 -> 20 (-80), failed 60 -> 0 (-60), execute +50.
  ASSERT_FALSE(diff.movers.empty());
  EXPECT_EQ(diff.movers[0].bucket, "env_setup");
  EXPECT_EQ(diff.movers[0].delta, -80.0);
  EXPECT_EQ(diff.movers[0].share, 80.0 / (80.0 + 60.0 + 50.0));
  EXPECT_EQ(diff.movers[1].bucket, "failed");
  EXPECT_EQ(diff.movers[1].delta, -60.0);
  EXPECT_EQ(diff.makespan_delta, 150.0 - 300.0);
}

TEST(TraceDiff, HistogramsShareEdgesAcrossRuns) {
  std::vector<TaskRecord> before;
  before.push_back(done_record(1, 100.0, 0.0, 100.0, 1));
  std::vector<TaskRecord> after;
  after.push_back(done_record(1, 10.0, 0.0, 10.0, 1));

  const core::TraceDiff diff =
      core::diff_task_records(before, after, "b", "a", 10);
  const auto* env = [&]() -> const core::BucketHistograms* {
    for (const auto& h : diff.histograms)
      if (h.bucket == "env_setup") return &h;
    return nullptr;
  }();
  ASSERT_NE(env, nullptr);
  // One shared range spanning both runs' observations: the same bin edges
  // on both sides, so bins are comparable one-to-one.
  ASSERT_EQ(env->before.nbins(), env->after.nbins());
  EXPECT_EQ(env->before.bin_lo(0), env->after.bin_lo(0));
  EXPECT_EQ(env->before.bin_hi(env->before.nbins() - 1),
            env->after.bin_hi(env->after.nbins() - 1));
  EXPECT_EQ(env->before.entries(), 1u);
  EXPECT_EQ(env->after.entries(), 1u);
}

// ---------------------------------------------------------------------------
// Windowed counter plane
// ---------------------------------------------------------------------------

TEST(CounterPlane, SnapshotDeltaDiffsByNameAndKeepsNewNames) {
  util::CounterRegistry reg;
  reg.counter("a.events").add(3);
  reg.gauge("b.bytes").add(100.0);
  const auto before = reg.snapshot();

  reg.counter("a.events").add(4);
  reg.gauge("b.bytes").add(50.0);
  reg.counter("c.late").add(7);  // registered after the baseline snapshot
  const auto after = reg.snapshot();

  const auto delta = util::CounterRegistry::snapshot_delta(before, after);
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta[0].name, "a.events");
  EXPECT_EQ(delta[0].value, 4.0);
  EXPECT_EQ(delta[1].name, "b.bytes");
  EXPECT_EQ(delta[1].value, 50.0);
  EXPECT_TRUE(delta[1].is_gauge);
  // A name born inside the window reports its full value as the delta.
  EXPECT_EQ(delta[2].name, "c.late");
  EXPECT_EQ(delta[2].value, 7.0);
}

TEST(CounterPlane, EwmaRatePrimesThenConverges) {
  util::EwmaRate ewma(600.0);
  EXPECT_EQ(ewma.update(0.0, 0.0), 0.0);  // priming tick: no rate yet

  // Constant 2 events/s observed every 300 s: the level approaches 2 with
  // alpha = 1 - exp(-300/600) per step.
  const double alpha = 1.0 - std::exp(-300.0 / 600.0);
  double expected = 0.0;
  double total = 0.0;
  for (int i = 1; i <= 5; ++i) {
    total += 600.0;  // 2 events/s * 300 s
    const double rate = ewma.update(300.0 * i, total);
    expected += alpha * (2.0 - expected);
    EXPECT_EQ(rate, expected);
  }
  // After five steps the residual is exactly 2 * (1 - alpha)^5.
  EXPECT_NEAR(ewma.rate(), 2.0, 2.02 * std::pow(1.0 - alpha, 5.0));

  // A same-instant resample keeps the level instead of dividing by zero.
  EXPECT_EQ(ewma.update(1500.0, total + 100.0), ewma.rate());
}

// ---------------------------------------------------------------------------
// Advisor edge cases
// ---------------------------------------------------------------------------

struct RecordingActions : AdvisorActions {
  std::uint32_t cap = 0;
  std::vector<std::pair<std::size_t, double>> shares;
  void set_task_size_cap(std::uint32_t c) override { cap = c; }
  void set_dispatch_share(std::size_t site, double share) override {
    shares.emplace_back(site, share);
  }
};

AdvisorConfig test_config() {
  AdvisorConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(Advisor, QuietWindowTakesNoAction) {
  Advisor advisor(test_config(), 6, 2);
  core::Monitor monitor;
  monitor.on_task_finished(done_record(1, 1.0, 99.0, 100.0, 6));
  RecordingActions actions;
  const auto decisions = advisor.tick(300.0, monitor, {}, actions);
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(advisor.dispatch_share(), 1.0);
  EXPECT_TRUE(actions.shares.empty());
}

TEST(Advisor, SetupTimeWindowThrottlesEverySite) {
  Advisor advisor(test_config(), 6, 2);
  core::Monitor monitor;
  // other/total = 30/100: past the 0.15 setup threshold.
  monitor.on_task_finished(done_record(1, 30.0, 70.0, 100.0, 6));
  RecordingActions actions;
  const auto decisions = advisor.tick(300.0, monitor, {}, actions);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Throttle);
  EXPECT_EQ(decisions[0].rule, core::DiagnosisRule::SetupTime);
  EXPECT_EQ(decisions[0].value, advisor.config().throttle_share);
  const std::vector<std::pair<std::size_t, double>> want = {
      {0, advisor.config().throttle_share},
      {1, advisor.config().throttle_share}};
  EXPECT_EQ(actions.shares, want);
}

TEST(Advisor, SevereFailureBurstDrainsMildOneProbes) {
  {  // hard-failed wall at 60 % of the window: severity 1 -> drain.
    Advisor advisor(test_config(), 6, 1);
    core::Monitor monitor;
    monitor.on_task_finished(done_record(1, 0.0, 40.0, 100.0, 6));
    monitor.on_task_finished(failed_record(2, 60.0, 100.0));
    RecordingActions actions;
    const auto decisions = advisor.tick(300.0, monitor, {}, actions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Drain);
    EXPECT_EQ(advisor.dispatch_share(), 0.0);
  }
  {  // 25 % of the window: past threshold but below 2x -> probe trickle.
    Advisor advisor(test_config(), 6, 1);
    core::Monitor monitor;
    monitor.on_task_finished(done_record(1, 0.0, 75.0, 100.0, 6));
    monitor.on_task_finished(failed_record(2, 25.0, 100.0));
    RecordingActions actions;
    const auto decisions = advisor.tick(300.0, monitor, {}, actions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Throttle);
    EXPECT_EQ(advisor.dispatch_share(), advisor.config().probe_share);
  }
}

TEST(Advisor, EvictionWallIsNotAFailureBurst) {
  Advisor advisor(test_config(), 6, 1);
  core::Monitor monitor;
  monitor.on_task_finished(done_record(1, 0.0, 40.0, 100.0, 6));
  TaskRecord evicted = failed_record(2, 60.0, 100.0);
  evicted.status = TaskStatus::Evicted;
  evicted.exit_code = 0;
  monitor.on_task_finished(evicted);
  RecordingActions actions;
  const auto decisions = advisor.tick(300.0, monitor, {}, actions);
  // Routine opportunistic evictions must not read as an outage.
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(advisor.dispatch_share(), 1.0);
}

TEST(Advisor, ShrinkHalvesTaskSizeAndStopsAtTheFloor) {
  AdvisorConfig cfg = test_config();
  cfg.min_task_size = 2;
  Advisor advisor(cfg, 8, 1);
  RecordingActions actions;
  auto lost_window = [&](double tick_end, core::Monitor& monitor,
                         std::uint64_t id) {
    TaskRecord rec = done_record(id, 0.0, 70.0, tick_end, 6);
    rec.lost_time = 30.0;  // lost/total = 30/100 > 0.10
    monitor.on_task_finished(rec);
  };
  core::Monitor monitor;
  lost_window(300.0, monitor, 1);
  auto d1 = advisor.tick(300.0, monitor, {}, actions);
  ASSERT_FALSE(d1.empty());
  EXPECT_EQ(d1[0].kind, AdvisorDecision::Kind::Shrink);
  EXPECT_EQ(advisor.task_size_cap(), 4u);
  lost_window(600.0, monitor, 2);
  advisor.tick(600.0, monitor, {}, actions);
  EXPECT_EQ(advisor.task_size_cap(), 2u);  // floored at min_task_size
  lost_window(900.0, monitor, 3);
  const auto d3 = advisor.tick(900.0, monitor, {}, actions);
  for (const auto& d : d3)
    EXPECT_NE(d.kind, AdvisorDecision::Kind::Shrink);  // already at the floor
  EXPECT_EQ(advisor.task_size_cap(), 2u);
  EXPECT_EQ(actions.cap, 2u);
}

TEST(Advisor, ProxyWasteRateThrottlesWithoutCompletionEvidence) {
  Advisor advisor(test_config(), 6, 1);
  core::Monitor monitor;  // no finished task at all: completions lag
  RecordingActions actions;
  AdvisorGauges gauges;
  gauges.proxy_bytes_served = 100e9;
  gauges.proxy_bytes_thrashed = 10e9;  // 10 % waste > 5 % threshold
  const auto decisions = advisor.tick(300.0, monitor, gauges, actions);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Throttle);
  EXPECT_EQ(decisions[0].rule, core::DiagnosisRule::SetupTime);
  EXPECT_EQ(decisions[0].severity, 1.0);  // (0.10 - 0.05) / 0.05, capped
  EXPECT_EQ(advisor.proxy_waste_frac(), 0.1);
  EXPECT_EQ(advisor.dispatch_share(), advisor.config().throttle_share);
}

TEST(Advisor, ProxyWasteExactlyAtThresholdDoesNotFire) {
  Advisor advisor(test_config(), 6, 1);
  core::Monitor monitor;
  RecordingActions actions;
  AdvisorGauges gauges;
  gauges.proxy_bytes_served = 100.0;
  gauges.proxy_bytes_thrashed = 5.0;  // exactly the 0.05 threshold: strict >
  const auto decisions = advisor.tick(300.0, monitor, gauges, actions);
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(advisor.dispatch_share(), 1.0);
}

TEST(Advisor, RestoreClimbsAdditivelyOnceTheWasteStops) {
  Advisor advisor(test_config(), 6, 1);
  const AdvisorConfig& cfg = advisor.config();
  core::Monitor monitor;
  RecordingActions actions;
  AdvisorGauges hot;
  hot.proxy_bytes_served = 100.0;
  hot.proxy_bytes_thrashed = 50.0;
  advisor.tick(300.0, monitor, hot, actions);
  ASSERT_EQ(advisor.dispatch_share(), cfg.throttle_share);

  // Waste gone: each clean tick climbs one restore_step, not a full jump —
  // a jump would re-admit the whole deferred cohort at once.
  double share = cfg.throttle_share;
  int restores = 0;
  while (advisor.dispatch_share() < 1.0 && restores < 10) {
    const auto decisions = advisor.tick(600.0 + 300.0 * restores, monitor, {},
                                        actions);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Restore);
    share = std::min(1.0, share + cfg.restore_step);
    EXPECT_EQ(advisor.dispatch_share(), share);
    ++restores;
  }
  EXPECT_EQ(advisor.dispatch_share(), 1.0);
  EXPECT_EQ(restores, 3);  // 0.30 -> 0.55 -> 0.80 -> 1.0
}

TEST(Advisor, StillFiringCompletionRuleHoldsTheLadderDown) {
  Advisor advisor(test_config(), 6, 1);
  core::Monitor monitor;
  RecordingActions actions;
  AdvisorGauges hot;
  hot.proxy_bytes_served = 100.0;
  hot.proxy_bytes_thrashed = 50.0;
  advisor.tick(300.0, monitor, hot, actions);

  // Proxy waste is gone but the completion window is setup-heavy: the
  // ladder may not climb past what the still-firing rule demands.
  monitor.on_task_finished(done_record(1, 30.0, 70.0, 550.0, 6));
  const auto decisions = advisor.tick(600.0, monitor, {}, actions);
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(advisor.dispatch_share(), advisor.config().throttle_share);

  // Next window is clean on both planes: the climb resumes.
  monitor.on_task_finished(done_record(2, 1.0, 99.0, 850.0, 6));
  const auto d2 = advisor.tick(900.0, monitor, {}, actions);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].kind, AdvisorDecision::Kind::Restore);
}

TEST(Advisor, EmptyWindowCountsAsCleanForRecovery) {
  Advisor advisor(test_config(), 6, 1);
  core::Monitor monitor;
  RecordingActions actions;
  // Throttle on a setup-heavy completion window.
  monitor.on_task_finished(done_record(1, 30.0, 70.0, 250.0, 6));
  advisor.tick(300.0, monitor, {}, actions);
  ASSERT_EQ(advisor.dispatch_share(), advisor.config().throttle_share);
  // No task lands in the next window: that is no evidence the symptom
  // persists, and a throttled site may need longer than a period to land
  // anything — the ladder climbs.
  const auto decisions = advisor.tick(600.0, monitor, {}, actions);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].kind, AdvisorDecision::Kind::Restore);
}

// ---------------------------------------------------------------------------
// Campaign determinism with the advisor on
// ---------------------------------------------------------------------------

RunSpec advisor_spec(std::uint64_t seed) {
  RunSpec spec;
  spec.label = "advisor-on";
  spec.seed = seed;
  spec.cluster.target_cores = 64;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.cluster.squid.connect_timeout = 600.0;
  spec.workload.num_tasklets = 300;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.time_cap = 10.0 * 86400.0;
  spec.metric_bin_seconds = 3600.0;
  spec.advisor.enabled = true;
  spec.advisor.period = 300.0;
  return spec;
}

TEST(OperatorPlane, AdvisorOnCampaignSerialVsParallelBitwise) {
  std::vector<std::uint64_t> seeds = {2015, 2016, 2017, 2018};
  Campaign serial(1);
  Campaign parallel(4);
  for (std::uint64_t s : seeds) {
    serial.add(advisor_spec(s));
    parallel.add(advisor_spec(s));
  }
  const auto& a = serial.run();
  const auto& b = parallel.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << a[i].error;
    ASSERT_TRUE(b[i].ok()) << b[i].error;
    const RunStats& x = a[i].stats;
    const RunStats& y = b[i].stats;
    // Bitwise determinism: the advisor's decisions are a pure function of
    // the counter plane and simulated time, so thread scheduling must not
    // leak into them.
    EXPECT_EQ(x.makespan, y.makespan);
    EXPECT_EQ(x.tasks_completed, y.tasks_completed);
    EXPECT_EQ(x.tasks_failed, y.tasks_failed);
    EXPECT_EQ(x.tasks_evicted, y.tasks_evicted);
    EXPECT_EQ(x.tasklets_processed, y.tasklets_processed);
    EXPECT_EQ(x.tasklets_retried, y.tasklets_retried);
    EXPECT_EQ(x.advisor_ticks, y.advisor_ticks);
    EXPECT_EQ(x.advisor_shrinks, y.advisor_shrinks);
    EXPECT_EQ(x.advisor_throttles, y.advisor_throttles);
    EXPECT_EQ(x.advisor_drains, y.advisor_drains);
    EXPECT_EQ(x.advisor_restores, y.advisor_restores);
    EXPECT_EQ(x.breakdown.cpu, y.breakdown.cpu);
    EXPECT_EQ(x.breakdown.failed, y.breakdown.failed);
    EXPECT_EQ(x.breakdown.hard_failed, y.breakdown.hard_failed);
    EXPECT_EQ(x.breakdown.other, y.breakdown.other);
  }
}

}  // namespace
}  // namespace lobster::lobsim

// Tests for the CVMFS substrate: repository/release, the three Parrot cache
// locking modes (including real multithreaded races), and the squid proxy
// (real LRU implementation and DES model).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"
#include "cvmfs/squid.hpp"
#include "des/simulation.hpp"
#include "util/rng.hpp"

namespace cv = lobster::cvmfs;
namespace des = lobster::des;
namespace lu = lobster::util;

// ----------------------------------------------------------- repository ----

TEST(Repository, AddLookupDigest) {
  cv::Repository repo;
  repo.add("/cvmfs/cms/lib1.so", 1000.0);
  ASSERT_TRUE(repo.has("/cvmfs/cms/lib1.so"));
  const auto obj = repo.lookup("/cvmfs/cms/lib1.so");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->digest, cv::digest_of("/cvmfs/cms/lib1.so", 1000.0));
  EXPECT_DOUBLE_EQ(repo.total_bytes(), 1000.0);
  EXPECT_FALSE(repo.lookup("/missing").has_value());
}

TEST(Repository, RejectsDuplicatesAndBadInput) {
  cv::Repository repo;
  repo.add("/a", 1.0);
  EXPECT_THROW(repo.add("/a", 2.0), std::invalid_argument);
  EXPECT_THROW(repo.add("", 1.0), std::invalid_argument);
  EXPECT_THROW(repo.add("/b", -1.0), std::invalid_argument);
}

TEST(Digest, DistinctInputsDistinctDigests) {
  const auto a = cv::digest_of("/a", 1.0);
  const auto b = cv::digest_of("/b", 1.0);
  const auto c = cv::digest_of("/a", 2.0);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(Release, CatalogMatchesSpec) {
  cv::ReleaseSpec spec;
  spec.num_files = 500;
  spec.total_bytes = 6.0e9;
  spec.working_set_bytes = 1.5e9;
  cv::Release rel(spec, lu::Rng(1));
  EXPECT_EQ(rel.repository().num_files(), 500u);
  EXPECT_NEAR(rel.repository().total_bytes(), 6.0e9, 1.0);
}

TEST(Release, WorkingSetVolumeMatchesTarget) {
  cv::ReleaseSpec spec;
  spec.num_files = 500;
  spec.total_bytes = 6.0e9;
  spec.working_set_bytes = 1.5e9;
  cv::Release rel(spec, lu::Rng(2));
  lu::Rng rng(3);
  double total = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto ws = rel.sample_working_set(rng);
    for (const auto& f : ws) total += f.size_bytes;
  }
  // Expected working-set volume ~1.5 GB per task (20% tolerance).
  EXPECT_NEAR(total / trials, 1.5e9, 0.3e9);
}

TEST(Release, WorkingSetsOverlapInTheHead) {
  // Two tasks should share most of their bytes (the popular Zipf head) —
  // the property that makes hot caches effective.
  cv::ReleaseSpec spec;
  spec.num_files = 500;
  cv::Release rel(spec, lu::Rng(4));
  lu::Rng rng(5);
  const auto a = rel.sample_working_set(rng);
  const auto b = rel.sample_working_set(rng);
  std::map<std::string, double> in_a;
  double a_bytes = 0.0;
  for (const auto& f : a) {
    in_a[f.path] = f.size_bytes;
    a_bytes += f.size_bytes;
  }
  double shared = 0.0;
  for (const auto& f : b)
    if (in_a.count(f.path)) shared += f.size_bytes;
  EXPECT_GT(shared / a_bytes, 0.5);
}

// ---------------------------------------------------------- parrot cache ----

namespace {
// A fetcher that verifies content addressing and counts invocations, with an
// optional artificial delay to expose locking behaviour.
struct CountingFetcher {
  std::atomic<int> calls{0};
  std::chrono::microseconds delay{0};
  cv::Fetcher fn() {
    return [this](const cv::FileObject& obj) {
      calls.fetch_add(1, std::memory_order_relaxed);
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      return cv::digest_of(obj.path, obj.size_bytes);
    };
  }
};

std::vector<cv::FileObject> test_objects(std::size_t n) {
  std::vector<cv::FileObject> objs;
  for (std::size_t i = 0; i < n; ++i) {
    cv::FileObject o;
    o.path = "/cvmfs/obj" + std::to_string(i);
    o.size_bytes = 100.0 * static_cast<double>(i + 1);
    o.digest = cv::digest_of(o.path, o.size_bytes);
    objs.push_back(std::move(o));
  }
  return objs;
}
}  // namespace

class ParrotCacheModes : public ::testing::TestWithParam<cv::CacheMode> {};

TEST_P(ParrotCacheModes, SingleInstanceHitAfterMiss) {
  CountingFetcher fetcher;
  cv::CacheGroup group(GetParam(), fetcher.fn());
  auto inst = group.make_instance();
  const auto objs = test_objects(1);
  const auto first = inst.access(objs[0]);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.digest, objs[0].digest);
  const auto second = inst.access(objs[0]);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.digest, objs[0].digest);
  EXPECT_EQ(fetcher.calls.load(), 1);
}

TEST_P(ParrotCacheModes, ConcurrentAccessIsSafeAndCorrect) {
  CountingFetcher fetcher;
  cv::CacheGroup group(GetParam(), fetcher.fn());
  const auto objs = test_objects(40);
  constexpr int kThreads = 8;
  std::vector<cv::CacheGroup::Instance> instances;
  for (int i = 0; i < kThreads; ++i) instances.push_back(group.make_instance());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      lu::Rng rng(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < 500; ++i) {
        const auto& obj =
            objs[static_cast<std::size_t>(rng.uniform_int(0, 39))];
        const auto res = instances[static_cast<std::size_t>(t)].access(obj);
        if (!(res.digest == obj.digest)) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0) << "cache must never serve corrupt content";
}

INSTANTIATE_TEST_SUITE_P(AllModes, ParrotCacheModes,
                         ::testing::Values(cv::CacheMode::Exclusive,
                                           cv::CacheMode::PerInstance,
                                           cv::CacheMode::Alien),
                         [](const auto& info) {
                           return std::string(cv::to_string(info.param)) ==
                                          "per-instance"
                                      ? "PerInstance"
                                      : cv::to_string(info.param);
                         });

TEST(ParrotCache, AlienFetchesEachObjectExactlyOnce) {
  CountingFetcher fetcher;
  fetcher.delay = std::chrono::microseconds(200);
  cv::CacheGroup group(cv::CacheMode::Alien, fetcher.fn());
  const auto objs = test_objects(20);
  constexpr int kThreads = 8;
  std::vector<cv::CacheGroup::Instance> instances;
  for (int i = 0; i < kThreads; ++i) instances.push_back(group.make_instance());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& obj : objs)
        instances[static_cast<std::size_t>(t)].access(obj);
    });
  }
  for (auto& th : threads) th.join();
  // The alien-cache invariant: one fetch per object per node, no matter how
  // many instances raced.
  EXPECT_EQ(fetcher.calls.load(), 20);
  EXPECT_EQ(group.stats().fetches.load(), 20u);
  EXPECT_EQ(group.stored_objects(), 20u);
}

TEST(ParrotCache, PerInstanceDuplicatesFetches) {
  CountingFetcher fetcher;
  cv::CacheGroup group(cv::CacheMode::PerInstance, fetcher.fn());
  const auto objs = test_objects(10);
  auto i1 = group.make_instance();
  auto i2 = group.make_instance();
  for (const auto& obj : objs) {
    i1.access(obj);
    i2.access(obj);
  }
  // Both instances fetched everything: 2x bandwidth, 2x storage (paper:
  // "this increases the bandwidth required in direct proportion to the
  // number of tasks running per worker").
  EXPECT_EQ(fetcher.calls.load(), 20);
  EXPECT_EQ(group.stored_objects(), 20u);
  double expect_bytes = 0.0;
  for (const auto& obj : objs) expect_bytes += 2.0 * obj.size_bytes;
  EXPECT_DOUBLE_EQ(group.stored_bytes(), expect_bytes);
}

TEST(ParrotCache, ExclusiveSharesOneCopy) {
  CountingFetcher fetcher;
  cv::CacheGroup group(cv::CacheMode::Exclusive, fetcher.fn());
  const auto objs = test_objects(10);
  auto i1 = group.make_instance();
  auto i2 = group.make_instance();
  for (const auto& obj : objs) i1.access(obj);
  for (const auto& obj : objs) {
    const auto res = i2.access(obj);
    EXPECT_TRUE(res.hit);
  }
  EXPECT_EQ(fetcher.calls.load(), 10);
  EXPECT_EQ(group.stored_objects(), 10u);
}

TEST(ParrotCache, NullFetcherRejected) {
  EXPECT_THROW(cv::CacheGroup(cv::CacheMode::Alien, nullptr),
               std::invalid_argument);
}

// ----------------------------------------------------------- squid (real) ----

TEST(SquidProxy, HitMissAccounting) {
  CountingFetcher upstream;
  cv::SquidProxy squid(1e9, upstream.fn());
  const auto objs = test_objects(5);
  for (const auto& obj : objs) squid.fetch(obj);  // all misses
  for (const auto& obj : objs) squid.fetch(obj);  // all hits
  EXPECT_EQ(squid.misses(), 5u);
  EXPECT_EQ(squid.hits(), 5u);
  EXPECT_EQ(upstream.calls.load(), 5);
  EXPECT_DOUBLE_EQ(squid.bytes_upstream(), squid.bytes_served() / 2.0);
}

TEST(SquidProxy, LruEvictionUnderCapacity) {
  CountingFetcher upstream;
  // Capacity fits only ~2 of the 100-300 byte objects.
  cv::SquidProxy squid(450.0, upstream.fn());
  const auto objs = test_objects(3);
  squid.fetch(objs[0]);  // 100
  squid.fetch(objs[1]);  // 200
  squid.fetch(objs[2]);  // 300 -> evicts LRU (objs[0], then objs[1])
  EXPECT_LE(squid.resident_bytes(), 450.0 + 300.0);
  squid.fetch(objs[0]);  // must re-fetch
  EXPECT_GE(upstream.calls.load(), 4);
}

TEST(SquidProxy, ServesAsCacheGroupFetcher) {
  CountingFetcher upstream;
  cv::SquidProxy squid(1e9, upstream.fn());
  cv::CacheGroup node1(cv::CacheMode::Alien, squid.as_fetcher());
  cv::CacheGroup node2(cv::CacheMode::Alien, squid.as_fetcher());
  auto a = node1.make_instance();
  auto b = node2.make_instance();
  const auto objs = test_objects(10);
  for (const auto& obj : objs) a.access(obj);
  for (const auto& obj : objs) b.access(obj);
  // Node 2 misses locally but hits in the shared squid: upstream sees each
  // object once in total.
  EXPECT_EQ(upstream.calls.load(), 10);
  EXPECT_EQ(squid.hits(), 10u);
}

TEST(SquidProxy, ThreadSafetyUnderLoad) {
  CountingFetcher upstream;
  cv::SquidProxy squid(1e12, upstream.fn());
  const auto objs = test_objects(50);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      lu::Rng rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < 1000; ++i) {
        const auto& obj =
            objs[static_cast<std::size_t>(rng.uniform_int(0, 49))];
        if (!(squid.fetch(obj) == obj.digest)) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(squid.hits() + squid.misses(), 8000u);
}

// ------------------------------------------------------------ squid (sim) ----

namespace {
des::Process sim_fetch(des::Simulation& sim, cv::SquidSim& squid, double bytes,
                       bool hit, std::vector<double>& durations,
                       int& failures) {
  try {
    const double dt = co_await squid.fetch(bytes, hit);
    durations.push_back(dt);
  } catch (const cv::SquidSim::TimeoutError&) {
    ++failures;
  }
  (void)sim;
}
}  // namespace

TEST(SquidSim, MissSlowerThanHit) {
  des::Simulation sim;
  cv::SquidSim::Params p;
  p.max_connections = 10;
  p.service_rate = 1e8;
  p.upstream_rate = 1e7;
  p.request_latency = 0.1;
  cv::SquidSim squid(sim, p);
  std::vector<double> durations;
  int failures = 0;
  sim.spawn(sim_fetch(sim, squid, 1e8, false, durations, failures));
  sim.run();
  sim.spawn(sim_fetch(sim, squid, 1e8, true, durations, failures));
  sim.run();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_NEAR(durations[0], 0.1 + 10.0 + 1.0, 1e-9);  // upstream + service
  EXPECT_NEAR(durations[1], 0.1 + 1.0, 1e-9);         // service only
  EXPECT_EQ(failures, 0);
}

TEST(SquidSim, SaturationGrowsOverheadWithClients) {
  // The Figure 5 mechanism: mean fetch time grows once concurrent clients
  // saturate the proxy service link.
  auto mean_fetch_time = [](int clients) {
    des::Simulation sim;
    cv::SquidSim::Params p;
    p.max_connections = 100000;
    p.service_rate = 1e9;
    p.request_latency = 0.0;
    cv::SquidSim squid(sim, p);
    std::vector<double> durations;
    int failures = 0;
    for (int i = 0; i < clients; ++i)
      sim.spawn(sim_fetch(sim, squid, 25e6, true, durations, failures));
    sim.run();
    double sum = 0.0;
    for (double d : durations) sum += d;
    return sum / static_cast<double>(durations.size());
  };
  const double t10 = mean_fetch_time(10);
  const double t1000 = mean_fetch_time(1000);
  EXPECT_GT(t1000, 5.0 * t10);
}

TEST(SquidSim, ConnectTimeoutProducesFailures) {
  des::Simulation sim;
  cv::SquidSim::Params p;
  p.max_connections = 1;
  p.service_rate = 1e6;
  p.request_latency = 0.0;
  p.connect_timeout = 5.0;
  cv::SquidSim squid(sim, p);
  std::vector<double> durations;
  int failures = 0;
  // Each transfer takes 100 s on the service link; queued clients exceed
  // the 5 s connect timeout.
  for (int i = 0; i < 4; ++i)
    sim.spawn(sim_fetch(sim, squid, 1e8, true, durations, failures));
  sim.run();
  EXPECT_EQ(durations.size(), 1u);
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(squid.timeouts(), 3u);
}

TEST(SquidSim, NoteRequestTracksProxyCacheState) {
  des::Simulation sim;
  cv::SquidSim squid(sim, {});
  EXPECT_FALSE(squid.note_request("/cvmfs/a"));
  EXPECT_TRUE(squid.note_request("/cvmfs/a"));
  EXPECT_FALSE(squid.note_request("/cvmfs/b"));
}

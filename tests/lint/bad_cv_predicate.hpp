#pragma once
// Fixture: the condition-variable wait predicate runs under pump_mu_ (the
// lock passed to wait), but `primed_` is guarded by tank_mu_ — the
// predicate read is a guardeduse finding, not an exemption.
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

class PressurePump {
 public:
  void wait_primed() {
    std::unique_lock<std::mutex> lock(pump_mu_);
    primed_cv_.wait(lock, [&] { return primed_; });
  }
  void prime() {
    std::lock_guard<std::mutex> lock(tank_mu_);
    primed_ = true;
  }

 private:
  std::mutex pump_mu_;
  std::mutex tank_mu_;
  std::condition_variable primed_cv_;
  bool primed_ LOBSTER_GUARDED_BY(tank_mu_) = false;
};

#pragma once
// Fixture: half of a cross-class lock-order cycle (the other half lives in
// bad_cross_class_order_b.hpp): RelayHub locks hub_mu_ and calls into
// RelayPort, which locks port_mu_.
#include <mutex>

#include "bad_cross_class_order_b.hpp"
#include "util/thread_annotations.hpp"

class RelayHub {
 public:
  void broadcast() {
    std::lock_guard<std::mutex> lock(hub_mu_);
    port_->accept_frame();
  }
  void bump() {
    std::lock_guard<std::mutex> lock(hub_mu_);
    ++frames_;
  }

 private:
  std::mutex hub_mu_;
  long frames_ LOBSTER_GUARDED_BY(hub_mu_) = 0;
  RelayPort* port_ LOBSTER_NOT_GUARDED(wired once at construction) = nullptr;
};

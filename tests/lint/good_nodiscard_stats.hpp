// Fixture: properly annotated metrics accessors; void functions, setters
// and call sites are out of scope.
#pragma once

#include <cstdint>

class CacheStatsView {
 public:
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]]
  std::uint64_t misses() const { return misses_; }

  void reset();                       // void: not an accessor
  void set_hits(std::uint64_t v) { hits_ = v; }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

inline std::uint64_t use(const CacheStatsView& v) {
  return v.hits() + v.misses();  // call sites never flag
}

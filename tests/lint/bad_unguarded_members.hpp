// Fixture: a mutex-holding class with bare members — every one needs a
// LOBSTER_GUARDED_BY / LOBSTER_NOT_GUARDED annotation.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

class Counter {
 public:
  void bump();

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  std::string label_;
};

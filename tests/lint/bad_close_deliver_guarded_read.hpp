#pragma once
// Fixture: the PR 8 close-vs-deliver shape — `closed_` is guarded, but
// deliver() peeks at it before taking the lock (the lost-wakeup race).
#include <condition_variable>
#include <deque>
#include <mutex>

#include "util/thread_annotations.hpp"

class DeliveryChute {
 public:
  bool deliver(int parcel) {
    if (closed_) return false;
    std::lock_guard<std::mutex> lock(chute_mu_);
    parcels_.push_back(parcel);
    arrived_.notify_one();
    return true;
  }
  void close() {
    std::lock_guard<std::mutex> lock(chute_mu_);
    closed_ = true;
    arrived_.notify_all();
  }

 private:
  std::mutex chute_mu_;
  std::condition_variable arrived_;
  std::deque<int> parcels_ LOBSTER_GUARDED_BY(chute_mu_);
  bool closed_ LOBSTER_GUARDED_BY(chute_mu_) = false;
};

// Fixture: seeds an engine from std::random_device — nondeterministic runs.
#include <random>

unsigned roll() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return gen();
}

// Fixture: task-counter and timeline accessors without [[nodiscard]] — the
// tasks_ prefix and _timeline suffix shapes the rule must recognise.
#pragma once

#include <cstdint>
#include <vector>

class MonitorView {
 public:
  std::uint64_t tasks_seen() const { return seen_; }
  std::uint64_t tasks_evicted() const { return evicted_; }
  std::vector<double> efficiency_timeline() const { return {}; }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t evicted_ = 0;
};

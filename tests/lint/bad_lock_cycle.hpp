#pragma once
// Fixture: two mutexes of one class taken in opposite orders by two
// methods — the lockorder rule must report a cycle.
#include <mutex>

#include "util/thread_annotations.hpp"

class PairLedger {
 public:
  void credit() {
    std::lock_guard<std::mutex> a(ledger_mu_);
    std::lock_guard<std::mutex> b(audit_mu_);
    ++credits_;
    ++audits_;
  }
  void audit() {
    std::lock_guard<std::mutex> b(audit_mu_);
    std::lock_guard<std::mutex> a(ledger_mu_);
    ++audits_;
  }

 private:
  std::mutex ledger_mu_;
  std::mutex audit_mu_;
  long credits_ LOBSTER_GUARDED_BY(ledger_mu_) = 0;
  long audits_ LOBSTER_GUARDED_BY(audit_mu_) = 0;
};

// Fixture (with bad_cross_file.cpp): the unordered member lives here; the
// hazardous iteration lives in the .cpp.  The include graph connects them.
#pragma once

#include <string>
#include <unordered_map>

class Ledger {
 public:
  double balance() const;

 private:
  std::unordered_map<std::string, double> accounts_;
};

// Fixture: metrics accessors without [[nodiscard]] — a discarded metrics
// read is always a bug.
#pragma once

#include <cstdint>

class CacheStatsView {
 public:
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Fixture: iterates the unordered member declared in bad_cross_file.hpp —
// only the include graph makes the container type visible here.
#include "bad_cross_file.hpp"

double Ledger::balance() const {
  double total = 0.0;
  for (const auto& [name, amount] : accounts_) total += amount;
  return total;
}

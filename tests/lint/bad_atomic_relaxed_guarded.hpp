#pragma once
// Fixture: a relaxed atomic load of a guarded member outside the mutex is
// still a guardeduse finding — atomicity is not the contract, the lock is.
#include <atomic>
#include <cstddef>
#include <mutex>

#include "util/thread_annotations.hpp"

class BacklogMeter {
 public:
  std::size_t sample() const {
    return backlog_.load(std::memory_order_relaxed);
  }
  void grow() {
    std::lock_guard<std::mutex> lock(meter_mu_);
    backlog_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex meter_mu_;
  std::atomic<std::size_t> backlog_ LOBSTER_GUARDED_BY(meter_mu_){0};
};

#pragma once
// Fixture: guarded members touched only under their mutex, including the
// cv-wait predicate — clean under guardeduse.
#include <condition_variable>
#include <deque>
#include <mutex>

#include "util/thread_annotations.hpp"

class SluiceGate {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lock(gate_mu_);
    pending_.push_back(v);
    ready_cv_.notify_one();
  }
  int pop() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    ready_cv_.wait(lock, [&] { return !pending_.empty(); });
    const int v = pending_.front();
    pending_.pop_front();
    return v;
  }

 private:
  std::mutex gate_mu_;
  std::condition_variable ready_cv_;
  std::deque<int> pending_ LOBSTER_GUARDED_BY(gate_mu_);
};

// Fixture: partially annotated — the one bare member is still a finding.
#pragma once

#include <mutex>
#include <vector>

#include "util/thread_annotations.hpp"

class Queue {
 public:
  void push(int v);

 private:
  std::mutex mutex_;
  std::vector<int> items_ LOBSTER_GUARDED_BY(mutex_);
  std::size_t capacity_;
};

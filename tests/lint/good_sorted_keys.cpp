// Fixture: order-sensitive fold done right — keys sorted before summing.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

double total_bytes(const std::unordered_map<std::string, double>& sizes_) {
  std::vector<std::string> keys;
  keys.reserve(sizes_.size());
  for (const auto& [path, bytes] : sizes_) keys.push_back(path);  // lobster-lint: ordered-ok(collection only; folded after sorting)
  std::sort(keys.begin(), keys.end());
  double total = 0.0;
  for (const auto& key : keys) total += sizes_.at(key);
  return total;
}

// An ordered map may be folded directly.
double total_ordered(const std::map<std::string, double>& sizes) {
  double total = 0.0;
  for (const auto& [path, bytes] : sizes) total += bytes;
  return total;
}

// Unordered iteration with order-insensitive work is fine too.
std::size_t count_large(const std::unordered_map<std::string, double>& sizes_) {
  std::size_t n = 0;
  for (const auto& [path, bytes] : sizes_) {
    if (bytes > 1e6) ++n;
  }
  return n;
}

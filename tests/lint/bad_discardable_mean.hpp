// Fixture: a summary-statistics accessor without [[nodiscard]].
#pragma once

class Welford {
 public:
  double mean() const { return sum_ / count_; }

 private:
  double sum_ = 0.0;
  double count_ = 1.0;
};

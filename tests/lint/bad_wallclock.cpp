// Fixture: wall-clock reads — simulated time must come from the DES kernel.
#include <chrono>
#include <ctime>

double elapsed_since_epoch() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long stamp() { return static_cast<long>(time(nullptr)); }

// Fixture: folds doubles in hash order — the sum depends on bucket layout.
#include <string>
#include <unordered_map>

double total_bytes(const std::unordered_map<std::string, double>& sizes_) {
  double total = 0.0;
  for (const auto& [path, bytes] : sizes_) total += bytes;
  return total;
}

// Fixture: annotated task-counter and timeline accessors are clean, and the
// suffix/prefix shapes do not over-trigger on setters or call sites.
#pragma once

#include <cstdint>
#include <vector>

class MonitorView {
 public:
  [[nodiscard]] std::uint64_t tasks_seen() const { return seen_; }
  [[nodiscard]] std::vector<double> efficiency_timeline() const { return {}; }

  void reset_timeline();  // void: not an accessor

 private:
  std::uint64_t seen_ = 0;
};

inline std::uint64_t use(const MonitorView& v) {
  return v.tasks_seen() + v.efficiency_timeline().size();  // call sites pass
}

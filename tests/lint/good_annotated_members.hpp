// Fixture: fully annotated mutex-holding class; atomics, condition
// variables and the mutex itself need no annotation, and mutex-free
// classes are out of scope entirely.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

class Annotated {
 public:
  void bump();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  std::uint64_t count_ LOBSTER_GUARDED_BY(mutex_) = 0;
  std::string label_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::vector<int> items_ LOBSTER_GUARDED_BY(mutex_);
};

// No mutex: plain members are fine without annotations.
class MutexFree {
 public:
  int value() const { return value_; }

 private:
  int value_ = 0;
  std::vector<int> history_;
};

// Fixture: a suppression that silences nothing — the audit must flag it as
// stale so dead markers can't mask future regressions.
#include <vector>

int sum_sizes(const std::vector<int>& v) {
  // lobster-lint: ordered-ok(vector iteration is deterministic anyway)
  int total = 0;
  for (int x : v) total += x;
  return total;
}

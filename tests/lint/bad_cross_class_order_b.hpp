#pragma once
// Fixture: the other half of the cross-class cycle started in
// bad_cross_class_order_a.hpp: RelayPort locks port_mu_ and calls back
// into RelayHub under it.
#include <mutex>

#include "bad_cross_class_order_a.hpp"
#include "util/thread_annotations.hpp"

class RelayPort {
 public:
  void accept_frame() {
    std::lock_guard<std::mutex> lock(port_mu_);
    ++accepted_;
  }
  void flush_upstream() {
    std::lock_guard<std::mutex> lock(port_mu_);
    hub_->bump();
  }

 private:
  std::mutex port_mu_;
  long accepted_ LOBSTER_GUARDED_BY(port_mu_) = 0;
  RelayHub* hub_ LOBSTER_NOT_GUARDED(wired once at construction) = nullptr;
};

// Fixture: a suppression without a reason is itself a finding — the audit
// trail is the point.
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& sizes_) {
  double t = 0.0;
  // lobster-lint: ordered-ok()
  for (const auto& [k, v] : sizes_) t += v;
  return t;
}

#pragma once
// Fixture: a declared two-level hierarchy used in one direction only —
// clean under lockorder.
#include <mutex>

#include "util/thread_annotations.hpp"

class LampSocket {
 public:
  void flip() {
    std::lock_guard<std::mutex> lock(socket_mu_);
    lit_ = !lit_;
  }

 private:
  std::mutex socket_mu_;
  bool lit_ LOBSTER_GUARDED_BY(socket_mu_) = false;
};

class LampPanel {
 public:
  void flip_all() {
    std::lock_guard<std::mutex> lock(panel_mu_);
    socket_->flip();
    ++flips_;
  }

 private:
  std::mutex panel_mu_ LOBSTER_ACQUIRED_BEFORE(LampSocket::socket_mu_);
  long flips_ LOBSTER_GUARDED_BY(panel_mu_) = 0;
  LampSocket* socket_ LOBSTER_NOT_GUARDED(wired once at construction) =
      nullptr;
};

// Fixture: deterministic randomness — a seeded engine, no entropy source.
#include <cstdint>
#include <random>

std::uint64_t roll(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

// steady_clock is allowed: it only measures host durations, never feeds
// simulated time.
#include <chrono>
double host_elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Fixture: a work-stealing sibling registry holding a mutex — the member
// list a thief walks under the lock must carry a LOBSTER_GUARDED_BY
// annotation, like wq::StealGroup does.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

class Foreman;

class StealQueue {
 public:
  void add(Foreman* member);
  Foreman* pick_victim(const Foreman* thief);

 private:
  mutable std::mutex mutex_;
  std::vector<Foreman*> members_;
  std::size_t next_victim_ = 0;
};

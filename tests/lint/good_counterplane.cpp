// Fixture: one registration site per counter, grammar-conformant names; a
// tracer sample of an existing counter is not a re-registration.
#include "util/trace.hpp"

void register_good_counters(lobster::util::MetricRegistry& registry,
                            lobster::util::TraceSink& sink) {
  registry.counter("fixture.plane.pushes");
  registry.gauge("fixture.plane.depth");
  sink.counter("fixture.plane.pushes", 1.0, 0.0);
}

#pragma once
// Fixture: the PR 8 steal-group shape — the group lock is held while
// probing a member queue's lock, and the cross-class edge is not declared
// in the hierarchy.
#include <cstddef>
#include <mutex>
#include <vector>

#include "util/thread_annotations.hpp"

class RaidedQueue {
 public:
  std::size_t probe_depth() const {
    std::lock_guard<std::mutex> lock(raided_mu_);
    return depth_;
  }

 private:
  mutable std::mutex raided_mu_;
  std::size_t depth_ LOBSTER_GUARDED_BY(raided_mu_) = 0;
};

class RaiderGroup {
 public:
  std::size_t deepest() const {
    std::lock_guard<std::mutex> lock(group_mu_);
    std::size_t best = 0;
    for (RaidedQueue* q : raided_)
      if (q->probe_depth() > best) best = q->probe_depth();
    return best;
  }

 private:
  mutable std::mutex group_mu_;
  std::vector<RaidedQueue*> raided_ LOBSTER_GUARDED_BY(group_mu_);
};

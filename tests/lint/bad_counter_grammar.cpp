// Fixture: counter registration literals that violate the
// layer.subsystem.metric grammar (segment count and case).
#include "util/trace.hpp"

void register_bad_counters(lobster::util::MetricRegistry& registry) {
  registry.counter("fixture.two_segments");
  registry.gauge("Fixture.grammar.UpperCase");
  registry.counter("fixture.grammar.good_name");
}

// Fixture: the same counter registered at two sites, and one name
// registered as both a counter and a gauge.
#include "util/trace.hpp"

void register_dup_counters(lobster::util::MetricRegistry& registry) {
  registry.counter("fixture.dup.attempts");
  registry.counter("fixture.dup.attempts");
  registry.counter("fixture.kind.flips");
  registry.gauge("fixture.kind.flips");
}

// Fixture: draws from the run RNG while iterating an unordered container —
// the draw sequence (and everything downstream) depends on hash order.
#include <string>
#include <unordered_set>
#include <vector>

struct Rng {
  double uniform();
};

std::vector<double> jitter_all(const std::unordered_set<std::string>& names_,
                               Rng& rng) {
  std::vector<double> out;
  for (const auto& name : names_) {
    out.push_back(rng.uniform());
  }
  return out;
}

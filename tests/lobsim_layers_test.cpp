// Unit tests for the Engine's extracted layers: DispatchPolicy (task
// construction) and MergePlanner (merge-group planning).  Both are pure
// logic over pools — no DES kernel — so these tests pin the switchover
// points and group sizing directly.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/merge.hpp"
#include "lobsim/dispatch_policy.hpp"
#include "lobsim/merge_planner.hpp"

namespace lobster::lobsim {
namespace {

DispatchContext ctx(std::uint64_t slots, bool evictable = true,
                    std::size_t site = 0) {
  DispatchContext c;
  c.total_slots = slots;
  c.site = site;
  c.site_evictable = evictable;
  return c;
}

DispatchContext lifetime_ctx(std::uint64_t slots, double expected_lifetime,
                             double cpu_mean = 600.0) {
  DispatchContext c = ctx(slots);
  c.expected_remaining_lifetime = expected_lifetime;
  c.tasklet_cpu_mean = cpu_mean;
  return c;
}

TEST(DispatchPolicyTest, FifoAlwaysFullSize) {
  auto p = make_dispatch_policy(DispatchMode::Fifo, 6);
  EXPECT_STREQ(p->name(), "fifo");
  p->add_tasklets(100);
  const auto t = p->next(ctx(1000));
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->is_merge);
  // Full size even though the pool (100) fits in the slots (1000): fifo
  // never shrinks.
  EXPECT_EQ(t->n_tasklets, 6u);
  EXPECT_EQ(p->tasklets_pending(), 94u);
}

TEST(DispatchPolicyTest, FifoClampsToRemainder) {
  auto p = make_dispatch_policy(DispatchMode::Fifo, 6);
  p->add_tasklets(4);
  const auto t = p->next(ctx(8));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 4u);
  EXPECT_TRUE(p->idle());
  EXPECT_FALSE(p->next(ctx(8)).has_value());
}

TEST(DispatchPolicyTest, TailShrinkSwitchoverPoint) {
  auto p = make_dispatch_policy(DispatchMode::TailShrink, 6);
  EXPECT_STREQ(p->name(), "tail-shrink");
  // Above the slot count: full-size tasks.
  p->add_tasklets(65);
  auto t = p->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 6u);  // pending 65 > slots 64
  // Now pending == 59 < slots: drain phase, single tasklets.
  t = p->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 1u);
  EXPECT_EQ(p->tasklets_pending(), 58u);
  // Exactly at the boundary (pending == slots) it also shrinks.
  auto q = make_dispatch_policy(DispatchMode::TailShrink, 6);
  q->add_tasklets(64);
  const auto b = q->next(ctx(64));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->n_tasklets, 1u);
}

TEST(DispatchPolicyTest, SiteAwareSizing) {
  auto p = make_dispatch_policy(DispatchMode::SiteAware, 6);
  p->add_tasklets(10000);
  // Eviction-prone site: half-size tasks.
  auto t = p->next(ctx(64, /*evictable=*/true));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 3u);
  // Dedicated site: full-size tasks.
  t = p->next(ctx(64, /*evictable=*/false));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 6u);
  // Drain phase shrinks to 1 regardless of the site.
  auto q = make_dispatch_policy(DispatchMode::SiteAware, 6);
  q->add_tasklets(8);
  const auto d = q->next(ctx(64, /*evictable=*/false));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->n_tasklets, 1u);
}

TEST(DispatchPolicyTest, LifetimeSizesAgainstExpectedLifetime) {
  // safety 0.5, cap 24: the task fills half the expected remaining worker
  // lifetime, measured in mean tasklets.
  auto p = make_dispatch_policy(DispatchMode::Lifetime, 6, 0.5, 24);
  EXPECT_STREQ(p->name(), "lifetime");
  p->add_tasklets(100000);
  // 0.5 * 14400 s / 600 s = 12 tasklets.
  auto t = p->next(lifetime_ctx(64, 14400.0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 12u);
  // A short expected lifetime clamps to a single tasklet (0.5*600/600 < 1).
  t = p->next(lifetime_ctx(64, 600.0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 1u);
  // A dedicated site (infinite expected lifetime) takes the cap.
  t = p->next(lifetime_ctx(
      64, std::numeric_limits<double>::infinity()));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 24u);
}

TEST(DispatchPolicyTest, LifetimeDefaultsAndFallbacks) {
  // Default cap is 4x the static size; defaults come from the factory.
  auto p = make_dispatch_policy(DispatchMode::Lifetime, 6);
  p->add_tasklets(100000);
  auto t = p->next(lifetime_ctx(64, std::numeric_limits<double>::infinity()));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 24u);
  // Without a tasklet CPU estimate the lifetime cannot be converted, so the
  // policy falls back to the static size.
  t = p->next(lifetime_ctx(64, 14400.0, /*cpu_mean=*/0.0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 6u);
  // Drain phase: pending fits in the slots, single tasklets like TailShrink.
  auto q = make_dispatch_policy(DispatchMode::Lifetime, 6);
  q->add_tasklets(64);
  const auto d = q->next(lifetime_ctx(64, 14400.0));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->n_tasklets, 1u);
  // A non-positive safety factor is a configuration error.
  EXPECT_THROW(make_dispatch_policy(DispatchMode::Lifetime, 6, 0.0),
               std::invalid_argument);
}

TEST(DispatchPolicyTest, MergeGroupsDispatchFirst) {
  auto p = make_dispatch_policy(DispatchMode::Fifo, 6);
  p->add_tasklets(100);
  p->push_merge_group(3.5e9);
  p->push_merge_group(2.0e9);
  EXPECT_EQ(p->merge_backlog(), 2u);
  auto t = p->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_merge);
  EXPECT_EQ(t->merge_input_bytes, 3.5e9);  // FIFO among merges
  t = p->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_merge);
  EXPECT_EQ(t->merge_input_bytes, 2.0e9);
  t = p->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->is_merge);
  EXPECT_EQ(p->tasklets_pending(), 94u);
}

TEST(DispatchPolicyTest, PartitionedApportionsByLargestRemainder) {
  auto base = make_dispatch_policy(DispatchMode::Partitioned, 6);
  EXPECT_STREQ(base->name(), "partitioned");
  auto* p = dynamic_cast<PartitionedDispatch*>(base.get());
  ASSERT_NE(p, nullptr);
  p->add_tasklets(100);
  // Weights 3:3:2 over 100 tasklets: exact shares 37.5 / 37.5 / 25.
  // Floors give 37/37/25 with one leftover; the remainder tie (0.5 vs 0.5)
  // breaks to the lower site index.
  p->partition({3000, 3000, 2000});
  ASSERT_EQ(p->num_partitions(), 3u);
  EXPECT_EQ(p->site_pending(0), 38u);
  EXPECT_EQ(p->site_pending(1), 37u);
  EXPECT_EQ(p->site_pending(2), 25u);
  EXPECT_EQ(p->site_pending(0) + p->site_pending(1) + p->site_pending(2),
            p->tasklets_pending());
  // Degenerate all-zero weights: everything parks on site 0.
  auto degenerate = make_dispatch_policy(DispatchMode::Partitioned, 6);
  auto* q = dynamic_cast<PartitionedDispatch*>(degenerate.get());
  q->add_tasklets(10);
  q->partition({0, 0});
  EXPECT_EQ(q->site_pending(0), 10u);
  EXPECT_EQ(q->site_pending(1), 0u);
}

TEST(DispatchPolicyTest, PartitionedDrawsOnlyFromOwnSite) {
  auto base = make_dispatch_policy(DispatchMode::Partitioned, 6);
  auto* p = dynamic_cast<PartitionedDispatch*>(base.get());
  p->add_tasklets(20);
  p->partition({4, 4});  // 10 / 10, four slots each
  // Site 1 drains its own pool to zero and then gets nothing, even though
  // site 0's share is untouched — that is the partitioning pathology
  // stealing exists to fix.
  std::uint64_t drawn = 0;
  while (auto t = p->next(ctx(4, true, /*site=*/1))) drawn += t->n_tasklets;
  EXPECT_EQ(drawn, 10u);
  EXPECT_EQ(p->site_pending(1), 0u);
  EXPECT_EQ(p->site_pending(0), 10u);
  EXPECT_FALSE(p->next(ctx(4, true, /*site=*/1)).has_value());
  // Per-site drain sizing: site 0's share (10) exceeds its slot weight (4),
  // so the first draw is full-size; once pending fits the slots it shrinks.
  auto t = p->next(ctx(4, true, /*site=*/0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 6u);
  t = p->next(ctx(4, true, /*site=*/0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 1u);
}

TEST(DispatchPolicyTest, PartitionedReturnRoutesToNamedSite) {
  auto base = make_dispatch_policy(DispatchMode::Partitioned, 6);
  auto* p = dynamic_cast<PartitionedDispatch*>(base.get());
  p->add_tasklets(12);
  p->partition({2, 2});  // 6 / 6, two slots each
  auto t = p->next(ctx(2, true, /*site=*/1));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 6u);  // 6 > 2 slots: full-size draw empties it
  EXPECT_EQ(p->site_pending(1), 0u);
  // A retried task returns to the pool of the site it was drawn for.
  p->return_tasklets(1, t->n_tasklets);
  EXPECT_EQ(p->site_pending(1), 6u);
  EXPECT_EQ(p->tasklets_pending(), 12u);
  // An out-of-range site (defensive) routes to site 0 instead of vanishing.
  p->return_tasklets(99, 2);
  EXPECT_EQ(p->site_pending(0), 8u);
}

TEST(DispatchPolicyTest, StealingTakesFromDeepestBacklog) {
  auto base = make_dispatch_policy(DispatchMode::Stealing, 6,
                                   /*lifetime_safety=*/2.0,
                                   /*lifetime_max_tasklets=*/0,
                                   /*steal_min_backlog=*/1);
  EXPECT_STREQ(base->name(), "stealing");
  auto* p = dynamic_cast<StealingDispatch*>(base.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->min_backlog(), 1u);
  p->add_tasklets(30);
  p->partition({0, 100, 200});  // 0 / 10 / 20
  // Site 0 has no share: its draw becomes a steal from the deepest pool
  // (site 2), marked stolen with the victim recorded for penalty charging.
  auto t = p->next(ctx(1, true, /*site=*/0));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->stolen);
  EXPECT_EQ(t->victim_site, 2u);
  // Victim backlog (20) exceeds its slots (ctx carries the THIEF's slots;
  // the chunk decision uses the victim's partition slots = 200), so the
  // drain-phase rule gives a single tasklet here: 20 <= 200.
  EXPECT_EQ(t->n_tasklets, 1u);
  EXPECT_EQ(p->site_pending(2), 19u);
  EXPECT_EQ(p->steal_tasks(), 1u);
  EXPECT_GE(p->steal_attempts(), 1u);
  // A stolen retry returns to the VICTIM's pool, not the thief's.
  p->return_tasklets(t->victim_site, t->n_tasklets);
  EXPECT_EQ(p->site_pending(2), 20u);
}

TEST(DispatchPolicyTest, StealingChunkMirrorsDrainSizing) {
  auto base = make_dispatch_policy(DispatchMode::Stealing, 6, 2.0, 0,
                                   /*steal_min_backlog=*/1);
  auto* p = dynamic_cast<StealingDispatch*>(base.get());
  p->add_tasklets(40);
  p->partition({0, 4});  // all 40 on site 1, whose slot weight is only 4
  // Victim backlog (40) exceeds its slots (4): full-size chunks.
  auto t = p->next(ctx(8, true, /*site=*/0));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->stolen);
  EXPECT_EQ(t->n_tasklets, 6u);
  // Drain the victim down into its slot count: single-tasklet steals, so
  // the tail never re-grows stragglers out of stolen work.
  while (p->site_pending(1) > 4)
    ASSERT_TRUE(p->next(ctx(8, true, /*site=*/0)).has_value());
  t = p->next(ctx(8, true, /*site=*/0));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->n_tasklets, 1u);
}

TEST(DispatchPolicyTest, StealingHonoursMinBacklogThreshold) {
  // Default threshold is 2x tasklets_per_task = 12.
  auto base = make_dispatch_policy(DispatchMode::Stealing, 6);
  auto* p = dynamic_cast<StealingDispatch*>(base.get());
  EXPECT_EQ(p->min_backlog(), 12u);
  p->add_tasklets(11);
  p->partition({0, 100});  // 0 / 11 — just below the threshold
  const auto before = p->steal_attempts();
  EXPECT_FALSE(p->next(ctx(8, true, /*site=*/0)).has_value());
  EXPECT_GT(p->steal_attempts(), before);  // attempted, found nothing deep
  EXPECT_EQ(p->steal_tasks(), 0u);
  EXPECT_EQ(p->site_pending(1), 11u);  // untouched
  // Before partition() the policy acts as a single pool (unit-test mode),
  // so next() still works without a SiteManager.
  auto solo = make_dispatch_policy(DispatchMode::Stealing, 6);
  solo->add_tasklets(6);
  const auto t = solo->next(ctx(64));
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->stolen);
}

// -- MergePlanner ----------------------------------------------------------

core::MergePolicy test_policy() {
  core::MergePolicy mp;
  mp.target_bytes = 1000.0;
  mp.min_fill = 0.9;
  mp.start_fraction = 0.10;
  return mp;
}

TEST(MergePlannerTest, InterleavedWaitsForStartFraction) {
  auto p = MergePlanner::make(core::MergeMode::Interleaved, test_policy());
  EXPECT_STREQ(p->name(), "interleaved");
  for (int i = 0; i < 20; ++i) p->add_output(100.0);  // 2000 bytes pooled
  // 5% of the workflow processed: below start_fraction, nothing planned.
  auto plan = p->plan(50, 1000, false);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_FALSE(plan.start_hadoop);
  // 10% processed: planning opens up; greedy grouping emits two 900-byte
  // groups (9 outputs each) and holds the 200-byte remainder mid-run.
  plan = p->plan(100, 1000, false);
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.groups[0], 900.0);
  EXPECT_EQ(plan.groups[1], 900.0);
  EXPECT_EQ(p->unmerged_count(), 2u);
  EXPECT_EQ(p->unmerged_bytes(), 200.0);
}

TEST(MergePlannerTest, InterleavedHoldsUnderfullGroupMidRun) {
  auto p = MergePlanner::make(core::MergeMode::Interleaved, test_policy());
  for (int i = 0; i < 5; ++i) p->add_output(100.0);  // 500 < 900 = target*fill
  auto plan = p->plan(500, 1000, false);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(p->unmerged_count(), 5u);
  // The final sweep flushes the remainder even though it is underfull.
  plan = p->plan(1000, 1000, true);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0], 500.0);
  EXPECT_TRUE(p->drained());
}

TEST(MergePlannerTest, InterleavedGroupSizingMatchesCorePolicy) {
  // Outputs of 400 bytes against a 1000-byte target, min_fill 0.9: greedy
  // FIFO grouping packs three per group (1200 >= 900; two would be 800).
  auto p = MergePlanner::make(core::MergeMode::Interleaved, test_policy());
  for (int i = 0; i < 9; ++i) p->add_output(400.0);
  auto plan = p->plan(500, 1000, false);
  ASSERT_EQ(plan.groups.size(), 3u);
  for (const double g : plan.groups) EXPECT_EQ(g, 1200.0);
  EXPECT_TRUE(p->drained());
}

TEST(MergePlannerTest, SequentialPlansOnlyAfterAnalysis) {
  auto p = MergePlanner::make(core::MergeMode::Sequential, test_policy());
  EXPECT_STREQ(p->name(), "sequential");
  for (int i = 0; i < 10; ++i) p->add_output(500.0);
  // Mid-run, even at 99%: nothing.
  EXPECT_TRUE(p->plan(990, 1000, false).groups.empty());
  // Analysis complete: the whole pool is grouped, remainder included.
  const auto plan = p->plan(1000, 1000, true);
  const double total =
      std::accumulate(plan.groups.begin(), plan.groups.end(), 0.0);
  EXPECT_EQ(total, 5000.0);
  EXPECT_FALSE(plan.groups.empty());
  EXPECT_TRUE(p->drained());
}

TEST(MergePlannerTest, HadoopTriggersOnceAndKeepsPool) {
  auto p = MergePlanner::make(core::MergeMode::Hadoop, test_policy());
  EXPECT_STREQ(p->name(), "hadoop");
  for (int i = 0; i < 8; ++i) p->add_output(300.0);
  EXPECT_FALSE(p->plan(500, 1000, false).start_hadoop);
  // Analysis done: ask the Engine to start the Map-Reduce, exactly once.
  EXPECT_TRUE(p->plan(1000, 1000, true).start_hadoop);
  EXPECT_FALSE(p->plan(1000, 1000, true).start_hadoop);
  // The pool drains through take_hadoop_groups(), not worker-dispatched
  // groups.
  EXPECT_EQ(p->unmerged_count(), 8u);
  const auto groups = p->take_hadoop_groups();
  EXPECT_FALSE(groups.empty());
  const double total = std::accumulate(groups.begin(), groups.end(), 0.0);
  EXPECT_EQ(total, 8 * 300.0);
  for (std::size_t i = 0; i + 1 < groups.size(); ++i)
    EXPECT_GE(groups[i], 1000.0);  // reduce groups reach the target size
  EXPECT_TRUE(p->drained());
}

TEST(MergePlannerTest, ReturnedGroupReentersPool) {
  auto p = MergePlanner::make(core::MergeMode::Interleaved, test_policy());
  for (int i = 0; i < 3; ++i) p->add_output(400.0);
  auto plan = p->plan(500, 1000, false);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_TRUE(p->drained());
  // The merge task failed: its inputs come back and are replanned on the
  // final sweep.
  p->return_group(plan.groups[0]);
  EXPECT_EQ(p->unmerged_bytes(), 1200.0);
  plan = p->plan(1000, 1000, true);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0], 1200.0);
}

}  // namespace
}  // namespace lobster::lobsim

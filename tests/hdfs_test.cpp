// Tests for the HDFS-style block store and the Map-Reduce-lite runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "hdfs/hdfs.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hd = lobster::hdfs;
namespace lu = lobster::util;

// ---------------------------------------------------------------- cluster ----

TEST(Hdfs, CounterPlaneCountsIo) {
  lu::CounterRegistry registry;
  hd::Cluster c(4, 2, 8);
  c.bind_counters(registry);
  c.put("/data/f1", "0123456789");
  EXPECT_EQ(c.get("/data/f1").size(), 10u);
  EXPECT_EQ(registry.counter("hdfs.cluster.puts").value(), 1u);
  EXPECT_EQ(registry.counter("hdfs.cluster.gets").value(), 1u);
  EXPECT_EQ(registry.gauge("hdfs.cluster.bytes_written").value(), 10.0);
  EXPECT_EQ(registry.gauge("hdfs.cluster.bytes_read").value(), 10.0);
}

TEST(Hdfs, PutGetRoundTrip) {
  hd::Cluster c(4, 2, 8);
  const std::string content = "0123456789abcdefXYZ";
  c.put("/data/f1", content);
  EXPECT_EQ(c.get("/data/f1"), content);
  const auto st = c.stat("/data/f1");
  EXPECT_EQ(st.size, content.size());
  EXPECT_EQ(st.num_blocks, 3u);  // 19 bytes / 8-byte blocks
}

TEST(Hdfs, EmptyFileSupported) {
  hd::Cluster c(2, 1, 8);
  c.put("/empty", "");
  EXPECT_TRUE(c.exists("/empty"));
  EXPECT_EQ(c.get("/empty"), "");
  EXPECT_EQ(c.stat("/empty").size, 0u);
}

TEST(Hdfs, OverwriteReplaces) {
  hd::Cluster c(3, 2, 4);
  c.put("/f", "aaaa");
  c.put("/f", "bb");
  EXPECT_EQ(c.get("/f"), "bb");
  EXPECT_EQ(c.stat("/f").num_blocks, 1u);
}

TEST(Hdfs, RemoveAndErrors) {
  hd::Cluster c(2, 1, 8);
  c.put("/f", "x");
  c.remove("/f");
  EXPECT_FALSE(c.exists("/f"));
  EXPECT_THROW(c.get("/f"), hd::HdfsError);
  EXPECT_THROW(c.remove("/f"), hd::HdfsError);
  EXPECT_THROW(c.stat("/f"), hd::HdfsError);
}

TEST(Hdfs, ListByPrefix) {
  hd::Cluster c(2, 1, 8);
  c.put("/a/1", "x");
  c.put("/a/2", "yy");
  c.put("/b/1", "z");
  const auto ls = c.list("/a/");
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0].path, "/a/1");
  EXPECT_EQ(ls[1].size, 2u);
}

TEST(Hdfs, SurvivesDatanodeLossWithinReplication) {
  hd::Cluster c(4, 2, 8);
  const std::string content(100, 'q');
  c.put("/f", content);
  c.kill_datanode(0);
  EXPECT_EQ(c.get("/f"), content) << "one dead node within replication=2";
  EXPECT_EQ(c.live_datanodes(), 3u);
  EXPECT_GT(c.under_replicated_blocks(), 0u);
}

TEST(Hdfs, RereplicationRestoresFactor) {
  hd::Cluster c(4, 2, 8);
  c.put("/f", std::string(64, 'r'));
  c.kill_datanode(1);
  ASSERT_GT(c.under_replicated_blocks(), 0u);
  c.rereplicate();
  EXPECT_EQ(c.under_replicated_blocks(), 0u);
  c.kill_datanode(2);
  EXPECT_EQ(c.get("/f"), std::string(64, 'r'));
}

TEST(Hdfs, DataLossDetectedWhenAllReplicasDie) {
  hd::Cluster c(2, 1, 8);  // replication 1: any loss is fatal
  c.put("/f", std::string(32, 'v'));
  c.kill_datanode(0);
  c.kill_datanode(1);
  EXPECT_THROW(c.get("/f"), hd::HdfsError);
}

TEST(Hdfs, ConstructorValidation) {
  EXPECT_THROW(hd::Cluster(0, 1, 8), hd::HdfsError);
  EXPECT_THROW(hd::Cluster(2, 0, 8), hd::HdfsError);
  EXPECT_THROW(hd::Cluster(2, 3, 8), hd::HdfsError);
  EXPECT_THROW(hd::Cluster(2, 1, 0), hd::HdfsError);
}

TEST(Hdfs, ConcurrentPutsAndGets) {
  hd::Cluster c(4, 2, 64);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const std::string path =
            "/t" + std::to_string(t) + "/f" + std::to_string(i);
        const std::string content(static_cast<std::size_t>(i * 7 + 1),
                                  static_cast<char>('a' + t));
        c.put(path, content);
        if (c.get(path) != content) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(c.list("/t0/").size(), 50u);
}

// Property: random workloads conserve bytes.
TEST(Hdfs, PropertyTotalBytesMatchesNamespace) {
  lu::Rng rng(5);
  hd::Cluster c(5, 3, 16);
  double expected = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 300));
    expected += static_cast<double>(len);
    c.put("/p/" + std::to_string(i), std::string(len, 'x'));
  }
  EXPECT_DOUBLE_EQ(c.total_bytes(), expected);
}

// -------------------------------------------------------------- mapreduce ----

TEST(MapReduce, WordCountStyleJob) {
  hd::Cluster c(3, 2, 64);
  c.put("/in/1", "a b a");
  c.put("/in/2", "b b c");
  auto map_fn = [](const std::string&, const std::string& content) {
    std::vector<hd::KeyValue> out;
    std::string word;
    for (char ch : content + " ") {
      if (ch == ' ') {
        if (!word.empty()) out.push_back({word, "1"});
        word.clear();
      } else {
        word += ch;
      }
    }
    return out;
  };
  auto reduce_fn = [](const std::string&,
                      const std::vector<std::string>& values) {
    return std::to_string(values.size());
  };
  const auto stats =
      hd::run_mapreduce(c, {"/in/1", "/in/2"}, map_fn, reduce_fn, "/out/");
  EXPECT_EQ(stats.map_tasks, 2u);
  EXPECT_EQ(stats.reduce_tasks, 3u);
  EXPECT_EQ(stats.intermediate_pairs, 6u);
  EXPECT_EQ(c.get("/out/a"), "2");
  EXPECT_EQ(c.get("/out/b"), "3");
  EXPECT_EQ(c.get("/out/c"), "1");
}

TEST(MapReduce, MergeJobConcatenatesGroups) {
  // The paper's hadoop merging: group small output files by target merged
  // file (map), concatenate (reduce).
  hd::Cluster c(4, 2, 32);
  std::vector<std::string> inputs;
  for (int i = 0; i < 10; ++i) {
    const std::string path = "/small/out_" + std::to_string(i);
    c.put(path, std::string(10, static_cast<char>('0' + i)));
    inputs.push_back(path);
  }
  // Group pairs of files into one merged target each.
  auto map_fn = [](const std::string& path, const std::string& content) {
    const int idx = std::stoi(path.substr(path.rfind('_') + 1));
    return std::vector<hd::KeyValue>{
        {"merged_" + std::to_string(idx / 2), content}};
  };
  auto reduce_fn = [](const std::string&,
                      const std::vector<std::string>& values) {
    std::string out;
    for (const auto& v : values) out += v;
    return out;
  };
  const auto stats =
      hd::run_mapreduce(c, inputs, map_fn, reduce_fn, "/merged/");
  EXPECT_EQ(stats.reduce_tasks, 5u);
  double total = 0.0;
  for (const auto& out : stats.outputs)
    total += static_cast<double>(c.stat(out).size);
  EXPECT_DOUBLE_EQ(total, 100.0) << "merging must conserve bytes";
  EXPECT_EQ(c.get("/merged/merged_0").size(), 20u);
}

TEST(MapReduce, DeterministicAcrossThreadCounts) {
  auto build = [](std::size_t threads) {
    hd::Cluster c(3, 1, 64);
    std::vector<std::string> inputs;
    for (int i = 0; i < 20; ++i) {
      const std::string p = "/in/" + std::to_string(i);
      c.put(p, std::string(1, static_cast<char>('a' + i % 5)));
      inputs.push_back(p);
    }
    auto map_fn = [](const std::string&, const std::string& content) {
      return std::vector<hd::KeyValue>{{content, content}};
    };
    auto reduce_fn = [](const std::string&,
                        const std::vector<std::string>& values) {
      std::string out;
      for (const auto& v : values) out += v;
      return out;
    };
    hd::run_mapreduce(c, inputs, map_fn, reduce_fn, "/out/", threads);
    std::string result;
    for (const auto& st : c.list("/out/")) result += c.get(st.path) + "|";
    return result;
  };
  EXPECT_EQ(build(1), build(8));
}

TEST(MapReduce, ErrorsPropagate) {
  hd::Cluster c(2, 1, 64);
  c.put("/in/1", "x");
  auto bad_map = [](const std::string&,
                    const std::string&) -> std::vector<hd::KeyValue> {
    throw std::runtime_error("map exploded");
  };
  auto reduce_fn = [](const std::string&, const std::vector<std::string>&) {
    return std::string();
  };
  EXPECT_THROW(
      hd::run_mapreduce(c, {"/in/1"}, bad_map, reduce_fn, "/out/"),
      std::runtime_error);
  EXPECT_THROW(hd::run_mapreduce(c, {"/in/1"}, nullptr, reduce_fn, "/out/"),
               hd::HdfsError);
  EXPECT_THROW(
      hd::run_mapreduce(c, {"/missing"},
                        [](const std::string&, const std::string&) {
                          return std::vector<hd::KeyValue>{};
                        },
                        reduce_fn, "/out/"),
      hd::HdfsError);
}

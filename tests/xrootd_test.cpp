// Tests for the XrootD data federation: redirector, DES streaming/staging
// model with outage injection, and the in-process client.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "xrootd/federation.hpp"

namespace xr = lobster::xrootd;
namespace des = lobster::des;

// ------------------------------------------------------------ redirector ----

TEST(Redirector, LocateAndPick) {
  xr::RedirectorTable rt;
  rt.add_replica("/store/a.root", "T2_US_Nebraska");
  rt.add_replica("/store/a.root", "T2_DE_DESY");
  const auto sites = rt.locate("/store/a.root");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_TRUE(rt.locate("/store/missing.root").empty());
  // Round-robin picks alternate.
  EXPECT_EQ(rt.pick("/store/a.root"), "T2_US_Nebraska");
  EXPECT_EQ(rt.pick("/store/a.root"), "T2_DE_DESY");
  EXPECT_EQ(rt.pick("/store/a.root"), "T2_US_Nebraska");
  EXPECT_FALSE(rt.pick("/store/missing.root").has_value());
}

TEST(Redirector, RejectsEmptyInput) {
  xr::RedirectorTable rt;
  EXPECT_THROW(rt.add_replica("", "site"), std::invalid_argument);
  EXPECT_THROW(rt.add_replica("/f", ""), std::invalid_argument);
}

// ---------------------------------------------------------- DES federation ----

namespace {
des::Process run_stream(des::Simulation& sim, xr::FederationSim& fed,
                        double bytes, std::vector<double>& times,
                        int& failures, bool staged = false) {
  try {
    const double dt = staged ? co_await fed.stage(bytes)
                             : co_await fed.stream(bytes);
    times.push_back(dt);
  } catch (const xr::AccessError&) {
    ++failures;
  }
  (void)sim;
}
}  // namespace

TEST(FederationSim, SingleStreamLimitedByPerStreamRate) {
  des::Simulation sim;
  xr::FederationSim::Params p;
  p.campus_uplink_rate = 1.25e9;
  p.per_stream_rate = 3.0e7;
  p.open_latency = 1.0;
  xr::FederationSim fed(sim, p);
  std::vector<double> times;
  int failures = 0;
  sim.spawn(run_stream(sim, fed, 3.0e8, times, failures));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_NEAR(times[0], 1.0 + 10.0, 1e-9);  // open + 300MB at 30MB/s
  EXPECT_DOUBLE_EQ(fed.bytes_streamed(), 3.0e8);
}

TEST(FederationSim, ManyStreamsSaturateCampusUplink) {
  des::Simulation sim;
  xr::FederationSim::Params p;
  p.campus_uplink_rate = 1.25e9;  // 10 Gbit/s
  p.per_stream_rate = 3.0e7;
  p.open_latency = 0.0;
  xr::FederationSim fed(sim, p);
  std::vector<double> times;
  int failures = 0;
  // 100 streams * 30 MB/s = 3 GB/s demand > 1.25 GB/s uplink.
  for (int i = 0; i < 100; ++i)
    sim.spawn(run_stream(sim, fed, 1.25e8, times, failures));
  sim.run();
  ASSERT_EQ(times.size(), 100u);
  // Each gets 12.5 MB/s: 125 MB / 12.5 MB/s = 10 s, vs 4.17 s unloaded.
  EXPECT_NEAR(times[0], 10.0, 1e-6);
}

TEST(FederationSim, OutageFailsOpensAndBreaksInFlightStreams) {
  des::Simulation sim;
  xr::FederationSim::Params p;
  p.campus_uplink_rate = 1e8;
  p.per_stream_rate = 1e8;
  p.open_latency = 0.0;
  p.open_fail_delay = 2.0;
  xr::FederationSim fed(sim, p);
  std::vector<double> times;
  int failures = 0;
  // Flow A starts at t=0, needs 20 s unloaded (2e9 / 1e8); the outage at
  // t=5 breaks its connection, so it errors once the stall resolves.
  sim.spawn(run_stream(sim, fed, 2e9, times, failures));
  fed.schedule_outage(5.0, 10.0);
  // Flow B opens at t=7 (inside the outage) => immediate AccessError.
  sim.schedule(7.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e6, times, failures));
  });
  // Flow C opens after the outage and completes normally.
  sim.schedule(20.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e8, times, failures));
  });
  sim.run();
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(fed.failed_opens(), 1u);
  EXPECT_EQ(fed.outages_started(), 1u);
  ASSERT_EQ(times.size(), 1u);  // only flow C succeeded
}

TEST(FederationSim, StageAccountsSeparately) {
  des::Simulation sim;
  xr::FederationSim fed(sim, {});
  std::vector<double> times;
  int failures = 0;
  sim.spawn(run_stream(sim, fed, 1e7, times, failures, /*staged=*/true));
  sim.run();
  EXPECT_DOUBLE_EQ(fed.bytes_staged(), 1e7);
  EXPECT_DOUBLE_EQ(fed.bytes_streamed(), 0.0);
}

TEST(FederationSim, BadOutageWindowRejected) {
  des::Simulation sim;
  xr::FederationSim fed(sim, {});
  EXPECT_THROW(fed.schedule_outage(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(fed.schedule_outage(0.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ multi-path ----

namespace {
// Two sites, each with a 100 MB/s uplink, feeding one shared 150 MB/s WAN
// trunk.  Per-stream cap high enough not to bind.
xr::FederationSim::Params two_path_params(xr::PathPolicy policy) {
  xr::FederationSim::Params p;
  p.per_stream_rate = 1e8;
  p.open_latency = 0.0;
  p.open_fail_delay = 2.0;
  p.trunks = {{"wan-east", 1.5e8}};
  p.paths = {{"site-a", 1e8, 0}, {"site-b", 1e8, 0}};
  p.path_policy = policy;
  return p;
}
}  // namespace

TEST(FederationMultiPath, LeastLoadedSpreadsAcrossSites) {
  des::Simulation sim;
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::LeastLoaded));
  ASSERT_EQ(fed.num_paths(), 2u);
  std::vector<double> times;
  int failures = 0;
  // A same-timestamp burst of 4 equal transfers must alternate paths even
  // though no solve has run between the picks.
  for (int i = 0; i < 4; ++i)
    sim.spawn(run_stream(sim, fed, 1e8, times, failures));
  sim.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(failures, 0);
  EXPECT_DOUBLE_EQ(fed.path_bytes(0), 2e8);
  EXPECT_DOUBLE_EQ(fed.path_bytes(1), 2e8);
  // 4 streams x 100 MB through a 150 MB/s trunk: the trunk is the
  // bottleneck, so the batch drains in 400 MB / 150 MB/s.
  EXPECT_NEAR(times.back(), 4e8 / 1.5e8, 1e-6);
}

TEST(FederationMultiPath, FirstAvailablePilesOntoOneSite) {
  des::Simulation sim;
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::FirstAvailable));
  std::vector<double> times;
  int failures = 0;
  for (int i = 0; i < 4; ++i)
    sim.spawn(run_stream(sim, fed, 1e8, times, failures));
  sim.run();
  ASSERT_EQ(times.size(), 4u);
  // The redirector hotspot: everything lands on site-a; its 100 MB/s
  // uplink (below the trunk's 150 MB/s) becomes the bottleneck.
  EXPECT_DOUBLE_EQ(fed.path_bytes(0), 4e8);
  EXPECT_DOUBLE_EQ(fed.path_bytes(1), 0.0);
  EXPECT_NEAR(times.back(), 4e8 / 1e8, 1e-6);
}

TEST(FederationMultiPath, CompletionWaitsForSlowerHop) {
  des::Simulation sim;
  // One site whose uplink (50 MB/s) is slower than the trunk.
  xr::FederationSim::Params p;
  p.per_stream_rate = 1e9;
  p.open_latency = 0.0;
  p.trunks = {{"wan", 1.5e8}};
  p.paths = {{"site-slow", 5e7, 0}};
  xr::FederationSim fed(sim, p);
  std::vector<double> times;
  int failures = 0;
  sim.spawn(run_stream(sim, fed, 1e8, times, failures));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_NEAR(times[0], 1e8 / 5e7, 1e-9);  // uplink-bound, not trunk-bound
}

TEST(FederationMultiPath, PathOutageReroutesAndBreaksStreams) {
  des::Simulation sim;
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::LeastLoaded));
  std::vector<double> times;
  int failures = 0;
  // One long transfer starts on site-a at t=0 (10 s unloaded).  site-a
  // collapses at t=2: the in-flight stream breaks once its flow drains.
  sim.spawn(run_stream(sim, fed, 1e9, times, failures));
  fed.schedule_path_outage(0, 2.0, 4.0);
  // Opens during the collapse re-route to site-b and succeed.
  sim.schedule(3.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e8, times, failures));
  });
  sim.run();
  EXPECT_EQ(failures, 1);          // the broken site-a stream
  EXPECT_EQ(fed.failed_opens(), 0u);  // nothing failed to open
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(fed.path_bytes(1), 1e8);  // re-routed volume
}

TEST(FederationMultiPath, AllPathsDownFailsOpen) {
  des::Simulation sim;
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::LeastLoaded));
  std::vector<double> times;
  int failures = 0;
  fed.schedule_path_outage(0, 1.0, 10.0);
  fed.schedule_path_outage(1, 1.0, 10.0);
  sim.schedule(2.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e6, times, failures));
  });
  sim.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(fed.failed_opens(), 1u);
  EXPECT_TRUE(times.empty());
}

TEST(FederationMultiPath, GlobalOutageDropsEverySite) {
  des::Simulation sim;
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::LeastLoaded));
  std::vector<double> times;
  int failures = 0;
  fed.schedule_outage(1.0, 5.0);
  sim.schedule(2.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e6, times, failures));
  });
  // After the outage both sites serve again.
  sim.schedule(10.0, [&] {
    sim.spawn(run_stream(sim, fed, 1e6, times, failures));
  });
  sim.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(fed.failed_opens(), 1u);
  ASSERT_EQ(times.size(), 1u);
}

TEST(FederationMultiPath, BadTopologyRejected) {
  des::Simulation sim;
  xr::FederationSim::Params no_trunk;
  no_trunk.paths = {{"site", 1e8, 0}};
  EXPECT_THROW(xr::FederationSim(sim, no_trunk), std::invalid_argument);
  xr::FederationSim::Params bad_idx;
  bad_idx.trunks = {{"wan", 1e8}};
  bad_idx.paths = {{"site", 1e8, 7}};
  EXPECT_THROW(xr::FederationSim(sim, bad_idx), std::invalid_argument);
  xr::FederationSim fed(sim, two_path_params(xr::PathPolicy::LeastLoaded));
  EXPECT_THROW(fed.schedule_path_outage(9, 0.0, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------ real client ----

TEST(Client, ReadThroughRedirector) {
  xr::RedirectorTable rt;
  auto site = std::make_shared<xr::SiteStore>("T2_US_Nebraska");
  site->put("/store/a.root", 2.1e9);
  rt.add_replica("/store/a.root", "T2_US_Nebraska");
  xr::Client client(rt);
  client.attach_site(site);
  const auto [where, bytes] = client.read("/store/a.root");
  EXPECT_EQ(where, "T2_US_Nebraska");
  EXPECT_DOUBLE_EQ(bytes, 2.1e9);
}

TEST(Client, ErrorsOnMissingReplicaOrSite) {
  xr::RedirectorTable rt;
  xr::Client client(rt);
  EXPECT_THROW(client.read("/store/unknown.root"), xr::AccessError);
  rt.add_replica("/store/b.root", "T2_Unattached");
  EXPECT_THROW(client.read("/store/b.root"), xr::AccessError);
  auto site = std::make_shared<xr::SiteStore>("T2_Attached");
  rt.add_replica("/store/c.root", "T2_Attached");
  client.attach_site(site);
  EXPECT_THROW(client.read("/store/c.root"), xr::AccessError)
      << "site lacks the file";
}

TEST(SiteStore, PutHasOpen) {
  xr::SiteStore s("T3_ND");
  EXPECT_FALSE(s.has("/f"));
  s.put("/f", 100.0);
  EXPECT_TRUE(s.has("/f"));
  EXPECT_DOUBLE_EQ(s.open("/f"), 100.0);
  EXPECT_THROW(s.put("/g", -1.0), std::invalid_argument);
}

// Unit tests for the util module: units, RNG + distributions, histograms,
// stats, config parsing, tables, channels and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/channel.hpp"
#include "util/config.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace lu = lobster::util;

// ---------------------------------------------------------------- units ----

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(lu::minutes(1), 60.0);
  EXPECT_DOUBLE_EQ(lu::hours(2), 7200.0);
  EXPECT_DOUBLE_EQ(lu::days(1), 86400.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_DOUBLE_EQ(lu::kib(1), 1024.0);
  EXPECT_DOUBLE_EQ(lu::mb(1), 1e6);
  EXPECT_DOUBLE_EQ(lu::gbit_per_s(10), 10e9 / 8.0);
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(lu::format_duration(5.0), "5.0s");
  EXPECT_EQ(lu::format_duration(90.0), "1m30s");
  EXPECT_EQ(lu::format_duration(3660.0), "1h01m");
  EXPECT_EQ(lu::format_duration(2 * 86400.0 + 3 * 3600.0), "2d03h");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(lu::format_bytes(512), "512 B");
  EXPECT_EQ(lu::format_bytes(3.4e9), "3.40 GB");
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSameSeed) {
  lu::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsAreIndependent) {
  lu::Rng root(7);
  lu::Rng a = root.stream("worker", 0);
  lu::Rng b = root.stream("worker", 1);
  lu::Rng c = root.stream("squid");
  EXPECT_NE(a(), b());
  EXPECT_NE(a(), c());
  // Streams must be reproducible.
  lu::Rng a2 = lu::Rng(7).stream("worker", 0);
  a = lu::Rng(7).stream("worker", 0);
  EXPECT_EQ(a(), a2());
}

TEST(Rng, UniformRange) {
  lu::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  lu::Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    saw_lo |= v == -3;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  lu::Rng rng(3);
  lu::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 5.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 5.0, 0.1);
}

TEST(Rng, TruncatedNormalRespectsFloor) {
  lu::Rng rng(4);
  for (int i = 0; i < 10000; ++i)
    EXPECT_GE(rng.truncated_normal(1.0, 5.0, 0.5), 0.5);
}

TEST(Rng, ExponentialMean) {
  lu::Rng rng(5);
  lu::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(42.0));
  EXPECT_NEAR(s.mean(), 42.0, 1.0);
}

TEST(Rng, ChanceProbability) {
  lu::Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PoissonMean) {
  lu::Rng rng(7);
  lu::RunningStats small, large;
  for (int i = 0; i < 50000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 200.0, 1.0);
}

TEST(Rng, ZipfRankOneMostPopular) {
  lu::Rng rng(8);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i)
    counts[static_cast<std::size_t>(rng.zipf(10, 1.2))]++;
  for (int k = 2; k <= 10; ++k) EXPECT_GT(counts[1], counts[k]);
}

TEST(Rng, WeightedIndex) {
  lu::Rng rng(9);
  std::vector<double> w{1.0, 0.0, 3.0};
  int c0 = 0, c1 = 0, c2 = 0;
  for (int i = 0; i < 40000; ++i) {
    switch (rng.weighted_index(w)) {
      case 0: ++c0; break;
      case 1: ++c1; break;
      default: ++c2; break;
    }
  }
  EXPECT_EQ(c1, 0);
  EXPECT_NEAR(static_cast<double>(c2) / (c0 + c2), 0.75, 0.02);
}

TEST(EmpiricalDistribution, QuantilesAndSampling) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(static_cast<double>(i));
  lu::EmpiricalDistribution dist(samples);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 1000.0);
  EXPECT_NEAR(dist.quantile(0.5), 500.5, 1.0);
  EXPECT_NEAR(dist.cdf(500.0), 0.5, 0.01);
  lu::Rng rng(10);
  lu::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), dist.mean(), 5.0);
}

// ------------------------------------------------------------ histogram ----

TEST(Histogram, FillAndRetrieve) {
  lu::Histogram h(10, 0.0, 10.0);
  h.fill(0.5);
  h.fill(0.7);
  h.fill(9.5);
  h.fill(-1.0);   // underflow
  h.fill(100.0);  // overflow
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_EQ(h.entries(), 5u);
}

TEST(Histogram, CustomEdges) {
  lu::Histogram h({0.0, 1.0, 10.0, 100.0});
  h.fill(5.0, 2.5);
  EXPECT_EQ(h.nbins(), 3u);
  EXPECT_DOUBLE_EQ(h.count(1), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, DensityNormalises) {
  lu::Histogram h(4, 0.0, 4.0);
  for (double x : {0.5, 1.5, 1.7, 3.5}) h.fill(x);
  auto d = h.density();
  double sum = 0.0;
  for (double v : d) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(lu::Histogram(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(lu::Histogram(5, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(lu::Histogram(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(lu::Histogram(std::vector<double>{2.0, 1.0}),
               std::invalid_argument);
}

TEST(Binomial, EstimateAndError) {
  const auto e = lu::binomial_estimate(25, 100);
  EXPECT_DOUBLE_EQ(e.p, 0.25);
  EXPECT_NEAR(e.sigma, std::sqrt(0.25 * 0.75 / 100.0), 1e-12);
  const auto zero = lu::binomial_estimate(0, 0);
  EXPECT_DOUBLE_EQ(zero.p, 0.0);
  EXPECT_DOUBLE_EQ(zero.sigma, 0.0);
}

TEST(TimeSeries, AddAndSample) {
  lu::TimeSeries ts(0.0, 10.0);
  ts.add(1.0);
  ts.add(5.0);
  ts.add(15.0, 2.0);
  ts.sample(2.0, 100.0);
  ts.sample(8.0, 200.0);
  EXPECT_DOUBLE_EQ(ts.sum(0), 2.0);
  EXPECT_DOUBLE_EQ(ts.sum(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_level(0), 150.0);
  EXPECT_DOUBLE_EQ(ts.mean_level(1), 0.0);
  EXPECT_DOUBLE_EQ(ts.total(), 4.0);
  EXPECT_DOUBLE_EQ(ts.max_sum(), 2.0);
}

// ---------------------------------------------------------------- stats ----

TEST(RunningStats, MeanVarianceMinMax) {
  lu::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  lu::Rng rng(11);
  lu::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Reservoir, QuantileApproximation) {
  lu::Reservoir r(1000, lu::Rng(12));
  for (int i = 1; i <= 100000; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.seen(), 100000u);
  EXPECT_NEAR(r.quantile(0.5), 50000.0, 5000.0);
  EXPECT_NEAR(r.quantile(0.99), 99000.0, 3000.0);
}

// --------------------------------------------------------------- config ----

TEST(Config, ParseBasics) {
  const auto cfg = lu::Config::parse(R"(
[workflow]
dataset = /SingleMu/Run2012A  # comment
task_size = 25
merge_size = 3.5GB
task_overhead = 20m
streaming = true
inputs = a.root, b.root , c.root
)");
  EXPECT_EQ(cfg.get_string("workflow", "dataset"), "/SingleMu/Run2012A");
  EXPECT_EQ(cfg.get_int("workflow", "task_size"), 25);
  EXPECT_DOUBLE_EQ(cfg.get_size("workflow", "merge_size"), 3.5e9);
  EXPECT_DOUBLE_EQ(cfg.get_duration("workflow", "task_overhead"), 1200.0);
  EXPECT_TRUE(cfg.get_bool("workflow", "streaming"));
  const auto list = cfg.get_list("workflow", "inputs");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1], "b.root");
}

TEST(Config, FallbacksAndHas) {
  const auto cfg = lu::Config::parse("[a]\nx = 1\n");
  EXPECT_TRUE(cfg.has("a", "x"));
  EXPECT_FALSE(cfg.has("a", "y"));
  EXPECT_FALSE(cfg.has("b", "x"));
  EXPECT_EQ(cfg.get_int("a", "y", -7), -7);
  EXPECT_EQ(cfg.get_string("b", "x", "dflt"), "dflt");
}

TEST(Config, SyntaxErrors) {
  EXPECT_THROW(lu::Config::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(lu::Config::parse("keywithoutvalue\n"), std::runtime_error);
  EXPECT_THROW(lu::Config::parse("= novalue\n"), std::runtime_error);
}

TEST(Config, DurationAndSizeParsing) {
  EXPECT_DOUBLE_EQ(lu::Config::parse_duration("90"), 90.0);
  EXPECT_DOUBLE_EQ(lu::Config::parse_duration("1.5h"), 5400.0);
  EXPECT_DOUBLE_EQ(lu::Config::parse_duration("2d"), 172800.0);
  EXPECT_THROW(lu::Config::parse_duration("5 parsecs"), std::runtime_error);
  EXPECT_DOUBLE_EQ(lu::Config::parse_size("100MB"), 1e8);
  EXPECT_DOUBLE_EQ(lu::Config::parse_size("1GiB"), 1073741824.0);
  EXPECT_THROW(lu::Config::parse_size("1 furlong"), std::runtime_error);
}

TEST(Config, RoundTrip) {
  lu::Config cfg;
  cfg.set("s", "k", "v");
  cfg.set("s", "n", "42");
  const auto parsed = lu::Config::parse(cfg.to_string());
  EXPECT_EQ(parsed.get_string("s", "k"), "v");
  EXPECT_EQ(parsed.get_int("s", "n"), 42);
}

// ---------------------------------------------------------------- table ----

TEST(Table, RendersAlignedCells) {
  lu::Table t({"Task Phase", "Time (h)"});
  t.row({"Task CPU Time", "171036"});
  t.row({"WQ Stage In", "22056"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Task CPU Time"), std::string::npos);
  EXPECT_NE(s.find("| Task Phase"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, BarScaling) {
  EXPECT_EQ(lu::bar(5.0, 10.0, 10).size(), 5u);
  EXPECT_EQ(lu::bar(20.0, 10.0, 10).size(), 10u);  // clamped
  EXPECT_TRUE(lu::bar(0.0, 10.0, 10).empty());
  EXPECT_TRUE(lu::bar(1.0, 0.0, 10).empty());
}

// -------------------------------------------------------------- channel ----

TEST(Channel, SendReceiveOrder) {
  lu::Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_EQ(ch.receive(), 2);
  EXPECT_EQ(ch.receive(), 3);
}

TEST(Channel, CloseDrainsThenNullopt) {
  lu::Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive(), 7);
  EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(Channel, BoundedTrySend) {
  lu::Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_TRUE(ch.try_send(3));
}

TEST(Channel, CrossThreadTransfer) {
  lu::Channel<int> ch;
  std::atomic<int> sum{0};
  std::thread consumer([&] {
    while (auto v = ch.receive()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= 100; ++i) ch.send(i);
    ch.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), 5050);
}

// ----------------------------------------------------------- threadpool ----

TEST(ThreadPool, ExecutesAllTasks) {
  lu::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitThenSubmitMore) {
  lu::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  lu::ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

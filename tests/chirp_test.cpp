// Tests for the Chirp file server: real implementation (namespace, tickets,
// connection limit, concurrency) and the DES overload model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "chirp/chirp.hpp"
#include "util/trace.hpp"

namespace ch = lobster::chirp;
namespace des = lobster::des;

// ---------------------------------------------------------------- server ----

TEST(ChirpServer, CounterPlaneCountsRequestsAndBytes) {
  lobster::util::CounterRegistry registry;
  ch::ChirpServer server;
  server.bind_counters(registry);
  const auto ticket = server.issue_ticket(
      "/", ch::Rights::Read | ch::Rights::Write | ch::Rights::List);
  auto s = server.connect(ticket);
  s.put("/out/a", "12345");
  s.append("/out/a", "678");
  EXPECT_EQ(s.get("/out/a"), "12345678");
  EXPECT_EQ(registry.counter("chirp.server.requests").value(), 3u);
  EXPECT_EQ(registry.gauge("chirp.server.bytes_in").value(), 8.0);
  EXPECT_EQ(registry.gauge("chirp.server.bytes_out").value(), 8.0);
}

TEST(ChirpServer, PutGetStatList) {
  ch::ChirpServer server;
  const auto ticket = server.issue_ticket(
      "/", ch::Rights::Read | ch::Rights::Write | ch::Rights::List);
  auto s = server.connect(ticket);
  s.put("/out/task_0.root", "payload0");
  s.put("/out/task_1.root", "payload11");
  EXPECT_EQ(s.get("/out/task_0.root"), "payload0");
  EXPECT_EQ(s.stat("/out/task_1.root").size, 9u);
  const auto listing = s.list("/out/");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].path, "/out/task_0.root");
  EXPECT_EQ(server.num_files(), 2u);
}

TEST(ChirpServer, AppendConcatenates) {
  ch::ChirpServer server;
  const auto ticket =
      server.issue_ticket("/", ch::Rights::Read | ch::Rights::Write);
  auto s = server.connect(ticket);
  s.append("/merged.root", "aaa");
  s.append("/merged.root", "bbb");
  EXPECT_EQ(s.get("/merged.root"), "aaabbb");
}

TEST(ChirpServer, RemoveAndErrors) {
  ch::ChirpServer server;
  const auto ticket =
      server.issue_ticket("/", ch::Rights::Read | ch::Rights::Write);
  auto s = server.connect(ticket);
  s.put("/f", "x");
  s.remove("/f");
  EXPECT_THROW(s.get("/f"), ch::ChirpError);
  EXPECT_THROW(s.remove("/f"), ch::ChirpError);
  EXPECT_THROW(s.stat("/f"), ch::ChirpError);
}

TEST(ChirpServer, TicketRightsEnforced) {
  ch::ChirpServer server;
  const auto ro = server.issue_ticket("/", ch::Rights::Read);
  const auto wo = server.issue_ticket("/", ch::Rights::Write);
  auto writer = server.connect(wo);
  writer.put("/data", "secret");
  auto reader = server.connect(ro);
  EXPECT_EQ(reader.get("/data"), "secret");
  EXPECT_THROW(reader.put("/data2", "x"), ch::ChirpError);
  EXPECT_THROW(reader.list("/"), ch::ChirpError);
  EXPECT_THROW(writer.get("/data"), ch::ChirpError);
}

TEST(ChirpServer, TicketScopeEnforced) {
  ch::ChirpServer server;
  const auto scoped = server.issue_ticket(
      "/user/alice", ch::Rights::Read | ch::Rights::Write);
  auto s = server.connect(scoped);
  s.put("/user/alice/out.root", "ok");
  EXPECT_THROW(s.put("/user/bob/out.root", "nope"), ch::ChirpError);
  EXPECT_THROW(s.put("/user/alice2/out.root", "nope"), ch::ChirpError)
      << "prefix match must respect path components";
}

TEST(ChirpServer, UnknownAndRevokedTickets) {
  ch::ChirpServer server;
  EXPECT_THROW(server.connect("ticket-bogus"), ch::ChirpError);
  const auto t = server.issue_ticket("/", ch::Rights::Read);
  server.revoke_ticket(t);
  EXPECT_THROW(server.connect(t), ch::ChirpError);
}

TEST(ChirpServer, ConnectionLimitBlocksAndReleases) {
  ch::ChirpServer server(/*max_connections=*/2);
  const auto ticket =
      server.issue_ticket("/", ch::Rights::Read | ch::Rights::Write);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      auto s = server.connect(ticket);
      const int now = concurrent.fetch_add(1) + 1;
      int expect = peak.load();
      while (now > expect && !peak.compare_exchange_weak(expect, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      s.put("/c/" + std::to_string(i), "x");
      concurrent.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(server.num_files(), 8u);
}

TEST(ChirpServer, ConcurrentAppendsLoseNothing) {
  ch::ChirpServer server(64);
  const auto ticket =
      server.issue_ticket("/", ch::Rights::Read | ch::Rights::Write);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto s = server.connect(ticket);
      for (int i = 0; i < 100; ++i) s.append("/merged", "x");
    });
  }
  for (auto& th : threads) th.join();
  auto s = server.connect(ticket);
  EXPECT_EQ(s.get("/merged").size(), 800u);
  EXPECT_DOUBLE_EQ(server.bytes_in(), 800.0);
}

TEST(ChirpServer, RejectsNonPositiveConnectionLimit) {
  EXPECT_THROW(ch::ChirpServer(0), std::invalid_argument);
}

// ------------------------------------------------------------------- sim ----

namespace {
des::Process sim_put(des::Simulation& sim, ch::ChirpSim& chirp, double bytes,
                     std::vector<double>& times) {
  const double dt = co_await chirp.put(bytes);
  times.push_back(dt);
  (void)sim;
}
}  // namespace

TEST(ChirpSim, UnloadedTransferTime) {
  des::Simulation sim;
  ch::ChirpSim::Params p;
  p.max_connections = 16;
  p.nic_rate = 1e8;
  p.request_latency = 0.2;
  ch::ChirpSim chirp(sim, p);
  std::vector<double> times;
  sim.spawn(sim_put(sim, chirp, 1e8, times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_NEAR(times[0], 0.2 + 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(chirp.bytes_in(), 1e8);
  EXPECT_NEAR(chirp.mean_slowdown(), 1.0, 1e-9);
}

TEST(ChirpSim, WaveOfTransfersQueuesBeyondConnectionLimit) {
  // The Figure 11 mechanism: synchronized waves of finishing tasks swamp
  // the connection-limited server and stage-out times spike.
  des::Simulation sim;
  ch::ChirpSim::Params p;
  p.max_connections = 4;
  p.nic_rate = 1e8;
  p.request_latency = 0.0;
  ch::ChirpSim chirp(sim, p);
  std::vector<double> times;
  for (int i = 0; i < 16; ++i) sim.spawn(sim_put(sim, chirp, 1e8, times));
  sim.run();
  ASSERT_EQ(times.size(), 16u);
  // 4 admitted at a time, each batch takes 4 s (4 flows share 1e8 B/s).
  EXPECT_NEAR(times[0], 4.0, 1e-6);
  EXPECT_NEAR(times[15], 16.0, 1e-6);
  EXPECT_GT(chirp.mean_slowdown(), 2.0);
}

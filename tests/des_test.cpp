// Unit and property tests for the discrete-event simulation kernel:
// ordering, coroutine processes, events, resources, queues and the
// fair-share bandwidth link.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "des/bandwidth.hpp"
#include "des/queue.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace des = lobster::des;
namespace lu = lobster::util;

// ----------------------------------------------------------- scheduling ----

TEST(Simulation, EventsFireInTimeOrder) {
  des::Simulation sim;
  std::vector<double> fired;
  sim.schedule(3.0, [&] { fired.push_back(sim.now()); });
  sim.schedule(1.0, [&] { fired.push_back(sim.now()); });
  sim.schedule(2.0, [&] { fired.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 2.0);
  EXPECT_DOUBLE_EQ(fired[2], 3.0);
}

TEST(Simulation, SameTimeEventsFifo) {
  des::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, NestedSchedulingAdvancesClock) {
  des::Simulation sim;
  double inner_time = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule(2.5, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_time, 3.5);
}

TEST(Simulation, RunUntilStopsAndSetsNow) {
  des::Simulation sim;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) sim.schedule(t, [&] { ++count; });
  sim.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(count, 4);
}

TEST(Simulation, NegativeDelayRejected) {
  des::Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

// Property: a randomized burst of schedules always executes in
// non-decreasing time order.
TEST(Simulation, PropertyMonotoneExecution) {
  lu::Rng rng(99);
  des::Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    sim.schedule(rng.uniform(0.0, 100.0), [&] {
      monotone &= sim.now() >= last;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 5000u);
}

// ------------------------------------------------------------ processes ----

namespace {
des::Process ping_pong(des::Simulation& sim, std::vector<double>& log,
                       double period, int repeats) {
  for (int i = 0; i < repeats; ++i) {
    co_await sim.delay(period);
    log.push_back(sim.now());
  }
}
}  // namespace

TEST(Process, DelayLoopAdvancesTime) {
  des::Simulation sim;
  std::vector<double> log;
  sim.spawn(ping_pong(sim, log, 2.0, 3));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[2], 6.0);
}

TEST(Process, JoinViaDoneEvent) {
  des::Simulation sim;
  std::vector<double> log;
  bool joined = false;
  auto ref = sim.spawn(ping_pong(sim, log, 1.0, 5));
  auto joiner = [](des::Simulation& s, des::ProcessRef r,
                   bool& flag) -> des::Process {
    co_await r.done();
    flag = true;
    (void)s;
  };
  sim.spawn(joiner(sim, ref, joined));
  sim.run();
  EXPECT_TRUE(joined);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Process, UnfinishedProcessesDestroyedWithSim) {
  // A process blocked forever must not leak when the simulation dies.
  auto forever = [](des::Simulation& s, des::Event& ev) -> des::Process {
    co_await ev;
    co_await s.delay(1.0);
  };
  des::Simulation sim;
  des::Event never(sim);
  sim.spawn(forever(sim, never));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 1u);
  // Destructor runs here; ASAN/valgrind would flag a leak if broken.
}

TEST(Process, ExceptionPropagatesToRun) {
  auto thrower = [](des::Simulation& s) -> des::Process {
    co_await s.delay(1.0);
    throw std::runtime_error("boom");
  };
  des::Simulation sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

// ---------------------------------------------------------------- event ----

TEST(Event, BroadcastWakesAllWaiters) {
  des::Simulation sim;
  des::Event ev(sim);
  int woken = 0;
  auto waiter = [](des::Event& e, int& n) -> des::Process {
    co_await e;
    ++n;
  };
  for (int i = 0; i < 4; ++i) sim.spawn(waiter(ev, woken));
  sim.schedule(10.0, [&] { ev.trigger(); });
  sim.run();
  EXPECT_EQ(woken, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Event, AwaitAfterTriggerCompletesImmediately) {
  des::Simulation sim;
  des::Event ev(sim);
  ev.trigger();
  double when = -1.0;
  auto waiter = [](des::Simulation& s, des::Event& e, double& t) -> des::Process {
    co_await e;
    t = s.now();
  };
  sim.spawn(waiter(sim, ev, when));
  sim.run();
  EXPECT_DOUBLE_EQ(when, 0.0);
}

TEST(Event, DoubleTriggerIsIdempotent) {
  des::Simulation sim;
  des::Event ev(sim);
  ev.trigger();
  ev.trigger();
  EXPECT_TRUE(ev.triggered());
  sim.run();
}

// -------------------------------------------------------------- resource ----

namespace {
des::Process hold_resource(des::Simulation& sim, des::Resource& res,
                           double duration, std::vector<double>& done_times,
                           std::int64_t amount = 1) {
  auto token = co_await res.acquire(amount);
  co_await sim.delay(duration);
  done_times.push_back(sim.now());
}
}  // namespace

TEST(Resource, LimitsConcurrency) {
  des::Simulation sim;
  des::Resource res(sim, 2);
  std::vector<double> done;
  for (int i = 0; i < 6; ++i) sim.spawn(hold_resource(sim, res, 10.0, done));
  sim.run();
  // 6 holders, 2 at a time, 10s each => batches at 10, 20, 30.
  ASSERT_EQ(done.size(), 6u);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
  EXPECT_DOUBLE_EQ(done[3], 20.0);
  EXPECT_DOUBLE_EQ(done[5], 30.0);
  EXPECT_EQ(res.available(), 2);
}

TEST(Resource, FifoNoStarvationOfLargeRequest) {
  des::Simulation sim;
  des::Resource res(sim, 4);
  std::vector<double> done;
  // Occupy all 4, then queue a request of 4, then small ones behind it.
  sim.spawn(hold_resource(sim, res, 10.0, done, 4));
  sim.spawn(hold_resource(sim, res, 10.0, done, 4));
  sim.spawn(hold_resource(sim, res, 1.0, done, 1));
  sim.spawn(hold_resource(sim, res, 1.0, done, 1));
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  // Big request must run before the small ones that arrived later.
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 20.0);
  EXPECT_DOUBLE_EQ(done[2], 21.0);
}

TEST(Resource, TryAcquireAndRelease) {
  des::Simulation sim;
  des::Resource res(sim, 3);
  EXPECT_TRUE(res.try_acquire(2));
  EXPECT_FALSE(res.try_acquire(2));
  EXPECT_EQ(res.in_use(), 2);
  res.release(2);
  EXPECT_EQ(res.available(), 3);
}

TEST(Resource, ElasticCapacity) {
  des::Simulation sim;
  des::Resource res(sim, 1);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) sim.spawn(hold_resource(sim, res, 10.0, done));
  sim.schedule(0.5, [&] { res.set_capacity(4); });
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  // After growth at t=0.5 the three queued holders start together.
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[3], 10.5);
}

TEST(Resource, TokenMoveTransfersOwnership) {
  des::Simulation sim;
  des::Resource res(sim, 1);
  {
    des::ResourceToken outer;
    {
      EXPECT_TRUE(res.try_acquire(1));
      des::ResourceToken inner(&res, 1);
      outer = std::move(inner);
      EXPECT_FALSE(inner.held());
    }
    EXPECT_EQ(res.available(), 0);  // still held by outer
  }
  EXPECT_EQ(res.available(), 1);
}

// ----------------------------------------------------------------- queue ----

namespace {
des::Process producer(des::Simulation& sim, des::SimQueue<int>& q, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(1.0);
    q.put(i);
  }
  q.close();
}

des::Process consumer(des::SimQueue<int>& q, std::vector<int>& out) {
  while (auto item = co_await q.get()) out.push_back(*item);
}
}  // namespace

TEST(SimQueue, ProducerConsumerDeliversAllInOrder) {
  des::Simulation sim;
  des::SimQueue<int> q(sim);
  std::vector<int> out;
  sim.spawn(consumer(q, out));
  sim.spawn(producer(sim, q, 50));
  sim.run();
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SimQueue, MultipleConsumersShareWork) {
  des::Simulation sim;
  des::SimQueue<int> q(sim);
  std::vector<int> a, b;
  sim.spawn(consumer(q, a));
  sim.spawn(consumer(q, b));
  sim.spawn(producer(sim, q, 100));
  sim.run();
  EXPECT_EQ(a.size() + b.size(), 100u);
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
}

TEST(SimQueue, CloseReleasesBlockedGetters) {
  des::Simulation sim;
  des::SimQueue<int> q(sim);
  bool finished = false;
  auto getter = [](des::SimQueue<int>& queue, bool& f) -> des::Process {
    auto v = co_await queue.get();
    f = !v.has_value();
  };
  sim.spawn(getter(q, finished));
  sim.schedule(5.0, [&] { q.close(); });
  sim.run();
  EXPECT_TRUE(finished);
}

// ------------------------------------------------------------- bandwidth ----

namespace {
des::Process do_transfer(des::Simulation& sim, des::BandwidthLink& link,
                         double bytes, double cap, std::vector<double>& done) {
  co_await link.transfer(bytes, cap);
  done.push_back(sim.now());
}
}  // namespace

TEST(Bandwidth, SingleFlowTakesBytesOverCapacity) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);  // 100 B/s
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 1000.0, des::BandwidthLink::kUncapped, done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 10.0, 1e-9);
}

TEST(Bandwidth, TwoEqualFlowsShareFairly) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 1000.0, des::BandwidthLink::kUncapped, done));
  sim.spawn(do_transfer(sim, link, 1000.0, des::BandwidthLink::kUncapped, done));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-9);
  EXPECT_NEAR(done[1], 20.0, 1e-9);
}

TEST(Bandwidth, ShortFlowFinishesThenLongSpeedsUp) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 2000.0, des::BandwidthLink::kUncapped, done));
  sim.spawn(do_transfer(sim, link, 500.0, des::BandwidthLink::kUncapped, done));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Short flow: 500 B at 50 B/s => t=10.  Long: 500B by t=10, then full rate
  // for remaining 1500B => t=25.
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 25.0, 1e-9);
}

TEST(Bandwidth, PerFlowCapRespected) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 1000.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 1000.0, 10.0, done));  // capped at 10 B/s
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 100.0, 1e-9);
}

TEST(Bandwidth, MaxMinWaterFilling) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  // One capped flow (10 B/s) + two uncapped sharing the residual 90 B/s.
  sim.spawn(do_transfer(sim, link, 100.0, 10.0, done));
  sim.spawn(do_transfer(sim, link, 450.0, des::BandwidthLink::kUncapped, done));
  sim.spawn(do_transfer(sim, link, 450.0, des::BandwidthLink::kUncapped, done));
  sim.run_until(5.0);
  EXPECT_NEAR(link.allocated_rate(), 100.0, 1e-9);
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 10.0, 1e-9);  // capped flow: 100B / 10B/s
  // Uncapped: 45 B/s for 10 s = 450 done right at the same moment.
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(Bandwidth, OutageStallsAndResumes) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 1000.0, des::BandwidthLink::kUncapped, done));
  sim.schedule(5.0, [&] { link.set_capacity(0.0); });   // outage at t=5
  sim.schedule(15.0, [&] { link.set_capacity(100.0); });  // restored at t=15
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 20.0, 1e-9);  // 10s of work + 10s stalled
}

TEST(Bandwidth, ZeroByteTransferIsImmediate) {
  des::Simulation sim;
  des::BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 0.0, des::BandwidthLink::kUncapped, done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 0.0);
}

// Property: random flow sets conserve bytes and never exceed capacity.
TEST(Bandwidth, PropertyConservationUnderRandomLoad) {
  lu::Rng rng(1234);
  des::Simulation sim;
  des::BandwidthLink link(sim, 1e6);
  std::vector<double> done;
  double total_bytes = 0.0;
  int flows = 0;
  auto spawner = [&](double at, double bytes, double cap) {
    total_bytes += bytes;
    ++flows;
    sim.schedule(at, [&, bytes, cap] {
      sim.spawn(do_transfer(sim, link, bytes, cap, done));
    });
  };
  for (int i = 0; i < 200; ++i) {
    const double cap = rng.chance(0.3) ? rng.uniform(1e3, 1e5)
                                       : des::BandwidthLink::kUncapped;
    spawner(rng.uniform(0.0, 50.0), rng.uniform(1.0, 1e7), cap);
  }
  sim.run();
  EXPECT_EQ(static_cast<int>(done.size()), flows);
  EXPECT_NEAR(link.bytes_moved(), total_bytes, 1.0);
  EXPECT_EQ(link.active_flows(), 0u);
}

// ------------------------------------------- determinism tie-break pins ----

// The calendar queue must preserve the kernel's determinism contract: among
// equal timestamps, events fire in schedule-sequence order.  This test
// interleaves same-time clusters with scattered timestamps so the events
// cross bucket windows, overflow spills and window rebuilds, and pins the
// exact global (time, sequence) order.
TEST(Simulation, SameTimeScheduleSequenceOrderUnderCalendarStress) {
  des::Simulation sim;
  struct Fired {
    double time;
    int stamp;
  };
  std::vector<Fired> fired;
  std::vector<std::pair<double, int>> expected;
  int stamp = 0;
  // Three same-time clusters at 100, 2500 and 77777 interleaved with a
  // spread of unique times (deterministic pseudo-random walk).
  std::uint64_t x = 42;
  for (int round = 0; round < 400; ++round) {
    const double cluster = (round % 3 == 0) ? 100.0
                           : (round % 3 == 1) ? 2500.0
                                              : 77777.0;
    const int s1 = stamp++;
    sim.schedule(cluster, [&fired, &sim, s1] {
      fired.push_back({sim.now(), s1});
    });
    expected.emplace_back(cluster, s1);
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const double t = static_cast<double>((x >> 33) % 100000) * 0.5;
    const int s2 = stamp++;
    sim.schedule(t, [&fired, &sim, s2] {
      fired.push_back({sim.now(), s2});
    });
    expected.emplace_back(t, s2);
  }
  sim.run();
  // Expected order: stable sort by time (sequence = insertion order breaks
  // ties because std::stable_sort preserves it).
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i].time, expected[i].first) << "at " << i;
    EXPECT_EQ(fired[i].stamp, expected[i].second) << "at " << i;
  }
}

// Events scheduled *during* a same-timestamp batch (zero delay from inside
// a callback) join the end of the batch and still fire in schedule order —
// the active-batch append path of the calendar queue.
TEST(Simulation, ZeroDelayFromInsideBatchAppendsInOrder) {
  des::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.schedule(5.0, [&sim, &order, i] {
      order.push_back(i);
      sim.schedule(0.0, [&order, i] { order.push_back(10 + i); });
    });
  }
  sim.run();
  // The three scheduled events run first (0,1,2), then their zero-delay
  // children in the order the parents scheduled them (10,11,12).
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

// ----------------------------------------------- queue close accounting ----

TEST(SimQueue, PutAfterCloseIsCountedNotSilent) {
  des::Simulation sim;
  des::SimQueue<int> q(sim);
  q.put(1);
  q.close();
#ifdef NDEBUG
  // Release: the item is dropped but the loss lands on the metrics plane.
  q.put(2);
  q.put(3);
  EXPECT_EQ(
      sim.counters().counter("des.queue.dropped_after_close").value(), 2u);
  EXPECT_EQ(q.size(), 1u);  // only the pre-close item remains buffered
#else
  // Debug: a producer bug fails fast.
  EXPECT_DEATH(q.put(2), "put after close");
#endif
}

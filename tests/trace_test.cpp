// Tests for the structured tracing layer (util/trace): sink round trips,
// structural validation, the counter plane, trace replay into TaskRecords,
// and the engine-level determinism contract — a traced run must produce the
// same trace bytes no matter which campaign thread executed it, and the
// trace must reconstruct the Figure 8 breakdown exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/trace_replay.hpp"
#include "lobsim/campaign.hpp"
#include "util/trace.hpp"

namespace util = lobster::util;
namespace core = lobster::core;
namespace lobsim = lobster::lobsim;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lobster_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

lobsim::RunSpec tiny_spec(std::uint64_t seed = 2015) {
  lobsim::RunSpec spec;
  spec.label = "traced";
  spec.seed = seed;
  spec.cluster.target_cores = 32;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 120;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.time_cap = 10.0 * 86400.0;
  spec.metric_bin_seconds = 3600.0;
  return spec;
}

}  // namespace

// ------------------------------------------------------------ format names ----

TEST(TraceFormat, NamesAndExtensionsRoundTrip) {
  EXPECT_STREQ(util::to_string(util::TraceFormat::Jsonl), "jsonl");
  EXPECT_STREQ(util::to_string(util::TraceFormat::Chrome), "chrome");
  EXPECT_STREQ(util::trace_extension(util::TraceFormat::Jsonl), ".jsonl");
  EXPECT_STREQ(util::trace_extension(util::TraceFormat::Chrome), ".json");
  EXPECT_EQ(util::parse_trace_format("jsonl"), util::TraceFormat::Jsonl);
  EXPECT_EQ(util::parse_trace_format("chrome"), util::TraceFormat::Chrome);
  EXPECT_THROW(util::parse_trace_format("perfetto"), std::invalid_argument);
}

// ------------------------------------------------------------- JSONL sink ----

TEST(JsonlSink, EventsRoundTripThroughParser) {
  util::JsonlTraceSink sink("");
  sink.begin("task", "analysis", 7, 1.5);
  sink.end("task", "analysis", 7, 2.5, {{"cpu", 0.75}, {"exit", 0.0}});
  sink.instant("lobsim", "task_failed", 0, 3.0, {{"exit", 211.0}});
  sink.counter("lobsim.engine.tasks_completed", 4.0, 42.0);
  sink.close();

  const auto events = util::parse_trace_jsonl(sink.buffer());
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].cat, "task");
  EXPECT_EQ(events[0].name, "analysis");
  EXPECT_EQ(events[0].track, 7u);
  EXPECT_EQ(events[0].t, 1.5);
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(events[1].arg("cpu", -1.0), 0.75);
  EXPECT_EQ(events[1].arg("exit", -1.0), 0.0);
  EXPECT_EQ(events[1].arg("missing", -1.0), -1.0);
  EXPECT_EQ(events[2].phase, 'i');
  EXPECT_EQ(events[2].arg("exit"), 211.0);
  EXPECT_EQ(events[3].phase, 'C');
  EXPECT_EQ(events[3].name, "lobsim.engine.tasks_completed");
  EXPECT_EQ(events[3].value, 42.0);
  EXPECT_TRUE(util::validate_trace(events).empty());
}

TEST(JsonlSink, DoublesSurviveExactly) {
  util::JsonlTraceSink sink("");
  const double awkward = 0.1 + 0.2;  // not representable prettily
  sink.counter("x", awkward, 1.0 / 3.0);
  sink.close();
  const auto events = util::parse_trace_jsonl(sink.buffer());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t, awkward);       // bitwise, thanks to %.17g
  EXPECT_EQ(events[0].value, 1.0 / 3.0);
}

TEST(JsonlSink, EscapesQuotesAndBackslashes) {
  util::JsonlTraceSink sink("");
  sink.begin("cat\"x", "na\\me", 0, 0.0);
  sink.end("cat\"x", "na\\me", 0, 1.0, {});
  sink.close();
  const auto events = util::parse_trace_jsonl(sink.buffer());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cat, "cat\"x");
  EXPECT_EQ(events[0].name, "na\\me");
  EXPECT_TRUE(util::validate_trace(events).empty());
}

TEST(JsonlSink, ParserRejectsGarbage) {
  EXPECT_THROW(util::parse_trace_jsonl("not json\n"), std::runtime_error);
  EXPECT_THROW(util::parse_trace_jsonl("{\"ev\":\"B\",\"t\":}\n"),
               std::runtime_error);
  EXPECT_THROW(util::read_trace_jsonl("/nonexistent/trace.jsonl"),
               std::runtime_error);
}

// ------------------------------------------------------------ Chrome sink ----

TEST(ChromeSink, ProducesTraceEventArray) {
  util::ChromeTraceSink sink("");
  sink.begin("task", "analysis", 3, 1.0);
  sink.end("task", "analysis", 3, 2.0, {{"cpu", 1.5}});
  sink.instant("xrootd", "outage_begin", 0, 2.5, {});
  sink.counter("lobsim.engine.running_tasks", 3.0, 17.0);
  sink.close();

  const std::string& buf = sink.buffer();
  EXPECT_EQ(buf.rfind("{\"traceEvents\":[", 0), 0u) << buf;
  EXPECT_NE(buf.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(buf.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(buf.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(buf.find("\"ph\":\"C\""), std::string::npos);
  // Microsecond timestamps: 1.0 s -> 1e6 us.
  EXPECT_NE(buf.find("\"ts\":1000000"), std::string::npos);
  // Balanced JSON tail.
  ASSERT_GE(buf.size(), 3u);
  EXPECT_EQ(buf.substr(buf.size() - 3), "]}\n")
      << "tail: " << buf.substr(buf.size() - 8);
}

// -------------------------------------------------------------- validation ----

TEST(Validate, RejectsDecreasingTimestamps) {
  util::JsonlTraceSink sink("");
  sink.instant("a", "x", 0, 2.0, {});
  sink.instant("a", "y", 0, 1.0, {});
  sink.close();
  const auto events = util::parse_trace_jsonl(sink.buffer());
  EXPECT_FALSE(util::validate_trace(events).empty());
}

TEST(Validate, RejectsNegativeTimestamps) {
  util::JsonlTraceSink sink("");
  sink.instant("a", "x", 0, -1.0, {});
  sink.close();
  EXPECT_FALSE(
      util::validate_trace(util::parse_trace_jsonl(sink.buffer())).empty());
}

TEST(Validate, RejectsUnbalancedSpans) {
  util::JsonlTraceSink sink("");
  sink.begin("task", "analysis", 1, 1.0);
  sink.close();
  const std::string problem =
      util::validate_trace(util::parse_trace_jsonl(sink.buffer()));
  EXPECT_NE(problem.find("never ended"), std::string::npos) << problem;
}

TEST(Validate, RejectsEndWithoutBegin) {
  util::JsonlTraceSink sink("");
  sink.end("task", "analysis", 1, 1.0, {});
  sink.close();
  EXPECT_FALSE(
      util::validate_trace(util::parse_trace_jsonl(sink.buffer())).empty());
}

TEST(Validate, RejectsMismatchedSpanNames) {
  util::JsonlTraceSink sink("");
  sink.begin("task", "analysis", 1, 1.0);
  sink.end("task", "merge", 1, 2.0, {});
  sink.close();
  EXPECT_FALSE(
      util::validate_trace(util::parse_trace_jsonl(sink.buffer())).empty());
}

TEST(Validate, AcceptsNestedAndInterleavedTracks) {
  util::JsonlTraceSink sink("");
  sink.begin("task", "analysis", 1, 1.0);
  sink.begin("segment", "execute", 1, 1.5);  // nested on the same track
  sink.begin("task", "merge", 2, 1.7);       // concurrent on another track
  sink.end("segment", "execute", 1, 2.0, {});
  sink.end("task", "merge", 2, 2.5, {});
  sink.end("task", "analysis", 1, 3.0, {});
  sink.close();
  EXPECT_TRUE(
      util::validate_trace(util::parse_trace_jsonl(sink.buffer())).empty());
}

// ----------------------------------------------------------- counter plane ----

TEST(CounterPlane, FindOrCreateReturnsStableRefs) {
  util::CounterRegistry reg;
  util::Counter& a = reg.counter("wq.master.dispatched");
  util::Counter& b = reg.counter("wq.master.dispatched");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  util::Gauge& g = reg.gauge("chirp.sim.bytes_in");
  g.add(1.5);
  g.add(2.5);
  EXPECT_EQ(reg.gauge("chirp.sim.bytes_in").value(), 4.0);
}

TEST(CounterPlane, SnapshotIsNameOrdered) {
  util::CounterRegistry reg;
  reg.counter("z.last").add(1);
  reg.gauge("m.middle").set(2.0);
  reg.counter("a.first").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].value, 3.0);
  EXPECT_FALSE(snap[0].is_gauge);
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_TRUE(snap[1].is_gauge);
  EXPECT_EQ(snap[2].name, "z.last");
}

TEST(CounterPlane, BumpToleratesNull) {
  util::bump(static_cast<util::Counter*>(nullptr));
  util::bump(static_cast<util::Gauge*>(nullptr), 5.0);
  util::Counter c;
  util::bump(&c, 2);
  EXPECT_EQ(c.value(), 2u);
}

// -------------------------------------------------------------- trace replay ----

TEST(TraceReplay, RebuildsRecordsFromEndEventArgs) {
  util::JsonlTraceSink sink("");
  sink.begin("task", "analysis", 9, 10.0);
  sink.end("task", "analysis", 9, 110.0,
           {{"status", 2.0},
            {"exit", 0.0},
            {"tasklets", 6.0},
            {"cpu", 80.0},
            {"lost", 0.0},
            {"execute", 90.0},
            {"execute_io", 5.0},
            {"stage_in", 3.0},
            {"stage_out", 2.0}});
  // A reducer span carries no status and must not become a record.
  sink.begin("task", "hadoop_reduce", 1 << 20, 120.0);
  sink.end("task", "hadoop_reduce", 1 << 20, 130.0, {{"bytes", 1e9}});
  sink.counter("lobsim.engine.tasks_completed", 130.0, 1.0);
  sink.close();

  const auto replay =
      core::replay_trace(util::parse_trace_jsonl(sink.buffer()));
  ASSERT_EQ(replay.records.size(), 1u);
  const core::TaskRecord& rec = replay.records[0];
  EXPECT_EQ(rec.status, core::TaskStatus::Done);
  EXPECT_EQ(rec.kind, core::TaskKind::Analysis);
  EXPECT_EQ(rec.submit_time, 10.0);
  EXPECT_EQ(rec.finish_time, 110.0);
  EXPECT_EQ(rec.cpu_time, 80.0);
  EXPECT_EQ(rec.tasklets.size(), 6u);
  EXPECT_EQ(
      rec.segment_time[static_cast<std::size_t>(core::Segment::Execute)],
      90.0);
  EXPECT_EQ(
      rec.segment_time[static_cast<std::size_t>(core::Segment::ExecuteIo)],
      5.0);
  ASSERT_EQ(replay.final_counters.size(), 1u);
  EXPECT_EQ(replay.final_counters[0].first, "lobsim.engine.tasks_completed");
  EXPECT_EQ(replay.open_spans, 0u);
}

// ---------------------------------------------------------- engine contract ----

TEST(EngineTrace, TracedRunIsValidAndReconstructsBreakdownExactly) {
  const std::string path = temp_path("engine_trace.jsonl");
  lobsim::RunSpec spec = tiny_spec();
  spec.trace_path = path;
  std::shared_ptr<const lobsim::EngineMetrics> metrics;
  const lobsim::RunStats stats = lobsim::Campaign::execute(spec, &metrics);
  ASSERT_TRUE(metrics);
  ASSERT_TRUE(stats.completed);

  const auto events = util::read_trace_jsonl(path);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(util::validate_trace(events).empty())
      << util::validate_trace(events);

  // The end-event payloads carry the authoritative TaskRecord numbers, so
  // replaying them through a fresh Monitor reproduces the engine's own
  // Figure 8 breakdown bit for bit (same values, same fold order).
  const core::TraceReplay replay = core::replay_trace(events);
  EXPECT_EQ(replay.records.size(),
            stats.tasks_completed + stats.tasks_failed + stats.tasks_evicted +
                stats.merge_tasks_completed);
  core::Monitor monitor(spec.metric_bin_seconds);
  for (const auto& rec : replay.records) monitor.on_task_finished(rec);
  const core::RuntimeBreakdown a = monitor.breakdown();
  const core::RuntimeBreakdown b = metrics->monitor.breakdown();
  EXPECT_EQ(a.cpu, b.cpu);
  EXPECT_EQ(a.io, b.io);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.stage_in, b.stage_in);
  EXPECT_EQ(a.stage_out, b.stage_out);
  EXPECT_EQ(a.other, b.other);

  // The final counter plane agrees with the metrics the engine reported.
  double completed = -1.0, evicted = -1.0, des_events = -1.0;
  for (const auto& [name, value] : replay.final_counters) {
    if (name == "lobsim.engine.tasks_completed") completed = value;
    if (name == "lobsim.engine.tasks_evicted") evicted = value;
    if (name == "des.kernel.events_dispatched") des_events = value;
  }
  EXPECT_EQ(completed, static_cast<double>(stats.tasks_completed));
  EXPECT_EQ(evicted, static_cast<double>(stats.tasks_evicted));
  EXPECT_GT(des_events, 0.0);
  std::remove(path.c_str());
}

TEST(EngineTrace, TracingDoesNotPerturbTheSimulation) {
  lobsim::RunSpec plain = tiny_spec();
  lobsim::RunSpec traced = tiny_spec();
  traced.trace_path = temp_path("perturb_check.jsonl");
  const lobsim::RunStats a = lobsim::Campaign::execute(plain);
  const lobsim::RunStats b = lobsim::Campaign::execute(traced);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_evicted, b.tasks_evicted);
  EXPECT_EQ(a.tasklets_retried, b.tasklets_retried);
  EXPECT_EQ(a.breakdown.cpu, b.breakdown.cpu);
  EXPECT_EQ(a.breakdown.io, b.breakdown.io);
  std::remove(traced.trace_path.c_str());
}

TEST(EngineTrace, ChromeExportIsStructurallySound) {
  const std::string path = temp_path("engine_trace.json");
  lobsim::RunSpec spec = tiny_spec();
  spec.trace_path = path;
  spec.trace_format = util::TraceFormat::Chrome;
  lobsim::Campaign::execute(spec);
  const std::string buf = slurp(path);
  EXPECT_EQ(buf.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(buf.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(buf.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(buf.find("\"name\":\"analysis\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EngineTrace, SerialAndParallelCampaignTracesAreBitwiseIdentical) {
  std::vector<std::uint64_t> seeds = {2015, 2016, 2017, 2018};
  auto run_campaign = [&seeds](std::size_t jobs, const std::string& prefix) {
    lobsim::Campaign campaign(jobs);
    campaign.trace_to(prefix);
    campaign.add_seed_sweep(tiny_spec(), seeds);
    campaign.run();
    for (const auto& r : campaign.results()) ASSERT_TRUE(r.ok()) << r.error;
  };
  const std::string serial_prefix = temp_path("serial");
  const std::string parallel_prefix = temp_path("parallel");
  run_campaign(1, serial_prefix);
  run_campaign(4, parallel_prefix);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::string suffix = "-run" + std::to_string(i) + "-seed" +
                               std::to_string(seeds[i]) + ".jsonl";
    const std::string sp = serial_prefix + suffix;
    const std::string pp = parallel_prefix + suffix;
    const std::string sa = slurp(sp);
    const std::string pa = slurp(pp);
    EXPECT_FALSE(sa.empty());
    EXPECT_EQ(sa, pa) << "trace for run " << i
                      << " differs between serial and parallel campaigns";
    std::remove(sp.c_str());
    std::remove(pp.c_str());
  }
}

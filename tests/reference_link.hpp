// reference_link.hpp — the deliberately naive max-min water-filling oracle.
//
// ReferenceLink is a drop-in BandwidthLink with none of the incremental
// machinery: every join/finish/capacity change re-sorts the full flow set,
// re-runs the water-fill from scratch (O(n) per event, O(n^2) per flow
// lifetime), stores an explicit per-flow rate, sweeps completions on every
// advance, and never batches same-timestamp updates.  That makes it slow
// and obviously correct — the property the differential battery leans on:
// bandwidth_diff_test fuzzes thousands of schedules through both links and
// requires rates within 1 ulp and completion times bit-identical, and
// bench/micro_net uses it as the "full-recompute baseline" the incremental
// solver must beat by >= 10x at 100k concurrent flows.
//
// The *arithmetic* is deliberately canonical — ascending (cap, id) order,
// Kahan-compensated long double prefix sum, residual clamped at zero,
// rate = min(cap, fair) — i.e. exactly what src/des/bandwidth.cpp::solve()
// computes incrementally.  Keep the two in lockstep: any intentional
// change to one side's arithmetic must land on both, or the diff test will
// (correctly) fail.
#pragma once

#include <algorithm>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "des/simulation.hpp"

namespace lobster::testref {

class ReferenceLink {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  ReferenceLink(des::Simulation& sim, double capacity_bytes_per_s)
      : sim_(sim), capacity_(capacity_bytes_per_s) {
    if (capacity_ < 0.0)
      throw std::invalid_argument("ReferenceLink: negative capacity");
  }
  ReferenceLink(const ReferenceLink&) = delete;
  ReferenceLink& operator=(const ReferenceLink&) = delete;

  void set_capacity(double bytes_per_s) {
    if (bytes_per_s < 0.0)
      throw std::invalid_argument("ReferenceLink: negative capacity");
    advance();
    capacity_ = bytes_per_s;
    recompute();
    reschedule();
  }
  double capacity() const { return capacity_; }

  std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] double bytes_moved() const {
    double partial = 0.0;
    for (const Flow& f : flows_) partial += f.total - f.remaining;
    return completed_bytes_ + partial;
  }
  double allocated_rate() const {
    double sum = 0.0;
    for (const Flow& f : flows_) sum += f.rate;
    return sum;
  }

  template <typename Fn>
  void for_each_flow(Fn&& fn) const {
    for (const Flow& f : flows_) fn(f.id, f.total, f.remaining, f.cap, f.rate);
  }

  struct TransferAwaiter {
    ReferenceLink* link;
    double bytes;
    double rate_cap;
    std::shared_ptr<des::Event> done;
    bool await_ready() noexcept {
      if (bytes <= 0.0) return true;
      done = link->start_flow(bytes, rate_cap);
      return done->triggered();
    }
    void await_suspend(std::coroutine_handle<> h) { done->add_waiter(h); }
    void await_resume() const noexcept {}
  };

  TransferAwaiter transfer(double bytes, double rate_cap = kUncapped) {
    return TransferAwaiter{this, bytes, rate_cap, nullptr};
  }

  /// Bench-setup helper: append a flow *without* the per-join recompute, so
  /// bench/micro_net can build a 100k-flow steady state in O(n) instead of
  /// O(n^2 log n).  Call settle() once after the last preload.  The
  /// differential tests never use this — every fuzzed join goes through
  /// start_flow's naive full recompute.
  void preload(double bytes, double rate_cap) {
    Flow f;
    f.id = next_id_++;
    f.total = bytes;
    f.remaining = bytes;
    f.cap = rate_cap;
    f.done = std::make_shared<des::Event>(sim_);
    flows_.push_back(std::move(f));
  }
  void settle() {
    recompute();
    reschedule();
  }

 private:
  friend struct TransferAwaiter;
  struct Flow {
    std::uint64_t id = 0;
    double total = 0.0;
    double remaining = 0.0;
    double cap = 0.0;
    double rate = 0.0;
    std::shared_ptr<des::Event> done;
  };

  static double completion_eps(double total) {
    return std::max(1e-6, 1e-12 * total);
  }

  std::shared_ptr<des::Event> start_flow(double bytes, double rate_cap) {
    if (rate_cap <= 0.0)
      throw std::invalid_argument("ReferenceLink: rate cap must be positive");
    auto done = std::make_shared<des::Event>(sim_);
    advance();
    Flow f;
    f.id = next_id_++;
    f.total = bytes;
    f.remaining = bytes;
    f.cap = rate_cap;
    f.done = done;
    flows_.push_back(std::move(f));
    recompute();  // naive: every join pays the full water-fill immediately
    reschedule();
    return done;
  }

  void advance() {
    const double now = sim_.now();
    const double dt = now - last_update_;
    last_update_ = now;
    // Naive: sweep on every call, even zero-width ones.
    std::size_t out = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      Flow& f = flows_[i];
      if (dt > 0.0) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
      if (f.remaining <= completion_eps(f.total)) {
        completed_bytes_ += f.total;
        f.done->trigger();
      } else {
        if (out != i) flows_[out] = std::move(f);
        ++out;
      }
    }
    flows_.resize(out);
  }

  // Textbook water-fill, from scratch: sort every flow by (cap, id), scan
  // ascending with a Kahan long-double prefix sum, stop at the first cap
  // the running fair share of the residual cannot cover, give everyone
  // min(cap, fair).  Same canonical arithmetic as the incremental solver.
  void recompute() {
    scratch_.clear();
    for (std::size_t i = 0; i < flows_.size(); ++i) scratch_.push_back(i);
    std::sort(scratch_.begin(), scratch_.end(),
              [this](std::size_t a, std::size_t b) {
                return flows_[a].cap != flows_[b].cap
                           ? flows_[a].cap < flows_[b].cap
                           : flows_[a].id < flows_[b].id;
              });
    const std::size_t n = flows_.size();
    long double sum = 0.0L;
    long double comp = 0.0L;
    std::size_t k = 0;
    double fair = kUncapped;
    while (k < n) {
      const double residual =
          std::max(0.0, capacity_ - static_cast<double>(sum));
      const double share = residual / static_cast<double>(n - k);
      if (flows_[scratch_[k]].cap > share) {
        fair = share;
        break;
      }
      const long double y =
          static_cast<long double>(flows_[scratch_[k]].cap) - comp;
      const long double t = sum + y;
      comp = (t - sum) - y;
      sum = t;
      ++k;
    }
    for (Flow& f : flows_) f.rate = std::min(f.cap, fair);
  }

  void reschedule() {
    const std::uint64_t gen = ++gen_;
    double min_dt = std::numeric_limits<double>::infinity();
    for (const Flow& f : flows_)
      if (f.rate > 0.0) min_dt = std::min(min_dt, f.remaining / f.rate);
    if (!std::isfinite(min_dt)) return;
    const double now = sim_.now();
    if (now + min_dt <= now)
      min_dt = std::nextafter(now, std::numeric_limits<double>::infinity()) -
               now;
    sim_.schedule(min_dt, [this, gen] { on_timer(gen); });
  }

  void on_timer(std::uint64_t gen) {
    if (gen != gen_) return;
    advance();
    recompute();
    reschedule();
  }

  des::Simulation& sim_;
  double capacity_;
  double last_update_ = 0.0;
  double completed_bytes_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t gen_ = 0;
  std::vector<Flow> flows_;
  std::vector<std::size_t> scratch_;
};

}  // namespace lobster::testref

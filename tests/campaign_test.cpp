// Tests for the lobsim::Campaign parallel run harness: per-run determinism,
// parallel == serial aggregation, seed sweep bookkeeping, error isolation,
// and the shared --seeds/--jobs flag parser.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/units.hpp"

namespace lobster::lobsim {
namespace {

RunSpec small_spec(std::uint64_t seed = 2015) {
  RunSpec spec;
  spec.label = "small";
  spec.seed = seed;
  spec.cluster.target_cores = 64;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 300;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.time_cap = 10.0 * 86400.0;
  spec.metric_bin_seconds = 3600.0;
  return spec;
}

// All scalar fields, compared exactly: determinism means bitwise equality,
// not tolerance.
void expect_stats_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.last_analysis_finish, b.last_analysis_finish);
  EXPECT_EQ(a.last_merge_finish, b.last_merge_finish);
  EXPECT_EQ(a.bytes_streamed, b.bytes_streamed);
  EXPECT_EQ(a.bytes_staged, b.bytes_staged);
  EXPECT_EQ(a.bytes_staged_out, b.bytes_staged_out);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_failed, b.tasks_failed);
  EXPECT_EQ(a.tasks_evicted, b.tasks_evicted);
  EXPECT_EQ(a.merge_tasks_completed, b.merge_tasks_completed);
  EXPECT_EQ(a.tasklets_processed, b.tasklets_processed);
  EXPECT_EQ(a.tasklets_retried, b.tasklets_retried);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  EXPECT_EQ(a.steal_tasks, b.steal_tasks);
  EXPECT_EQ(a.steal_bytes_penalty, b.steal_bytes_penalty);
  EXPECT_EQ(a.peak_running, b.peak_running);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.breakdown.cpu, b.breakdown.cpu);
  EXPECT_EQ(a.breakdown.io, b.breakdown.io);
  EXPECT_EQ(a.breakdown.failed, b.breakdown.failed);
  EXPECT_EQ(a.breakdown.stage_in, b.breakdown.stage_in);
  EXPECT_EQ(a.breakdown.stage_out, b.breakdown.stage_out);
}

TEST(CampaignTest, SameSeedTwiceIsBitwiseIdentical) {
  std::shared_ptr<const EngineMetrics> m1, m2;
  const RunStats a = Campaign::execute(small_spec(), &m1);
  const RunStats b = Campaign::execute(small_spec(), &m2);
  expect_stats_identical(a, b);
  ASSERT_TRUE(m1 && m2);
  // Full timeline equality, bin by bin.
  ASSERT_EQ(m1->analysis_done.nbins(), m2->analysis_done.nbins());
  for (std::size_t i = 0; i < m1->analysis_done.nbins(); ++i) {
    EXPECT_EQ(m1->analysis_done.sum(i), m2->analysis_done.sum(i));
    EXPECT_EQ(m1->merge_done.sum(i), m2->merge_done.sum(i));
  }
  EXPECT_EQ(m1->failure_events, m2->failure_events);
}

TEST(CampaignTest, DifferentSeedsDiffer) {
  const RunStats a = Campaign::execute(small_spec(2015));
  const RunStats b = Campaign::execute(small_spec(2016));
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(CampaignTest, ParallelAggregatesIdenticalToSerial) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 2015; s < 2023; ++s) seeds.push_back(s);  // 8 seeds

  Campaign serial(1);
  serial.add_seed_sweep(small_spec(), seeds);
  serial.run();

  Campaign parallel(4);
  parallel.add_seed_sweep(small_spec(), seeds);
  parallel.run();

  ASSERT_EQ(serial.results().size(), parallel.results().size());
  for (std::size_t i = 0; i < serial.results().size(); ++i) {
    const auto& rs = serial.results()[i];
    const auto& rp = parallel.results()[i];
    EXPECT_EQ(rs.seed, rp.seed);
    EXPECT_EQ(rs.label, rp.label);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rp.ok());
    expect_stats_identical(rs.stats, rp.stats);
  }

  const auto as = serial.aggregate();
  const auto ap = parallel.aggregate();
  ASSERT_EQ(as.size(), 1u);
  ASSERT_EQ(ap.size(), 1u);
  EXPECT_EQ(as[0].runs, 8u);
  // Folding order is submission order in both cases, so the running stats
  // agree bitwise, not just within tolerance.
  EXPECT_EQ(as[0].makespan.mean(), ap[0].makespan.mean());
  EXPECT_EQ(as[0].makespan.stddev(), ap[0].makespan.stddev());
  EXPECT_EQ(as[0].makespan.min(), ap[0].makespan.min());
  EXPECT_EQ(as[0].makespan.max(), ap[0].makespan.max());
  EXPECT_EQ(as[0].tasks_evicted.mean(), ap[0].tasks_evicted.mean());
  EXPECT_EQ(as[0].merge_tasks.stddev(), ap[0].merge_tasks.stddev());
  EXPECT_EQ(as[0].bytes_streamed.mean(), ap[0].bytes_streamed.mean());
}

// Every availability climate must stay bitwise deterministic under thread
// parallelism: the same sweep with --jobs 1 and --jobs 4 yields identical
// per-run stats.  Trace replay shares one preloaded log across all runs,
// the way a campaign over a real HTCondor CSV would.
TEST(CampaignTest, AvailabilityModelsDeterministicAcrossJobs) {
  const auto trace_log = std::make_shared<const std::vector<double>>(
      core::synthesize_availability_log(
          5000, util::Rng(2015).stream("campaign-trace"), 0.8, 4.0));

  std::vector<RunSpec> specs;
  for (auto kind :
       {AvailabilityKind::Weibull, AvailabilityKind::Trace,
        AvailabilityKind::Diurnal, AvailabilityKind::AdversarialBurst}) {
    RunSpec spec = small_spec();
    spec.label = to_string(kind);
    spec.cluster.availability.kind = kind;
    spec.cluster.availability.burst_period_hours = 2.0;
    if (kind == AvailabilityKind::Trace)
      spec.cluster.availability.trace = trace_log;
    specs.push_back(spec);
  }

  Campaign serial(1);
  Campaign parallel(4);
  for (const auto& spec : specs) {
    serial.add_seed_sweep(spec, {2015, 2016});
    parallel.add_seed_sweep(spec, {2015, 2016});
  }
  serial.run();
  parallel.run();

  ASSERT_EQ(serial.results().size(), 8u);
  ASSERT_EQ(parallel.results().size(), 8u);
  for (std::size_t i = 0; i < serial.results().size(); ++i) {
    const auto& rs = serial.results()[i];
    const auto& rp = parallel.results()[i];
    SCOPED_TRACE(rs.label + "/" + std::to_string(rs.seed));
    ASSERT_TRUE(rs.ok()) << rs.error;
    ASSERT_TRUE(rp.ok()) << rp.error;
    expect_stats_identical(rs.stats, rp.stats);
  }
  // The climates genuinely differ from one another under the same seed.
  const auto& weibull = serial.results()[0].stats;
  const auto& burst = serial.results()[6].stats;
  EXPECT_NE(weibull.makespan, burst.makespan);
}

// The lifetime dispatch policy queries the site's availability model on
// every pull; that must stay bitwise deterministic under thread
// parallelism, including under the burst climate it is designed for.
TEST(CampaignTest, LifetimeDispatchDeterministicAcrossJobs) {
  std::vector<RunSpec> specs;
  for (auto kind :
       {AvailabilityKind::Weibull, AvailabilityKind::AdversarialBurst}) {
    RunSpec spec = small_spec();
    spec.label = std::string("lifetime/") + to_string(kind);
    spec.cluster.availability.kind = kind;
    spec.cluster.availability.burst_period_hours = 2.0;
    spec.workload.dispatch = DispatchMode::Lifetime;
    specs.push_back(spec);
  }

  Campaign serial(1);
  Campaign parallel(4);
  serial.add_grid(specs, {2015, 2016});
  parallel.add_grid(specs, {2015, 2016});
  serial.run();
  parallel.run();

  ASSERT_EQ(serial.results().size(), 4u);
  ASSERT_EQ(parallel.results().size(), 4u);
  for (std::size_t i = 0; i < serial.results().size(); ++i) {
    const auto& rs = serial.results()[i];
    const auto& rp = parallel.results()[i];
    SCOPED_TRACE(rs.label + "/" + std::to_string(rs.seed));
    ASSERT_TRUE(rs.ok()) << rs.error;
    ASSERT_TRUE(rp.ok()) << rp.error;
    EXPECT_TRUE(rs.stats.completed);
    expect_stats_identical(rs.stats, rp.stats);
  }
  // The policy genuinely differs from fifo under the same seed/climate.
  RunSpec fifo = small_spec();
  fifo.cluster.availability.kind = AvailabilityKind::AdversarialBurst;
  fifo.cluster.availability.burst_period_hours = 2.0;
  const RunStats f = Campaign::execute(fifo);
  EXPECT_NE(f.makespan, serial.results()[2].stats.makespan);
}

// Work stealing scans all per-site pools on every idle pull and charges a
// WAN penalty through shared bandwidth models; with heterogeneous sites and
// an adversarial-burst climate on one of them, the whole campaign must stay
// bitwise identical between --jobs 1 and --jobs 4 — including the steal
// counters themselves.
TEST(CampaignTest, StealingDispatchDeterministicAcrossJobs) {
  RunSpec spec = small_spec();
  spec.label = "stealing";
  spec.workload.num_tasklets = 600;
  spec.workload.dispatch = DispatchMode::Stealing;
  spec.workload.steal_min_backlog = 6;
  SiteParams bursty;
  bursty.name = "bursty";
  bursty.target_cores = 64;
  bursty.ramp_seconds = 60.0;
  bursty.availability.kind = AvailabilityKind::AdversarialBurst;
  bursty.availability.scale_hours = 2.0;
  bursty.availability.burst_period_hours = 1.0;
  bursty.availability.burst_fraction = 0.8;
  SiteParams calm;
  calm.name = "calm";
  calm.target_cores = 32;
  calm.ramp_seconds = 60.0;
  calm.evictions = false;
  spec.cluster.extra_sites = {bursty, calm};

  Campaign serial(1);
  Campaign parallel(4);
  serial.add_seed_sweep(spec, {2015, 2016, 2017});
  parallel.add_seed_sweep(spec, {2015, 2016, 2017});
  serial.run();
  parallel.run();

  ASSERT_EQ(serial.results().size(), 3u);
  ASSERT_EQ(parallel.results().size(), 3u);
  bool stole = false;
  for (std::size_t i = 0; i < serial.results().size(); ++i) {
    const auto& rs = serial.results()[i];
    const auto& rp = parallel.results()[i];
    SCOPED_TRACE(rs.label + "/" + std::to_string(rs.seed));
    ASSERT_TRUE(rs.ok()) << rs.error;
    ASSERT_TRUE(rp.ok()) << rp.error;
    EXPECT_TRUE(rs.stats.completed);
    expect_stats_identical(rs.stats, rp.stats);
    stole = stole || rs.stats.steal_tasks > 0;
  }
  // The sweep genuinely exercised the steal path, not just the partitions.
  EXPECT_TRUE(stole);
}

// The Figure 9 streaming regime — oversubscribed campus uplink, max-min
// water-filling on every dispatch wave, a transient wide-area outage — must
// stay bitwise identical between --jobs 1 and --jobs 4.  This is the
// campaign-level pin of the incremental fair-share solver: any thread-order
// sensitivity in the batched re-solve (shared state, iteration order,
// accumulated floating point) surfaces as a field diff here.
TEST(CampaignTest, StreamingSpecSerialVsParallelBitwise) {
  RunSpec fig09 = small_spec();
  fig09.label = "fig09-mini";
  fig09.cluster.federation.campus_uplink_rate = util::gbit_per_s(1);
  fig09.cluster.federation.per_stream_rate = 3.0e7;
  fig09.workload.tasklet_input_bytes = 390e6;
  fig09.workload.read_fraction = 0.28;
  fig09.workload.access = core::DataAccessMode::Stream;
  fig09.outage_start = 1800.0;
  fig09.outage_duration = 600.0;
  const std::vector<std::uint64_t> seeds = {2015, 2016, 2017, 2018};

  Campaign serial(1);
  serial.add_seed_sweep(fig09, seeds);
  serial.run();

  Campaign parallel(4);
  parallel.add_seed_sweep(fig09, seeds);
  parallel.run();

  ASSERT_EQ(serial.results().size(), seeds.size());
  ASSERT_EQ(parallel.results().size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto& rs = serial.results()[i];
    const auto& rp = parallel.results()[i];
    SCOPED_TRACE("seed " + std::to_string(rs.seed));
    ASSERT_TRUE(rs.ok()) << rs.error;
    ASSERT_TRUE(rp.ok()) << rp.error;
    EXPECT_GT(rs.stats.bytes_streamed, 0.0);  // the regime actually streams
    expect_stats_identical(rs.stats, rp.stats);
  }
}

// run_200gbps_ramp is documented as a pure function of its options, so a
// seed-swept fan-out across threads must reproduce the serial phase tables
// bitwise — offered/achieved rates, every per-site breakdown entry, broken
// streams and failed opens alike.
TEST(CampaignTest, RampSerialVsParallelBitwise) {
  const std::size_t n = 4;
  auto options_for = [](std::size_t i) {
    RampOptions opt;
    opt.sites = 4;
    opt.trunks = 2;
    opt.target_gbps = 10.0;
    // 4 phases x 30 s: the collapse window (half the horizon, 1.5 phases
    // long) ends at t=105 of 120, so broken streams land inside the run.
    opt.phases = 4;
    opt.phase_seconds = 30.0;
    opt.file_bytes = 2e8;
    opt.uplink_collapse = (i % 2) == 1;  // alternate the failure mode
    opt.seed = 2015 + i;
    return opt;
  };

  std::vector<RampResult> serial(n), parallel(n);
  parallel_runs(n, 1, [&](std::size_t i) {
    serial[i] = run_200gbps_ramp(options_for(i));
  });
  parallel_runs(n, 4, [&](std::size_t i) {
    parallel[i] = run_200gbps_ramp(options_for(i));
  });

  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("ramp " + std::to_string(i));
    const RampResult& a = serial[i];
    const RampResult& b = parallel[i];
    EXPECT_EQ(a.peak_gbps, b.peak_gbps);
    EXPECT_EQ(a.streams_completed, b.streams_completed);
    EXPECT_EQ(a.events_executed, b.events_executed);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
      SCOPED_TRACE("phase " + std::to_string(p));
      const RampPhase& pa = a.phases[p];
      const RampPhase& pb = b.phases[p];
      EXPECT_EQ(pa.offered_gbps, pb.offered_gbps);
      EXPECT_EQ(pa.achieved_gbps, pb.achieved_gbps);
      EXPECT_EQ(pa.broken_streams, pb.broken_streams);
      EXPECT_EQ(pa.failed_opens, pb.failed_opens);
      ASSERT_EQ(pa.site_gbps.size(), pb.site_gbps.size());
      for (std::size_t s = 0; s < pa.site_gbps.size(); ++s)
        EXPECT_EQ(pa.site_gbps[s], pb.site_gbps[s]);
    }
    EXPECT_GT(a.streams_completed, 0u);
  }
  // The collapse runs genuinely broke streams (the failure mode is live).
  EXPECT_GT(serial[1].phases.back().broken_streams, 0u);
}

TEST(CampaignTest, AddGridCrossesSpecsAndSeeds) {
  RunSpec a = small_spec();
  a.label = "a";
  RunSpec b = small_spec();
  b.label = "b";
  b.workload.dispatch = DispatchMode::Lifetime;

  Campaign campaign(2);
  campaign.add_grid({a, b}, {2015, 2016, 2017});
  ASSERT_EQ(campaign.size(), 6u);
  campaign.run();
  const auto& r = campaign.results();
  // Specs outer, seeds inner, submission order preserved.
  EXPECT_EQ(r[0].label, "a");
  EXPECT_EQ(r[0].seed, 2015u);
  EXPECT_EQ(r[2].seed, 2017u);
  EXPECT_EQ(r[3].label, "b");
  EXPECT_EQ(r[3].seed, 2015u);
  const auto agg = campaign.aggregate();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].label, "a");
  EXPECT_EQ(agg[0].runs, 3u);
  EXPECT_EQ(agg[1].label, "b");
  EXPECT_EQ(agg[1].runs, 3u);
}

// A run truncated by its time cap must say so: completed == false in the
// stats, counted by the aggregate — the makespan it reports is only a lower
// bound.
TEST(CampaignTest, TruncatedRunReportsIncomplete) {
  RunSpec truncated = small_spec();
  truncated.time_cap = 900.0;  // the 300-tasklet workflow needs hours

  Campaign campaign(1);
  campaign.add(truncated);
  campaign.add(small_spec(2016));  // full-length sibling under one label
  campaign.run();

  const auto& r = campaign.results();
  ASSERT_TRUE(r[0].ok()) << r[0].error;
  ASSERT_TRUE(r[1].ok()) << r[1].error;
  EXPECT_FALSE(r[0].stats.completed);
  EXPECT_LT(r[0].stats.tasklets_processed,
            truncated.workload.num_tasklets);
  EXPECT_TRUE(r[1].stats.completed);
  EXPECT_EQ(r[1].stats.tasklets_processed, small_spec().workload.num_tasklets);

  const auto agg = campaign.aggregate();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].runs, 2u);
  EXPECT_EQ(agg[0].incomplete, 1u);
  EXPECT_EQ(agg[0].errors, 0u);
}

TEST(CampaignTest, SeedSweepKeepsLabelAndOrder) {
  Campaign campaign(2);
  campaign.add_seed_sweep(small_spec(), {7, 9, 11});
  RunSpec other = small_spec(42);
  other.label = "other";
  campaign.add(other);
  ASSERT_EQ(campaign.size(), 4u);
  campaign.run();
  const auto& r = campaign.results();
  EXPECT_EQ(r[0].seed, 7u);
  EXPECT_EQ(r[1].seed, 9u);
  EXPECT_EQ(r[2].seed, 11u);
  EXPECT_EQ(r[3].seed, 42u);
  EXPECT_EQ(r[0].label, "small");
  EXPECT_EQ(r[3].label, "other");
  // Aggregates group by label in first-submission order.
  const auto agg = campaign.aggregate();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].label, "small");
  EXPECT_EQ(agg[0].runs, 3u);
  EXPECT_EQ(agg[1].label, "other");
  EXPECT_EQ(agg[1].runs, 1u);
}

TEST(CampaignTest, FailedRunIsIsolated) {
  Campaign campaign(2);
  RunSpec bad = small_spec();
  bad.label = "bad";
  bad.cluster.num_squids = 0;  // engine rejects this in its constructor
  campaign.add(small_spec());
  campaign.add(bad);
  campaign.add(small_spec(2016));
  campaign.run();
  const auto& r = campaign.results();
  EXPECT_TRUE(r[0].ok());
  EXPECT_FALSE(r[1].ok());
  EXPECT_NE(r[1].error.find("squid"), std::string::npos);
  EXPECT_TRUE(r[2].ok());
  const auto agg = campaign.aggregate();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[1].label, "bad");
  EXPECT_EQ(agg[1].runs, 0u);
  EXPECT_EQ(agg[1].errors, 1u);
}

TEST(CampaignTest, MetricsRetainedOnlyOnRequest) {
  Campaign lean(1);
  lean.add(small_spec());
  lean.run();
  EXPECT_EQ(lean.results()[0].metrics, nullptr);

  Campaign full(1);
  full.keep_metrics(true);
  full.add(small_spec());
  full.run();
  ASSERT_NE(full.results()[0].metrics, nullptr);
  EXPECT_GT(full.results()[0].metrics->tasklets_processed, 0u);
}

TEST(ParallelRunsTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_runs(64, 4, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CampaignFlagsTest, ParsesSeedsAndJobs) {
  const char* argv_c[] = {"bench", "--seeds", "4", "--jobs", "2"};
  auto opts = parse_campaign_flags(5, const_cast<char**>(argv_c), 100);
  ASSERT_EQ(opts.seeds.size(), 4u);
  EXPECT_EQ(opts.seeds.front(), 100u);
  EXPECT_EQ(opts.seeds.back(), 103u);
  EXPECT_EQ(opts.jobs, 2u);
}

TEST(CampaignFlagsTest, DefaultsAndPositionalArgsIgnored) {
  const char* argv_c[] = {"tool", "scenario.ini"};
  auto opts = parse_campaign_flags(2, const_cast<char**>(argv_c), 7);
  ASSERT_EQ(opts.seeds.size(), 1u);
  EXPECT_EQ(opts.seeds.front(), 7u);
  EXPECT_EQ(opts.jobs, 1u);
}

TEST(CampaignFlagsTest, RejectsBadValues) {
  const char* argv_c[] = {"bench", "--seeds", "0"};
  EXPECT_THROW(parse_campaign_flags(3, const_cast<char**>(argv_c), 1),
               std::invalid_argument);
  const char* argv_m[] = {"bench", "--seeds"};
  EXPECT_THROW(parse_campaign_flags(2, const_cast<char**>(argv_m), 1),
               std::invalid_argument);
}

// std::atoll would have turned these into 0 (then silently into hardware
// concurrency for --jobs); strict parsing must reject them loudly.
TEST(CampaignFlagsTest, RejectsNonNumericValues) {
  const char* argv_c[] = {"bench", "--jobs", "abc"};
  EXPECT_THROW(parse_campaign_flags(3, const_cast<char**>(argv_c), 1),
               std::invalid_argument);
  // Trailing garbage after a valid prefix is just as wrong.
  const char* argv_t[] = {"bench", "--seeds", "4x"};
  EXPECT_THROW(parse_campaign_flags(3, const_cast<char**>(argv_t), 1),
               std::invalid_argument);
  const char* argv_n[] = {"bench", "--jobs", "-2"};
  EXPECT_THROW(parse_campaign_flags(3, const_cast<char**>(argv_n), 1),
               std::invalid_argument);
}

// A typo like `--seed 5` used to be silently ignored — the run proceeded
// with the default seed while the user believed they had swept five.
TEST(CampaignFlagsTest, RejectsUnknownFlags) {
  const char* argv_c[] = {"bench", "--seed", "5"};
  try {
    parse_campaign_flags(3, const_cast<char**>(argv_c), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seed"), std::string::npos);
  }
  const char* argv_f[] = {"bench", "--frobnicate"};
  EXPECT_THROW(parse_campaign_flags(2, const_cast<char**>(argv_f), 1),
               std::invalid_argument);
}

TEST(CampaignFlagsTest, PassthroughFlagsSkipTheirValue) {
  // --availability belongs to the tool; its value must be skipped even when
  // it starts with "--" (it must not be re-parsed as a flag).
  const char* argv_c[] = {"tool",   "scenario.ini", "--availability",
                          "--odd",  "--seeds",      "3"};
  auto opts = parse_campaign_flags(6, const_cast<char**>(argv_c), 10, 1,
                                   {"--availability"});
  ASSERT_EQ(opts.seeds.size(), 3u);
  EXPECT_EQ(opts.seeds.front(), 10u);
  // Without the passthrough list the same argv is rejected.
  EXPECT_THROW(parse_campaign_flags(6, const_cast<char**>(argv_c), 10),
               std::invalid_argument);
  // A passthrough flag still needs its value.
  const char* argv_m[] = {"tool", "--availability"};
  EXPECT_THROW(parse_campaign_flags(2, const_cast<char**>(argv_m), 1, 1,
                                    {"--availability"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lobster::lobsim

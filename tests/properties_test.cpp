// Cross-module property and fault-injection tests: randomized sweeps over
// seeds and inputs asserting the system-level invariants DESIGN.md §5
// promises.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/task_size_model.hpp"
#include "des/bandwidth.hpp"
#include "des/simulation.hpp"
#include "lobsim/engine.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace core = lobster::core;
namespace des = lobster::des;
namespace lobsim = lobster::lobsim;
namespace lu = lobster::util;

// Property: the task-size model's accounting identity holds across seeds,
// eviction regimes and task lengths.
class TaskSizeModelSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TaskSizeModelSweep, AccountingAndBounds) {
  const auto [seed, hours] = GetParam();
  core::TaskSizeModelParams p;
  p.num_tasklets = 3000;
  p.num_workers = 250;
  p.seed = static_cast<std::uint64_t>(seed);
  const core::ConstantEviction eviction(0.2);
  const auto r = core::simulate_task_size(p, eviction, hours);
  EXPECT_NEAR(r.total_time, r.effective_time + r.overhead_time + r.lost_time,
              1e-6);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LT(r.efficiency, 1.0);
  // All tasklets were processed exactly once: the effective time per
  // tasklet averages near the distribution mean.
  EXPECT_NEAR(r.effective_time / static_cast<double>(p.num_tasklets),
              p.tasklet_mean, 0.15 * p.tasklet_mean);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLengths, TaskSizeModelSweep,
    ::testing::Combine(::testing::Values(1, 7, 42, 1337),
                       ::testing::Values(0.5, 1.0, 4.0)));

// Property: merge planning conserves outputs for random size sets.
TEST(Properties, MergePlanningConservesForRandomSizes) {
  lu::Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 200));
    std::vector<core::OutputRecord> outputs(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      auto& o = outputs[static_cast<std::size_t>(i)];
      o.output_id = static_cast<std::uint64_t>(i + 1);
      o.bytes = rng.uniform(1e6, 5e9);
      total += o.bytes;
    }
    core::MergePolicy policy;
    policy.target_bytes = rng.uniform(1e9, 8e9);
    const auto groups = core::plan_merges(outputs, policy, false, 0);
    double grouped = 0.0;
    std::set<std::uint64_t> seen;
    for (const auto& g : groups) {
      grouped += g.total_bytes;
      for (auto id : g.output_ids)
        EXPECT_TRUE(seen.insert(id).second) << "output grouped twice";
    }
    EXPECT_NEAR(grouped, total, 1.0) << "merging must conserve bytes";
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  }
}

// Property: bandwidth-link allocation never exceeds capacity at any
// sampled instant, across random capacity changes.
TEST(Properties, LinkAllocationBoundedUnderCapacityChurn) {
  lu::Rng rng(99);
  des::Simulation sim;
  des::BandwidthLink link(sim, 1e6);
  double current_capacity = 1e6;
  bool ok = true;
  auto spawn_flow = [&](double bytes) {
    struct Runner {
      static des::Process go(des::BandwidthLink& l, double b) {
        co_await l.transfer(b);
      }
    };
    sim.spawn(Runner::go(link, bytes));
  };
  for (int i = 0; i < 100; ++i)
    sim.schedule(rng.uniform(0.0, 50.0),
                 [&, b = rng.uniform(1e4, 1e7)] { spawn_flow(b); });
  for (int i = 0; i < 20; ++i) {
    sim.schedule(rng.uniform(0.0, 60.0), [&, c = rng.uniform(1e5, 2e6)] {
      current_capacity = c;
      link.set_capacity(c);
    });
  }
  for (double t = 0.5; t < 80.0; t += 0.5) {
    sim.schedule(t, [&] {
      ok = ok && link.allocated_rate() <= current_capacity * (1.0 + 1e-9);
    });
  }
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(link.active_flows(), 0u) << "all flows must eventually drain";
}

// Property: the link conserves bytes — after every flow drains,
// bytes_moved() equals exactly the sum of what was injected, no matter how
// capacity churned (including full outages) while flows were in flight.
TEST(Properties, LinkConservesBytesMovedUnderChurn) {
  lu::Rng rng(777);
  des::Simulation sim;
  des::BandwidthLink link(sim, 2e6);
  double injected = 0.0;
  auto spawn_flow = [&](double bytes, double cap) {
    struct Runner {
      static des::Process go(des::BandwidthLink& l, double b, double c) {
        co_await l.transfer(b, c);
      }
    };
    injected += bytes;
    sim.spawn(Runner::go(link, bytes, cap));
  };
  for (int i = 0; i < 200; ++i) {
    const double cap = rng.chance(0.3) ? des::BandwidthLink::kUncapped
                                       : rng.uniform(1e4, 1e6);
    sim.schedule(rng.uniform(0.0, 50.0),
                 [&, b = rng.uniform(1e4, 1e7), cap] { spawn_flow(b, cap); });
  }
  // Capacity churn, including a hard outage window; restore at the end so
  // everything can drain.
  for (int i = 0; i < 15; ++i)
    sim.schedule(rng.uniform(0.0, 60.0),
                 [&, c = rng.uniform(1e5, 4e6)] { link.set_capacity(c); });
  sim.schedule(20.0, [&] { link.set_capacity(0.0); });
  sim.schedule(25.0, [&] { link.set_capacity(2e6); });
  sim.schedule(70.0, [&] { link.set_capacity(2e6); });
  // bytes_moved() must be monotone along the way.
  double last_moved = 0.0;
  bool monotone = true;
  for (double t = 1.0; t < 70.0; t += 1.0) {
    sim.schedule(t, [&] {
      const double m = link.bytes_moved();
      monotone = monotone && m >= last_moved;
      last_moved = m;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(link.active_flows(), 0u);
  EXPECT_NEAR(link.bytes_moved(), injected, 1e-6 * injected);
}

// Property: the allocation is max-min optimal at every sampled instant —
// each flow gets exactly min(cap, fair share), and whenever any flow is
// held below its cap the link is fully utilized (nobody could be given
// more without taking from someone else).
TEST(Properties, LinkAllocationIsMaxMinOptimal) {
  lu::Rng rng(1234);
  des::Simulation sim;
  des::BandwidthLink link(sim, 1.5e6);
  auto spawn_flow = [&](double bytes, double cap) {
    struct Runner {
      static des::Process go(des::BandwidthLink& l, double b, double c) {
        co_await l.transfer(b, c);
      }
    };
    sim.spawn(Runner::go(link, bytes, cap));
  };
  for (int i = 0; i < 150; ++i) {
    const double cap = rng.chance(0.4) ? des::BandwidthLink::kUncapped
                                       : rng.uniform(5e3, 8e5);
    sim.schedule(rng.uniform(0.0, 40.0),
                 [&, b = rng.uniform(1e5, 8e6), cap] { spawn_flow(b, cap); });
  }
  for (int i = 0; i < 10; ++i)
    sim.schedule(rng.uniform(0.0, 50.0),
                 [&, c = rng.uniform(2e5, 3e6)] { link.set_capacity(c); });
  int violations = 0;
  for (double t = 0.25; t < 60.0; t += 0.25) {
    sim.schedule(t, [&] {
      const double fair = link.fair_rate();
      bool any_below_cap = false;
      link.for_each_flow([&](std::uint64_t, double, double, double cap,
                             double rate) {
        if (rate != std::min(cap, fair)) ++violations;
        if (rate < cap) any_below_cap = true;
      });
      if (link.allocated_rate() > link.capacity() * (1.0 + 1e-9)) ++violations;
      // Pareto condition: someone is throttled below their cap only when
      // the capacity is fully handed out.
      if (any_below_cap &&
          link.allocated_rate() < link.capacity() * (1.0 - 1e-9))
        ++violations;
    });
  }
  sim.run();
  EXPECT_EQ(violations, 0);
}

// Regression for the solver precision trap: 1e5 flows whose caps are equal
// to within 1e-9 sum to just past the link capacity, putting the cap-bound
// boundary at the very tail of the prefix scan where a plain running sum
// can overshoot the capacity and drive the fair share negative — stalling
// every uncapped flow.  The Kahan prefix plus the residual clamp keep the
// share non-negative and the link fully utilized.
TEST(Properties, NearEqualCapsAtScaleDoNotStallFairShare) {
  lu::Rng rng(4242);
  des::Simulation sim;
  des::BandwidthLink link(sim, 1e5);
  struct Runner {
    static des::Process go(des::BandwidthLink& l, double b, double c) {
      co_await l.transfer(b, c);
    }
  };
  // All joins land at t=0: one batched solve, not 1e5.
  for (int i = 0; i < 100000; ++i)
    sim.spawn(Runner::go(link, 1e9, 1.0 + 1e-9 * rng.uniform()));
  // One uncapped flow rides the residual — the victim of the old trap.
  sim.spawn(Runner::go(link, 1e9, des::BandwidthLink::kUncapped));
  bool probed = false;
  sim.schedule(1.0, [&] {
    probed = true;
    EXPECT_EQ(link.active_flows(), 100001u);
    EXPECT_GE(link.fair_rate(), 0.0) << "fair share must never go negative";
    EXPECT_LE(link.allocated_rate(), link.capacity() * (1.0 + 1e-9));
    link.for_each_flow(
        [&](std::uint64_t, double, double, double, double rate) {
          EXPECT_GE(rate, 0.0);
        });
  });
  // bytes_moved() integrates up to the link's last event; with completions
  // ~1e9 s out, poke it (same-value capacity set) to integrate to t=9.
  sim.schedule(9.0, [&] { link.set_capacity(1e5); });
  sim.run_until(10.0);
  EXPECT_TRUE(probed);
  // No stall: the link ran flat out the whole window.
  EXPECT_NEAR(link.bytes_moved(), 1e5 * 9.0, 0.01 * 1e5 * 9.0);
}

// Fault injection: a corrupted journal is rejected, not misread.
TEST(Properties, CorruptJournalRejected) {
  const std::string path = ::testing::TempDir() + "corrupt.jsonl";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("{\"type\":\"gibberish\",\"id\":1}\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(core::Db::load_journal(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(core::Db::load_journal("/nonexistent/journal.jsonl"),
               std::runtime_error);
}

// Fault injection: config parser survives random byte soup (either parses
// or throws; never crashes or hangs).
TEST(Properties, ConfigParserFuzz) {
  lu::Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int len = static_cast<int>(rng.uniform_int(0, 400));
    for (int i = 0; i < len; ++i) {
      const char alphabet[] = "[]=#;\"\n abc123_./-";
      soup += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];
    }
    try {
      const auto cfg = lu::Config::parse(soup);
      (void)cfg.sections();
    } catch (const std::runtime_error&) {
      // fine: rejected with a diagnostic
    }
  }
  SUCCEED();
}

// Property: whatever the availability climate does to the workers, the
// engine conserves the workload — every tasklet is processed, nothing is
// lost or duplicated, and every unmerged output ends up merged exactly once
// (the dispatch pool and the merge planner both drain).
class AvailabilityConservationSweep
    : public ::testing::TestWithParam<
          std::tuple<lobsim::AvailabilityKind, int>> {};

TEST_P(AvailabilityConservationSweep, WorkloadConservedUnderEvictions) {
  const auto [kind, seed] = GetParam();

  lobsim::ClusterParams cluster;
  cluster.target_cores = 64;
  cluster.cores_per_worker = 8;
  cluster.ramp_seconds = 60.0;
  cluster.evictions = true;
  cluster.availability.kind = kind;
  // Harsh settings so the climates actually bite at this small scale.
  cluster.availability.scale_hours = 2.0;
  cluster.availability.burst_period_hours = 1.0;
  cluster.availability.diurnal_amplitude = 0.8;
  if (kind == lobsim::AvailabilityKind::Trace) {
    cluster.availability.trace =
        std::make_shared<const std::vector<double>>(
            core::synthesize_availability_log(
                5000, lu::Rng(7).stream("prop-trace"), 0.8, 2.0));
  }

  lobsim::WorkloadParams workload;
  workload.num_tasklets = 300;
  workload.tasklets_per_task = 6;
  workload.tasklet_cpu_mean = 600.0;
  workload.tasklet_cpu_sigma = 120.0;
  workload.merge_mode = core::MergeMode::Interleaved;

  lobsim::Engine engine(cluster, workload,
                        static_cast<std::uint64_t>(seed));

  // Ride along: the campus uplink's max-min invariants must hold at every
  // probe instant, whatever the climate does (evictions, retries, outage
  // churn all hit the link through dispatch bursts).
  int net_violations = 0;
  auto& uplink = engine.federation().uplink();
  for (double t = 300.0; t < 4.0 * 3600.0; t += 300.0) {
    engine.sim().schedule(t, [&] {
      const double fair = uplink.fair_rate();
      bool any_below_cap = false;
      uplink.for_each_flow([&](std::uint64_t, double, double, double cap,
                               double rate) {
        if (rate != std::min(cap, fair)) ++net_violations;
        if (rate < cap) any_below_cap = true;
      });
      if (uplink.allocated_rate() > uplink.capacity() * (1.0 + 1e-9))
        ++net_violations;
      if (any_below_cap &&
          uplink.allocated_rate() < uplink.capacity() * (1.0 - 1e-9))
        ++net_violations;
    });
  }

  const auto& m = engine.run(10.0 * 86400.0);
  EXPECT_EQ(net_violations, 0);

  // No tasklet lost or duplicated.
  EXPECT_EQ(m.tasklets_processed, workload.num_tasklets);
  EXPECT_EQ(engine.dispatch_policy().tasklets_pending(), 0u);
  std::uint64_t per_site_total = 0;
  for (auto n : engine.per_site_tasklets()) per_site_total += n;
  EXPECT_EQ(per_site_total, workload.num_tasklets);

  // Every unmerged output was merged exactly once: the planner holds no
  // unplanned outputs and the dispatch queue holds no unrun merge tasks.
  EXPECT_TRUE(engine.merge_planner().drained());
  EXPECT_EQ(engine.dispatch_policy().merge_backlog(), 0u);
  EXPECT_GT(m.merge_tasks_completed, 0u);

  // Retry accounting is consistent with the failure counters: wasted
  // dispatches happen iff some task was evicted or failed.
  if (m.tasks_evicted + m.tasks_failed == 0) {
    EXPECT_EQ(m.tasklets_retried, 0u);
  }
  if (m.tasklets_retried > 0) {
    EXPECT_GT(m.tasks_evicted + m.tasks_failed, 0u);
  }
  EXPECT_GT(m.makespan, 0.0);
}

std::string climate_param_name(
    const ::testing::TestParamInfo<std::tuple<lobsim::AvailabilityKind, int>>&
        info) {
  std::string name = lobsim::to_string(std::get<0>(info.param));
  for (auto& c : name)
    if (c == '-') c = '_';
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllClimates, AvailabilityConservationSweep,
    ::testing::Combine(
        ::testing::Values(lobsim::AvailabilityKind::Weibull,
                          lobsim::AvailabilityKind::Trace,
                          lobsim::AvailabilityKind::Diurnal,
                          lobsim::AvailabilityKind::AdversarialBurst),
        ::testing::Values(2015, 99)),
    climate_param_name);

// Property: DB tasklet ledger is conserved through arbitrary interleavings
// of create/finish(success|evict)/merge operations.
TEST(Properties, DbLedgerConservedUnderRandomOps) {
  lu::Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    core::Db db;
    const std::size_t n = 40;
    std::vector<core::Tasklet> tasklets(n);
    for (std::size_t i = 0; i < n; ++i) tasklets[i].id = i + 1;
    db.register_tasklets(tasklets);
    std::vector<std::uint64_t> open_tasks;
    for (int op = 0; op < 200; ++op) {
      if (!open_tasks.empty() && rng.chance(0.5)) {
        // finish a random open task
        const std::size_t k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(open_tasks.size()) - 1));
        const auto id = open_tasks[k];
        open_tasks.erase(open_tasks.begin() + static_cast<long>(k));
        core::TaskRecord rec;
        rec.status = rng.chance(0.3) ? core::TaskStatus::Evicted
                                     : core::TaskStatus::Done;
        db.finish_task(id, rec);
        if (rec.status == core::TaskStatus::Done)
          db.record_output(id, "out", 1e6);
      } else {
        const auto pending = db.pending_tasklets(
            static_cast<std::size_t>(rng.uniform_int(1, 5)));
        if (pending.empty()) continue;
        open_tasks.push_back(
            db.create_task(core::TaskKind::Analysis, pending, 0.0));
      }
    }
    // Ledger: every tasklet is in exactly one state and the counts add up.
    std::size_t total = 0;
    for (const auto& [status, count] : db.tasklet_status_counts())
      total += count;
    EXPECT_EQ(total, n);
  }
}

// Tests for the Global Pool baseline model (central fair-share scheduling).
#include <gtest/gtest.h>

#include "lobsim/global_pool.hpp"

namespace lobsim = lobster::lobsim;

TEST(GlobalPool, SingleUserBoundedByParallelism) {
  // 100 cores available but the user can only run 10-wide: 1000 core-s of
  // work takes 100 s.
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"u", 0.0, 1000.0, 10.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].turnaround(), 100.0, 1e-6);
}

TEST(GlobalPool, FairShareBetweenEqualUsers) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"a", 0.0, 5000.0, 1e9}, {"b", 0.0, 5000.0, 1e9}});
  // Each gets 50 cores: both finish at t = 100.
  EXPECT_NEAR(out[0].turnaround(), 100.0, 1e-6);
  EXPECT_NEAR(out[1].turnaround(), 100.0, 1e-6);
}

TEST(GlobalPool, SmallUserFinishesAndBigUserSpeedsUp) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"big", 0.0, 10000.0, 1e9}, {"small", 0.0, 1000.0, 1e9}});
  // small: 50 cores -> done at 20 s.  big: 50 cores for 20 s (1000 done),
  // then 100 cores for the remaining 9000 -> 20 + 90 = 110 s.
  EXPECT_NEAR(out[1].turnaround(), 20.0, 1e-6);
  EXPECT_NEAR(out[0].turnaround(), 110.0, 1e-6);
}

TEST(GlobalPool, LateSubmitterQueuesBehindBacklog) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"backlog", 0.0, 20000.0, 1e9}, {"late", 100.0, 1000.0, 1e9}});
  // At t=100 the backlog has 10000 core-s left; both share 50/50.
  // late: 1000 @ 50 cores -> finishes at t = 120 (turnaround 20).
  EXPECT_NEAR(out[1].turnaround(), 20.0, 1e-6);
}

TEST(GlobalPool, ValidatesInput) {
  EXPECT_THROW(lobsim::simulate_global_pool(0.0, {{"u", 0.0, 1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(lobsim::simulate_global_pool(10.0, {{"u", 0.0, 0.0, 1.0}}),
               std::invalid_argument);
}

TEST(LobsterBurst, CompletionArithmetic) {
  EXPECT_NEAR(lobsim::lobster_burst_completion(65000.0, 100.0, 0.65), 1000.0,
              1e-9);
  EXPECT_THROW(lobsim::lobster_burst_completion(1.0, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(lobsim::lobster_burst_completion(1.0, 1.0, 1.5),
               std::invalid_argument);
}

TEST(GlobalPool, ContentionSlowsTheDeadlineUser) {
  // The §7 comparison in miniature: the same campaign with and without a
  // crowded pool.
  std::vector<lobsim::PoolUser> crowded;
  for (int i = 0; i < 50; ++i)
    crowded.push_back({"bg" + std::to_string(i), 0.0, 1e6, 1e9});
  crowded.push_back({"me", 0.0, 1e6, 1e9});
  const auto busy = lobsim::simulate_global_pool(1000.0, crowded);
  const auto quiet =
      lobsim::simulate_global_pool(1000.0, {{"me", 0.0, 1e6, 1e9}});
  EXPECT_GT(busy.back().turnaround(), 10.0 * quiet.back().turnaround());
}

// ---- the discrete live pool (simulate_global_pool_live) ----

TEST(GlobalPoolLive, SingleUserExactWhenTaskletsDivide) {
  // 1000 core-s at 10-wide with 100 s tasklets: exactly one wave of 10
  // tasklets every 100 s, 100 s total per wave -> same as the fluid model.
  const auto live = lobsim::simulate_global_pool_live(
      100.0, {{"u", 0.0, 1000.0, 10.0}}, 100.0);
  ASSERT_EQ(live.outcomes.size(), 1u);
  EXPECT_NEAR(live.outcomes[0].turnaround(), 100.0, 1e-6);
  EXPECT_EQ(live.tasklets_dispatched, 10u);
  EXPECT_NEAR(live.aggregate_goodput, 10.0, 1e-6);
}

TEST(GlobalPoolLive, RemainderTaskletPreservesVolume) {
  // 1050 core-s with 100 s tasklets: 10 full tasklets plus a 50 s stub.
  const auto live = lobsim::simulate_global_pool_live(
      1.0, {{"u", 0.0, 1050.0, 1.0}}, 100.0);
  EXPECT_EQ(live.tasklets_dispatched, 11u);
  EXPECT_NEAR(live.outcomes[0].turnaround(), 1050.0, 1e-6);
}

TEST(GlobalPoolLive, FairShareMatchesFluidModel) {
  // The fluid answer: both equal users finish at t = 100 on 50 cores each.
  // The discrete pool with 10 s tasklets alternates dispatches but delivers
  // the same shares.
  const auto live = lobsim::simulate_global_pool_live(
      100.0, {{"a", 0.0, 5000.0, 1e9}, {"b", 0.0, 5000.0, 1e9}}, 10.0);
  EXPECT_NEAR(live.outcomes[0].turnaround(), 100.0, 1.0);
  EXPECT_NEAR(live.outcomes[1].turnaround(), 100.0, 1.0);
}

TEST(GlobalPoolLive, LateSubmitterQueuesBehindBacklog) {
  const auto live = lobsim::simulate_global_pool_live(
      100.0, {{"backlog", 0.0, 20000.0, 1e9}, {"late", 100.0, 1000.0, 1e9}},
      5.0);
  // Fluid model: late finishes 20 s after arriving.  Discrete granularity
  // costs at most a couple of tasklet lengths.
  EXPECT_NEAR(live.outcomes[1].turnaround(), 20.0, 10.0);
}

TEST(GlobalPoolLive, CrossChecksClosedFormOnContendedPool) {
  // Scaled-down fig15: a contended pool with heterogeneous volumes and
  // parallelism caps.  The live run's aggregate goodput must agree with the
  // closed-form fluid allocation within the 5% acceptance bound.
  std::vector<lobsim::PoolUser> users;
  for (int i = 0; i < 20; ++i) {
    users.push_back({"bg" + std::to_string(i), 0.0,
                     50000.0 + 7919.0 * i, 40.0 + 13.0 * (i % 7)});
  }
  users.push_back({"ours", 0.0, 400000.0, 200.0});
  const auto model = lobsim::simulate_global_pool(1000.0, users);
  double model_makespan = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    model_makespan = std::max(model_makespan, model[i].finish_time);
    total += users[i].core_seconds;
  }
  const auto live = lobsim::simulate_global_pool_live(1000.0, users, 60.0);
  const double model_goodput = total / model_makespan;
  EXPECT_NEAR(live.aggregate_goodput, model_goodput, 0.05 * model_goodput);
  EXPECT_NEAR(live.outcomes.back().turnaround(), model.back().turnaround(),
              0.05 * model.back().turnaround());
  // Every tasklet completion is a kernel event (arrival callbacks add more).
  EXPECT_GE(live.events_executed, live.tasklets_dispatched);
}

TEST(GlobalPoolLive, ValidatesInput) {
  EXPECT_THROW(lobsim::simulate_global_pool_live(0.5, {{"u", 0.0, 1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      lobsim::simulate_global_pool_live(10.0, {{"u", 0.0, 1.0, 1.0}}, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      lobsim::simulate_global_pool_live(10.0, {{"u", 0.0, 0.0, 1.0}}),
      std::invalid_argument);
}

// Tests for the Global Pool baseline model (central fair-share scheduling).
#include <gtest/gtest.h>

#include "lobsim/global_pool.hpp"

namespace lobsim = lobster::lobsim;

TEST(GlobalPool, SingleUserBoundedByParallelism) {
  // 100 cores available but the user can only run 10-wide: 1000 core-s of
  // work takes 100 s.
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"u", 0.0, 1000.0, 10.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].turnaround(), 100.0, 1e-6);
}

TEST(GlobalPool, FairShareBetweenEqualUsers) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"a", 0.0, 5000.0, 1e9}, {"b", 0.0, 5000.0, 1e9}});
  // Each gets 50 cores: both finish at t = 100.
  EXPECT_NEAR(out[0].turnaround(), 100.0, 1e-6);
  EXPECT_NEAR(out[1].turnaround(), 100.0, 1e-6);
}

TEST(GlobalPool, SmallUserFinishesAndBigUserSpeedsUp) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"big", 0.0, 10000.0, 1e9}, {"small", 0.0, 1000.0, 1e9}});
  // small: 50 cores -> done at 20 s.  big: 50 cores for 20 s (1000 done),
  // then 100 cores for the remaining 9000 -> 20 + 90 = 110 s.
  EXPECT_NEAR(out[1].turnaround(), 20.0, 1e-6);
  EXPECT_NEAR(out[0].turnaround(), 110.0, 1e-6);
}

TEST(GlobalPool, LateSubmitterQueuesBehindBacklog) {
  const auto out = lobsim::simulate_global_pool(
      100.0, {{"backlog", 0.0, 20000.0, 1e9}, {"late", 100.0, 1000.0, 1e9}});
  // At t=100 the backlog has 10000 core-s left; both share 50/50.
  // late: 1000 @ 50 cores -> finishes at t = 120 (turnaround 20).
  EXPECT_NEAR(out[1].turnaround(), 20.0, 1e-6);
}

TEST(GlobalPool, ValidatesInput) {
  EXPECT_THROW(lobsim::simulate_global_pool(0.0, {{"u", 0.0, 1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(lobsim::simulate_global_pool(10.0, {{"u", 0.0, 0.0, 1.0}}),
               std::invalid_argument);
}

TEST(LobsterBurst, CompletionArithmetic) {
  EXPECT_NEAR(lobsim::lobster_burst_completion(65000.0, 100.0, 0.65), 1000.0,
              1e-9);
  EXPECT_THROW(lobsim::lobster_burst_completion(1.0, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(lobsim::lobster_burst_completion(1.0, 1.0, 1.5),
               std::invalid_argument);
}

TEST(GlobalPool, ContentionSlowsTheDeadlineUser) {
  // The §7 comparison in miniature: the same campaign with and without a
  // crowded pool.
  std::vector<lobsim::PoolUser> crowded;
  for (int i = 0; i < 50; ++i)
    crowded.push_back({"bg" + std::to_string(i), 0.0, 1e6, 1e9});
  crowded.push_back({"me", 0.0, 1e6, 1e9});
  const auto busy = lobsim::simulate_global_pool(1000.0, crowded);
  const auto quiet =
      lobsim::simulate_global_pool(1000.0, {{"me", 0.0, 1e6, 1e9}});
  EXPECT_GT(busy.back().turnaround(), 10.0 * quiet.back().turnaround());
}

// Golden-metrics regression harness: a fixed campaign (four seeds through
// the weibull and diurnal climates) is snapshotted field by field against a
// checked-in expectation file.  Any drift in the engine's deterministic
// output — an RNG stream reordered, a metric counted differently, a model
// subtly changed — fails with a readable per-line diff instead of passing
// silently.
//
// To regenerate after an *intentional* behaviour change:
//
//   LOBSTER_UPDATE_GOLDEN=1 ./build/tests/golden_metrics_test
//
// and commit the rewritten tests/golden/availability_golden.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lobsim/campaign.hpp"
#include "util/units.hpp"

#ifndef LOBSTER_GOLDEN_DIR
#error "LOBSTER_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace lobster::lobsim {
namespace {

const char* kGoldenPath = LOBSTER_GOLDEN_DIR "/availability_golden.txt";

RunSpec golden_spec(AvailabilityKind kind) {
  RunSpec spec;
  spec.label = to_string(kind);
  spec.cluster.target_cores = 64;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.cluster.availability.kind = kind;
  spec.workload.num_tasklets = 300;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.time_cap = 10.0 * 86400.0;
  return spec;
}

// %.17g round-trips doubles exactly: the golden file pins bit-for-bit
// behaviour, not a tolerance band.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> snapshot_lines() {
  Campaign campaign(2);
  for (auto kind : {AvailabilityKind::Weibull, AvailabilityKind::Diurnal})
    campaign.add_seed_sweep(golden_spec(kind), {2015, 2016, 2017, 2018});
  // The lifetime-aware sizer queries the availability model at every pull,
  // so pin it too: drift in expected_lifetime() or in the sizing math shows
  // up here even if the fixed-size policies are untouched.
  RunSpec lifetime = golden_spec(AvailabilityKind::Weibull);
  lifetime.label = "weibull-lifetime";
  lifetime.workload.dispatch = DispatchMode::Lifetime;
  campaign.add_seed_sweep(lifetime, {2015, 2016, 2017, 2018});
  // fig09-mini: the Figure 9 regime at golden scale — streaming analysis
  // over a deliberately undersized campus uplink (heavily oversubscribed,
  // so the max-min water-filling runs on every dispatch wave) with a
  // transient wide-area outage mid-run (capacity -> 0 and back, broken
  // streams, failed opens).  Pins the BandwidthLink allocation bit-for-bit:
  // any drift in fair-share arithmetic, completion epsilons, or completion
  // *ordering* surfaces here as a per-line diff.
  RunSpec fig09 = golden_spec(AvailabilityKind::Weibull);
  fig09.label = "fig09-stream";
  fig09.cluster.federation.campus_uplink_rate = util::gbit_per_s(1);
  fig09.cluster.federation.per_stream_rate = 3.0e7;
  fig09.workload.tasklet_input_bytes = 390e6;
  fig09.workload.read_fraction = 0.28;
  fig09.outage_start = 1800.0;
  fig09.outage_duration = 600.0;
  campaign.add_seed_sweep(fig09, {2015, 2016, 2017, 2018});
  campaign.run();

  std::vector<std::string> lines;
  for (const auto& r : campaign.results()) {
    EXPECT_TRUE(r.ok()) << r.error;
    if (!r.ok()) continue;
    const std::string tag = r.label + "/" + std::to_string(r.seed) + " ";
    const auto& s = r.stats;
    auto field = [&](const char* name, const std::string& value) {
      lines.push_back(tag + name + " = " + value);
    };
    field("makespan", num(s.makespan));
    field("last_analysis_finish", num(s.last_analysis_finish));
    field("last_merge_finish", num(s.last_merge_finish));
    field("bytes_streamed", num(s.bytes_streamed));
    field("bytes_staged", num(s.bytes_staged));
    field("bytes_staged_out", num(s.bytes_staged_out));
    field("tasks_completed", std::to_string(s.tasks_completed));
    field("tasks_failed", std::to_string(s.tasks_failed));
    field("tasks_evicted", std::to_string(s.tasks_evicted));
    field("merge_tasks_completed", std::to_string(s.merge_tasks_completed));
    field("tasklets_processed", std::to_string(s.tasklets_processed));
    field("tasklets_retried", std::to_string(s.tasklets_retried));
    field("peak_running", std::to_string(s.peak_running));
    field("completed", s.completed ? "true" : "false");
    field("breakdown.cpu", num(s.breakdown.cpu));
    field("breakdown.io", num(s.breakdown.io));
    field("breakdown.failed", num(s.breakdown.failed));
    field("breakdown.stage_in", num(s.breakdown.stage_in));
    field("breakdown.stage_out", num(s.breakdown.stage_out));
  }
  return lines;
}

std::vector<std::string> read_lines(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return {};
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  return lines;
}

TEST(GoldenMetrics, AvailabilityCampaignMatchesSnapshot) {
  const auto current = snapshot_lines();
  ASSERT_FALSE(current.empty());

  if (std::getenv("LOBSTER_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(kGoldenPath, "w");
    ASSERT_NE(f, nullptr) << "cannot write " << kGoldenPath;
    std::fputs(
        "# Golden metrics: weibull + diurnal climates (fifo dispatch), a\n"
        "# weibull lifetime-dispatch sweep, and the fig09-stream saturated-\n"
        "# uplink + outage sweep, seeds 2015-2018.\n"
        "# Regenerate with LOBSTER_UPDATE_GOLDEN=1 (see "
        "golden_metrics_test.cpp).\n",
        f);
    for (const auto& line : current) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
    std::fclose(f);
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  const auto expected = read_lines(kGoldenPath);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << kGoldenPath
      << " — run once with LOBSTER_UPDATE_GOLDEN=1 and commit it";

  // Per-line comparison: a drifted metric names itself in the failure.
  std::size_t mismatches = 0;
  const std::size_t n = std::min(expected.size(), current.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] == current[i]) continue;
    ++mismatches;
    ADD_FAILURE() << "golden line " << i + 1 << " drifted:\n"
                  << "  expected: " << expected[i] << "\n"
                  << "  actual:   " << current[i];
    if (mismatches >= 10) {
      ADD_FAILURE() << "(further mismatches suppressed)";
      break;
    }
  }
  EXPECT_EQ(expected.size(), current.size())
      << "golden file has " << expected.size() << " lines, snapshot has "
      << current.size();
  if (mismatches > 0)
    ADD_FAILURE()
        << "deterministic metrics drifted from " << kGoldenPath
        << "; if the change is intentional, regenerate with "
           "LOBSTER_UPDATE_GOLDEN=1 and commit the new golden file";
}

}  // namespace
}  // namespace lobster::lobsim

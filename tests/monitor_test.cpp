// Tests for the Monitor (timelines, Figure 8 breakdown, §5 diagnosis
// advisor), the instrumented wrapper, and the workflow configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/config.hpp"
#include "core/monitor.hpp"
#include "core/wrapper.hpp"

namespace core = lobster::core;
namespace wq = lobster::wq;
using namespace std::chrono_literals;

namespace {
core::TaskRecord record_with(double cpu, double io, double stage_in,
                             double stage_out, double env, double dispatch,
                             double finish_time,
                             core::TaskStatus status = core::TaskStatus::Done,
                             double lost = 0.0) {
  core::TaskRecord r;
  r.status = status;
  r.finish_time = finish_time;
  r.cpu_time = cpu;
  r.lost_time = lost;
  auto seg = [&r](core::Segment s) -> double& {
    return r.segment_time[static_cast<std::size_t>(s)];
  };
  seg(core::Segment::Execute) = cpu;
  seg(core::Segment::ExecuteIo) = io;
  seg(core::Segment::StageIn) = stage_in;
  seg(core::Segment::StageOut) = stage_out;
  seg(core::Segment::EnvSetup) = env;
  seg(core::Segment::Dispatch) = dispatch;
  return r;
}
}  // namespace

// ---------------------------------------------------------------- monitor ----

TEST(Monitor, BreakdownAccumulates) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(100, 20, 10, 5, 3, 2, 30.0));
  mon.on_task_finished(record_with(200, 40, 20, 10, 6, 4, 90.0));
  const auto b = mon.breakdown();
  EXPECT_DOUBLE_EQ(b.cpu, 300.0);
  EXPECT_DOUBLE_EQ(b.io, 60.0);
  EXPECT_DOUBLE_EQ(b.stage_in, 30.0);
  EXPECT_DOUBLE_EQ(b.stage_out, 15.0);
  EXPECT_DOUBLE_EQ(b.other, 15.0);
  EXPECT_DOUBLE_EQ(b.failed, 0.0);
  EXPECT_EQ(mon.tasks_seen(), 2u);
}

TEST(Monitor, FailedTasksChargedToFailed) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(100, 0, 10, 0, 5, 5, 30.0,
                                   core::TaskStatus::Failed));
  const auto b = mon.breakdown();
  EXPECT_DOUBLE_EQ(b.cpu, 0.0);
  EXPECT_DOUBLE_EQ(b.failed, 120.0);
  EXPECT_EQ(mon.tasks_failed(), 1u);
  EXPECT_DOUBLE_EQ(mon.failed_timeline().sum(0), 1.0);
}

TEST(Monitor, TimelinesBinByFinishTime) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(10, 0, 0, 0, 0, 0, 30.0));
  mon.on_task_finished(record_with(10, 0, 0, 0, 0, 0, 45.0));
  mon.on_task_finished(record_with(10, 0, 0, 0, 0, 0, 130.0));
  EXPECT_DOUBLE_EQ(mon.completed_timeline().sum(0), 2.0);
  EXPECT_DOUBLE_EQ(mon.completed_timeline().sum(2), 1.0);
  mon.sample_running(10.0, 500);
  mon.sample_running(20.0, 700);
  EXPECT_DOUBLE_EQ(mon.running_timeline().mean_level(0), 600.0);
}

TEST(Monitor, EfficiencyTimelineIsCpuOverWall) {
  core::Monitor mon(60.0);
  // cpu 70, wall 100 (cpu 70 + io 20 + stage 10) -> 0.7 in bin 0.
  mon.on_task_finished(record_with(70, 20, 10, 0, 0, 0, 30.0));
  const auto eff = mon.efficiency_timeline();
  ASSERT_FALSE(eff.empty());
  EXPECT_NEAR(eff[0], 0.7, 1e-9);
}

TEST(Monitor, SetupAndStageoutTimelines) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(10, 0, 0, 8.0, 400.0, 0, 30.0));
  mon.on_task_finished(record_with(10, 0, 0, 4.0, 200.0, 0, 40.0));
  const auto setup = mon.setup_time_timeline();
  const auto stageout = mon.stageout_time_timeline();
  EXPECT_NEAR(setup[0], 300.0, 1e-9);
  EXPECT_NEAR(stageout[0], 6.0, 1e-9);
}

TEST(Monitor, EmptyMonitorTimelinesAreEmptyNotNan) {
  core::Monitor mon(60.0);
  EXPECT_TRUE(mon.efficiency_timeline().empty());
  EXPECT_TRUE(mon.setup_time_timeline().empty());
  EXPECT_TRUE(mon.stageout_time_timeline().empty());
  EXPECT_TRUE(mon.diagnose().empty());
}

TEST(Monitor, ZeroWallRecordYieldsZeroEfficiencyNotNan) {
  core::Monitor mon(60.0);
  // A record with no recorded wall time at all: every per-bin ratio must
  // come out 0, never NaN.
  mon.on_task_finished(record_with(0, 0, 0, 0, 0, 0, 30.0));
  const auto eff = mon.efficiency_timeline();
  ASSERT_FALSE(eff.empty());
  EXPECT_TRUE(std::isfinite(eff[0]));
  EXPECT_DOUBLE_EQ(eff[0], 0.0);
}

TEST(Monitor, EmptyBinsReportZeroMeansNotNan) {
  core::Monitor mon(60.0);
  // Completions in bins 0 and 2; bin 1 has no finishers and must read 0.
  mon.on_task_finished(record_with(10, 0, 0, 4.0, 100.0, 0, 30.0));
  mon.on_task_finished(record_with(10, 0, 0, 8.0, 300.0, 0, 150.0));
  const auto setup = mon.setup_time_timeline();
  const auto stageout = mon.stageout_time_timeline();
  const auto eff = mon.efficiency_timeline();
  ASSERT_GE(setup.size(), 3u);
  EXPECT_DOUBLE_EQ(setup[1], 0.0);
  EXPECT_DOUBLE_EQ(stageout[1], 0.0);
  EXPECT_DOUBLE_EQ(eff[1], 0.0);
  EXPECT_TRUE(std::isfinite(setup[1]) && std::isfinite(stageout[1]) &&
              std::isfinite(eff[1]));
  EXPECT_NEAR(setup[2], 300.0, 1e-9);
}

TEST(Advisor, HighLostRuntimeSuggestsSmallerTasks) {
  core::Monitor mon(60.0);
  mon.on_task_finished(
      record_with(100, 0, 0, 0, 0, 0, 30.0, core::TaskStatus::Done, 80.0));
  const auto diags = mon.diagnose();
  ASSERT_FALSE(diags.empty());
  bool found = false;
  for (const auto& d : diags)
    found |= d.advice.find("task size") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Advisor, LongDispatchSuggestsForemen) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(100, 0, 0, 0, 0, 50.0, 30.0));
  const auto diags = mon.diagnose();
  bool found = false;
  for (const auto& d : diags)
    found |= d.advice.find("foremen") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Advisor, LongSetupSuggestsSquid) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(100, 0, 0, 0, 60.0, 0, 30.0));
  const auto diags = mon.diagnose();
  bool found = false;
  for (const auto& d : diags)
    found |= d.advice.find("squid") != std::string::npos ||
             d.advice.find("proxies") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Advisor, LongStagingSuggestsChirp) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(100, 0, 30.0, 30.0, 0, 0, 30.0));
  const auto diags = mon.diagnose();
  bool found = false;
  for (const auto& d : diags)
    found |= d.advice.find("Chirp") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Advisor, HealthyRunHasNoDiagnoses) {
  core::Monitor mon(60.0);
  mon.on_task_finished(record_with(1000, 50, 10, 10, 10, 5, 30.0));
  EXPECT_TRUE(mon.diagnose().empty());
}

// ---- threshold edges: triggers are strict, severity = (v - th) / th ----

TEST(Advisor, ExactlyAtLostThresholdDoesNotTrigger) {
  core::Monitor mon(60.0);
  // total = 90 cpu + 10 lost = 100; lost fraction exactly 0.10.
  mon.on_task_finished(
      record_with(90, 0, 0, 0, 0, 0, 30.0, core::TaskStatus::Done, 10.0));
  EXPECT_TRUE(mon.diagnose().empty());
}

TEST(Advisor, JustPastLostThresholdScalesLinearly) {
  core::Monitor mon(60.0);
  // lost fraction 0.12 -> severity (0.12 - 0.10) / 0.10 = 0.2.
  mon.on_task_finished(
      record_with(88, 0, 0, 0, 0, 0, 30.0, core::TaskStatus::Done, 12.0));
  const auto diags = mon.diagnose();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].advice.find("task size"), std::string::npos);
  EXPECT_NEAR(diags[0].severity, 0.2, 1e-9);
}

TEST(Advisor, ExactlyAtDispatchThresholdDoesNotTrigger) {
  core::Monitor mon(60.0);
  // dispatch fraction exactly 0.05 of a 100 s total.
  mon.on_task_finished(record_with(95, 0, 0, 0, 0, 5.0, 30.0));
  EXPECT_TRUE(mon.diagnose().empty());
}

TEST(Advisor, JustPastDispatchThresholdScalesLinearly) {
  core::Monitor mon(60.0);
  // dispatch fraction 0.08 -> severity (0.08 - 0.05) / 0.05 = 0.6.
  mon.on_task_finished(record_with(92, 0, 0, 0, 0, 8.0, 30.0));
  const auto diags = mon.diagnose();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].advice.find("foremen"), std::string::npos);
  EXPECT_NEAR(diags[0].severity, 0.6, 1e-9);
}

TEST(Advisor, ExactlyAtSetupThresholdDoesNotTrigger) {
  core::Monitor mon(60.0);
  // env-setup ("other") fraction exactly 0.15.
  mon.on_task_finished(record_with(85, 0, 0, 0, 15.0, 0, 30.0));
  EXPECT_TRUE(mon.diagnose().empty());
}

TEST(Advisor, JustPastSetupThresholdScalesLinearly) {
  core::Monitor mon(60.0);
  // setup fraction 0.20 -> severity (0.20 - 0.15) / 0.15 = 1/3.
  mon.on_task_finished(record_with(80, 0, 0, 0, 20.0, 0, 30.0));
  const auto diags = mon.diagnose();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].advice.find("squid"), std::string::npos);
  EXPECT_NEAR(diags[0].severity, 0.05 / 0.15, 1e-9);
}

TEST(Advisor, ExactlyAtStagingThresholdDoesNotTrigger) {
  core::Monitor mon(60.0);
  // stage-in + stage-out fraction exactly 0.25.
  mon.on_task_finished(record_with(75, 0, 15.0, 10.0, 0, 0, 30.0));
  EXPECT_TRUE(mon.diagnose().empty());
}

TEST(Advisor, JustPastStagingThresholdScalesLinearly) {
  core::Monitor mon(60.0);
  // staging fraction 0.30 -> severity (0.30 - 0.25) / 0.25 = 0.2.
  mon.on_task_finished(record_with(70, 0, 20.0, 10.0, 0, 0, 30.0));
  const auto diags = mon.diagnose();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].advice.find("Chirp"), std::string::npos);
  EXPECT_NEAR(diags[0].severity, 0.2, 1e-9);
}

TEST(Advisor, SeverityCapsAtOne) {
  core::Monitor mon(60.0);
  // lost fraction ~0.9: (0.9 - 0.1) / 0.1 = 8, clamped to 1.0.
  mon.on_task_finished(
      record_with(10, 0, 0, 0, 0, 0, 30.0, core::TaskStatus::Done, 90.0));
  const auto diags = mon.diagnose();
  ASSERT_FALSE(diags.empty());
  EXPECT_DOUBLE_EQ(diags[0].severity, 1.0);
}

TEST(Advisor, MultiSymptomReportsEachWithItsOwnSeverity) {
  core::Monitor mon(60.0);
  // total = 50 cpu + 20 staging + 30 lost = 100:
  //   lost 0.30    -> severity (0.30 - 0.10) / 0.10 = 1.0 (capped, = 2.0)
  //   staging 0.20 -> below 0.25, NOT flagged
  //   setup 0.30 (other = lost) -> severity (0.30 - 0.15) / 0.15 = 1.0
  mon.on_task_finished(
      record_with(50, 0, 10.0, 10.0, 0, 0, 30.0, core::TaskStatus::Done,
                  30.0));
  const auto diags = mon.diagnose();
  ASSERT_EQ(diags.size(), 2u);
  for (std::size_t i = 1; i < diags.size(); ++i)
    EXPECT_GE(diags[i - 1].severity, diags[i].severity);
  bool lost = false, setup = false;
  for (const auto& d : diags) {
    lost |= d.advice.find("task size") != std::string::npos;
    setup |= d.advice.find("squid") != std::string::npos;
  }
  EXPECT_TRUE(lost && setup);
}

TEST(Advisor, SortedBySeverity) {
  core::Monitor mon(60.0);
  // Both staging and lost-time problems; lost is far worse.
  mon.on_task_finished(
      record_with(10, 0, 20.0, 20.0, 0, 0, 30.0, core::TaskStatus::Done,
                  500.0));
  const auto diags = mon.diagnose();
  ASSERT_GE(diags.size(), 2u);
  for (std::size_t i = 1; i < diags.size(); ++i)
    EXPECT_GE(diags[i - 1].severity, diags[i].severity);
}

// ---------------------------------------------------------------- wrapper ----

TEST(Wrapper, RunsAllSegmentsAndTimesThem) {
  bool env = false, in = false, ran = false, out = false, clean = false;
  auto work = core::make_wrapper({
      .check_machine = [](wq::TaskContext&) { return true; },
      .setup_environment =
          [&](wq::TaskContext&) {
            env = true;
            std::this_thread::sleep_for(5ms);
            return true;
          },
      .stage_in = [&](wq::TaskContext&) { return in = true; },
      .execute =
          [&](wq::TaskContext&) {
            ran = true;
            return 0;
          },
      .stage_out = [&](wq::TaskContext&) { return out = true; },
      .cleanup = [&](wq::TaskContext&) { return clean = true; },
  });
  wq::TaskContext ctx;
  EXPECT_EQ(work(ctx), 0);
  EXPECT_TRUE(env && in && ran && out && clean);
  EXPECT_GE(std::strtod(ctx.outputs.at(core::wrapper_keys::kEnvSetup).c_str(),
                        nullptr),
            0.004);
  EXPECT_TRUE(ctx.outputs.count(core::wrapper_keys::kExecute));
}

TEST(Wrapper, SegmentFailureCodes) {
  wq::TaskContext ctx;
  auto env_fail = core::make_wrapper(
      {.setup_environment = [](wq::TaskContext&) { return false; }});
  EXPECT_EQ(env_fail(ctx), static_cast<int>(wq::TaskExit::EnvironmentFailure));
  auto in_fail =
      core::make_wrapper({.stage_in = [](wq::TaskContext&) { return false; }});
  EXPECT_EQ(in_fail(ctx), static_cast<int>(wq::TaskExit::StageInFailure));
  auto exec_fail =
      core::make_wrapper({.execute = [](wq::TaskContext&) { return 42; }});
  EXPECT_EQ(exec_fail(ctx), 42);
  auto out_fail = core::make_wrapper(
      {.stage_out = [](wq::TaskContext&) { return false; }});
  EXPECT_EQ(out_fail(ctx), static_cast<int>(wq::TaskExit::StageOutFailure));
}

TEST(Wrapper, SkippedStagesSucceedWithZeroTime) {
  auto work = core::make_wrapper({});
  wq::TaskContext ctx;
  EXPECT_EQ(work(ctx), 0);
  EXPECT_DOUBLE_EQ(
      std::strtod(ctx.outputs.at(core::wrapper_keys::kStageIn).c_str(),
                  nullptr),
      0.0);
}

TEST(Wrapper, EvictionBetweenSegments) {
  auto work = core::make_wrapper({
      .stage_in =
          [](wq::TaskContext& ctx) {
            ctx.cancel.cancel();  // evicted mid stage-in
            return true;
          },
      .execute = [](wq::TaskContext&) { return 0; },
  });
  wq::TaskContext ctx;
  EXPECT_EQ(work(ctx), static_cast<int>(wq::TaskExit::Evicted));
}

TEST(Wrapper, FillRecordFromResult) {
  wq::TaskResult result;
  result.worker_name = "w7";
  result.exit_code = 0;
  result.dispatch_time = 1.5;
  result.outputs[core::wrapper_keys::kEnvSetup] = "2.0";
  result.outputs[core::wrapper_keys::kExecute] = "100.0";
  result.outputs[core::wrapper_keys::kCpuSeconds] = "80.0";
  result.outputs[core::wrapper_keys::kIoSeconds] = "20.0";
  result.outputs[core::wrapper_keys::kStageOut] = "3.0";
  result.outputs[core::wrapper_keys::kOutputBytes] = "5e7";
  core::TaskRecord rec;
  core::fill_record_from_result(result, rec);
  EXPECT_EQ(rec.status, core::TaskStatus::Done);
  EXPECT_EQ(rec.worker, "w7");
  EXPECT_DOUBLE_EQ(rec.cpu_time, 80.0);
  EXPECT_DOUBLE_EQ(
      rec.segment_time[static_cast<std::size_t>(core::Segment::Dispatch)],
      1.5);
  EXPECT_DOUBLE_EQ(rec.outputs_bytes, 5e7);
}

TEST(Wrapper, FillRecordEvicted) {
  wq::TaskResult result;
  result.evicted = true;
  result.exit_code = static_cast<int>(wq::TaskExit::Evicted);
  result.outputs[core::wrapper_keys::kExecute] = "50.0";
  result.outputs[core::wrapper_keys::kEnvSetup] = "5.0";
  core::TaskRecord rec;
  core::fill_record_from_result(result, rec);
  EXPECT_EQ(rec.status, core::TaskStatus::Evicted);
  EXPECT_DOUBLE_EQ(rec.lost_time, 55.0);
  EXPECT_DOUBLE_EQ(rec.cpu_time, 0.0);
}

// ----------------------------------------------------------------- config ----

TEST(WorkflowConfig, ParsesFullSection) {
  const auto ini = lobster::util::Config::parse(R"(
[workflow]
label = ttbar
dataset = /TTbar/Run2015A/AOD
lumis_per_tasklet = 4
tasklets_per_task = 8
task_buffer = 200
max_attempts = 3
access = stage
merge = hadoop
merge_size = 4GB
adaptive_sizing = true
)");
  const auto cfg = core::WorkflowConfig::from_config(ini);
  EXPECT_EQ(cfg.label, "ttbar");
  EXPECT_EQ(cfg.dataset, "/TTbar/Run2015A/AOD");
  EXPECT_EQ(cfg.lumis_per_tasklet, 4u);
  EXPECT_EQ(cfg.tasklets_per_task, 8u);
  EXPECT_EQ(cfg.task_buffer, 200u);
  EXPECT_EQ(cfg.max_attempts, 3u);
  EXPECT_EQ(cfg.access, core::DataAccessMode::Stage);
  EXPECT_EQ(cfg.merge_mode, core::MergeMode::Hadoop);
  EXPECT_DOUBLE_EQ(cfg.merge_policy.target_bytes, 4e9);
  EXPECT_TRUE(cfg.adaptive_sizing);
}

TEST(WorkflowConfig, DefaultsMatchPaper) {
  const auto cfg = core::WorkflowConfig::from_config(
      lobster::util::Config::parse("[workflow]\n"));
  EXPECT_EQ(cfg.task_buffer, 400u) << "dispatch buffer of 400 tasks (§4.1)";
  EXPECT_EQ(cfg.merge_mode, core::MergeMode::Interleaved)
      << "Lobster currently uses interleaved merging (§4.4)";
  EXPECT_NEAR(cfg.merge_policy.target_bytes, 3.5e9, 1e9)
      << "3-4 GB merged files";
  EXPECT_DOUBLE_EQ(cfg.merge_policy.start_fraction, 0.10);
}

TEST(WorkflowConfig, RejectsUnknownEnums) {
  EXPECT_THROW(core::WorkflowConfig::from_config(lobster::util::Config::parse(
                   "[workflow]\naccess = teleport\n")),
               std::runtime_error);
  EXPECT_THROW(core::WorkflowConfig::from_config(lobster::util::Config::parse(
                   "[workflow]\nmerge = shred\n")),
               std::runtime_error);
  EXPECT_THROW(core::WorkflowConfig::from_config(lobster::util::Config::parse(
                   "[workflow]\ntasklets_per_task = 0\n")),
               std::runtime_error);
}

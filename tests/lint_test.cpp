// lint_test.cpp — the lobster_lint rule engine against its fixture corpus.
//
// Every bad_* fixture must produce the finding its name promises; every
// good_* fixture must be clean.  The tree itself is linted by the separate
// `lint_tree` ctest entry, which runs the CLI over src/, tools/ and bench/.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"
#include "lint/lockmodel.hpp"

namespace lint = lobster::lint;

namespace {

lint::Corpus fixture_corpus() {
  return lint::load_corpus({LOBSTER_LINT_FIXTURE_DIR});
}

std::vector<lint::Finding> findings_for(const lint::Corpus& corpus,
                                        const std::string& file_suffix,
                                        const lint::Options& opts = {}) {
  std::vector<lint::Finding> out;
  for (const auto& f : lint::run(corpus, opts)) {
    if (f.file.size() >= file_suffix.size() &&
        f.file.compare(f.file.size() - file_suffix.size(), file_suffix.size(),
                       file_suffix) == 0)
      out.push_back(f);
  }
  return out;
}

bool has_rule(const std::vector<lint::Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

// ---- corpus-level expectations ---------------------------------------------

TEST(LintFixtures, EveryBadFixtureFlagsItsRule) {
  const lint::Corpus corpus = fixture_corpus();
  const struct {
    const char* file;
    const char* rule;
  } expected[] = {
      {"bad_random_device.cpp", "entropy"},
      {"bad_wallclock.cpp", "entropy"},
      {"bad_fp_sum.cpp", "ordered"},
      {"bad_rng_draw.cpp", "ordered"},
      {"bad_cross_file.cpp", "ordered"},
      {"bad_unguarded_members.hpp", "guarded"},
      {"bad_unguarded_steal_queue.hpp", "guarded"},
      {"bad_partial_annotations.hpp", "guarded"},
      {"bad_discardable_stats.hpp", "nodiscard"},
      {"bad_discardable_mean.hpp", "nodiscard"},
      {"bad_discardable_timeline.hpp", "nodiscard"},
      {"bad_empty_suppression.cpp", "suppression"},
      {"bad_lock_cycle.hpp", "lockorder"},
      {"bad_cross_class_order_a.hpp", "lockorder"},
      {"bad_cross_class_order_b.hpp", "lockorder"},
      {"bad_steal_lock_inversion.hpp", "lockorder"},
      {"bad_close_deliver_guarded_read.hpp", "guardeduse"},
      {"bad_cv_predicate.hpp", "guardeduse"},
      {"bad_atomic_relaxed_guarded.hpp", "guardeduse"},
      {"bad_counter_grammar.cpp", "counterplane"},
      {"bad_counter_duplicate.cpp", "counterplane"},
      {"bad_stale_suppression.cpp", "suppression"},
  };
  for (const auto& e : expected) {
    const auto fs = findings_for(corpus, e.file);
    EXPECT_TRUE(has_rule(fs, e.rule))
        << e.file << " should produce a [" << e.rule << "] finding";
  }
}

TEST(LintFixtures, GoodFixturesAreClean) {
  const lint::Corpus corpus = fixture_corpus();
  for (const char* file :
       {"good_seeded_rng.cpp", "good_sorted_keys.cpp",
        "good_annotated_members.hpp", "good_nodiscard_stats.hpp",
        "good_nodiscard_timeline.hpp", "good_lock_hierarchy.hpp",
        "good_guarded_access.hpp", "good_counterplane.cpp"}) {
    const auto fs = findings_for(corpus, file);
    EXPECT_TRUE(fs.empty()) << file << " should be clean; got ["
                            << (fs.empty() ? "" : fs.front().rule) << "] "
                            << (fs.empty() ? "" : fs.front().message);
  }
}

TEST(LintFixtures, WallclockFixtureFlagsBothSources) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_wallclock.cpp");
  // system_clock::now and time(nullptr) are two separate findings.
  EXPECT_GE(fs.size(), 2u);
}

TEST(LintFixtures, EntropyAllowlistSilencesHarnessFiles) {
  const lint::Corpus corpus = fixture_corpus();
  lint::Options opts;
  opts.entropy_allowlist.push_back("bad_wallclock.cpp");
  EXPECT_TRUE(findings_for(corpus, "bad_wallclock.cpp", opts).empty());
  // Other files keep their findings.
  EXPECT_FALSE(findings_for(corpus, "bad_random_device.cpp", opts).empty());
}

TEST(LintFixtures, CrossFileFindingIsInTheCpp) {
  const lint::Corpus corpus = fixture_corpus();
  // The container is declared in the header; the hazard is in the .cpp.
  EXPECT_TRUE(has_rule(findings_for(corpus, "bad_cross_file.cpp"), "ordered"));
  EXPECT_TRUE(findings_for(corpus, "bad_cross_file.hpp").empty());
}

TEST(LintFixtures, PartialAnnotationFlagsOnlyTheBareMember) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_partial_annotations.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().rule, "guarded");
  EXPECT_NE(fs.front().message.find("capacity_"), std::string::npos);
}

// ---- suppression round-trip ------------------------------------------------

TEST(LintSuppressions, ValidSuppressionSilencesAndRemovalRestores) {
  const std::string bad_text =
      "#include <string>\n"
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<std::string, double>& m_) {\n"
      "  double t = 0.0;\n"
      "  for (const auto& [k, v] : m_) t += v;\n"
      "  return t;\n"
      "}\n";
  const std::string suppressed_text =
      "#include <string>\n"
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<std::string, double>& m_) {\n"
      "  double t = 0.0;\n"
      "  // lobster-lint: ordered-ok(sum is checked against a sorted fold)\n"
      "  for (const auto& [k, v] : m_) t += v;\n"
      "  return t;\n"
      "}\n";

  lint::Corpus bad;
  bad.files.push_back(lint::make_source("roundtrip.cpp", bad_text));
  const auto before = lint::run(bad, {});
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before.front().rule, "ordered");
  EXPECT_EQ(before.front().line, 5u);

  lint::Corpus good;
  good.files.push_back(lint::make_source("roundtrip.cpp", suppressed_text));
  EXPECT_TRUE(lint::run(good, {}).empty());
}

TEST(LintSuppressions, EmptyReasonIsItsOwnFinding) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_empty_suppression.cpp");
  EXPECT_TRUE(has_rule(fs, "suppression"));
  // The empty suppression does NOT silence the ordered finding.
  EXPECT_TRUE(has_rule(fs, "ordered"));
}

TEST(LintSuppressions, MarkerInStringLiteralIsIgnored) {
  // The linter's own sources mention the marker inside string literals;
  // only a marker in a real // comment counts.
  const std::string text =
      "#include <string>\n"
      "const std::string kMsg = \"add // lobster-lint: ordered-ok()\";\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("strings.cpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

// ---- engine unit checks ----------------------------------------------------

TEST(LintEngine, TokensInCommentsAndStringsNeverFlag) {
  const std::string text =
      "// std::random_device would be bad here\n"
      "/* system_clock::now() in a block comment */\n"
      "const char* kDoc = \"rand() time(nullptr) random_device\";\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("comments.cpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

TEST(LintEngine, NodiscardOnPrecedingLineIsAccepted) {
  const std::string text =
      "#pragma once\n"
      "struct S {\n"
      "  [[nodiscard]]\n"
      "  double mean() const;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("wrapped.hpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

TEST(LintEngine, HasTokenRespectsIdentifierBoundaries) {
  EXPECT_TRUE(lint::has_token("int rand();", "rand"));
  EXPECT_FALSE(lint::has_token("int randomize();", "rand"));
  EXPECT_FALSE(lint::has_token("int operand;", "rand"));
  EXPECT_TRUE(lint::has_token("x = rand", "rand"));
}

// ---- hotpath rule ----------------------------------------------------------

TEST(LintHotpath, MapMemberInDesHotPathIsFlagged) {
  const std::string text =
      "#pragma once\n"
      "class EventQueue {\n"
      " public:\n"
      "  void push();\n"
      " private:\n"
      "  std::unordered_map<void*, int> live_;\n"
      "  std::map<double, int> calendar_;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/des/event_queue.hpp", text));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  EXPECT_EQ(fs[0].line, 6u);
  EXPECT_EQ(fs[1].line, 7u);
}

TEST(LintHotpath, OutsideRootsAndLocalsAndReturnsAreClean) {
  // Same class text outside the hot-path roots: clean.
  const std::string text =
      "#pragma once\n"
      "class Registry {\n"
      "  std::map<std::string, int> counters_;\n"
      "};\n";
  lint::Corpus outside;
  outside.files.push_back(lint::make_source("src/util/registry.hpp", text));
  EXPECT_TRUE(lint::run(outside, {}).empty());

  // Inside the roots: function-local maps and map-returning member
  // functions are off the event path and stay clean.
  const std::string inside_text =
      "#pragma once\n"
      "class Exporter {\n"
      " public:\n"
      "  std::map<std::string, double> snapshot() const;\n"
      "  void flush() {\n"
      "    std::map<int, int> local;\n"
      "    local[1] = 2;\n"
      "  }\n"
      "};\n";
  lint::Corpus inside;
  inside.files.push_back(
      lint::make_source("src/lobsim/exporter.hpp", inside_text));
  EXPECT_TRUE(lint::run(inside, {}).empty());
}

TEST(LintHotpath, AuditedSuppressionSilencesAndCustomRootsApply) {
  const std::string text =
      "#pragma once\n"
      "class Engine {\n"
      "  // lobster-lint: hotpath-ok(cold path: touched once per campaign)\n"
      "  std::map<int, int> cold_;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/des/engine.hpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());

  // Custom roots move the rule elsewhere.
  lint::Options opts;
  opts.hotpath_roots = {"src/wq/"};
  lint::Corpus wq;
  wq.files.push_back(lint::make_source(
      "src/wq/master.hpp",
      "#pragma once\nstruct M {\n  std::unordered_map<int, int> m_;\n};\n"));
  const auto fs = lint::run(wq, opts);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  // ...and the des/ tree is out of scope under those roots.
  lint::Corpus des;
  des.files.push_back(lint::make_source(
      "src/des/queue.hpp",
      "#pragma once\nstruct Q {\n  std::map<int, int> q_;\n};\n"));
  EXPECT_TRUE(lint::run(des, opts).empty());
}

TEST(LintHotpath, BraceInitializedMapMemberIsFlagged) {
  const std::string text =
      "#pragma once\n"
      "class SiteManager {\n"
      "  std::unordered_map<int, int> nodes_{};\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/lobsim/sites.hpp", text));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  EXPECT_EQ(fs[0].line, 3u);
}

// ---- lockorder rule --------------------------------------------------------

TEST(LintLockOrder, IntraClassCycleIsReportedOnce) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_lock_cycle.hpp");
  ASSERT_TRUE(has_rule(fs, "lockorder"));
  // One representative cycle per strongly connected component, not one
  // finding per participating method.
  std::size_t cycles = 0;
  for (const auto& f : fs)
    if (f.message.find("lock-order cycle") != std::string::npos) ++cycles;
  EXPECT_EQ(cycles, 1u);
  EXPECT_NE(fs.front().message.find("PairLedger::"), std::string::npos);
}

TEST(LintLockOrder, CrossClassCycleSpansTwoHeaders) {
  // The RelayHub/RelayPort inversion is split across two headers: the cycle
  // is witnessed once, and BOTH undeclared cross-class edges are reported
  // at the call sites that create them.
  const lint::Corpus corpus = fixture_corpus();
  const auto a = findings_for(corpus, "bad_cross_class_order_a.hpp");
  const auto b = findings_for(corpus, "bad_cross_class_order_b.hpp");
  bool cycle = false, edge_a = false, edge_b = false;
  for (const auto& f : a) {
    if (f.message.find("lock-order cycle") != std::string::npos) cycle = true;
    if (f.message.find("not in the declared hierarchy") != std::string::npos)
      edge_a = true;
  }
  for (const auto& f : b)
    if (f.message.find("not in the declared hierarchy") != std::string::npos)
      edge_b = true;
  EXPECT_TRUE(cycle);
  EXPECT_TRUE(edge_a);
  EXPECT_TRUE(edge_b);
}

TEST(LintLockOrder, StealGroupShapeFlagsTheUndeclaredProbeEdge) {
  // The PR 8 work-stealing bug shape: the group lock held across per-queue
  // depth probes, creating a group -> queue edge nobody declared.
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_steal_lock_inversion.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lockorder");
  EXPECT_EQ(fs[0].line, 29u);
  EXPECT_NE(fs[0].message.find("RaiderGroup::group_mu_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("RaidedQueue::raided_mu_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("probe_depth"), std::string::npos);
}

TEST(LintLockOrder, DeclaredHierarchySilencesTheCrossClassEdge) {
  // good_lock_hierarchy.hpp takes the same two-lock shape but declares
  // panel_mu_ -> socket_mu_ with LOBSTER_ACQUIRED_BEFORE: clean.
  const lint::Corpus corpus = fixture_corpus();
  EXPECT_TRUE(findings_for(corpus, "good_lock_hierarchy.hpp").empty());
}

// ---- guardeduse rule -------------------------------------------------------

TEST(LintGuardedUse, CloseVsDeliverReadIsFlaggedAtTheUnlockedRead) {
  // The PR 8 lost-wakeup bug shape: `closed_` read before chute_mu_ is
  // taken, racing the close() that sets it under the lock.
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_close_deliver_guarded_read.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guardeduse");
  EXPECT_EQ(fs[0].line, 13u);
  EXPECT_NE(fs[0].message.find("closed_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("lock-set {}"), std::string::npos);
}

TEST(LintGuardedUse, CvWaitPredicateReportsTheWrongLockHeld) {
  // The lambda predicate runs under pump_mu_, but primed_ is guarded by
  // tank_mu_ — the finding names the lock-set actually held at the wait.
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_cv_predicate.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guardeduse");
  EXPECT_EQ(fs[0].line, 14u);
  EXPECT_NE(fs[0].message.find("{pump_mu_}"), std::string::npos);
  EXPECT_NE(fs[0].message.find("tank_mu_"), std::string::npos);
}

TEST(LintGuardedUse, RelaxedAtomicLoadOfGuardedMemberIsFlagged) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_atomic_relaxed_guarded.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guardeduse");
  EXPECT_EQ(fs[0].line, 13u);
}

// ---- lock-set scope tracker ------------------------------------------------

TEST(LintLockModel, ScopeExitDropsTheLock) {
  const std::string text =
      "#pragma once\n"
      "#include <mutex>\n"
      "class Tracker {\n"
      " public:\n"
      "  void work() {\n"
      "    {\n"
      "      std::lock_guard<std::mutex> lock(mu_);\n"
      "      inside_ = 1;\n"
      "    }\n"
      "    outside_ = 2;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int inside_ LOBSTER_GUARDED_BY(mu_) = 0;\n"
      "  int outside_ LOBSTER_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("tracker.hpp", text));

  const lint::LockModel model = lint::build_lock_model(corpus);
  const lint::MethodModel* work = nullptr;
  for (const auto& m : model.methods)
    if (m.cls == "Tracker" && m.name == "work") work = &m;
  ASSERT_NE(work, nullptr);
  ASSERT_EQ(work->accesses.size(), 2u);
  EXPECT_EQ(work->accesses[0].name, "inside_");
  ASSERT_EQ(work->accesses[0].held.size(), 1u);
  EXPECT_EQ(work->accesses[0].held[0].name, "mu_");
  EXPECT_EQ(work->accesses[1].name, "outside_");
  EXPECT_TRUE(work->accesses[1].held.empty());

  // ...and the engine turns exactly the unlocked access into a finding.
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guardeduse");
  EXPECT_EQ(fs[0].line, 10u);
}

TEST(LintLockModel, RequiresSeedsTheEntryLockSet) {
  const std::string text =
      "#pragma once\n"
      "#include <mutex>\n"
      "class Ledger {\n"
      " public:\n"
      "  void post() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    post_locked();\n"
      "  }\n"
      " private:\n"
      "  void post_locked() LOBSTER_REQUIRES(mu_) { total_ = total_ + 1; }\n"
      "  std::mutex mu_;\n"
      "  int total_ LOBSTER_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("ledger.hpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

TEST(LintLockModel, DeferLockAcquiresNothing) {
  const std::string text =
      "#pragma once\n"
      "#include <mutex>\n"
      "class Vault {\n"
      " public:\n"
      "  void stash() {\n"
      "    std::unique_lock<std::mutex> lk(mu_, std::defer_lock);\n"
      "    coins_ = coins_ + 1;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int coins_ LOBSTER_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("vault.hpp", text));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guardeduse");
  EXPECT_EQ(fs[0].line, 7u);
}

// ---- counterplane rule -----------------------------------------------------

TEST(LintCounterPlane, DocReferencedCountersMustExistInCode) {
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source(
      "src/util/plane.cpp",
      "void reg(Registry& r) {\n"
      "  r.counter(\"layer.plane.hits\");\n"
      "  r.counter(\"layer.plane.misses\");\n"
      "}\n"));
  corpus.docs.push_back(lint::make_doc(
      "README.md",
      "Counters: `layer.plane.{hits,misses}` exist in code, but\n"
      "`layer.plane.ghost` is registered nowhere.\n"));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "counterplane");
  EXPECT_EQ(fs[0].file, "README.md");
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_NE(fs[0].message.find("layer.plane.ghost"), std::string::npos);
}

// ---- baseline & machine-readable output ------------------------------------

namespace {

lint::Finding mk(const char* file, std::size_t line, const char* rule,
                 const char* msg) {
  lint::Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = msg;
  return f;
}

}  // namespace

TEST(LintBaseline, NormalizePathStripsTheCheckoutPrefix) {
  EXPECT_EQ(lint::normalize_path("/home/ci/repo/src/util/trace.hpp"),
            "src/util/trace.hpp");
  EXPECT_EQ(lint::normalize_path("tools/lint/lint.cpp"),
            "tools/lint/lint.cpp");
  EXPECT_EQ(lint::normalize_path("elsewhere/file.hpp"), "elsewhere/file.hpp");
}

TEST(LintBaseline, RoundTripAndBothDriftDirections) {
  const std::vector<lint::Finding> findings = {
      mk("src/a.cpp", 10, "lockorder", "cycle here"),
      mk("src/a.cpp", 20, "lockorder", "cycle here"),
      mk("src/b.cpp", 5, "guardeduse", "unlocked read"),
  };
  const lint::Baseline parsed = lint::parse_baseline_json(
      lint::baseline_to_json(lint::make_baseline(findings)));
  ASSERT_EQ(parsed.entries.size(), 2u);

  // Identical findings: no drift.
  lint::BaselineDiff d = lint::diff_against_baseline(parsed, findings);
  EXPECT_TRUE(d.fresh.empty());
  EXPECT_TRUE(d.stale.empty());

  // A new finding is fresh (a regression)...
  auto extra = findings;
  extra.push_back(mk("src/c.cpp", 1, "counterplane", "bad name"));
  d = lint::diff_against_baseline(parsed, extra);
  ASSERT_EQ(d.fresh.size(), 1u);
  EXPECT_EQ(d.fresh[0].file, "src/c.cpp");
  EXPECT_TRUE(d.stale.empty());

  // ...and fixing one leaves its entry stale (the baseline lies).
  auto fewer = findings;
  fewer.pop_back();
  d = lint::diff_against_baseline(parsed, fewer);
  EXPECT_TRUE(d.fresh.empty());
  ASSERT_EQ(d.stale.size(), 1u);
  EXPECT_EQ(d.stale[0].rule, "guardeduse");
}

TEST(LintBaseline, LineNumbersDoNotChurnTheBaseline) {
  const lint::Baseline b =
      lint::make_baseline({mk("src/a.cpp", 10, "lockorder", "cycle here")});
  const lint::BaselineDiff d = lint::diff_against_baseline(
      b, {mk("src/a.cpp", 99, "lockorder", "cycle here")});
  EXPECT_TRUE(d.fresh.empty());
  EXPECT_TRUE(d.stale.empty());
}

TEST(LintBaseline, MalformedJsonThrows) {
  EXPECT_THROW(lint::parse_baseline_json("not json"), std::runtime_error);
  EXPECT_THROW(lint::parse_baseline_json("{\"version\": 2, \"findings\": []}"),
               std::runtime_error);
  EXPECT_THROW(lint::parse_baseline_json(
                   "{\"version\": 1, \"findings\": [{\"rule\": \"x\"}]}"),
               std::runtime_error);
  EXPECT_THROW(lint::parse_baseline_json(
                   "{\"version\": 1, \"surprise\": []}"),
               std::runtime_error);
}

TEST(LintBaseline, SarifNamesRuleAndLocation) {
  const std::string sarif = lint::findings_to_sarif(
      {mk("/ci/repo/src/a.cpp", 10, "lockorder", "cycle here")});
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"lockorder\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 10"), std::string::npos);
}

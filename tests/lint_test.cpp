// lint_test.cpp — the lobster_lint rule engine against its fixture corpus.
//
// Every bad_* fixture must produce the finding its name promises; every
// good_* fixture must be clean.  The tree itself is linted by the separate
// `lint_tree` ctest entry, which runs the CLI over src/, tools/ and bench/.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace lint = lobster::lint;

namespace {

lint::Corpus fixture_corpus() {
  return lint::load_corpus({LOBSTER_LINT_FIXTURE_DIR});
}

std::vector<lint::Finding> findings_for(const lint::Corpus& corpus,
                                        const std::string& file_suffix,
                                        const lint::Options& opts = {}) {
  std::vector<lint::Finding> out;
  for (const auto& f : lint::run(corpus, opts)) {
    if (f.file.size() >= file_suffix.size() &&
        f.file.compare(f.file.size() - file_suffix.size(), file_suffix.size(),
                       file_suffix) == 0)
      out.push_back(f);
  }
  return out;
}

bool has_rule(const std::vector<lint::Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

}  // namespace

// ---- corpus-level expectations ---------------------------------------------

TEST(LintFixtures, EveryBadFixtureFlagsItsRule) {
  const lint::Corpus corpus = fixture_corpus();
  const struct {
    const char* file;
    const char* rule;
  } expected[] = {
      {"bad_random_device.cpp", "entropy"},
      {"bad_wallclock.cpp", "entropy"},
      {"bad_fp_sum.cpp", "ordered"},
      {"bad_rng_draw.cpp", "ordered"},
      {"bad_cross_file.cpp", "ordered"},
      {"bad_unguarded_members.hpp", "guarded"},
      {"bad_unguarded_steal_queue.hpp", "guarded"},
      {"bad_partial_annotations.hpp", "guarded"},
      {"bad_discardable_stats.hpp", "nodiscard"},
      {"bad_discardable_mean.hpp", "nodiscard"},
      {"bad_discardable_timeline.hpp", "nodiscard"},
      {"bad_empty_suppression.cpp", "suppression"},
  };
  for (const auto& e : expected) {
    const auto fs = findings_for(corpus, e.file);
    EXPECT_TRUE(has_rule(fs, e.rule))
        << e.file << " should produce a [" << e.rule << "] finding";
  }
}

TEST(LintFixtures, GoodFixturesAreClean) {
  const lint::Corpus corpus = fixture_corpus();
  for (const char* file :
       {"good_seeded_rng.cpp", "good_sorted_keys.cpp",
        "good_annotated_members.hpp", "good_nodiscard_stats.hpp",
        "good_nodiscard_timeline.hpp"}) {
    const auto fs = findings_for(corpus, file);
    EXPECT_TRUE(fs.empty()) << file << " should be clean; got ["
                            << (fs.empty() ? "" : fs.front().rule) << "] "
                            << (fs.empty() ? "" : fs.front().message);
  }
}

TEST(LintFixtures, WallclockFixtureFlagsBothSources) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_wallclock.cpp");
  // system_clock::now and time(nullptr) are two separate findings.
  EXPECT_GE(fs.size(), 2u);
}

TEST(LintFixtures, EntropyAllowlistSilencesHarnessFiles) {
  const lint::Corpus corpus = fixture_corpus();
  lint::Options opts;
  opts.entropy_allowlist.push_back("bad_wallclock.cpp");
  EXPECT_TRUE(findings_for(corpus, "bad_wallclock.cpp", opts).empty());
  // Other files keep their findings.
  EXPECT_FALSE(findings_for(corpus, "bad_random_device.cpp", opts).empty());
}

TEST(LintFixtures, CrossFileFindingIsInTheCpp) {
  const lint::Corpus corpus = fixture_corpus();
  // The container is declared in the header; the hazard is in the .cpp.
  EXPECT_TRUE(has_rule(findings_for(corpus, "bad_cross_file.cpp"), "ordered"));
  EXPECT_TRUE(findings_for(corpus, "bad_cross_file.hpp").empty());
}

TEST(LintFixtures, PartialAnnotationFlagsOnlyTheBareMember) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_partial_annotations.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().rule, "guarded");
  EXPECT_NE(fs.front().message.find("capacity_"), std::string::npos);
}

// ---- suppression round-trip ------------------------------------------------

TEST(LintSuppressions, ValidSuppressionSilencesAndRemovalRestores) {
  const std::string bad_text =
      "#include <string>\n"
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<std::string, double>& m_) {\n"
      "  double t = 0.0;\n"
      "  for (const auto& [k, v] : m_) t += v;\n"
      "  return t;\n"
      "}\n";
  const std::string suppressed_text =
      "#include <string>\n"
      "#include <unordered_map>\n"
      "double total(const std::unordered_map<std::string, double>& m_) {\n"
      "  double t = 0.0;\n"
      "  // lobster-lint: ordered-ok(sum is checked against a sorted fold)\n"
      "  for (const auto& [k, v] : m_) t += v;\n"
      "  return t;\n"
      "}\n";

  lint::Corpus bad;
  bad.files.push_back(lint::make_source("roundtrip.cpp", bad_text));
  const auto before = lint::run(bad, {});
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before.front().rule, "ordered");
  EXPECT_EQ(before.front().line, 5u);

  lint::Corpus good;
  good.files.push_back(lint::make_source("roundtrip.cpp", suppressed_text));
  EXPECT_TRUE(lint::run(good, {}).empty());
}

TEST(LintSuppressions, EmptyReasonIsItsOwnFinding) {
  const lint::Corpus corpus = fixture_corpus();
  const auto fs = findings_for(corpus, "bad_empty_suppression.cpp");
  EXPECT_TRUE(has_rule(fs, "suppression"));
  // The empty suppression does NOT silence the ordered finding.
  EXPECT_TRUE(has_rule(fs, "ordered"));
}

TEST(LintSuppressions, MarkerInStringLiteralIsIgnored) {
  // The linter's own sources mention the marker inside string literals;
  // only a marker in a real // comment counts.
  const std::string text =
      "#include <string>\n"
      "const std::string kMsg = \"add // lobster-lint: ordered-ok()\";\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("strings.cpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

// ---- engine unit checks ----------------------------------------------------

TEST(LintEngine, TokensInCommentsAndStringsNeverFlag) {
  const std::string text =
      "// std::random_device would be bad here\n"
      "/* system_clock::now() in a block comment */\n"
      "const char* kDoc = \"rand() time(nullptr) random_device\";\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("comments.cpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

TEST(LintEngine, NodiscardOnPrecedingLineIsAccepted) {
  const std::string text =
      "#pragma once\n"
      "struct S {\n"
      "  [[nodiscard]]\n"
      "  double mean() const;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("wrapped.hpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());
}

TEST(LintEngine, HasTokenRespectsIdentifierBoundaries) {
  EXPECT_TRUE(lint::has_token("int rand();", "rand"));
  EXPECT_FALSE(lint::has_token("int randomize();", "rand"));
  EXPECT_FALSE(lint::has_token("int operand;", "rand"));
  EXPECT_TRUE(lint::has_token("x = rand", "rand"));
}

// ---- hotpath rule ----------------------------------------------------------

TEST(LintHotpath, MapMemberInDesHotPathIsFlagged) {
  const std::string text =
      "#pragma once\n"
      "class EventQueue {\n"
      " public:\n"
      "  void push();\n"
      " private:\n"
      "  std::unordered_map<void*, int> live_;\n"
      "  std::map<double, int> calendar_;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/des/event_queue.hpp", text));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  EXPECT_EQ(fs[0].line, 6u);
  EXPECT_EQ(fs[1].line, 7u);
}

TEST(LintHotpath, OutsideRootsAndLocalsAndReturnsAreClean) {
  // Same class text outside the hot-path roots: clean.
  const std::string text =
      "#pragma once\n"
      "class Registry {\n"
      "  std::map<std::string, int> counters_;\n"
      "};\n";
  lint::Corpus outside;
  outside.files.push_back(lint::make_source("src/util/registry.hpp", text));
  EXPECT_TRUE(lint::run(outside, {}).empty());

  // Inside the roots: function-local maps and map-returning member
  // functions are off the event path and stay clean.
  const std::string inside_text =
      "#pragma once\n"
      "class Exporter {\n"
      " public:\n"
      "  std::map<std::string, double> snapshot() const;\n"
      "  void flush() {\n"
      "    std::map<int, int> local;\n"
      "    local[1] = 2;\n"
      "  }\n"
      "};\n";
  lint::Corpus inside;
  inside.files.push_back(
      lint::make_source("src/lobsim/exporter.hpp", inside_text));
  EXPECT_TRUE(lint::run(inside, {}).empty());
}

TEST(LintHotpath, AuditedSuppressionSilencesAndCustomRootsApply) {
  const std::string text =
      "#pragma once\n"
      "class Engine {\n"
      "  // lobster-lint: hotpath-ok(cold path: touched once per campaign)\n"
      "  std::map<int, int> cold_;\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/des/engine.hpp", text));
  EXPECT_TRUE(lint::run(corpus, {}).empty());

  // Custom roots move the rule elsewhere.
  lint::Options opts;
  opts.hotpath_roots = {"src/wq/"};
  lint::Corpus wq;
  wq.files.push_back(lint::make_source(
      "src/wq/master.hpp",
      "#pragma once\nstruct M {\n  std::unordered_map<int, int> m_;\n};\n"));
  const auto fs = lint::run(wq, opts);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  // ...and the des/ tree is out of scope under those roots.
  lint::Corpus des;
  des.files.push_back(lint::make_source(
      "src/des/queue.hpp",
      "#pragma once\nstruct Q {\n  std::map<int, int> q_;\n};\n"));
  EXPECT_TRUE(lint::run(des, opts).empty());
}

TEST(LintHotpath, BraceInitializedMapMemberIsFlagged) {
  const std::string text =
      "#pragma once\n"
      "class SiteManager {\n"
      "  std::unordered_map<int, int> nodes_{};\n"
      "};\n";
  lint::Corpus corpus;
  corpus.files.push_back(lint::make_source("src/lobsim/sites.hpp", text));
  const auto fs = lint::run(corpus, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hotpath");
  EXPECT_EQ(fs[0].line, 3u);
}

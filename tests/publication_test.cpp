// Tests for output publication: metadata merging, dataset registration,
// and the publication cost model that motivates merging (paper §4.4).
#include <gtest/gtest.h>

#include "dbs/publication.hpp"

namespace dbs = lobster::dbs;

namespace {
dbs::OutputFileMeta small_output(int i) {
  dbs::OutputFileMeta f;
  f.lfn = "/store/user/out_" + std::to_string(i) + ".root";
  f.size_bytes = 50e6;
  f.events = 1000;
  f.parent_lfns = {"/store/data/in_" + std::to_string(i / 2) + ".root"};
  f.lumis = {{1, static_cast<std::uint32_t>(2 * i + 1)},
             {1, static_cast<std::uint32_t>(2 * i + 2)}};
  return f;
}
}  // namespace

TEST(Publication, MergeMetadataUnionsProvenance) {
  const auto merged = dbs::merge_metadata(
      "/store/user/merged_0.root", {small_output(0), small_output(1)});
  EXPECT_EQ(merged.lfn, "/store/user/merged_0.root");
  EXPECT_DOUBLE_EQ(merged.size_bytes, 100e6);
  EXPECT_EQ(merged.events, 2000u);
  // Outputs 0 and 1 share parent in_0 -> union has one parent.
  EXPECT_EQ(merged.parent_lfns.size(), 1u);
  EXPECT_EQ(merged.lumis.size(), 4u);
}

TEST(Publication, MergeMetadataDeduplicatesLumis) {
  auto a = small_output(0);
  auto b = small_output(0);  // identical coverage
  b.lfn = "/store/user/out_0b.root";
  const auto merged = dbs::merge_metadata("/m.root", {a, b});
  EXPECT_EQ(merged.lumis.size(), 2u) << "duplicate lumis collapse";
}

TEST(Publication, MergeMetadataRejectsEmpty) {
  EXPECT_THROW(dbs::merge_metadata("/m.root", {}), std::invalid_argument);
}

TEST(Publication, PublishRegistersDataset) {
  dbs::DatasetBookkeeping svc;
  std::vector<dbs::OutputFileMeta> files{small_output(0), small_output(1)};
  const auto ds = dbs::publish_outputs(svc, "/User/Output/USER", files);
  EXPECT_TRUE(svc.has("/User/Output/USER"));
  EXPECT_EQ(ds.files.size(), 2u);
  EXPECT_EQ(svc.query("/User/Output/USER")->total_events(), 2000u);
  // Lumis come back sorted for certification tooling.
  for (const auto& f : ds.files)
    EXPECT_TRUE(std::is_sorted(f.lumis.begin(), f.lumis.end()));
}

TEST(Publication, PublishValidatesInput) {
  dbs::DatasetBookkeeping svc;
  EXPECT_THROW(dbs::publish_outputs(svc, "/X/Y/Z", {}),
               std::invalid_argument);
  dbs::OutputFileMeta anon;
  EXPECT_THROW(dbs::publish_outputs(svc, "/X/Y/Z", {anon}),
               std::invalid_argument);
}

TEST(Publication, MergingSlashesPublicationCost) {
  // The §4.4 rationale, quantified: publishing thousands of small files is
  // dominated by per-file records; merging to 3-4 GB collapses that cost
  // while lumi records are conserved.
  std::vector<dbs::OutputFileMeta> small;
  for (int i = 0; i < 1000; ++i) small.push_back(small_output(i));
  const auto unmerged_cost = dbs::estimate_publication_cost(small);

  // Merge in groups of 70 (3.5 GB / 50 MB).
  std::vector<dbs::OutputFileMeta> merged;
  for (std::size_t begin = 0; begin < small.size(); begin += 70) {
    const std::size_t end = std::min(begin + 70, small.size());
    merged.push_back(dbs::merge_metadata(
        "/store/user/merged_" + std::to_string(begin) + ".root",
        {small.begin() + static_cast<long>(begin),
         small.begin() + static_cast<long>(end)}));
  }
  const auto merged_cost = dbs::estimate_publication_cost(merged);

  EXPECT_EQ(unmerged_cost.files, 1000u);
  EXPECT_EQ(merged_cost.files, 15u);
  EXPECT_EQ(unmerged_cost.lumi_records, merged_cost.lumi_records)
      << "merging must not lose lumi bookkeeping";
  EXPECT_LT(merged_cost.metadata_bytes, unmerged_cost.metadata_bytes);
  EXPECT_LT(merged_cost.injection_seconds,
            unmerged_cost.injection_seconds / 10.0)
      << "injection time is per-file dominated";
  // Volume conservation through metadata merging.
  double small_bytes = 0.0, merged_bytes = 0.0;
  for (const auto& f : small) small_bytes += f.size_bytes;
  for (const auto& f : merged) merged_bytes += f.size_bytes;
  EXPECT_DOUBLE_EQ(small_bytes, merged_bytes);
}

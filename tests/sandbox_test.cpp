// Tests for Work Queue file management: sandboxes, the worker file cache,
// and end-to-end input staging / output shipping through real workers.
#include <gtest/gtest.h>

#include <set>

#include "wq/master.hpp"
#include "wq/sandbox.hpp"
#include "wq/worker.hpp"

namespace wq = lobster::wq;

// ---------------------------------------------------------------- sandbox ----

TEST(Sandbox, StageReadWrite) {
  wq::Sandbox box;
  box.stage(wq::InputFile::make("input.root", "eventdata"));
  EXPECT_TRUE(box.has("input.root"));
  EXPECT_EQ(box.read("input.root"), "eventdata");
  box.write("output.root", "histograms");
  EXPECT_EQ(box.read("output.root"), "histograms");
  EXPECT_THROW(box.read("missing"), std::out_of_range);
  EXPECT_DOUBLE_EQ(box.bytes(), 9.0 + 10.0);
}

TEST(Sandbox, OutputsExcludeInputs) {
  wq::Sandbox box;
  box.stage(wq::InputFile::make("in", "abc"));
  box.write("out1", "x");
  box.write("out2", "yy");
  const auto outs = box.outputs();
  EXPECT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs.at("out2"), "yy");
  const auto names = box.list();
  EXPECT_EQ(names.size(), 3u);
}

TEST(Sandbox, WriteShadowsStagedInput) {
  wq::Sandbox box;
  box.stage(wq::InputFile::make("f", "original"));
  box.write("f", "modified");
  EXPECT_EQ(box.read("f"), "modified");
}

TEST(InputFile, HashDistinguishesContent) {
  const auto a = wq::InputFile::make("x", "aaaa");
  const auto b = wq::InputFile::make("x", "aaab");
  EXPECT_NE(a.hash, b.hash);
  EXPECT_EQ(a.hash, wq::content_hash("aaaa"));
}

// ------------------------------------------------------------- file cache ----

TEST(WorkerFileCache, CacheableTransferredOnce) {
  wq::WorkerFileCache cache;
  const auto f = wq::InputFile::make("sandbox.tar", std::string(1000, 's'));
  const auto first = cache.stage_through(f);
  const auto second = cache.stage_through(f);
  EXPECT_EQ(first, second) << "same shared content";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(cache.bytes_transferred(), 1000.0);
  EXPECT_DOUBLE_EQ(cache.bytes_saved(), 1000.0);
}

TEST(WorkerFileCache, NonCacheableAlwaysTransfers) {
  wq::WorkerFileCache cache;
  const auto f =
      wq::InputFile::make("unique.cfg", "per-task", /*cacheable=*/false);
  cache.stage_through(f);
  cache.stage_through(f);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// -------------------------------------------------------------- end to end ----

namespace {
wq::TaskSpec file_task(std::uint64_t id, const wq::InputFile& shared,
                       const std::string& unique_content) {
  wq::TaskSpec spec;
  spec.id = id;
  spec.input_files.push_back(shared);
  spec.input_files.push_back(wq::InputFile::make(
      "config.py", unique_content, /*cacheable=*/false));
  spec.work = [](wq::TaskContext& ctx) {
    if (!ctx.sandbox || !ctx.sandbox->has("sandbox.tar") ||
        !ctx.sandbox->has("config.py"))
      return 1;
    // Produce an output derived from the inputs.
    ctx.sandbox->write("out.root",
                       "processed:" + ctx.sandbox->read("config.py"));
    return 0;
  };
  return spec;
}
}  // namespace

TEST(WorkerFiles, SandboxSharedAcrossTasksOutputsShippedBack) {
  wq::Master master;
  const auto shared =
      wq::InputFile::make("sandbox.tar", std::string(5000, 'S'));
  for (int i = 0; i < 20; ++i)
    master.submit(file_task(static_cast<std::uint64_t>(i), shared,
                            "cfg-" + std::to_string(i)));
  master.close_submission();
  wq::Worker worker("w0", master, 2);
  std::set<std::string> outputs;
  while (auto r = master.next_result()) {
    EXPECT_TRUE(r->success());
    ASSERT_EQ(r->output_files.size(), 1u);
    outputs.insert(r->output_files.at("out.root"));
  }
  worker.join();
  EXPECT_EQ(outputs.size(), 20u) << "each task produced its own output";
  // The 5 kB sandbox crossed the wire once; configs crossed 20 times.
  EXPECT_EQ(worker.file_cache().hits(), 19u);
  EXPECT_DOUBLE_EQ(worker.file_cache().bytes_saved(), 19.0 * 5000.0);
  // "cfg-0".."cfg-9" are 5 bytes, "cfg-10".."cfg-19" are 6 bytes.
  EXPECT_DOUBLE_EQ(worker.file_cache().bytes_transferred(),
                   5000.0 + 10.0 * 5.0 + 10.0 * 6.0);
}

TEST(WorkerFiles, PerTaskStagingAccounting) {
  wq::Master master;
  const auto shared = wq::InputFile::make("lib.so", std::string(100, 'L'));
  master.submit(file_task(1, shared, "a"));
  master.submit(file_task(2, shared, "b"));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  std::map<std::uint64_t, wq::TaskResult> results;
  while (auto r = master.next_result()) results[r->id] = *r;
  worker.join();
  // First task paid the shared transfer; the second saved it.
  const double first = results.at(1).stage_in_bytes;
  const double second = results.at(2).stage_in_bytes;
  // Task order on one slot is submission order.
  EXPECT_DOUBLE_EQ(first, 100.0 + 1.0);
  EXPECT_DOUBLE_EQ(second, 1.0);
  EXPECT_DOUBLE_EQ(results.at(2).cache_saved_bytes, 100.0);
}

TEST(WorkerFiles, TasksWithoutFilesStillRun) {
  wq::Master master;
  wq::TaskSpec spec;
  spec.id = 1;
  spec.work = [](wq::TaskContext& ctx) {
    return ctx.sandbox != nullptr && ctx.sandbox->list().empty() ? 0 : 1;
  };
  master.submit(std::move(spec));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  const auto r = master.next_result();
  worker.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->success());
}

// Tests for the cluster-scale DES engine: workload completion, eviction
// retry semantics, merge modes, outage injection, cache-mode ablation and
// determinism.
#include <gtest/gtest.h>

#include "lobsim/engine.hpp"

namespace lobsim = lobster::lobsim;
namespace core = lobster::core;
namespace cv = lobster::cvmfs;

namespace {
lobsim::ClusterParams small_cluster() {
  lobsim::ClusterParams c;
  c.target_cores = 64;
  c.cores_per_worker = 8;
  c.ramp_seconds = 600.0;
  c.squid.max_connections = 1000;
  c.chirp.max_connections = 16;
  return c;
}

lobsim::WorkloadParams small_workload() {
  lobsim::WorkloadParams w;
  w.num_tasklets = 300;
  w.tasklets_per_task = 6;
  w.tasklet_cpu_mean = 600.0;
  w.tasklet_cpu_sigma = 300.0;
  w.tasklet_input_bytes = 50e6;
  w.tasklet_output_bytes = 5e6;
  w.merge_policy.target_bytes = 100e6;
  return w;
}
}  // namespace

TEST(Engine, CompletesWorkloadWithoutEvictions) {
  auto cluster = small_cluster();
  cluster.evictions = false;
  lobsim::Engine engine(cluster, small_workload(), 42);
  const auto& m = engine.run(20.0 * 86400.0);
  EXPECT_EQ(m.tasklets_processed, 300u);
  EXPECT_EQ(m.tasks_evicted, 0u);
  EXPECT_GT(m.tasks_completed, 0u);
  EXPECT_GT(m.merge_tasks_completed, 0u);
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.bytes_streamed, 0.0);
  EXPECT_GT(m.bytes_staged_out, 0.0);
}

TEST(Engine, CompletesDespiteEvictions) {
  auto cluster = small_cluster();
  cluster.evictions = true;
  cluster.availability.scale_hours = 2.0;  // hostile pool
  lobsim::Engine engine(cluster, small_workload(), 7);
  const auto& m = engine.run(30.0 * 86400.0);
  EXPECT_EQ(m.tasklets_processed, 300u)
      << "every tasklet must eventually be processed";
  EXPECT_GT(m.tasks_evicted, 0u) << "the hostile pool must evict something";
}

TEST(Engine, DeterministicForSeed) {
  auto run_once = [] {
    lobsim::Engine engine(small_cluster(), small_workload(), 99);
    const auto& m = engine.run();
    return std::make_tuple(m.makespan, m.tasks_completed, m.tasks_evicted,
                           m.bytes_streamed);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, StagingUsesStagePathAndStreamUsesStream) {
  auto wl = small_workload();
  wl.merge_mode = core::MergeMode::Sequential;
  wl.num_tasklets = 60;
  // Exact byte accounting requires no retries: disable evictions.
  auto cluster = small_cluster();
  cluster.evictions = false;

  wl.access = core::DataAccessMode::Stream;
  lobsim::Engine stream_engine(cluster, wl, 1);
  const auto& sm = stream_engine.run();
  // Streaming reads only read_fraction of each input (paper §4.2).
  EXPECT_NEAR(stream_engine.federation().bytes_streamed(),
              60 * 50e6 * wl.read_fraction, 60 * 50e6 * 0.01);

  wl.access = core::DataAccessMode::Stage;
  lobsim::Engine stage_engine(cluster, wl, 1);
  const auto& gm = stage_engine.run();
  // Staging transfers whole files: analysis inputs (plus merge inputs).
  EXPECT_GT(stage_engine.federation().bytes_staged(), 60 * 50e6 * 0.99);
  EXPECT_GT(sm.tasklets_processed, 0u);
  EXPECT_GT(gm.tasklets_processed, 0u);
}

TEST(Engine, OutageProducesFailureBurst) {
  auto cluster = small_cluster();
  cluster.evictions = false;
  auto wl = small_workload();
  wl.num_tasklets = 600;
  lobsim::Engine engine(cluster, wl, 5);
  // Outage two hours in, lasting 30 minutes.
  engine.schedule_outage(2.0 * 3600.0, 1800.0);
  const auto& m = engine.run(30.0 * 86400.0);
  EXPECT_GT(m.tasks_failed, 0u)
      << "streams opened during or broken by the outage fail";
  EXPECT_EQ(m.tasklets_processed, 600u) << "failed tasks are retried";
  // Failure events cluster at the outage: none before it, and broken
  // streams surface shortly after the path comes back.
  for (const auto& [t, code] : m.failure_events) {
    EXPECT_GE(t, 2.0 * 3600.0);
    EXPECT_LE(t, 2.0 * 3600.0 + 1800.0 + 1800.0);
  }
}

TEST(Engine, MergeModesAllComplete) {
  for (auto mode : {core::MergeMode::Sequential, core::MergeMode::Hadoop,
                    core::MergeMode::Interleaved}) {
    auto wl = small_workload();
    wl.merge_mode = mode;
    lobsim::Engine engine(small_cluster(), wl, 3);
    const auto& m = engine.run(30.0 * 86400.0);
    EXPECT_EQ(m.tasklets_processed, 300u) << core::to_string(mode);
    EXPECT_GT(m.merge_tasks_completed, 0u) << core::to_string(mode);
    EXPECT_GE(m.last_merge_finish, m.last_analysis_finish -1e-9)
        << core::to_string(mode);
  }
}

TEST(Engine, InterleavedMergesOverlapAnalysis) {
  // Make merging a substantial fraction of the run so the Figure 7 effect
  // is visible: large outputs and a modest Chirp NIC.
  auto cluster = small_cluster();
  cluster.chirp.nic_rate = 2.5e8;
  auto wl = small_workload();
  wl.num_tasklets = 900;
  wl.tasklet_output_bytes = 100e6;
  wl.merge_policy.target_bytes = 2e9;
  wl.merge_mode = core::MergeMode::Interleaved;
  lobsim::Engine inter(cluster, wl, 11);
  const auto& mi = inter.run(30.0 * 86400.0);

  wl.merge_mode = core::MergeMode::Sequential;
  lobsim::Engine seq(cluster, wl, 11);
  const auto& ms = seq.run(30.0 * 86400.0);

  // Figure 7: interleaved completes faster overall because merging
  // proceeds concurrently with analysis.
  EXPECT_LT(mi.makespan, ms.makespan);
  // And at least one interleaved merge finished before analysis ended.
  bool overlapped = false;
  for (std::size_t b = 0; b < mi.merge_done.nbins(); ++b) {
    if (mi.merge_done.sum(b) > 0.0 &&
        mi.merge_done.bin_start(b) < mi.last_analysis_finish) {
      overlapped = true;
      break;
    }
  }
  EXPECT_TRUE(overlapped);
}

TEST(Engine, CacheModeBandwidthOrdering) {
  // Per-instance caches multiply proxy->worker traffic in direct proportion
  // to the slots per node (paper §4.3); exclusive matches alien in bytes
  // but serialises fetches, inflating setup time.
  struct Result {
    double service_bytes;
    double setup_time;
  };
  auto measure = [](cv::CacheMode mode) {
    auto wl = small_workload();
    wl.num_tasklets = 120;
    wl.cache_mode = mode;
    wl.merge_mode = core::MergeMode::Sequential;
    lobsim::ClusterParams cluster;
    cluster.target_cores = 32;
    cluster.cores_per_worker = 8;
    cluster.ramp_seconds = 60.0;
    cluster.evictions = false;
    // Cold-cache population issues many small requests; the per-request
    // latency is what lock serialisation costs (aggregate bandwidth is the
    // same for exclusive and alien, which share one copy).
    cluster.squid.request_latency = 5.0;
    lobsim::Engine engine(cluster, wl, 21);
    const auto& m = engine.run(30.0 * 86400.0);
    // breakdown.other = dispatch + env setup + cleanup; only env setup is
    // nonzero in the simulated wrapper.
    return Result{engine.squid(0).service_link().bytes_moved(),
                  m.monitor.breakdown().other};
  };
  const auto alien = measure(cv::CacheMode::Alien);
  const auto exclusive = measure(cv::CacheMode::Exclusive);
  const auto per_instance = measure(cv::CacheMode::PerInstance);
  EXPECT_GT(per_instance.service_bytes, 3.0 * alien.service_bytes)
      << "per-instance caches re-download the shared head on every slot";
  EXPECT_NEAR(exclusive.service_bytes / alien.service_bytes, 1.0, 0.2)
      << "exclusive shares one copy, like alien";
  EXPECT_GT(exclusive.setup_time, alien.setup_time)
      << "the whole-cache write lock serialises concurrent setups";
}

TEST(Engine, PeakRunningBoundedByCores) {
  auto cluster = small_cluster();
  lobsim::Engine engine(cluster, small_workload(), 17);
  const auto& m = engine.run();
  EXPECT_LE(m.peak_running, cluster.target_cores);
  EXPECT_GT(m.peak_running, 0u);
}

TEST(Engine, RejectsZeroSquids) {
  auto cluster = small_cluster();
  cluster.num_squids = 0;
  EXPECT_THROW(lobsim::Engine(cluster, small_workload(), 1),
               std::invalid_argument);
}

TEST(Engine, MultiSiteHarvestingUsesEverySite) {
  // Paper SS7: "Lobster's design makes it possible to harvest resources
  // from several clusters, and even commercial clouds, together."
  auto cluster = small_cluster();
  cluster.target_cores = 32;
  cluster.evictions = false;
  lobsim::SiteParams hpc;
  hpc.name = "hpc-partition";
  hpc.target_cores = 32;
  hpc.ramp_seconds = 300.0;
  hpc.availability.scale_hours = 2.0;  // harsher than campus
  lobsim::SiteParams cloud;
  cloud.name = "cloud-burst";
  cloud.target_cores = 32;
  cloud.ramp_seconds = 120.0;
  cloud.evictions = false;  // paid-for instances are dedicated
  cluster.extra_sites = {hpc, cloud};

  auto wl = small_workload();
  wl.num_tasklets = 600;
  lobsim::Engine engine(cluster, wl, 13);
  const auto& m = engine.run(30.0 * 86400.0);
  EXPECT_EQ(m.tasklets_processed, 600u);
  ASSERT_EQ(engine.num_sites(), 3u);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(engine.per_site_tasklets()[s], 0u)
        << "site " << s << " must contribute";
    total += engine.per_site_tasklets()[s];
  }
  EXPECT_EQ(total, 600u);
  // Streams flowed over every site's own WAN path.
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_GT(engine.federation(s).bytes_streamed(), 0.0);
}

TEST(Engine, MultiSiteBeatsSingleSiteMakespan) {
  auto wl = small_workload();
  wl.num_tasklets = 900;
  wl.merge_mode = core::MergeMode::Sequential;
  wl.tail_shrink = true;  // the SS8 adaptivity; see fig14

  auto alone = small_cluster();
  alone.target_cores = 64;
  alone.evictions = false;
  lobsim::Engine single(alone, wl, 19);
  const double t_single = single.run(30.0 * 86400.0).makespan;

  auto fleet = alone;
  lobsim::SiteParams cloud;
  cloud.name = "cloud";
  cloud.target_cores = 64;
  cloud.ramp_seconds = 300.0;
  cloud.evictions = false;
  fleet.extra_sites = {cloud};
  lobsim::Engine both(fleet, wl, 19);
  const double t_fleet = both.run(30.0 * 86400.0).makespan;

  EXPECT_LT(t_fleet, 0.75 * t_single)
      << "doubling the harvested cores must cut the makespan substantially";
}

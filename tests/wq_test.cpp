// Tests for the Work Queue runtime: master dispatch/accounting, multi-slot
// workers, eviction injection, and master -> foreman -> worker hierarchies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "util/trace.hpp"
#include "wq/foreman.hpp"
#include "wq/master.hpp"
#include "wq/worker.hpp"

namespace wq = lobster::wq;
using namespace std::chrono_literals;

namespace {
wq::TaskSpec make_task(std::uint64_t id,
                       std::function<int(wq::TaskContext&)> work,
                       std::string tag = "analysis") {
  wq::TaskSpec spec;
  spec.id = id;
  spec.tag = std::move(tag);
  spec.work = std::move(work);
  return spec;
}

// Drain all results from a master into a vector (call after
// close_submission on a thread or once workers are running).
std::vector<wq::TaskResult> collect(wq::Master& master) {
  std::vector<wq::TaskResult> out;
  while (auto r = master.next_result()) out.push_back(std::move(*r));
  return out;
}
}  // namespace

TEST(Master, SubmitAfterCloseRejected) {
  wq::Master master;
  EXPECT_TRUE(master.submit(make_task(1, [](wq::TaskContext&) { return 0; })));
  master.close_submission();
  EXPECT_FALSE(master.submit(make_task(2, [](wq::TaskContext&) { return 0; })));
}

TEST(Master, SingleWorkerRunsAllTasks) {
  wq::Master master;
  std::atomic<int> executed{0};
  for (int i = 0; i < 100; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  }
  master.close_submission();
  wq::Worker worker("w0", master, 4);
  const auto results = collect(master);
  worker.join();
  EXPECT_EQ(executed.load(), 100);
  ASSERT_EQ(results.size(), 100u);
  std::set<std::uint64_t> ids;
  for (const auto& r : results) {
    EXPECT_TRUE(r.success());
    EXPECT_EQ(r.worker_name, "w0");
    ids.insert(r.id);
  }
  EXPECT_EQ(ids.size(), 100u) << "every task exactly once";
  EXPECT_EQ(master.completed(), 100u);
  EXPECT_EQ(master.failed(), 0u);
}

TEST(Master, CounterPlaneMirrorsLifecycle) {
  lobster::util::CounterRegistry registry;
  wq::Master master;
  master.bind_counters(registry);
  // Bind the worker's counters before any task exists to run: its slot
  // threads start pulling in the constructor, and counts bump only through
  // pointers that are bound.
  wq::Worker worker("w0", master, 4);
  worker.bind_counters(registry);
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  }
  master.close_submission();
  collect(master);
  worker.join();
  EXPECT_EQ(registry.counter("wq.master.submitted").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.dispatched").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.completed").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.failed").value(), 0u);
  EXPECT_EQ(registry.counter("wq.worker.tasks_run").value(), 20u);
}

TEST(Master, FailuresAndExceptionsCounted) {
  wq::Master master;
  master.submit(make_task(1, [](wq::TaskContext&) { return 7; }));
  master.submit(make_task(2, [](wq::TaskContext&) -> int {
    throw std::runtime_error("app crash");
  }));
  master.submit(make_task(3, [](wq::TaskContext&) { return 0; }));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(master.completed(), 1u);
  EXPECT_EQ(master.failed(), 2u);
  for (const auto& r : results) {
    if (r.id == 2)
      EXPECT_EQ(r.exit_code,
                static_cast<int>(wq::TaskExit::ExecutionFailure));
  }
}

TEST(Master, NullWorkIsWrapperFailure) {
  wq::Master master;
  wq::TaskSpec spec;
  spec.id = 9;
  master.submit(std::move(spec));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].exit_code,
            static_cast<int>(wq::TaskExit::WrapperFailure));
}

TEST(Worker, MultipleWorkersShareQueue) {
  wq::Master master;
  for (int i = 0; i < 200; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [](wq::TaskContext&) {
                              std::this_thread::sleep_for(1ms);
                              return 0;
                            }));
  master.close_submission();
  std::vector<std::unique_ptr<wq::Worker>> workers;
  for (int w = 0; w < 4; ++w)
    workers.push_back(std::make_unique<wq::Worker>("w" + std::to_string(w),
                                                   master, 2));
  const auto results = collect(master);
  for (auto& w : workers) w->join();
  EXPECT_EQ(results.size(), 200u);
  std::set<std::string> names;
  for (const auto& r : results) names.insert(r.worker_name);
  EXPECT_GT(names.size(), 1u) << "work should spread across workers";
  std::uint64_t total_run = 0;
  for (auto& w : workers) total_run += w->tasks_run();
  EXPECT_EQ(total_run, 200u);
}

TEST(Worker, EvictionCancelsRunningTasks) {
  wq::Master master;
  std::atomic<bool> started{false};
  // Long-running tasks that poll the cancellation token.
  for (int i = 0; i < 4; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&started](wq::TaskContext& ctx) {
                              started.store(true);
                              for (int k = 0; k < 10000; ++k) {
                                if (ctx.cancel.cancelled()) return 1;
                                std::this_thread::sleep_for(1ms);
                              }
                              return 0;
                            }));
  }
  master.close_submission();
  auto worker = std::make_unique<wq::Worker>("victim", master, 4);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(10ms);
  worker->evict();  // the batch system takes the node back
  const auto results = collect(master);
  worker->join();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.exit_code, static_cast<int>(wq::TaskExit::Evicted));
  }
  EXPECT_EQ(master.evicted(), 4u);
}

TEST(Worker, EvictedWorkIsResubmittable) {
  // The Lobster pattern: evicted tasks are resubmitted until done.
  wq::Master master;
  std::atomic<int> completions{0};
  auto work = [&completions](wq::TaskContext& ctx) {
    for (int k = 0; k < 50; ++k) {
      if (ctx.cancel.cancelled()) return 1;
      std::this_thread::sleep_for(1ms);
    }
    completions.fetch_add(1);
    return 0;
  };
  for (int i = 0; i < 8; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i), work));

  auto victim = std::make_unique<wq::Worker>("victim", master, 2);
  std::this_thread::sleep_for(20ms);
  victim->evict();

  // A reliable worker joins; resubmit everything that came back evicted.
  wq::Worker reliable("reliable", master, 2);
  std::size_t done = 0;
  while (auto r = master.next_result()) {
    if (r->evicted) {
      master.submit(make_task(r->id, work));
    } else {
      EXPECT_TRUE(r->success());
      if (++done == 8) master.close_submission();
    }
  }
  victim->join();
  reliable.join();
  EXPECT_EQ(done, 8u);
  EXPECT_EQ(completions.load(), 8);
}

TEST(Foreman, RelaysTasksAndResults) {
  wq::Master master;
  for (int i = 0; i < 60; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  master.close_submission();
  wq::Foreman foreman("f0", master, 16);
  wq::Worker w1("w1", foreman, 2);
  wq::Worker w2("w2", foreman, 2);
  const auto results = collect(master);
  w1.join();
  w2.join();
  foreman.shutdown();
  EXPECT_EQ(results.size(), 60u);
  EXPECT_EQ(foreman.tasks_relayed(), 60u);
  EXPECT_EQ(foreman.results_relayed(), 60u);
  for (const auto& r : results) EXPECT_TRUE(r.success());
}

TEST(Foreman, HierarchyOfFourForemen) {
  // The paper's production topology: one rank of four foremen, workers with
  // eight cores each.
  wq::Master master;
  constexpr int kTasks = 400;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  master.close_submission();
  std::vector<std::unique_ptr<wq::Foreman>> foremen;
  std::vector<std::unique_ptr<wq::Worker>> workers;
  for (int f = 0; f < 4; ++f) {
    foremen.push_back(std::make_unique<wq::Foreman>("f" + std::to_string(f),
                                                    master, 32));
    for (int w = 0; w < 2; ++w)
      workers.push_back(std::make_unique<wq::Worker>(
          "f" + std::to_string(f) + ".w" + std::to_string(w), *foremen.back(),
          8));
  }
  const auto results = collect(master);
  for (auto& w : workers) w->join();
  for (auto& f : foremen) f->shutdown();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  std::uint64_t relayed = 0;
  for (auto& f : foremen) relayed += f->tasks_relayed();
  EXPECT_EQ(relayed, static_cast<std::uint64_t>(kTasks));
}

TEST(Foreman, ShutdownMidStreamReportsBufferedTasksEvicted) {
  wq::Master master;
  // Submit tasks but attach no workers to the foreman: they sit in its
  // prefetch buffer.  Submission stays open — the Lobster pattern — so
  // evicted tasks can be resubmitted.
  for (int i = 0; i < 10; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  auto foreman = std::make_unique<wq::Foreman>("dying", master, 4);
  std::this_thread::sleep_for(50ms);  // let the pump prefetch
  foreman->shutdown();                 // foreman dies with a full buffer
  // Remaining tasks may still be in the master queue; run a direct worker
  // and resubmit evictions to finish the workload.
  wq::Worker worker("direct", master, 2);
  std::size_t completed = 0, evicted = 0;
  while (auto r = master.next_result()) {
    if (r->evicted) {
      ++evicted;
      master.submit(make_task(r->id, [](wq::TaskContext&) { return 0; }));
    } else if (++completed == 10) {
      master.close_submission();
    }
  }
  EXPECT_EQ(completed, 10u);
  EXPECT_GT(evicted, 0u) << "buffered tasks must come back as evicted";
  EXPECT_EQ(master.evicted(), evicted);
}

TEST(Master, DispatchWaitIsMeasured) {
  wq::Master master;
  master.submit(make_task(1, [](wq::TaskContext&) { return 0; }));
  master.close_submission();
  std::this_thread::sleep_for(30ms);  // task waits in queue
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].dispatch_time, 0.02);
}

// Tests for the Work Queue runtime: master dispatch/accounting, multi-slot
// workers, eviction injection, and master -> foreman -> worker hierarchies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "util/trace.hpp"
#include "wq/foreman.hpp"
#include "wq/master.hpp"
#include "wq/worker.hpp"

namespace wq = lobster::wq;
using namespace std::chrono_literals;

namespace {
wq::TaskSpec make_task(std::uint64_t id,
                       std::function<int(wq::TaskContext&)> work,
                       std::string tag = "analysis") {
  wq::TaskSpec spec;
  spec.id = id;
  spec.tag = std::move(tag);
  spec.work = std::move(work);
  return spec;
}

// Drain all results from a master into a vector (call after
// close_submission on a thread or once workers are running).
std::vector<wq::TaskResult> collect(wq::Master& master) {
  std::vector<wq::TaskResult> out;
  while (auto r = master.next_result()) out.push_back(std::move(*r));
  return out;
}
}  // namespace

TEST(Master, SubmitAfterCloseRejected) {
  wq::Master master;
  EXPECT_TRUE(master.submit(make_task(1, [](wq::TaskContext&) { return 0; })));
  master.close_submission();
  EXPECT_FALSE(master.submit(make_task(2, [](wq::TaskContext&) { return 0; })));
}

TEST(Master, SingleWorkerRunsAllTasks) {
  wq::Master master;
  std::atomic<int> executed{0};
  for (int i = 0; i < 100; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  }
  master.close_submission();
  wq::Worker worker("w0", master, 4);
  const auto results = collect(master);
  worker.join();
  EXPECT_EQ(executed.load(), 100);
  ASSERT_EQ(results.size(), 100u);
  std::set<std::uint64_t> ids;
  for (const auto& r : results) {
    EXPECT_TRUE(r.success());
    EXPECT_EQ(r.worker_name, "w0");
    ids.insert(r.id);
  }
  EXPECT_EQ(ids.size(), 100u) << "every task exactly once";
  EXPECT_EQ(master.completed(), 100u);
  EXPECT_EQ(master.failed(), 0u);
}

TEST(Master, CounterPlaneMirrorsLifecycle) {
  lobster::util::CounterRegistry registry;
  wq::Master master;
  master.bind_counters(registry);
  // Bind the worker's counters before any task exists to run: its slot
  // threads start pulling in the constructor, and counts bump only through
  // pointers that are bound.
  wq::Worker worker("w0", master, 4);
  worker.bind_counters(registry);
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  }
  master.close_submission();
  collect(master);
  worker.join();
  EXPECT_EQ(registry.counter("wq.master.submitted").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.dispatched").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.completed").value(), 20u);
  EXPECT_EQ(registry.counter("wq.master.failed").value(), 0u);
  EXPECT_EQ(registry.counter("wq.worker.tasks_run").value(), 20u);
}

TEST(Master, FailuresAndExceptionsCounted) {
  wq::Master master;
  master.submit(make_task(1, [](wq::TaskContext&) { return 7; }));
  master.submit(make_task(2, [](wq::TaskContext&) -> int {
    throw std::runtime_error("app crash");
  }));
  master.submit(make_task(3, [](wq::TaskContext&) { return 0; }));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(master.completed(), 1u);
  EXPECT_EQ(master.failed(), 2u);
  for (const auto& r : results) {
    if (r.id == 2)
      EXPECT_EQ(r.exit_code,
                static_cast<int>(wq::TaskExit::ExecutionFailure));
  }
}

TEST(Master, NullWorkIsWrapperFailure) {
  wq::Master master;
  wq::TaskSpec spec;
  spec.id = 9;
  master.submit(std::move(spec));
  master.close_submission();
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].exit_code,
            static_cast<int>(wq::TaskExit::WrapperFailure));
}

TEST(Worker, MultipleWorkersShareQueue) {
  wq::Master master;
  for (int i = 0; i < 200; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [](wq::TaskContext&) {
                              std::this_thread::sleep_for(1ms);
                              return 0;
                            }));
  master.close_submission();
  std::vector<std::unique_ptr<wq::Worker>> workers;
  for (int w = 0; w < 4; ++w)
    workers.push_back(std::make_unique<wq::Worker>("w" + std::to_string(w),
                                                   master, 2));
  const auto results = collect(master);
  for (auto& w : workers) w->join();
  EXPECT_EQ(results.size(), 200u);
  std::set<std::string> names;
  for (const auto& r : results) names.insert(r.worker_name);
  EXPECT_GT(names.size(), 1u) << "work should spread across workers";
  std::uint64_t total_run = 0;
  for (auto& w : workers) total_run += w->tasks_run();
  EXPECT_EQ(total_run, 200u);
}

TEST(Worker, EvictionCancelsRunningTasks) {
  wq::Master master;
  std::atomic<bool> started{false};
  // Long-running tasks that poll the cancellation token.
  for (int i = 0; i < 4; ++i) {
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&started](wq::TaskContext& ctx) {
                              started.store(true);
                              for (int k = 0; k < 10000; ++k) {
                                if (ctx.cancel.cancelled()) return 1;
                                std::this_thread::sleep_for(1ms);
                              }
                              return 0;
                            }));
  }
  master.close_submission();
  auto worker = std::make_unique<wq::Worker>("victim", master, 4);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(10ms);
  worker->evict();  // the batch system takes the node back
  const auto results = collect(master);
  worker->join();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.exit_code, static_cast<int>(wq::TaskExit::Evicted));
  }
  EXPECT_EQ(master.evicted(), 4u);
}

TEST(Worker, EvictedWorkIsResubmittable) {
  // The Lobster pattern: evicted tasks are resubmitted until done.
  wq::Master master;
  std::atomic<int> completions{0};
  auto work = [&completions](wq::TaskContext& ctx) {
    for (int k = 0; k < 50; ++k) {
      if (ctx.cancel.cancelled()) return 1;
      std::this_thread::sleep_for(1ms);
    }
    completions.fetch_add(1);
    return 0;
  };
  for (int i = 0; i < 8; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i), work));

  auto victim = std::make_unique<wq::Worker>("victim", master, 2);
  std::this_thread::sleep_for(20ms);
  victim->evict();

  // A reliable worker joins; resubmit everything that came back evicted.
  wq::Worker reliable("reliable", master, 2);
  std::size_t done = 0;
  while (auto r = master.next_result()) {
    if (r->evicted) {
      master.submit(make_task(r->id, work));
    } else {
      EXPECT_TRUE(r->success());
      if (++done == 8) master.close_submission();
    }
  }
  victim->join();
  reliable.join();
  EXPECT_EQ(done, 8u);
  EXPECT_EQ(completions.load(), 8);
}

TEST(Foreman, RelaysTasksAndResults) {
  wq::Master master;
  for (int i = 0; i < 60; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  master.close_submission();
  wq::Foreman foreman("f0", master, 16);
  wq::Worker w1("w1", foreman, 2);
  wq::Worker w2("w2", foreman, 2);
  const auto results = collect(master);
  w1.join();
  w2.join();
  foreman.shutdown();
  EXPECT_EQ(results.size(), 60u);
  EXPECT_EQ(foreman.tasks_relayed(), 60u);
  EXPECT_EQ(foreman.results_relayed(), 60u);
  for (const auto& r : results) EXPECT_TRUE(r.success());
}

TEST(Foreman, HierarchyOfFourForemen) {
  // The paper's production topology: one rank of four foremen, workers with
  // eight cores each.
  wq::Master master;
  constexpr int kTasks = 400;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  master.close_submission();
  std::vector<std::unique_ptr<wq::Foreman>> foremen;
  std::vector<std::unique_ptr<wq::Worker>> workers;
  for (int f = 0; f < 4; ++f) {
    foremen.push_back(std::make_unique<wq::Foreman>("f" + std::to_string(f),
                                                    master, 32));
    for (int w = 0; w < 2; ++w)
      workers.push_back(std::make_unique<wq::Worker>(
          "f" + std::to_string(f) + ".w" + std::to_string(w), *foremen.back(),
          8));
  }
  const auto results = collect(master);
  for (auto& w : workers) w->join();
  for (auto& f : foremen) f->shutdown();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  std::uint64_t relayed = 0;
  for (auto& f : foremen) relayed += f->tasks_relayed();
  EXPECT_EQ(relayed, static_cast<std::uint64_t>(kTasks));
}

TEST(Foreman, ShutdownMidStreamReportsBufferedTasksEvicted) {
  wq::Master master;
  // Submit tasks but attach no workers to the foreman: they sit in its
  // prefetch buffer.  Submission stays open — the Lobster pattern — so
  // evicted tasks can be resubmitted.
  for (int i = 0; i < 10; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  auto foreman = std::make_unique<wq::Foreman>("dying", master, 4);
  std::this_thread::sleep_for(50ms);  // let the pump prefetch
  foreman->shutdown();                 // foreman dies with a full buffer
  // Remaining tasks may still be in the master queue; run a direct worker
  // and resubmit evictions to finish the workload.
  wq::Worker worker("direct", master, 2);
  std::size_t completed = 0, evicted = 0;
  while (auto r = master.next_result()) {
    if (r->evicted) {
      ++evicted;
      master.submit(make_task(r->id, [](wq::TaskContext&) { return 0; }));
    } else if (++completed == 10) {
      master.close_submission();
    }
  }
  EXPECT_EQ(completed, 10u);
  EXPECT_GT(evicted, 0u) << "buffered tasks must come back as evicted";
  EXPECT_EQ(master.evicted(), evicted);
}

TEST(Foreman, MidShutdownSendNotCountedRelayed) {
  // Regression for the relayed-before-send accounting bug: a pump blocked
  // in the bounded send when shutdown hits must NOT count that task as
  // relayed — it never entered the window and is reported evicted.  The
  // old code incremented relayed_ first, overstating throughput by one.
  wq::Master master;
  for (int i = 0; i < 5; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  auto foreman = std::make_unique<wq::Foreman>("dying", master, 2);
  // Window 2: the pump buffers two tasks, then blocks sending the third.
  std::this_thread::sleep_for(100ms);
  foreman->shutdown();
  // Exact ledger: 2 buffered tasks were accepted (relayed) and evicted at
  // shutdown; the mid-send third was evicted without ever being relayed.
  EXPECT_EQ(foreman->tasks_relayed(), 2u);
  EXPECT_EQ(foreman->tasks_evicted(), 2u);
  EXPECT_EQ(foreman->tasks_dispatched(), 0u);
  EXPECT_EQ(master.evicted(), 3u);
  EXPECT_EQ(foreman->tasks_relayed(),
            foreman->tasks_dispatched() + foreman->tasks_stolen_from() +
                foreman->tasks_evicted());
  // The workload still finishes: resubmit the evictions to a direct worker.
  wq::Worker worker("direct", master, 2);
  std::size_t completed = 0;
  while (auto r = master.next_result()) {
    if (r->evicted) {
      EXPECT_TRUE(
          master.submit(make_task(r->id, [](wq::TaskContext&) { return 0; })));
    } else if (++completed == 5) {
      master.close_submission();
    }
  }
  worker.join();
  EXPECT_EQ(completed, 5u);
  EXPECT_EQ(master.submitted(),
            master.completed() + master.failed() + master.evicted());
}

TEST(Foreman, DepthTwoTreePreservesAccounting) {
  // Tree: master -> hub foreman -> two leaf foremen -> workers.  Relay
  // conservation must hold at every level and the master's books must
  // balance exactly (submitted == completed + failed + evicted).
  wq::Master master;
  constexpr int kTasks = 300;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  master.close_submission();
  wq::Foreman hub("hub", master, 64);
  wq::Foreman leaf_a("leaf-a", hub, 16);
  wq::Foreman leaf_b("leaf-b", hub, 16);
  wq::Worker wa("wa", leaf_a, 4);
  wq::Worker wb("wb", leaf_b, 4);
  const auto results = collect(master);
  wa.join();
  wb.join();
  leaf_a.shutdown();
  leaf_b.shutdown();
  hub.shutdown();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  // Level conservation: everything the hub relayed was pulled by a leaf,
  // and everything a leaf relayed was dispatched to a worker.
  EXPECT_EQ(hub.tasks_relayed(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(hub.tasks_dispatched(),
            leaf_a.tasks_relayed() + leaf_b.tasks_relayed());
  EXPECT_EQ(hub.tasks_relayed(),
            hub.tasks_dispatched() + hub.tasks_stolen_from() +
                hub.tasks_evicted());
  for (const wq::Foreman* leaf : {&leaf_a, &leaf_b}) {
    EXPECT_EQ(leaf->tasks_relayed(),
              leaf->tasks_dispatched() + leaf->tasks_stolen_from() +
                  leaf->tasks_evicted());
    EXPECT_EQ(leaf->tasks_evicted(), 0u);
  }
  // Results climb back through both levels.
  EXPECT_EQ(hub.results_relayed(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(leaf_a.results_relayed() + leaf_b.results_relayed(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(master.submitted(),
            master.completed() + master.failed() + master.evicted());
  EXPECT_EQ(master.completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(Foreman, DepthThreeChainRelaysAll) {
  // A depth-3 relay chain: master -> f1 -> f2 -> f3 -> worker.  Every level
  // sees every task and every result exactly once.
  wq::Master master;
  constexpr int kTasks = 120;
  for (int i = 0; i < kTasks; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  master.close_submission();
  wq::Foreman f1("f1", master, 32);
  wq::Foreman f2("f2", f1, 16);
  wq::Foreman f3("f3", f2, 8);
  wq::Worker worker("w", f3, 4);
  const auto results = collect(master);
  worker.join();
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  for (const wq::Foreman* f : {&f1, &f2, &f3}) {
    EXPECT_EQ(f->tasks_relayed(), static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(f->tasks_dispatched(), static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(f->results_relayed(), static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(f->tasks_evicted(), 0u);
  }
  EXPECT_EQ(master.completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(StealGroup, IdleLeafStealsFromSibling) {
  // Sibling leaves under one master: leaf-a has no workers, so its whole
  // window must be stolen and run by leaf-b's workers through the group.
  wq::Master master;
  lobster::util::CounterRegistry registry;
  constexpr int kTasks = 60;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i)
    master.submit(make_task(static_cast<std::uint64_t>(i),
                            [&executed](wq::TaskContext&) {
                              executed.fetch_add(1);
                              return 0;
                            }));
  master.close_submission();
  wq::StealGroup group;
  group.bind_counters(registry);
  wq::Foreman leaf_a("leaf-a", master, 32, &group);
  wq::Foreman leaf_b("leaf-b", master, 8, &group);
  wq::Worker worker("wb", leaf_b, 4);
  const auto results = collect(master);
  worker.join();
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  for (const auto& r : results) EXPECT_TRUE(r.success());
  // leaf-a dispatched nothing itself: every task it accepted was stolen.
  EXPECT_GT(leaf_a.tasks_relayed(), 0u);
  EXPECT_EQ(leaf_a.tasks_dispatched(), 0u);
  EXPECT_EQ(leaf_a.tasks_stolen_from(), leaf_a.tasks_relayed());
  EXPECT_EQ(leaf_b.tasks_stolen(), leaf_a.tasks_stolen_from());
  EXPECT_EQ(group.tasks_stolen(), leaf_b.tasks_stolen());
  EXPECT_GE(group.steal_attempts(), group.tasks_stolen());
  EXPECT_EQ(registry.counter("wq.steal.tasks").value(), group.tasks_stolen());
  // Ledger conservation on both siblings.
  EXPECT_EQ(leaf_a.tasks_relayed(),
            leaf_a.tasks_dispatched() + leaf_a.tasks_stolen_from() +
                leaf_a.tasks_evicted());
  EXPECT_EQ(leaf_b.tasks_relayed(),
            leaf_b.tasks_dispatched() + leaf_b.tasks_stolen_from() +
                leaf_b.tasks_evicted());
  EXPECT_EQ(master.completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(StealGroup, StealVsShutdownRaceKeepsAccountingExact) {
  // Shut the victim down while the thief's workers are actively stealing
  // from it.  Whatever the interleaving, each buffered task must land on
  // exactly one side of the ledger (stolen_from XOR evicted), and the
  // master's books must balance after the evictions are resubmitted.
  for (int round = 0; round < 10; ++round) {
    wq::Master master;
    constexpr int kTasks = 40;
    std::atomic<int> completions{0};
    auto work = [&completions](wq::TaskContext&) {
      std::this_thread::sleep_for(1ms);
      completions.fetch_add(1);
      return 0;
    };
    for (int i = 0; i < kTasks; ++i)
      master.submit(make_task(static_cast<std::uint64_t>(i), work));

    wq::StealGroup group;
    auto victim = std::make_unique<wq::Foreman>("victim", master, 24, &group);
    wq::Foreman thief("thief", master, 4, &group);
    wq::Worker worker("wt", thief, 2);
    // Let the victim buffer and the thief start stealing, then kill the
    // victim mid-flight.
    std::this_thread::sleep_for(5ms);
    victim->shutdown();
    EXPECT_EQ(victim->tasks_relayed(),
              victim->tasks_dispatched() + victim->tasks_stolen_from() +
                  victim->tasks_evicted())
        << "a task was double-counted or lost across the steal/shutdown race";
    // Resubmit evictions until the workload completes.
    std::size_t done = 0, evicted = 0;
    while (auto r = master.next_result()) {
      if (r->evicted) {
        ++evicted;
        EXPECT_TRUE(master.submit(make_task(r->id, work)));
      } else if (++done == kTasks) {
        master.close_submission();
      }
    }
    worker.join();
    EXPECT_EQ(done, static_cast<std::size_t>(kTasks));
    EXPECT_EQ(master.evicted(), evicted);
    EXPECT_EQ(master.submitted(),
              master.completed() + master.failed() + master.evicted());
  }
}

TEST(Master, RejectedResubmitIsCountedNotSilent) {
  // A dying foreman's evicted results invite resubmission, but a resubmit
  // after close_submission() must fail loudly: counted in
  // rejected_resubmits() and the wq.master.rejected_resubmits counter, not
  // silently dropped.
  lobster::util::CounterRegistry registry;
  wq::Master master;
  master.bind_counters(registry);
  for (int i = 0; i < 2; ++i)
    master.submit(
        make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
          return 0;
        }));
  auto foreman = std::make_unique<wq::Foreman>("dying", master, 4);
  std::this_thread::sleep_for(50ms);  // both tasks reach the buffer
  master.close_submission();
  foreman->shutdown();  // evicted results delivered after close
  std::size_t rejected = 0;
  while (auto r = master.next_result()) {
    ASSERT_TRUE(r->evicted);
    if (!master.submit(make_task(r->id, [](wq::TaskContext&) { return 0; })))
      ++rejected;
  }
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(master.rejected_resubmits(), 2u);
  EXPECT_EQ(registry.counter("wq.master.rejected_resubmits").value(), 2u);
  EXPECT_EQ(master.evicted(), 2u);
  EXPECT_EQ(master.completed(), 0u);
}

TEST(Master, CloseRacingLastDeliveryNeverLosesWakeup) {
  // Stress the close_submission()/deliver() interleaving the lost-wakeup
  // fix pins: submission closes concurrently with the final delivery (and
  // with a doomed late resubmit).  Any lost close leaves next_result()
  // blocked forever, so mere termination is the assertion; run it under
  // TSan to pin the memory ordering too.
  for (int round = 0; round < 200; ++round) {
    wq::Master master;
    constexpr int kTasks = 4;
    for (int i = 0; i < kTasks; ++i)
      master.submit(
          make_task(static_cast<std::uint64_t>(i), [](wq::TaskContext&) {
            return 0;
          }));
    // Deliverer: a bare-hands worker pulling and completing every task.
    std::thread deliverer([&master] {
      while (auto spec = master.next_task(5ms)) {
        wq::TaskResult r;
        r.id = spec->id;
        r.tag = spec->tag;
        r.exit_code = 0;
        r.worker_name = "stress";
        master.deliver(std::move(r));
        if (master.drained()) break;
      }
    });
    // Closer: races close_submission against the last delivery.
    std::thread closer([&master] {
      while (master.completed() + master.failed() < kTasks - 1)
        std::this_thread::yield();
      master.close_submission();
    });
    // Doomed resubmitter: a late submit racing the close must either be
    // accepted (and then delivered) or rejected — never wedge the close.
    std::thread resubmitter([&master] {
      master.submit(make_task(99, [](wq::TaskContext&) { return 0; }));
    });
    std::size_t got = 0;
    while (auto r = master.next_result()) ++got;  // must terminate
    deliverer.join();
    closer.join();
    resubmitter.join();
    EXPECT_EQ(got, master.submitted());
    EXPECT_EQ(master.submitted(),
              master.completed() + master.failed() + master.evicted());
  }
}

TEST(Master, DispatchWaitIsMeasured) {
  wq::Master master;
  master.submit(make_task(1, [](wq::TaskContext&) { return 0; }));
  master.close_submission();
  std::this_thread::sleep_for(30ms);  // task waits in queue
  wq::Worker worker("w0", master, 1);
  const auto results = collect(master);
  worker.join();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].dispatch_time, 0.02);
}

// Tests for the Parrot VFS: mount resolution, POSIX-like descriptor
// semantics over CVMFS-backed and scratch files, deterministic content,
// and cache interaction.
#include <gtest/gtest.h>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/parrot_vfs.hpp"
#include "cvmfs/repository.hpp"

namespace cv = lobster::cvmfs;

namespace {
struct Fixture {
  cv::Repository repo;
  std::unique_ptr<cv::CacheGroup> group;
  int fetches = 0;

  Fixture() {
    repo.add("/cvmfs/cms.cern.ch/lib/libPhysics.so", 4096.0);
    repo.add("/cvmfs/cms.cern.ch/lib/libTracker.so", 100.0);
    repo.add("/cvmfs/cms.cern.ch/bin/cmsRun", 512.0);
    group = std::make_unique<cv::CacheGroup>(
        cv::CacheMode::Alien, [this](const cv::FileObject& obj) {
          ++fetches;
          return cv::digest_of(obj.path, obj.size_bytes);
        });
  }

  cv::ParrotVfs make_vfs() {
    cv::ParrotVfs vfs;
    vfs.mount_cvmfs("/cvmfs/cms.cern.ch", repo, group->make_instance());
    vfs.mount_scratch("/tmp/sandbox");
    return vfs;
  }
};
}  // namespace

TEST(ParrotVfs, OpenReadCloseCvmfsFile) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  const int fd = vfs.open("/cvmfs/cms.cern.ch/bin/cmsRun");
  const auto data = vfs.read(fd, 512);
  EXPECT_EQ(data.size(), 512u);
  EXPECT_TRUE(vfs.read(fd, 1).empty()) << "EOF";
  vfs.close(fd);
  EXPECT_EQ(vfs.open_fds(), 0u);
  EXPECT_EQ(fx.fetches, 1);
}

TEST(ParrotVfs, ReadsAreDeterministicAndSeekable) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  const int fd = vfs.open("/cvmfs/cms.cern.ch/lib/libTracker.so");
  const auto all = vfs.read(fd, 100);
  ASSERT_EQ(all.size(), 100u);
  // Seek to the middle; bytes must match the suffix of a full read —
  // "a seek operation is done with the local copy whenever possible".
  EXPECT_EQ(vfs.seek(fd, 40), 40u);
  const auto tail = vfs.read(fd, 60);
  EXPECT_EQ(tail, all.substr(40));
  // Independent opens see identical content.
  const int fd2 = vfs.open("/cvmfs/cms.cern.ch/lib/libTracker.so");
  EXPECT_EQ(vfs.read(fd2, 100), all);
  // And the object_content helper agrees.
  const auto obj = fx.repo.lookup("/cvmfs/cms.cern.ch/lib/libTracker.so");
  EXPECT_EQ(cv::object_content(*obj, 0, 100), all);
}

TEST(ParrotVfs, CacheHitOnSecondOpen) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  vfs.close(vfs.open("/cvmfs/cms.cern.ch/lib/libPhysics.so"));
  vfs.close(vfs.open("/cvmfs/cms.cern.ch/lib/libPhysics.so"));
  EXPECT_EQ(fx.fetches, 1) << "second open served from the parrot cache";
}

TEST(ParrotVfs, CvmfsIsReadOnly) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  EXPECT_THROW(vfs.create("/cvmfs/cms.cern.ch/lib/evil.so"), cv::VfsError);
  const int fd = vfs.open("/cvmfs/cms.cern.ch/bin/cmsRun");
  EXPECT_THROW(vfs.write(fd, "nope"), cv::VfsError);
}

TEST(ParrotVfs, ScratchCreateWriteReadBack) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  const int fd = vfs.create("/tmp/sandbox/out.root");
  vfs.write(fd, "histo");
  vfs.write(fd, "grams");
  vfs.close(fd);
  const int rd = vfs.open("/tmp/sandbox/out.root");
  EXPECT_EQ(vfs.read(rd, 100), "histograms");
  EXPECT_EQ(vfs.stat("/tmp/sandbox/out.root").size, 10u);
  EXPECT_FALSE(vfs.stat("/tmp/sandbox/out.root").read_only);
}

TEST(ParrotVfs, StatExistsListdir) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  EXPECT_TRUE(vfs.exists("/cvmfs/cms.cern.ch/bin/cmsRun"));
  EXPECT_FALSE(vfs.exists("/cvmfs/cms.cern.ch/bin/missing"));
  const auto st = vfs.stat("/cvmfs/cms.cern.ch/lib/libPhysics.so");
  EXPECT_EQ(st.size, 4096u);
  EXPECT_TRUE(st.read_only);
  const auto libs = vfs.listdir("/cvmfs/cms.cern.ch/lib");
  ASSERT_EQ(libs.size(), 2u);
  EXPECT_EQ(libs[0], "libPhysics.so");
  EXPECT_EQ(libs[1], "libTracker.so");
}

TEST(ParrotVfs, ErrorsOnBadPathsAndDescriptors) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  EXPECT_THROW(vfs.open("/cvmfs/cms.cern.ch/nope"), cv::VfsError);
  EXPECT_THROW(vfs.open("/unmounted/path"), cv::VfsError);
  EXPECT_THROW(vfs.stat("/unmounted/path"), cv::VfsError);
  EXPECT_THROW(vfs.read(99, 1), cv::VfsError);
  EXPECT_THROW(vfs.seek(99, 0), cv::VfsError);
  EXPECT_THROW(vfs.close(99), cv::VfsError);
  EXPECT_THROW(vfs.mount_scratch("relative/path"), cv::VfsError);
}

TEST(ParrotVfs, PrefixMatchingRespectsComponents) {
  Fixture fx;
  cv::Repository other;
  other.add("/cvmfs/cms.cern.ch-extra/file", 10.0);
  auto vfs = fx.make_vfs();
  // "/cvmfs/cms.cern.ch-extra" must NOT match the "/cvmfs/cms.cern.ch"
  // mount.
  EXPECT_THROW(vfs.open("/cvmfs/cms.cern.ch-extra/file"), cv::VfsError);
}

TEST(ParrotVfs, PartialReadsAdvanceOffset) {
  Fixture fx;
  auto vfs = fx.make_vfs();
  const int fd = vfs.open("/cvmfs/cms.cern.ch/lib/libTracker.so");
  std::string assembled;
  for (int i = 0; i < 20; ++i) assembled += vfs.read(fd, 7);
  EXPECT_EQ(assembled.size(), 100u) << "7-byte chunks until EOF";
  vfs.seek(fd, 0);
  EXPECT_EQ(vfs.read(fd, 100), assembled);
}

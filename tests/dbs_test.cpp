// Tests for the dataset bookkeeping service and synthetic dataset builder.
#include <gtest/gtest.h>

#include "dbs/dbs.hpp"

namespace dbs = lobster::dbs;
namespace lu = lobster::util;

TEST(Dbs, PublishAndQuery) {
  dbs::DatasetBookkeeping svc;
  dbs::Dataset ds;
  ds.name = "/Test/Run/AOD";
  ds.files.push_back({"/Test/Run/AOD/f0.root", 1e9, 10000, {{1, 1}, {1, 2}}});
  svc.publish(ds);
  EXPECT_TRUE(svc.has("/Test/Run/AOD"));
  const auto q = svc.query("/Test/Run/AOD");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->files.size(), 1u);
  EXPECT_EQ(q->files[0].events, 10000u);
  EXPECT_FALSE(svc.query("/Missing/DS").has_value());
}

TEST(Dbs, DuplicateAndEmptyNamesRejected) {
  dbs::DatasetBookkeeping svc;
  dbs::Dataset ds;
  ds.name = "/A/B/C";
  svc.publish(ds);
  EXPECT_THROW(svc.publish(ds), std::invalid_argument);
  dbs::Dataset anon;
  EXPECT_THROW(svc.publish(anon), std::invalid_argument);
}

TEST(Dbs, ListIsSorted) {
  dbs::DatasetBookkeeping svc;
  for (const char* name : {"/Z/x", "/A/y", "/M/z"}) {
    dbs::Dataset ds;
    ds.name = name;
    svc.publish(ds);
  }
  const auto names = svc.list();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "/A/y");
  EXPECT_EQ(names[2], "/Z/x");
}

TEST(Dbs, DatasetAggregates) {
  dbs::Dataset ds;
  ds.files.push_back({"a", 10.0, 5, {{1, 1}}});
  ds.files.push_back({"b", 20.0, 7, {{1, 2}, {1, 3}}});
  EXPECT_DOUBLE_EQ(ds.total_bytes(), 30.0);
  EXPECT_EQ(ds.total_events(), 12u);
  EXPECT_EQ(ds.total_lumis(), 3u);
}

TEST(SyntheticDataset, RespectsSpec) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = 50;
  spec.mean_file_bytes = 2.0e9;
  spec.event_bytes = 100.0e3;
  const auto ds = dbs::make_synthetic_dataset(spec, lu::Rng(1));
  EXPECT_EQ(ds.files.size(), 50u);
  // Mean file size within 20% of the target.
  EXPECT_NEAR(ds.total_bytes() / 50.0, 2.0e9, 0.4e9);
  for (const auto& f : ds.files) {
    EXPECT_GT(f.size_bytes, 0.0);
    EXPECT_GE(f.events, 1u);
    EXPECT_FALSE(f.lumis.empty());
    // events ~ size / event_bytes
    EXPECT_NEAR(static_cast<double>(f.events), f.size_bytes / 100.0e3, 1.0);
  }
}

TEST(SyntheticDataset, DeterministicForSeed) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = 10;
  const auto a = dbs::make_synthetic_dataset(spec, lu::Rng(7));
  const auto b = dbs::make_synthetic_dataset(spec, lu::Rng(7));
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].lfn, b.files[i].lfn);
    EXPECT_DOUBLE_EQ(a.files[i].size_bytes, b.files[i].size_bytes);
  }
}

TEST(SyntheticDataset, LumisAreUniqueAndOrdered) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = 20;
  const auto ds = dbs::make_synthetic_dataset(spec, lu::Rng(3));
  dbs::Lumisection prev{0, 0};
  for (const auto& f : ds.files)
    for (const auto& l : f.lumis) {
      EXPECT_TRUE(prev < l) << "lumis must be strictly increasing";
      prev = l;
    }
}

TEST(SyntheticDataset, RejectsBadSpec) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = 0;
  EXPECT_THROW(dbs::make_synthetic_dataset(spec, lu::Rng(1)),
               std::invalid_argument);
  spec.num_files = 1;
  spec.mean_file_bytes = -1.0;
  EXPECT_THROW(dbs::make_synthetic_dataset(spec, lu::Rng(1)),
               std::invalid_argument);
}

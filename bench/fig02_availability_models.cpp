// fig02_availability_models — companion sweep to Figure 2: the same
// workflow under the four availability climates (weibull / trace / diurnal
// / adversarial-burst) behind the SiteManager.
//
// Figure 2 measures *one* empirical climate; the paper's argument — task
// sizing, retry discipline, merge-group loss — depends on what the climate
// looks like, so this bench runs a fixed mid-size workflow through every
// model and prints the side-by-side damage report: eviction counts,
// goodput fraction (CPU over total worker-occupied time), tasklet retry
// totals and makespan.  The trace model replays a synthesized availability
// log shared across all runs, exercising the same code path a real
// HTCondor-log CSV would.
//
// Usage: fig02_availability_models [--seeds N] [--jobs M]
#include <cstdio>
#include <memory>
#include <vector>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {
lobsim::RunSpec base_spec() {
  lobsim::RunSpec spec;
  // A 512-core opportunistic slice with ~1 h tasks: big enough that the
  // climates separate, small enough to sweep over seeds quickly.
  spec.cluster.target_cores = 512;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 900.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 6000;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 300.0;
  spec.workload.tasklet_input_bytes = 100e6;
  spec.workload.tasklet_output_bytes = 15e6;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.workload.merge_policy.target_bytes = 3.5e9;
  spec.time_cap = 30.0 * 86400.0;
  return spec;
}
}  // namespace

int main(int argc, char** argv) {
  lobsim::CampaignOptions opts;
  try {
    opts = lobsim::parse_campaign_flags(argc, argv, 2015, 3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::puts("=== Figure 2 companion: availability-model sweep ===");
  std::printf("512 opportunistic cores, 1000 six-tasklet tasks, %zu seed%s"
              " x %zu jobs\n\n",
              opts.seeds.size(), opts.seeds.size() == 1 ? "" : "s",
              opts.jobs);

  // The first three climates share the Figure 2 Weibull calibration (shape
  // 0.8, scale 4 h) so their differences are the *shape* of the climate;
  // the adversarial bursts are deliberately harsher (a 2-hourly preemption
  // wave claiming 70 % of the pool) — the stress case.
  std::vector<lobsim::RunSpec> specs;

  lobsim::RunSpec weibull = base_spec();
  weibull.label = "weibull";
  weibull.cluster.availability.kind = lobsim::AvailabilityKind::Weibull;
  specs.push_back(weibull);

  // Trace replay: a synthesized multi-month log stands in for a parsed
  // HTCondor eviction log; the shared_ptr is shared by every run of the
  // sweep (no per-run reload, still bitwise deterministic under --jobs).
  lobsim::RunSpec trace = base_spec();
  trace.label = "trace";
  trace.cluster.availability.kind = lobsim::AvailabilityKind::Trace;
  trace.cluster.availability.trace =
      std::make_shared<const std::vector<double>>(
          core::synthesize_availability_log(
              20000, util::Rng(2015).stream("fig2-trace"), 0.8, 4.0));
  specs.push_back(trace);

  lobsim::RunSpec diurnal = base_spec();
  diurnal.label = "diurnal";
  diurnal.cluster.availability.kind = lobsim::AvailabilityKind::Diurnal;
  diurnal.cluster.availability.diurnal_amplitude = 0.7;
  diurnal.cluster.availability.diurnal_peak_hour = 14.0;
  specs.push_back(diurnal);

  lobsim::RunSpec burst = base_spec();
  burst.label = "adversarial-burst";
  burst.cluster.availability.kind = lobsim::AvailabilityKind::AdversarialBurst;
  burst.cluster.availability.burst_period_hours = 2.0;
  burst.cluster.availability.burst_fraction = 0.7;
  specs.push_back(burst);

  lobsim::Campaign campaign(opts.jobs);
  for (const auto& spec : specs) campaign.add_seed_sweep(spec, opts.seeds);
  campaign.run();

  util::Table table({"model", "evictions", "retried tasklets", "goodput",
                     "failed", "makespan"});
  for (const auto& spec : specs) {
    util::RunningStats evicted, retried, goodput, failed, makespan;
    for (const auto& r : campaign.results()) {
      if (r.label != spec.label) continue;
      if (!r.ok()) {
        std::fprintf(stderr, "run %s/%llu failed: %s\n", r.label.c_str(),
                     static_cast<unsigned long long>(r.seed),
                     r.error.c_str());
        continue;
      }
      evicted.add(static_cast<double>(r.stats.tasks_evicted));
      retried.add(static_cast<double>(r.stats.tasklets_retried));
      failed.add(static_cast<double>(r.stats.tasks_failed));
      makespan.add(r.stats.makespan);
      const double total = r.stats.breakdown.total();
      goodput.add(total > 0.0 ? r.stats.breakdown.cpu / total : 0.0);
    }
    table.row({spec.label, util::Table::num(evicted.mean(), 1),
               util::Table::num(retried.mean(), 1),
               util::Table::num(100.0 * goodput.mean(), 1) + " %",
               util::Table::num(failed.mean(), 1),
               util::format_duration(makespan.mean())});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading: the weibull and trace columns agree closely (the");
  std::puts("trace *is* a weibull log, replayed); the diurnal climate trades");
  std::puts("calm nights for brutal afternoons at the same mean; the");
  std::puts("2-hourly preemption waves are the harshest — deaths synchronize");
  std::puts("on the burst instants, so co-scheduled tasks (and planned merge");
  std::puts("groups) die together and goodput drops the most.");
  return 0;
}

// fig03_dispatch_policies — the Figure 3 "optimal task length" trade-off,
// policy-driven.  Figure 3 fixes a *static* optimum (~1 h of work per task)
// by Monte Carlo; this companion sweeps the live DispatchPolicy zoo — fifo
// (the static production default), tail-shrink, site-aware and the §4.1
// lifetime-aware sizer ("jobs are created on demand ... sized to the
// expected lifetime of the worker") — across three availability climates
// and reports the same trade-off from the running engine: eviction counts,
// tasklets retried (the work an eviction throws away) and makespan.
//
// The lifetime policy is the interesting row: it queries the site's
// AvailabilityModel at every pull, so under the adversarial-burst climate
// task sizes shrink as the next preemption wave approaches and the retry
// bill drops relative to fifo's fixed-size tasks.
//
// Usage: fig03_dispatch_policies [--seeds N] [--jobs M]
#include <cstdio>
#include <string>
#include <vector>

#include "lobsim/campaign.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {
lobsim::RunSpec base_spec() {
  lobsim::RunSpec spec;
  // The fig02 availability-sweep workload: a 512-core opportunistic slice
  // with ~1 h fixed tasks, big enough for the policies to separate.
  spec.cluster.target_cores = 512;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 900.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 6000;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 300.0;
  spec.workload.tasklet_input_bytes = 100e6;
  spec.workload.tasklet_output_bytes = 15e6;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.workload.merge_policy.target_bytes = 3.5e9;
  spec.time_cap = 30.0 * 86400.0;
  return spec;
}

struct Climate {
  const char* name;
  lobsim::AvailabilityConfig config;
};

std::vector<Climate> climates() {
  std::vector<Climate> out;
  Climate weibull{"weibull", {}};
  out.push_back(weibull);

  Climate diurnal{"diurnal", {}};
  diurnal.config.kind = lobsim::AvailabilityKind::Diurnal;
  diurnal.config.diurnal_amplitude = 0.7;
  diurnal.config.diurnal_peak_hour = 14.0;
  out.push_back(diurnal);

  // The stress case: a 2-hourly preemption wave claiming 70 % of the pool.
  Climate burst{"adversarial-burst", {}};
  burst.config.kind = lobsim::AvailabilityKind::AdversarialBurst;
  burst.config.burst_period_hours = 2.0;
  burst.config.burst_fraction = 0.7;
  out.push_back(burst);
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  lobsim::CampaignOptions opts;
  try {
    opts = lobsim::parse_campaign_flags(argc, argv, 2015, 3);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::puts("=== Figure 3 companion: dispatch-policy x climate sweep ===");
  std::printf("512 opportunistic cores, 1000 six-tasklet tasks, %zu seed%s"
              " x %zu jobs\n\n",
              opts.seeds.size(), opts.seeds.size() == 1 ? "" : "s", opts.jobs);

  const std::vector<lobsim::DispatchMode> policies = {
      lobsim::DispatchMode::Fifo, lobsim::DispatchMode::TailShrink,
      lobsim::DispatchMode::SiteAware, lobsim::DispatchMode::Lifetime};

  std::vector<lobsim::RunSpec> specs;
  for (const auto& climate : climates()) {
    for (const auto mode : policies) {
      lobsim::RunSpec spec = base_spec();
      spec.cluster.availability = climate.config;
      spec.workload.dispatch = mode;
      spec.label = std::string(climate.name) + "/" + lobsim::to_string(mode);
      specs.push_back(std::move(spec));
    }
  }

  lobsim::Campaign campaign(opts.jobs);
  campaign.add_grid(specs, opts.seeds);
  campaign.run();

  util::Table table({"climate", "policy", "evictions", "retried tasklets",
                     "goodput", "makespan"});
  for (const auto& agg : campaign.aggregate()) {
    const std::size_t slash = agg.label.find('/');
    std::string makespan = util::format_duration(agg.makespan.mean());
    if (agg.incomplete > 0) makespan = "INCOMPLETE (>" + makespan + ")";
    // Goodput = CPU over total worker-occupied time, averaged over the
    // cell's runs.
    util::RunningStats goodput;
    for (const auto& r : campaign.results()) {
      if (r.label != agg.label || !r.ok()) continue;
      const double total = r.stats.breakdown.total();
      goodput.add(total > 0.0 ? r.stats.breakdown.cpu / total : 0.0);
    }
    table.row({agg.label.substr(0, slash), agg.label.substr(slash + 1),
               util::Table::num(agg.tasks_evicted.mean(), 1),
               util::Table::num(agg.tasklets_retried.mean(), 1),
               util::Table::num(100.0 * goodput.mean(), 1) + " %", makespan});
    if (agg.errors > 0)
      std::fprintf(stderr, "%llu run(s) of %s failed\n",
                   static_cast<unsigned long long>(agg.errors),
                   agg.label.c_str());
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading: fifo pays the full fixed-size retry bill everywhere;");
  std::puts("tail-shrink only trims the drain phase; site-aware halves every");
  std::puts("task under an evicting climate.  The lifetime policy sizes each");
  std::puts("task to the expected remaining worker lifetime: under the");
  std::puts("2-hourly preemption waves tasks pulled close to a burst carry");
  std::puts("little work to lose, so it retries the fewest tasklets of any");
  std::puts("policy at the best goodput; under the calm weibull climate the");
  std::puts("sizing lands on the Figure 3 static optimum (~1 h) and matches");
  std::puts("tail-shrink.  The diurnal row is the cautionary tale: at night");
  std::puts("the *mean* lifetime is long, so the policy overcommits against");
  std::puts("a decreasing-hazard climate whose mean far exceeds its median");
  std::puts("and gives some of fifo's margin back.");
  return 0;
}

// micro_core — google-benchmark microbenchmarks for core Lobster logic:
// Lobster DB ingest, merge planning over large output sets, decomposition,
// and single points of the §4.1 task-size model.
#include <benchmark/benchmark.h>

#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/task_size_model.hpp"
#include "core/workflow.hpp"
#include "dbs/dbs.hpp"
#include "util/rng.hpp"

namespace core = lobster::core;
namespace dbs = lobster::dbs;
namespace lu = lobster::util;

static void BM_Decompose(benchmark::State& state) {
  dbs::SyntheticDatasetSpec spec;
  spec.num_files = static_cast<std::size_t>(state.range(0));
  const auto ds = dbs::make_synthetic_dataset(spec, lu::Rng(1));
  for (auto _ : state) {
    auto tasklets = core::decompose(ds, {.lumis_per_tasklet = 5});
    benchmark::DoNotOptimize(tasklets.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Decompose)->Arg(100)->Arg(1000);

static void BM_DbTaskLifecycle(benchmark::State& state) {
  for (auto _ : state) {
    core::Db db;
    std::vector<core::Tasklet> tasklets(1000);
    for (std::size_t i = 0; i < tasklets.size(); ++i) tasklets[i].id = i + 1;
    db.register_tasklets(tasklets);
    for (std::uint64_t i = 1; i + 5 <= 1000; i += 5) {
      const auto id = db.create_task(core::TaskKind::Analysis,
                                     {i, i + 1, i + 2, i + 3, i + 4}, 0.0);
      core::TaskRecord rec;
      rec.status = core::TaskStatus::Done;
      rec.cpu_time = 100.0;
      db.finish_task(id, rec);
      db.record_output(id, "out", 5e7);
    }
    benchmark::DoNotOptimize(db.num_outputs());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_DbTaskLifecycle)->Unit(benchmark::kMicrosecond);

static void BM_MergePlanning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<core::OutputRecord> outputs(n);
  lu::Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    outputs[i].output_id = i + 1;
    outputs[i].bytes = rng.uniform(1e7, 1e8);
  }
  core::MergePolicy policy;
  for (auto _ : state) {
    auto groups = core::plan_merges(outputs, policy, false, 0);
    benchmark::DoNotOptimize(groups.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_MergePlanning)->Arg(1000)->Arg(10000);

static void BM_TaskSizeModelPoint(benchmark::State& state) {
  core::TaskSizeModelParams p;
  p.num_tasklets = 20000;
  p.num_workers = 1600;
  const core::ConstantEviction eviction(0.1);
  for (auto _ : state) {
    auto r = core::simulate_task_size(p, eviction, 1.0);
    benchmark::DoNotOptimize(r.efficiency);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("20k tasklets, 1600 workers");
}
BENCHMARK(BM_TaskSizeModelPoint)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

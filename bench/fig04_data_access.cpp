// fig04_data_access — reproduces Figure 4: "The overall runtime for two
// different data access methods split into data processing and general
// overhead.  Staging of files before and after execution results in less
// CPU utilization but overall runtime longer than streaming the data into
// the task as it runs."
//
// Mechanism reproduced: an analysis reads only a fraction of each input
// file (paper §4.2), so streaming (XrootD) moves less data than staging
// (WQ/Chirp), which must transfer whole files before execution.
//
// Runs as a campaign: `--seeds N` sweeps N seeds per access mode and
// reports mean +/- stddev; `--jobs M` executes the runs M-wide.
#include <cstdio>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace lobster;

  const auto opts = lobsim::parse_campaign_flags(argc, argv, 2015);

  std::puts("=== Figure 4: Data Access Methods Compared ===");
  std::puts("512 cores, 500 tasks, 300 MB/tasklet inputs; staging transfers");
  std::puts("whole files, streaming reads the needed fraction on the fly.\n");

  const auto campaign = lobsim::run_data_access_campaign(opts.seeds, opts.jobs);
  const auto& results = campaign.detail;

  util::Table table({"mode", "processing (s/task)", "overhead (s/task)",
                     "total (s/task)", "makespan", "profile"});
  double total_max = 0.0;
  for (const auto& r : results)
    total_max = std::max(total_max, r.processing_time + r.overhead_time);
  for (const auto& r : results) {
    const double total = r.processing_time + r.overhead_time;
    table.row({r.mode, util::Table::num(r.processing_time, 1),
               util::Table::num(r.overhead_time, 1),
               util::Table::num(total, 1), util::format_duration(r.makespan),
               util::bar(total, total_max, 40)});
  }
  std::fputs(table.str().c_str(), stdout);

  if (opts.seeds.size() > 1) {
    std::printf("\nAcross %zu seeds (%zu jobs):\n", opts.seeds.size(),
                opts.jobs);
    util::Table agg({"mode", "processing (s/task)", "overhead (s/task)",
                     "makespan"});
    for (const auto& a : campaign.aggregate) {
      agg.row({a.mode,
               util::Table::num(a.processing_time.mean(), 1) + " +/- " +
                   util::Table::num(a.processing_time.stddev(), 1),
               util::Table::num(a.overhead_time.mean(), 1) + " +/- " +
                   util::Table::num(a.overhead_time.stddev(), 1),
               util::format_duration(a.makespan.mean()) + " +/- " +
                   util::format_duration(a.makespan.stddev())});
    }
    std::fputs(agg.str().c_str(), stdout);
  }

  const auto& stage = results[0];
  const auto& stream = results[1];
  std::puts("\nPaper-shape check (paper: staging => lower CPU utilization,");
  std::puts("longer overall runtime; streaming wins):");
  std::printf("  staging total/task  = %.0f s (overhead %.0f s)\n",
              stage.processing_time + stage.overhead_time,
              stage.overhead_time);
  std::printf("  streaming total/task = %.0f s (overhead %.0f s)\n",
              stream.processing_time + stream.overhead_time,
              stream.overhead_time);
  std::printf("  streaming faster by %.1fx overall\n",
              (stage.processing_time + stage.overhead_time) /
                  (stream.processing_time + stream.overhead_time));
  return 0;
}

// fig02_eviction_probability — reproduces Figure 2: "Probability of worker
// eviction as a function of its availability time, taken from physics
// analysis runs performed over several months.  Uncertainties are estimated
// using the binomial model."
//
// The original curve came from HTCondor logs of the Notre Dame
// opportunistic pool; here the availability log is synthesized from the
// Weibull availability model (decreasing hazard: the longer a worker has
// survived, the likelier it is to keep surviving) and binned exactly as the
// paper describes, with binomial errors.
#include <cstdio>

#include "core/task_size_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 2: Worker Eviction Probability ===");
  std::puts("Synthetic availability log: 50000 worker lifetimes, Weibull");
  std::puts("(shape 0.8, scale 4 h), binned per availability-time interval.\n");

  const auto log = core::synthesize_availability_log(
      50000, util::Rng(2015).stream("fig2"), /*shape=*/0.8,
      /*scale_hours=*/4.0);
  const auto curve = core::eviction_probability_curve(log, 16, 16.0);

  util::Table table({"availability", "P(eviction)", "+/- sigma", "at risk",
                     "profile"});
  for (const auto& pt : curve) {
    table.row({util::format_duration(pt.t_lo) + " - " +
                   util::format_duration(pt.t_hi),
               util::Table::num(pt.probability, 4),
               util::Table::num(pt.sigma, 4),
               util::Table::integer(static_cast<long long>(pt.at_risk)),
               util::bar(pt.probability, 0.5, 40)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nPaper-shape check: eviction probability is highest for young");
  std::puts("workers and falls with availability time (decreasing hazard);");
  std::printf("measured: P(first bin) = %.3f vs P(bin 9) = %.3f\n",
              curve.front().probability, curve[8].probability);
  return 0;
}

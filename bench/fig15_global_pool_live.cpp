// fig15_global_pool_live — the fig13 Global Pool scenario run *live*
// through the DES kernel instead of the closed-form fluid model.
//
// fig13 argues the §7 comparison with simulate_global_pool: a max-min fair
// fluid allocation of 110k dedicated cores over the collaboration's
// campaigns.  That model is exact but bypasses the event engine entirely.
// This bench dispatches the same population — 400 backlogged analyses with
// pareto-tailed volumes plus our 200k-core-hour analyst — as millions of
// discrete one-hour tasklets onto 110k discrete core slots through a
// fair-share round-robin scheduler, every dispatch and completion a real
// kernel event.  It then cross-checks the live run against the closed
// form: per-campaign turnaround for our analyst and aggregate goodput must
// agree within 5%.  Only the calendar-queue kernel makes this run casual —
// the old binary-heap queue put it at minutes of wall time.
//
// Usage: fig15_global_pool_live [--cores N] [--users N] [--tasklet-seconds S]
//   --cores 2200 --users 40   is the scaled-down CI smoke configuration.
//
// Writes BENCH_fig15_global_pool_live.json (kernel events/s over the live
// run) for the perf-gate trajectory.  Exit code 1 when the live-vs-model
// deviation exceeds 5%.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "lobsim/global_pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {

struct Options {
  double cores = 110000.0;
  int users = 400;
  double tasklet_seconds = 3600.0;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](double fallback) {
      return i + 1 < argc ? std::atof(argv[++i]) : fallback;
    };
    if (arg == "--cores")
      o.cores = value(o.cores);
    else if (arg == "--users")
      o.users = static_cast<int>(value(o.users));
    else if (arg == "--tasklet-seconds")
      o.tasklet_seconds = value(o.tasklet_seconds);
    else {
      std::fprintf(stderr,
                   "usage: fig15_global_pool_live [--cores N] [--users N] "
                   "[--tasklet-seconds S]\n");
      std::exit(2);
    }
  }
  return o;
}

double pct_dev(double live, double model) {
  return model > 0.0 ? 100.0 * (live - model) / model : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::puts("=== Global Pool, live DES run vs closed-form fluid model ===\n");

  // The same population fig13 builds: `users` backlogged analyses with
  // heavy-tailed volumes (seed 2015), plus our deadline-driven analyst.
  // The volume scales with the pool so the smoke configuration keeps the
  // same contention shape.
  const double scale = opt.cores / 110000.0;
  util::Rng rng(2015);
  std::vector<lobsim::PoolUser> users;
  for (int u = 0; u < opt.users; ++u) {
    lobsim::PoolUser user;
    user.name = "analyst-" + std::to_string(u);
    user.submit_time = 0.0;
    user.core_seconds = rng.pareto(1.3, util::hours(2000) * scale);
    user.max_parallelism = rng.uniform(500.0, 4000.0) * scale;
    users.push_back(user);
  }
  lobsim::PoolUser ours;
  ours.name = "our-analyst";
  ours.submit_time = 0.0;
  ours.core_seconds = util::hours(200000) * scale;
  ours.max_parallelism = 10000.0 * scale;
  users.push_back(ours);

  double total_core_seconds = 0.0;
  for (const auto& u : users) total_core_seconds += u.core_seconds;

  // Closed form first (cheap), then the live run, timed.
  const auto model = lobsim::simulate_global_pool(opt.cores, users);
  double model_makespan = 0.0;
  for (const auto& o : model)
    model_makespan = std::max(model_makespan, o.finish_time);
  const double model_goodput = total_core_seconds / model_makespan;

  benchjson::Stopwatch sw;
  sw.start();
  const auto live =
      lobsim::simulate_global_pool_live(opt.cores, users, opt.tasklet_seconds);
  const double wall = sw.stop();
  benchjson::write_snapshot(
      "fig15_global_pool_live",
      {static_cast<double>(live.events_executed), wall});

  std::printf(
      "\n%.0f cores, %zu campaigns, %.3g core-hours of work\n"
      "live run: %llu tasklets, %llu kernel events, %.2fs wall\n\n",
      opt.cores, users.size(), total_core_seconds / 3600.0,
      static_cast<unsigned long long>(live.tasklets_dispatched),
      static_cast<unsigned long long>(live.events_executed), wall);

  const auto& ours_live = live.outcomes.back();
  const auto& ours_model = model.back();
  const double dev_ours =
      pct_dev(ours_live.turnaround(), ours_model.turnaround());
  const double dev_makespan = pct_dev(live.makespan, model_makespan);
  const double dev_goodput = pct_dev(live.aggregate_goodput, model_goodput);

  util::Table table({"quantity", "closed form", "live DES", "deviation"});
  table.row({"our-analyst turnaround",
             util::format_duration(ours_model.turnaround()),
             util::format_duration(ours_live.turnaround()),
             (dev_ours < 0 ? "" : "+") + std::to_string(dev_ours).substr(0, 5) +
                 "%"});
  table.row({"pool makespan", util::format_duration(model_makespan),
             util::format_duration(live.makespan),
             (dev_makespan < 0 ? "" : "+") +
                 std::to_string(dev_makespan).substr(0, 5) + "%"});
  char buf_model[32], buf_live[32], buf_dev[32];
  std::snprintf(buf_model, sizeof buf_model, "%.0f cores", model_goodput);
  std::snprintf(buf_live, sizeof buf_live, "%.0f cores",
                live.aggregate_goodput);
  std::snprintf(buf_dev, sizeof buf_dev, "%+.2f%%", dev_goodput);
  table.row({"aggregate goodput", buf_model, buf_live, buf_dev});
  std::fputs(table.str().c_str(), stdout);

  const bool ok = std::abs(dev_goodput) <= 5.0;
  std::printf("\nlive-vs-model aggregate goodput deviation: %+.2f%% -> %s\n",
              dev_goodput, ok ? "PASS (within 5%)" : "FAIL (above 5%)");
  std::puts("\nPaper-shape check (SS7): the discrete fair-share pool");
  std::puts("reproduces the fluid max-min model at one-hour tasklet");
  std::puts("granularity; the calendar-queue kernel sustains the 110k-core");
  std::puts("live run in seconds of wall time.");
  return ok ? 0 : 1;
}

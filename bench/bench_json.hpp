// bench_json.hpp — machine-readable perf snapshots for the micro benches.
//
// Each micro bench measures one *headline* steady-state workload (setup
// excluded from the timed region) and writes `BENCH_<name>.json` into the
// working directory — the repo root when invoked from CI — so the perf
// trajectory is diffable across PRs and `tools/bench_gate` can fail the
// build on a regression.  Format (one object, stable keys):
//
//   {"bench": "micro_des", "events_per_s": 1.23e7,
//    "wall_s": 0.081, "peak_rss_bytes": 14680064}
//
// `events_per_s` is the headline throughput (events, tasklets, spans —
// whatever the bench's unit of work is); `wall_s` is the wall time of the
// best measured repetition; `peak_rss_bytes` is ru_maxrss at write time.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace lobster::benchjson {

/// Peak resident set size of this process, in bytes (Linux ru_maxrss is
/// reported in KiB).
inline std::int64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
}

struct Headline {
  double events = 0.0;  ///< units of work completed in the timed region
  double wall_s = 0.0;  ///< wall time of the timed region (best repetition)
  [[nodiscard]] double events_per_s() const {
    return wall_s > 0.0 ? events / wall_s : 0.0;
  }
};

/// Wall-clock stopwatch for the measured region only.  steady_clock is the
/// one wall source the determinism lint allows: it never feeds simulation
/// state, only the perf report.
class Stopwatch {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double stop() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Write BENCH_<name>.json in the current directory.  Returns false (and
/// prints a warning) when the file cannot be written; benches treat that as
/// non-fatal so ad-hoc runs in read-only checkouts still print results.
inline bool write_snapshot(const std::string& name, const Headline& h) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\"bench\": \"%s\", \"events_per_s\": %.6g, \"wall_s\": "
               "%.6g, \"peak_rss_bytes\": %lld}\n",
               name.c_str(), h.events_per_s(), h.wall_s,
               static_cast<long long>(peak_rss_bytes()));
  std::fclose(f);
  std::printf("%s: %.3g events/s (wall %.3gs) -> %s\n", name.c_str(),
              h.events_per_s(), h.wall_s, path.c_str());
  return true;
}

/// True when `--headline-only` is among the arguments: run the headline
/// measurement, write the snapshot, and skip the google-benchmark suite
/// (what CI's perf-gate step wants).
inline bool headline_only(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--headline-only") return true;
  return false;
}

/// Strip `--headline-only` so benchmark::Initialize does not reject it.
inline void strip_headline_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i)
    if (std::string(argv[i]) != "--headline-only") argv[out++] = argv[i];
  *argc = out;
}

}  // namespace lobster::benchjson

// fig07_merging_modes — reproduces Figure 7: "Number of finished analysis
// and merge tasks as a function of time for the sequential, hadoop, and
// interleaved merging modes.  The time of completion of the last merging
// task is denoted with a vertical bar. ... sequential merging takes the
// longest, and suffers from a long-tail effect ... Merging via Hadoop is
// more efficient and has a shorter tail.  Interleaved merging is less
// efficient in use of resources, but completes faster overall because it
// can be done concurrently with analysis."
//
// Runs as a campaign: `--seeds N` sweeps N seeds per merge mode (the
// timeline panels show the first seed; the aggregate table folds all) and
// `--jobs M` executes the 3xN runs M-wide.
#include <cstdio>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace lobster;

  const auto opts = lobsim::parse_campaign_flags(argc, argv, 2015);

  std::puts("=== Figure 7: Merging Modes Compared ===");
  std::puts("1024 cores, 1500 analysis tasks, 360 MB output each, merged to");
  std::puts("3.5 GB files.  Sequential / hadoop / interleaved.\n");

  const auto campaign = lobsim::run_merge_campaign(opts.seeds, opts.jobs);
  const auto& results = campaign.detail;

  for (const auto& r : results) {
    std::printf("-- %s --\n", core::to_string(r.mode));
    std::printf("   per %s bin: analysis '#', merge '@' (1 char = 8 tasks)\n",
                util::format_duration(r.bin_seconds).c_str());
    for (std::size_t b = 0; b < r.analysis_per_bin.size(); ++b) {
      const double t = static_cast<double>(b) * r.bin_seconds;
      std::string bar;
      bar.append(static_cast<std::size_t>(r.analysis_per_bin[b] / 8.0), '#');
      bar.append(static_cast<std::size_t>(r.merge_per_bin[b] / 8.0), '@');
      const bool last_merge_here =
          r.merge_finish >= t && r.merge_finish < t + r.bin_seconds;
      std::printf("  %8s |%s%s\n", util::format_duration(t).c_str(),
                  bar.c_str(), last_merge_here ? "  <== last merge" : "");
    }
    std::printf("  analysis done %s, all merges done %s (%llu merge tasks)\n\n",
                util::format_duration(r.analysis_finish).c_str(),
                util::format_duration(r.merge_finish).c_str(),
                static_cast<unsigned long long>(r.merge_tasks));
  }

  util::Table table({"mode", "analysis done", "workload complete",
                     "merge tail after analysis"});
  for (const auto& r : results) {
    table.row({core::to_string(r.mode),
               util::format_duration(r.analysis_finish),
               util::format_duration(r.merge_finish),
               util::format_duration(r.merge_finish - r.analysis_finish)});
  }
  std::fputs(table.str().c_str(), stdout);

  if (opts.seeds.size() > 1) {
    std::printf("\nAcross %zu seeds (%zu jobs):\n", opts.seeds.size(),
                opts.jobs);
    util::Table agg({"mode", "workload complete", "merge tail", "merge tasks"});
    for (const auto& a : campaign.aggregate) {
      agg.row({core::to_string(a.mode),
               util::format_duration(a.merge_finish.mean()) + " +/- " +
                   util::format_duration(a.merge_finish.stddev()),
               util::format_duration(a.merge_finish.mean() -
                                     a.analysis_finish.mean()),
               util::Table::num(a.merge_tasks.mean(), 1)});
    }
    std::fputs(agg.str().c_str(), stdout);
  }

  std::puts("\nPaper-shape check: sequential slowest with the longest tail;");
  std::puts("hadoop shortens the tail; interleaved completes first overall.");
  return 0;
}

// fig13_global_pool_baseline — the baseline comparison of paper §7
// (extension experiment; the paper argues it qualitatively).
//
// "The Global Pool ... has achieved a record of just over 110k
// simultaneously running jobs across all CMS WLCG T1 through T3 resources.
// ... Lobster empowers a single user to access a scale of opportunistic
// resources approximately 10% the size of the global pool without
// intervention from systems administrators."
//
// We put a deadline-driven analyst (a 200k-core-hour campaign, e.g. a
// conference rush) into the shared 110k-core Global Pool alongside the rest
// of the collaboration, and compare against the same campaign run through
// Lobster on a 10k-core opportunistic burst at the Figure 3 efficiency
// ceiling.
#include <cstdio>
#include <vector>

#include "lobsim/global_pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Baseline: centralized Global Pool vs per-user Lobster ===\n");

  // The collaboration's background load: several hundred analyses already
  // queued — the pool runs with a standing backlog (paper §2: CMS "is
  // limited to approximately half" of its data rate because WLCG resources
  // are insufficient; demand permanently exceeds capacity).
  util::Rng rng(2015);
  std::vector<lobsim::PoolUser> users;
  for (int u = 0; u < 400; ++u) {
    lobsim::PoolUser user;
    user.name = "analyst-" + std::to_string(u);
    user.submit_time = 0.0;  // backlogged when we arrive
    user.core_seconds = rng.pareto(1.3, util::hours(2000));  // heavy tail
    user.max_parallelism = rng.uniform(500.0, 4000.0);
    users.push_back(user);
  }
  // Our analyst: 200k core-hours, wants up to 10k-way parallelism, submits
  // at t = 0.
  lobsim::PoolUser ours;
  ours.name = "our-analyst";
  ours.submit_time = 0.0;
  ours.core_seconds = util::hours(200000);
  ours.max_parallelism = 10000.0;
  users.push_back(ours);

  const auto outcomes = lobsim::simulate_global_pool(110000.0, users);
  const auto& mine = outcomes.back();

  // Lobster: a 10k-core opportunistic burst at the ~65% efficiency the
  // Figure 3 model allows for one-hour tasks under observed evictions.
  const double lobster_done =
      lobsim::lobster_burst_completion(ours.core_seconds, 10000.0, 0.65);

  // A smaller-footprint comparison: the pool with only light background.
  std::vector<lobsim::PoolUser> light(users.begin(), users.begin() + 40);
  light.push_back(ours);
  const auto idle_outcomes = lobsim::simulate_global_pool(110000.0, light);

  util::Table table({"scheduling path", "campaign completion", "notes"});
  table.row({"Global Pool, busy day (400 analyses)",
             util::format_duration(mine.turnaround()),
             "fair share across the collaboration"});
  table.row({"Global Pool, quiet day (40 analyses)",
             util::format_duration(idle_outcomes.back().turnaround()),
             "more headroom, same central queue"});
  table.row({"Lobster, 10k opportunistic cores",
             util::format_duration(lobster_done),
             "single-user burst at 65% efficiency"});
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\nspeedup of per-user Lobster over the busy shared pool: %.1fx\n",
      mine.turnaround() / lobster_done);
  std::puts("\nPaper-shape check (SS7): central scheduling is efficient in");
  std::puts("aggregate but cannot dedicate resources to one user; Lobster");
  std::puts("gives a single user ~10% of the Global Pool's scale on demand,");
  std::puts("which wins whenever the pool is contended.");
  return 0;
}

// micro_trace — overhead of the structured tracing layer.
//
// The design bar: tracing must be near-free when disabled (the DES kernel
// and the engine hot paths pay one predictable branch) and cheap enough
// when enabled that tracing a production-scale campaign is routine.
//
//  * BM_SpanDisabled / BM_InstantDisabled: the per-call-site cost with no
//    sink installed — this is what every span site in the engine pays on an
//    untraced run.
//  * BM_SpanJsonl / BM_SpanChrome: the cost of a live span against an
//    in-memory sink (event formatting, no file I/O — files are written once
//    at close).
//  * BM_CounterAdd / BM_GaugeAdd: the counter-plane atomics every
//    instrumented increment pays, traced or not.
//  * BM_EngineUntraced / BM_EngineTraced: the end-to-end check on the
//    micro_engine workload — the `overhead` counter on BM_EngineTraced is
//    the traced/untraced wall-clock ratio; the acceptance bar for disabled
//    tracing is under ~2% (compare BM_EngineUntraced against the seed
//    micro_engine numbers), and enabled tracing should stay within a few
//    percent on this workload.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "lobsim/campaign.hpp"
#include "util/trace.hpp"

using namespace lobster;

namespace {

lobsim::RunSpec small_spec() {
  lobsim::RunSpec spec;
  spec.cluster.target_cores = 64;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 600;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.time_cap = 10.0 * 86400.0;
  spec.metric_bin_seconds = 3600.0;
  return spec;
}

double time_run(const lobsim::RunSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  lobsim::Campaign::execute(spec);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

// ---- per-call-site costs ----------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  util::Tracer tracer;  // no sink: every span site degenerates to a branch
  double clock = 0.0;
  tracer.bind_clock(&clock);
  for (auto _ : state) {
    util::Span span = tracer.span("task", "analysis", 7);
    span.arg("cpu", 1.0);
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_InstantDisabled(benchmark::State& state) {
  util::Tracer tracer;
  double clock = 0.0;
  tracer.bind_clock(&clock);
  for (auto _ : state) {
    tracer.instant("lobsim", "task_failed", 0, {{"exit", 211.0}});
    benchmark::DoNotOptimize(tracer);
  }
}
BENCHMARK(BM_InstantDisabled);

void BM_SpanJsonl(benchmark::State& state) {
  util::Tracer tracer;
  double clock = 0.0;
  tracer.bind_clock(&clock);
  tracer.set_sink(
      std::make_unique<util::JsonlTraceSink>(""));  // in-memory buffer
  for (auto _ : state) {
    clock += 1.0;
    util::Span span = tracer.span("task", "analysis", 7);
    span.arg("cpu", 1.0);
  }
}
BENCHMARK(BM_SpanJsonl);

void BM_SpanChrome(benchmark::State& state) {
  util::Tracer tracer;
  double clock = 0.0;
  tracer.bind_clock(&clock);
  tracer.set_sink(std::make_unique<util::ChromeTraceSink>(""));
  for (auto _ : state) {
    clock += 1.0;
    util::Span span = tracer.span("task", "analysis", 7);
    span.arg("cpu", 1.0);
  }
}
BENCHMARK(BM_SpanChrome);

void BM_CounterAdd(benchmark::State& state) {
  util::CounterRegistry registry;
  util::Counter* c = &registry.counter("bench.micro_trace.counter_add");
  for (auto _ : state) {
    util::bump(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeAdd(benchmark::State& state) {
  util::CounterRegistry registry;
  util::Gauge* g = &registry.gauge("bench.micro_trace.gauge_set");
  for (auto _ : state) {
    util::bump(g, 1.5);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GaugeAdd);

// ---- end-to-end engine overhead ---------------------------------------------

void BM_EngineUntraced(benchmark::State& state) {
  const lobsim::RunSpec spec = small_spec();
  for (auto _ : state) {
    const auto stats = lobsim::Campaign::execute(spec);
    benchmark::DoNotOptimize(stats.makespan);
  }
}
BENCHMARK(BM_EngineUntraced)->Unit(benchmark::kMillisecond);

void BM_EngineTraced(benchmark::State& state) {
  lobsim::RunSpec spec = small_spec();
  // Empty path: the full event stream is recorded and formatted in memory,
  // but nothing hits the filesystem — isolates tracing cost from disk.
  spec.trace_path = "";
  for (auto _ : state) {
    lobsim::Engine engine(spec.cluster, spec.workload, spec.seed,
                          spec.metric_bin_seconds);
    engine.enable_tracing("", util::TraceFormat::Jsonl);
    const auto& m = engine.run(spec.time_cap);
    benchmark::DoNotOptimize(m.makespan);
  }
  // One out-of-loop overhead sample for the report: traced / untraced.
  const double untraced = time_run(small_spec());
  lobsim::RunSpec traced = small_spec();
  lobsim::Engine engine(traced.cluster, traced.workload, traced.seed,
                        traced.metric_bin_seconds);
  engine.enable_tracing("", util::TraceFormat::Jsonl);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(traced.time_cap);
  const auto t1 = std::chrono::steady_clock::now();
  const double traced_s = std::chrono::duration<double>(t1 - t0).count();
  state.counters["overhead"] =
      untraced > 0.0 ? traced_s / untraced : 0.0;
}
BENCHMARK(BM_EngineTraced)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// micro_cache — google-benchmark microbenchmarks for the real Parrot cache
// under multithreaded access, per locking mode, and the squid LRU.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"
#include "cvmfs/squid.hpp"
#include "util/rng.hpp"

namespace cv = lobster::cvmfs;
namespace lu = lobster::util;

namespace {
std::vector<cv::FileObject> objects(std::size_t n) {
  std::vector<cv::FileObject> out;
  for (std::size_t i = 0; i < n; ++i) {
    cv::FileObject o;
    o.path = "/cvmfs/bench/obj" + std::to_string(i);
    o.size_bytes = 1e5;
    o.digest = cv::digest_of(o.path, o.size_bytes);
    out.push_back(std::move(o));
  }
  return out;
}

cv::Fetcher instant_fetcher() {
  return [](const cv::FileObject& obj) {
    return cv::digest_of(obj.path, obj.size_bytes);
  };
}
}  // namespace

static void BM_CacheHotAccess(benchmark::State& state) {
  const auto mode = static_cast<cv::CacheMode>(state.range(0));
  cv::CacheGroup group(mode, instant_fetcher());
  auto inst = group.make_instance();
  const auto objs = objects(256);
  for (const auto& o : objs) inst.access(o);  // warm
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.access(objs[i++ % objs.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cv::to_string(mode));
}
BENCHMARK(BM_CacheHotAccess)->Arg(0)->Arg(1)->Arg(2);

static void BM_CacheColdConcurrent(benchmark::State& state) {
  const auto mode = static_cast<cv::CacheMode>(state.range(0));
  const auto objs = objects(512);
  for (auto _ : state) {
    cv::CacheGroup group(mode, instant_fetcher());
    std::vector<cv::CacheGroup::Instance> instances;
    for (int t = 0; t < 8; ++t) instances.push_back(group.make_instance());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (const auto& o : objs)
          instances[static_cast<std::size_t>(t)].access(o);
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(state.iterations() * 8 * 512);
  state.SetLabel(cv::to_string(mode));
}
BENCHMARK(BM_CacheColdConcurrent)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

static void BM_SquidLru(benchmark::State& state) {
  cv::SquidProxy squid(1e7 /* forces eviction */, instant_fetcher());
  const auto objs = objects(512);
  lu::Rng rng(3);
  for (auto _ : state) {
    const auto& o = objs[static_cast<std::size_t>(rng.zipf(512, 1.1)) - 1];
    benchmark::DoNotOptimize(squid.fetch(o));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquidLru);

BENCHMARK_MAIN();

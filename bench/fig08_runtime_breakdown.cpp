// fig08_runtime_breakdown — reproduces Figure 8 (the runtime table of the
// ~10k-core data processing run):
//
//     Task Phase      Time (h)   Fraction (%)
//     Task CPU Time    171036        53.4
//     Task I/O Time     65356        20.4
//     Task Failed       44830        14.0
//     WQ Stage In       22056         6.9
//     WQ Stage Out       8954         2.8
//
// The simulated run streams analysis input over a saturated 10 Gbit/s
// campus uplink, suffers a transient wide-area outage, and stages output
// through a Chirp server — the same regime the paper measured.
#include <cstdio>

#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 8: Data Processing Runtime breakdown ===");
  std::puts("~10k-core simulated data processing run (see fig10 for the");
  std::puts("timeline of the same run).\n");

  auto s = lobsim::data_processing_scenario();
  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  engine.schedule_outage(s.outage_start, s.outage_duration);
  const auto& m = engine.run(10.0 * 86400.0);
  const auto b = m.monitor.breakdown();

  struct Row {
    const char* phase;
    double seconds;
    double paper_fraction;
  };
  const double total = b.total();
  const Row rows[] = {
      {"Task CPU Time", b.cpu, 53.4},
      {"Task I/O Time", b.io, 20.4},
      {"Task Failed", b.failed, 14.0},
      {"WQ Stage In", b.stage_in + b.other, 6.9},
      {"WQ Stage Out", b.stage_out, 2.8},
  };

  util::Table table({"Task Phase", "Time (h)", "Fraction (%)",
                     "Paper fraction (%)"});
  for (const auto& r : rows) {
    table.row({r.phase, util::Table::num(r.seconds / 3600.0, 0),
               util::Table::num(100.0 * r.seconds / total, 1),
               util::Table::num(r.paper_fraction, 1)});
  }
  table.row({"Total", util::Table::num(total / 3600.0, 0), "", ""});
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\nRun summary: %llu tasks completed, %llu failed, %llu evicted;\n"
      "peak %zu concurrent tasks; %s streamed over the WAN; makespan %s.\n",
      static_cast<unsigned long long>(m.tasks_completed),
      static_cast<unsigned long long>(m.tasks_failed),
      static_cast<unsigned long long>(m.tasks_evicted), m.peak_running,
      util::format_bytes(m.bytes_streamed).c_str(),
      util::format_duration(m.makespan).c_str());
  std::puts("\nPaper-shape check: ~3/4 of runtime in the task itself (CPU +");
  std::puts("I/O); failed tasks the largest loss; stage-out the smallest row.");
  return 0;
}

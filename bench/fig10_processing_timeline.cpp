// fig10_processing_timeline — reproduces Figure 10: "The time evolution of
// a data processing run on nearly 10K cores over two days.  The top graph
// shows the number of concurrent tasks running, the middle shows the number
// of tasks completed or failed in each time unit, and the bottom graph
// shows the (CPU-time/wall-clock) ratio in each time unit.  Note that the
// maximum possible ratio is approximately 70%, as discussed in Section 4.1.
// The burst of failures midway is due to a transient outage of the
// wide-area data handling system."
#include <algorithm>
#include <cstdio>

#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 10: Timeline of the Data Processing Run ===");

  auto s = lobsim::data_processing_scenario();
  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  engine.schedule_outage(s.outage_start, s.outage_duration);
  const auto& m = engine.run(10.0 * 86400.0);

  const auto& mon = m.monitor;
  const auto eff = mon.efficiency_timeline();
  const std::size_t bins =
      std::max({mon.completed_timeline().nbins(), mon.failed_timeline().nbins(),
                mon.running_timeline().nbins()});
  const double bin_w = mon.completed_timeline().bin_width();

  std::printf("Outage window: %s - %s\n\n",
              util::format_duration(s.outage_start).c_str(),
              util::format_duration(s.outage_start + s.outage_duration).c_str());
  std::puts("-- top: concurrent tasks running (1 char = 250 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    const double running = mon.running_timeline().mean_level(b);
    std::printf("  %7s |%s %.0f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(running, 10000.0, 40).c_str(), running);
  }

  std::puts("\n-- middle: tasks completed '#' / failed 'x' per bin (1 char =");
  std::puts("   25 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    std::string bar;
    bar.append(
        static_cast<std::size_t>(mon.completed_timeline().sum(b) / 25.0), '#');
    bar.append(static_cast<std::size_t>(mon.failed_timeline().sum(b) / 25.0),
               'x');
    std::printf("  %7s |%s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                bar.c_str());
  }

  std::puts("\n-- bottom: CPU-time / wall-clock per bin (max ~0.70, Fig. 3) --");
  for (std::size_t b = 0; b < bins && b < eff.size(); ++b) {
    std::printf("  %7s |%s %.2f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(eff[b], 1.0, 40).c_str(), eff[b]);
  }

  // Plateau efficiency: mean over the saturated middle of the run.
  double plateau = 0.0;
  int plateau_bins = 0;
  for (std::size_t b = 0; b < eff.size(); ++b) {
    const double t = static_cast<double>(b) * bin_w;
    if (t >= 2.5 * 3600.0 && t <= 6.0 * 3600.0 && eff[b] > 0.0) {
      plateau += eff[b];
      ++plateau_bins;
    }
  }
  if (plateau_bins > 0) plateau /= plateau_bins;
  std::printf(
      "\nRun summary: peak %zu concurrent tasks; %llu completed, %llu failed,"
      "\n%llu evicted; plateau efficiency %.2f; makespan %s.\n",
      m.peak_running, static_cast<unsigned long long>(m.tasks_completed),
      static_cast<unsigned long long>(m.tasks_failed),
      static_cast<unsigned long long>(m.tasks_evicted), plateau,
      util::format_duration(m.makespan).c_str());
  std::puts("\nPaper-shape check: ramp to ~10k running tasks, failure burst");
  std::puts("at the outage with an efficiency dip, efficiency otherwise near");
  std::puts("the ~0.70 ceiling of Section 4.1.");
  return 0;
}

// fig10_processing_timeline — reproduces Figure 10: "The time evolution of
// a data processing run on nearly 10K cores over two days.  The top graph
// shows the number of concurrent tasks running, the middle shows the number
// of tasks completed or failed in each time unit, and the bottom graph
// shows the (CPU-time/wall-clock) ratio in each time unit.  Note that the
// maximum possible ratio is approximately 70%, as discussed in Section 4.1.
// The burst of failures midway is due to a transient outage of the
// wide-area data handling system."
//
// --advisor-gate mode runs the scenario twice through one Campaign —
// advisor off, then advisor on (the online mitigation loop of
// src/lobsim/advisor.hpp) — and exits non-zero unless the advisor-on run
// achieves strictly higher goodput (tasklets per hour of makespan).  The
// advisor's lever here is the FailureBurst rule: during the outage it
// drains dispatch to a probe trickle, so slots are not cycling through
// doomed dispatch -> stream-open failure -> failure backoff when the WAN
// returns.  --cores / --tasklets scale the scenario down for CI (the
// campus uplink and squid scale with the core count so the same physics
// binds); --trace-prefix writes <prefix>-off.jsonl / <prefix>-on.jsonl so
// `lobster_compare --diff` can attribute the win to the "failed" bucket.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

double goodput(const lobster::lobsim::RunStats& s) {
  return s.makespan > 0.0
             ? static_cast<double>(s.tasklets_processed) / (s.makespan / 3600.0)
             : 0.0;
}

int run_advisor_gate(lobster::lobsim::DataProcessingScenario s,
                     const std::string& trace_prefix) {
  using namespace lobster;
  lobsim::RunSpec off;
  off.label = "advisor-off";
  off.cluster = s.cluster;
  off.workload = s.workload;
  off.seed = s.seed;
  off.outage_start = s.outage_start;
  off.outage_duration = s.outage_duration;
  if (!trace_prefix.empty()) off.trace_path = trace_prefix + "-off.jsonl";

  lobsim::RunSpec on = off;
  on.label = "advisor-on";
  on.advisor.enabled = true;
  // One rung of the sizing ladder only: halving the task size matches the
  // eviction climate (the Figure 3/12 result), but letting the ladder
  // ratchet to 1 tasklet would multiply sandbox stage-in on the shared
  // foreman uplinks and swamp the outage attribution the gate asserts.
  on.advisor.min_task_size =
      std::max<std::uint32_t>(1, s.workload.tasklets_per_task / 2);
  if (!trace_prefix.empty()) on.trace_path = trace_prefix + "-on.jsonl";

  lobsim::Campaign campaign(2);
  campaign.add(off);
  campaign.add(on);
  const auto& results = campaign.run();
  for (const auto& r : results)
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s run failed: %s\n", r.label.c_str(),
                   r.error.c_str());
      return 1;
    }
  const lobsim::RunStats& a = results[0].stats;
  const lobsim::RunStats& b = results[1].stats;

  util::Table table({"metric", "advisor-off", "advisor-on"});
  table.row({"makespan", util::format_duration(a.makespan),
             util::format_duration(b.makespan)});
  table.row({"goodput (tasklets/h)", util::Table::num(goodput(a), 1),
             util::Table::num(goodput(b), 1)});
  table.row({"tasks failed",
             util::Table::integer(static_cast<long long>(a.tasks_failed)),
             util::Table::integer(static_cast<long long>(b.tasks_failed))});
  table.row({"tasklets retried",
             util::Table::integer(static_cast<long long>(a.tasklets_retried)),
             util::Table::integer(
                 static_cast<long long>(b.tasklets_retried))});
  table.row(
      {"advisor ticks/shr/thr/drn/rst", "-",
       util::Table::integer(static_cast<long long>(b.advisor_ticks)) + "/" +
           util::Table::integer(static_cast<long long>(b.advisor_shrinks)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_throttles)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_drains)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_restores))});
  std::fputs(table.str().c_str(), stdout);

  if (!(a.completed && b.completed)) {
    std::puts("\nGATE FAIL: a run hit the time cap.");
    return 1;
  }
  if (!(goodput(b) > goodput(a))) {
    std::printf("\nGATE FAIL: advisor-on goodput %.1f <= advisor-off %.1f.\n",
                goodput(b), goodput(a));
    return 1;
  }
  std::printf("\nGATE PASS: advisor-on goodput %.1f > advisor-off %.1f "
              "(makespan %s vs %s).\n",
              goodput(b), goodput(a),
              util::format_duration(b.makespan).c_str(),
              util::format_duration(a.makespan).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lobster;

  bool advisor_gate = false;
  std::size_t cores = 0;
  std::uint64_t tasklets = 0;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--advisor-gate")
      advisor_gate = true;
    else if (arg == "--cores")
      cores = std::strtoull(value("--cores"), nullptr, 10);
    else if (arg == "--tasklets")
      tasklets = std::strtoull(value("--tasklets"), nullptr, 10);
    else if (arg == "--trace-prefix")
      trace_prefix = value("--trace-prefix");
    else {
      std::fprintf(stderr,
                   "usage: %s [--advisor-gate] [--cores N] [--tasklets N] "
                   "[--trace-prefix P]\n",
                   argv[0]);
      return 2;
    }
  }

  auto s = lobsim::data_processing_scenario();
  if (cores > 0) {
    // Scale the shared bottlenecks with the core count so a smaller run
    // exercises the same saturated-uplink physics.
    const double f = static_cast<double>(cores) /
                     static_cast<double>(s.cluster.target_cores);
    s.cluster.target_cores = cores;
    s.cluster.federation.campus_uplink_rate *= f;
    s.cluster.squid.max_connections = std::max<std::int64_t>(
        64, static_cast<std::int64_t>(
                static_cast<double>(s.cluster.squid.max_connections) * f));
  }
  if (tasklets > 0) s.workload.num_tasklets = tasklets;

  if (advisor_gate) return run_advisor_gate(std::move(s), trace_prefix);

  std::puts("=== Figure 10: Timeline of the Data Processing Run ===");

  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  engine.schedule_outage(s.outage_start, s.outage_duration);
  const auto& m = engine.run(10.0 * 86400.0);

  const auto& mon = m.monitor;
  const auto eff = mon.efficiency_timeline();
  const std::size_t bins =
      std::max({mon.completed_timeline().nbins(), mon.failed_timeline().nbins(),
                mon.running_timeline().nbins()});
  const double bin_w = mon.completed_timeline().bin_width();

  std::printf("Outage window: %s - %s\n\n",
              util::format_duration(s.outage_start).c_str(),
              util::format_duration(s.outage_start + s.outage_duration).c_str());
  std::puts("-- top: concurrent tasks running (1 char = 250 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    const double running = mon.running_timeline().mean_level(b);
    std::printf("  %7s |%s %.0f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(running, 10000.0, 40).c_str(), running);
  }

  std::puts("\n-- middle: tasks completed '#' / failed 'x' per bin (1 char =");
  std::puts("   25 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    std::string bar;
    bar.append(
        static_cast<std::size_t>(mon.completed_timeline().sum(b) / 25.0), '#');
    bar.append(static_cast<std::size_t>(mon.failed_timeline().sum(b) / 25.0),
               'x');
    std::printf("  %7s |%s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                bar.c_str());
  }

  std::puts("\n-- bottom: CPU-time / wall-clock per bin (max ~0.70, Fig. 3) --");
  for (std::size_t b = 0; b < bins && b < eff.size(); ++b) {
    std::printf("  %7s |%s %.2f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(eff[b], 1.0, 40).c_str(), eff[b]);
  }

  // Plateau efficiency: mean over the saturated middle of the run.
  double plateau = 0.0;
  int plateau_bins = 0;
  for (std::size_t b = 0; b < eff.size(); ++b) {
    const double t = static_cast<double>(b) * bin_w;
    if (t >= 2.5 * 3600.0 && t <= 6.0 * 3600.0 && eff[b] > 0.0) {
      plateau += eff[b];
      ++plateau_bins;
    }
  }
  if (plateau_bins > 0) plateau /= plateau_bins;
  std::printf(
      "\nRun summary: peak %zu concurrent tasks; %llu completed, %llu failed,"
      "\n%llu evicted; plateau efficiency %.2f; makespan %s.\n",
      m.peak_running, static_cast<unsigned long long>(m.tasks_completed),
      static_cast<unsigned long long>(m.tasks_failed),
      static_cast<unsigned long long>(m.tasks_evicted), plateau,
      util::format_duration(m.makespan).c_str());
  std::puts("\nPaper-shape check: ramp to ~10k running tasks, failure burst");
  std::puts("at the outage with an efficiency dip, efficiency otherwise near");
  std::puts("the ~0.70 ceiling of Section 4.1.");
  return 0;
}

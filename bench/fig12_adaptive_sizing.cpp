// fig12_adaptive_sizing — extension experiment (paper §8 future work):
// "automatic performance optimization through dynamic adjustment of task
// size in the face of changing eviction rates and resource performance."
//
// Part 1 quantifies, with the §4.1 Monte Carlo, what choosing the right
// task size is worth as the eviction regime shifts: a static one-hour task
// tuned for the calm pool is compared against the per-regime optimum.
//
// Part 2 drives the real (thread-based) Scheduler with adaptive sizing
// enabled on a hostile in-process cluster and shows the controller
// converging to a task size that survives.
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/scheduler.hpp"
#include "core/task_size_model.hpp"
#include "util/table.hpp"
#include "wq/worker.hpp"

namespace {
using namespace lobster;

core::TaskSizeModelParams model_params() {
  core::TaskSizeModelParams p;
  p.num_tasklets = 50000;
  p.num_workers = 4000;
  return p;
}
}  // namespace

int main() {
  using namespace lobster;

  std::puts("=== Extension: dynamic task-size adjustment (paper SS8) ===\n");
  std::puts("-- Part 1: value of adapting task size to the eviction regime --");

  const std::vector<double> sweep_hours{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  util::Table table({"eviction regime", "static 1 h tasks",
                     "adapted (best) size", "adapted efficiency", "gain"});
  for (const double hazard : {0.02, 0.1, 0.5, 2.0}) {
    const core::ConstantEviction model(hazard);
    const auto sweep =
        core::sweep_task_sizes(model_params(), model, sweep_hours);
    const auto stat = core::simulate_task_size(model_params(), model, 1.0);
    double best_eff = 0.0;
    double best_hours = 1.0;
    for (const auto& r : sweep) {
      if (r.efficiency > best_eff) {
        best_eff = r.efficiency;
        best_hours = r.task_hours;
      }
    }
    char regime[64];
    std::snprintf(regime, sizeof regime, "%.2f evictions/h", hazard);
    table.row({regime, util::Table::num(stat.efficiency, 3),
               util::Table::num(best_hours, 2) + " h",
               util::Table::num(best_eff, 3),
               "+" + util::Table::num(100.0 * (best_eff - stat.efficiency), 1) +
                   " pp"});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\n-- Part 2: the real Scheduler's controller on a hostile pool --");
  core::WorkflowConfig cfg;
  cfg.tasklets_per_task = 8;
  cfg.task_buffer = 8;
  cfg.adaptive_sizing = true;
  cfg.max_attempts = 200;
  cfg.merge_mode = core::MergeMode::Sequential;
  cfg.merge_policy.target_bytes = 1e12;

  // Tasks with more than 2 tasklets are always "evicted" mid-flight.
  std::atomic<int> processed{0};
  auto hostile = [&processed](const std::vector<core::Tasklet>& tasklets) {
    return core::WrapperStages{
        .execute =
            [n = tasklets.size(), &processed](wq::TaskContext& ctx) {
              if (n > 2) {
                ctx.cancel.cancel();
                return 1;
              }
              processed.fetch_add(static_cast<int>(n));
              return 0;
            },
    };
  };
  auto merge = [](const core::MergeGroup&,
                  const std::vector<core::OutputRecord>&) {
    return core::WrapperStages{};
  };
  core::Scheduler sched(cfg, hostile, merge);
  wq::Master master;
  wq::Worker worker("hostile-pool", master, 4);
  std::vector<core::Tasklet> tasklets;
  for (std::uint64_t i = 1; i <= 400; ++i) {
    core::Tasklet t;
    t.id = i;
    t.expected_output_bytes = 1e6;
    tasklets.push_back(t);
  }
  const auto report = sched.run(master, std::move(tasklets));
  worker.join();

  std::printf(
      "started at %u tasklets/task; controller settled at %u; %zu/%zu "
      "tasklets\nprocessed after %zu evictions.\n",
      cfg.tasklets_per_task, sched.tasklets_per_task(),
      report.tasklets_processed, report.tasklets_total, report.evictions);
  std::puts("\nShape check: under high eviction rates the optimal task size");
  std::puts("shrinks, and the feedback controller finds a surviving size");
  std::puts("without operator intervention.");
  return 0;
}

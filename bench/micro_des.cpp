// micro_des — google-benchmark microbenchmarks for the DES kernel: raw
// event throughput, coroutine process churn, resource handoff, and
// fair-share bandwidth-link flow churn (the hot path of the 10k-core runs).
#include <benchmark/benchmark.h>

#include "des/bandwidth.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "util/rng.hpp"

namespace des = lobster::des;
namespace lu = lobster::util;

static void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i)
      sim.schedule(static_cast<double>(i % 97), [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventScheduling);

namespace {
des::Process ticker(des::Simulation& sim, int ticks) {
  for (int i = 0; i < ticks; ++i) co_await sim.delay(1.0);
}
}  // namespace

static void BM_CoroutineProcesses(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    for (int i = 0; i < n; ++i) sim.spawn(ticker(sim, 20));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n * 20);
}
BENCHMARK(BM_CoroutineProcesses)->Arg(100)->Arg(1000);

namespace {
des::Process resource_user(des::Simulation& sim, des::Resource& res) {
  for (int i = 0; i < 10; ++i) {
    auto token = co_await res.acquire();
    co_await sim.delay(0.5);
  }
}
}  // namespace

static void BM_ResourceHandoff(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    des::Resource res(sim, 4);
    for (int i = 0; i < 64; ++i) sim.spawn(resource_user(sim, res));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 10);
}
BENCHMARK(BM_ResourceHandoff);

namespace {
des::Process transfer_proc(des::BandwidthLink& link, double bytes) {
  co_await link.transfer(bytes);
}
}  // namespace

static void BM_BandwidthFlowChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  lu::Rng rng(7);
  for (auto _ : state) {
    des::Simulation sim;
    des::BandwidthLink link(sim, 1e9);
    for (int i = 0; i < flows; ++i) {
      const double at = rng.uniform(0.0, 10.0);
      const double bytes = rng.uniform(1e6, 1e8);
      sim.schedule(at, [&sim, &link, bytes] {
        sim.spawn(transfer_proc(link, bytes));
      });
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_BandwidthFlowChurn)->Arg(100)->Arg(1000)->Arg(4000);

BENCHMARK_MAIN();

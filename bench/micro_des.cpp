// micro_des — google-benchmark microbenchmarks for the DES kernel: raw
// event throughput, coroutine process churn, resource handoff, and
// fair-share bandwidth-link flow churn (the hot path of the 10k-core runs).
//
// All timed regions measure sim.run() only — scenario setup (scheduling the
// event burst, spawning the processes) happens outside the measurement, so
// the numbers are steady-state kernel throughput, not allocator warm-up.
// The headline event-throughput measurement additionally writes
// BENCH_micro_des.json (see bench_json.hpp) for the CI perf-regression
// gate; `--headline-only` runs just that part.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_json.hpp"
#include "des/bandwidth.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "util/rng.hpp"

namespace des = lobster::des;
namespace lu = lobster::util;
namespace bj = lobster::benchjson;

namespace {

// Headline: 1M lightweight callbacks over 100k distinct timestamps (about
// ten same-timestamp events per drain batch — the tie density an Engine run
// produces through event triggers and zero-delay resumes).  Insertion order
// is scattered by a prime stride so the queue cannot ride a sorted input.
bj::Headline headline_event_throughput() {
  constexpr std::uint64_t kEvents = 1000000;
  constexpr int kReps = 3;
  bj::Headline best;
  for (int rep = 0; rep < kReps; ++rep) {
    des::Simulation sim;
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const double at = static_cast<double>((i * 7919) % 100000) * 0.01;
      sim.schedule(at, [&sink] { ++sink; });
    }
    bj::Stopwatch sw;
    sw.start();
    sim.run();
    const double wall = sw.stop();
    benchmark::DoNotOptimize(sink);
    if (best.wall_s == 0.0 || wall < best.wall_s)
      best = {static_cast<double>(kEvents), wall};
  }
  return best;
}

}  // namespace

static void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    des::Simulation sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i)
      sim.schedule(static_cast<double>(i % 97), [&sink] { ++sink; });
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventScheduling);

namespace {
des::Process ticker(des::Simulation& sim, int ticks) {
  for (int i = 0; i < ticks; ++i) co_await sim.delay(1.0);
}
}  // namespace

static void BM_CoroutineProcesses(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    des::Simulation sim;
    for (int i = 0; i < n; ++i) sim.spawn(ticker(sim, 20));
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n * 20);
}
BENCHMARK(BM_CoroutineProcesses)->Arg(100)->Arg(1000);

namespace {
des::Process resource_user(des::Simulation& sim, des::Resource& res) {
  for (int i = 0; i < 10; ++i) {
    auto token = co_await res.acquire();
    co_await sim.delay(0.5);
  }
}
}  // namespace

static void BM_ResourceHandoff(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    des::Simulation sim;
    des::Resource res(sim, 4);
    for (int i = 0; i < 64; ++i) sim.spawn(resource_user(sim, res));
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 10);
}
BENCHMARK(BM_ResourceHandoff);

namespace {
des::Process transfer_proc(des::BandwidthLink& link, double bytes) {
  co_await link.transfer(bytes);
}
}  // namespace

static void BM_BandwidthFlowChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  lu::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    des::Simulation sim;
    des::BandwidthLink link(sim, 1e9);
    for (int i = 0; i < flows; ++i) {
      const double at = rng.uniform(0.0, 10.0);
      const double bytes = rng.uniform(1e6, 1e8);
      sim.schedule(at, [&sim, &link, bytes] {
        sim.spawn(transfer_proc(link, bytes));
      });
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_BandwidthFlowChurn)->Arg(100)->Arg(1000)->Arg(4000);

int main(int argc, char** argv) {
  const bool headline_only = bj::headline_only(argc, argv);
  bj::strip_headline_flag(&argc, argv);
  bj::write_snapshot("micro_des", headline_event_throughput());
  if (headline_only) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// fig05_proxy_scalability — reproduces Figure 5: "Mean task overhead times
// as a function of number of tasks sharing one proxy cache, for both cold
// and hot worker caches.  One proxy cache can support approximately 1000
// hot worker caches."
//
// Cold caches pull the ~1.5 GB working set (through the proxy and its
// upstream); hot caches only small per-task traffic served from proxy RAM.
// The knee appears where aggregate demand saturates the proxy service
// bandwidth.
//
// Runs as a campaign: every (client count, seed) cell is its own DES
// instance, fanned out `--jobs` wide; `--seeds N` averages each point over
// N seeds.
#include <cstdio>
#include <vector>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace lobster;

  const auto opts = lobsim::parse_campaign_flags(argc, argv, 2015);

  std::puts("=== Figure 5: Proxy Cache Scalability ===");
  std::puts("Concurrent tasks sharing one squid (10 Gbit/s service, 1 Gbit/s");
  std::puts("upstream); cold = 1.5 GB working set, hot = 25 MB residue.\n");

  const std::vector<std::size_t> counts{10,  50,   100,  250,  500,
                                       750, 1000, 1500, 2000, 3000};
  const auto points = lobsim::run_proxy_scaling(counts, opts.seeds, opts.jobs);
  if (opts.seeds.size() > 1)
    std::printf("(each point: mean over %zu seeds, %zu jobs)\n\n",
                opts.seeds.size(), opts.jobs);

  util::Table table({"tasks sharing proxy", "cold overhead", "hot overhead",
                     "hot profile"});
  double hot_max = 0.0;
  for (const auto& p : points) hot_max = std::max(hot_max, p.hot_overhead);
  for (const auto& p : points) {
    std::string hot = util::format_duration(p.hot_overhead);
    if (opts.seeds.size() > 1)
      hot += " +/- " + util::format_duration(p.hot_sd);
    table.row({util::Table::integer(static_cast<long long>(p.clients)),
               util::format_duration(p.cold_overhead), hot,
               util::bar(p.hot_overhead, hot_max, 40)});
  }
  std::fputs(table.str().c_str(), stdout);

  // Locate the knee: the first client count where hot overhead exceeds
  // twice its unloaded value.
  const double base = points.front().hot_overhead;
  std::size_t knee = counts.back();
  for (const auto& p : points) {
    if (p.hot_overhead > 2.0 * base) {
      knee = p.clients;
      break;
    }
  }
  std::puts("\nPaper-shape check (paper: one proxy sustains ~1000 hot worker");
  std::puts("caches before performance suffers):");
  std::printf("  measured knee (hot overhead > 2x unloaded): ~%zu clients\n",
              knee);
  std::printf("  cold/hot overhead ratio at 500 clients: %.1fx\n",
              points[4].cold_overhead / points[4].hot_overhead);
  return 0;
}

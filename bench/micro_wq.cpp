// micro_wq — google-benchmark microbenchmarks for the Work Queue runtime:
// end-to-end dispatch latency through the master and through a foreman
// hierarchy, with real worker threads.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "wq/foreman.hpp"
#include "wq/master.hpp"
#include "wq/worker.hpp"

namespace wq = lobster::wq;

namespace {
void run_tasks(wq::Master& master, int n) {
  for (int i = 0; i < n; ++i) {
    wq::TaskSpec spec;
    spec.id = static_cast<std::uint64_t>(i);
    spec.work = [](wq::TaskContext&) { return 0; };
    master.submit(std::move(spec));
  }
  master.close_submission();
  int seen = 0;
  while (master.next_result()) ++seen;
  benchmark::DoNotOptimize(seen);
}
}  // namespace

static void BM_MasterDirectDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    wq::Master master;
    wq::Worker w0("w0", master, 4);
    run_tasks(master, n);
    w0.join();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("master->worker");
}
BENCHMARK(BM_MasterDirectDispatch)->Arg(1000)->Unit(benchmark::kMillisecond);

static void BM_ForemanHierarchyDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    wq::Master master;
    std::vector<std::unique_ptr<wq::Foreman>> foremen;
    std::vector<std::unique_ptr<wq::Worker>> workers;
    for (int f = 0; f < 4; ++f) {
      foremen.push_back(
          std::make_unique<wq::Foreman>("f" + std::to_string(f), master, 32));
      workers.push_back(std::make_unique<wq::Worker>(
          "w" + std::to_string(f), *foremen.back(), 2));
    }
    run_tasks(master, n);
    for (auto& w : workers) w->join();
    for (auto& f : foremen) f->shutdown();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("master->4 foremen->workers");
}
BENCHMARK(BM_ForemanHierarchyDispatch)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

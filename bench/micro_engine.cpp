// micro_engine — campaign throughput microbenchmark.
//
// Measures end-to-end Engine runs (full DES kernel: batch ramp, eviction,
// WAN links, merging) executed through lobsim::Campaign, serial vs. multi
// threaded.  The scenario is deliberately small so a single run takes tens
// of milliseconds and the benchmark exercises campaign dispatch overhead
// rather than one giant simulation.
//
// BM_CampaignSpeedup prints the jobs=N / jobs=1 wall-clock ratio as the
// "speedup" counter; the acceptance bar for the parallel harness is >1.5x
// at 4 jobs over 8 seeds on a 4+ core machine.
//
// The headline measurement (BENCH_micro_engine.json) constructs one Engine
// directly and times only engine.run(): construction, RNG stream setup, and
// metrics allocation are excluded, so the number is steady-state DES events
// per wall-second through the full lobsim stack.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench_json.hpp"
#include "lobsim/campaign.hpp"
#include "lobsim/engine.hpp"

using namespace lobster;

namespace {

lobsim::RunSpec small_spec() {
  lobsim::RunSpec spec;
  spec.cluster.target_cores = 64;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 60.0;
  spec.cluster.evictions = true;
  spec.workload.num_tasklets = 600;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_cpu_mean = 600.0;
  spec.workload.tasklet_cpu_sigma = 120.0;
  spec.workload.merge_mode = core::MergeMode::Interleaved;
  spec.time_cap = 10.0 * 86400.0;
  spec.metric_bin_seconds = 3600.0;
  return spec;
}

// Headline: one Engine run of the small campaign spec, setup excluded.
// The unit of work is DES events dispatched by the kernel.
benchjson::Headline headline_engine_throughput() {
  constexpr int kReps = 3;
  benchjson::Headline best;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto spec = small_spec();
    lobsim::Engine engine(spec.cluster, spec.workload, spec.seed,
                          spec.metric_bin_seconds);
    benchjson::Stopwatch sw;
    sw.start();
    engine.run(spec.time_cap);
    const double wall = sw.stop();
    const double events =
        static_cast<double>(engine.sim().events_executed());
    if (best.wall_s == 0.0 || wall < best.wall_s) best = {events, wall};
  }
  return best;
}

double run_campaign(std::size_t jobs, std::size_t seeds) {
  lobsim::Campaign campaign(jobs);
  std::vector<std::uint64_t> sweep;
  for (std::uint64_t s = 0; s < seeds; ++s) sweep.push_back(2015 + s);
  campaign.add_seed_sweep(small_spec(), sweep);
  const auto t0 = std::chrono::steady_clock::now();
  campaign.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Single Engine run throughput: simulated-seconds per wall-second.
void BM_SingleEngineRun(benchmark::State& state) {
  double sim_seconds = 0.0;
  for (auto _ : state) {
    const auto stats = lobsim::Campaign::execute(lobsim::RunSpec{small_spec()});
    benchmark::DoNotOptimize(stats.makespan);
    sim_seconds += stats.makespan;
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      sim_seconds, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleEngineRun)->Unit(benchmark::kMillisecond);

// Campaign of 8 seeds at various --jobs widths.
void BM_Campaign(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_campaign(jobs, 8));
  }
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Direct serial vs. parallel comparison: reports the wall-clock speedup of
// jobs=4 over jobs=1 across 8 seeds (the ISSUE acceptance criterion).
void BM_CampaignSpeedup(benchmark::State& state) {
  double serial = 0.0, parallel = 0.0;
  for (auto _ : state) {
    serial += run_campaign(1, 8);
    parallel += run_campaign(4, 8);
  }
  state.counters["speedup"] =
      parallel > 0.0 ? serial / parallel : 0.0;
}
BENCHMARK(BM_CampaignSpeedup)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool headline_only = benchjson::headline_only(argc, argv);
  benchjson::strip_headline_flag(&argc, argv);
  benchjson::write_snapshot("micro_engine", headline_engine_throughput());
  if (headline_only) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// fig11_simulation_timeline — reproduces Figure 11: "The time evolution of
// a simulation run on nearly 20K cores over eight hours.  From the top:
// number of concurrent tasks running; time to setup the software release
// and initialize the environment; time to stage-out data from local to
// permanent storage; and exit code of failed tasks as a function of time.
// At the beginning of the run, the release setup time peaks around 400
// minutes as cold worker caches are filled simultaneously.  During this
// period, high load on the squid proxy cache is responsible for a small
// number of task failures. After most caches are filled, the release setup
// time drops, as does the prevalence of tasks exiting with squid related
// failures."
//
// --advisor-gate mode runs the scenario twice through one Campaign —
// advisor off, then advisor on (src/lobsim/advisor.hpp) — and exits
// non-zero unless the advisor-on run achieves strictly higher goodput.
// The advisor's lever here is the SetupTime rule: when cold-cache setup
// wall crosses the threshold it throttles dispatch, so the squid serves
// fewer concurrent fetchers, each finishes inside the connect timeout,
// and no service work is wasted on timed-out transfers.  --cores /
// --tasklets scale the scenario down for CI (the squid and chirp rates
// scale with the core count so the same overload binds); --trace-prefix
// writes <prefix>-off.jsonl / <prefix>-on.jsonl so `lobster_compare
// --diff` can attribute the win to the "env_setup" bucket.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "lobsim/campaign.hpp"
#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

double goodput(const lobster::lobsim::RunStats& s) {
  return s.makespan > 0.0
             ? static_cast<double>(s.tasklets_processed) / (s.makespan / 3600.0)
             : 0.0;
}

int run_advisor_gate(lobster::lobsim::SimulationRunScenario s,
                     const std::string& trace_prefix) {
  using namespace lobster;
  // The figure run's burst grant admits the whole pool inside one advisor
  // period — every cold-cache population is already queued at the squid
  // before the first windowed symptom exists, and no reactive controller
  // can shed a cohort admitted before it could observe anything.  The gate
  // instead uses a gradual grant (the fig10-style ramp), so the overload
  // develops on the control loop's timescale: worker arrivals outpace the
  // squid's population service rate, the connect queue crosses the timeout,
  // and the advisor can pace admissions while the symptom is live.
  s.cluster.ramp_seconds = 4.0 * 3600.0;
  // Calm the availability churn for the gate: eviction wall rides the same
  // latency feedback the squid storm creates and would swamp the diff's
  // attribution with the "failed" bucket — the outage/eviction channel is
  // fig10's gate.  This one isolates the squid channel, so the win must
  // show up as env_setup wall.
  s.cluster.availability.scale_hours = 64.0;
  // Overload thrash on the squid (the Figure 5 knee): past half its
  // connection budget the proxy pays retransmit inflation per admitted
  // request.  This is what makes the cold-cache storm *wasteful* rather
  // than merely slow — a work-conserving proxy serves the same byte total
  // at any concurrency, and no admission controller could beat the
  // uncontrolled run.  Both arms run the same proxy.
  s.cluster.squid.thrash = 1.5;
  s.cluster.squid.thrash_knee = s.cluster.squid.max_connections / 2;
  lobsim::RunSpec off;
  off.label = "advisor-off";
  off.cluster = s.cluster;
  off.workload = s.workload;
  off.seed = s.seed;
  if (!trace_prefix.empty()) off.trace_path = trace_prefix + "-off.jsonl";

  lobsim::RunSpec on = off;
  on.label = "advisor-on";
  on.advisor.enabled = true;
  // Operator tuning for this scenario: the completion-window setup rule
  // observes the cold-cache storm a full task latency late — its throttles
  // land after the symptom and idle hot cores (a windowed fraction never
  // exceeds 1, so 1.1 disables it).  The proxy-plane waste rate
  // (cvmfs.squid.bytes_thrashed) carries the same "overloaded squid"
  // diagnosis while it is live, and drives the throttle instead.
  on.advisor.thresholds.setup_fraction = 1.1;
  if (!trace_prefix.empty()) on.trace_path = trace_prefix + "-on.jsonl";

  lobsim::Campaign campaign(2);
  campaign.add(off);
  campaign.add(on);
  const auto& results = campaign.run();
  for (const auto& r : results)
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s run failed: %s\n", r.label.c_str(),
                   r.error.c_str());
      return 1;
    }
  const lobsim::RunStats& a = results[0].stats;
  const lobsim::RunStats& b = results[1].stats;

  util::Table table({"metric", "advisor-off", "advisor-on"});
  table.row({"makespan", util::format_duration(a.makespan),
             util::format_duration(b.makespan)});
  table.row({"goodput (tasklets/h)", util::Table::num(goodput(a), 1),
             util::Table::num(goodput(b), 1)});
  table.row({"tasks failed",
             util::Table::integer(static_cast<long long>(a.tasks_failed)),
             util::Table::integer(static_cast<long long>(b.tasks_failed))});
  table.row({"tasklets retried",
             util::Table::integer(static_cast<long long>(a.tasklets_retried)),
             util::Table::integer(
                 static_cast<long long>(b.tasklets_retried))});
  table.row(
      {"advisor ticks/shr/thr/drn/rst", "-",
       util::Table::integer(static_cast<long long>(b.advisor_ticks)) + "/" +
           util::Table::integer(static_cast<long long>(b.advisor_shrinks)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_throttles)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_drains)) +
           "/" +
           util::Table::integer(static_cast<long long>(b.advisor_restores))});
  std::fputs(table.str().c_str(), stdout);

  if (!(a.completed && b.completed)) {
    std::puts("\nGATE FAIL: a run hit the time cap.");
    return 1;
  }
  if (!(goodput(b) > goodput(a))) {
    std::printf("\nGATE FAIL: advisor-on goodput %.1f <= advisor-off %.1f.\n",
                goodput(b), goodput(a));
    return 1;
  }
  std::printf("\nGATE PASS: advisor-on goodput %.1f > advisor-off %.1f "
              "(makespan %s vs %s).\n",
              goodput(b), goodput(a),
              util::format_duration(b.makespan).c_str(),
              util::format_duration(a.makespan).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lobster;

  bool advisor_gate = false;
  std::size_t cores = 0;
  std::uint64_t tasklets = 0;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--advisor-gate")
      advisor_gate = true;
    else if (arg == "--cores")
      cores = std::strtoull(value("--cores"), nullptr, 10);
    else if (arg == "--tasklets")
      tasklets = std::strtoull(value("--tasklets"), nullptr, 10);
    else if (arg == "--trace-prefix")
      trace_prefix = value("--trace-prefix");
    else {
      std::fprintf(stderr,
                   "usage: %s [--advisor-gate] [--cores N] [--tasklets N] "
                   "[--trace-prefix P]\n",
                   argv[0]);
      return 2;
    }
  }

  auto s = lobsim::simulation_run_scenario();
  if (cores > 0) {
    // Scale the shared bottlenecks with the core count so a smaller run
    // hits the same cold-cache squid overload; the connect timeout stays
    // fixed so the exit-174 trickle persists at the smaller scale.
    const double f = static_cast<double>(cores) /
                     static_cast<double>(s.cluster.target_cores);
    s.cluster.target_cores = cores;
    s.cluster.federation.campus_uplink_rate *= f;
    s.cluster.squid.service_rate *= f;
    s.cluster.squid.upstream_rate *= f;
    s.cluster.squid.max_connections = std::max<std::int64_t>(
        32, static_cast<std::int64_t>(
                static_cast<double>(s.cluster.squid.max_connections) * f));
    s.cluster.chirp.nic_rate *= f;
  }
  if (tasklets > 0) s.workload.num_tasklets = tasklets;

  if (advisor_gate) return run_advisor_gate(std::move(s), trace_prefix);

  std::puts("=== Figure 11: Timeline of the Simulation (MC) Run ===");

  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  const auto& m = engine.run(10.0 * 86400.0);

  const auto& mon = m.monitor;
  const auto setup = mon.setup_time_timeline();
  const auto stageout = mon.stageout_time_timeline();
  const std::size_t bins = mon.running_timeline().nbins();
  const double bin_w = mon.completed_timeline().bin_width();

  std::puts("-- top: concurrent tasks running (1 char = 500 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    const double running = mon.running_timeline().mean_level(b);
    std::printf("  %7s |%s %.0f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(running, 20000.0, 40).c_str(), running);
  }

  double setup_peak = 0.0;
  for (double v : setup) setup_peak = std::max(setup_peak, v);
  std::puts("\n-- second: mean software setup time per bin --");
  for (std::size_t b = 0; b < setup.size(); ++b) {
    std::printf("  %7s |%s %s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(setup[b], setup_peak, 40).c_str(),
                util::format_duration(setup[b]).c_str());
  }

  double so_peak = 0.0;
  for (double v : stageout) so_peak = std::max(so_peak, v);
  std::puts("\n-- third: mean stage-out time per bin (Chirp waves) --");
  for (std::size_t b = 0; b < stageout.size(); ++b) {
    std::printf("  %7s |%s %s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(stageout[b], so_peak, 40).c_str(),
                util::format_duration(stageout[b]).c_str());
  }

  std::puts("\n-- bottom: failed-task exit codes over time --");
  std::map<int, util::Histogram> by_code;
  for (const auto& [t, code] : m.failure_events) {
    auto it = by_code.find(code);
    if (it == by_code.end())
      it = by_code
               .emplace(code, util::Histogram(
                                  std::max<std::size_t>(bins, 1), 0.0,
                                  static_cast<double>(bins) * bin_w))
               .first;
    it->second.fill(t);
  }
  for (auto& [code, hist] : by_code) {
    std::printf("  exit %d (%s): %zu failures\n", code,
                code == 174 ? "squid/env setup" : "other", hist.entries());
    std::fputs(hist.ascii(40).c_str(), stdout);
  }

  std::printf(
      "\nRun summary: peak %zu concurrent tasks; %llu completed; %llu squid"
      "\ntimeouts; setup-time peak %s; makespan %s.\n",
      m.peak_running, static_cast<unsigned long long>(m.tasks_completed),
      static_cast<unsigned long long>(engine.squid(0).timeouts()),
      util::format_duration(setup_peak).c_str(),
      util::format_duration(m.makespan).c_str());
  std::puts("\nPaper-shape check: ~20k concurrent tasks; setup-time peak of");
  std::puts("hundreds of minutes while cold caches fill, then a sharp drop;");
  std::puts("periodic stage-out waves; squid-related failures concentrated");
  std::puts("early and decaying after caches are hot.");
  return 0;
}

// fig11_simulation_timeline — reproduces Figure 11: "The time evolution of
// a simulation run on nearly 20K cores over eight hours.  From the top:
// number of concurrent tasks running; time to setup the software release
// and initialize the environment; time to stage-out data from local to
// permanent storage; and exit code of failed tasks as a function of time.
// At the beginning of the run, the release setup time peaks around 400
// minutes as cold worker caches are filled simultaneously.  During this
// period, high load on the squid proxy cache is responsible for a small
// number of task failures. After most caches are filled, the release setup
// time drops, as does the prevalence of tasks exiting with squid related
// failures."
#include <algorithm>
#include <cstdio>
#include <map>

#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 11: Timeline of the Simulation (MC) Run ===");

  auto s = lobsim::simulation_run_scenario();
  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  const auto& m = engine.run(10.0 * 86400.0);

  const auto& mon = m.monitor;
  const auto setup = mon.setup_time_timeline();
  const auto stageout = mon.stageout_time_timeline();
  const std::size_t bins = mon.running_timeline().nbins();
  const double bin_w = mon.completed_timeline().bin_width();

  std::puts("-- top: concurrent tasks running (1 char = 500 tasks) --");
  for (std::size_t b = 0; b < bins; ++b) {
    const double running = mon.running_timeline().mean_level(b);
    std::printf("  %7s |%s %.0f\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(running, 20000.0, 40).c_str(), running);
  }

  double setup_peak = 0.0;
  for (double v : setup) setup_peak = std::max(setup_peak, v);
  std::puts("\n-- second: mean software setup time per bin --");
  for (std::size_t b = 0; b < setup.size(); ++b) {
    std::printf("  %7s |%s %s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(setup[b], setup_peak, 40).c_str(),
                util::format_duration(setup[b]).c_str());
  }

  double so_peak = 0.0;
  for (double v : stageout) so_peak = std::max(so_peak, v);
  std::puts("\n-- third: mean stage-out time per bin (Chirp waves) --");
  for (std::size_t b = 0; b < stageout.size(); ++b) {
    std::printf("  %7s |%s %s\n",
                util::format_duration(static_cast<double>(b) * bin_w).c_str(),
                util::bar(stageout[b], so_peak, 40).c_str(),
                util::format_duration(stageout[b]).c_str());
  }

  std::puts("\n-- bottom: failed-task exit codes over time --");
  std::map<int, util::Histogram> by_code;
  for (const auto& [t, code] : m.failure_events) {
    auto it = by_code.find(code);
    if (it == by_code.end())
      it = by_code
               .emplace(code, util::Histogram(
                                  std::max<std::size_t>(bins, 1), 0.0,
                                  static_cast<double>(bins) * bin_w))
               .first;
    it->second.fill(t);
  }
  for (auto& [code, hist] : by_code) {
    std::printf("  exit %d (%s): %zu failures\n", code,
                code == 174 ? "squid/env setup" : "other", hist.entries());
    std::fputs(hist.ascii(40).c_str(), stdout);
  }

  std::printf(
      "\nRun summary: peak %zu concurrent tasks; %llu completed; %llu squid"
      "\ntimeouts; setup-time peak %s; makespan %s.\n",
      m.peak_running, static_cast<unsigned long long>(m.tasks_completed),
      static_cast<unsigned long long>(engine.squid(0).timeouts()),
      util::format_duration(setup_peak).c_str(),
      util::format_duration(m.makespan).c_str());
  std::puts("\nPaper-shape check: ~20k concurrent tasks; setup-time peak of");
  std::puts("hundreds of minutes while cold caches fill, then a sharp drop;");
  std::puts("periodic stage-out waves; squid-related failures concentrated");
  std::puts("early and decaying after caches are hot.");
  return 0;
}

// fig14_multi_site — extension experiment for paper §7: "Furthermore,
// Lobster's design makes it possible to harvest resources from several
// clusters, and even commercial clouds, together to achieve the desired
// scale."
//
// A 150k-core-hour analysis is run three ways: on the home campus alone,
// with a borrowed (hostile) HPC partition added, and with a commercial
// cloud burst on top.  Each site has its own WAN path, squid and eviction
// climate; output always returns to the home Chirp server.
#include <cstdio>

#include "lobsim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {
lobsim::ClusterParams home_campus() {
  lobsim::ClusterParams c;
  c.target_cores = 6000;
  c.cores_per_worker = 8;
  c.ramp_seconds = util::hours(1);
  c.availability.scale_hours = 10.0;
  c.federation.campus_uplink_rate = util::gbit_per_s(10);
  c.chirp.max_connections = 24;
  c.chirp.nic_rate = 8e8;
  return c;
}

lobsim::SiteParams hpc_partition() {
  lobsim::SiteParams s;
  s.name = "HPC backfill";
  s.target_cores = 3000;
  s.ramp_seconds = util::hours(0.5);
  s.availability.scale_hours = 5.0;  // backfill: frequent preemption
  s.federation.campus_uplink_rate = util::gbit_per_s(4);
  return s;
}

lobsim::SiteParams cloud_burst() {
  lobsim::SiteParams s;
  s.name = "cloud burst";
  s.target_cores = 4000;
  s.ramp_seconds = util::hours(0.25);  // instances boot fast
  s.evictions = false;                 // dedicated while paid for
  s.federation.campus_uplink_rate = util::gbit_per_s(5);
  return s;
}

lobsim::WorkloadParams workload() {
  lobsim::WorkloadParams w;
  w.num_tasklets = 80000;
  w.tasklets_per_task = 6;
  w.tasklet_input_bytes = 300e6;
  w.read_fraction = 0.3;
  w.tasklet_output_bytes = 15e6;
  w.merge_mode = lobster::core::MergeMode::Interleaved;
  // Without tail adaptivity, eviction-retry chains of the last stragglers
  // erase the multi-site win; enable the SS8 feature for this experiment.
  w.tail_shrink = true;
  return w;
}
}  // namespace

int main() {
  std::puts("=== Multi-cluster harvesting (paper SS7 extension) ===\n");

  struct Row {
    const char* label;
    lobsim::ClusterParams cluster;
  };
  std::vector<Row> rows;
  rows.push_back({"campus only (6k cores)", home_campus()});
  {
    auto c = home_campus();
    c.extra_sites = {hpc_partition()};
    rows.push_back({"campus + HPC backfill (9k)", c});
  }
  {
    auto c = home_campus();
    c.extra_sites = {hpc_partition(), cloud_burst()};
    rows.push_back({"campus + HPC + cloud (13k)", c});
  }

  util::Table table({"fleet", "makespan", "peak tasks", "evictions",
                     "per-site tasklets"});
  for (const auto& row : rows) {
    lobsim::Engine engine(row.cluster, workload(), 2015);
    const auto& m = engine.run(30.0 * 86400.0);
    std::string split;
    for (std::size_t s = 0; s < engine.num_sites(); ++s) {
      if (s) split += " / ";
      split += util::Table::integer(
          static_cast<long long>(engine.per_site_tasklets()[s]));
    }
    table.row({row.label, util::format_duration(m.makespan),
               util::Table::integer(static_cast<long long>(m.peak_running)),
               util::Table::integer(static_cast<long long>(m.tasks_evicted)),
               split});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nShape check: each added site cuts the makespan; the evicting");
  std::puts("HPC partition contributes less per core than the dedicated");
  std::puts("cloud burst, and outputs still funnel to the home Chirp server.");
  std::puts("(Caveat found while modelling: a site whose WAN path is too");
  std::puts("slow for its core count turns into a task sink — its slots");
  std::puts("keep claiming tasklets they cannot finish before eviction —");
  std::puts("so harvested sites must be provisioned with matching I/O.)");
  return 0;
}

// fig14_multi_site — extension experiment for paper §7: "Furthermore,
// Lobster's design makes it possible to harvest resources from several
// clusters, and even commercial clouds, together to achieve the desired
// scale."
//
// Two modes:
//   --mode classic   (default) a 150k-core-hour analysis run three ways:
//                    on the home campus alone, with a borrowed (hostile)
//                    HPC partition added, and with a commercial cloud
//                    burst on top.  Each site has its own WAN path, squid
//                    and eviction climate; output always returns to the
//                    home Chirp server.
//   --mode stealing  the work-stealing experiment (ROADMAP / paper §7
//                    open question): the same heterogeneous fleet with an
//                    adversarial-burst climate on the HPC partition, run
//                    once under static per-site partitioning and once
//                    with locality-aware work stealing — identical seed,
//                    identical fleet.  Partitioning strands the bursty
//                    site with its share (retry storms) while the other
//                    sites drain theirs and idle; stealing lets them
//                    absorb the backlog at a data penalty (cold squid +
//                    WAN re-stage through the thief's uplink).  Exit code
//                    1 unless stealing achieves strictly higher goodput.
//
// Usage: fig14_multi_site [--mode classic|stealing] [--tasklets N]
//                         [--scale F] [--seed S]
//   --tasklets 8000 --scale 0.25   is the CI smoke configuration.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "lobsim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {
lobsim::ClusterParams home_campus() {
  lobsim::ClusterParams c;
  c.target_cores = 6000;
  c.cores_per_worker = 8;
  c.ramp_seconds = util::hours(1);
  c.availability.scale_hours = 10.0;
  c.federation.campus_uplink_rate = util::gbit_per_s(10);
  c.chirp.max_connections = 24;
  c.chirp.nic_rate = 8e8;
  return c;
}

lobsim::SiteParams hpc_partition() {
  lobsim::SiteParams s;
  s.name = "HPC backfill";
  s.target_cores = 3000;
  s.ramp_seconds = util::hours(0.5);
  s.availability.scale_hours = 5.0;  // backfill: frequent preemption
  s.federation.campus_uplink_rate = util::gbit_per_s(4);
  return s;
}

lobsim::SiteParams cloud_burst() {
  lobsim::SiteParams s;
  s.name = "cloud burst";
  s.target_cores = 4000;
  s.ramp_seconds = util::hours(0.25);  // instances boot fast
  s.evictions = false;                 // dedicated while paid for
  s.federation.campus_uplink_rate = util::gbit_per_s(5);
  return s;
}

lobsim::WorkloadParams workload() {
  lobsim::WorkloadParams w;
  w.num_tasklets = 80000;
  w.tasklets_per_task = 6;
  w.tasklet_input_bytes = 300e6;
  w.read_fraction = 0.3;
  w.tasklet_output_bytes = 15e6;
  w.merge_mode = lobster::core::MergeMode::Interleaved;
  // Without tail adaptivity, eviction-retry chains of the last stragglers
  // erase the multi-site win; enable the SS8 feature for this experiment.
  w.tail_shrink = true;
  return w;
}

int run_classic() {
  std::puts("=== Multi-cluster harvesting (paper SS7 extension) ===\n");

  struct Row {
    const char* label;
    lobsim::ClusterParams cluster;
  };
  std::vector<Row> rows;
  rows.push_back({"campus only (6k cores)", home_campus()});
  {
    auto c = home_campus();
    c.extra_sites = {hpc_partition()};
    rows.push_back({"campus + HPC backfill (9k)", c});
  }
  {
    auto c = home_campus();
    c.extra_sites = {hpc_partition(), cloud_burst()};
    rows.push_back({"campus + HPC + cloud (13k)", c});
  }

  util::Table table({"fleet", "makespan", "peak tasks", "evictions",
                     "per-site tasklets"});
  for (const auto& row : rows) {
    lobsim::Engine engine(row.cluster, workload(), 2015);
    const auto& m = engine.run(30.0 * 86400.0);
    std::string split;
    for (std::size_t s = 0; s < engine.num_sites(); ++s) {
      if (s) split += " / ";
      split += util::Table::integer(
          static_cast<long long>(engine.per_site_tasklets()[s]));
    }
    table.row({row.label, util::format_duration(m.makespan),
               util::Table::integer(static_cast<long long>(m.peak_running)),
               util::Table::integer(static_cast<long long>(m.tasks_evicted)),
               split});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nShape check: each added site cuts the makespan; the evicting");
  std::puts("HPC partition contributes less per core than the dedicated");
  std::puts("cloud burst, and outputs still funnel to the home Chirp server.");
  std::puts("(Caveat found while modelling: a site whose WAN path is too");
  std::puts("slow for its core count turns into a task sink — its slots");
  std::puts("keep claiming tasklets they cannot finish before eviction —");
  std::puts("so harvested sites must be provisioned with matching I/O.)");
  return 0;
}

// ---- stealing vs. static partitioning ---------------------------------------

/// Heterogeneous fleet for the stealing experiment: a calm campus, a
/// dedicated cloud, and an HPC partition under the adversarial-burst
/// climate — every few hours a mass-eviction event claims most of its
/// running workers, so the share statically assigned to it drains in retry
/// storms long after the calm sites go idle.
lobsim::ClusterParams stealing_fleet(double scale) {
  auto cores = [&](double n) {
    return static_cast<std::uint64_t>(n * scale < 64.0 ? 64.0 : n * scale);
  };
  lobsim::ClusterParams c;
  c.target_cores = cores(3000);
  c.cores_per_worker = 8;
  c.ramp_seconds = util::hours(0.5);
  c.availability.scale_hours = 10.0;
  c.federation.campus_uplink_rate = util::gbit_per_s(10);
  c.chirp.max_connections = 24;
  c.chirp.nic_rate = 8e8;

  lobsim::SiteParams hpc = hpc_partition();
  hpc.target_cores = cores(3000);
  hpc.availability.kind = lobsim::AvailabilityKind::AdversarialBurst;
  hpc.availability.scale_hours = 5.0;
  hpc.availability.burst_period_hours = 3.0;
  hpc.availability.burst_fraction = 0.8;

  lobsim::SiteParams cloud = cloud_burst();
  cloud.target_cores = cores(2000);

  c.extra_sites = {hpc, cloud};
  return c;
}

int run_stealing(std::uint64_t tasklets, double scale, std::uint64_t seed) {
  std::puts(
      "=== Work stealing vs. static partitioning (adversarial bursts) ===\n");

  struct Row {
    const char* label;
    lobsim::DispatchMode mode;
  };
  const Row rows[] = {
      {"partitioned (static shares)", lobsim::DispatchMode::Partitioned},
      {"stealing (locality-aware)", lobsim::DispatchMode::Stealing},
  };

  util::Table table({"policy", "makespan", "goodput tl/h", "retried",
                     "evictions", "steals", "penalty GB",
                     "per-site tasklets"});
  double goodput[2] = {0.0, 0.0};
  bool completed[2] = {false, false};
  std::uint64_t steal_tasks = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    lobsim::WorkloadParams w = workload();
    w.num_tasklets = tasklets;
    w.tail_shrink = false;
    w.dispatch = rows[i].mode;
    // Hour-long tasklets: a 6-tasklet task spans two burst periods on the
    // HPC partition, so almost none of its full-size tasks survive — the
    // regime where a static share strands the site in retry storms.
    w.tasklet_cpu_mean = 3600.0;
    w.tasklet_cpu_sigma = 1200.0;
    lobsim::Engine engine(stealing_fleet(scale), w, seed);
    const auto& m = engine.run(30.0 * 86400.0);
    completed[i] = m.completed;
    goodput[i] = m.makespan > 0.0
                     ? static_cast<double>(m.tasklets_processed) /
                           (m.makespan / 3600.0)
                     : 0.0;
    if (rows[i].mode == lobsim::DispatchMode::Stealing)
      steal_tasks = m.steal_tasks;
    std::string split;
    for (std::size_t s = 0; s < engine.num_sites(); ++s) {
      if (s) split += " / ";
      split += util::Table::integer(
          static_cast<long long>(engine.per_site_tasklets()[s]));
    }
    char gp[32], gb[32];
    std::snprintf(gp, sizeof gp, "%.0f", goodput[i]);
    std::snprintf(gb, sizeof gb, "%.1f", m.steal_bytes_penalty / 1e9);
    table.row(
        {rows[i].label, util::format_duration(m.makespan), gp,
         util::Table::integer(static_cast<long long>(m.tasklets_retried)),
         util::Table::integer(static_cast<long long>(m.tasks_evicted)),
         util::Table::integer(static_cast<long long>(m.steal_tasks)), gb,
         split});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nShape check: under static shares the bursty HPC partition");
  std::puts("grinds through its fixed allocation in eviction-retry storms");
  std::puts("while the calm sites sit idle after draining theirs; with");
  std::puts("stealing the idle sites absorb that backlog, paying the WAN");
  std::puts("re-stage penalty but still finishing the workflow sooner.");

  if (!completed[0] || !completed[1]) {
    std::puts("\nFAIL: a run hit the time cap before finishing.");
    return 1;
  }
  if (steal_tasks == 0) {
    std::puts("\nFAIL: the stealing run never stole a task.");
    return 1;
  }
  if (!(goodput[1] > goodput[0])) {
    std::puts(
        "\nFAIL: stealing did not beat static partitioning on goodput.");
    return 1;
  }
  std::printf("\nPASS: stealing goodput %.0f tl/h > partitioned %.0f tl/h "
              "(+%.1f%%).\n",
              goodput[1], goodput[0],
              100.0 * (goodput[1] / goodput[0] - 1.0));
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  std::string mode = "classic";
  std::uint64_t tasklets = 30000;
  double scale = 1.0;
  std::uint64_t seed = 2015;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc)
      mode = argv[++i];
    else if (arg == "--tasklets" && i + 1 < argc)
      tasklets = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (arg == "--scale" && i + 1 < argc)
      scale = std::atof(argv[++i]);
    else if (arg == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: fig14_multi_site [--mode classic|stealing] "
                   "[--tasklets N] [--scale F] [--seed S]\n");
      return 2;
    }
  }
  if (mode == "classic") return run_classic();
  if (mode == "stealing") return run_stealing(tasklets, scale, seed);
  std::fprintf(stderr, "fig14: unknown mode '%s'\n", mode.c_str());
  return 2;
}

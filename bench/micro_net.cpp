// micro_net — the 200 Gbps data-plane bench: incremental max-min solver
// (src/des/bandwidth.hpp) vs the naive full-recompute water-filler
// (tests/reference_link.hpp) under dispatch-burst churn at 1k / 10k / 100k
// concurrent background flows.
//
// The workload is the saturated-uplink regime of the big runs: a large
// steady population of long transfers, plus waves of same-timestamp joins
// of small transfers that complete quickly (a dispatch burst followed by
// its drain).  The naive link pays a full sort + water-fill per event; the
// incremental link coalesces each burst into one boundary re-solve.  The
// headline (BENCH_micro_net.json, wired into the CI perf gate) is the
// incremental link's event throughput at 100k flows; the binary exits
// non-zero unless the incremental solver beats the full-recompute baseline
// by >= 10x there, so the PR's central perf claim is machine-checked.
//
// `--headline-only` measures just the 100k point (what CI runs); the full
// run prints the 1k/10k/100k comparison table.
#include <cstdio>
#include <limits>

#include "bench_json.hpp"
#include "des/bandwidth.hpp"
#include "des/simulation.hpp"
#include "reference_link.hpp"
#include "util/rng.hpp"

namespace des = lobster::des;
namespace lu = lobster::util;
namespace bj = lobster::benchjson;
namespace testref = lobster::testref;

namespace {

constexpr double kCapacity = 2.5e10;  // 200 Gbit/s in bytes/s
constexpr double kInf = std::numeric_limits<double>::infinity();

template <typename Link>
des::Process xfer(Link& link, double bytes) {
  co_await link.transfer(bytes);
}

// Background population setup: the incremental link batches raw joins fine;
// the reference would pay a full recompute per join, so it preloads.
void add_background(des::BandwidthLink& l, double bytes, double cap) {
  (void)l.start_flow(bytes, cap);
}
void add_background(testref::ReferenceLink& l, double bytes, double cap) {
  l.preload(bytes, cap);
}
void settle(des::BandwidthLink&) {}  // the t=0 batch flush settles it
void settle(testref::ReferenceLink& l) { l.settle(); }

// Dispatch-burst churn over a steady n-flow population: `waves` bursts of
// `burst` same-timestamp small transfers, one second apart, each draining
// before the next.  Returns simulator events per wall second over the
// churn phase only (population setup and the t=0 settle are excluded).
template <typename Link>
bj::Headline churn(std::size_t n, int waves, int burst) {
  des::Simulation sim;
  Link link(sim, kCapacity);
  lu::Rng rng(20260808);
  for (std::size_t i = 0; i < n; ++i) {
    // 30% capped near the fair share so the cap-bound boundary is live;
    // the rest uncapped (the saturated-uplink regime: k ~ 0.3 n).
    const double cap =
        rng.chance(0.3) ? rng.uniform(0.5, 2.0) * kCapacity /
                              static_cast<double>(n)
                        : kInf;
    add_background(link, 1e18, cap);
  }
  settle(link);
  for (int w = 0; w < waves; ++w) {
    const double at = 1.0 + static_cast<double>(w);
    for (int b = 0; b < burst; ++b)
      sim.schedule(at, [&sim, &link] { sim.spawn(xfer(link, 1e3)); });
  }
  sim.run_until(0.5);  // flush setup events outside the timed region
  const std::uint64_t events0 = sim.events_executed();
  bj::Stopwatch sw;
  sw.start();
  sim.run_until(1.5 + static_cast<double>(waves));
  const double wall = sw.stop();
  const std::uint64_t events = sim.events_executed() - events0;
  return {static_cast<double>(events), wall};
}

struct Row {
  std::size_t flows;
  bj::Headline inc;
  double inc_eps;
  double ref_eps;
};

Row measure(std::size_t n, int inc_waves, int ref_waves, int burst) {
  const bj::Headline inc = churn<des::BandwidthLink>(n, inc_waves, burst);
  const bj::Headline ref = churn<testref::ReferenceLink>(n, ref_waves, burst);
  return {n, inc, inc.events_per_s(), ref.events_per_s()};
}

void print_row(const Row& r) {
  std::printf("  %7zu | %12.3g | %12.3g | %8.1fx\n", r.flows, r.inc_eps,
              r.ref_eps, r.inc_eps / r.ref_eps);
}

}  // namespace

int main(int argc, char** argv) {
  const bool headline_only = bj::headline_only(argc, argv);
  constexpr int kBurst = 100;
  std::printf("micro_net: dispatch-burst churn, incremental vs "
              "full-recompute max-min solver\n");
  std::printf("    flows |  inc events/s |  ref events/s | speedup\n");
  if (!headline_only) {
    print_row(measure(1000, 40, 20, kBurst));
    print_row(measure(10000, 40, 8, kBurst));
  }
  const Row big = measure(100000, 20, 3, kBurst);
  print_row(big);
  // The snapshot the perf gate diffs across PRs: the incremental link's
  // throughput at the 100k-flow point.
  bj::write_snapshot("micro_net", big.inc);
  const double speedup = big.inc_eps / big.ref_eps;
  if (!(speedup >= 10.0)) {
    std::fprintf(stderr,
                 "micro_net: FAIL: incremental solver only %.1fx the "
                 "full-recompute baseline at 100k flows (need >= 10x)\n",
                 speedup);
    return 1;
  }
  std::printf("micro_net: OK: %.1fx at 100k flows (>= 10x required)\n",
              speedup);
  return 0;
}

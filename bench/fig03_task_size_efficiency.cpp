// fig03_task_size_efficiency — reproduces Figure 3: "Efficiency, calculated
// as the ratio of effective processing time to total time, as a function of
// the average task length for the simulated processing of 100,000 tasklets
// and assuming a constant probability of eviction (dotted), a probability
// derived from observation (dashed), or no eviction (solid)."
//
// All parameters are the paper's: 100k tasklets, 8000 workers, per-worker
// overhead 5 min, per-task overhead 20 min, tasklet times N(10, 5) min.
// Expected shape: all three curves start low (task shorter than the
// overheads), the no-eviction curve rises asymptotically toward 1, and both
// eviction curves peak around 70% near one-hour tasks and then decay.
#include <cstdio>
#include <vector>

#include "core/task_size_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 3: Simulated Efficiency by Task Length ===");
  std::puts("100,000 tasklets, 8,000 workers, worker OH 5 min, task OH 20 min,");
  std::puts("tasklet ~ N(10 min, 5 min).  Three eviction scenarios.\n");

  core::TaskSizeModelParams params;  // paper defaults
  const core::NoEviction none;
  const core::ConstantEviction constant(0.1);
  const auto log = core::synthesize_availability_log(
      50000, util::Rng(2015).stream("fig3"), 0.8, 4.0);
  const core::EmpiricalEviction observed{util::EmpiricalDistribution(log)};

  const std::vector<double> hours{0.25, 0.5, 1.0, 1.5, 2.0, 3.0,
                                  4.0,  5.0, 6.0, 8.0, 10.0};
  const auto sweep_none = core::sweep_task_sizes(params, none, hours);
  const auto sweep_const = core::sweep_task_sizes(params, constant, hours);
  const auto sweep_obs = core::sweep_task_sizes(params, observed, hours);

  util::Table table({"task length (h)", "no eviction", "constant (0.1/h)",
                     "observed", "profile (observed)"});
  for (std::size_t i = 0; i < hours.size(); ++i) {
    table.row({util::Table::num(hours[i], 2),
               util::Table::num(sweep_none[i].efficiency, 3),
               util::Table::num(sweep_const[i].efficiency, 3),
               util::Table::num(sweep_obs[i].efficiency, 3),
               util::bar(sweep_obs[i].efficiency, 1.0, 40)});
  }
  std::fputs(table.str().c_str(), stdout);

  const double opt_const = core::optimal_task_hours(sweep_const);
  const double opt_obs = core::optimal_task_hours(sweep_obs);
  double best_const = 0.0, best_obs = 0.0;
  for (const auto& r : sweep_const)
    best_const = std::max(best_const, r.efficiency);
  for (const auto& r : sweep_obs) best_obs = std::max(best_obs, r.efficiency);

  std::puts("\nPaper-shape check (paper: both eviction models peak ~70% at");
  std::puts("~1 h; no-eviction curve approaches 1 asymptotically):");
  std::printf("  constant model: peak %.3f at %.2f h\n", best_const, opt_const);
  std::printf("  observed model: peak %.3f at %.2f h\n", best_obs, opt_obs);
  std::printf("  no eviction at 10 h: %.3f\n", sweep_none.back().efficiency);
  return 0;
}

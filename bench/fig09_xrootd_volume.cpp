// fig09_xrootd_volume — reproduces Figure 9: "Volume of data transferred
// via XrootD for the top ten consumers in the CMS collaboration during a
// 4 hour period ... During this time Lobster was running around 9000 tasks
// at Notre Dame" — and was the top consumer.
//
// The Lobster volume is measured from a 4-hour window of the simulated data
// processing run; the other sites' volumes are synthetic dashboard
// background drawn below Lobster's scale (the paper's point is the ranking).
#include <cstdio>

#include "lobsim/scenarios.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace lobster;

  std::puts("=== Figure 9: Data Processing Volume (top XrootD consumers) ===");

  auto s = lobsim::data_processing_scenario();
  lobsim::Engine engine(s.cluster, s.workload, s.seed);
  engine.schedule_outage(s.outage_start, s.outage_duration);

  // Measure the 4-hour dashboard window as the mean streaming rate of the
  // run's saturated plateau times four hours.
  const double window = 4.0 * 3600.0;
  const auto& m = engine.run(10.0 * 86400.0);

  const double plateau_rate = m.bytes_streamed / m.makespan;
  const double lobster_4h = plateau_rate * window;

  const auto ledger = lobsim::dashboard_ledger(lobster_4h, s.seed);
  util::Table table({"rank", "site", "volume (4 h)", "profile"});
  int rank = 1;
  for (const auto& entry : ledger) {
    table.row({util::Table::integer(rank++), entry.site,
               util::format_bytes(entry.bytes),
               util::bar(entry.bytes, ledger.front().bytes, 40)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nLobster ran ~%zu concurrent tasks during the window.\n",
              m.peak_running);
  std::puts("Paper-shape check: the single-user Lobster deployment is the");
  std::puts("largest XrootD consumer in the collaboration for the window.");
  return 0;
}

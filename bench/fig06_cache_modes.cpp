// fig06_cache_modes — ablation of the Figure 6 cache configurations:
//
//   (a) exclusive   — one cache directory, whole-cache write lock: cold
//                     instances serialise behind a single writer;
//   (b/c) per-instance — one cache per task slot: full concurrency, but
//                     every slot re-downloads the shared files;
//   (d/e) alien     — shared concurrent cache: each object fetched once per
//                     node, all instances make progress ("has been
//                     activated in Parrot with good results").
//
// Part 1 exercises the real, thread-based cvmfs::CacheGroup with actual
// std::threads racing on a synthetic release.  Part 2 repeats the ablation
// at cluster scale on the DES engine.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"
#include "lobsim/engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {
using namespace lobster;

struct RealResult {
  double wall_seconds = 0.0;
  std::uint64_t fetches = 0;
  double bytes_fetched = 0.0;
  std::uint64_t lock_waits = 0;
};

RealResult run_real(cvmfs::CacheMode mode, const cvmfs::Release& release) {
  // Fetcher latency models the proxy RTT + transfer: 1 us per 100 kB.
  cvmfs::CacheGroup group(mode, [](const cvmfs::FileObject& obj) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        50 + static_cast<long>(obj.size_bytes / 1e5)));
    return cvmfs::digest_of(obj.path, obj.size_bytes);
  });
  constexpr int kSlots = 8;
  constexpr int kTasksPerSlot = 3;
  std::vector<cvmfs::CacheGroup::Instance> instances;
  for (int s = 0; s < kSlots; ++s) instances.push_back(group.make_instance());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < kSlots; ++s) {
    threads.emplace_back([&, s] {
      util::Rng rng(static_cast<std::uint64_t>(s) + 77);
      for (int task = 0; task < kTasksPerSlot; ++task) {
        for (const auto& obj : release.sample_working_set(rng))
          instances[static_cast<std::size_t>(s)].access(obj);
      }
    });
  }
  for (auto& t : threads) t.join();
  RealResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.fetches = group.stats().fetches.load();
  r.bytes_fetched = group.stats().bytes_fetched.load();
  r.lock_waits = group.stats().lock_waits.load();
  return r;
}

struct SimResult {
  double service_bytes = 0.0;
  double setup_total = 0.0;
  double makespan = 0.0;
};

SimResult run_sim(cvmfs::CacheMode mode) {
  lobsim::ClusterParams cluster;
  cluster.target_cores = 256;
  cluster.cores_per_worker = 8;
  cluster.ramp_seconds = 300.0;
  cluster.evictions = false;
  cluster.squid.request_latency = 5.0;
  lobsim::WorkloadParams wl;
  wl.num_tasklets = 1200;
  wl.tasklets_per_task = 6;
  wl.cache_mode = mode;
  wl.merge_mode = core::MergeMode::Sequential;
  wl.merge_policy.target_bytes = 1e12;
  lobsim::Engine engine(cluster, wl, 2015);
  const auto& m = engine.run(30.0 * 86400.0);
  return SimResult{engine.squid(0).service_link().bytes_moved(),
                   m.monitor.breakdown().other, m.makespan};
}
}  // namespace

int main() {
  std::puts("=== Figure 6 ablation: Parrot cache concurrency modes ===\n");

  std::puts("-- Part 1: real threads on cvmfs::CacheGroup (8 slots x 3 tasks,");
  std::puts("   synthetic 2000-file release, ~1.5 GB working set) --");
  cvmfs::ReleaseSpec spec;
  const cvmfs::Release release(spec, util::Rng(2015).stream("fig6"));

  util::Table real_table({"mode", "wall (s)", "fetches", "bytes fetched",
                          "blocked waits"});
  RealResult alien{};
  for (const auto mode :
       {cvmfs::CacheMode::Exclusive, cvmfs::CacheMode::PerInstance,
        cvmfs::CacheMode::Alien}) {
    const auto r = run_real(mode, release);
    if (mode == cvmfs::CacheMode::Alien) alien = r;
    real_table.row({cvmfs::to_string(mode), util::Table::num(r.wall_seconds, 3),
                    util::Table::integer(static_cast<long long>(r.fetches)),
                    util::format_bytes(r.bytes_fetched),
                    util::Table::integer(static_cast<long long>(r.lock_waits))});
  }
  std::fputs(real_table.str().c_str(), stdout);

  std::puts("\n-- Part 2: DES engine at 256 cores (squid traffic & setup) --");
  util::Table sim_table(
      {"mode", "proxy->worker bytes", "total setup time", "makespan"});
  for (const auto mode :
       {cvmfs::CacheMode::Exclusive, cvmfs::CacheMode::PerInstance,
        cvmfs::CacheMode::Alien}) {
    const auto r = run_sim(mode);
    sim_table.row({cvmfs::to_string(mode), util::format_bytes(r.service_bytes),
                   util::format_duration(r.setup_total),
                   util::format_duration(r.makespan)});
  }
  std::fputs(sim_table.str().c_str(), stdout);

  std::puts("\nPaper-shape check (paper §4.3): per-instance multiplies the");
  std::puts("bandwidth demand by the slots per node; exclusive serialises");
  std::puts("cold access; alien gives concurrency with one fetch per object.");
  return 0;
}

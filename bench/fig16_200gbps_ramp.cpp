// fig16_200gbps_ramp — the 200 Gbps data-plane challenge scenario: the
// paper's saturated 10 Gbit/s campus uplink scaled to a multi-path
// federation (per-site uplinks feeding shared WAN trunks) and driven to
// 200 Gbit/s of offered streaming load in a phase-by-phase ramp.
//
// Three modes:
//   --mode ramp      least-loaded redirector, clean ramp to the target
//                    (exit code 1 unless the final phase achieves >= 85%)
//   --mode hotspot   first-available redirector: every open piles onto
//                    site 0, whose uplink pins aggregate throughput far
//                    below the target however hard the ramp pushes
//   --mode collapse  site 0's uplink collapses mid-ramp: its streams
//                    break, opens re-route, throughput dips and recovers
//                    (exit code 1 unless streams actually broke and the
//                    ramp still recovers past 70%)
//
// Usage: fig16_200gbps_ramp [--sites N] [--trunks N] [--target-gbps G]
//                           [--phases N] [--phase-seconds S] [--mode M]
//   --sites 8 --target-gbps 50   is the CI smoke configuration.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "lobsim/scenarios.hpp"
#include "util/table.hpp"

using namespace lobster;

namespace {

struct Options {
  lobsim::RampOptions ramp;
  std::string mode = "ramp";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](double fallback) {
      return i + 1 < argc ? std::atof(argv[++i]) : fallback;
    };
    if (arg == "--sites")
      o.ramp.sites = static_cast<std::size_t>(value(16));
    else if (arg == "--trunks")
      o.ramp.trunks = static_cast<std::size_t>(value(4));
    else if (arg == "--target-gbps")
      o.ramp.target_gbps = value(200.0);
    else if (arg == "--phases")
      o.ramp.phases = static_cast<std::size_t>(value(8));
    else if (arg == "--phase-seconds")
      o.ramp.phase_seconds = value(120.0);
    else if (arg == "--mode" && i + 1 < argc)
      o.mode = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: fig16_200gbps_ramp [--sites N] [--trunks N] "
                   "[--target-gbps G] [--phases N] [--phase-seconds S] "
                   "[--mode ramp|hotspot|collapse]\n");
      std::exit(2);
    }
  }
  if (o.mode == "hotspot")
    o.ramp.policy = xrootd::PathPolicy::FirstAvailable;
  else if (o.mode == "collapse")
    o.ramp.uplink_collapse = true;
  else if (o.mode != "ramp") {
    std::fprintf(stderr, "fig16: unknown mode '%s'\n", o.mode.c_str());
    std::exit(2);
  }
  return o;
}

std::string gbps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const auto& ro = opt.ramp;
  std::printf(
      "=== Figure 16: 200 Gbps data plane (%s mode), ramp to %.0f Gbit/s "
      "===\n"
      "%zu sites (x%.1f Gbit/s uplink) over %zu shared trunks "
      "(x%.1f Gbit/s), %s redirector\n\n",
      opt.mode.c_str(), ro.target_gbps, ro.sites,
      1.5 * ro.target_gbps / static_cast<double>(ro.sites),
      std::min(ro.trunks, ro.sites),
      ro.target_gbps / static_cast<double>(std::min(ro.trunks, ro.sites)),
      ro.policy == xrootd::PathPolicy::LeastLoaded ? "least-loaded"
                                                   : "first-available");

  const lobsim::RampResult r = lobsim::run_200gbps_ramp(ro);

  util::Table table({"phase", "offered Gb/s", "achieved Gb/s", "site min",
                     "site max", "broken", "failed opens"});
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const auto& ph = r.phases[i];
    double lo = ph.site_gbps.empty() ? 0.0 : ph.site_gbps[0];
    double hi = lo;
    for (double g : ph.site_gbps) {
      lo = std::min(lo, g);
      hi = std::max(hi, g);
    }
    table.row({std::to_string(i + 1), gbps(ph.offered_gbps),
               gbps(ph.achieved_gbps), gbps(lo), gbps(hi),
               std::to_string(ph.broken_streams),
               std::to_string(ph.failed_opens)});
  }
  std::fputs(table.str().c_str(), stdout);

  const auto& last = r.phases.back();
  std::printf(
      "\npeak %.1f Gbit/s, final phase %.1f/%.1f Gbit/s; %llu streams "
      "completed, %llu broken; %llu kernel events\n",
      r.peak_gbps, last.achieved_gbps, ro.target_gbps,
      static_cast<unsigned long long>(r.streams_completed),
      static_cast<unsigned long long>(last.broken_streams),
      static_cast<unsigned long long>(r.events_executed));

  // Per-site breakdown of the final phase.
  util::Table sites({"site", "final-phase Gb/s"});
  for (std::size_t s = 0; s < last.site_gbps.size(); ++s)
    sites.row({"site-" + std::to_string(s), gbps(last.site_gbps[s])});
  std::fputs(sites.str().c_str(), stdout);

  bool ok = true;
  if (opt.mode == "ramp") {
    ok = last.achieved_gbps >= 0.85 * ro.target_gbps;
    std::printf("\nramp gate: final %.1f vs target %.0f Gbit/s -> %s\n",
                last.achieved_gbps, ro.target_gbps,
                ok ? "PASS (>= 85%)" : "FAIL (< 85%)");
  } else if (opt.mode == "hotspot") {
    // The hotspot must actually hurt: aggregate pinned well below target.
    ok = last.achieved_gbps < 0.5 * ro.target_gbps;
    std::printf("\nhotspot gate: final %.1f Gbit/s -> %s\n",
                last.achieved_gbps,
                ok ? "PASS (pinned below 50%)" : "FAIL (not a hotspot?)");
  } else {
    ok = last.broken_streams > 0 &&
         last.achieved_gbps >= 0.70 * ro.target_gbps;
    std::printf("\ncollapse gate: %llu broken, final %.1f Gbit/s -> %s\n",
                static_cast<unsigned long long>(last.broken_streams),
                last.achieved_gbps,
                ok ? "PASS (broke and recovered)" : "FAIL");
  }
  return ok ? 0 : 1;
}

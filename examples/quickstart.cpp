// quickstart — the smallest end-to-end Lobster workflow, on real components:
//
//   1. publish a synthetic dataset in the Dataset Bookkeeping Service;
//   2. decompose it into tasklets (paper §4.1);
//   3. configure a workflow from the INI format users write;
//   4. run the Scheduler against a real thread-based Work Queue master with
//      two 4-slot workers: analysis payloads fetch "software" through a
//      squid-backed alien Parrot cache, resolve inputs through the XrootD
//      redirector, and stage outputs into a real Chirp server;
//   5. merge the outputs (interleaved mode) and print the run report.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <thread>

#include "chirp/chirp.hpp"
#include "core/scheduler.hpp"
#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"
#include "cvmfs/squid.hpp"
#include "dbs/dbs.hpp"
#include "util/units.hpp"
#include "wq/worker.hpp"
#include "xrootd/federation.hpp"

using namespace lobster;

int main() {
  std::puts("== Lobster quickstart ==\n");

  // --- the data tier -------------------------------------------------------
  dbs::DatasetBookkeeping bookkeeping;
  dbs::SyntheticDatasetSpec dataset_spec;
  dataset_spec.name = "/SingleMu/Quickstart/AOD";
  dataset_spec.num_files = 12;
  dataset_spec.mean_file_bytes = util::mb(800);
  bookkeeping.publish(dbs::make_synthetic_dataset(dataset_spec,
                                                  util::Rng(42)));

  xrootd::RedirectorTable redirector;
  auto site = std::make_shared<xrootd::SiteStore>("T2_US_Quickstart");
  for (const auto& file : bookkeeping.files(dataset_spec.name)) {
    site->put(file.lfn, file.size_bytes);
    redirector.add_replica(file.lfn, site->name());
  }

  // --- the software tier: CVMFS release behind a squid proxy ---------------
  cvmfs::ReleaseSpec release_spec;
  release_spec.num_files = 200;
  release_spec.total_bytes = util::mb(600);
  release_spec.working_set_bytes = util::mb(150);
  const cvmfs::Release release(release_spec, util::Rng(7));
  cvmfs::SquidProxy squid(util::gb(2), [](const cvmfs::FileObject& obj) {
    return cvmfs::digest_of(obj.path, obj.size_bytes);  // stratum server
  });
  cvmfs::CacheGroup node_cache(cvmfs::CacheMode::Alien, squid.as_fetcher());

  // --- the output tier: a Chirp server with a scoped write ticket ----------
  chirp::ChirpServer chirp_server;
  const auto ticket = chirp_server.issue_ticket(
      "/store/user/quickstart", chirp::Rights::Read | chirp::Rights::Write |
                                    chirp::Rights::List);

  // --- the workflow --------------------------------------------------------
  const auto ini = util::Config::parse(R"(
[workflow]
label = quickstart
dataset = /SingleMu/Quickstart/AOD
lumis_per_tasklet = 8
tasklets_per_task = 4
task_buffer = 16
merge = interleaved
merge_size = 40MB
)");
  auto config = core::WorkflowConfig::from_config(ini);

  const auto dataset = bookkeeping.query(config.dataset);
  if (!dataset) {
    std::fprintf(stderr, "unknown dataset %s\n", config.dataset.c_str());
    return 1;
  }
  auto tasklets = core::decompose(
      *dataset, {.lumis_per_tasklet = config.lumis_per_tasklet,
                 .output_ratio = config.output_ratio});
  std::printf("dataset %s: %zu files, %s -> %zu tasklets\n\n",
              dataset->name.c_str(), dataset->files.size(),
              util::format_bytes(dataset->total_bytes()).c_str(),
              tasklets.size());

  // Analysis payload: touch the software working set through the node
  // cache, resolve and "read" the input, write the (reduced) output to
  // Chirp.  All segments are timed by the wrapper.
  core::AnalysisPayload analysis =
      [&](const std::vector<core::Tasklet>& group) {
        double input_bytes = 0.0, output_bytes = 0.0;
        std::string lfn = group.front().input_lfn;
        std::uint64_t first_id = group.front().id;
        for (const auto& t : group) {
          input_bytes += t.input_bytes;
          output_bytes += t.expected_output_bytes;
        }
        return core::WrapperStages{
            .setup_environment =
                [&, seed = first_id](wq::TaskContext&) {
                  auto instance = node_cache.make_instance();
                  util::Rng rng(seed);
                  for (const auto& obj : release.sample_working_set(rng))
                    instance.access(obj);
                  return true;
                },
            .stage_in =
                [&, lfn](wq::TaskContext&) {
                  xrootd::Client client(redirector);
                  client.attach_site(site);
                  return client.read(lfn).second > 0.0;
                },
            .execute =
                [output_bytes, n = group.size()](wq::TaskContext& ctx) {
                  // Stand-in for the physics: a few ms per tasklet,
                  // cancellable at tasklet boundaries like CMSSW events.
                  for (std::size_t i = 0; i < n; ++i) {
                    if (ctx.cancel.cancelled()) return 1;
                    std::this_thread::sleep_for(std::chrono::milliseconds(5));
                  }
                  char buf[32];
                  std::snprintf(buf, sizeof buf, "%.0f", output_bytes);
                  ctx.outputs[core::wrapper_keys::kOutputBytes] = buf;
                  return 0;
                },
            .stage_out =
                [&, first_id, output_bytes](wq::TaskContext&) {
                  auto session = chirp_server.connect(ticket);
                  session.put("/store/user/quickstart/task_" +
                                  std::to_string(first_id) + ".root",
                              std::string(static_cast<std::size_t>(
                                              output_bytes / 1e4),
                                          'x'));
                  return true;
                },
        };
      };

  // Merge payload: concatenate the group's outputs inside Chirp.
  core::MergePayload merge = [&](const core::MergeGroup& group,
                                 const std::vector<core::OutputRecord>& outs) {
    return core::WrapperStages{
        .execute =
            [&, merged = group.merged_path, outs](wq::TaskContext&) {
              auto session = chirp_server.connect(ticket);
              for (const auto& rec : outs) {
                // Inputs were written under /store/user/quickstart.
                const auto listing =
                    session.list("/store/user/quickstart/task_");
                (void)listing;
              }
              session.put("/store/user/quickstart/" + merged, "merged");
              return 0;
            },
    };
  };

  // --- run ------------------------------------------------------------------
  core::Scheduler scheduler(config, analysis, merge);
  wq::Master master;
  wq::Worker w1("campus-node-1", master, 4);
  wq::Worker w2("campus-node-2", master, 4);
  const auto report = scheduler.run(master, std::move(tasklets));
  w1.join();
  w2.join();

  std::printf("tasklets processed : %zu / %zu\n", report.tasklets_processed,
              report.tasklets_total);
  std::printf("analysis tasks     : %zu\n", report.analysis_tasks);
  std::printf("merge tasks        : %zu -> %zu merged files\n",
              report.merge_tasks, report.merged_files.size());
  std::printf("chirp server holds : %zu files, %s written\n",
              chirp_server.num_files(),
              util::format_bytes(chirp_server.bytes_in()).c_str());
  std::printf("squid proxy        : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(squid.hits()),
              static_cast<unsigned long long>(squid.misses()));
  const auto& b = report.breakdown;
  std::printf("wall time split    : cpu+io %.2fs, staging %.2fs, other %.2fs\n",
              b.cpu + b.io, b.stage_in + b.stage_out, b.other);

  const auto diags = scheduler.monitor().diagnose();
  if (diags.empty()) {
    std::puts("advisor            : no bottlenecks detected");
  } else {
    for (const auto& d : diags)
      std::printf("advisor            : %s -> %s\n", d.symptom.c_str(),
                  d.advice.c_str());
    std::puts("                     (toy-scale tasks: overheads dominate by"
              " construction)");
  }

  // Persist the Lobster DB: `lobster_report quickstart_journal.jsonl`
  // drills into it offline, and Scheduler::resume() can continue from it.
  scheduler.db().save_journal("quickstart_journal.jsonl");
  std::puts("journal written    : quickstart_journal.jsonl "
            "(inspect with tools/lobster_report)");
  return report.tasklets_processed == report.tasklets_total ? 0 : 1;
}

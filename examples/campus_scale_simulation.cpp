// campus_scale_simulation — planning a deployment before burning real CPU.
//
// The DES engine lets a user ask "what happens if I point Lobster at 5000
// opportunistic cores behind our campus uplink?" before doing it.  This
// example sizes a hypothetical campus (one squid, one Chirp server, 2 Gbit/s
// uplink), runs the workload at full scale in simulation, and lets the §5
// monitoring advisor name the bottleneck.
//
// Build: cmake --build build && ./build/examples/campus_scale_simulation
#include <cstdio>

#include "lobsim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace lobster;

namespace {
lobsim::EngineMetrics const& run_campus(lobsim::Engine& engine) {
  return engine.run(30.0 * 86400.0);
}
}  // namespace

int main() {
  std::puts("== Campus-scale what-if simulation ==\n");

  lobsim::ClusterParams cluster;
  cluster.target_cores = 5000;
  cluster.cores_per_worker = 8;
  cluster.ramp_seconds = util::hours(1);
  cluster.availability.scale_hours = 8.0;
  // A deliberately modest campus: 2 Gbit/s uplink and a small Chirp box.
  cluster.federation.campus_uplink_rate = util::gbit_per_s(2);
  cluster.chirp.max_connections = 8;
  cluster.chirp.nic_rate = util::mb_per_s(200);

  lobsim::WorkloadParams workload;
  workload.num_tasklets = 30000;
  workload.tasklets_per_task = 6;
  workload.tasklet_input_bytes = util::mb(350);
  workload.read_fraction = 0.30;
  workload.tasklet_output_bytes = util::mb(25);
  workload.merge_mode = core::MergeMode::Interleaved;

  lobsim::Engine engine(cluster, workload, /*seed=*/4242);
  const auto& metrics = run_campus(engine);
  const auto breakdown = metrics.monitor.breakdown();

  util::Table table({"quantity", "value"});
  table.row({"makespan", util::format_duration(metrics.makespan)});
  table.row({"peak concurrent tasks",
             util::Table::integer(static_cast<long long>(metrics.peak_running))});
  table.row({"tasklets processed",
             util::Table::integer(
                 static_cast<long long>(metrics.tasklets_processed))});
  table.row({"task evictions", util::Table::integer(static_cast<long long>(
                                   metrics.tasks_evicted))});
  table.row({"WAN volume streamed", util::format_bytes(metrics.bytes_streamed)});
  table.row({"output staged to Chirp",
             util::format_bytes(metrics.bytes_staged_out)});
  table.row({"merged files", util::Table::integer(static_cast<long long>(
                                 metrics.merge_tasks_completed))});
  const double total = breakdown.total();
  table.row({"CPU fraction",
             util::Table::num(100.0 * breakdown.cpu / total, 1) + " %"});
  table.row({"I/O stall fraction",
             util::Table::num(100.0 * breakdown.io / total, 1) + " %"});
  table.row({"staging fraction",
             util::Table::num(
                 100.0 * (breakdown.stage_in + breakdown.stage_out) / total,
                 1) +
                 " %"});
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nadvisor (paper SS5 rules):");
  const auto diags = metrics.monitor.diagnose();
  if (diags.empty()) std::puts("  the campus handles this workload cleanly");
  for (const auto& d : diags)
    std::printf("  [%.2f] %s\n         -> %s\n", d.severity,
                d.symptom.c_str(), d.advice.c_str());

  std::puts("\nWhat-if: double the uplink (4 Gbit/s):");
  cluster.federation.campus_uplink_rate = util::gbit_per_s(4);
  lobsim::Engine faster(cluster, workload, 4242);
  const auto& m2 = run_campus(faster);
  std::printf("  makespan %s -> %s (%.0f%% faster)\n",
              util::format_duration(metrics.makespan).c_str(),
              util::format_duration(m2.makespan).c_str(),
              100.0 * (1.0 - m2.makespan / metrics.makespan));
  return 0;
}

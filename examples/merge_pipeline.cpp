// merge_pipeline — the paper's "Merging via Hadoop" (§4.4), end to end and
// for real: a workflow runs in Hadoop merge mode (the scheduler leaves the
// small outputs unmerged), the outputs are stored in the HDFS-style block
// store, and a Map-Reduce job groups and concatenates them into 3-4 GB-class
// merged files — map groups small files by target name, each reducer
// concatenates its group and writes it back to HDFS.
//
// Build: cmake --build build && ./build/examples/merge_pipeline
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "hdfs/hdfs.hpp"
#include "util/units.hpp"
#include "wq/worker.hpp"

using namespace lobster;

int main() {
  std::puts("== Hadoop merge pipeline ==\n");

  // --- phase 1: analysis, leaving outputs for external merging -------------
  core::WorkflowConfig config;
  config.label = "merge-pipeline";
  config.tasklets_per_task = 5;
  config.task_buffer = 16;
  config.merge_mode = core::MergeMode::Hadoop;

  core::AnalysisPayload analysis =
      [](const std::vector<core::Tasklet>& tasklets) {
        double out_bytes = 0.0;
        for (const auto& t : tasklets) out_bytes += t.expected_output_bytes;
        return core::WrapperStages{
            .execute =
                [out_bytes](wq::TaskContext& ctx) {
                  char buf[32];
                  std::snprintf(buf, sizeof buf, "%.0f", out_bytes);
                  ctx.outputs[core::wrapper_keys::kOutputBytes] = buf;
                  return 0;
                },
        };
      };
  core::Scheduler scheduler(config, analysis, nullptr);
  wq::Master master;
  wq::Worker worker("node", master, 4);

  std::vector<core::Tasklet> tasklets;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    core::Tasklet t;
    t.id = i;
    t.input_bytes = 6e5;
    t.expected_output_bytes = 3e4;  // 30 kB per tasklet (scaled down)
    tasklets.push_back(t);
  }
  const auto report = scheduler.run(master, std::move(tasklets));
  worker.join();
  const auto outputs = scheduler.db().unmerged_outputs();
  std::printf("analysis: %zu tasklets -> %zu small output files\n",
              report.tasklets_processed, outputs.size());

  // --- phase 2: load the small files into the storage cluster ---------------
  hdfs::Cluster cluster(/*datanodes=*/5, /*replication=*/2,
                        /*block_size=*/64 * 1024);
  std::vector<std::string> inputs;
  double small_bytes = 0.0;
  for (const auto& rec : outputs) {
    const std::string path = "/store/small/" + std::to_string(rec.output_id);
    cluster.put(path, std::string(static_cast<std::size_t>(rec.bytes), 'e'));
    small_bytes += rec.bytes;
    inputs.push_back(path);
  }
  std::printf("hdfs: %zu files, %s over %zu datanodes (replication %zu)\n",
              inputs.size(), util::format_bytes(small_bytes).c_str(),
              cluster.num_datanodes(), cluster.replication());

  // --- phase 3: plan groups and run the Map-Reduce merge --------------------
  core::MergePolicy policy;
  policy.target_bytes = 6e5;  // scaled-down "3-4 GB"
  const auto groups = core::plan_merges(outputs, policy, /*only_full=*/false,
                                        /*name_seed=*/0);
  std::map<std::string, std::string> target_of;
  std::map<std::string, std::uint64_t> id_of;
  for (const auto& rec : outputs)
    id_of["/store/small/" + std::to_string(rec.output_id)] = rec.output_id;
  for (const auto& g : groups)
    for (const auto oid : g.output_ids)
      target_of["/store/small/" + std::to_string(oid)] = g.merged_path;

  const auto stats = hdfs::run_mapreduce(
      cluster, inputs,
      // Map: group the small files by their planned merged file.
      [&target_of](const std::string& path, const std::string& content) {
        return std::vector<hdfs::KeyValue>{{target_of.at(path), content}};
      },
      // Reduce: concatenate the group (values arrive sorted).
      [](const std::string&, const std::vector<std::string>& values) {
        std::string merged;
        for (const auto& v : values) merged += v;
        return merged;
      },
      "/store/merged/", /*num_threads=*/4);

  double merged_bytes = 0.0;
  for (const auto& path : stats.outputs)
    merged_bytes += static_cast<double>(cluster.stat(path).size);
  std::printf(
      "mapreduce: %zu map tasks, %zu reducers -> %zu merged files (%s)\n",
      stats.map_tasks, stats.reduce_tasks, stats.outputs.size(),
      util::format_bytes(merged_bytes).c_str());
  std::printf("byte conservation: %s in, %s out -> %s\n",
              util::format_bytes(small_bytes).c_str(),
              util::format_bytes(merged_bytes).c_str(),
              small_bytes == merged_bytes ? "exact" : "MISMATCH");

  // --- phase 4: survive a datanode loss --------------------------------------
  cluster.kill_datanode(0);
  cluster.rereplicate();
  std::printf("killed datanode 0; %zu under-replicated blocks after "
              "re-replication\n",
              cluster.under_replicated_blocks());
  const auto check = cluster.get(stats.outputs.front());
  std::printf("merged file still readable after node loss: %s (%zu bytes)\n",
              check.empty() ? "NO" : "yes", check.size());
  return small_bytes == merged_bytes ? 0 : 1;
}

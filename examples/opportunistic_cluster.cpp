// opportunistic_cluster — running on a hostile pool, for real.
//
// This example reproduces the paper's central operating condition with
// actual threads: workers join and are evicted without warning while a
// workflow runs.  Lobster's scheduler resubmits the lost work, the adaptive
// task-size controller (paper §8 future work) shrinks tasks until they
// survive, and the monitoring advisor (§5) explains what happened.
//
// Build: cmake --build build && ./build/examples/opportunistic_cluster
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "util/rng.hpp"
#include "wq/worker.hpp"

using namespace lobster;
using namespace std::chrono_literals;

int main() {
  std::puts("== Lobster on an opportunistic cluster (real threads) ==\n");

  core::WorkflowConfig config;
  config.label = "hostile-pool";
  config.tasklets_per_task = 8;  // deliberately too large to survive
  config.task_buffer = 16;
  config.adaptive_sizing = true;
  config.max_attempts = 100;
  config.merge_mode = core::MergeMode::Sequential;
  config.merge_policy.target_bytes = 1e12;  // single final merge

  // Each tasklet takes ~3 ms of "work" and polls for eviction.
  std::atomic<int> done_tasklets{0};
  core::AnalysisPayload analysis =
      [&](const std::vector<core::Tasklet>& tasklets) {
        return core::WrapperStages{
            .execute =
                [n = tasklets.size(), &done_tasklets](wq::TaskContext& ctx) {
                  for (std::size_t i = 0; i < n; ++i) {
                    if (ctx.cancel.cancelled()) return 1;
                    std::this_thread::sleep_for(3ms);
                  }
                  done_tasklets.fetch_add(static_cast<int>(n));
                  return 0;
                },
        };
      };
  core::MergePayload merge = [](const core::MergeGroup&,
                                const std::vector<core::OutputRecord>&) {
    return core::WrapperStages{};
  };

  core::Scheduler scheduler(config, analysis, merge);
  wq::Master master;

  // The "batch system": keeps granting 2-slot workers, then evicting them
  // after a random lifetime — no warning, mid-task.
  std::atomic<bool> stop_batch{false};
  std::thread batch_system([&] {
    util::Rng rng(99);
    std::vector<std::unique_ptr<wq::Worker>> fleet;
    int serial = 0;
    while (!stop_batch.load()) {
      fleet.push_back(std::make_unique<wq::Worker>(
          "opportunistic-" + std::to_string(serial++), master, 2));
      const auto lifetime =
          std::chrono::milliseconds(static_cast<int>(rng.uniform(60, 220)));
      std::this_thread::sleep_for(lifetime);
      fleet.back()->evict();  // the owner wants the node back
    }
    for (auto& w : fleet) w->evict();
    // Workers drain once the master closes submission.
    for (auto& w : fleet) w->join();
    std::printf("batch system: granted and revoked %zu workers\n",
                fleet.size());
  });

  // One small but reliable worker keeps the workflow alive (the paper's
  // runs always had some stable fraction of the pool).
  wq::Worker reliable("t3-dedicated", master, 1);

  std::vector<core::Tasklet> tasklets;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    core::Tasklet t;
    t.id = i;
    t.expected_output_bytes = 1e6;
    tasklets.push_back(t);
  }
  const auto report = scheduler.run(master, std::move(tasklets));
  stop_batch.store(true);
  batch_system.join();
  reliable.join();

  std::printf("\ntasklets processed : %zu / %zu (every one exactly once)\n",
              report.tasklets_processed, report.tasklets_total);
  std::printf("task evictions     : %zu, failures: %zu\n", report.evictions,
              report.failures);
  std::printf("task size          : started at %u tasklets, controller "
              "settled at %u\n",
              config.tasklets_per_task, scheduler.tasklets_per_task());
  std::printf("lost wall time     : %.2f s discarded by evictions\n",
              scheduler.db().total_lost_time());

  const auto diags = scheduler.monitor().diagnose();
  for (const auto& d : diags)
    std::printf("advisor            : %s\n                     -> %s\n",
                d.symptom.c_str(), d.advice.c_str());
  return report.tasklets_processed == report.tasklets_total ? 0 : 1;
}

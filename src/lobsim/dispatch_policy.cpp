#include "lobsim/dispatch_policy.hpp"

#include <stdexcept>

namespace lobster::lobsim {

const char* to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::Fifo: return "fifo";
    case DispatchMode::TailShrink: return "tail-shrink";
    case DispatchMode::SiteAware: return "site-aware";
    case DispatchMode::Lifetime: return "lifetime";
    case DispatchMode::Partitioned: return "partitioned";
    case DispatchMode::Stealing: return "stealing";
  }
  return "?";
}

LifetimeAwareDispatch::LifetimeAwareDispatch(std::uint32_t tasklets_per_task,
                                             double safety_factor,
                                             std::uint32_t max_tasklets)
    : DispatchPolicy(tasklets_per_task),
      safety_factor_(safety_factor),
      max_tasklets_(max_tasklets ? max_tasklets : 4 * tasklets_per_task_) {
  if (!(safety_factor_ > 0.0))
    throw std::invalid_argument("dispatch: lifetime safety factor must be > 0");
}

std::optional<TaskUnit> DispatchPolicy::next(const DispatchContext& ctx) {
  if (!merge_queue_.empty()) {
    TaskUnit t;
    t.is_merge = true;
    t.merge_input_bytes = merge_queue_.front();
    merge_queue_.pop_front();
    return t;
  }
  if (tasklets_pending_ > 0) {
    TaskUnit t;
    const std::uint64_t size = capped_size(ctx);
    t.n_tasklets = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(size, tasklets_pending_));
    tasklets_pending_ -= t.n_tasklets;
    return t;
  }
  return std::nullopt;
}

// ---- per-site pools (Partitioned / Stealing) --------------------------------

void PartitionedDispatch::partition(
    const std::vector<std::uint64_t>& site_slots) {
  site_slots_ = site_slots;
  site_pending_.assign(site_slots.size(), 0);
  if (site_slots.empty()) return;
  const std::uint64_t total = tasklets_pending_;
  long double weight_sum = 0.0L;
  for (std::uint64_t w : site_slots_) weight_sum += static_cast<long double>(w);
  if (!(weight_sum > 0.0L)) {  // degenerate: park everything on site 0
    site_pending_[0] = total;
    return;
  }
  // Largest-remainder apportionment: floor every exact share, then hand the
  // leftover tasklets to the largest fractional remainders (ties to the
  // lower site index) — deterministic and off by at most one per site.
  std::uint64_t assigned = 0;
  std::vector<std::pair<long double, std::size_t>> remainders;
  remainders.reserve(site_slots_.size());
  for (std::size_t s = 0; s < site_slots_.size(); ++s) {
    const long double exact = static_cast<long double>(total) *
                              static_cast<long double>(site_slots_[s]) /
                              weight_sum;
    const std::uint64_t base = static_cast<std::uint64_t>(exact);
    site_pending_[s] = base;
    assigned += base;
    remainders.emplace_back(exact - static_cast<long double>(base), s);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::uint64_t i = 0; i < total - assigned; ++i)
    ++site_pending_[remainders[i % remainders.size()].second];
}

void PartitionedDispatch::return_tasklets(std::size_t site, std::uint64_t n) {
  add_tasklets(n);
  if (site_pending_.empty()) return;
  if (site >= site_pending_.size()) site = 0;
  site_pending_[site] += n;
}

std::uint32_t PartitionedDispatch::task_size(const DispatchContext& ctx) const {
  // Per-site tail shrink: once this site's share fits in its own slots,
  // long tasks only deepen the local eviction-retry tail.
  if (ctx.site < site_pending_.size() &&
      site_pending_[ctx.site] <= site_slots_[ctx.site])
    return 1;
  return tasklets_per_task_;
}

std::optional<TaskUnit> PartitionedDispatch::next(const DispatchContext& ctx) {
  // Until partition() is called there is nothing per-site to consult; act
  // as a single pool (unit tests drive the policy without a SiteManager).
  if (site_pending_.empty()) return DispatchPolicy::next(ctx);
  if (!merge_queue_.empty()) {
    TaskUnit t;
    t.is_merge = true;
    t.merge_input_bytes = merge_queue_.front();
    merge_queue_.pop_front();
    return t;
  }
  if (ctx.site >= site_pending_.size()) return std::nullopt;
  std::uint64_t& pool = site_pending_[ctx.site];
  if (pool == 0) return std::nullopt;
  TaskUnit t;
  const std::uint64_t size = capped_size(ctx);
  t.n_tasklets =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(size, pool));
  pool -= t.n_tasklets;
  tasklets_pending_ -= t.n_tasklets;
  return t;
}

std::optional<TaskUnit> StealingDispatch::next(const DispatchContext& ctx) {
  if (auto task = PartitionedDispatch::next(ctx)) return task;
  // Own share and merge queue empty: poll the siblings for the deepest
  // backlog.  Pure function of the pool state — no RNG — so campaigns stay
  // bitwise deterministic.
  if (site_pending_.empty() || ctx.site >= site_pending_.size())
    return std::nullopt;
  ++attempts_;
  std::size_t victim = site_pending_.size();
  std::uint64_t deepest = 0;
  for (std::size_t s = 0; s < site_pending_.size(); ++s) {
    if (s == ctx.site) continue;
    if (site_pending_[s] > deepest) {
      deepest = site_pending_[s];
      victim = s;
    }
  }
  if (victim == site_pending_.size() || deepest < min_backlog_)
    return std::nullopt;
  TaskUnit t;
  // Mirror the per-site drain sizing: full chunks while the victim's
  // backlog exceeds its slot count, single tasklets in the drain phase —
  // stealing long chunks at the tail would re-create the straggler problem
  // tail-shrink exists to prevent.
  std::uint64_t chunk =
      deepest <= site_slots_[victim] ? 1 : tasklets_per_task_;
  if (size_cap()) chunk = std::min<std::uint64_t>(chunk, size_cap());
  t.n_tasklets = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunk, deepest));
  site_pending_[victim] -= t.n_tasklets;
  tasklets_pending_ -= t.n_tasklets;
  t.stolen = true;
  t.victim_site = victim;
  ++stolen_;
  return t;
}

std::unique_ptr<DispatchPolicy> make_dispatch_policy(
    DispatchMode mode, std::uint32_t tasklets_per_task, double lifetime_safety,
    std::uint32_t lifetime_max_tasklets, std::uint64_t steal_min_backlog) {
  switch (mode) {
    case DispatchMode::Fifo:
      return std::make_unique<FifoDispatch>(tasklets_per_task);
    case DispatchMode::TailShrink:
      return std::make_unique<TailShrinkDispatch>(tasklets_per_task);
    case DispatchMode::SiteAware:
      return std::make_unique<SiteAwareDispatch>(tasklets_per_task);
    case DispatchMode::Lifetime:
      return std::make_unique<LifetimeAwareDispatch>(
          tasklets_per_task, lifetime_safety, lifetime_max_tasklets);
    case DispatchMode::Partitioned:
      return std::make_unique<PartitionedDispatch>(tasklets_per_task);
    case DispatchMode::Stealing:
      return std::make_unique<StealingDispatch>(tasklets_per_task,
                                                steal_min_backlog);
  }
  throw std::invalid_argument("dispatch: unknown mode");
}

}  // namespace lobster::lobsim

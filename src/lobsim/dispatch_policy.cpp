#include "lobsim/dispatch_policy.hpp"

#include <stdexcept>

namespace lobster::lobsim {

const char* to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::Fifo: return "fifo";
    case DispatchMode::TailShrink: return "tail-shrink";
    case DispatchMode::SiteAware: return "site-aware";
    case DispatchMode::Lifetime: return "lifetime";
  }
  return "?";
}

LifetimeAwareDispatch::LifetimeAwareDispatch(std::uint32_t tasklets_per_task,
                                             double safety_factor,
                                             std::uint32_t max_tasklets)
    : DispatchPolicy(tasklets_per_task),
      safety_factor_(safety_factor),
      max_tasklets_(max_tasklets ? max_tasklets : 4 * tasklets_per_task_) {
  if (!(safety_factor_ > 0.0))
    throw std::invalid_argument("dispatch: lifetime safety factor must be > 0");
}

std::optional<TaskUnit> DispatchPolicy::next(const DispatchContext& ctx) {
  if (!merge_queue_.empty()) {
    TaskUnit t;
    t.is_merge = true;
    t.merge_input_bytes = merge_queue_.front();
    merge_queue_.pop_front();
    return t;
  }
  if (tasklets_pending_ > 0) {
    TaskUnit t;
    const std::uint64_t size = std::max<std::uint32_t>(1, task_size(ctx));
    t.n_tasklets = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(size, tasklets_pending_));
    tasklets_pending_ -= t.n_tasklets;
    return t;
  }
  return std::nullopt;
}

std::unique_ptr<DispatchPolicy> make_dispatch_policy(
    DispatchMode mode, std::uint32_t tasklets_per_task, double lifetime_safety,
    std::uint32_t lifetime_max_tasklets) {
  switch (mode) {
    case DispatchMode::Fifo:
      return std::make_unique<FifoDispatch>(tasklets_per_task);
    case DispatchMode::TailShrink:
      return std::make_unique<TailShrinkDispatch>(tasklets_per_task);
    case DispatchMode::SiteAware:
      return std::make_unique<SiteAwareDispatch>(tasklets_per_task);
    case DispatchMode::Lifetime:
      return std::make_unique<LifetimeAwareDispatch>(
          tasklets_per_task, lifetime_safety, lifetime_max_tasklets);
  }
  throw std::invalid_argument("dispatch: unknown mode");
}

}  // namespace lobster::lobsim

#include "lobsim/spec_config.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace lobster::lobsim {

RunSpec spec_from_config(const util::Config& cfg) {
  RunSpec spec;
  spec.seed =
      static_cast<std::uint64_t>(cfg.get_int("workflow", "seed", 2015));

  auto& cluster = spec.cluster;
  cluster.target_cores =
      static_cast<std::size_t>(cfg.get_int("cluster", "cores", 5000));
  cluster.cores_per_worker = static_cast<std::size_t>(
      cfg.get_int("cluster", "cores_per_worker", 8));
  cluster.ramp_seconds = cfg.get_duration("cluster", "ramp", 3600.0);
  // Availability model: `availability = kind[:key=value,...]`, with the
  // legacy `availability_hours` shorthand still honoured (it sets the scale
  // of whichever model is selected).
  if (const auto avail = cfg.get("cluster", "availability"))
    cluster.availability = parse_availability_spec(*avail);
  else
    cluster.availability.scale_hours = 8.0;
  cluster.availability.scale_hours = cfg.get_double(
      "cluster", "availability_hours", cluster.availability.scale_hours);
  cluster.evictions = cfg.get_bool("cluster", "evictions", true);
  cluster.federation.campus_uplink_rate =
      util::gbit_per_s(cfg.get_double("cluster", "uplink", 10.0));
  cluster.num_squids =
      static_cast<std::size_t>(cfg.get_int("cluster", "squids", 1));
  cluster.chirp.max_connections =
      cfg.get_int("cluster", "chirp_connections", 24);

  auto& workload = spec.workload;
  workload.num_tasklets =
      static_cast<std::uint64_t>(cfg.get_int("workflow", "tasklets", 30000));
  workload.tasklets_per_task = static_cast<std::uint32_t>(
      cfg.get_int("workflow", "tasklets_per_task", 6));
  workload.tasklet_cpu_mean =
      cfg.get_duration("workflow", "tasklet_cpu", 600.0);
  workload.tasklet_cpu_sigma = workload.tasklet_cpu_mean / 2.0;
  workload.tasklet_input_bytes =
      cfg.get_size("workflow", "input_per_tasklet", 350e6);
  workload.read_fraction = cfg.get_double("workflow", "read_fraction", 0.3);
  workload.tasklet_output_bytes =
      cfg.get_size("workflow", "output_per_tasklet", 20e6);

  const std::string access = cfg.get_string("workflow", "access", "stream");
  if (access == "stage")
    workload.access = core::DataAccessMode::Stage;
  else if (access != "stream")
    throw std::invalid_argument("unknown access mode '" + access + "'");

  const std::string merge = cfg.get_string("workflow", "merge", "interleaved");
  if (merge == "sequential")
    workload.merge_mode = core::MergeMode::Sequential;
  else if (merge == "hadoop")
    workload.merge_mode = core::MergeMode::Hadoop;
  else if (merge != "interleaved")
    throw std::invalid_argument("unknown merge mode '" + merge + "'");

  const std::string dispatch = cfg.get_string("workflow", "dispatch", "fifo");
  if (dispatch == "tail-shrink")
    workload.dispatch = DispatchMode::TailShrink;
  else if (dispatch == "site-aware")
    workload.dispatch = DispatchMode::SiteAware;
  else if (dispatch == "lifetime")
    workload.dispatch = DispatchMode::Lifetime;
  else if (dispatch == "partitioned")
    workload.dispatch = DispatchMode::Partitioned;
  else if (dispatch == "stealing")
    workload.dispatch = DispatchMode::Stealing;
  else if (dispatch != "fifo")
    throw std::invalid_argument("unknown dispatch mode '" + dispatch + "'");

  workload.lifetime_safety =
      cfg.get_double("workflow", "lifetime_safety", workload.lifetime_safety);
  workload.lifetime_max_tasklets = static_cast<std::uint32_t>(cfg.get_int(
      "workflow", "lifetime_max_tasklets", workload.lifetime_max_tasklets));
  workload.steal_penalty_factor = cfg.get_double(
      "workflow", "steal_penalty_factor", workload.steal_penalty_factor);
  workload.steal_min_backlog = static_cast<std::uint64_t>(cfg.get_int(
      "workflow", "steal_min_backlog",
      static_cast<long long>(workload.steal_min_backlog)));

  spec.outage_start = cfg.get_duration("failures", "outage_start", 0.0);
  spec.outage_duration = cfg.get_duration("failures", "outage_duration", 0.0);
  // Simulated-time budget; runs still unfinished at the cap are reported
  // as INCOMPLETE rather than pretending the cap was the makespan.
  spec.time_cap = cfg.get_duration("run", "time_cap", spec.time_cap);

  // Online advisor loop (all keys optional; absent section = advisor off,
  // which also keeps the trace byte-identical to pre-advisor builds).
  auto& adv = spec.advisor;
  adv.enabled = cfg.get_bool("advisor", "enabled", false);
  adv.period = cfg.get_duration("advisor", "period", adv.period);
  adv.thresholds.lost_fraction = cfg.get_double(
      "advisor", "lost_fraction", adv.thresholds.lost_fraction);
  adv.thresholds.dispatch_fraction = cfg.get_double(
      "advisor", "dispatch_fraction", adv.thresholds.dispatch_fraction);
  adv.thresholds.setup_fraction = cfg.get_double(
      "advisor", "setup_fraction", adv.thresholds.setup_fraction);
  adv.thresholds.staging_fraction = cfg.get_double(
      "advisor", "staging_fraction", adv.thresholds.staging_fraction);
  adv.thresholds.failed_fraction = cfg.get_double(
      "advisor", "failed_fraction", adv.thresholds.failed_fraction);
  adv.shrink_factor =
      cfg.get_double("advisor", "shrink_factor", adv.shrink_factor);
  adv.min_task_size = static_cast<std::uint32_t>(cfg.get_int(
      "advisor", "min_task_size", adv.min_task_size));
  adv.proxy_waste_fraction = cfg.get_double(
      "advisor", "proxy_waste_fraction", adv.proxy_waste_fraction);
  adv.throttle_share =
      cfg.get_double("advisor", "throttle_share", adv.throttle_share);
  adv.probe_share = cfg.get_double("advisor", "probe_share", adv.probe_share);
  adv.recover_factor =
      cfg.get_double("advisor", "recover_factor", adv.recover_factor);
  adv.restore_step =
      cfg.get_double("advisor", "restore_step", adv.restore_step);
  adv.ewma_tau = cfg.get_duration("advisor", "ewma_tau", adv.ewma_tau);
  if (adv.period <= 0.0)
    throw std::invalid_argument("[advisor] period must be > 0");

  return spec;
}

}  // namespace lobster::lobsim

#include "lobsim/availability.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/config.hpp"
#include "util/parse.hpp"

namespace lobster::lobsim {

namespace {
constexpr double kDaySeconds = 86400.0;

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("availability: " + what);
}
}  // namespace

const char* to_string(AvailabilityKind kind) {
  switch (kind) {
    case AvailabilityKind::Weibull: return "weibull";
    case AvailabilityKind::Trace: return "trace";
    case AvailabilityKind::Diurnal: return "diurnal";
    case AvailabilityKind::AdversarialBurst: return "adversarial-burst";
  }
  return "?";
}

// ---- AlwaysAvailable -------------------------------------------------------

double AlwaysAvailable::sample_survival_at(util::Rng&, double,
                                           std::uint64_t) const {
  return std::numeric_limits<double>::infinity();
}

double AlwaysAvailable::expected_lifetime(double) const {
  return std::numeric_limits<double>::infinity();
}

// ---- WeibullAvailability ---------------------------------------------------

namespace {
std::vector<double> checked_weibull_log(util::Rng log_stream, double shape,
                                        double scale_hours) {
  if (shape <= 0.0 || scale_hours <= 0.0)
    bad_spec("weibull shape and scale must be > 0");
  return core::synthesize_availability_log(50000, std::move(log_stream),
                                           shape, scale_hours);
}
}  // namespace

WeibullAvailability::WeibullAvailability(util::Rng log_stream, double shape,
                                         double scale_hours)
    : dist_(checked_weibull_log(std::move(log_stream), shape, scale_hours)) {}

double WeibullAvailability::sample_survival_at(util::Rng& rng, double,
                                               std::uint64_t) const {
  return dist_.sample(rng);
}

double WeibullAvailability::expected_lifetime(double) const {
  return dist_.mean();
}

// ---- TraceAvailability -----------------------------------------------------

TraceAvailability::TraceAvailability(
    std::shared_ptr<const std::vector<double>> intervals)
    : intervals_(std::move(intervals)) {
  if (!intervals_ || intervals_->empty())
    bad_spec("trace replay needs a non-empty interval log");
  double sum = 0.0;
  for (double v : *intervals_) {
    if (!(v > 0.0)) bad_spec("trace intervals must be > 0");
    sum += v;
  }
  mean_ = sum / static_cast<double>(intervals_->size());
}

double TraceAvailability::sample_survival_at(util::Rng&, double,
                                             std::uint64_t phase) const {
  return (*intervals_)[phase % intervals_->size()];
}

double TraceAvailability::sample_survival(util::Rng& rng) const {
  const auto n = static_cast<std::int64_t>(intervals_->size());
  return (*intervals_)[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
}

double TraceAvailability::expected_lifetime(double) const { return mean_; }

// ---- DiurnalAvailability ---------------------------------------------------

DiurnalAvailability::DiurnalAvailability(double shape, double scale_hours,
                                         double amplitude, double peak_hour)
    : shape_(shape),
      scale_seconds_(scale_hours * 3600.0),
      amplitude_(amplitude),
      peak_hour_(peak_hour),
      mean_factor_(std::tgamma(1.0 + 1.0 / shape)) {
  if (shape <= 0.0 || scale_hours <= 0.0)
    bad_spec("diurnal shape and scale must be > 0");
  if (amplitude < 0.0 || amplitude >= 1.0)
    bad_spec("diurnal amplitude must be in [0, 1)");
  if (peak_hour < 0.0 || peak_hour >= 24.0)
    bad_spec("diurnal peak hour must be in [0, 24)");
}

double DiurnalAvailability::scale_at(double now) const {
  // cos(theta) = 1 at the peak hour: the scale bottoms out there.
  const double theta =
      2.0 * M_PI * (now / kDaySeconds - peak_hour_ / 24.0);
  return scale_seconds_ * (1.0 - amplitude_ * std::cos(theta));
}

double DiurnalAvailability::sample_survival_at(util::Rng& rng, double now,
                                               std::uint64_t) const {
  return rng.weibull(shape_, scale_at(now));
}

double DiurnalAvailability::expected_lifetime(double now) const {
  return scale_at(now) * mean_factor_;
}

// ---- AdversarialBurstAvailability ------------------------------------------

AdversarialBurstAvailability::AdversarialBurstAvailability(double shape,
                                                           double scale_hours,
                                                           double period_hours,
                                                           double fraction)
    : shape_(shape),
      scale_seconds_(scale_hours * 3600.0),
      period_(period_hours * 3600.0),
      fraction_(fraction),
      mean_factor_(std::tgamma(1.0 + 1.0 / shape)) {
  if (shape <= 0.0 || scale_hours <= 0.0)
    bad_spec("burst shape and scale must be > 0");
  if (period_hours <= 0.0) bad_spec("burst period must be > 0");
  if (fraction < 0.0 || fraction > 1.0)
    bad_spec("burst fraction must be in [0, 1]");
}

double AdversarialBurstAvailability::next_burst(double now) const {
  return (std::floor(now / period_) + 1.0) * period_;
}

double AdversarialBurstAvailability::sample_survival_at(
    util::Rng& rng, double now, std::uint64_t) const {
  // A burst victim dies exactly at the next burst instant — every victim of
  // the same burst dies together, which is the point of this model.  The
  // rest live under the calm base climate (and may outlast several bursts).
  if (rng.chance(fraction_)) return next_burst(now) - now;
  return rng.weibull(shape_, scale_seconds_);
}

double AdversarialBurstAvailability::expected_lifetime(double now) const {
  return fraction_ * (next_burst(now) - now) +
         (1.0 - fraction_) * scale_seconds_ * mean_factor_;
}

// ---- factory / parsing -----------------------------------------------------

std::unique_ptr<AvailabilityModel> make_availability_model(
    const AvailabilityConfig& config, const util::Rng& log_stream) {
  switch (config.kind) {
    case AvailabilityKind::Weibull:
      return std::make_unique<WeibullAvailability>(
          log_stream, config.shape, config.scale_hours);
    case AvailabilityKind::Trace: {
      auto intervals = config.trace;
      if (!intervals) {
        if (config.trace_path.empty())
          bad_spec("trace model needs a path or preloaded intervals");
        intervals = std::make_shared<const std::vector<double>>(
            load_trace_csv(config.trace_path));
      }
      return std::make_unique<TraceAvailability>(std::move(intervals));
    }
    case AvailabilityKind::Diurnal:
      return std::make_unique<DiurnalAvailability>(
          config.shape, config.scale_hours, config.diurnal_amplitude,
          config.diurnal_peak_hour);
    case AvailabilityKind::AdversarialBurst:
      return std::make_unique<AdversarialBurstAvailability>(
          config.shape, config.scale_hours, config.burst_period_hours,
          config.burst_fraction);
  }
  bad_spec("unknown model kind");
}

namespace {
double parse_hours(const std::string& key, const std::string& value) {
  try {
    // Accept plain hours ("6") or duration suffixes ("90m", "1.5h").
    if (value.find_first_not_of("0123456789.+-eE") == std::string::npos) {
      const auto v = util::parse_double_strict(value);
      if (!v) bad_spec("bad value for '" + key + "': " + value);
      return *v;
    }
    return util::Config::parse_duration(value) / 3600.0;
  } catch (const std::exception&) {
    bad_spec("bad value for '" + key + "': " + value);
  }
}

double parse_number(const std::string& key, const std::string& value) {
  const auto v = util::parse_double_strict(value);
  if (!v) bad_spec("bad value for '" + key + "': " + value);
  return *v;
}
}  // namespace

AvailabilityConfig parse_availability_spec(const std::string& spec) {
  AvailabilityConfig cfg;
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::string rest =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (kind == "weibull") {
    cfg.kind = AvailabilityKind::Weibull;
  } else if (kind == "trace") {
    cfg.kind = AvailabilityKind::Trace;
    // `trace:/path/log.csv` shorthand: a bare value with no '=' is the path.
    if (!rest.empty() && rest.find('=') == std::string::npos) {
      cfg.trace_path = rest;
      return cfg;
    }
  } else if (kind == "diurnal") {
    cfg.kind = AvailabilityKind::Diurnal;
  } else if (kind == "adversarial-burst" || kind == "burst") {
    cfg.kind = AvailabilityKind::AdversarialBurst;
  } else {
    bad_spec("unknown model '" + kind +
             "' (expected weibull, trace, diurnal or adversarial-burst)");
  }

  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      bad_spec("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "scale") {
      cfg.scale_hours = parse_hours(key, value);
    } else if (key == "shape") {
      cfg.shape = parse_number(key, value);
    } else if (key == "path" && cfg.kind == AvailabilityKind::Trace) {
      cfg.trace_path = value;
    } else if (key == "amplitude" && cfg.kind == AvailabilityKind::Diurnal) {
      cfg.diurnal_amplitude = parse_number(key, value);
    } else if (key == "peak" && cfg.kind == AvailabilityKind::Diurnal) {
      cfg.diurnal_peak_hour = parse_number(key, value);
    } else if (key == "period" &&
               cfg.kind == AvailabilityKind::AdversarialBurst) {
      cfg.burst_period_hours = parse_hours(key, value);
    } else if (key == "fraction" &&
               cfg.kind == AvailabilityKind::AdversarialBurst) {
      cfg.burst_fraction = parse_number(key, value);
    } else {
      bad_spec("unknown key '" + key + "' for model '" + kind + "'");
    }
  }
  return cfg;
}

std::vector<double> load_trace_csv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) bad_spec("cannot open trace '" + path + "'");
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::vector<double> out;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t field_pos = 0;
    while (field_pos <= line.size()) {
      std::size_t comma = line.find(',', field_pos);
      if (comma == std::string::npos) comma = line.size();
      const std::string field = line.substr(field_pos, comma - field_pos);
      field_pos = comma + 1;
      const std::size_t begin = field.find_first_not_of(" \t\r");
      if (begin == std::string::npos) continue;  // blank field / line
      const std::size_t end = field.find_last_not_of(" \t\r");
      const std::string token = field.substr(begin, end - begin + 1);
      const auto parsed = util::parse_double_strict(token);
      if (!parsed)
        bad_spec("trace '" + path + "' line " + std::to_string(line_no) +
                 ": non-numeric field '" + token + "'");
      const double v = *parsed;
      if (!(v > 0.0))
        bad_spec("trace '" + path + "' line " + std::to_string(line_no) +
                 ": intervals must be > 0");
      out.push_back(v);
    }
  }
  if (out.empty()) bad_spec("trace '" + path + "' holds no intervals");
  return out;
}

}  // namespace lobster::lobsim

#include "lobsim/engine.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace lobster::lobsim {

namespace {
// Exit codes aligned with the wrapper's per-segment failure codes.
constexpr int kExitEnvFailure = 174;    // squid timeout during setup
constexpr int kExitStageInFailure = 171;
constexpr int kExitXrootdFailure = 211; // streaming open failed (outage)
constexpr int kExitStageOutFailure = 173;
constexpr int kExitEvicted = 179;

constexpr double kIdleRetryDelay = 60.0;

// Charges the simulated time elapsed in its scope to one segment of a
// TaskRecord — on normal exit AND on exception unwind.  Without this, a
// segment that aborts mid-flight (squid connect timeout, stream-open
// failure during an outage) leaves its wall uncharged, the failed task
// finishes with near-zero recorded wall, and the monitor's failure-burst
// signal — the only *timely* symptom of an infrastructure outage, since
// completion statistics lag by a full task length — stays dark exactly
// when the advisor needs it.
class SegmentCharge {
 public:
  SegmentCharge(des::Simulation& sim, core::TaskRecord& record,
                core::Segment segment)
      : sim_(sim),
        slot_(record.segment_time[static_cast<std::size_t>(segment)]),
        t0_(sim.now()) {}
  SegmentCharge(const SegmentCharge&) = delete;
  SegmentCharge& operator=(const SegmentCharge&) = delete;
  ~SegmentCharge() { slot_ += sim_.now() - t0_; }

 private:
  des::Simulation& sim_;
  double& slot_;
  double t0_;
};
}  // namespace

Engine::Engine(ClusterParams cluster, WorkloadParams workload,
               std::uint64_t seed, double metric_bin_seconds)
    : cluster_(std::move(cluster)),
      workload_(std::move(workload)),
      rng_(seed) {
  foreman_fanout_ = std::make_unique<des::BandwidthLink>(
      sim_, static_cast<double>(std::max<std::size_t>(1, cluster_.num_foremen)) *
                cluster_.foreman_uplink_rate);
  chirp_ = std::make_unique<chirp::ChirpSim>(sim_, cluster_.chirp);
  sites_ = std::make_unique<SiteManager>(sim_, cluster_, rng_);
  per_site_tasklets_.assign(sites_->num_sites(), 0);
  site_running_.assign(sites_->num_sites(), 0);

  // The legacy tail_shrink switch upgrades the default policy.
  DispatchMode mode = workload_.dispatch;
  if (workload_.tail_shrink && mode == DispatchMode::Fifo)
    mode = DispatchMode::TailShrink;
  dispatch_ = make_dispatch_policy(mode, workload_.tasklets_per_task,
                                   workload_.lifetime_safety,
                                   workload_.lifetime_max_tasklets,
                                   workload_.steal_min_backlog);
  dispatch_->add_tasklets(workload_.num_tasklets);
  // Per-site policies split the pool by slot share; a no-op for the rest.
  {
    std::vector<std::uint64_t> site_slots;
    site_slots.reserve(sites_->num_sites());
    for (std::size_t s = 0; s < sites_->num_sites(); ++s)
      site_slots.push_back(sites_->site_params(s).target_cores);
    dispatch_->partition(site_slots);
  }
  stealing_ = dynamic_cast<StealingDispatch*>(dispatch_.get());
  planner_ = MergePlanner::make(workload_.merge_mode, workload_.merge_policy);

  metrics_ = std::make_unique<EngineMetrics>(metric_bin_seconds);

  auto& counters = sim_.counters();
  ctr_tasks_dispatched_ = &counters.counter("lobsim.engine.tasks_dispatched");
  ctr_tasks_completed_ = &counters.counter("lobsim.engine.tasks_completed");
  ctr_tasks_failed_ = &counters.counter("lobsim.engine.tasks_failed");
  ctr_tasks_evicted_ = &counters.counter("lobsim.engine.tasks_evicted");
  ctr_tasklets_processed_ = &counters.counter("lobsim.engine.tasklets_processed");
  ctr_tasklets_retried_ = &counters.counter("lobsim.engine.tasklets_retried");
  ctr_merges_completed_ = &counters.counter("lobsim.engine.merge_tasks_completed");
  if (stealing_) {
    ctr_steal_attempts_ = &counters.counter("lobsim.steal.attempts");
    ctr_steal_tasks_ = &counters.counter("lobsim.steal.tasks");
    ctr_steal_bytes_penalty_ = &counters.gauge("lobsim.steal.bytes_penalty");
  }
}

Engine::~Engine() = default;

void Engine::enable_tracing(const std::string& path, util::TraceFormat format) {
  sim_.tracer().set_sink(util::make_trace_sink(format, path));
}

/// The whole actuation surface the advisor may touch (advisor.hpp's
/// AdvisorActions): task sizing through the dispatch policy's cap, dispatch
/// share through the per-site gate in next_task().
struct Engine::AdvisorPort final : AdvisorActions {
  explicit AdvisorPort(Engine& engine) : engine_(engine) {}

  void set_task_size_cap(std::uint32_t cap) override {
    engine_.dispatch_->set_size_cap(cap);
  }

  void set_dispatch_share(std::size_t site, double share) override {
    if (site >= engine_.site_share_.size()) return;
    engine_.site_share_[site] = share;
  }

 private:
  Engine& engine_;
};

void Engine::enable_advisor(const AdvisorConfig& config) {
  advisor_cfg_ = config;
  advisor_cfg_.enabled = true;
  advisor_ =
      std::make_unique<Advisor>(advisor_cfg_, workload_.tasklets_per_task,
                                sites_->num_sites());
  advisor_port_ = std::make_unique<AdvisorPort>(*this);
  site_share_.assign(sites_->num_sites(), 1.0);
  auto& counters = sim_.counters();
  ctr_advisor_ticks_ = &counters.counter("lobsim.advisor.ticks");
  ctr_advisor_shrinks_ = &counters.counter("lobsim.advisor.shrinks");
  ctr_advisor_throttles_ = &counters.counter("lobsim.advisor.throttles");
  ctr_advisor_drains_ = &counters.counter("lobsim.advisor.drains");
  ctr_advisor_restores_ = &counters.counter("lobsim.advisor.restores");
  ctr_advisor_share_ = &counters.gauge("lobsim.advisor.dispatch_share");
  ctr_advisor_ewma_ = &counters.gauge("lobsim.advisor.failure_ewma");
  ctr_advisor_share_->set(1.0);
}

std::uint64_t Engine::task_track(const WorkerNode& node, std::size_t slot) {
  // 64-bit track id: site in the top bits, 24 bits of node id, 16 bits of
  // slot — wide enough that concurrently running tasks never collide (a
  // collision would interleave begin/end events and fail validate_trace).
  return ((static_cast<std::uint64_t>(node.site) + 1) << 40) |
         ((static_cast<std::uint64_t>(node.id) & 0xFFFFFF) << 16) |
         (static_cast<std::uint64_t>(slot) & 0xFFFF);
}

void Engine::schedule_outage(double start, double duration) {
  sites_->schedule_outage(start, duration);
}

const EngineMetrics& Engine::run(double time_cap) {
  end_time_cap_ = time_cap;
  sites_->start(
      [this](NodeHandle node, std::size_t slot) {
        return core_slot(node, slot);
      },
      [this] { return done_; }, time_cap);
  sim_.spawn(
      gauge_sampler(metrics_->monitor.running_timeline().bin_width() / 3.0));
  if (advisor_) sim_.spawn(advisor_loop(advisor_cfg_.period));
  // Advance in slices so progress is observable at Debug log level and a
  // stuck scenario is diagnosable.
  double t = 0.0;
  while (t < time_cap && sim_.pending_events() > 0) {
    t = std::min(time_cap, t + 3600.0);
    sim_.run_until(t);
    LOBSTER_LOG_DEBUG("lobsim",
                      "t=%.0fs events=%llu running=%zu pending_tasklets=%llu "
                      "done=%llu merges_q=%zu done_flag=%d",
                      sim_.now(),
                      static_cast<unsigned long long>(sim_.events_executed()),
                      running_tasks_,
                      static_cast<unsigned long long>(
                          dispatch_->tasklets_pending()),
                      static_cast<unsigned long long>(tasklets_done_),
                      dispatch_->merge_backlog(), done_ ? 1 : 0);
  }
  metrics_->makespan =
      std::max(metrics_->last_analysis_finish, metrics_->last_merge_finish);
  // A truncated run (time cap hit, or every worker dead with work pending)
  // still reports the finish times above, but they are lower bounds, not a
  // makespan — `completed` is the signal consumers must check.
  metrics_->completed = done_;
  metrics_->bytes_streamed = 0.0;
  metrics_->bytes_staged = 0.0;
  for (std::size_t s = 0; s < sites_->num_sites(); ++s) {
    metrics_->bytes_streamed += sites_->federation(s).bytes_streamed();
    metrics_->bytes_staged += sites_->federation(s).bytes_staged();
  }
  metrics_->bytes_staged_out = chirp_->bytes_in();
  if (sim_.tracer().enabled()) {
    // Final name-ordered counter snapshot, then one atomic flush.  Spans
    // still open in truncated runs stay open in the file — that is the
    // honest record of a time-capped task.
    for (const auto& sample : sim_.counters().snapshot())
      sim_.tracer().counter(sample.name.c_str(), sample.value);
    sim_.tracer().close();
  }
  return *metrics_;
}

des::Process Engine::gauge_sampler(double period) {
  // Keep the running-tasks gauge populated even in bins where no task
  // starts or finishes.
  while (!done_ && sim_.now() < end_time_cap_) {
    metrics_->monitor.sample_running(sim_.now(), running_tasks_);
    sim_.tracer().counter("lobsim.engine.running_tasks",
                          static_cast<double>(running_tasks_));
    co_await sim_.delay(period);
  }
}

des::Process Engine::advisor_loop(double period) {
  // Baseline for the first window: the counter plane at advisor start.
  advisor_prev_snap_ = sim_.counters().snapshot();
  while (!done_ && sim_.now() < end_time_cap_) {
    co_await sim_.delay(period);
    if (done_ || sim_.now() >= end_time_cap_) break;
    // Windowed counter rates via snapshot_delta: what moved since the last
    // tick, without scanning traces.
    const auto snap = sim_.counters().snapshot();
    const auto delta =
        util::CounterRegistry::snapshot_delta(advisor_prev_snap_, snap);
    advisor_prev_snap_ = snap;
    double failed_window = 0.0;
    double retried_window = 0.0;
    AdvisorGauges gauges;
    for (const auto& sample : delta) {
      if (sample.name == "lobsim.engine.tasks_failed")
        failed_window = sample.value;
      else if (sample.name == "lobsim.engine.tasklets_retried")
        retried_window = sample.value;
      else if (sample.name == "cvmfs.squid.bytes_served")
        gauges.proxy_bytes_served = sample.value;
      else if (sample.name == "cvmfs.squid.bytes_thrashed")
        gauges.proxy_bytes_thrashed = sample.value;
    }

    const std::vector<AdvisorDecision> decisions =
        advisor_->tick(sim_.now(), metrics_->monitor, gauges, *advisor_port_);
    ++metrics_->advisor_ticks;
    ctr_advisor_ticks_->add();
    ctr_advisor_share_->set(advisor_->dispatch_share());
    ctr_advisor_ewma_->set(advisor_->failure_ewma());
    sim_.tracer().instant(
        "lobsim", "advisor_tick", 0,
        {{"failed_tasks", failed_window},
         {"retried_tasklets", retried_window},
         {"failure_ewma", advisor_->failure_ewma()},
         {"proxy_waste_frac", advisor_->proxy_waste_frac()},
         {"share", advisor_->dispatch_share()},
         {"cap", static_cast<double>(advisor_->task_size_cap())}});
    for (const AdvisorDecision& d : decisions) {
      switch (d.kind) {
        case AdvisorDecision::Kind::Shrink:
          ++metrics_->advisor_shrinks;
          ctr_advisor_shrinks_->add();
          break;
        case AdvisorDecision::Kind::Throttle:
          ++metrics_->advisor_throttles;
          ctr_advisor_throttles_->add();
          break;
        case AdvisorDecision::Kind::Drain:
          ++metrics_->advisor_drains;
          ctr_advisor_drains_->add();
          break;
        case AdvisorDecision::Kind::Restore:
          ++metrics_->advisor_restores;
          ctr_advisor_restores_->add();
          break;
        case AdvisorDecision::Kind::Advise:
          break;
      }
      const std::string name = std::string("advisor_") + to_string(d.kind);
      sim_.tracer().instant(
          "lobsim", name.c_str(), 0,
          {{"rule", static_cast<double>(static_cast<int>(d.rule))},
           {"value", d.value},
           {"severity", d.severity}});
    }
  }
}

des::Process Engine::core_slot(NodeHandle handle, std::size_t slot) {
  WorkerNode& node = sites_->node(handle);  // stable dense-array slot
  while (!done_ && sim_.now() < node.death && sim_.now() < end_time_cap_) {
    auto task = next_task(node);
    if (!task) {
      if (workflow_complete()) co_return;
      // Momentarily idle (e.g. waiting for merge work); poll again.
      co_await sim_.delay(kIdleRetryDelay);
      continue;
    }
    ++running_tasks_;
    if (node.site < site_running_.size()) ++site_running_[node.site];
    metrics_->peak_running = std::max(metrics_->peak_running, running_tasks_);
    metrics_->monitor.sample_running(sim_.now(), running_tasks_);
    ctr_tasks_dispatched_->add();

    const std::uint64_t track = task_track(node, slot);
    util::Span span = sim_.tracer().span(
        "task", task->is_merge ? "merge" : "analysis", track);

    core::TaskRecord record;
    record.submit_time = sim_.now();
    bool success = false;
    bool evicted = false;
    try {
      success = co_await run_task(node, slot, *task, record);
      evicted = !success && record.status == core::TaskStatus::Evicted;
    } catch (const xrootd::AccessError&) {
      record.exit_code = task->is_merge ? kExitStageInFailure
                                        : kExitXrootdFailure;
    } catch (const cvmfs::SquidSim::TimeoutError&) {
      record.exit_code = kExitEnvFailure;
    }
    --running_tasks_;
    if (node.site < site_running_.size()) --site_running_[node.site];
    metrics_->monitor.sample_running(sim_.now(), running_tasks_);
    const bool failed = !success && !evicted;
    finish_task(*task, record, success, evicted, node.site);
    if (span) {
      // The end event carries the authoritative record: segment spans show
      // the timeline, but reconstruction (trace_replay) uses these args so
      // the rebuilt breakdown matches Monitor::breakdown() exactly, even on
      // exception paths where a segment aborted mid-flight.
      span.arg("status", static_cast<double>(record.status));
      span.arg("exit", static_cast<double>(record.exit_code));
      span.arg("tasklets", static_cast<double>(task->n_tasklets));
      span.arg("cpu", record.cpu_time);
      span.arg("lost", record.lost_time);
      for (std::size_t s = 0; s < core::kNumSegments; ++s)
        span.arg(core::to_string(static_cast<core::Segment>(s)),
                 record.segment_time[s]);
      span.end();
    }
    if (failed && workload_.failure_backoff > 0.0)
      co_await sim_.delay(workload_.failure_backoff);
  }
}

des::Task<void> Engine::setup_software(WorkerNode& node, std::size_t slot,
                                       core::TaskRecord& record) {
  auto& squid = sites_->squid(node.site, node.squid);
  const auto mode = workload_.cache_mode;
  SegmentCharge charge(sim_, record, core::Segment::EnvSetup);
  util::Span span =
      sim_.tracer().span("segment", "env_setup", task_track(node, slot));

  // Cold population: the ~1.5 GB working set (paper §4.3), split into the
  // shared head (hot in the proxy once any worker pulled it) and this
  // node's tail (a proxy miss that goes upstream).  Population happens
  // once per worker life (Alien/Exclusive share a copy) or once per slot
  // (PerInstance re-downloads it in every cache directory).
  auto populate = [&]() -> des::Task<void> {
    const bool proxy_hot = squid.note_request("release-head");
    co_await squid.fetch(workload_.release_shared_bytes, proxy_hot);
    co_await squid.fetch(workload_.release_tail_bytes, false);
  };

  if (mode == cvmfs::CacheMode::PerInstance) {
    if (!node.slot_head_ready[slot]) {
      co_await populate();
      node.slot_head_ready[slot] = true;
    }
  } else {
    // Alien and Exclusive share one copy per node.  Exclusive additionally
    // holds the whole-cache write lock across population and across every
    // later access (Figure 6(a)); Alien populates and serves concurrently.
    using CS = WorkerNode::CacheState;
    while (node.cache_state != CS::Ready) {
      if (node.cache_state == CS::Cold) {
        node.cache_state = CS::Populating;
        auto round = node.cache_round;
        try {
          if (mode == cvmfs::CacheMode::Exclusive) {
            auto lock = co_await node.cache_lock->acquire();
            co_await populate();
          } else {
            co_await populate();
          }
        } catch (...) {
          // Failed population must not strand the waiting slots: return
          // to Cold and wake this round so another slot retries.
          node.cache_state = CS::Cold;
          node.cache_round = sim_.make_event();
          round->trigger();
          throw;
        }
        node.cache_state = CS::Ready;
        round->trigger();
      } else {  // Populating: wait for this round to resolve, then recheck.
        auto round = node.cache_round;
        co_await *round;
      }
    }
  }

  // Hot-cache traffic for everything beyond the first task is small; under
  // the exclusive discipline even these accesses take the write lock.
  if (mode == cvmfs::CacheMode::Exclusive) {
    auto lock = co_await node.cache_lock->acquire();
    co_await squid.fetch(workload_.hot_setup_bytes, true);
  } else {
    co_await squid.fetch(workload_.hot_setup_bytes, true);
  }
}

des::Task<bool> Engine::run_task(WorkerNode& node, std::size_t slot,
                                 TaskUnit task, core::TaskRecord& record) {
  auto seg = [&record](core::Segment s) -> double& {
    return record.segment_time[static_cast<std::size_t>(s)];
  };
  const std::uint64_t track = task_track(node, slot);
  const double start = sim_.now();
  auto evicted_now = [&]() { return sim_.now() >= node.death; };
  auto mark_evicted = [&]() {
    record.status = core::TaskStatus::Evicted;
    record.exit_code = kExitEvicted;
    record.lost_time = std::min(sim_.now(), node.death) - start;
  };

  if (task.is_merge) {
    // Merge task: inputs via XrootD, CPU ~ proportional to volume, output
    // staged via Chirp (paper §4.4).
    {
      util::Span s = sim_.tracer().span("segment", "stage_in", track);
      SegmentCharge charge(sim_, record, core::Segment::StageIn);
      co_await sites_->federation(node.site).stage(task.merge_input_bytes);
    }
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
    const double cpu =
        workload_.merge_cpu_per_gb * task.merge_input_bytes / 1e9;
    {
      util::Span s = sim_.tracer().span("segment", "execute", track);
      co_await sim_.delay(cpu);
    }
    record.cpu_time += cpu;
    seg(core::Segment::Execute) += cpu;
    {
      util::Span s = sim_.tracer().span("segment", "stage_out", track);
      SegmentCharge charge(sim_, record, core::Segment::StageOut);
      co_await chirp_->put(task.merge_input_bytes);
    }
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
    record.status = core::TaskStatus::Done;
    co_return true;
  }

  // ---- analysis task ----
  co_await setup_software(node, slot, record);
  if (evicted_now()) {
    mark_evicted();
    co_return false;
  }

  // Sandbox + task payload from the master through the foreman fan-out.
  if (workload_.sandbox_bytes > 0.0) {
    {
      util::Span s = sim_.tracer().span("segment", "stage_in", track);
      s.arg("sandbox_bytes", workload_.sandbox_bytes);
      SegmentCharge charge(sim_, record, core::Segment::StageIn);
      co_await foreman_fanout_->transfer(workload_.sandbox_bytes);
    }
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
  }

  const double input_bytes =
      workload_.tasklet_input_bytes * task.n_tasklets;

  // Data-locality penalty of a stolen task: the thief's squids have never
  // seen the victim dataset's conditions payload (cold fetch), and a
  // penalty fraction of the input must come across the WAN through the
  // thief site's own uplink before the task can run.
  if (task.stolen) {
    const double wan_bytes = workload_.steal_penalty_factor * input_bytes;
    {
      util::Span s = sim_.tracer().span("segment", "steal_penalty", track);
      s.arg("bytes", wan_bytes);
      SegmentCharge charge(sim_, record, core::Segment::StageIn);
      co_await sites_->squid(node.site, node.squid)
          .fetch(workload_.hot_setup_bytes, false);
      if (wan_bytes > 0.0)
        co_await sites_->federation(node.site).stage(wan_bytes);
    }
    const double charged = wan_bytes + workload_.hot_setup_bytes;
    metrics_->steal_bytes_penalty += charged;
    util::bump(ctr_steal_bytes_penalty_, charged);
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
  }

  if (workload_.access == core::DataAccessMode::Stage && input_bytes > 0.0) {
    {
      util::Span s = sim_.tracer().span("segment", "stage_in", track);
      s.arg("input_bytes", input_bytes);
      SegmentCharge charge(sim_, record, core::Segment::StageIn);
      co_await sites_->federation(node.site).stage(input_bytes);
    }
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
  }

  // Execute.  The task's CPU demand is the sum of its tasklets' draws (the
  // Figure 3 distribution).  In stream mode the application reads only
  // read_fraction of the input over the WAN, but those reads are
  // synchronous — the event loop stalls on them, so I/O time adds to the
  // wall clock (the "Task I/O Time" row of Figure 8).  Eviction is checked
  // at ~tasklet-sized boundaries by chunking the CPU delay.
  double cpu_total = 0.0;
  for (std::uint32_t i = 0; i < task.n_tasklets; ++i)
    cpu_total += node.rng.truncated_normal(workload_.tasklet_cpu_mean,
                                            workload_.tasklet_cpu_sigma, 1.0);
  double stream_bytes = 0.0;
  if (workload_.access == core::DataAccessMode::Stream && input_bytes > 0.0)
    stream_bytes = input_bytes * workload_.read_fraction;
  else if (workload_.pileup_bytes > 0.0)
    stream_bytes = workload_.pileup_bytes * task.n_tasklets;  // MC overlay

  if (stream_bytes > 0.0) {
    {
      util::Span s = sim_.tracer().span("segment", "execute_io", track);
      s.arg("stream_bytes", stream_bytes);
      SegmentCharge charge(sim_, record, core::Segment::ExecuteIo);
      co_await sites_->federation(node.site).stream(stream_bytes);
    }
    if (evicted_now()) {
      mark_evicted();
      co_return false;
    }
  }
  {
    util::Span s = sim_.tracer().span("segment", "execute", track);
    s.arg("cpu", cpu_total);
    double residual = cpu_total;
    const double chunk = std::max(60.0, workload_.tasklet_cpu_mean);
    while (residual > 0.0) {
      const double step = std::min(residual, chunk);
      co_await sim_.delay(step);
      residual -= step;
      if (evicted_now()) {
        record.cpu_time += cpu_total - residual;
        mark_evicted();
        co_return false;
      }
    }
  }
  record.cpu_time += cpu_total;
  seg(core::Segment::Execute) += cpu_total;

  // Stage out through the Chirp server.
  {
    util::Span s = sim_.tracer().span("segment", "stage_out", track);
    SegmentCharge charge(sim_, record, core::Segment::StageOut);
    co_await chirp_->put(workload_.tasklet_output_bytes * task.n_tasklets);
  }
  if (evicted_now()) {
    mark_evicted();
    co_return false;
  }
  record.status = core::TaskStatus::Done;
  co_return true;
}

std::optional<TaskUnit> Engine::next_task(const WorkerNode& node) {
  // Advisor dispatch-share gate: a throttled site runs at most
  // ceil(share * slots) concurrent tasks.  A denied slot idles through the
  // usual retry delay and re-checks, so a drain (share 0) leaves running
  // tasks untouched and the site refills promptly once the share recovers.
  // The cap bounds *concurrency*, which is what actually sheds load from
  // the shared services (squid, chirp, uplinks); a pull-ratio pacing
  // cannot, because denied slots retry and Little's law pins steady-state
  // concurrency at the slot count regardless of the grant ratio.
  if (advisor_ && node.site < site_share_.size()) {
    const double share = site_share_[node.site];
    if (share < 1.0) {
      const double slots = static_cast<double>(
          sites_->site_params(node.site).target_cores);
      const auto cap = static_cast<std::size_t>(std::ceil(share * slots));
      if (site_running_[node.site] >= cap) return std::nullopt;
    }
  }
  DispatchContext ctx;
  ctx.total_slots = sites_->total_slots();
  ctx.site = node.site;
  ctx.site_evictable = sites_->site_evictable(node.site);
  ctx.now = sim_.now();
  ctx.expected_remaining_lifetime =
      sites_->expected_remaining_lifetime(node.site, ctx.now);
  ctx.tasklet_cpu_mean = workload_.tasklet_cpu_mean;
  auto task = dispatch_->next(ctx);
  if (stealing_) {
    // Mirror the policy's attempt count (it ticks even on failed polls) and
    // announce successful steals on the trace plane.
    const std::uint64_t attempts = stealing_->steal_attempts();
    if (attempts > metrics_->steal_attempts) {
      util::bump(ctr_steal_attempts_, attempts - metrics_->steal_attempts);
      metrics_->steal_attempts = attempts;
    }
    if (task && task->stolen) {
      ++metrics_->steal_tasks;
      util::bump(ctr_steal_tasks_);
      sim_.tracer().instant(
          "lobsim", "steal", 0,
          {{"victim", static_cast<double>(task->victim_site)},
           {"thief", static_cast<double>(node.site)},
           {"tasklets", static_cast<double>(task->n_tasklets)}});
    }
  }
  if (task && task->is_merge) ++running_merges_;
  return task;
}

void Engine::finish_task(const TaskUnit& task, core::TaskRecord& record,
                         bool success, bool evicted, std::size_t site) {
  const double now = sim_.now();
  record.finish_time = now;
  record.kind = task.is_merge ? core::TaskKind::Merge : core::TaskKind::Analysis;
  if (success) {
    record.status = core::TaskStatus::Done;
  } else if (evicted) {
    record.status = core::TaskStatus::Evicted;
    ++metrics_->tasks_evicted;
    ctr_tasks_evicted_->add();
    sim_.tracer().instant("lobsim", "task_evicted", 0,
                          {{"tasklets", static_cast<double>(task.n_tasklets)}});
  } else {
    record.status = core::TaskStatus::Failed;
    ++metrics_->tasks_failed;
    ctr_tasks_failed_->add();
    metrics_->failures.add(now);
    metrics_->failure_events.emplace_back(now, record.exit_code);
    sim_.tracer().instant("lobsim", "task_failed", 0,
                          {{"exit", static_cast<double>(record.exit_code)}});
  }
  metrics_->monitor.on_task_finished(record);

  if (task.is_merge) {
    --running_merges_;
    if (success) {
      ++metrics_->merge_tasks_completed;
      ctr_merges_completed_->add();
      metrics_->merge_done.add(now);
      metrics_->last_merge_finish = now;
    } else {
      // The group's outputs return to the unmerged pool.
      planner_->return_group(task.merge_input_bytes);
    }
  } else {
    if (success) {
      ++metrics_->tasks_completed;
      ctr_tasks_completed_->add();
      metrics_->analysis_done.add(now);
      metrics_->last_analysis_finish = now;
      tasklets_done_ += task.n_tasklets;
      metrics_->tasklets_processed += task.n_tasklets;
      ctr_tasklets_processed_->add(task.n_tasklets);
      per_site_tasklets_[site] += task.n_tasklets;
      planner_->add_output(workload_.tasklet_output_bytes * task.n_tasklets);
    } else {
      // Retry: the tasklets re-enter the pool they were drawn from — a
      // stolen chunk goes back to its victim's partition, not the thief's.
      dispatch_->return_tasklets(task.stolen ? task.victim_site : site,
                                 task.n_tasklets);
      metrics_->tasklets_retried += task.n_tasklets;
      ctr_tasklets_retried_->add(task.n_tasklets);
    }
  }

  auto plan = planner_->plan(tasklets_done_, workload_.num_tasklets,
                             analysis_complete());
  for (double group_bytes : plan.groups) {
    dispatch_->push_merge_group(group_bytes);
    sim_.tracer().instant("lobsim", "merge_planned", 0,
                          {{"bytes", group_bytes}});
  }
  if (plan.start_hadoop && !hadoop_started_) {
    hadoop_started_ = true;
    sim_.spawn(hadoop_merge());
  }

  if (workflow_complete()) done_ = true;
}

des::Process Engine::hadoop_merge() {
  // Merging via Hadoop (paper §4.4): a Map-Reduce job inside the storage
  // cluster.  Reducers run concurrently up to the slot limit; each reads
  // its group from HDFS locally and writes the merged file back — no Chirp
  // or WAN involvement.
  std::vector<double> groups = planner_->take_hadoop_groups();

  des::Resource slots(sim_, workload_.hadoop_reduce_slots);
  std::vector<des::ProcessRef> reducers;
  auto reducer = [](Engine* self, des::Resource& res, double bytes,
                    std::size_t index) -> des::Process {
    auto slot = co_await res.acquire();
    // Transfer the group to the local machine, create the HEP environment,
    // concatenate, write back at HDFS-local rates (paper §4.4).
    {
      // Reducers run inside the storage cluster, not on a worker slot:
      // give them their own track family so they never collide with task
      // spans.
      util::Span span = self->sim_.tracer().span(
          "task", "hadoop_reduce", (1ULL << 40) | index);
      span.arg("bytes", bytes);
      co_await self->sim_.delay(self->workload_.hadoop_reduce_setup +
                                bytes / self->workload_.hadoop_local_rate);
    }
    const double now = self->sim_.now();
    ++self->metrics_->merge_tasks_completed;
    self->ctr_merges_completed_->add();
    self->metrics_->merge_done.add(now);
    self->metrics_->last_merge_finish = now;
  };
  reducers.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i)
    reducers.push_back(sim_.spawn(reducer(this, slots, groups[i], i)));
  for (auto& ref : reducers) co_await ref.done();
  hadoop_done_ = true;
  if (workflow_complete()) done_ = true;
}

bool Engine::analysis_complete() const {
  return tasklets_done_ >= workload_.num_tasklets &&
         dispatch_->tasklets_pending() == 0;
}

bool Engine::workflow_complete() const {
  if (!analysis_complete()) return false;
  if (planner_->mode() == core::MergeMode::Hadoop)
    return hadoop_started_ ? hadoop_done_ : false;
  return planner_->drained() && dispatch_->merge_backlog() == 0 &&
         running_merges_ == 0;
}

}  // namespace lobster::lobsim

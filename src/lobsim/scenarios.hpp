// scenarios.hpp — the canned parameter sets behind the paper's evaluation
// figures.  Each function returns the (cluster, workload) pair used by the
// corresponding bench binary; the knobs and their provenance are documented
// inline so the calibration is auditable against the paper text.
#pragma once

#include <string>
#include <vector>

#include "lobsim/engine.hpp"

namespace lobster::lobsim {

/// The ~10k-core data processing run of Figures 8, 9 and 10: streaming
/// analysis over the WAN, the campus uplink saturated, a transient
/// wide-area outage midway.
struct DataProcessingScenario {
  ClusterParams cluster;
  WorkloadParams workload;
  double outage_start = 0.0;
  double outage_duration = 0.0;
  std::uint64_t seed = 2015;
};
DataProcessingScenario data_processing_scenario();

/// The ~20k-core simulation (Monte Carlo) run of Figure 11: negligible
/// input streaming, cold caches saturating the squid at startup, Chirp
/// stage-out waves.
struct SimulationRunScenario {
  ClusterParams cluster;
  WorkloadParams workload;
  std::uint64_t seed = 2015;
};
SimulationRunScenario simulation_run_scenario();

/// Figure 4: staging vs streaming, identical workload.
struct DataAccessResult {
  std::string mode;
  double processing_time = 0.0;  ///< cpu + overlapped I/O per task (mean)
  double overhead_time = 0.0;    ///< setup + stage-in + stage-out (mean)
  double makespan = 0.0;
};
std::vector<DataAccessResult> run_data_access_comparison(std::uint64_t seed);

/// Figure 5: mean task overhead vs tasks sharing one proxy, cold vs hot.
struct ProxyScalingPoint {
  std::size_t clients = 0;
  double cold_overhead = 0.0;  ///< mean seconds to populate a cold cache
  double hot_overhead = 0.0;   ///< mean seconds of hot-cache setup
};
std::vector<ProxyScalingPoint> run_proxy_scaling(
    const std::vector<std::size_t>& client_counts, std::uint64_t seed);

/// Figure 7: the three merging modes on the same workload.
struct MergeModeResult {
  core::MergeMode mode;
  double analysis_finish = 0.0;
  double merge_finish = 0.0;    ///< completion of the last merge task
  std::uint64_t merge_tasks = 0;
  /// Completed analysis / merge tasks per time bin.
  std::vector<double> analysis_per_bin;
  std::vector<double> merge_per_bin;
  double bin_seconds = 0.0;
};
std::vector<MergeModeResult> run_merge_comparison(std::uint64_t seed);

/// Figure 9: the "global dashboard" ledger of XrootD consumers.  Background
/// sites are synthesized around the measured Lobster volume.
struct ConsumerEntry {
  std::string site;
  double bytes = 0.0;
};
std::vector<ConsumerEntry> dashboard_ledger(double lobster_bytes,
                                            std::uint64_t seed);

}  // namespace lobster::lobsim

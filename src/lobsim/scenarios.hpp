// scenarios.hpp — the canned parameter sets behind the paper's evaluation
// figures.  Each function returns the (cluster, workload) pair used by the
// corresponding bench binary; the knobs and their provenance are documented
// inline so the calibration is auditable against the paper text.
#pragma once

#include <string>
#include <vector>

#include "lobsim/campaign.hpp"
#include "lobsim/engine.hpp"
#include "util/stats.hpp"

namespace lobster::lobsim {

/// The ~10k-core data processing run of Figures 8, 9 and 10: streaming
/// analysis over the WAN, the campus uplink saturated, a transient
/// wide-area outage midway.
struct DataProcessingScenario {
  ClusterParams cluster;
  WorkloadParams workload;
  double outage_start = 0.0;
  double outage_duration = 0.0;
  std::uint64_t seed = 2015;
};
DataProcessingScenario data_processing_scenario();

/// The ~20k-core simulation (Monte Carlo) run of Figure 11: negligible
/// input streaming, cold caches saturating the squid at startup, Chirp
/// stage-out waves.
struct SimulationRunScenario {
  ClusterParams cluster;
  WorkloadParams workload;
  std::uint64_t seed = 2015;
};
SimulationRunScenario simulation_run_scenario();

/// Figure 4: staging vs streaming, identical workload.
struct DataAccessResult {
  std::string mode;
  double processing_time = 0.0;  ///< cpu + overlapped I/O per task (mean)
  double overhead_time = 0.0;    ///< setup + stage-in + stage-out (mean)
  double makespan = 0.0;
};
std::vector<DataAccessResult> run_data_access_comparison(std::uint64_t seed);

/// Figure 4 as a campaign: each access mode swept over `seeds`, executed
/// `jobs`-wide.  `detail` is the per-mode view of seeds[0] (what the
/// single-run figure prints); `aggregate` folds every seed.
struct DataAccessCampaign {
  std::vector<DataAccessResult> detail;
  struct ModeAggregate {
    std::string mode;
    util::RunningStats processing_time;  ///< per-task, across seeds
    util::RunningStats overhead_time;
    util::RunningStats makespan;
  };
  std::vector<ModeAggregate> aggregate;
};
DataAccessCampaign run_data_access_campaign(
    const std::vector<std::uint64_t>& seeds, std::size_t jobs);

/// Figure 5: mean task overhead vs tasks sharing one proxy, cold vs hot.
struct ProxyScalingPoint {
  std::size_t clients = 0;
  double cold_overhead = 0.0;  ///< mean seconds to populate a cold cache
  double hot_overhead = 0.0;   ///< mean seconds of hot-cache setup
  double cold_sd = 0.0;        ///< across-seed spread (0 for one seed)
  double hot_sd = 0.0;
};
std::vector<ProxyScalingPoint> run_proxy_scaling(
    const std::vector<std::size_t>& client_counts, std::uint64_t seed);

/// Figure 5 as a campaign: every (client count) point runs as its own DES
/// instance across `jobs` threads, and each point averages over `seeds`.
std::vector<ProxyScalingPoint> run_proxy_scaling(
    const std::vector<std::size_t>& client_counts,
    const std::vector<std::uint64_t>& seeds, std::size_t jobs);

/// Figure 7: the three merging modes on the same workload.
struct MergeModeResult {
  core::MergeMode mode;
  double analysis_finish = 0.0;
  double merge_finish = 0.0;    ///< completion of the last merge task
  std::uint64_t merge_tasks = 0;
  /// Completed analysis / merge tasks per time bin.
  std::vector<double> analysis_per_bin;
  std::vector<double> merge_per_bin;
  double bin_seconds = 0.0;
};
std::vector<MergeModeResult> run_merge_comparison(std::uint64_t seed);

/// Figure 7 as a campaign: each merge mode swept over `seeds`, executed
/// `jobs`-wide.  `detail` holds the per-mode timelines of seeds[0];
/// `aggregate` folds completion times across every seed.
struct MergeCampaign {
  std::vector<MergeModeResult> detail;
  struct ModeAggregate {
    core::MergeMode mode = core::MergeMode::Sequential;
    util::RunningStats analysis_finish;
    util::RunningStats merge_finish;
    util::RunningStats merge_tasks;
    util::RunningStats makespan;
  };
  std::vector<ModeAggregate> aggregate;
};
MergeCampaign run_merge_campaign(const std::vector<std::uint64_t>& seeds,
                                 std::size_t jobs);

/// Figure 16: the 200 Gbps data-plane challenge — `sites` site uplinks
/// feeding `trunks` shared WAN trunks through the multi-path federation,
/// offered load ramping phase by phase up to `target_gbps`.  A pure
/// function of the options (seed included), so campaigns can fan ramps
/// across threads and pin serial == parallel bitwise.
struct RampOptions {
  std::size_t sites = 16;
  std::size_t trunks = 4;
  double target_gbps = 200.0;
  std::size_t phases = 8;
  double phase_seconds = 120.0;
  double file_bytes = 2e9;          ///< per-stream transfer volume
  double per_stream_rate = 3.0e7;   ///< server/TCP per-stream ceiling
  xrootd::PathPolicy policy = xrootd::PathPolicy::LeastLoaded;
  /// Collapse site 0's uplink mid-ramp for 1.5 phases (the uplink-collapse
  /// failure mode): its streams break, opens re-route to survivors.
  bool uplink_collapse = false;
  std::uint64_t seed = 2015;
};
struct RampPhase {
  double offered_gbps = 0.0;
  double achieved_gbps = 0.0;      ///< sum of per-site uplink deltas
  std::vector<double> site_gbps;   ///< per-site achieved this phase
  std::uint64_t broken_streams = 0;  ///< cumulative at phase end
  std::uint64_t failed_opens = 0;    ///< cumulative at phase end
};
struct RampResult {
  std::vector<RampPhase> phases;
  double peak_gbps = 0.0;
  std::uint64_t streams_completed = 0;
  std::uint64_t events_executed = 0;
};
RampResult run_200gbps_ramp(const RampOptions& opt);

/// Figure 9: the "global dashboard" ledger of XrootD consumers.  Background
/// sites are synthesized around the measured Lobster volume.
struct ConsumerEntry {
  std::string site;
  double bytes = 0.0;
};
std::vector<ConsumerEntry> dashboard_ledger(double lobster_bytes,
                                            std::uint64_t seed);

}  // namespace lobster::lobsim

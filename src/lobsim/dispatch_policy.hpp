// dispatch_policy.hpp — task construction, extracted from the Engine.
//
// Lobster's master decides what a pulling worker slot runs next: a planned
// merge group, or an analysis task assembled from the pending tasklet pool
// (paper §4.1: "jobs are created on demand ... sized to the expected
// lifetime of the worker").  That decision used to live inline in
// Engine::next_task(); it is now a policy object so scenario studies can
// swap strategies without touching the simulation loop:
//
//  * Fifo       — fixed task size (`tasklets_per_task`), the production
//                 default the paper measured;
//  * TailShrink — shrink to single tasklets once the pending pool fits in
//                 the slot count, so the drain phase does not deepen the
//                 eviction-retry chains of the last stragglers (the §8
//                 task-size adaptivity; see fig12/fig14);
//  * SiteAware  — size per requesting site: dedicated (non-evicting) sites
//                 take full tasks, sites under an eviction climate take
//                 half-size ones to bound the work lost per eviction;
//  * Lifetime   — size against the requesting site's availability
//                 distribution: expected remaining worker lifetime divided
//                 by the mean tasklet CPU, scaled by a safety factor — the
//                 literal §4.1 sizing rule, now that every
//                 AvailabilityModel answers expected_lifetime(now);
//  * Partitioned — the pending pool is statically apportioned across sites
//                 by slot count (largest-remainder); each site drains only
//                 its own share.  The multi-site strawman: an idle site
//                 stays idle while a bursty one drowns in retries;
//  * Stealing   — Partitioned, plus work stealing: a site whose share has
//                 drained takes a task-sized chunk from the deepest
//                 sibling backlog (above a minimum, so the drain tail is
//                 not churned).  The Engine charges stolen tasks the
//                 victim-vs-thief data penalty (cold squid, WAN transfer
//                 through the thief's uplink), so stealing is
//                 locality-aware rather than free.
//
// The policy owns the dispatchable pools (pending tasklets, planned merge
// groups) and is pure logic over them — no DES types — so it unit-tests
// without running a simulation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

namespace lobster::lobsim {

/// One dispatched task: either a group of tasklets or a merge group.
struct TaskUnit {
  bool is_merge = false;
  std::uint32_t n_tasklets = 0;
  double merge_input_bytes = 0.0;  ///< total inputs to a merge task
  /// Work-stealing provenance: the tasklets came out of another site's
  /// partition.  The Engine charges the thief the data-locality penalty
  /// and, on retry, returns the tasklets to the victim's pool.
  bool stolen = false;
  std::size_t victim_site = 0;
};

/// What a policy may consult when constructing the next task.
struct DispatchContext {
  /// Cluster-wide core count (every site's target_cores summed).
  std::uint64_t total_slots = 0;
  /// Requesting worker's site and whether that site evicts workers.
  std::size_t site = 0;
  bool site_evictable = true;
  /// Simulated time of this pull.
  double now = 0.0;
  /// Expected remaining lifetime of a worker on the requesting site at
  /// `now` (SiteManager::expected_remaining_lifetime; infinity on a
  /// dedicated site).
  double expected_remaining_lifetime = std::numeric_limits<double>::infinity();
  /// Mean CPU seconds of one tasklet (WorkloadParams::tasklet_cpu_mean).
  double tasklet_cpu_mean = 0.0;
};

enum class DispatchMode : std::uint8_t { Fifo, TailShrink, SiteAware,
                                         Lifetime, Partitioned, Stealing };
const char* to_string(DispatchMode m);

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  virtual const char* name() const = 0;

  // ---- dispatchable pools (owned here; the Engine only feeds them) ----

  /// Tasklets enter the pool at workflow start and on failed-task retry.
  void add_tasklets(std::uint64_t n) { tasklets_pending_ += n; }
  [[nodiscard]] std::uint64_t tasklets_pending() const { return tasklets_pending_; }

  /// A planned merge task of `total_bytes` input volume.
  void push_merge_group(double total_bytes) {
    merge_queue_.push_back(total_bytes);
  }
  std::size_t merge_backlog() const { return merge_queue_.size(); }

  bool idle() const { return tasklets_pending_ == 0 && merge_queue_.empty(); }

  /// Apportion the already-added pending pool across sites weighted by
  /// their slot counts.  A no-op for the single-pool policies; the
  /// per-site policies (Partitioned, Stealing) split the pool here.  Call
  /// once, after the initial add_tasklets(), before the first next().
  virtual void partition(const std::vector<std::uint64_t>& site_slots) {
    (void)site_slots;
  }

  /// Failed/evicted tasklets re-enter the pool.  `site` is the pool the
  /// work was drawn from (the victim's site for a stolen task); single-pool
  /// policies ignore it.
  virtual void return_tasklets(std::size_t site, std::uint64_t n) {
    (void)site;
    add_tasklets(n);
  }

  /// Construct the next task for a pulling slot: merge groups first (their
  /// outputs gate publication), then an analysis task whose size the
  /// concrete policy chooses.  nullopt when both pools are empty (or, for
  /// the per-site policies, when this site has nothing to dispatch).
  virtual std::optional<TaskUnit> next(const DispatchContext& ctx);

  /// Online ceiling on the analysis-task size, applied on top of whatever
  /// the concrete policy chooses (0 = no cap).  The advisor's lost-runtime
  /// actuation: shrinking the cap bounds the work an eviction can discard
  /// without replacing the policy mid-run.
  void set_size_cap(std::uint32_t cap) { size_cap_ = cap; }
  [[nodiscard]] std::uint32_t size_cap() const { return size_cap_; }

 protected:
  explicit DispatchPolicy(std::uint32_t tasklets_per_task)
      : tasklets_per_task_(tasklets_per_task ? tasklets_per_task : 1) {}

  /// Preferred analysis-task size for this request (clamped to the pool).
  virtual std::uint32_t task_size(const DispatchContext& ctx) const = 0;

  /// task_size() clamped to [1, size_cap] — every next() override sizes
  /// through this so the advisor cap binds in all dispatch paths.
  [[nodiscard]] std::uint32_t capped_size(const DispatchContext& ctx) const {
    std::uint32_t size = std::max<std::uint32_t>(1, task_size(ctx));
    if (size_cap_) size = std::min(size, size_cap_);
    return size;
  }

  std::uint32_t tasklets_per_task_;
  std::uint32_t size_cap_ = 0;
  std::uint64_t tasklets_pending_ = 0;
  std::deque<double> merge_queue_;
};

/// Fixed-size tasks: the behaviour of the production system the paper
/// measured (Figure 3 fixes the optimum around 1 h of work).
class FifoDispatch final : public DispatchPolicy {
 public:
  explicit FifoDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "fifo"; }

 protected:
  std::uint32_t task_size(const DispatchContext&) const override {
    return tasklets_per_task_;
  }
};

/// Fixed-size until the drain phase: once the pending pool fits in the slot
/// count, long tasks only extend the eviction-retry tail, so shrink to
/// single tasklets.
class TailShrinkDispatch final : public DispatchPolicy {
 public:
  explicit TailShrinkDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "tail-shrink"; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    return tasklets_per_task_;
  }
};

/// Site-aware sizing: a dedicated cloud site keeps full-size tasks, an
/// eviction-prone partition gets half-size ones (less work lost per
/// eviction, at the cost of more per-task overhead).  Both shrink to
/// single tasklets at the drain phase, like TailShrink.
class SiteAwareDispatch final : public DispatchPolicy {
 public:
  explicit SiteAwareDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "site-aware"; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    if (!ctx.site_evictable) return tasklets_per_task_;
    return std::max<std::uint32_t>(1, tasklets_per_task_ / 2);
  }
};

/// Expected-lifetime sizing (paper §4.1: "jobs are created on demand ...
/// sized to the expected lifetime of the worker"): the task gets
/// clamp(safety_factor * E[remaining lifetime] / tasklet_cpu_mean,
///       1, max_tasklets) tasklets, so a worker pulled just before a
/// preemption wave (or during the harsh afternoon of a diurnal climate)
/// receives little work to lose, while a calm or dedicated slot fills up to
/// the cap.  Shrinks to single tasklets at the drain phase like TailShrink.
class LifetimeAwareDispatch final : public DispatchPolicy {
 public:
  LifetimeAwareDispatch(std::uint32_t tasklets_per_task, double safety_factor,
                        std::uint32_t max_tasklets);
  const char* name() const override { return "lifetime"; }
  double safety_factor() const { return safety_factor_; }
  std::uint32_t max_tasklets() const { return max_tasklets_; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    // Without a CPU estimate the lifetime is not convertible into a tasklet
    // count; fall back to the static size.
    if (!(ctx.tasklet_cpu_mean > 0.0)) return tasklets_per_task_;
    const double budget =
        safety_factor_ * ctx.expected_remaining_lifetime / ctx.tasklet_cpu_mean;
    if (budget >= static_cast<double>(max_tasklets_)) return max_tasklets_;
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(budget));
  }

 private:
  double safety_factor_;
  std::uint32_t max_tasklets_;
};

/// Static per-site partitioning: partition() splits the pending pool across
/// sites proportionally to their slot counts (largest-remainder method, ties
/// to the lower site index — deterministic), and every pull draws from the
/// requesting site's share only.  Sizing is per-site tail-shrink: full tasks
/// while the site's share exceeds its slot count, single tasklets in the
/// drain phase.  This is the multi-site baseline stealing is measured
/// against.
class PartitionedDispatch : public DispatchPolicy {
 public:
  explicit PartitionedDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "partitioned"; }

  void partition(const std::vector<std::uint64_t>& site_slots) override;
  void return_tasklets(std::size_t site, std::uint64_t n) override;
  std::optional<TaskUnit> next(const DispatchContext& ctx) override;

  [[nodiscard]] std::size_t num_partitions() const {
    return site_pending_.size();
  }
  [[nodiscard]] std::uint64_t site_pending(std::size_t site) const {
    return site < site_pending_.size() ? site_pending_[site] : 0;
  }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override;
  /// Per-site pools; sum always equals tasklets_pending_.  Empty until
  /// partition() is called (the policy then degrades to a single pool).
  std::vector<std::uint64_t> site_pending_;
  std::vector<std::uint64_t> site_slots_;
};

/// Partitioned, plus locality-aware work stealing: when the requesting
/// site's share (and the merge queue) is empty, take one task-sized chunk
/// from the site with the deepest backlog — but only while that backlog is
/// at least `min_backlog` tasklets, so the victim's own drain tail is not
/// churned for chunks whose data penalty outweighs the balance gain.  The
/// returned TaskUnit carries stolen/victim_site so the Engine can charge
/// the transfer penalty and return retries to the victim's pool.  Victim
/// choice is a pure function of the pool state — no RNG — keeping
/// campaigns bitwise deterministic.
class StealingDispatch final : public PartitionedDispatch {
 public:
  /// min_backlog 0 defaults to 2x tasklets_per_task.
  StealingDispatch(std::uint32_t tasklets_per_task, std::uint64_t min_backlog)
      : PartitionedDispatch(tasklets_per_task),
        min_backlog_(min_backlog ? min_backlog : 2ULL * tasklets_per_task_) {}
  const char* name() const override { return "stealing"; }

  std::optional<TaskUnit> next(const DispatchContext& ctx) override;

  [[nodiscard]] std::uint64_t min_backlog() const { return min_backlog_; }
  /// Steal polls by an idle site (successful or not) and chunks actually
  /// taken; the Engine mirrors these into lobsim.steal.{attempts,tasks}.
  [[nodiscard]] std::uint64_t steal_attempts() const { return attempts_; }
  [[nodiscard]] std::uint64_t steal_tasks() const { return stolen_; }

 private:
  std::uint64_t min_backlog_;
  std::uint64_t attempts_ = 0;
  std::uint64_t stolen_ = 0;
};

/// `lifetime_safety` and `lifetime_max_tasklets` only matter for
/// DispatchMode::Lifetime; max_tasklets 0 defaults to 4x the static size.
/// `steal_min_backlog` only matters for DispatchMode::Stealing (0 = 2x
/// tasklets_per_task).
std::unique_ptr<DispatchPolicy> make_dispatch_policy(
    DispatchMode mode, std::uint32_t tasklets_per_task,
    double lifetime_safety = 0.25, std::uint32_t lifetime_max_tasklets = 0,
    std::uint64_t steal_min_backlog = 0);

}  // namespace lobster::lobsim

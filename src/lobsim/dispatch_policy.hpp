// dispatch_policy.hpp — task construction, extracted from the Engine.
//
// Lobster's master decides what a pulling worker slot runs next: a planned
// merge group, or an analysis task assembled from the pending tasklet pool
// (paper §4.1: "jobs are created on demand ... sized to the expected
// lifetime of the worker").  That decision used to live inline in
// Engine::next_task(); it is now a policy object so scenario studies can
// swap strategies without touching the simulation loop:
//
//  * Fifo       — fixed task size (`tasklets_per_task`), the production
//                 default the paper measured;
//  * TailShrink — shrink to single tasklets once the pending pool fits in
//                 the slot count, so the drain phase does not deepen the
//                 eviction-retry chains of the last stragglers (the §8
//                 task-size adaptivity; see fig12/fig14);
//  * SiteAware  — size per requesting site: dedicated (non-evicting) sites
//                 take full tasks, sites under an eviction climate take
//                 half-size ones to bound the work lost per eviction;
//  * Lifetime   — size against the requesting site's availability
//                 distribution: expected remaining worker lifetime divided
//                 by the mean tasklet CPU, scaled by a safety factor — the
//                 literal §4.1 sizing rule, now that every
//                 AvailabilityModel answers expected_lifetime(now).
//
// The policy owns the dispatchable pools (pending tasklets, planned merge
// groups) and is pure logic over them — no DES types — so it unit-tests
// without running a simulation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>

namespace lobster::lobsim {

/// One dispatched task: either a group of tasklets or a merge group.
struct TaskUnit {
  bool is_merge = false;
  std::uint32_t n_tasklets = 0;
  double merge_input_bytes = 0.0;  ///< total inputs to a merge task
};

/// What a policy may consult when constructing the next task.
struct DispatchContext {
  /// Cluster-wide core count (every site's target_cores summed).
  std::uint64_t total_slots = 0;
  /// Requesting worker's site and whether that site evicts workers.
  std::size_t site = 0;
  bool site_evictable = true;
  /// Simulated time of this pull.
  double now = 0.0;
  /// Expected remaining lifetime of a worker on the requesting site at
  /// `now` (SiteManager::expected_remaining_lifetime; infinity on a
  /// dedicated site).
  double expected_remaining_lifetime = std::numeric_limits<double>::infinity();
  /// Mean CPU seconds of one tasklet (WorkloadParams::tasklet_cpu_mean).
  double tasklet_cpu_mean = 0.0;
};

enum class DispatchMode : std::uint8_t { Fifo, TailShrink, SiteAware,
                                         Lifetime };
const char* to_string(DispatchMode m);

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  virtual const char* name() const = 0;

  // ---- dispatchable pools (owned here; the Engine only feeds them) ----

  /// Tasklets enter the pool at workflow start and on failed-task retry.
  void add_tasklets(std::uint64_t n) { tasklets_pending_ += n; }
  [[nodiscard]] std::uint64_t tasklets_pending() const { return tasklets_pending_; }

  /// A planned merge task of `total_bytes` input volume.
  void push_merge_group(double total_bytes) {
    merge_queue_.push_back(total_bytes);
  }
  std::size_t merge_backlog() const { return merge_queue_.size(); }

  bool idle() const { return tasklets_pending_ == 0 && merge_queue_.empty(); }

  /// Construct the next task for a pulling slot: merge groups first (their
  /// outputs gate publication), then an analysis task whose size the
  /// concrete policy chooses.  nullopt when both pools are empty.
  std::optional<TaskUnit> next(const DispatchContext& ctx);

 protected:
  explicit DispatchPolicy(std::uint32_t tasklets_per_task)
      : tasklets_per_task_(tasklets_per_task ? tasklets_per_task : 1) {}

  /// Preferred analysis-task size for this request (clamped to the pool).
  virtual std::uint32_t task_size(const DispatchContext& ctx) const = 0;

  std::uint32_t tasklets_per_task_;
  std::uint64_t tasklets_pending_ = 0;
  std::deque<double> merge_queue_;
};

/// Fixed-size tasks: the behaviour of the production system the paper
/// measured (Figure 3 fixes the optimum around 1 h of work).
class FifoDispatch final : public DispatchPolicy {
 public:
  explicit FifoDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "fifo"; }

 protected:
  std::uint32_t task_size(const DispatchContext&) const override {
    return tasklets_per_task_;
  }
};

/// Fixed-size until the drain phase: once the pending pool fits in the slot
/// count, long tasks only extend the eviction-retry tail, so shrink to
/// single tasklets.
class TailShrinkDispatch final : public DispatchPolicy {
 public:
  explicit TailShrinkDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "tail-shrink"; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    return tasklets_per_task_;
  }
};

/// Site-aware sizing: a dedicated cloud site keeps full-size tasks, an
/// eviction-prone partition gets half-size ones (less work lost per
/// eviction, at the cost of more per-task overhead).  Both shrink to
/// single tasklets at the drain phase, like TailShrink.
class SiteAwareDispatch final : public DispatchPolicy {
 public:
  explicit SiteAwareDispatch(std::uint32_t tasklets_per_task)
      : DispatchPolicy(tasklets_per_task) {}
  const char* name() const override { return "site-aware"; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    if (!ctx.site_evictable) return tasklets_per_task_;
    return std::max<std::uint32_t>(1, tasklets_per_task_ / 2);
  }
};

/// Expected-lifetime sizing (paper §4.1: "jobs are created on demand ...
/// sized to the expected lifetime of the worker"): the task gets
/// clamp(safety_factor * E[remaining lifetime] / tasklet_cpu_mean,
///       1, max_tasklets) tasklets, so a worker pulled just before a
/// preemption wave (or during the harsh afternoon of a diurnal climate)
/// receives little work to lose, while a calm or dedicated slot fills up to
/// the cap.  Shrinks to single tasklets at the drain phase like TailShrink.
class LifetimeAwareDispatch final : public DispatchPolicy {
 public:
  LifetimeAwareDispatch(std::uint32_t tasklets_per_task, double safety_factor,
                        std::uint32_t max_tasklets);
  const char* name() const override { return "lifetime"; }
  double safety_factor() const { return safety_factor_; }
  std::uint32_t max_tasklets() const { return max_tasklets_; }

 protected:
  std::uint32_t task_size(const DispatchContext& ctx) const override {
    if (tasklets_pending_ <= ctx.total_slots) return 1;
    // Without a CPU estimate the lifetime is not convertible into a tasklet
    // count; fall back to the static size.
    if (!(ctx.tasklet_cpu_mean > 0.0)) return tasklets_per_task_;
    const double budget =
        safety_factor_ * ctx.expected_remaining_lifetime / ctx.tasklet_cpu_mean;
    if (budget >= static_cast<double>(max_tasklets_)) return max_tasklets_;
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(budget));
  }

 private:
  double safety_factor_;
  std::uint32_t max_tasklets_;
};

/// `lifetime_safety` and `lifetime_max_tasklets` only matter for
/// DispatchMode::Lifetime; max_tasklets 0 defaults to 4x the static size.
std::unique_ptr<DispatchPolicy> make_dispatch_policy(
    DispatchMode mode, std::uint32_t tasklets_per_task,
    double lifetime_safety = 0.25, std::uint32_t lifetime_max_tasklets = 0);

}  // namespace lobster::lobsim

// spec_config.hpp — INI scenario -> RunSpec, shared by the CLIs.
//
// lobster_sim and lobster_compare both accept the same `[cluster]` /
// `[workflow]` / `[failures]` / `[run]` / `[advisor]` scenario grammar
// (documented in tools/lobster_sim.cpp); this is the one parser behind
// both, so a scenario file means the same run everywhere.  Unknown enum
// values throw std::invalid_argument — a typo must not silently fall back
// to a default workload.
//
// The `[trace]` section is deliberately *not* consumed here: where a trace
// goes is a per-tool decision (lobster_sim honours the section plus
// --trace; lobster_compare derives per-run paths from --trace-dir).
#pragma once

#include "lobsim/campaign.hpp"
#include "util/config.hpp"

namespace lobster::lobsim {

/// Build a RunSpec from a parsed scenario file.  Seeds default to the
/// `[workflow] seed` key (2015 when absent); callers override per run.
RunSpec spec_from_config(const util::Config& cfg);

}  // namespace lobster::lobsim

// global_pool.hpp — the baseline Lobster is compared against (paper §2, §7):
// centralized scheduling through the glideinWMS Global Pool.
//
// "The current CMS workflow management tools ... use the GlideInWMS
// framework for job management. ... While this solution is efficient, it
// provides a single centralized scheduling point for the entire
// collaboration, making it impossible to harness and schedule a resource
// for the sole use of a single user."  And §7: the Global Pool ran ~110k
// simultaneous jobs for the whole collaboration, while "Lobster empowers a
// single user to access a scale of opportunistic resources approximately
// 10% the size of the global pool without intervention from systems
// administrators."
//
// The model: a dedicated pool of C cores shared max-min fairly among the
// active users (HTCondor fair share with equal priorities).  Each user's
// analysis is a volume of core-seconds with a parallelism cap (they cannot
// use more cores than they have runnable tasks).  This is exactly the fluid
// max-min allocation of des::BandwidthLink with cores in place of bytes/s,
// so the well-tested kernel is reused directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/bandwidth.hpp"
#include "des/simulation.hpp"

namespace lobster::lobsim {

/// One user's analysis campaign submitted to the pool.
struct PoolUser {
  std::string name;
  double submit_time = 0.0;       ///< when the jobs enter the queue
  double core_seconds = 0.0;      ///< total work volume
  double max_parallelism = 1e9;   ///< runnable-task ceiling
};

struct PoolOutcome {
  std::string name;
  double submit_time = 0.0;
  double finish_time = 0.0;
  [[nodiscard]] double turnaround() const { return finish_time - submit_time; }
};

/// Simulate the central pool; returns one outcome per user (input order).
/// Deterministic; `dedicated_cores` is the pool size (e.g. 110k for the
/// 2015 Global Pool).
std::vector<PoolOutcome> simulate_global_pool(
    double dedicated_cores, const std::vector<PoolUser>& users);

/// Result of the discrete live pool run (simulate_global_pool_live).
struct LivePoolResult {
  std::vector<PoolOutcome> outcomes;  ///< per user, input order
  std::uint64_t events_executed = 0;  ///< DES kernel events the run took
  std::uint64_t tasklets_dispatched = 0;
  double makespan = 0.0;  ///< finish time of the last campaign
  /// Aggregate goodput: total core-seconds delivered / makespan.
  double aggregate_goodput = 0.0;
};

/// The discrete, event-driven counterpart of simulate_global_pool: every
/// campaign is chopped into tasklets of `tasklet_seconds` (the remainder
/// forms a short final tasklet, so the delivered volume matches the fluid
/// model exactly) and dispatched onto `dedicated_cores` discrete core slots
/// by a fair-share scheduler (round-robin over users with backlog, each
/// capped at its own max_parallelism — HTCondor fair share with equal
/// priorities, discretised).  Runs live on the DES kernel: a 110k-core day
/// with hundreds of campaigns is millions of tasklet events.  Deterministic;
/// converges to the fluid max-min allocation as tasklet_seconds -> 0 and
/// agrees with it to a few percent at one-hour tasklets.
LivePoolResult simulate_global_pool_live(double dedicated_cores,
                                         const std::vector<PoolUser>& users,
                                         double tasklet_seconds = 3600.0);

/// The Lobster alternative for ONE user: an opportunistic burst of
/// `burst_cores` at `efficiency` (the Figure 3 ceiling accounts for
/// eviction and overheads).  Returns the completion time of the same
/// work volume started at t = 0.
double lobster_burst_completion(double core_seconds, double burst_cores,
                                double efficiency);

}  // namespace lobster::lobsim

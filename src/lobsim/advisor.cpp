#include "lobsim/advisor.hpp"

#include <algorithm>
#include <cmath>

namespace lobster::lobsim {

const char* to_string(AdvisorDecision::Kind k) {
  switch (k) {
    case AdvisorDecision::Kind::Shrink: return "shrink";
    case AdvisorDecision::Kind::Throttle: return "throttle";
    case AdvisorDecision::Kind::Drain: return "drain";
    case AdvisorDecision::Kind::Restore: return "restore";
    case AdvisorDecision::Kind::Advise: return "advise";
  }
  return "?";
}

namespace {

/// The windowed fraction a rule triggers on — the same arithmetic
/// diagnose_breakdown() applies, exposed so recovery can watch a symptom
/// sink back *below* threshold (hysteresis needs the value, not just the
/// fired/not-fired bit).
double rule_fraction(const core::RuntimeBreakdown& win, double lost,
                     double dispatch, core::DiagnosisRule rule) {
  const double total = win.total();
  if (total <= 0.0) return 0.0;
  switch (rule) {
    case core::DiagnosisRule::LostRuntime: return lost / total;
    case core::DiagnosisRule::DispatchWait: return dispatch / total;
    case core::DiagnosisRule::SetupTime:
      return (win.other > 0.0 ? win.other : 0.0) / total;
    case core::DiagnosisRule::Staging:
      return (win.stage_in + win.stage_out) / total;
    case core::DiagnosisRule::FailureBurst: return win.hard_failed / total;
  }
  return 0.0;
}

double rule_threshold(const core::AdvisorThresholds& th,
                      core::DiagnosisRule rule) {
  switch (rule) {
    case core::DiagnosisRule::LostRuntime: return th.lost_fraction;
    case core::DiagnosisRule::DispatchWait: return th.dispatch_fraction;
    case core::DiagnosisRule::SetupTime: return th.setup_fraction;
    case core::DiagnosisRule::Staging: return th.staging_fraction;
    case core::DiagnosisRule::FailureBurst: return th.failed_fraction;
  }
  return 1.0;
}

}  // namespace

Advisor::Advisor(const AdvisorConfig& config, std::uint32_t initial_task_size,
                 std::size_t num_sites)
    : cfg_(config),
      initial_task_size_(std::max<std::uint32_t>(1, initial_task_size)),
      num_sites_(num_sites),
      failure_ewma_(cfg_.ewma_tau) {}

void Advisor::apply_share(double share, AdvisorActions& actions) {
  share_ = share;
  for (std::size_t s = 0; s < num_sites_; ++s)
    actions.set_dispatch_share(s, share);
}

std::vector<AdvisorDecision> Advisor::tick(double now,
                                           const core::Monitor& monitor,
                                           const AdvisorGauges& gauges,
                                           AdvisorActions& actions) {
  ++ticks_;
  std::vector<AdvisorDecision> out;

  // Window = cumulative aggregates minus the previous tick's (the
  // counter-plane snapshot_delta idea applied to the Monitor plane).
  const core::RuntimeBreakdown cum = monitor.breakdown();
  core::RuntimeBreakdown win;
  win.cpu = cum.cpu - prev_breakdown_.cpu;
  win.io = cum.io - prev_breakdown_.io;
  win.failed = cum.failed - prev_breakdown_.failed;
  win.hard_failed = cum.hard_failed - prev_breakdown_.hard_failed;
  win.stage_in = cum.stage_in - prev_breakdown_.stage_in;
  win.stage_out = cum.stage_out - prev_breakdown_.stage_out;
  win.other = cum.other - prev_breakdown_.other;
  const double win_lost = monitor.lost_time() - prev_lost_;
  const double win_dispatch = monitor.dispatch_time() - prev_dispatch_;
  prev_breakdown_ = cum;
  prev_lost_ = monitor.lost_time();
  prev_dispatch_ = monitor.dispatch_time();

  failure_ewma_.update(now, cum.failed);

  // Proxy-plane symptom: the fraction of this window's served bytes the
  // squid fleet wasted on overload retransmits.  thrashed can momentarily
  // exceed served (waste ticks at admission, served at transfer end), so
  // clamp; a window with waste but no completed service is fully hot.
  proxy_frac_ = 0.0;
  if (gauges.proxy_bytes_thrashed > 0.0)
    proxy_frac_ =
        gauges.proxy_bytes_served > 0.0
            ? std::min(1.0,
                       gauges.proxy_bytes_thrashed / gauges.proxy_bytes_served)
            : 1.0;

  const std::vector<core::Diagnosis> diags =
      core::diagnose_breakdown(win, win_lost, win_dispatch, cfg_.thresholds);

  // ---- task sizing (LostRuntime) and advice-only rules --------------------
  for (const core::Diagnosis& d : diags) {
    if (d.rule == core::DiagnosisRule::LostRuntime) {
      const std::uint32_t cur = cap_ ? cap_ : initial_task_size_;
      const auto shrunk = static_cast<std::uint32_t>(
          cfg_.shrink_factor * static_cast<double>(cur));
      const std::uint32_t next = std::max(cfg_.min_task_size, shrunk);
      if (next < cur) {
        cap_ = next;
        actions.set_task_size_cap(cap_);
        ++shrinks_;
        out.push_back({AdvisorDecision::Kind::Shrink, d.rule,
                       static_cast<double>(cap_), d.severity});
      }
    } else if (d.rule == core::DiagnosisRule::DispatchWait) {
      // No safe online actuator (foreman count is physical capacity); the
      // advice still lands on the trace plane for the operator.
      out.push_back({AdvisorDecision::Kind::Advise, d.rule, 0.0, d.severity});
    }
  }

  // ---- dispatch share ladder ----------------------------------------------
  // The most restrictive firing rule wins: a severe failure burst drains
  // (share 0), a mild one probes, squid/chirp overload throttles.
  double desired = 1.0;
  core::DiagnosisRule desired_cause = cause_;
  bool desired_proxy = false;
  double desired_sev = 0.0;
  // The proxy waste rate is the timely form of the SetupTime diagnosis
  // (overloaded squid): evaluated first, so when both forms fire the
  // throttle's cause — and thus its recovery signal — is the live one.
  if (proxy_frac_ > cfg_.proxy_waste_fraction) {
    desired = cfg_.throttle_share;
    desired_cause = core::DiagnosisRule::SetupTime;
    desired_proxy = true;
    desired_sev = std::min(
        1.0, (proxy_frac_ - cfg_.proxy_waste_fraction) /
                 cfg_.proxy_waste_fraction);
  }
  for (const core::Diagnosis& d : diags) {
    double s = 1.0;
    if (d.rule == core::DiagnosisRule::FailureBurst)
      s = d.severity >= 1.0 ? 0.0 : cfg_.probe_share;
    else if (d.rule == core::DiagnosisRule::SetupTime ||
             d.rule == core::DiagnosisRule::Staging)
      s = cfg_.throttle_share;
    else
      continue;
    if (s < desired) {
      desired = s;
      desired_cause = d.rule;
      desired_proxy = false;
      desired_sev = d.severity;
    }
  }

  if (desired < share_) {
    cause_ = desired_cause;
    cause_proxy_ = desired_proxy;
    apply_share(desired, actions);
    const bool drain = desired == 0.0;
    if (drain) ++drains_; else ++throttles_;
    out.push_back({drain ? AdvisorDecision::Kind::Drain
                         : AdvisorDecision::Kind::Throttle,
                   desired_cause, desired, desired_sev});
  } else if (share_ < 1.0) {
    // Recovery with hysteresis: the causing symptom must sink below
    // recover_factor * threshold in this window.  A proxy-caused throttle
    // recovers on the proxy waste rate (live, so recovery is prompt); a
    // completion-rule throttle recovers on that rule's windowed fraction.
    // An empty window counts as clean (rule_fraction reports 0): it
    // carries no evidence the symptom persists, and demanding a non-empty
    // clean window would stall a throttled site whose in-flight tasks take
    // longer than a period to land — during a real outage the probe
    // failures keep windows non-empty, so the ladder cannot climb through
    // one.  Restore climbs gradually — 0 -> probe_share, then
    // + restore_step per clean tick up to 1 — so the deferred cold cohort
    // is paced back in; a still-hot symptom re-throttles on the next
    // window, bounding the oscillation to one step per period.
    const double frac = cause_proxy_
                            ? proxy_frac_
                            : rule_fraction(win, win_lost, win_dispatch, cause_);
    const double threshold = cause_proxy_
                                 ? cfg_.proxy_waste_fraction
                                 : rule_threshold(cfg_.thresholds, cause_);
    const bool recovered = frac < cfg_.recover_factor * threshold;
    if (recovered) {
      double next = share_ == 0.0
                        ? cfg_.probe_share
                        : std::min(1.0, share_ + cfg_.restore_step);
      if (desired < next) {  // another rule still wants a lower rung
        next = desired;
        cause_ = desired_cause;
        cause_proxy_ = desired_proxy;
      }
      if (next > share_) {
        apply_share(next, actions);
        ++restores_;
        out.push_back({AdvisorDecision::Kind::Restore, cause_, next, 0.0});
      }
    }
  }
  return out;
}

}  // namespace lobster::lobsim

#include "lobsim/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "des/simulation.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lobster::lobsim {

DataProcessingScenario data_processing_scenario() {
  DataProcessingScenario s;
  // Cluster: ~10k opportunistic cores in 8-core workers (paper §3, §6),
  // availability like the Figure 2 logs, 10 Gbit/s campus uplink fully
  // consumed by the run (paper §6: "the campus bandwidth, 10 Gbit/s, was
  // entirely used up by the running tasks").
  s.cluster.target_cores = 10000;
  s.cluster.cores_per_worker = 8;
  s.cluster.ramp_seconds = 2.0 * 3600.0;
  s.cluster.availability.scale_hours = 12.0;
  s.cluster.availability.shape = 0.8;
  s.cluster.federation.campus_uplink_rate = util::gbit_per_s(10);
  s.cluster.federation.per_stream_rate = 30e6;
  s.cluster.squid.max_connections = 2000;
  s.cluster.chirp.max_connections = 24;
  s.cluster.chirp.nic_rate = 8.0e8;
  s.cluster.num_foremen = 4;
  s.cluster.foreman_uplink_rate = 1.25e8;
  s.cluster.federation.open_fail_delay = 300.0;

  // Workload: tasklets N(10, 5) min (the §4.1 distribution), 6 per task
  // (~1 h tasks, the Figure 3 optimum).  Input volume tuned so aggregate
  // streaming demand moderately exceeds the uplink — the regime in which
  // Figure 8 reports 20.4% of the runtime in task I/O.
  s.workload.num_tasklets = 150000;
  s.workload.tasklets_per_task = 6;
  s.workload.tasklet_cpu_mean = 600.0;
  s.workload.tasklet_cpu_sigma = 300.0;
  s.workload.tasklet_input_bytes = 390e6;
  s.workload.read_fraction = 0.28;
  s.workload.tasklet_output_bytes = 20e6;
  s.workload.sandbox_bytes = 190e6;
  s.workload.failure_backoff = 300.0;
  s.workload.access = core::DataAccessMode::Stream;
  s.workload.merge_mode = core::MergeMode::Interleaved;
  s.workload.merge_policy.target_bytes = 3.5e9;

  // The transient wide-area outage visible mid-run in Figure 10.
  s.outage_start = 3.4 * 3600.0;
  s.outage_duration = 0.45 * 3600.0;
  return s;
}

SimulationRunScenario simulation_run_scenario() {
  SimulationRunScenario s;
  // ~20k cores (paper §6 Simulation Run): external bandwidth demand is
  // orders of magnitude lower (only pile-up overlay), so the pressure
  // moves to the squid proxy (cold caches at startup) and the Chirp server
  // (stage-out waves).
  s.cluster.target_cores = 20000;
  s.cluster.cores_per_worker = 8;
  s.cluster.ramp_seconds = 0.5 * 3600.0;  // big burst grant
  s.cluster.availability.scale_hours = 16.0;
  s.cluster.federation.campus_uplink_rate = util::gbit_per_s(10);
  // One squid for 20k cores: undersized on purpose — the paper observed
  // "the squid deployed had trouble serving up the data required to create
  // the software environment fast enough".
  s.cluster.num_squids = 1;
  s.cluster.squid.max_connections = 2000;
  s.cluster.squid.service_rate = util::gbit_per_s(1.5);
  s.cluster.squid.upstream_rate = util::gbit_per_s(1);
  s.cluster.squid.connect_timeout = 1800.0;  // -> the trickle of failures
  // Chirp sized so synchronized completion waves overload it periodically.
  s.cluster.chirp.max_connections = 12;
  s.cluster.chirp.nic_rate = util::gbit_per_s(8);

  s.workload.num_tasklets = 50000;
  s.workload.tasklets_per_task = 1;
  s.workload.tasklet_cpu_mean = 2.0 * 3600.0;  // long MC tasks
  s.workload.tasklet_cpu_sigma = 600.0;
  s.workload.tasklet_input_bytes = 0.0;        // generated, not read
  s.workload.pileup_bytes = 40e6;              // overlay noise events
  s.workload.tasklet_output_bytes = 250e6;     // simulated events out
  s.workload.merge_mode = core::MergeMode::Interleaved;
  s.workload.merge_policy.target_bytes = 3.5e9;
  return s;
}

namespace {
RunSpec data_access_spec(core::DataAccessMode mode) {
  RunSpec spec;
  spec.label = to_string(mode);
  spec.cluster.target_cores = 512;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 600.0;
  spec.cluster.evictions = false;  // isolate the data-access effect
  spec.workload.num_tasklets = 3000;
  spec.workload.tasklets_per_task = 6;
  // Short, I/O-heavy tasks make the access-mode split visible: staging
  // must move the whole 6 GB task input before computing, streaming
  // reads only the ~30% the analysis touches.
  spec.workload.tasklet_cpu_mean = 300.0;
  spec.workload.tasklet_cpu_sigma = 150.0;
  spec.workload.tasklet_input_bytes = 1e9;
  spec.workload.tasklet_output_bytes = 15e6;
  spec.workload.access = mode;
  spec.workload.merge_mode = core::MergeMode::Sequential;
  spec.workload.merge_policy.target_bytes = 1e12;  // merging out of scope
  return spec;
}

DataAccessResult data_access_result(const RunResult& r) {
  const auto& b = r.stats.breakdown;
  const double n = static_cast<double>(r.stats.tasks_completed);
  DataAccessResult d;
  d.mode = r.label;
  // "Data processing" = CPU plus I/O interleaved with it; "general
  // overhead" = everything serialised around the application.
  d.processing_time = (b.cpu + b.io) / n;
  d.overhead_time = (b.stage_in + b.stage_out + b.other) / n;
  d.makespan = r.stats.makespan;
  return d;
}
}  // namespace

DataAccessCampaign run_data_access_campaign(
    const std::vector<std::uint64_t>& seeds, std::size_t jobs) {
  Campaign campaign(jobs);
  for (const auto mode :
       {core::DataAccessMode::Stage, core::DataAccessMode::Stream})
    campaign.add_seed_sweep(data_access_spec(mode), seeds);
  campaign.run();

  DataAccessCampaign out;
  for (const auto mode :
       {core::DataAccessMode::Stage, core::DataAccessMode::Stream}) {
    DataAccessCampaign::ModeAggregate agg;
    agg.mode = to_string(mode);
    for (const auto& r : campaign.results()) {
      if (r.label != agg.mode || !r.ok()) continue;
      const DataAccessResult d = data_access_result(r);
      agg.processing_time.add(d.processing_time);
      agg.overhead_time.add(d.overhead_time);
      agg.makespan.add(d.makespan);
      if (r.seed == seeds.front()) out.detail.push_back(d);
    }
    out.aggregate.push_back(std::move(agg));
  }
  return out;
}

std::vector<DataAccessResult> run_data_access_comparison(std::uint64_t seed) {
  return run_data_access_campaign({seed}, 1).detail;
}

namespace {
des::Process proxy_client(des::Simulation& sim, cvmfs::SquidSim& squid,
                          double bytes, bool hot, util::RunningStats& stats) {
  const double dt = co_await squid.fetch(bytes, hot);
  stats.add(dt);
  (void)sim;
}
}  // namespace

namespace {
/// One Figure 5 measurement: `n` clients sharing one proxy, cold or hot.
double proxy_point_overhead(std::size_t n, bool hot, std::uint64_t seed) {
  des::Simulation sim;
  cvmfs::SquidSim::Params p;
  p.max_connections = 100000;  // isolate the bandwidth effect
  p.service_rate = util::gbit_per_s(10);
  p.upstream_rate = util::gbit_per_s(1);
  p.request_latency = 2.0;
  cvmfs::SquidSim squid(sim, p);
  util::Rng rng(seed + n);
  util::RunningStats stats;
  // Cold caches pull the full working set (~1.5 GB, paper §4.3);
  // hot caches only the per-task residue.  Cold misses also hit the
  // upstream stratum; hot content is resident in the proxy.  Task
  // starts stagger over a short dispatch wave rather than landing in
  // the same instant.
  const double bytes = hot ? 25e6 : 1.5e9;
  const double wave = 20.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, wave);
    sim.schedule(at, [&sim, &squid, bytes, hot, &stats] {
      sim.spawn(proxy_client(sim, squid, bytes, hot, stats));
    });
  }
  sim.run();
  return stats.mean();
}
}  // namespace

std::vector<ProxyScalingPoint> run_proxy_scaling(
    const std::vector<std::size_t>& client_counts,
    const std::vector<std::uint64_t>& seeds, std::size_t jobs) {
  // Every (client count, seed, cold/hot) triple is its own DES instance, so
  // the sweep fans out across the pool; each cell writes only its own slot
  // and the fold below runs in submission order on the calling thread.
  const std::size_t n_points = client_counts.size();
  const std::size_t n_seeds = seeds.size();
  std::vector<double> cold(n_points * n_seeds), hot(n_points * n_seeds);
  parallel_runs(n_points * n_seeds, jobs, [&](std::size_t cell) {
    const std::size_t point = cell / n_seeds;
    const std::size_t s = cell % n_seeds;
    cold[cell] = proxy_point_overhead(client_counts[point], false, seeds[s]);
    hot[cell] = proxy_point_overhead(client_counts[point], true, seeds[s]);
  });

  std::vector<ProxyScalingPoint> out;
  for (std::size_t point = 0; point < n_points; ++point) {
    util::RunningStats cold_stats, hot_stats;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      cold_stats.add(cold[point * n_seeds + s]);
      hot_stats.add(hot[point * n_seeds + s]);
    }
    ProxyScalingPoint p;
    p.clients = client_counts[point];
    p.cold_overhead = cold_stats.mean();
    p.hot_overhead = hot_stats.mean();
    p.cold_sd = cold_stats.stddev();
    p.hot_sd = hot_stats.stddev();
    out.push_back(p);
  }
  return out;
}

std::vector<ProxyScalingPoint> run_proxy_scaling(
    const std::vector<std::size_t>& client_counts, std::uint64_t seed) {
  return run_proxy_scaling(client_counts, std::vector<std::uint64_t>{seed}, 1);
}

namespace {
RunSpec merge_mode_spec(core::MergeMode mode) {
  RunSpec spec;
  spec.label = core::to_string(mode);
  spec.metric_bin_seconds = 900.0;
  spec.cluster.target_cores = 1024;
  spec.cluster.cores_per_worker = 8;
  spec.cluster.ramp_seconds = 900.0;
  spec.cluster.availability.scale_hours = 6.0;
  // Merge transfers contend on a modest Chirp front-end — the load the
  // paper's sequential mode suffers from.
  spec.cluster.chirp.max_connections = 8;
  spec.cluster.chirp.nic_rate = util::gbit_per_s(2);
  spec.workload.num_tasklets = 9000;
  spec.workload.tasklets_per_task = 6;
  spec.workload.tasklet_input_bytes = 120e6;
  spec.workload.tasklet_output_bytes = 100e6;  // merge volume matters here
  spec.workload.merge_mode = mode;
  spec.workload.merge_policy.target_bytes = 3.5e9;
  return spec;
}
}  // namespace

MergeCampaign run_merge_campaign(const std::vector<std::uint64_t>& seeds,
                                 std::size_t jobs) {
  constexpr core::MergeMode kModes[] = {core::MergeMode::Sequential,
                                        core::MergeMode::Hadoop,
                                        core::MergeMode::Interleaved};
  Campaign campaign(jobs);
  campaign.keep_metrics(true);  // the figure needs the per-bin timelines
  for (const auto mode : kModes)
    campaign.add_seed_sweep(merge_mode_spec(mode), seeds);
  campaign.run();

  MergeCampaign out;
  for (const auto mode : kModes) {
    MergeCampaign::ModeAggregate agg;
    agg.mode = mode;
    for (const auto& r : campaign.results()) {
      if (r.label != core::to_string(mode) || !r.ok()) continue;
      agg.analysis_finish.add(r.stats.last_analysis_finish);
      agg.merge_finish.add(r.stats.last_merge_finish);
      agg.merge_tasks.add(static_cast<double>(r.stats.merge_tasks_completed));
      agg.makespan.add(r.stats.makespan);
      if (r.seed != seeds.front() || !r.metrics) continue;
      const EngineMetrics& m = *r.metrics;
      MergeModeResult detail;
      detail.mode = mode;
      detail.analysis_finish = m.last_analysis_finish;
      detail.merge_finish = m.last_merge_finish;
      detail.merge_tasks = m.merge_tasks_completed;
      detail.bin_seconds = 900.0;
      const std::size_t bins =
          std::max(m.analysis_done.nbins(), m.merge_done.nbins());
      for (std::size_t b = 0; b < bins; ++b) {
        detail.analysis_per_bin.push_back(m.analysis_done.sum(b));
        detail.merge_per_bin.push_back(m.merge_done.sum(b));
      }
      out.detail.push_back(std::move(detail));
    }
    out.aggregate.push_back(std::move(agg));
  }
  return out;
}

std::vector<MergeModeResult> run_merge_comparison(std::uint64_t seed) {
  return run_merge_campaign({seed}, 1).detail;
}

namespace {
struct RampTally {
  std::uint64_t broken = 0;
  std::uint64_t completed = 0;
};

des::Process ramp_streamer(des::Simulation& sim, xrootd::FederationSim& fed,
                           double bytes, double until, RampTally& tally) {
  // Keep a stream open back-to-back until the horizon; broken streams and
  // failed opens retry immediately (the client's next file).
  while (sim.now() < until) {
    try {
      co_await fed.stream(bytes);
      ++tally.completed;
    } catch (const xrootd::AccessError&) {
      ++tally.broken;
    }
  }
}
}  // namespace

RampResult run_200gbps_ramp(const RampOptions& opt) {
  if (opt.sites == 0 || opt.trunks == 0 || opt.phases == 0 ||
      opt.target_gbps <= 0.0 || opt.phase_seconds <= 0.0 ||
      opt.file_bytes <= 0.0 || opt.per_stream_rate <= 0.0)
    throw std::invalid_argument("ramp: bad options");
  const double target = util::gbit_per_s(opt.target_gbps);

  // Topology: site uplinks oversized 1.5x relative to their share of the
  // target so the shared trunks are what binds at full load — the paper's
  // saturated-WAN regime, scaled from 10 to 200 Gbit/s.
  xrootd::FederationSim::Params p;
  p.per_stream_rate = opt.per_stream_rate;
  p.open_latency = 1.0;
  p.open_fail_delay = 15.0;
  const std::size_t ntr = std::min(opt.trunks, opt.sites);
  for (std::size_t t = 0; t < ntr; ++t)
    p.trunks.push_back(
        {"trunk-" + std::to_string(t), target / static_cast<double>(ntr)});
  for (std::size_t s = 0; s < opt.sites; ++s)
    p.paths.push_back({"site-" + std::to_string(s),
                       1.5 * target / static_cast<double>(opt.sites),
                       s % ntr});
  p.path_policy = opt.policy;

  des::Simulation sim;
  xrootd::FederationSim fed(sim, p);
  util::Rng jitter = util::Rng(opt.seed).stream("ramp-jitter");
  RampTally tally;

  // Offered load ramps linearly: phase k runs enough concurrent streamers
  // to demand (k+1)/phases of the target.  Spawns jitter over the first
  // seconds of the phase so a ramp step is a burst, not one megajoin.
  const double horizon = opt.phase_seconds * static_cast<double>(opt.phases);
  std::vector<double> offered(opt.phases, 0.0);
  std::size_t running = 0;
  for (std::size_t ph = 0; ph < opt.phases; ++ph) {
    const double demand = target * static_cast<double>(ph + 1) /
                          static_cast<double>(opt.phases);
    offered[ph] = demand / util::gbit_per_s(1.0);
    const auto want = static_cast<std::size_t>(
        std::ceil(demand / opt.per_stream_rate));
    const double at = opt.phase_seconds * static_cast<double>(ph);
    for (std::size_t i = running; i < want; ++i) {
      sim.schedule(at + jitter.uniform(0.0, 5.0),
                   [&sim, &fed, &tally, bytes = opt.file_bytes, horizon] {
                     sim.spawn(ramp_streamer(sim, fed, bytes, horizon, tally));
                   });
    }
    running = std::max(running, want);
  }
  if (opt.uplink_collapse)
    fed.schedule_path_outage(0, 0.5 * horizon, 1.5 * opt.phase_seconds);

  // Per-phase throughput from per-site uplink byte deltas.  bytes_moved()
  // integrates up to each link's last event, so poke live links (same-value
  // capacity set) at the boundary; a downed link is exact without a poke
  // (it integrated when its capacity dropped and moves nothing since).
  RampResult r;
  std::vector<double> last_bytes(opt.sites, 0.0);
  for (std::size_t ph = 0; ph < opt.phases; ++ph) {
    const double at = opt.phase_seconds * static_cast<double>(ph + 1);
    sim.schedule(at, [&, ph] {
      RampPhase snap;
      snap.offered_gbps = offered[ph];
      snap.site_gbps.resize(fed.num_paths());
      for (std::size_t s = 0; s < fed.num_paths(); ++s) {
        auto& link = fed.path_link(s);
        if (!fed.path_down(s)) link.set_capacity(link.capacity());
        const double moved = link.bytes_moved();
        snap.site_gbps[s] = (moved - last_bytes[s]) / opt.phase_seconds /
                            util::gbit_per_s(1.0);
        snap.achieved_gbps += snap.site_gbps[s];
        last_bytes[s] = moved;
      }
      snap.broken_streams = tally.broken;
      snap.failed_opens = fed.failed_opens();
      r.phases.push_back(std::move(snap));
    });
  }
  sim.run_until(horizon + 1.0);

  for (const RampPhase& ph : r.phases)
    r.peak_gbps = std::max(r.peak_gbps, ph.achieved_gbps);
  r.streams_completed = tally.completed;
  r.events_executed = sim.events_executed();
  return r;
}

std::vector<ConsumerEntry> dashboard_ledger(double lobster_bytes,
                                            std::uint64_t seed) {
  // Synthetic CMS-dashboard background: the other T1/T2 analysis consumers
  // during the same window.  The paper's Figure 9 point is the ranking —
  // Lobster at Notre Dame out-consumed every dedicated site in that 4 h
  // window; background volumes are drawn below that scale.
  static const char* kSites[] = {
      "T1_US_FNAL",      "T2_US_Wisconsin", "T2_US_Nebraska",
      "T2_US_Purdue",    "T2_DE_DESY",      "T2_US_UCSD",
      "T2_IT_Legnaro",   "T2_UK_London_IC", "T2_US_Caltech",
      "T2_FR_IPHC",      "T2_ES_CIEMAT",    "T3_US_Colorado",
  };
  util::Rng rng(seed);
  std::vector<ConsumerEntry> out;
  out.push_back({"ND_Lobster (this run)", lobster_bytes});
  for (const char* site : kSites) {
    // Pareto-ish spread over roughly [2%, 70%] of the Lobster volume.
    const double frac = std::min(0.7, 0.02 + rng.pareto(1.6, 0.04));
    out.push_back({site, frac * lobster_bytes});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.bytes > b.bytes; });
  if (out.size() > 10) out.resize(10);
  return out;
}

}  // namespace lobster::lobsim

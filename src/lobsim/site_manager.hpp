// site_manager.hpp — batch-system ramp, worker lifecycle and eviction,
// extracted from the Engine.
//
// The opportunistic pool is what makes Lobster's environment hard: workers
// are granted gradually by the batch system, live under a pluggable
// availability climate (availability.hpp: the Figure 2 Weibull log, a
// replayed eviction trace, a diurnal cycle, or adversarial eviction
// bursts), and return after an exponential backoff when evicted.  The
// SiteManager owns that whole layer — per-site infrastructure (federation
// WAN path, squid proxies, availability model) plus
// the worker ramp/rebirth processes — so the Engine only supplies the slot
// body that pulls and runs tasks.  Multi-site harvesting (paper §7) is a
// list of sites; site 0 is always the home campus.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chirp/chirp.hpp"
#include "core/task_size_model.hpp"
#include "cvmfs/squid.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "lobsim/availability.hpp"
#include "util/rng.hpp"
#include "xrootd/federation.hpp"

namespace lobster::lobsim {

/// An additional remote site contributing opportunistic workers (paper §7:
/// "Lobster's design makes it possible to harvest resources from several
/// clusters, and even commercial clouds, together").  Each site brings its
/// own WAN path and squid; outputs still flow to the home Chirp server.
struct SiteParams {
  std::string name = "remote";
  std::size_t target_cores = 0;
  double ramp_seconds = 3600.0;
  /// Per-site availability climate (a commercial cloud is effectively
  /// dedicated while paid for; a borrowed HPC partition may be harsher
  /// than campus).  One config drives both the home and extra sites, so
  /// the two can't silently disagree.
  AvailabilityConfig availability;
  bool evictions = true;
  std::size_t num_squids = 1;
  cvmfs::SquidSim::Params squid;
  xrootd::FederationSim::Params federation;
};

/// Cluster and infrastructure parameters.
struct ClusterParams {
  std::size_t target_cores = 10000;
  std::size_t cores_per_worker = 8;  ///< paper §3: 8-core workers
  /// Workers join gradually (batch system grants) over this window.
  double ramp_seconds = 3600.0;
  /// Availability climate of the home site (availability.hpp: weibull /
  /// trace / diurnal / adversarial-burst).
  AvailabilityConfig availability;
  /// Evicted workers return after an exponential backoff with this mean.
  double rejoin_mean_seconds = 1800.0;
  /// When false, workers are dedicated (no eviction) — ablation switch.
  bool evictions = true;

  /// Foreman fan-out: sandboxes and task payloads reach workers through
  /// `num_foremen` intermediaries, each with `foreman_uplink_rate` of
  /// outbound bandwidth (paper §3: "one intermediate rank of four foremen").
  std::size_t num_foremen = 4;
  double foreman_uplink_rate = 1.25e8;  // 1 Gbit/s each

  std::size_t num_squids = 1;
  cvmfs::SquidSim::Params squid;
  chirp::ChirpSim::Params chirp;
  xrootd::FederationSim::Params federation;

  /// Extra sites harvested alongside the home campus (index 0 is always
  /// the home site built from the fields above).
  std::vector<SiteParams> extra_sites;
};

/// Index-based handle naming one worker node: `site` picks the site,
/// `index` the slot in that site's dense node array.  Nodes are
/// preallocated for the whole run (lives recycle in place), so a handle
/// never goes stale and resolution is two array indexations — no hashing,
/// no shared_ptr control blocks on the dispatch hot path.
struct NodeHandle {
  std::uint32_t site = 0;
  std::uint32_t index = 0;
  friend bool operator==(const NodeHandle&, const NodeHandle&) = default;
};

/// A worker node: one batch-system slot of `cores_per_worker` cores
/// sharing a Parrot cache, a squid assignment, and a common fate under
/// eviction.
struct WorkerNode {
  std::size_t id = 0;
  util::Rng rng{0};
  std::size_t site = 0;
  std::size_t squid = 0;
  /// Per-worker replay phase (trace availability): a hash of (site, id)
  /// offsets this worker into the interval log; incarnations advance it.
  std::uint64_t avail_phase = 0;
  double death = std::numeric_limits<double>::infinity();
  bool alive = false;
  // Cache state for the current life.  Population is a retryable state
  // machine: if the populating slot's fetch fails (squid timeout), the
  // state returns to Cold and the waiters of that round are woken so one
  // of them can retry — a failure must never strand the other slots.
  enum class CacheState { Cold, Populating, Ready };
  CacheState cache_state = CacheState::Cold;
  std::shared_ptr<des::Event> cache_round;
  std::vector<bool> slot_head_ready;  // PerInstance only
  // Exclusive mode: the whole-cache write lock serialising every access.
  std::unique_ptr<des::Resource> cache_lock;
};

class SiteManager {
 public:
  /// Coroutine body run for each live core slot; it pulls and executes
  /// tasks until the worker dies or the workflow ends.  The handle resolves
  /// through node() to storage that is stable for the whole run.
  using SlotBody = std::function<des::Process(NodeHandle, std::size_t)>;
  /// Engine-side predicate: stop granting / reviving workers once true.
  using DonePredicate = std::function<bool()>;

  /// Builds the home site from `cluster` plus every extra site, each with
  /// its own federation path, squids and eviction model.  `rng` is the
  /// scenario-level generator; per-site and per-node streams are derived
  /// from it by name so runs stay reproducible.
  SiteManager(des::Simulation& sim, const ClusterParams& cluster,
              const util::Rng& rng);

  /// Spawn every site's batch-system ramp.  Worker arrivals stagger across
  /// each site's ramp window; dead workers rejoin after an exponential
  /// backoff for as long as `done()` is false and now < time_cap.
  void start(SlotBody slot_body, DonePredicate done, double time_cap);

  /// Inject a WAN outage (Figure 10's transient failure burst).  The
  /// wide-area data handling system is shared: every site's path to the
  /// federation breaks together.
  void schedule_outage(double start, double duration);

  [[nodiscard]] std::size_t num_sites() const { return sites_.size(); }
  /// Cluster-wide core count (every site's target_cores summed).
  [[nodiscard]] std::uint64_t total_slots() const { return total_slots_; }
  /// Resolve a node handle to its (stable) dense-array slot — O(1), the
  /// engine calls this on every dispatch and eviction check.
  [[nodiscard]] WorkerNode& node(NodeHandle h) {
    return sites_[h.site].nodes[h.index];
  }
  [[nodiscard]] const WorkerNode& node(NodeHandle h) const {
    return sites_[h.site].nodes[h.index];
  }
  /// Workers preallocated at `site` (target_cores / cores_per_worker).
  [[nodiscard]] std::size_t num_workers(std::size_t site) const {
    return sites_.at(site).nodes.size();
  }
  xrootd::FederationSim& federation(std::size_t site) {
    return *sites_.at(site).federation;
  }
  cvmfs::SquidSim& squid(std::size_t site, std::size_t i) {
    return *sites_.at(site).squids.at(i);
  }
  const SiteParams& site_params(std::size_t site) const {
    return sites_.at(site).params;
  }
  bool site_evictable(std::size_t site) const {
    return sites_.at(site).params.evictions;
  }
  /// The site's availability climate (AlwaysAvailable when evictions are
  /// off) — queryable by dispatch policies and benches.
  const AvailabilityModel& availability(std::size_t site) const {
    return *sites_.at(site).availability;
  }
  /// Expected lifetime of a worker incarnation starting at `now` on
  /// `site` — the quantity the ROADMAP's expected-lifetime DispatchPolicy
  /// sizes tasks against (paper §4.1: "sized to the expected lifetime of
  /// the worker").
  double expected_remaining_lifetime(std::size_t site, double now) const {
    return sites_.at(site).availability->expected_lifetime(now);
  }

 private:
  /// Runtime state of one harvested site.
  struct Site {
    SiteParams params;
    std::unique_ptr<xrootd::FederationSim> federation;
    std::vector<std::unique_ptr<cvmfs::SquidSim>> squids;
    std::unique_ptr<AvailabilityModel> availability;
    /// Dense node array, fully allocated at construction and never
    /// resized — coroutines hold references into it across suspensions.
    std::vector<WorkerNode> nodes;
  };

  des::Process site_batch_system(std::size_t site_index);
  des::Process worker_life(NodeHandle handle);

  des::Simulation& sim_;
  std::size_t cores_per_worker_;
  double rejoin_mean_seconds_;
  util::Rng rng_;
  std::vector<Site> sites_;
  std::uint64_t total_slots_ = 0;
  SlotBody slot_body_;
  DonePredicate done_;
  double time_cap_ = 0.0;
};

}  // namespace lobster::lobsim

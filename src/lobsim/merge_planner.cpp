#include "lobsim/merge_planner.hpp"

#include <stdexcept>

namespace lobster::lobsim {

std::vector<double> MergePlanner::take_groups(bool final_sweep) {
  const double target = policy_.target_bytes;
  const double min_fill = policy_.min_fill;
  std::vector<double> planned;
  while (bytes_ >= target * min_fill || (final_sweep && !outputs_.empty())) {
    std::vector<double> group;
    double group_bytes = 0.0;
    while (!outputs_.empty() && group_bytes < target * min_fill) {
      group_bytes += outputs_.front();
      group.push_back(outputs_.front());
      outputs_.pop_front();
    }
    if (group.empty()) break;
    if (group_bytes < target * min_fill && !final_sweep) {
      // Put them back; not enough yet.
      for (auto it = group.rbegin(); it != group.rend(); ++it)
        outputs_.push_front(*it);
      break;
    }
    bytes_ -= group_bytes;
    planned.push_back(group_bytes);
  }
  return planned;
}

std::vector<double> MergePlanner::take_hadoop_groups() {
  // Reducer inputs accumulate straight to the target (no min_fill: the
  // map phase groups everything it sees in one pass).
  const double target = policy_.target_bytes;
  std::vector<double> groups;
  double acc = 0.0;
  for (double b : outputs_) {
    acc += b;
    if (acc >= target) {
      groups.push_back(acc);
      acc = 0.0;
    }
  }
  if (acc > 0.0) groups.push_back(acc);
  outputs_.clear();
  bytes_ = 0.0;
  return groups;
}

MergePlan SequentialMergePlanner::plan(std::uint64_t, std::uint64_t,
                                       bool analysis_complete) {
  MergePlan p;
  if (analysis_complete) p.groups = take_groups(/*final_sweep=*/true);
  return p;
}

MergePlan InterleavedMergePlanner::plan(std::uint64_t tasklets_done,
                                        std::uint64_t num_tasklets,
                                        bool analysis_complete) {
  MergePlan p;
  if (!analysis_complete) {
    const double frac = num_tasklets
                            ? static_cast<double>(tasklets_done) /
                                  static_cast<double>(num_tasklets)
                            : 0.0;
    if (frac < policy_.start_fraction) return p;
  }
  p.groups = take_groups(analysis_complete);
  return p;
}

MergePlan HadoopMergePlanner::plan(std::uint64_t, std::uint64_t,
                                   bool analysis_complete) {
  MergePlan p;
  if (analysis_complete && !triggered_) {
    triggered_ = true;
    p.start_hadoop = true;
  }
  return p;
}

std::unique_ptr<MergePlanner> MergePlanner::make(
    core::MergeMode mode, const core::MergePolicy& policy) {
  switch (mode) {
    case core::MergeMode::Sequential:
      return std::make_unique<SequentialMergePlanner>(policy);
    case core::MergeMode::Interleaved:
      return std::make_unique<InterleavedMergePlanner>(policy);
    case core::MergeMode::Hadoop:
      return std::make_unique<HadoopMergePlanner>(policy);
  }
  throw std::invalid_argument("merge: unknown mode");
}

}  // namespace lobster::lobsim

// availability.hpp — pluggable worker-availability models for SiteManager.
//
// The paper's core premise is running on *non-dedicated* resources whose
// availability is empirically measured and highly variable (§3, Figure 2).
// Which climate a site lives under changes the optimal task-sizing answer
// (the Figure 3 trade-off), so the climate is a pluggable layer like the
// DispatchPolicy and MergePlanner: one interface, four implementations,
// one factory, selectable from a scenario INI (`availability = ...`).
//
//   weibull           — the synthesized empirical log the engine has always
//                       used: 50k Weibull(shape, scale) lifetimes replayed
//                       through an inverse-CDF draw (bit-for-bit the legacy
//                       behaviour);
//   trace             — replay a real eviction-interval log (e.g. parsed
//                       from HTCondor logs) loaded from a CSV, cycling with
//                       per-worker phase offsets;
//   diurnal           — day/night sinusoidal modulation of the Weibull
//                       scale over simulated time (campus machines are
//                       reclaimed by interactive users during the day);
//   adversarial-burst — correlated mass-eviction events on a fixed period,
//                       the worst case for merge-group loss.
//
// AvailabilityModel extends core::EvictionModel, so every model also plugs
// into the §4.1 task-size Monte Carlo (fig03/fig12), and it exposes
// expected_lifetime(now) — the queryable distribution the ROADMAP's
// expected-lifetime DispatchPolicy needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/task_size_model.hpp"
#include "util/rng.hpp"

namespace lobster::lobsim {

enum class AvailabilityKind { Weibull, Trace, Diurnal, AdversarialBurst };

const char* to_string(AvailabilityKind kind);

/// One site's availability climate.  The Weibull shape/scale double as the
/// base climate of the diurnal and burst models.
struct AvailabilityConfig {
  AvailabilityKind kind = AvailabilityKind::Weibull;
  double scale_hours = 4.0;  ///< Weibull scale (Figure 2 calibration)
  double shape = 0.8;        ///< Weibull shape (< 1: decreasing hazard)

  /// Trace replay: eviction intervals in seconds.  `trace` (preloaded,
  /// shareable across campaign runs) takes precedence over `trace_path`
  /// (a CSV loaded once per SiteManager).
  std::string trace_path;
  std::shared_ptr<const std::vector<double>> trace;

  /// Diurnal: fractional modulation of the scale, in [0, 1).  The scale
  /// bottoms out at scale*(1-amplitude) at `peak_hour` (harshest eviction)
  /// and peaks at scale*(1+amplitude) twelve hours later.
  double diurnal_amplitude = 0.6;
  double diurnal_peak_hour = 14.0;  ///< simulated hour-of-day, [0, 24)

  /// Adversarial bursts: every `burst_period_hours` a mass-eviction event
  /// claims `burst_fraction` of the then-running workers simultaneously.
  double burst_period_hours = 6.0;
  double burst_fraction = 0.5;
};

/// Survival-time model for a (re)started worker incarnation, extended with
/// the simulated start time and a replay phase.  The base-class
/// sample_survival(rng) keeps every model usable by the core task-size
/// Monte Carlo, which has no clock.
class AvailabilityModel : public core::EvictionModel {
 public:
  /// Draw the survival time of an incarnation starting at `now`.  `rng` is
  /// the worker's private stream; `phase` is the worker's replay position
  /// (per-worker offset + incarnation index), used by trace replay so
  /// concurrent workers walk different sections of the log.
  virtual double sample_survival_at(util::Rng& rng, double now,
                                    std::uint64_t phase) const = 0;
  /// Expected lifetime of a fresh incarnation starting at `now` — the
  /// queryable distribution an expected-lifetime DispatchPolicy sizes
  /// tasks against.
  virtual double expected_lifetime(double now) const = 0;

  double sample_survival(util::Rng& rng) const override {
    return sample_survival_at(rng, 0.0, 0);
  }
};

/// Dedicated resources (evictions disabled): infinite survival.
class AlwaysAvailable final : public AvailabilityModel {
 public:
  double sample_survival_at(util::Rng&, double, std::uint64_t) const override;
  double expected_lifetime(double) const override;
  const char* name() const override { return "none"; }
};

/// The legacy climate: a synthesized 50k-lifetime Weibull availability log
/// replayed through an empirical inverse-CDF draw, exactly as SiteManager
/// has always done it (bit-for-bit, given the same log stream).
class WeibullAvailability final : public AvailabilityModel {
 public:
  WeibullAvailability(util::Rng log_stream, double shape, double scale_hours);
  double sample_survival_at(util::Rng& rng, double now,
                            std::uint64_t phase) const override;
  double expected_lifetime(double now) const override;
  const char* name() const override { return "weibull"; }
  const util::EmpiricalDistribution& distribution() const { return dist_; }

 private:
  util::EmpiricalDistribution dist_;
};

/// Replay of a recorded eviction-interval log.  Worker w's incarnation k
/// reads entry (phase_w + k) mod n — a cycling replay with per-worker
/// phase offsets, so the whole log is covered without two workers marching
/// in lockstep, and without consuming the worker's RNG stream.
class TraceAvailability final : public AvailabilityModel {
 public:
  explicit TraceAvailability(
      std::shared_ptr<const std::vector<double>> intervals);
  double sample_survival_at(util::Rng& rng, double now,
                            std::uint64_t phase) const override;
  /// Clock-free draw (task-size Monte Carlo): uniform over the log.
  double sample_survival(util::Rng& rng) const override;
  double expected_lifetime(double now) const override;
  const char* name() const override { return "trace"; }
  std::size_t size() const { return intervals_->size(); }

 private:
  std::shared_ptr<const std::vector<double>> intervals_;
  double mean_ = 0.0;
};

/// Day/night climate: Weibull survival whose scale is modulated
/// sinusoidally over the simulated day.  At `peak_hour` the scale bottoms
/// out (interactive users reclaim their machines); twelve hours later the
/// pool is calmest.
class DiurnalAvailability final : public AvailabilityModel {
 public:
  DiurnalAvailability(double shape, double scale_hours, double amplitude,
                      double peak_hour);
  double sample_survival_at(util::Rng& rng, double now,
                            std::uint64_t phase) const override;
  double expected_lifetime(double now) const override;
  const char* name() const override { return "diurnal"; }
  /// The modulated scale (seconds) at simulated time `now`.
  double scale_at(double now) const;

 private:
  double shape_;
  double scale_seconds_;
  double amplitude_;
  double peak_hour_;
  double mean_factor_;  ///< Gamma(1 + 1/shape): Weibull mean / scale
};

/// Correlated mass evictions: every `period` seconds a burst claims
/// `fraction` of the running workers at the same instant (a batch-system
/// drain, a priority preemption wave) — the worst case for merge-group
/// loss because co-scheduled tasks die together.  Between bursts the
/// survivors live under the calm Weibull base climate.
class AdversarialBurstAvailability final : public AvailabilityModel {
 public:
  AdversarialBurstAvailability(double shape, double scale_hours,
                               double period_hours, double fraction);
  double sample_survival_at(util::Rng& rng, double now,
                            std::uint64_t phase) const override;
  double expected_lifetime(double now) const override;
  const char* name() const override { return "adversarial-burst"; }
  /// The first burst instant strictly after `now`.
  double next_burst(double now) const;

 private:
  double shape_;
  double scale_seconds_;
  double period_;
  double fraction_;
  double mean_factor_;
};

/// Build a model from its config.  `log_stream` seeds the synthesized
/// Weibull log (the legacy `rng.stream("availability", site)` stream, so
/// `weibull` reproduces the pre-refactor engine bit-for-bit); the other
/// models ignore it.  Throws std::invalid_argument on bad parameters or an
/// unreadable/empty trace.
std::unique_ptr<AvailabilityModel> make_availability_model(
    const AvailabilityConfig& config, const util::Rng& log_stream);

/// Parse the scenario-INI / CLI spec syntax:
///
///   weibull[:scale=H,shape=S]
///   trace:PATH            (or trace:path=PATH)
///   diurnal[:scale=H,shape=S,amplitude=A,peak=HOUR]
///   adversarial-burst[:period=H,fraction=F,scale=H,shape=S]
///
/// Unknown kinds or keys throw std::invalid_argument.  scale/period accept
/// plain hours or duration suffixes ("90m", "1.5h").
AvailabilityConfig parse_availability_spec(const std::string& spec);

/// Load an eviction-interval trace: one or more comma-separated interval
/// values (seconds) per line; '#' comments and blank lines are skipped.
/// Throws std::invalid_argument on unreadable files, non-numeric fields,
/// non-positive intervals, or an empty trace.
std::vector<double> load_trace_csv(const std::string& path);

}  // namespace lobster::lobsim

// advisor.hpp — the online advisor loop (paper §5, promoted from
// post-mortem to control).
//
// The paper's dashboard rules told a human operator what to change: shrink
// the task size when lost runtime climbs, add squid capacity when setup
// times stretch, wait out an outage instead of hammering the federation.
// The Advisor closes that loop inside the simulation: the Engine ticks it
// on a fixed simulated-time period, each tick diffs the Monitor's
// cumulative aggregates into a per-window breakdown, runs the *same*
// diagnose_breakdown() rules the offline report uses, and actuates through
// the narrow AdvisorActions interface below.
//
// Determinism is a hard requirement (campaigns pin advisor-on runs bitwise
// identical serial vs parallel): no RNG, no wall clock — every decision is
// a pure function of the counter plane and simulated time, and the state
// is a handful of scalars.
#pragma once

#include <cstdint>
#include <vector>

#include "core/monitor.hpp"
#include "util/trace.hpp"

namespace lobster::lobsim {

/// Tunables of the online loop.  The thresholds are the same struct the
/// offline diagnosis uses, applied to per-window (not cumulative) wall.
struct AdvisorConfig {
  bool enabled = false;
  /// Simulated seconds between ticks (the observation window length).
  double period = 300.0;
  core::AdvisorThresholds thresholds;
  /// LostRuntime actuation: multiply the task-size cap by this per firing
  /// tick, floored at min_task_size.
  double shrink_factor = 0.5;
  std::uint32_t min_task_size = 1;
  /// SetupTime/Staging actuation: grant only this fraction of task pulls
  /// while the symptom is hot (squid/chirp load is superlinear in the
  /// number of concurrent clients, so shedding dispatch concurrency shrinks
  /// *total* wall, not just per-task wall).
  double throttle_share = 0.30;
  /// FailureBurst actuation: the probe trickle kept alive during an outage
  /// so recovery is observable (a fully drained site sees nothing).
  double probe_share = 0.05;
  /// Proxy-plane trigger: throttle when the squid fleet's windowed
  /// retransmit waste (cvmfs.squid.bytes_thrashed) exceeds this fraction of
  /// the bytes it served in the same window.  Completion-window rules lag by
  /// a full task latency; thrash bytes accrue while the overload is live, so
  /// this is the timely form of the "overloaded squid proxy" diagnosis.
  double proxy_waste_fraction = 0.05;
  /// Restore a rung of dispatch share once the causing symptom's windowed
  /// fraction drops below recover_factor * its trigger threshold.
  double recover_factor = 0.5;
  /// Share added per clean tick while restoring (0 -> probe_share first,
  /// then + restore_step up to 1).  A full-share jump would re-admit every
  /// deferred cold worker at once and recreate the very burst the throttle
  /// shed; the additive climb paces them out, and a symptom that reappears
  /// mid-climb re-throttles within one period.
  double restore_step = 0.25;
  /// EWMA time constant for the smoothed failure rate exported with every
  /// tick (observability only; decisions use the raw window).
  double ewma_tau = 600.0;
};

/// What the Advisor is allowed to touch — the whole actuation surface, so
/// the control loop cannot silently grow side channels into the Engine.
class AdvisorActions {
 public:
  virtual ~AdvisorActions() = default;
  /// Ceiling on analysis-task tasklet count (0 = no cap).
  virtual void set_task_size_cap(std::uint32_t cap) = 0;
  /// Fraction of `site`'s task pulls that may be granted: 1 = unthrottled,
  /// 0 = drained (no new work; running tasks finish).
  virtual void set_dispatch_share(std::size_t site, double share) = 0;
};

/// One actuation (or advice) taken at a tick; the Engine mirrors each onto
/// the trace plane as an instant plus a lobsim.advisor.* counter.
struct AdvisorDecision {
  enum class Kind : std::uint8_t { Shrink, Throttle, Drain, Restore, Advise };
  Kind kind = Kind::Advise;
  core::DiagnosisRule rule = core::DiagnosisRule::LostRuntime;
  /// New cap (Shrink) or new dispatch share (Throttle/Drain/Restore).
  double value = 0.0;
  double severity = 0.0;  ///< of the triggering diagnosis, 0..1
};
const char* to_string(AdvisorDecision::Kind k);

/// Infrastructure-side inputs for one observation window, already windowed
/// by the caller (the Engine diffs counter-plane snapshots per tick via
/// CounterRegistry::snapshot_delta).  Zero-initialized means "no proxy
/// evidence this window" and disables the proxy trigger.
struct AdvisorGauges {
  double proxy_bytes_served = 0.0;    ///< cvmfs.squid.bytes_served delta
  double proxy_bytes_thrashed = 0.0;  ///< cvmfs.squid.bytes_thrashed delta
};

class Advisor {
 public:
  /// `initial_task_size` seeds the shrink ladder (the workload's
  /// tasklets_per_task); `num_sites` scopes the share actuation.
  Advisor(const AdvisorConfig& config, std::uint32_t initial_task_size,
          std::size_t num_sites);

  /// Evaluate one observation window ending at `now` and actuate.  The
  /// monitor supplies cumulative aggregates; the Advisor windows them by
  /// diffing against the previous tick.  `gauges` carries the counter-plane
  /// window rates the Engine sampled for this tick.  Returns the decisions
  /// taken, in deterministic order.
  std::vector<AdvisorDecision> tick(double now, const core::Monitor& monitor,
                                    const AdvisorGauges& gauges,
                                    AdvisorActions& actions);

  [[nodiscard]] const AdvisorConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t shrinks() const { return shrinks_; }
  [[nodiscard]] std::uint64_t throttles() const { return throttles_; }
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  [[nodiscard]] std::uint64_t restores() const { return restores_; }
  /// Current task-size cap (0 = none) and dispatch share.
  [[nodiscard]] std::uint32_t task_size_cap() const { return cap_; }
  [[nodiscard]] double dispatch_share() const { return share_; }
  /// Smoothed failed-task wall seconds per second (EWMA over ticks).
  [[nodiscard]] double failure_ewma() const { return failure_ewma_.rate(); }
  /// Last window's proxy waste fraction (thrashed / served bytes, 0..1).
  [[nodiscard]] double proxy_waste_frac() const { return proxy_frac_; }

 private:
  void apply_share(double share, AdvisorActions& actions);

  AdvisorConfig cfg_;
  std::uint32_t initial_task_size_;
  std::size_t num_sites_;

  // Previous-tick cumulative aggregates (the window baseline).
  core::RuntimeBreakdown prev_breakdown_;
  double prev_lost_ = 0.0;
  double prev_dispatch_ = 0.0;

  std::uint32_t cap_ = 0;    ///< 0 = no cap yet
  double share_ = 1.0;       ///< current dispatch share, all sites
  core::DiagnosisRule cause_ = core::DiagnosisRule::FailureBurst;
  /// True when the current throttle was triggered by the proxy-plane waste
  /// rate; recovery then watches that rate, not the lagged completion rule.
  bool cause_proxy_ = false;
  double proxy_frac_ = 0.0;  ///< last window's thrashed/served fraction

  util::EwmaRate failure_ewma_;

  std::uint64_t ticks_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t throttles_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace lobster::lobsim

#include "lobsim/site_manager.hpp"

#include <stdexcept>

namespace lobster::lobsim {

SiteManager::SiteManager(des::Simulation& sim, const ClusterParams& cluster,
                         const util::Rng& rng)
    : sim_(sim),
      cores_per_worker_(std::max<std::size_t>(1, cluster.cores_per_worker)),
      rejoin_mean_seconds_(cluster.rejoin_mean_seconds),
      rng_(rng) {
  // Site 0 is always the home campus; extra_sites are harvested alongside
  // it (paper §7), each with its own WAN path, squids and eviction climate.
  std::vector<SiteParams> site_params;
  SiteParams home;
  home.name = "home";
  home.target_cores = cluster.target_cores;
  home.ramp_seconds = cluster.ramp_seconds;
  home.availability_scale_hours = cluster.availability_scale_hours;
  home.availability_shape = cluster.availability_shape;
  home.evictions = cluster.evictions;
  home.num_squids = cluster.num_squids;
  home.squid = cluster.squid;
  home.federation = cluster.federation;
  site_params.push_back(home);
  for (const auto& s : cluster.extra_sites) site_params.push_back(s);

  for (std::size_t i = 0; i < site_params.size(); ++i) {
    const auto& p = site_params[i];
    if (p.num_squids == 0)
      throw std::invalid_argument("engine: site needs at least one squid");
    Site site;
    site.params = p;
    site.federation =
        std::make_unique<xrootd::FederationSim>(sim_, p.federation);
    for (std::size_t q = 0; q < p.num_squids; ++q)
      site.squids.push_back(std::make_unique<cvmfs::SquidSim>(sim_, p.squid));
    if (p.evictions) {
      auto log = core::synthesize_availability_log(
          50000, rng_.stream("availability", i), p.availability_shape,
          p.availability_scale_hours);
      site.eviction = std::make_unique<core::EmpiricalEviction>(
          util::EmpiricalDistribution(std::move(log)));
    } else {
      site.eviction = std::make_unique<core::NoEviction>();
    }
    sites_.push_back(std::move(site));
  }
  total_slots_ = 0;
  for (const auto& site : sites_) total_slots_ += site.params.target_cores;
}

void SiteManager::schedule_outage(double start, double duration) {
  for (auto& site : sites_) site.federation->schedule_outage(start, duration);
}

void SiteManager::start(SlotBody slot_body, DonePredicate done,
                        double time_cap) {
  slot_body_ = std::move(slot_body);
  done_ = std::move(done);
  time_cap_ = time_cap;
  for (std::size_t s = 0; s < sites_.size(); ++s)
    sim_.spawn(site_batch_system(s));
}

des::Process SiteManager::site_batch_system(std::size_t site_index) {
  const Site& site = sites_[site_index];
  if (site.params.target_cores == 0) co_return;
  const std::size_t num_workers =
      std::max<std::size_t>(1, site.params.target_cores / cores_per_worker_);
  for (std::size_t w = 0; w < num_workers; ++w) {
    auto node = std::make_shared<WorkerNode>();
    node->id = w;
    node->site = site_index;
    node->rng = rng_.stream("node." + std::to_string(site_index), w);
    node->squid = w % site.squids.size();
    sim_.spawn(worker_life(node));
    // Stagger worker arrivals across the site's ramp window.
    co_await sim_.delay(site.params.ramp_seconds /
                        static_cast<double>(num_workers));
    if (done_()) co_return;
  }
}

des::Process SiteManager::worker_life(std::shared_ptr<WorkerNode> node) {
  while (!done_() && sim_.now() < time_cap_) {
    // A new life: fresh survival draw, cold cache.
    node->alive = true;
    node->death =
        sim_.now() + sites_[node->site].eviction->sample_survival(node->rng);
    node->cache_state = WorkerNode::CacheState::Cold;
    node->cache_round = sim_.make_event();
    node->slot_head_ready.assign(cores_per_worker_, false);
    node->cache_lock = std::make_unique<des::Resource>(sim_, 1);

    std::vector<des::ProcessRef> slots;
    slots.reserve(cores_per_worker_);
    for (std::size_t s = 0; s < cores_per_worker_; ++s)
      slots.push_back(sim_.spawn(slot_body_(node, s)));
    for (auto& ref : slots) co_await ref.done();
    node->alive = false;
    if (done_()) co_return;
    // Evicted: the batch system hands the node back after a backoff.
    co_await sim_.delay(node->rng.exponential(rejoin_mean_seconds_));
  }
}

}  // namespace lobster::lobsim

#include "lobsim/site_manager.hpp"

#include <stdexcept>

namespace lobster::lobsim {

SiteManager::SiteManager(des::Simulation& sim, const ClusterParams& cluster,
                         const util::Rng& rng)
    : sim_(sim),
      cores_per_worker_(std::max<std::size_t>(1, cluster.cores_per_worker)),
      rejoin_mean_seconds_(cluster.rejoin_mean_seconds),
      rng_(rng) {
  // Site 0 is always the home campus; extra_sites are harvested alongside
  // it (paper §7), each with its own WAN path, squids and eviction climate.
  std::vector<SiteParams> site_params;
  SiteParams home;
  home.name = "home";
  home.target_cores = cluster.target_cores;
  home.ramp_seconds = cluster.ramp_seconds;
  home.availability = cluster.availability;
  home.evictions = cluster.evictions;
  home.num_squids = cluster.num_squids;
  home.squid = cluster.squid;
  home.federation = cluster.federation;
  site_params.push_back(home);
  for (const auto& s : cluster.extra_sites) site_params.push_back(s);

  for (std::size_t i = 0; i < site_params.size(); ++i) {
    const auto& p = site_params[i];
    if (p.num_squids == 0)
      throw std::invalid_argument("engine: site needs at least one squid");
    Site site;
    site.params = p;
    site.federation =
        std::make_unique<xrootd::FederationSim>(sim_, p.federation);
    for (std::size_t q = 0; q < p.num_squids; ++q)
      site.squids.push_back(std::make_unique<cvmfs::SquidSim>(sim_, p.squid));
    if (p.evictions) {
      // The "availability" stream name and per-site index are load-bearing:
      // they are what the engine used before the model became pluggable, so
      // the weibull model reproduces the old runs bit-for-bit.
      site.availability = make_availability_model(
          p.availability, rng_.stream("availability", i));
    } else {
      site.availability = std::make_unique<AlwaysAvailable>();
    }
    sites_.push_back(std::move(site));
  }
  total_slots_ = 0;
  for (const auto& site : sites_) total_slots_ += site.params.target_cores;

  // Preallocate every site's dense node array up front: worker handles
  // index into stable storage for the whole run, and the per-node RNG
  // streams / replay phases are pure derivations (no rng_ state consumed),
  // so building them here is bit-identical to the old lazy construction
  // during the ramp.
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    Site& site = sites_[i];
    if (site.params.target_cores == 0) continue;
    const std::size_t num_workers = std::max<std::size_t>(
        1, site.params.target_cores / cores_per_worker_);
    site.nodes.resize(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      WorkerNode& node = site.nodes[w];
      node.id = w;
      node.site = i;
      node.rng = rng_.stream("node." + std::to_string(i), w);
      // Scatter trace-replay phases without consuming the node's RNG
      // stream (which must keep matching the legacy draw sequence
      // bit-for-bit).
      std::uint64_t phase_state =
          (static_cast<std::uint64_t>(i) << 32) ^ w;
      node.avail_phase = util::splitmix64(phase_state);
      node.squid = w % site.squids.size();
    }
  }
}

void SiteManager::schedule_outage(double start, double duration) {
  for (auto& site : sites_) site.federation->schedule_outage(start, duration);
}

void SiteManager::start(SlotBody slot_body, DonePredicate done,
                        double time_cap) {
  slot_body_ = std::move(slot_body);
  done_ = std::move(done);
  time_cap_ = time_cap;
  for (std::size_t s = 0; s < sites_.size(); ++s)
    sim_.spawn(site_batch_system(s));
}

des::Process SiteManager::site_batch_system(std::size_t site_index) {
  const Site& site = sites_[site_index];
  const std::size_t num_workers = site.nodes.size();
  if (num_workers == 0) co_return;
  for (std::size_t w = 0; w < num_workers; ++w) {
    sim_.spawn(worker_life(NodeHandle{static_cast<std::uint32_t>(site_index),
                                      static_cast<std::uint32_t>(w)}));
    // Stagger worker arrivals across the site's ramp window.
    co_await sim_.delay(site.params.ramp_seconds /
                        static_cast<double>(num_workers));
    if (done_()) co_return;
  }
}

des::Process SiteManager::worker_life(NodeHandle handle) {
  // The dense node arrays never resize, so this reference stays valid
  // across every suspension below.
  WorkerNode& node = sites_[handle.site].nodes[handle.index];
  std::uint64_t incarnation = 0;
  while (!done_() && sim_.now() < time_cap_) {
    // A new life: fresh survival draw, cold cache.
    node.alive = true;
    node.death =
        sim_.now() + sites_[node.site].availability->sample_survival_at(
                         node.rng, sim_.now(),
                         node.avail_phase + incarnation);
    ++incarnation;
    node.cache_state = WorkerNode::CacheState::Cold;
    node.cache_round = sim_.make_event();
    node.slot_head_ready.assign(cores_per_worker_, false);
    node.cache_lock = std::make_unique<des::Resource>(sim_, 1);

    std::vector<des::ProcessRef> slots;
    slots.reserve(cores_per_worker_);
    for (std::size_t s = 0; s < cores_per_worker_; ++s)
      slots.push_back(sim_.spawn(slot_body_(handle, s)));
    for (auto& ref : slots) co_await ref.done();
    node.alive = false;
    if (done_()) co_return;
    // Evicted: the batch system hands the node back after a backoff.
    co_await sim_.delay(node.rng.exponential(rejoin_mean_seconds_));
  }
}

}  // namespace lobster::lobsim

// merge_planner.hpp — output-merge planning, extracted from the Engine.
//
// Completed analysis outputs (10-100 MB each; paper §4.4) must be merged
// into 3-4 GB files before publication.  The Engine used to interleave the
// three strategies inside maybe_plan_merges(); each now lives behind one
// interface so the Figure 7 comparison is a policy swap:
//
//  * Sequential  — no merge tasks until every analysis task is done, then
//                  the whole pool is grouped and dispatched like analysis;
//  * Interleaved — groups are planned as soon as >= start_fraction of the
//                  workflow is processed and enough outputs exist to fill a
//                  merged file (the production mode);
//  * Hadoop      — nothing is dispatched to workers; when analysis ends the
//                  plan asks the Engine to run the in-storage Map-Reduce
//                  over take_hadoop_groups().
//
// The planner owns the unmerged-output pool and is pure logic over sizes —
// no DES types — mirroring core::plan_merges() semantics (greedy FIFO
// grouping, full groups only mid-run, remainder flushed on the final
// sweep).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/merge.hpp"

namespace lobster::lobsim {

/// Outcome of one planning pass.
struct MergePlan {
  /// Input volume of each newly planned merge task (worker-dispatched).
  std::vector<double> groups;
  /// Hadoop mode: start the in-storage Map-Reduce job now (at most once).
  bool start_hadoop = false;
};

class MergePlanner {
 public:
  static std::unique_ptr<MergePlanner> make(core::MergeMode mode,
                                            const core::MergePolicy& policy);
  virtual ~MergePlanner() = default;
  virtual const char* name() const = 0;
  virtual core::MergeMode mode() const = 0;

  // ---- the unmerged-output pool (owned here; the Engine only feeds it) ----

  /// A completed analysis task's output enters the pool.
  void add_output(double bytes) {
    outputs_.push_back(bytes);
    bytes_ += bytes;
  }
  /// A failed merge task's inputs return to the pool as one blob.
  void return_group(double bytes) { add_output(bytes); }

  double unmerged_bytes() const { return bytes_; }
  std::size_t unmerged_count() const { return outputs_.size(); }
  bool drained() const { return outputs_.empty(); }

  /// Called after every task completion.  `analysis_complete` marks the
  /// final sweep: every tasklet processed, nothing pending retry.
  virtual MergePlan plan(std::uint64_t tasklets_done,
                         std::uint64_t num_tasklets,
                         bool analysis_complete) = 0;

  /// Hadoop: drain the pool into reduce groups near the target size (the
  /// map phase of the §4.4 job).  Leaves the pool empty.
  std::vector<double> take_hadoop_groups();

  const core::MergePolicy& policy() const { return policy_; }

 protected:
  explicit MergePlanner(const core::MergePolicy& policy) : policy_(policy) {}

  /// Greedy FIFO grouping: emit groups of >= target*min_fill bytes; when
  /// `final_sweep`, also flush the underfull remainder.  The last output of
  /// a group may overshoot the target ("files of 3-4 GB", paper §4.4) —
  /// insisting on an exact ceiling could make full groups unconstructible
  /// for large outputs.
  std::vector<double> take_groups(bool final_sweep);

  core::MergePolicy policy_;
  std::deque<double> outputs_;
  double bytes_ = 0.0;
};

/// Merge only after the full analysis pass (Figure 7 "sequential").
class SequentialMergePlanner final : public MergePlanner {
 public:
  explicit SequentialMergePlanner(const core::MergePolicy& policy)
      : MergePlanner(policy) {}
  const char* name() const override { return "sequential"; }
  core::MergeMode mode() const override { return core::MergeMode::Sequential; }
  MergePlan plan(std::uint64_t, std::uint64_t, bool analysis_complete) override;
};

/// Merge concurrently with analysis once the workflow is warmed up
/// (Figure 7 "interleaved" — the production mode).
class InterleavedMergePlanner final : public MergePlanner {
 public:
  explicit InterleavedMergePlanner(const core::MergePolicy& policy)
      : MergePlanner(policy) {}
  const char* name() const override { return "interleaved"; }
  core::MergeMode mode() const override { return core::MergeMode::Interleaved; }
  MergePlan plan(std::uint64_t tasklets_done, std::uint64_t num_tasklets,
                 bool analysis_complete) override;
};

/// Merge inside the storage cluster via Map-Reduce (Figure 7 "hadoop").
class HadoopMergePlanner final : public MergePlanner {
 public:
  explicit HadoopMergePlanner(const core::MergePolicy& policy)
      : MergePlanner(policy) {}
  const char* name() const override { return "hadoop"; }
  core::MergeMode mode() const override { return core::MergeMode::Hadoop; }
  MergePlan plan(std::uint64_t, std::uint64_t, bool analysis_complete) override;

 private:
  bool triggered_ = false;
};

}  // namespace lobster::lobsim

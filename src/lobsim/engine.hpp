// engine.hpp — the cluster-scale simulation engine.
//
// This is the testbed substitute for the paper's production environment:
// an opportunistic HTCondor pool at Notre Dame (~10-20k cores in bursts),
// the CMS data federation behind a 10 Gbit/s campus uplink, squid proxy
// caches for CVMFS, and a Chirp server in front of Hadoop storage.  All of
// it is modelled on the des:: kernel with parameters stated in the paper,
// and the Lobster scheduling semantics (task construction from tasklets,
// retry-on-eviction, interleaved merging) mirror core::Scheduler.
//
// One Engine instance runs one workload scenario and exposes the metrics
// each figure needs (timelines, runtime breakdown, infrastructure gauges).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "chirp/chirp.hpp"
#include "core/config.hpp"
#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/monitor.hpp"
#include "core/task_size_model.hpp"
#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/squid.hpp"
#include "des/queue.hpp"
#include "des/simulation.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "xrootd/federation.hpp"

namespace lobster::lobsim {

/// An additional remote site contributing opportunistic workers (paper §7:
/// "Lobster's design makes it possible to harvest resources from several
/// clusters, and even commercial clouds, together").  Each site brings its
/// own WAN path and squid; outputs still flow to the home Chirp server.
struct SiteParams {
  std::string name = "remote";
  std::size_t target_cores = 0;
  double ramp_seconds = 3600.0;
  /// Per-site availability (a commercial cloud is effectively dedicated
  /// while paid for; a borrowed HPC partition may be harsher than campus).
  double availability_scale_hours = 4.0;
  double availability_shape = 0.8;
  bool evictions = true;
  std::size_t num_squids = 1;
  cvmfs::SquidSim::Params squid;
  xrootd::FederationSim::Params federation;
};

/// Cluster and infrastructure parameters.
struct ClusterParams {
  std::size_t target_cores = 10000;
  std::size_t cores_per_worker = 8;  ///< paper §3: 8-core workers
  /// Workers join gradually (batch system grants) over this window.
  double ramp_seconds = 3600.0;
  /// Availability model: Weibull availability like the Figure 2 logs.
  double availability_scale_hours = 4.0;
  double availability_shape = 0.8;
  /// Evicted workers return after an exponential backoff with this mean.
  double rejoin_mean_seconds = 1800.0;
  /// When false, workers are dedicated (no eviction) — ablation switch.
  bool evictions = true;

  /// Foreman fan-out: sandboxes and task payloads reach workers through
  /// `num_foremen` intermediaries, each with `foreman_uplink_rate` of
  /// outbound bandwidth (paper §3: "one intermediate rank of four foremen").
  std::size_t num_foremen = 4;
  double foreman_uplink_rate = 1.25e8;  // 1 Gbit/s each

  std::size_t num_squids = 1;
  cvmfs::SquidSim::Params squid;
  chirp::ChirpSim::Params chirp;
  xrootd::FederationSim::Params federation;

  /// Extra sites harvested alongside the home campus (index 0 is always
  /// the home site built from the fields above).
  std::vector<SiteParams> extra_sites;
};

/// Workload parameters (one workflow).
struct WorkloadParams {
  std::uint64_t num_tasklets = 100000;
  std::uint32_t tasklets_per_task = 6;  ///< ~1 h at 10 min/tasklet
  double tasklet_cpu_mean = 600.0;      ///< N(10, 5) minutes, truncated
  double tasklet_cpu_sigma = 300.0;
  /// Input volume consumed per tasklet (0 for simulation workloads).
  double tasklet_input_bytes = 300.0e6;
  /// Fraction of the input a streaming task actually reads: an analysis
  /// "contains only a fraction of the information present in the input
  /// data" (paper §4.2) — this is why streaming beats staging in Figure 4,
  /// since staging must transfer whole files up front.
  double read_fraction = 0.30;
  /// Output volume produced per tasklet.
  double tasklet_output_bytes = 15.0e6;
  core::DataAccessMode access = core::DataAccessMode::Stream;
  /// Software working set (cold cache cost; paper: ~1.5 GB per cache),
  /// split into a head every task shares and a per-task tail.
  double release_shared_bytes = 1.3e9;
  double release_tail_bytes = 0.2e9;
  /// Hot-cache per-task setup traffic (catalog checks, small misses).
  double hot_setup_bytes = 25.0e6;
  cvmfs::CacheMode cache_mode = cvmfs::CacheMode::Alien;
  /// Per-tasklet extra input for simulation workloads (pile-up overlay).
  double pileup_bytes = 5.0e6;
  /// Per-task payload sent from the master through the foremen (sandbox,
  /// configuration, input manifests) — the "WQ Stage In" row of Figure 8.
  double sandbox_bytes = 50.0e6;
  /// A slot that just watched its task fail backs off before pulling new
  /// work (the wrapper's retry discipline; damps outage retry storms).
  double failure_backoff = 300.0;
  /// Shrink tasks to single tasklets once the pending pool is smaller than
  /// the slot count: at the drain phase, long tasks only deepen the
  /// eviction-retry chains of the last stragglers.  This is the task-size
  /// adaptivity the paper lists as future work (§8); it is OFF by default
  /// so the engine mirrors the production system the paper measured.
  bool tail_shrink = false;
  std::uint32_t max_attempts = 50;

  core::MergeMode merge_mode = core::MergeMode::Interleaved;
  core::MergePolicy merge_policy;
  /// Merge task transfer behaviour: inputs via XrootD, outputs via Chirp
  /// (paper §4.4); CPU cost per merged byte is negligible.
  double merge_cpu_per_gb = 10.0;
  /// Hadoop-mode merging: concurrent reducers, their HDFS-local rate, and
  /// the per-reducer overhead of transferring the small files to the local
  /// machine and creating the HEP environment there (paper §4.4).
  std::int64_t hadoop_reduce_slots = 16;
  double hadoop_local_rate = 2.5e8;
  double hadoop_reduce_setup = 240.0;
};

/// What happened — everything the figure benches print.
struct EngineMetrics {
  explicit EngineMetrics(double bin_seconds)
      : monitor(bin_seconds),
        analysis_done(0.0, bin_seconds),
        merge_done(0.0, bin_seconds),
        failures(0.0, bin_seconds) {}

  core::Monitor monitor;
  util::TimeSeries analysis_done;
  util::TimeSeries merge_done;
  util::TimeSeries failures;
  /// (time, exit code) of every failed task — Figure 11 bottom panel.
  std::vector<std::pair<double, int>> failure_events;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_evicted = 0;
  std::uint64_t merge_tasks_completed = 0;
  std::uint64_t tasklets_processed = 0;
  double last_analysis_finish = 0.0;
  double last_merge_finish = 0.0;
  double bytes_streamed = 0.0;
  double bytes_staged = 0.0;
  double bytes_staged_out = 0.0;
  double makespan = 0.0;
  /// Peak of the running-tasks gauge.
  std::size_t peak_running = 0;
};

class Engine {
 public:
  Engine(ClusterParams cluster, WorkloadParams workload, std::uint64_t seed,
         double metric_bin_seconds = 600.0);
  ~Engine();

  /// Run to completion (or until `time_cap` seconds of simulated time).
  /// Returns the collected metrics.
  const EngineMetrics& run(double time_cap = 10.0 * 86400.0);

  const EngineMetrics& metrics() const { return *metrics_; }
  des::Simulation& sim() { return sim_; }
  /// Home-site federation (site 0).
  xrootd::FederationSim& federation() { return *sites_.front().federation; }
  xrootd::FederationSim& federation(std::size_t site) {
    return *sites_.at(site).federation;
  }
  des::BandwidthLink& foreman_fanout() { return *foreman_fanout_; }
  chirp::ChirpSim& chirp() { return *chirp_; }
  /// Home-site squids (site 0).
  cvmfs::SquidSim& squid(std::size_t i) { return *sites_.front().squids.at(i); }
  cvmfs::SquidSim& squid(std::size_t site, std::size_t i) {
    return *sites_.at(site).squids.at(i);
  }
  std::size_t num_sites() const { return sites_.size(); }
  /// Tasklets processed by each site's workers (index as in params).
  const std::vector<std::uint64_t>& per_site_tasklets() const {
    return per_site_tasklets_;
  }

  /// Inject a WAN outage (Figure 10's transient failure burst).
  void schedule_outage(double start, double duration);

 private:
  struct WorkerNode;
  struct TaskUnit;

  des::Process batch_system();
  des::Process site_batch_system(std::size_t site_index);
  des::Process gauge_sampler(double period);
  des::Process worker_life(std::shared_ptr<WorkerNode> node);
  des::Process core_slot(std::shared_ptr<WorkerNode> node, std::size_t slot);
  des::Process hadoop_merge();
  des::Task<bool> run_task(std::shared_ptr<WorkerNode> node, std::size_t slot,
                           TaskUnit task, core::TaskRecord& record);
  des::Task<void> setup_software(std::shared_ptr<WorkerNode> node,
                                 std::size_t slot, core::TaskRecord& record);
  /// Pull the next task (analysis or merge) from the pools; nullopt when
  /// the workflow is finished.
  std::optional<TaskUnit> next_task();
  void finish_task(const TaskUnit& task, core::TaskRecord& record,
                   bool success, bool evicted, std::size_t site);
  void maybe_plan_merges(bool final_sweep);
  bool workflow_complete() const;

  /// Runtime state of one harvested site.
  struct Site {
    SiteParams params;
    std::unique_ptr<xrootd::FederationSim> federation;
    std::vector<std::unique_ptr<cvmfs::SquidSim>> squids;
    std::unique_ptr<core::EvictionModel> eviction;
  };

  ClusterParams cluster_;
  WorkloadParams workload_;
  util::Rng rng_;
  des::Simulation sim_;
  std::vector<Site> sites_;
  std::vector<std::uint64_t> per_site_tasklets_;
  std::unique_ptr<des::BandwidthLink> foreman_fanout_;
  std::unique_ptr<chirp::ChirpSim> chirp_;
  std::unique_ptr<EngineMetrics> metrics_;

  // ---- workload state ----
  std::uint64_t tasklets_pending_ = 0;   // not yet in a dispatched task
  std::uint64_t tasklets_done_ = 0;
  std::deque<double> unmerged_outputs_;        // output sizes awaiting merge
  double unmerged_bytes_ = 0.0;
  std::deque<std::vector<double>> merge_queue_;  // planned merge groups
  std::size_t running_tasks_ = 0;
  std::size_t running_merges_ = 0;
  std::uint64_t total_slots_ = 0;
  bool hadoop_started_ = false;
  bool hadoop_done_ = false;
  bool done_ = false;
  double end_time_cap_ = 0.0;
};

}  // namespace lobster::lobsim

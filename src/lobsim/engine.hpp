// engine.hpp — the cluster-scale simulation engine.
//
// This is the testbed substitute for the paper's production environment:
// an opportunistic HTCondor pool at Notre Dame (~10-20k cores in bursts),
// the CMS data federation behind a 10 Gbit/s campus uplink, squid proxy
// caches for CVMFS, and a Chirp server in front of Hadoop storage.  All of
// it is modelled on the des:: kernel with parameters stated in the paper,
// and the Lobster scheduling semantics (task construction from tasklets,
// retry-on-eviction, interleaved merging) mirror core::Scheduler.
//
// The Engine is a thin coordinator over three pluggable layers:
//
//   SiteManager    — batch-system ramp, worker lifecycle, eviction models
//                    (site_manager.hpp; also owns ClusterParams/SiteParams);
//   DispatchPolicy — task construction from the pending pools
//                    (dispatch_policy.hpp: fifo / tail-shrink / site-aware);
//   MergePlanner   — output-merge planning
//                    (merge_planner.hpp: sequential / hadoop / interleaved).
//
// What remains here is the task execution pipeline itself (software setup,
// stage-in, execute, stage-out against the shared infrastructure) and the
// metrics.  One Engine instance runs one workload scenario; campaign.hpp
// runs many of them in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chirp/chirp.hpp"
#include "core/config.hpp"
#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/monitor.hpp"
#include "core/task_size_model.hpp"
#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/squid.hpp"
#include "des/queue.hpp"
#include "des/simulation.hpp"
#include "lobsim/advisor.hpp"
#include "lobsim/dispatch_policy.hpp"
#include "lobsim/merge_planner.hpp"
#include "lobsim/site_manager.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "xrootd/federation.hpp"

namespace lobster::lobsim {

/// Workload parameters (one workflow).
struct WorkloadParams {
  std::uint64_t num_tasklets = 100000;
  std::uint32_t tasklets_per_task = 6;  ///< ~1 h at 10 min/tasklet
  double tasklet_cpu_mean = 600.0;      ///< N(10, 5) minutes, truncated
  double tasklet_cpu_sigma = 300.0;
  /// Input volume consumed per tasklet (0 for simulation workloads).
  double tasklet_input_bytes = 300.0e6;
  /// Fraction of the input a streaming task actually reads: an analysis
  /// "contains only a fraction of the information present in the input
  /// data" (paper §4.2) — this is why streaming beats staging in Figure 4,
  /// since staging must transfer whole files up front.
  double read_fraction = 0.30;
  /// Output volume produced per tasklet.
  double tasklet_output_bytes = 15.0e6;
  core::DataAccessMode access = core::DataAccessMode::Stream;
  /// Software working set (cold cache cost; paper: ~1.5 GB per cache),
  /// split into a head every task shares and a per-task tail.
  double release_shared_bytes = 1.3e9;
  double release_tail_bytes = 0.2e9;
  /// Hot-cache per-task setup traffic (catalog checks, small misses).
  double hot_setup_bytes = 25.0e6;
  cvmfs::CacheMode cache_mode = cvmfs::CacheMode::Alien;
  /// Per-tasklet extra input for simulation workloads (pile-up overlay).
  double pileup_bytes = 5.0e6;
  /// Per-task payload sent from the master through the foremen (sandbox,
  /// configuration, input manifests) — the "WQ Stage In" row of Figure 8.
  double sandbox_bytes = 50.0e6;
  /// A slot that just watched its task fail backs off before pulling new
  /// work (the wrapper's retry discipline; damps outage retry storms).
  double failure_backoff = 300.0;
  /// Task-construction policy (dispatch_policy.hpp).  Fifo mirrors the
  /// production system the paper measured; tail_shrink below is a legacy
  /// alias that upgrades Fifo to TailShrink.
  DispatchMode dispatch = DispatchMode::Fifo;
  /// Lifetime dispatch only: fraction of the expected remaining worker
  /// lifetime a task may fill, and the per-task tasklet cap (0 = 4x
  /// tasklets_per_task).
  double lifetime_safety = 0.25;
  std::uint32_t lifetime_max_tasklets = 0;
  /// Stealing dispatch only: a stolen task re-stages this fraction of its
  /// input volume over the thief site's WAN uplink (on top of a cold-squid
  /// conditions fetch) — the victim-vs-thief data-locality penalty.  And a
  /// site only steals from a backlog of at least steal_min_backlog
  /// tasklets (0 = 2x tasklets_per_task).
  double steal_penalty_factor = 0.5;
  std::uint64_t steal_min_backlog = 0;
  /// Shrink tasks to single tasklets once the pending pool is smaller than
  /// the slot count (the §8 task-size adaptivity).  Kept for compatibility;
  /// equivalent to dispatch = DispatchMode::TailShrink.
  bool tail_shrink = false;
  std::uint32_t max_attempts = 50;

  core::MergeMode merge_mode = core::MergeMode::Interleaved;
  core::MergePolicy merge_policy;
  /// Merge task transfer behaviour: inputs via XrootD, outputs via Chirp
  /// (paper §4.4); CPU cost per merged byte is negligible.
  double merge_cpu_per_gb = 10.0;
  /// Hadoop-mode merging: concurrent reducers, their HDFS-local rate, and
  /// the per-reducer overhead of transferring the small files to the local
  /// machine and creating the HEP environment there (paper §4.4).
  std::int64_t hadoop_reduce_slots = 16;
  double hadoop_local_rate = 2.5e8;
  double hadoop_reduce_setup = 240.0;
};

/// What happened — everything the figure benches print.
struct EngineMetrics {
  explicit EngineMetrics(double bin_seconds)
      : monitor(bin_seconds),
        analysis_done(0.0, bin_seconds),
        merge_done(0.0, bin_seconds),
        failures(0.0, bin_seconds) {}

  core::Monitor monitor;
  util::TimeSeries analysis_done;
  util::TimeSeries merge_done;
  util::TimeSeries failures;
  /// (time, exit code) of every failed task — Figure 11 bottom panel.
  std::vector<std::pair<double, int>> failure_events;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_evicted = 0;
  std::uint64_t merge_tasks_completed = 0;
  std::uint64_t tasklets_processed = 0;
  /// Tasklets returned to the pending pool by evicted/failed tasks — the
  /// "wasted dispatches" an availability climate costs (each is work that
  /// had to be re-run).
  std::uint64_t tasklets_retried = 0;
  /// Work stealing (DispatchMode::Stealing only): idle-site steal polls,
  /// chunks actually stolen, and the extra bytes the data-locality penalty
  /// cost the thieves.
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_tasks = 0;
  double steal_bytes_penalty = 0.0;
  /// Online advisor activity (Engine::enable_advisor): observation ticks
  /// and actuations by kind.  All zero when the advisor is off.
  std::uint64_t advisor_ticks = 0;
  std::uint64_t advisor_shrinks = 0;
  std::uint64_t advisor_throttles = 0;
  std::uint64_t advisor_drains = 0;
  std::uint64_t advisor_restores = 0;
  double last_analysis_finish = 0.0;
  double last_merge_finish = 0.0;
  double bytes_streamed = 0.0;
  double bytes_staged = 0.0;
  double bytes_staged_out = 0.0;
  double makespan = 0.0;
  /// Peak of the running-tasks gauge.
  std::size_t peak_running = 0;
  /// True only when the workflow genuinely finished (analysis + merging);
  /// false means the run was truncated by the time cap (or stalled), so
  /// `makespan` is a lower bound, not a completion time.
  bool completed = false;
};

class Engine {
 public:
  Engine(ClusterParams cluster, WorkloadParams workload, std::uint64_t seed,
         double metric_bin_seconds = 600.0);
  ~Engine();

  /// Run to completion (or until `time_cap` seconds of simulated time).
  /// Returns the collected metrics.
  const EngineMetrics& run(double time_cap = 10.0 * 86400.0);

  [[nodiscard]] const EngineMetrics& metrics() const { return *metrics_; }
  des::Simulation& sim() { return sim_; }
  /// Home-site federation (site 0).
  xrootd::FederationSim& federation() { return sites_->federation(0); }
  xrootd::FederationSim& federation(std::size_t site) {
    return sites_->federation(site);
  }
  des::BandwidthLink& foreman_fanout() { return *foreman_fanout_; }
  chirp::ChirpSim& chirp() { return *chirp_; }
  /// Home-site squids (site 0).
  cvmfs::SquidSim& squid(std::size_t i) { return sites_->squid(0, i); }
  cvmfs::SquidSim& squid(std::size_t site, std::size_t i) {
    return sites_->squid(site, i);
  }
  [[nodiscard]] std::size_t num_sites() const { return sites_->num_sites(); }
  /// Tasklets processed by each site's workers (index as in params).
  const std::vector<std::uint64_t>& per_site_tasklets() const {
    return per_site_tasklets_;
  }

  SiteManager& site_manager() { return *sites_; }
  DispatchPolicy& dispatch_policy() { return *dispatch_; }
  MergePlanner& merge_planner() { return *planner_; }

  /// Inject a WAN outage (Figure 10's transient failure burst).
  void schedule_outage(double start, double duration);

  /// Route per-task lifecycle spans, segment spans and the final counter
  /// snapshot to a trace file (written when run() finishes).  Call before
  /// run().  An empty path keeps the trace in memory (tests).
  void enable_tracing(const std::string& path,
                      util::TraceFormat format = util::TraceFormat::Jsonl);

  /// Switch on the online advisor loop (advisor.hpp): ticked every
  /// `config.period` simulated seconds, it runs the §5 diagnosis rules over
  /// windowed aggregates and actuates task sizing and per-site dispatch
  /// share.  Call before run().  The lobsim.advisor.* counters are
  /// registered here, so advisor-off runs keep byte-identical traces.
  void enable_advisor(const AdvisorConfig& config);
  /// Null when the advisor is off.
  [[nodiscard]] const Advisor* advisor() const { return advisor_.get(); }

 private:
  struct AdvisorPort;  // the AdvisorActions adapter (engine.cpp)

  des::Process gauge_sampler(double period);
  des::Process advisor_loop(double period);
  des::Process core_slot(NodeHandle node, std::size_t slot);
  des::Process hadoop_merge();
  /// run_task/setup_software take the resolved node reference: WorkerNode
  /// storage is stable for the whole run (dense per-site arrays), so the
  /// reference may be held across suspensions.
  des::Task<bool> run_task(WorkerNode& node, std::size_t slot, TaskUnit task,
                           core::TaskRecord& record);
  des::Task<void> setup_software(WorkerNode& node, std::size_t slot,
                                 core::TaskRecord& record);
  /// Pull the next task (analysis or merge) from the dispatch policy;
  /// nullopt when the pools are momentarily empty.
  std::optional<TaskUnit> next_task(const WorkerNode& node);
  void finish_task(const TaskUnit& task, core::TaskRecord& record,
                   bool success, bool evicted, std::size_t site);
  bool analysis_complete() const;
  bool workflow_complete() const;
  /// Trace track for a (site, worker, slot) triple.  Worker ids are
  /// per-site, so the site index is folded in to keep tracks distinct.
  static std::uint64_t task_track(const WorkerNode& node, std::size_t slot);

  ClusterParams cluster_;
  WorkloadParams workload_;
  util::Rng rng_;
  des::Simulation sim_;
  std::unique_ptr<SiteManager> sites_;
  std::unique_ptr<DispatchPolicy> dispatch_;
  /// Non-null iff dispatch_ is a StealingDispatch (cached once; the hot
  /// next_task path must not dynamic_cast per pull).
  StealingDispatch* stealing_ = nullptr;
  std::unique_ptr<MergePlanner> planner_;
  std::vector<std::uint64_t> per_site_tasklets_;
  std::unique_ptr<des::BandwidthLink> foreman_fanout_;
  std::unique_ptr<chirp::ChirpSim> chirp_;
  std::unique_ptr<EngineMetrics> metrics_;

  // ---- counter plane (lobsim.*), cached at construction ----
  util::Counter* ctr_tasks_dispatched_ = nullptr;
  util::Counter* ctr_tasks_completed_ = nullptr;
  util::Counter* ctr_tasks_failed_ = nullptr;
  util::Counter* ctr_tasks_evicted_ = nullptr;
  util::Counter* ctr_tasklets_processed_ = nullptr;
  util::Counter* ctr_tasklets_retried_ = nullptr;
  util::Counter* ctr_merges_completed_ = nullptr;
  // Registered only when the dispatch policy steals, so non-stealing runs
  // keep a byte-identical counter snapshot in their traces.
  util::Counter* ctr_steal_attempts_ = nullptr;
  util::Counter* ctr_steal_tasks_ = nullptr;
  util::Gauge* ctr_steal_bytes_penalty_ = nullptr;
  // Registered only by enable_advisor (same byte-identical-trace contract).
  util::Counter* ctr_advisor_ticks_ = nullptr;
  util::Counter* ctr_advisor_shrinks_ = nullptr;
  util::Counter* ctr_advisor_throttles_ = nullptr;
  util::Counter* ctr_advisor_drains_ = nullptr;
  util::Counter* ctr_advisor_restores_ = nullptr;
  util::Gauge* ctr_advisor_share_ = nullptr;
  util::Gauge* ctr_advisor_ewma_ = nullptr;

  // ---- online advisor state (empty when the advisor is off) ----
  AdvisorConfig advisor_cfg_;
  std::unique_ptr<Advisor> advisor_;
  std::unique_ptr<AdvisorPort> advisor_port_;
  /// Previous counter snapshot, diffed per tick into the windowed rates
  /// attached to advisor_tick instants.
  std::vector<util::CounterRegistry::Sample> advisor_prev_snap_;
  /// Per-site dispatch-share gate (1 = unthrottled).  The share is a
  /// *concurrency* cap: a throttled site runs at most ceil(share * slots)
  /// tasks at once.  A pull-ratio pacing was tried first and discarded —
  /// denied slots re-pull after the idle delay, so by Little's law any
  /// share > 0 only adds a small per-task latency tax while steady-state
  /// concurrency (and hence squid/chirp load) stays pinned at the slot
  /// count.  The cap actually sheds load.  Deterministic, no RNG.
  std::vector<double> site_share_;
  /// Tasks currently running per site (maintained unconditionally; the
  /// advisor gate in next_task compares it against the share cap).
  std::vector<std::size_t> site_running_;

  // ---- workload state ----
  std::uint64_t tasklets_done_ = 0;
  std::size_t running_tasks_ = 0;
  std::size_t running_merges_ = 0;
  bool hadoop_started_ = false;
  bool hadoop_done_ = false;
  bool done_ = false;
  double end_time_cap_ = 0.0;
};

}  // namespace lobster::lobsim

#include "lobsim/campaign.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/parse.hpp"
#include "util/thread_pool.hpp"

namespace lobster::lobsim {

namespace {
std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}
}  // namespace

void parallel_runs(std::size_t n, std::size_t jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::ThreadPool pool(std::min(jobs, n));
  for (std::size_t i = 0; i < n; ++i)
    pool.submit([&fn, i] { fn(i); });
  pool.wait();
}

Campaign::Campaign(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {}

void Campaign::add(RunSpec spec) { specs_.push_back(std::move(spec)); }

void Campaign::add_seed_sweep(const RunSpec& base,
                              const std::vector<std::uint64_t>& seeds) {
  for (std::uint64_t seed : seeds) {
    RunSpec spec = base;
    spec.seed = seed;
    specs_.push_back(std::move(spec));
  }
}

void Campaign::add_grid(const std::vector<RunSpec>& specs,
                        const std::vector<std::uint64_t>& seeds) {
  for (const auto& spec : specs) add_seed_sweep(spec, seeds);
}

void Campaign::trace_to(std::string prefix, util::TraceFormat format) {
  trace_prefix_ = std::move(prefix);
  trace_format_ = format;
}

RunStats Campaign::execute(const RunSpec& spec,
                           std::shared_ptr<const EngineMetrics>* metrics_out) {
  Engine engine(spec.cluster, spec.workload, spec.seed,
                spec.metric_bin_seconds);
  if (!spec.trace_path.empty())
    engine.enable_tracing(spec.trace_path, spec.trace_format);
  if (spec.advisor.enabled) engine.enable_advisor(spec.advisor);
  if (spec.outage_start > 0.0 && spec.outage_duration > 0.0)
    engine.schedule_outage(spec.outage_start, spec.outage_duration);
  const EngineMetrics& m = engine.run(spec.time_cap);

  RunStats s;
  s.makespan = m.makespan;
  s.last_analysis_finish = m.last_analysis_finish;
  s.last_merge_finish = m.last_merge_finish;
  s.bytes_streamed = m.bytes_streamed;
  s.bytes_staged = m.bytes_staged;
  s.bytes_staged_out = m.bytes_staged_out;
  s.tasks_completed = m.tasks_completed;
  s.tasks_failed = m.tasks_failed;
  s.tasks_evicted = m.tasks_evicted;
  s.merge_tasks_completed = m.merge_tasks_completed;
  s.tasklets_processed = m.tasklets_processed;
  s.tasklets_retried = m.tasklets_retried;
  s.steal_attempts = m.steal_attempts;
  s.steal_tasks = m.steal_tasks;
  s.steal_bytes_penalty = m.steal_bytes_penalty;
  s.advisor_ticks = m.advisor_ticks;
  s.advisor_shrinks = m.advisor_shrinks;
  s.advisor_throttles = m.advisor_throttles;
  s.advisor_drains = m.advisor_drains;
  s.advisor_restores = m.advisor_restores;
  s.peak_running = m.peak_running;
  s.completed = m.completed;
  s.breakdown = m.monitor.breakdown();
  if (metrics_out) *metrics_out = std::make_shared<EngineMetrics>(m);
  return s;
}

const std::vector<RunResult>& Campaign::run() {
  if (ran_) return results_;
  ran_ = true;
  if (!trace_prefix_.empty()) {
    // Assign paths before the pool starts so naming depends only on
    // submission order, never on thread interleaving.
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      RunSpec& spec = specs_[i];
      if (!spec.trace_path.empty()) continue;
      spec.trace_format = trace_format_;
      spec.trace_path = trace_prefix_ + "-run" + std::to_string(i) + "-seed" +
                        std::to_string(spec.seed) +
                        util::trace_extension(trace_format_);
    }
  }
  results_.resize(specs_.size());
  // Each worker writes only its own submission slot; no shared Engine
  // state crosses threads (one DES kernel and RNG universe per run).
  parallel_runs(specs_.size(), jobs_, [this](std::size_t i) {
    const RunSpec& spec = specs_[i];
    RunResult& out = results_[i];
    out.label = spec.label;
    out.seed = spec.seed;
    try {
      std::shared_ptr<const EngineMetrics> metrics;
      out.stats = execute(spec, keep_metrics_ ? &metrics : nullptr);
      out.metrics = std::move(metrics);
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown error";
    }
  });
  return results_;
}

std::vector<CampaignAggregate> Campaign::aggregate() const {
  std::vector<CampaignAggregate> out;
  auto find = [&out](const std::string& label) -> CampaignAggregate& {
    for (auto& agg : out)
      if (agg.label == label) return agg;
    out.emplace_back();
    out.back().label = label;
    return out.back();
  };
  for (const auto& r : results_) {
    CampaignAggregate& agg = find(r.label);
    if (!r.ok()) {
      ++agg.errors;
      continue;
    }
    ++agg.runs;
    if (!r.stats.completed) ++agg.incomplete;
    agg.makespan.add(r.stats.makespan);
    agg.analysis_finish.add(r.stats.last_analysis_finish);
    agg.merge_finish.add(r.stats.last_merge_finish);
    agg.tasks_failed.add(static_cast<double>(r.stats.tasks_failed));
    agg.tasks_evicted.add(static_cast<double>(r.stats.tasks_evicted));
    agg.tasklets_retried.add(static_cast<double>(r.stats.tasklets_retried));
    agg.merge_tasks.add(static_cast<double>(r.stats.merge_tasks_completed));
    agg.bytes_streamed.add(r.stats.bytes_streamed);
    agg.bytes_staged_out.add(r.stats.bytes_staged_out);
    agg.peak_running.add(static_cast<double>(r.stats.peak_running));
  }
  return out;
}

CampaignOptions parse_campaign_flags(
    int argc, char** argv, std::uint64_t base_seed, std::size_t default_seeds,
    const std::vector<std::string>& passthrough_value_flags) {
  std::size_t n_seeds = default_seeds;
  CampaignOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto numeric_value = [&](const char* flag) -> long long {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(flag) + " needs a value");
      const long long v = util::require_int(argv[++i], flag);
      if (v < 0)
        throw std::invalid_argument(std::string(flag) + " must be >= 0");
      return v;
    };
    if (arg == "--seeds") {
      n_seeds = static_cast<std::size_t>(numeric_value("--seeds"));
      if (n_seeds == 0) throw std::invalid_argument("--seeds must be >= 1");
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<std::size_t>(numeric_value("--jobs"));
    } else if (std::find(passthrough_value_flags.begin(),
                         passthrough_value_flags.end(),
                         arg) != passthrough_value_flags.end()) {
      // A tool-specific flag the caller parses itself; skip its value too,
      // so a value that happens to start with "--" is not re-read as a flag.
      if (i + 1 >= argc)
        throw std::invalid_argument(arg + " needs a value");
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument(
          "unknown flag '" + arg +
          "' (expected --seeds N or --jobs M; see the usage comment)");
    }
    // Anything else is a positional argument (e.g. a scenario file) owned
    // by the caller.
  }
  opts.seeds.reserve(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i)
    opts.seeds.push_back(base_seed + i);
  return opts;
}

}  // namespace lobster::lobsim

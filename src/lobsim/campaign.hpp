// campaign.hpp — the parallel experiment substrate.
//
// The paper's evaluation is a *family* of runs: sweeps over proxy counts,
// cache modes, merge strategies, and two production-scale campaigns.  Every
// figure bench used to drive one Engine serially with a single seed; a
// Campaign executes N independent Engine instances (seed sweeps, parameter
// sweeps) across a util::ThreadPool instead.  Each run is a self-contained
// RunSpec — its own DES kernel, its own RNG universe derived from its own
// seed — so runs never share mutable state and the campaign parallelises
// embarrassingly.
//
// Determinism: results are indexed by submission order no matter which
// worker thread executed them, and aggregation folds them in that order on
// the calling thread, so a --jobs 8 campaign aggregates bitwise identically
// to a serial one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "lobsim/engine.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace lobster::lobsim {

/// One simulation to execute: a complete Engine configuration.
struct RunSpec {
  /// Grouping key for aggregation (runs sharing a label aggregate
  /// together — e.g. one label per merge mode, swept over seeds).
  std::string label = "run";
  ClusterParams cluster;
  WorkloadParams workload;
  std::uint64_t seed = 2015;
  double time_cap = 30.0 * 86400.0;
  double metric_bin_seconds = 600.0;
  /// Optional WAN outage injected before the run (0 = none).
  double outage_start = 0.0;
  double outage_duration = 0.0;
  /// Non-empty: write this run's trace (spans + counter snapshot) here.
  /// Campaign::trace_to fills these per run when a whole campaign traces.
  std::string trace_path;
  util::TraceFormat trace_format = util::TraceFormat::Jsonl;
  /// Online advisor loop (advisor.hpp); enabled=false leaves the engine —
  /// and its trace bytes — exactly as before.
  AdvisorConfig advisor;
};

/// Scalar outcome of one run — the copyable subset of EngineMetrics that
/// sweeps aggregate over.
struct RunStats {
  double makespan = 0.0;
  double last_analysis_finish = 0.0;
  double last_merge_finish = 0.0;
  double bytes_streamed = 0.0;
  double bytes_staged = 0.0;
  double bytes_staged_out = 0.0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_evicted = 0;
  std::uint64_t merge_tasks_completed = 0;
  std::uint64_t tasklets_processed = 0;
  std::uint64_t tasklets_retried = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_tasks = 0;
  double steal_bytes_penalty = 0.0;
  std::uint64_t advisor_ticks = 0;
  std::uint64_t advisor_shrinks = 0;
  std::uint64_t advisor_throttles = 0;
  std::uint64_t advisor_drains = 0;
  std::uint64_t advisor_restores = 0;
  std::size_t peak_running = 0;
  /// False when the run hit its time cap (or stalled) before the workflow
  /// finished — `makespan` is then a lower bound, not a completion time.
  bool completed = false;
  core::RuntimeBreakdown breakdown;
};

struct RunResult {
  std::string label;
  std::uint64_t seed = 0;
  RunStats stats;
  /// Retained full metrics (timelines, monitor) when the campaign was
  /// asked to keep them; null otherwise.
  std::shared_ptr<const EngineMetrics> metrics;
  /// Non-empty when the run threw instead of completing.
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Mean/stddev aggregate over every successful run sharing one label.
struct CampaignAggregate {
  std::string label;
  std::uint64_t runs = 0;       ///< successful runs folded in
  std::uint64_t errors = 0;     ///< runs that threw
  /// Runs that finished the simulation but not the workflow (time-cap
  /// truncation); they are folded into the stats, so when this is non-zero
  /// the makespan column is a lower bound.
  std::uint64_t incomplete = 0;
  util::RunningStats makespan;
  util::RunningStats analysis_finish;
  util::RunningStats merge_finish;
  util::RunningStats tasks_failed;
  util::RunningStats tasks_evicted;
  util::RunningStats tasklets_retried;
  util::RunningStats merge_tasks;
  util::RunningStats bytes_streamed;
  util::RunningStats bytes_staged_out;
  util::RunningStats peak_running;
};

class Campaign {
 public:
  /// `jobs` worker threads; 0 means hardware concurrency, 1 runs inline on
  /// the calling thread (no pool).
  explicit Campaign(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }
  /// Retain each run's full EngineMetrics (timelines for figure panels).
  /// Off by default: a big sweep only needs the scalar RunStats.
  void keep_metrics(bool keep) { keep_metrics_ = keep; }

  void add(RunSpec spec);
  /// The base spec replicated across `seeds` (label kept for aggregation).
  void add_seed_sweep(const RunSpec& base,
                      const std::vector<std::uint64_t>& seeds);
  /// The cross product specs x seeds: every cell of a parameter grid (e.g.
  /// dispatch policy x availability climate), each swept over every seed.
  /// Cells aggregate by their spec's label, so give every spec a distinct
  /// one ("fifo/weibull", ...); results stay in submission order (specs
  /// outer, seeds inner).
  void add_grid(const std::vector<RunSpec>& specs,
                const std::vector<std::uint64_t>& seeds);
  std::size_t size() const { return specs_.size(); }

  /// Trace every queued-and-future run to
  /// `<prefix>-run<I>-seed<S><ext>` where I is the run's submission index.
  /// Naming by submission index (not worker thread) keeps the file set —
  /// and each file's bytes — identical between serial and parallel
  /// campaigns.  Specs that already carry an explicit trace_path keep it.
  void trace_to(std::string prefix,
                util::TraceFormat format = util::TraceFormat::Jsonl);

  /// Execute every queued run across the pool.  Safe to call once; returns
  /// results in submission order.
  const std::vector<RunResult>& run();
  const std::vector<RunResult>& results() const { return results_; }

  /// Aggregates grouped by label, labels in first-submission order, runs
  /// folded in submission order (serial and parallel campaigns agree
  /// bitwise).
  std::vector<CampaignAggregate> aggregate() const;

  /// Execute a single spec to completion (what each worker thread runs).
  static RunStats execute(const RunSpec& spec,
                          std::shared_ptr<const EngineMetrics>* metrics_out =
                              nullptr);

 private:
  std::size_t jobs_;
  bool keep_metrics_ = false;
  bool ran_ = false;
  std::vector<RunSpec> specs_;
  std::vector<RunResult> results_;
  std::string trace_prefix_;
  util::TraceFormat trace_format_ = util::TraceFormat::Jsonl;
};

/// Order-preserving parallel for: invoke fn(0..n-1) across `jobs` threads
/// (inline when jobs <= 1).  fn must confine itself to index-owned state;
/// exceptions must not escape fn.
void parallel_runs(std::size_t n, std::size_t jobs,
                   const std::function<void(std::size_t)>& fn);

/// Seed-list and worker-count flags shared by the campaign-driven benches
/// and the CLI: `--seeds N` expands to base_seed..base_seed+N-1, `--jobs M`
/// sets the pool width (0 = hardware concurrency).
struct CampaignOptions {
  std::vector<std::uint64_t> seeds;
  std::size_t jobs = 1;
};
/// Strict parsing: a non-numeric or negative value and any unrecognised
/// `--flag` throw std::invalid_argument (a typo like `--seed 5` must not be
/// silently ignored).  Positional arguments (no leading '-') are the
/// caller's business and are skipped.  `passthrough_value_flags` lists
/// tool-specific flags that take one value (e.g. lobster_sim's
/// `--availability`); both the flag and its value are skipped here.
CampaignOptions parse_campaign_flags(
    int argc, char** argv, std::uint64_t base_seed,
    std::size_t default_seeds = 1,
    const std::vector<std::string>& passthrough_value_flags = {});

}  // namespace lobster::lobsim

#include "lobsim/global_pool.hpp"

#include <stdexcept>

namespace lobster::lobsim {

namespace {
des::Process user_campaign(des::Simulation& sim, des::BandwidthLink& pool,
                           const PoolUser& user, PoolOutcome& outcome) {
  co_await sim.delay(user.submit_time);
  co_await pool.transfer(user.core_seconds, user.max_parallelism);
  outcome.finish_time = sim.now();
}
}  // namespace

std::vector<PoolOutcome> simulate_global_pool(
    double dedicated_cores, const std::vector<PoolUser>& users) {
  if (dedicated_cores <= 0.0)
    throw std::invalid_argument("global pool: need positive core count");
  des::Simulation sim;
  // Cores play the role of bandwidth: the pool serves core-seconds at a
  // rate of `dedicated_cores` core-seconds per second, split max-min
  // fairly among users capped at their own parallelism.
  des::BandwidthLink pool(sim, dedicated_cores);
  std::vector<PoolOutcome> outcomes(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i].core_seconds <= 0.0)
      throw std::invalid_argument("global pool: user without work: " +
                                  users[i].name);
    outcomes[i].name = users[i].name;
    outcomes[i].submit_time = users[i].submit_time;
    sim.spawn(user_campaign(sim, pool, users[i], outcomes[i]));
  }
  sim.run();
  return outcomes;
}

double lobster_burst_completion(double core_seconds, double burst_cores,
                                double efficiency) {
  if (burst_cores <= 0.0 || efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("lobster burst: bad parameters");
  return core_seconds / (burst_cores * efficiency);
}

}  // namespace lobster::lobsim

#include "lobsim/global_pool.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace lobster::lobsim {

namespace {
des::Process user_campaign(des::Simulation& sim, des::BandwidthLink& pool,
                           const PoolUser& user, PoolOutcome& outcome) {
  co_await sim.delay(user.submit_time);
  co_await pool.transfer(user.core_seconds, user.max_parallelism);
  outcome.finish_time = sim.now();
}
}  // namespace

std::vector<PoolOutcome> simulate_global_pool(
    double dedicated_cores, const std::vector<PoolUser>& users) {
  if (dedicated_cores <= 0.0)
    throw std::invalid_argument("global pool: need positive core count");
  des::Simulation sim;
  // Cores play the role of bandwidth: the pool serves core-seconds at a
  // rate of `dedicated_cores` core-seconds per second, split max-min
  // fairly among users capped at their own parallelism.
  des::BandwidthLink pool(sim, dedicated_cores);
  std::vector<PoolOutcome> outcomes(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i].core_seconds <= 0.0)
      throw std::invalid_argument("global pool: user without work: " +
                                  users[i].name);
    outcomes[i].name = users[i].name;
    outcomes[i].submit_time = users[i].submit_time;
    sim.spawn(user_campaign(sim, pool, users[i], outcomes[i]));
  }
  sim.run();
  return outcomes;
}

namespace {

/// Per-user live-run state.
struct LiveUser {
  double unstarted = 0.0;   ///< core-seconds not yet handed to a core
  double delivered = 0.0;   ///< core-seconds completed
  std::uint64_t running = 0;
  std::uint64_t cap = 1;
  bool eligible = false;  ///< currently in the round-robin ring
  bool arrived = false;
  double finish = 0.0;
};

/// The discrete fair-share dispatcher.  Lives on the stack of
/// simulate_global_pool_live for the whole sim.run(); scheduled callbacks
/// capture `this`.
struct LivePool {
  des::Simulation& sim;
  double tasklet_seconds;
  std::vector<LiveUser> users = {};
  std::vector<std::uint32_t> ring = {};  ///< eligible user indices
  std::size_t cursor = 0;
  std::uint64_t free_cores = 0;
  std::uint64_t tasklets = 0;

  void mark_eligible(std::uint32_t ui) {
    LiveUser& u = users[ui];
    if (!u.eligible && u.unstarted > 0.0 && u.running < u.cap) {
      u.eligible = true;
      ring.push_back(ui);
    }
  }

  /// Hand out free cores round-robin across the eligible ring.  O(1)
  /// amortised per assignment; users leaving the ring are swap-removed so
  /// the ring never holds drained or capped campaigns.
  void dispatch() {
    while (free_cores > 0 && !ring.empty()) {
      if (cursor >= ring.size()) cursor = 0;
      const std::uint32_t ui = ring[cursor];
      LiveUser& u = users[ui];
      const double dur = std::min(tasklet_seconds, u.unstarted);
      u.unstarted -= dur;
      ++u.running;
      --free_cores;
      ++tasklets;
      sim.schedule(dur, [this, ui, dur] { complete(ui, dur); });
      if (u.unstarted <= 0.0 || u.running >= u.cap) {
        u.eligible = false;
        ring[cursor] = ring.back();
        ring.pop_back();
      } else {
        ++cursor;
      }
    }
  }

  void complete(std::uint32_t ui, double dur) {
    LiveUser& u = users[ui];
    --u.running;
    ++free_cores;
    u.delivered += dur;
    if (u.unstarted <= 0.0) {
      if (u.running == 0) u.finish = sim.now();
    } else {
      mark_eligible(ui);
    }
    dispatch();
  }
};

}  // namespace

LivePoolResult simulate_global_pool_live(double dedicated_cores,
                                         const std::vector<PoolUser>& users,
                                         double tasklet_seconds) {
  if (dedicated_cores < 1.0)
    throw std::invalid_argument("global pool live: need at least one core");
  if (tasklet_seconds <= 0.0)
    throw std::invalid_argument("global pool live: bad tasklet length");
  des::Simulation sim;
  LivePool pool{.sim = sim, .tasklet_seconds = tasklet_seconds};
  pool.free_cores = static_cast<std::uint64_t>(dedicated_cores);
  pool.users.resize(users.size());
  pool.ring.reserve(users.size());

  LivePoolResult result;
  result.outcomes.resize(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    const PoolUser& spec = users[i];
    if (spec.core_seconds <= 0.0)
      throw std::invalid_argument("global pool live: user without work: " +
                                  spec.name);
    LiveUser& u = pool.users[i];
    u.unstarted = spec.core_seconds;
    u.cap = static_cast<std::uint64_t>(std::max(
        1.0, std::min(spec.max_parallelism, dedicated_cores)));
    result.outcomes[i].name = spec.name;
    result.outcomes[i].submit_time = spec.submit_time;
    const auto ui = static_cast<std::uint32_t>(i);
    if (spec.submit_time > 0.0) {
      sim.schedule(spec.submit_time, [&pool, ui] {
        pool.mark_eligible(ui);
        pool.dispatch();
      });
    } else {
      pool.mark_eligible(ui);
    }
  }
  pool.dispatch();
  sim.run();

  double total_core_seconds = 0.0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    result.outcomes[i].finish_time = pool.users[i].finish;
    result.makespan = std::max(result.makespan, pool.users[i].finish);
    total_core_seconds += pool.users[i].delivered;
  }
  result.events_executed = sim.events_executed();
  result.tasklets_dispatched = pool.tasklets;
  result.aggregate_goodput =
      result.makespan > 0.0 ? total_core_seconds / result.makespan : 0.0;
  return result;
}

double lobster_burst_completion(double core_seconds, double burst_cores,
                                double efficiency) {
  if (burst_cores <= 0.0 || efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("lobster burst: bad parameters");
  return core_seconds / (burst_cores * efficiency);
}

}  // namespace lobster::lobsim

// frontier.hpp — the Frontier conditions-data distribution service.
//
// Paper §4.2: "Apart from the actual information recorded by the LHC, HEP
// analysis jobs also depend on configuration and calibration information,
// which is distributed from CERN through a network of proxies, using the
// Frontier protocol."
//
// Frontier serves versioned *conditions payloads* (alignment, calibration,
// beam-spot, ...) keyed by (tag, run number / interval of validity).  The
// implementation here is a real in-process service:
//  * a ConditionsDatabase holding payloads with intervals of validity (IOV);
//  * a FrontierServer answering queries (the "central" CERN endpoint);
//  * a FrontierProxy layer caching query results — queries are
//    deterministic, so cached answers are always valid until the tag is
//    republished, which bumps a tag serial and invalidates stale entries
//    (how real Frontier caching behaves).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace lobster::frontier {

struct FrontierError : std::runtime_error {
  explicit FrontierError(const std::string& what) : std::runtime_error(what) {}
};

/// A conditions payload valid for runs in [first_run, last_run].
struct ConditionsPayload {
  std::uint32_t first_run = 0;
  std::uint32_t last_run = 0;
  std::string blob;  ///< the calibration data itself
};

/// The master conditions database (lives "at CERN").
class ConditionsDatabase {
 public:
  /// Publish a payload under a tag; IOVs of one tag must not overlap.
  void publish(const std::string& tag, ConditionsPayload payload);
  /// Resolve (tag, run) to the covering payload.
  std::optional<ConditionsPayload> lookup(const std::string& tag,
                                          std::uint32_t run) const;
  /// Monotonically increasing per-tag serial (bumped by each publish);
  /// 0 for unknown tags.
  std::uint64_t tag_serial(const std::string& tag) const;
  std::vector<std::string> tags() const;

 private:
  struct Tag {
    std::map<std::uint32_t, ConditionsPayload> by_first_run;
    std::uint64_t serial = 0;
  };
  std::map<std::string, Tag> tags_;
};

/// Query interface shared by the server and proxies.
class FrontierEndpoint {
 public:
  virtual ~FrontierEndpoint() = default;
  /// Returns the payload blob; throws FrontierError when (tag, run) has no
  /// covering interval of validity.
  virtual std::string query(const std::string& tag, std::uint32_t run) = 0;
};

/// The origin server: answers from the database, counts queries.
class FrontierServer final : public FrontierEndpoint {
 public:
  explicit FrontierServer(const ConditionsDatabase& db) : db_(&db) {}
  std::string query(const std::string& tag, std::uint32_t run) override;
  std::uint64_t queries() const { return queries_; }
  const ConditionsDatabase& database() const { return *db_; }

 private:
  const ConditionsDatabase* db_;
  std::uint64_t queries_ = 0;
};

/// A caching proxy tier; chainable (proxy -> proxy -> server), thread safe.
/// Entries carry the tag serial they were cached under and are refreshed
/// when the tag has been republished since.
class FrontierProxy final : public FrontierEndpoint {
 public:
  /// `upstream` must outlive the proxy; `origin_db` is consulted only for
  /// the cheap serial check (the real protocol piggybacks this on
  /// time-to-live headers).
  FrontierProxy(FrontierEndpoint& upstream, const ConditionsDatabase& origin);

  std::string query(const std::string& tag, std::uint32_t run) override;

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t refreshes() const;  ///< stale entries re-fetched
  [[nodiscard]] std::size_t entries() const;

 private:
  struct Key {
    std::string tag;
    std::uint32_t run;
    bool operator<(const Key& o) const {
      return tag != o.tag ? tag < o.tag : run < o.run;
    }
  };
  struct Entry {
    std::string blob;
    std::uint64_t serial = 0;
  };

  FrontierEndpoint* upstream_ LOBSTER_NOT_GUARDED(immutable after construction);
  const ConditionsDatabase* origin_
      LOBSTER_NOT_GUARDED(immutable after construction);
  mutable std::mutex mutex_;
  std::map<Key, Entry> cache_ LOBSTER_GUARDED_BY(mutex_);
  std::uint64_t hits_ LOBSTER_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ LOBSTER_GUARDED_BY(mutex_) = 0;
  std::uint64_t refreshes_ LOBSTER_GUARDED_BY(mutex_) = 0;
};

/// Build a realistic synthetic conditions set: `tags` tags, each covering
/// run range [first_run, first_run + runs) in IOV chunks, blob sizes around
/// `blob_bytes`.
ConditionsDatabase make_synthetic_conditions(std::size_t tags,
                                             std::uint32_t first_run,
                                             std::uint32_t runs,
                                             std::size_t blob_bytes,
                                             std::uint64_t seed);

}  // namespace lobster::frontier

#include "frontier/frontier.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace lobster::frontier {

void ConditionsDatabase::publish(const std::string& tag,
                                 ConditionsPayload payload) {
  if (tag.empty()) throw FrontierError("frontier: empty tag");
  if (payload.first_run > payload.last_run)
    throw FrontierError("frontier: inverted interval of validity");
  Tag& t = tags_[tag];
  // Reject overlap with any existing IOV of this tag.
  auto it = t.by_first_run.upper_bound(payload.first_run);
  if (it != t.by_first_run.begin()) {
    const auto& prev = std::prev(it)->second;
    if (prev.last_run >= payload.first_run)
      throw FrontierError("frontier: overlapping IOV for tag " + tag);
  }
  if (it != t.by_first_run.end() && it->second.first_run <= payload.last_run)
    throw FrontierError("frontier: overlapping IOV for tag " + tag);
  t.by_first_run.emplace(payload.first_run, std::move(payload));
  ++t.serial;
}

std::optional<ConditionsPayload> ConditionsDatabase::lookup(
    const std::string& tag, std::uint32_t run) const {
  const auto t = tags_.find(tag);
  if (t == tags_.end()) return std::nullopt;
  auto it = t->second.by_first_run.upper_bound(run);
  if (it == t->second.by_first_run.begin()) return std::nullopt;
  const auto& payload = std::prev(it)->second;
  if (run > payload.last_run) return std::nullopt;
  return payload;
}

std::uint64_t ConditionsDatabase::tag_serial(const std::string& tag) const {
  const auto t = tags_.find(tag);
  return t == tags_.end() ? 0 : t->second.serial;
}

std::vector<std::string> ConditionsDatabase::tags() const {
  std::vector<std::string> out;
  for (const auto& [tag, _] : tags_) out.push_back(tag);
  return out;
}

std::string FrontierServer::query(const std::string& tag, std::uint32_t run) {
  ++queries_;
  const auto payload = db_->lookup(tag, run);
  if (!payload)
    throw FrontierError("frontier: no conditions for tag " + tag + " run " +
                        std::to_string(run));
  return payload->blob;
}

FrontierProxy::FrontierProxy(FrontierEndpoint& upstream,
                             const ConditionsDatabase& origin)
    : upstream_(&upstream), origin_(&origin) {}

std::string FrontierProxy::query(const std::string& tag, std::uint32_t run) {
  const Key key{tag, run};
  const std::uint64_t serial = origin_->tag_serial(tag);
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (it->second.serial == serial) {
        ++hits_;
        return it->second.blob;
      }
      ++refreshes_;  // republished tag: entry is stale
    } else {
      ++misses_;
    }
  }
  // Fetch outside the lock; concurrent misses for the same key both go
  // upstream, like a real proxy under a thundering herd.
  std::string blob = upstream_->query(tag, run);
  {
    std::lock_guard lock(mutex_);
    cache_[key] = Entry{blob, serial};
  }
  return blob;
}

std::uint64_t FrontierProxy::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t FrontierProxy::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t FrontierProxy::refreshes() const {
  std::lock_guard lock(mutex_);
  return refreshes_;
}

std::size_t FrontierProxy::entries() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

ConditionsDatabase make_synthetic_conditions(std::size_t tags,
                                             std::uint32_t first_run,
                                             std::uint32_t runs,
                                             std::size_t blob_bytes,
                                             std::uint64_t seed) {
  if (tags == 0 || runs == 0)
    throw FrontierError("frontier: need at least one tag and one run");
  util::Rng rng(seed);
  ConditionsDatabase db;
  for (std::size_t t = 0; t < tags; ++t) {
    char name[64];
    std::snprintf(name, sizeof name, "CMS_COND_TAG_%03zu_v1", t);
    std::uint32_t run = first_run;
    const std::uint32_t last = first_run + runs - 1;
    while (run <= last) {
      const std::uint32_t span = static_cast<std::uint32_t>(
          rng.uniform_int(1, std::max<std::int64_t>(1, runs / 8)));
      ConditionsPayload payload;
      payload.first_run = run;
      payload.last_run = std::min(last, run + span - 1);
      const std::size_t size = static_cast<std::size_t>(
          rng.uniform(0.5, 1.5) * static_cast<double>(blob_bytes));
      payload.blob.reserve(size);
      for (std::size_t i = 0; i < size; ++i)
        payload.blob.push_back(
            static_cast<char>('A' + (rng)() % 26));
      const std::uint32_t next_run = payload.last_run + 1;
      db.publish(name, std::move(payload));
      run = next_run;
    }
  }
  return db;
}

}  // namespace lobster::frontier

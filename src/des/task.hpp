// task.hpp — a lazy awaitable coroutine, for composing simulation logic.
//
// des::Process is the top-level entity owned by the Simulation; des::Task<T>
// is a *sub*-coroutine that a Process (or another Task) co_awaits:
//
//   des::Task<double> fetch(Squid& s, double bytes) {
//     auto slot = co_await s.connections().acquire();
//     double t0 = s.sim().now();
//     co_await s.uplink().transfer(bytes);
//     co_return s.sim().now() - t0;
//   }
//   des::Process worker(...) {
//     double dt = co_await fetch(squid, 1.5e9);
//     ...
//   }
//
// Tasks are lazy (start when awaited), single-await, owned by the Task
// object (RAII), and complete with symmetric transfer back to the awaiter.
// Exceptions thrown inside a Task propagate to the awaiter.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace lobster::des {

template <typename T>
class [[nodiscard]] Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    T value{};
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
      handle.promise().continuation = cont;
      return handle;  // start the task (symmetric transfer)
    }
    T await_resume() {
      if (handle.promise().error)
        std::rethrow_exception(handle.promise().error);
      return std::move(handle.promise().value);
    }
  };
  Awaiter operator co_await() { return Awaiter{handle_}; }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
      handle.promise().continuation = cont;
      return handle;
    }
    void await_resume() {
      if (handle.promise().error)
        std::rethrow_exception(handle.promise().error);
    }
  };
  Awaiter operator co_await() { return Awaiter{handle_}; }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

}  // namespace lobster::des

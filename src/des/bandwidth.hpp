// bandwidth.hpp — fluid-flow shared link with max-min fair bandwidth
// allocation.
//
// This models the paper's contended network paths: the 10 Gbit/s campus
// uplink that the 10k-core data processing run saturates (Section 6), the
// squid proxy uplinks, and the Chirp server NIC.  Concurrent transfers share
// the link capacity max-min fairly; each flow can additionally be capped
// (e.g. a worker NIC limit).  Rates are recomputed whenever a flow joins,
// finishes, or the link capacity changes (outage injection sets capacity to
// zero, stalling all flows — exactly the "transient outage of the wide-area
// data handling system" visible in Figure 10).
//
//   des::BandwidthLink wan(sim, util::gbit_per_s(10));
//   co_await wan.transfer(util::gb(2.1));            // completes when done
#pragma once

#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "des/simulation.hpp"

namespace lobster::des {

class BandwidthLink {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  BandwidthLink(Simulation& sim, double capacity_bytes_per_s);
  BandwidthLink(const BandwidthLink&) = delete;
  BandwidthLink& operator=(const BandwidthLink&) = delete;

  /// Change capacity at runtime; 0 stalls all flows (outage).
  void set_capacity(double bytes_per_s);
  double capacity() const { return capacity_; }

  std::size_t active_flows() const { return flows_.size(); }
  /// Total bytes moved across the link so far (completed + partial flows);
  /// used by the conservation property tests.
  [[nodiscard]] double bytes_moved() const;
  /// Instantaneous allocated rate summed over flows (<= capacity).
  double allocated_rate() const;

  struct TransferAwaiter {
    BandwidthLink* link;
    double bytes;
    double rate_cap;
    std::shared_ptr<Event> done;
    bool await_ready() noexcept {
      if (bytes <= 0.0) return true;
      done = link->start_flow(bytes, rate_cap);
      return done->triggered();
    }
    void await_suspend(std::coroutine_handle<> h) { done->add_waiter(h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable transfer of `bytes` with optional per-flow rate cap.
  TransferAwaiter transfer(double bytes, double rate_cap = kUncapped) {
    return TransferAwaiter{this, bytes, rate_cap, nullptr};
  }

 private:
  friend struct TransferAwaiter;
  struct Flow {
    std::uint64_t id = 0;
    double total = 0.0;
    double remaining = 0.0;
    double cap = 0.0;
    double rate = 0.0;
    std::shared_ptr<Event> done;
  };

  std::shared_ptr<Event> start_flow(double bytes, double rate_cap);
  /// Integrate progress since last update at the current rates.
  void advance();
  /// Water-filling max-min allocation respecting per-flow caps.
  void recompute_rates();
  /// Schedule the next completion callback (cancels stale ones via gen_).
  void reschedule();
  void on_timer(std::uint64_t gen);

  Simulation& sim_;
  double capacity_;
  double last_update_ = 0.0;
  double completed_bytes_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t gen_ = 0;
  // Flat array kept in ascending flow-id order (ids are assigned
  // monotonically, so push_back maintains it; completion erasure compacts
  // stably).  Id-order iteration makes same-time completions trigger
  // deterministically and pins the floating-point summation order the
  // golden files depend on.
  std::vector<Flow> flows_;
};

}  // namespace lobster::des

// bandwidth.hpp — fluid-flow shared link with max-min fair bandwidth
// allocation.
//
// This models the paper's contended network paths: the 10 Gbit/s campus
// uplink that the 10k-core data processing run saturates (Section 6), the
// squid proxy uplinks, and the Chirp server NIC.  Concurrent transfers share
// the link capacity max-min fairly; each flow can additionally be capped
// (e.g. a worker NIC limit).  Rates are recomputed whenever a flow joins,
// finishes, or the link capacity changes (outage injection sets capacity to
// zero, stalling all flows — exactly the "transient outage of the wide-area
// data handling system" visible in Figure 10).
//
//   des::BandwidthLink wan(sim, util::gbit_per_s(10));
//   co_await wan.transfer(util::gb(2.1));            // completes when done
//
// Incremental solver contract (the 200 Gbps data-plane work):
//
//   * A max-min allocation is fully described by one number: the fair share
//     F.  Every flow's rate is min(cap, F); flows with cap <= F are the
//     cap-bound set, everyone else shares the residual equally.  The link
//     therefore stores no per-flow rate at all — `by_cap_` keeps flow ids
//     sorted by (cap, id), and solve() walks only the cap-bound *prefix*
//     of that order (O(k+1) for k cap-bound flows; k == 0 in the saturated
//     regime) instead of iterating full water-filling passes over every
//     flow.  The prefix sum is accumulated in Kahan-compensated long
//     double and the residual is clamped at zero, so the fair share can
//     never go negative and stall uncapped flows (the latent precision
//     trap in the old solver).
//   * Same-timestamp updates coalesce: a join only appends the flow and
//     schedules one zero-delay batch flush, so a dispatch burst of N
//     transfers triggers one solve, not N.  Capacity changes and timer
//     completions flush eagerly (allocated_rate() <= capacity() must hold
//     the moment set_capacity returns).
//   * The arithmetic is canonical — ascending (cap, id) order, Kahan
//     prefix, residual/(n-k) — and deliberately identical to the naive
//     O(n^2) oracle in tests/reference_link.hpp; bandwidth_diff_test
//     fuzzes thousands of join/finish/cap-change/outage interleavings and
//     requires rates within 1 ulp and completion times bit-identical.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "des/simulation.hpp"

namespace lobster::des {

class BandwidthLink {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  BandwidthLink(Simulation& sim, double capacity_bytes_per_s);
  BandwidthLink(const BandwidthLink&) = delete;
  BandwidthLink& operator=(const BandwidthLink&) = delete;

  /// Change capacity at runtime; 0 stalls all flows (outage).
  void set_capacity(double bytes_per_s);
  double capacity() const { return capacity_; }

  std::size_t active_flows() const { return flows_.size(); }
  /// Total bytes moved across the link so far (completed + partial flows);
  /// used by the conservation property tests.
  [[nodiscard]] double bytes_moved() const;
  /// Instantaneous allocated rate summed over flows (<= capacity).  O(1):
  /// cap-bound prefix sum plus (n - k) * fair share, maintained by solve().
  double allocated_rate() const { return allocated_; }
  /// Current fair share F: every flow's rate is min(cap, F).  kUncapped
  /// when every flow is cap-bound (or no flows); 0 while the link is down.
  [[nodiscard]] double fair_rate() const { return fair_rate_; }

  /// Visit every active flow in ascending flow-id order (the deterministic
  /// iteration order everything else pins).  For the property/differential
  /// tests: fn(id, total, remaining, cap, rate).
  template <typename Fn>
  void for_each_flow(Fn&& fn) const {
    for (const Flow& f : flows_)
      fn(f.id, f.total, f.remaining, f.cap, std::min(f.cap, fair_rate_));
  }

  struct TransferAwaiter {
    BandwidthLink* link;
    double bytes;
    double rate_cap;
    std::shared_ptr<Event> done;
    bool await_ready() noexcept {
      if (bytes <= 0.0) return true;
      done = link->start_flow(bytes, rate_cap);
      return done->triggered();
    }
    void await_suspend(std::coroutine_handle<> h) { done->add_waiter(h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable transfer of `bytes` with optional per-flow rate cap.
  TransferAwaiter transfer(double bytes, double rate_cap = kUncapped) {
    return TransferAwaiter{this, bytes, rate_cap, nullptr};
  }

  /// Advanced: start a flow and return its completion event without
  /// awaiting.  Multi-hop paths (site uplink feeding a shared WAN trunk)
  /// use this to occupy several links simultaneously and then wait for the
  /// slowest hop.
  std::shared_ptr<Event> start_flow(double bytes, double rate_cap);

 private:
  friend struct TransferAwaiter;
  struct Flow {
    std::uint64_t id = 0;
    double total = 0.0;
    double remaining = 0.0;
    double cap = 0.0;
    std::shared_ptr<Event> done;
  };
  /// by_cap_ ordering key: ascending (cap, id).  The cap-bound set is
  /// always a prefix of this order, so solve() never scans past it.
  struct CapEntry {
    double cap = 0.0;
    std::uint64_t id = 0;
    bool operator<(const CapEntry& o) const {
      return cap != o.cap ? cap < o.cap : id < o.id;
    }
  };

  const Flow* find_flow(std::uint64_t id) const;
  /// Integrate progress since the last update at the current rates and
  /// sweep completions.  Returns true when flow progress changed (time
  /// advanced or a pending sub-epsilon joiner completed) — the caller then
  /// owes a refresh_fair_floor() after the next solve().  Zero-width
  /// updates sweep pending sub-epsilon joiners only when `zero_width_sweep`
  /// is set: joins, capacity changes, and timers sweep (the historical
  /// every-event contract the oracle reproduces); the link's own batch
  /// flush does not, because the naive semantics have no such event.
  bool advance(bool zero_width_sweep);
  /// Re-solve the cap-bound/fair-share boundary (canonical ascending scan,
  /// O(k+1)).  `fair_prev` is the fair share before this solve; when the
  /// share dropped, the flows whose caps fall in (fair, fair_prev] migrate
  /// cap-bound -> fair-share and their remaining bytes join the fair floor.
  void solve(double fair_prev);
  /// Recompute min remaining over fair-share flows (O(n)); needed whenever
  /// progress integrated or the fair share rose (the fair set shrank).
  void refresh_fair_floor();
  /// Schedule the next completion callback (cancels stale ones via gen_).
  void reschedule();
  /// solve + conditional refresh + reschedule; subsumes any pending batch.
  void resolve();
  /// advance + resolve: the eager update path (timer completions) and the
  /// zero-delay batch flush.
  void flush(bool zero_width_sweep);
  /// Coalesce same-timestamp updates: the first join at a timestamp
  /// schedules one zero-delay flush; further joins ride along for free.
  void request_batch();
  void on_timer(std::uint64_t gen);

  Simulation& sim_;
  double capacity_;
  double last_update_ = 0.0;
  double completed_bytes_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t gen_ = 0;
  // Solver state: fair share F, cached allocation, cap-bound prefix size,
  // and the two completion-candidate minima reschedule() needs (min
  // remaining over fair flows; min remaining/cap over cap-bound flows).
  double fair_rate_ = kUncapped;
  double allocated_ = 0.0;
  std::size_t capped_count_ = 0;
  double min_fair_remaining_ = kUncapped;
  double min_capped_finish_ = kUncapped;
  bool batch_pending_ = false;
  bool sweep_pending_ = false;
  bool refresh_pending_ = false;
  // Flat array kept in ascending flow-id order (ids are assigned
  // monotonically, so push_back maintains it; completion erasure compacts
  // stably).  Id-order iteration makes same-time completions trigger
  // deterministically and pins the floating-point summation order the
  // golden files depend on.
  std::vector<Flow> flows_;
  // Flow ids sorted by (cap, id).  Uniform caps (the federation's
  // per-stream limit) insert at the tail in O(1); heterogeneous caps pay
  // one ordered insert per join.
  std::vector<CapEntry> by_cap_;
  // Joins since the last solve: classified into the fair floor once the
  // post-batch fair share is known.
  std::vector<std::uint64_t> pending_joins_;
  std::vector<std::uint64_t> removed_scratch_;
};

}  // namespace lobster::des

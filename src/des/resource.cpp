#include "des/resource.hpp"

#include <stdexcept>

namespace lobster::des {

ResourceToken& ResourceToken::operator=(ResourceToken&& o) noexcept {
  if (this != &o) {
    release();
    res_ = o.res_;
    amount_ = o.amount_;
    o.res_ = nullptr;
    o.amount_ = 0;
  }
  return *this;
}

void ResourceToken::release() {
  if (res_) {
    res_->release(amount_);
    res_ = nullptr;
    amount_ = 0;
  }
}

Resource::Resource(Simulation& sim, std::int64_t capacity)
    : sim_(sim), capacity_(capacity), available_(capacity) {
  if (capacity < 0) throw std::invalid_argument("Resource: capacity < 0");
}

void Resource::set_capacity(std::int64_t capacity) {
  if (capacity < 0) throw std::invalid_argument("Resource: capacity < 0");
  available_ += capacity - capacity_;
  capacity_ = capacity;
  grant_waiters();
}

bool Resource::try_acquire(std::int64_t amount) {
  if (!waiters_.empty() || available_ < amount) return false;
  available_ -= amount;
  return true;
}

void Resource::release(std::int64_t amount) {
  available_ += amount;
  grant_waiters();
}

void Resource::grant_waiters() {
  while (!waiters_.empty() && waiters_.front().amount <= available_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.amount;  // reserve before the waiter actually runs
    sim_.schedule_resume(0.0, w.handle);
  }
}

}  // namespace lobster::des

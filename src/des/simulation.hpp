// simulation.hpp — coroutine-based discrete-event simulation kernel.
//
// The cluster-scale experiments of the Lobster paper (Figures 3-5, 7-11) are
// reproduced on this kernel.  It follows the SimPy process model: simulation
// entities are C++20 coroutines that co_await delays, one-shot events,
// counted resources and bandwidth transfers.  Determinism: events scheduled
// at the same timestamp fire in scheduling order (a monotonically increasing
// sequence number breaks ties), so a fixed seed reproduces a run exactly.
//
// Hot-path layout: pending events live in a two-level calendar queue
// (des/event_queue.hpp) and live processes in a generational slab
// (des/handle.hpp) — no per-event heap nodes, no pointer-keyed hash maps.
// Coroutine resumptions travel as raw handles (schedule_resume); only
// external callbacks pay for std::function type erasure.
//
// Ownership model: a coroutine returning des::Process starts suspended and
// owns its own frame until Simulation::spawn() takes it over.  Frames are
// destroyed either when the process finishes (inside final_suspend) or when
// the Simulation is destroyed with processes still pending.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "des/event_queue.hpp"
#include "des/handle.hpp"
#include "util/trace.hpp"

namespace lobster::des {

class Simulation;
class Event;

/// Handle for joining a spawned process: exposes the completion event.
/// Internally an EntityHandle into the simulation's live-process slab; the
/// completion Event is materialised lazily on the first done() call, so a
/// spawn that nobody joins allocates nothing.
class ProcessRef {
 public:
  ProcessRef() = default;
  ProcessRef(Simulation* sim, EntityHandle h) : sim_(sim), h_(h) {}
  /// Completion event — co_await ref.done() to join the process.  For an
  /// already-finished process this returns an event that is triggered.
  Event& done() const;
  bool valid() const { return sim_ != nullptr; }

 private:
  Simulation* sim_ = nullptr;
  EntityHandle h_;
  mutable std::shared_ptr<Event> done_;  ///< cache of the joined event
};

/// Coroutine return type for simulation processes.
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Simulation* sim = nullptr;
    /// Completion event, created lazily by ProcessRef::done().
    std::shared_ptr<Event> done;
    /// This process's slot in the simulation's live-process slab.
    EntityHandle live;

    Process get_return_object() {
      return Process(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(Handle h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  Process(Process&& o) noexcept : handle_(o.handle_) { o.handle_ = nullptr; }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;
  ~Process() {
    if (handle_) handle_.destroy();
  }

 private:
  friend class Simulation;
  explicit Process(Handle h) : handle_(h) {}
  Handle handle_;
};

/// A one-shot broadcast event.  Processes co_await it; trigger() resumes
/// every waiter (at the current simulation time, via the event queue).
/// Awaiting an already-triggered event completes immediately.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void trigger();
  bool triggered() const { return triggered_; }

  /// Register a coroutine to resume on trigger (used by custom awaitables
  /// such as BandwidthLink::TransferAwaiter).  Caller must have checked
  /// triggered() first.
  void add_waiter(std::coroutine_handle<> h) { waiters_.push_back(h); }

  struct Awaiter {
    Event* event;
    bool await_ready() const noexcept { return event->triggered_; }
    void await_suspend(std::coroutine_handle<> h) {
      event->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{this}; }

 private:
  Simulation* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// The simulation engine: a time-ordered calendar queue plus the process
/// registry.  Time is a double in seconds starting at 0.
class Simulation {
 public:
  Simulation() { tracer_.bind_clock(&now_); }
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  /// Schedule a raw callback `delay` seconds from now (delay >= 0).
  void schedule(double delay, std::function<void()> fn);

  /// Schedule a coroutine resumption `delay` seconds from now — the
  /// allocation-free fast path used by delays, event triggers and resource
  /// grants.
  void schedule_resume(double delay, std::coroutine_handle<> h);

  /// Take ownership of a process coroutine and schedule its first step at
  /// the current time.  Returns a joinable reference.
  ProcessRef spawn(Process p);

  /// Awaitable pause: co_await sim.delay(dt).
  struct DelayAwaiter {
    Simulation* sim;
    double dt;
    bool await_ready() const noexcept { return dt <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_resume(dt, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(double dt) { return DelayAwaiter{this, dt}; }

  /// Create an event owned by shared_ptr (convenience).
  std::shared_ptr<Event> make_event() { return std::make_shared<Event>(*this); }

  /// Execute the next pending callback.  Returns false when queue is empty.
  bool step();
  /// Run until the queue drains (or `max_events` callbacks have run).
  void run(std::uint64_t max_events = ~0ULL);
  /// Run callbacks with timestamp <= t, then set now() = t.
  void run_until(double t);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::size_t live_processes() const { return live_.size(); }

  /// Per-simulation span/event emitter, clock-bound to now().  Inert until
  /// a sink is installed (Tracer::set_sink).
  util::Tracer& tracer() { return tracer_; }
  /// The unified counter plane: DES models and the engine register named
  /// counters here; wq/chirp/hdfs substrate objects can bind to it too.
  util::CounterRegistry& counters() { return counters_; }

 private:
  friend struct Process::promise_type;
  friend class ProcessRef;

  /// One entry per live (spawned, unfinished) process coroutine.
  struct LiveProc {
    void* frame = nullptr;
    std::uint64_t spawn_seq = 0;
  };

  void unregister(EntityHandle h) { live_.erase(h); }
  /// The completion event for live process `h`, creating it in the promise
  /// on first use; a shared pre-triggered event when `h` is stale
  /// (process already finished).
  std::shared_ptr<Event> join_event(EntityHandle h);
  void record_error(std::exception_ptr e) {
    if (!error_) error_ = e;
  }
  void maybe_rethrow();

  double now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::uint64_t spawned_ = 0;
  EventQueue queue_;
  /// Live coroutine frames; spawn_seq makes teardown deterministic
  /// (reverse-spawn order), independent of slot reuse.
  Slab<LiveProc> live_;
  /// Lazily created, already-triggered event handed to joins of finished
  /// processes.
  std::shared_ptr<Event> finished_event_;
  std::exception_ptr error_;
  util::Tracer tracer_;
  util::CounterRegistry counters_;
  /// Cached so step() pays one atomic add, not a map lookup.
  util::Counter* events_counter_ = &counters_.counter("des.kernel.events_dispatched");
};

inline Event& ProcessRef::done() const {
  if (!done_) done_ = sim_->join_event(h_);
  return *done_;
}

}  // namespace lobster::des

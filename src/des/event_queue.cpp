#include "des/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace lobster::des {

void EventQueue::push_fn(double t, Callback fn) {
  std::uint32_t idx;
  if (!fn_free_.empty()) {
    idx = fn_free_.back();
    fn_free_.pop_back();
    fn_slab_[idx] = std::move(fn);
  } else {
    idx = static_cast<std::uint32_t>(fn_slab_.size());
    fn_slab_.push_back(std::move(fn));
  }
  Item it;
  it.time = t;
  it.seq = seq_++;
  it.fn = idx;
  insert(it);
  ++size_;
}

void EventQueue::push_resume(double t, std::coroutine_handle<> h) {
  Item it;
  it.time = t;
  it.seq = seq_++;
  it.handle = h;
  insert(it);
  ++size_;
}

EventQueue::Callback EventQueue::take_fn(std::uint32_t idx) {
  assert(idx < fn_slab_.size());
  Callback fn = std::move(fn_slab_[idx]);
  fn_slab_[idx] = nullptr;
  fn_free_.push_back(idx);
  return fn;
}

void EventQueue::insert(Item item) {
  // Same-timestamp pushes while a batch drains join the batch directly:
  // seq is monotone, so appending preserves the sorted (time, seq) order.
  // This is the zero-delay resume fast path (event triggers, queue wakes).
  if (batch_active_ && item.time == batch_time_) {
    batch_.push_back(item);
    return;
  }
  if (bucket_count_ == 0) {  // no window yet: first ensure_batch builds one
    overflow_.push_back(item);
    return;
  }
  const double rel = item.time - win_start_;
  std::size_t idx =
      rel <= 0.0 ? 0 : static_cast<std::size_t>(rel / width_);
  if (idx >= bucket_count_) {
    overflow_.push_back(item);
    return;
  }
  Bucket& b = buckets_[idx];
  if (!b.items.empty() && item_before(item, b.items.back())) b.sorted = false;
  b.items.push_back(item);
  if (idx < cursor_) cursor_ = idx;
}

bool EventQueue::ensure_batch() {
  if (batch_pos_ < batch_.size()) return true;
  batch_.clear();
  batch_pos_ = 0;
  batch_active_ = false;
  for (;;) {
    while (cursor_ < bucket_count_ && buckets_[cursor_].drained()) {
      Bucket& b = buckets_[cursor_];
      b.items.clear();
      b.offset = 0;
      b.sorted = true;
      ++cursor_;
    }
    if (cursor_ >= bucket_count_) {
      if (overflow_.empty()) return false;
      rebuild_window();
      continue;
    }
    Bucket& b = buckets_[cursor_];
    if (!b.sorted) {
      std::sort(b.items.begin() + static_cast<std::ptrdiff_t>(b.offset),
                b.items.end(), item_before);
      b.sorted = true;
    }
    batch_time_ = b.items[b.offset].time;
    while (b.offset < b.items.size() &&
           b.items[b.offset].time == batch_time_)
      batch_.push_back(b.items[b.offset++]);
    if (b.drained()) {
      b.items.clear();
      b.offset = 0;
      b.sorted = true;
    }
    batch_active_ = true;
    return true;
  }
}

void EventQueue::rebuild_window() {
  assert(!overflow_.empty());
  double t_min = overflow_.front().time;
  double t_max = t_min;
  for (const Item& it : overflow_) {
    t_min = std::min(t_min, it.time);
    t_max = std::max(t_max, it.time);
  }
  // Size the window to the observed density: ~2 items per bucket, bucket
  // counts a power of two in [64, 65536].
  std::size_t nb = 64;
  while (nb < overflow_.size() / 2 && nb < 65536) nb <<= 1;
  const double span = t_max - t_min;
  win_start_ = t_min;
  width_ = span > 0.0 ? span / static_cast<double>(nb) : 1.0;
  bucket_count_ = nb;
  cursor_ = 0;
  buckets_.resize(nb);
  for (Bucket& b : buckets_) {
    b.items.clear();
    b.offset = 0;
    b.sorted = true;
  }
  std::vector<Item> keep;
  for (const Item& it : overflow_) {
    const double rel = it.time - win_start_;
    const std::size_t idx =
        rel <= 0.0 ? 0 : static_cast<std::size_t>(rel / width_);
    if (idx >= nb) {  // t_max can round to idx == nb; recycle next rebuild
      keep.push_back(it);
      continue;
    }
    Bucket& b = buckets_[idx];
    if (!b.items.empty() && item_before(it, b.items.back()))
      b.sorted = false;
    b.items.push_back(it);
  }
  overflow_ = std::move(keep);
}

double EventQueue::next_time() {
  if (!ensure_batch()) return std::numeric_limits<double>::infinity();
  return batch_[batch_pos_].time;
}

bool EventQueue::pop_next(Item& out) {
  if (!ensure_batch()) return false;
  out = batch_[batch_pos_++];
  --size_;
  return true;
}

}  // namespace lobster::des

// handle.hpp — index-based entity handles into flat slab arrays.
//
// The DES kernel and the lobsim engine track many small entities (live
// coroutine frames, worker nodes, flows) whose lifetime does not nest.  A
// pointer- or hash-map-keyed registry costs an allocation plus a hash probe
// per entity operation on the hottest path of a 110k-core run.  A Slab
// stores entities in one contiguous vector, recycles freed slots through a
// free list, and tags every slot with a generation counter so a stale
// EntityHandle (kept after erase, slot since recycled) is detected instead
// of silently aliasing the new occupant.
//
// Determinism note: Slab iteration (`for_each`) runs in slot-index order,
// which is allocation order for a slab that never erases and otherwise a
// fixed function of the erase/emplace history — never hash order.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lobster::des {

/// A 64-bit generational index: `index` names the slab slot, `generation`
/// must match the slot's current generation or the handle is stale.
struct EntityHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return index != kInvalidIndex; }
  friend bool operator==(const EntityHandle&, const EntityHandle&) = default;
};

/// Flat slab of T with free-list slot recycling and generation checking.
/// T must be default-constructible and move-assignable.  Pointers returned
/// by get() are invalidated by the next emplace() (vector growth); handles
/// are stable for the entity's lifetime.
template <typename T>
class Slab {
 public:
  template <typename... Args>
  EntityHandle emplace(Args&&... args) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    s.value = T(std::forward<Args>(args)...);
    s.alive = true;
    ++alive_;
    return EntityHandle{idx, s.generation};
  }

  /// The live entity for `h`, or nullptr when `h` is stale or invalid.
  [[nodiscard]] T* get(EntityHandle h) {
    if (h.index >= slots_.size()) return nullptr;
    Slot& s = slots_[h.index];
    if (!s.alive || s.generation != h.generation) return nullptr;
    return &s.value;
  }
  [[nodiscard]] const T* get(EntityHandle h) const {
    return const_cast<Slab*>(this)->get(h);
  }

  /// Free the slot (no-op when stale); bumps the generation so outstanding
  /// handles to the old occupant go stale.
  void erase(EntityHandle h) {
    if (h.index >= slots_.size()) return;
    Slot& s = slots_[h.index];
    if (!s.alive || s.generation != h.generation) return;
    s.alive = false;
    ++s.generation;
    s.value = T();  // release owned state eagerly
    free_.push_back(h.index);
    --alive_;
  }

  [[nodiscard]] std::size_t size() const { return alive_; }
  [[nodiscard]] bool empty() const { return alive_ == 0; }
  /// Slots currently allocated (alive + free).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Visit every live entity in slot-index order: f(EntityHandle, T&).
  template <typename F>
  void for_each(F&& f) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.alive) f(EntityHandle{i, s.generation}, s.value);
    }
  }

 private:
  struct Slot {
    T value{};
    std::uint32_t generation = 0;
    bool alive = false;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t alive_ = 0;
};

}  // namespace lobster::des

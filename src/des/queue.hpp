// queue.hpp — an unbounded FIFO queue with awaitable get(), the DES analogue
// of a message channel.  Used to hand tasks from the simulated Work Queue
// master to foremen and workers.
//
// Delivery is direct: put() moves the item straight into the oldest waiting
// getter's awaiter slot before resuming it, so a concurrently arriving getter
// can never steal an item out from under a woken waiter.  Invariant: the item
// buffer and the waiter list are never both non-empty.
//
// put() after close() is a producer bug — the item can never be delivered.
// Debug builds assert; release builds drop the item but count it on the
// simulation's `des.queue.dropped_after_close` counter so the loss is
// visible in the metrics plane instead of silent.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "des/simulation.hpp"

namespace lobster::des {

template <typename T>
class SimQueue {
 public:
  explicit SimQueue(Simulation& sim)
      : sim_(&sim),
        dropped_counter_(
            &sim.counters().counter("des.queue.dropped_after_close")) {}
  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  struct GetAwaiter {
    SimQueue* q;
    std::optional<T> value;

    bool await_ready() noexcept {
      if (!q->items_.empty()) {
        value = std::move(q->items_.front());
        q->items_.pop_front();
        return true;
      }
      return q->closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      q->waiters_.push_back({this, h});
    }
    std::optional<T> await_resume() { return std::move(value); }
  };

  /// Enqueue an item; delivers directly to the oldest waiting getter if any.
  /// Calling put() on a closed queue loses the item: asserts in debug,
  /// counts `des.queue.dropped_after_close` in release.
  void put(T item) {
    if (closed_) {
      assert(!closed_ && "SimQueue::put after close");
      dropped_counter_->add();
      return;
    }
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.awaiter->value = std::move(item);
      sim_->schedule_resume(0.0, w.handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  /// Close the queue: pending and future getters receive std::nullopt once
  /// the buffer drains.
  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_resume(0.0, w.handle);
    }
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return items_.size(); }
  std::size_t waiting_getters() const { return waiters_.size(); }

  /// Awaitable dequeue; resolves to nullopt when closed and drained.
  GetAwaiter get() { return GetAwaiter{this, std::nullopt}; }

  /// Non-blocking dequeue.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  struct Waiter {
    GetAwaiter* awaiter;
    std::coroutine_handle<> handle;
  };

  Simulation* sim_;
  /// Cached `des.queue.dropped_after_close` counter (registry-shared).
  util::Counter* dropped_counter_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
  bool closed_ = false;
};

}  // namespace lobster::des

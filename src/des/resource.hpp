// resource.hpp — counted resource with FIFO admission, the DES analogue of a
// server with a concurrency limit.  Used to model squid proxy slots, Chirp
// server connection limits, worker cores, and HDFS datanode service slots.
//
//   des::Resource squid(sim, /*capacity=*/200);
//   {
//     auto slot = co_await squid.acquire();   // RAII token
//     co_await sim.delay(service_time);
//   }                                         // released here
//
// Admission is strictly FIFO: a large request at the head blocks later small
// ones, which prevents starvation of multi-unit requests.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "des/simulation.hpp"

namespace lobster::des {

class Resource;

/// RAII grant of `amount` units; releases on destruction (or explicitly).
class [[nodiscard]] ResourceToken {
 public:
  ResourceToken() = default;
  ResourceToken(Resource* res, std::int64_t amount)
      : res_(res), amount_(amount) {}
  ResourceToken(ResourceToken&& o) noexcept
      : res_(o.res_), amount_(o.amount_) {
    o.res_ = nullptr;
    o.amount_ = 0;
  }
  ResourceToken& operator=(ResourceToken&& o) noexcept;
  ResourceToken(const ResourceToken&) = delete;
  ResourceToken& operator=(const ResourceToken&) = delete;
  ~ResourceToken() { release(); }

  void release();
  bool held() const { return res_ != nullptr; }
  std::int64_t amount() const { return amount_; }

 private:
  Resource* res_ = nullptr;
  std::int64_t amount_ = 0;
};

class Resource {
 public:
  Resource(Simulation& sim, std::int64_t capacity);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const { return available_; }
  std::int64_t in_use() const { return capacity_ - available_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Grow/shrink capacity at runtime (used for elastic clusters).  Shrinking
  /// below in_use is allowed; available goes negative until releases catch
  /// up.
  void set_capacity(std::int64_t capacity);

  struct Awaiter {
    Resource* res;
    std::int64_t amount;
    bool suspended = false;
    bool await_ready() const noexcept {
      return res->waiters_.empty() && res->available_ >= amount;
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      res->waiters_.push_back({amount, h});
    }
    ResourceToken await_resume() noexcept {
      // If we suspended, grant_waiters() already reserved our units before
      // resuming us; otherwise we take them now.
      if (!suspended) res->available_ -= amount;
      return ResourceToken(res, amount);
    }
  };

  /// Acquire `amount` units, waiting FIFO if necessary.
  Awaiter acquire(std::int64_t amount = 1) { return Awaiter{this, amount}; }

  /// Non-coroutine acquisition attempt (for callback-style users).
  bool try_acquire(std::int64_t amount = 1);
  void release(std::int64_t amount = 1);

 private:
  friend struct Awaiter;
  friend class ResourceToken;

  struct Waiter {
    std::int64_t amount;
    std::coroutine_handle<> handle;
  };

  void grant_waiters();

  Simulation& sim_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::deque<Waiter> waiters_;
};

}  // namespace lobster::des

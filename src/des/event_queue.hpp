// event_queue.hpp — two-level calendar/bucket event queue for the DES core.
//
// The kernel previously ordered events with a binary-heap
// std::priority_queue: O(log n) comparisons per push/pop against a
// million-entry heap, each touching a 40+-byte entry with an embedded
// std::function.  A 110k-core Global Pool run dispatches tens of millions
// of events, most of them coroutine resumptions clustered tightly in time —
// exactly the access pattern a calendar queue serves in amortised O(1).
//
// Structure (three tiers, nearest first):
//
//   batch_    the run of items sharing the earliest timestamp, sorted by
//             sequence number.  pop() walks it; a push at exactly the batch
//             timestamp appends (sequence numbers are monotone, so order is
//             preserved).  This drains same-timestamp bursts — event
//             triggers, zero-delay resumes — in one pass with no heap ops.
//   buckets_  a window of `bucket_count_` buckets of `width_` simulated
//             seconds starting at `win_start_`.  A push lands in bucket
//             (t - win_start_) / width_; buckets sort on demand (and only
//             from their drain offset) when the window cursor reaches them.
//   overflow_ everything past the window.  When the window drains, the
//             window is rebuilt over the overflow with a width adapted to
//             the observed density (~2 items per bucket, power-of-two
//             bucket counts in [64, 65536]).
//
// Determinism: the queue realises the exact total order (time, seq) with
// seq assigned in push order — the same contract the heap implemented — so
// every golden-metrics file and trace replay stays bit-identical.
//
// Item payloads are 32 bytes: the common case (resume a coroutine) is an
// inline handle; raw callbacks live in an internal free-listed slab of
// std::function so sorting moves small PODs, not type-erased closures.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace lobster::des {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  static constexpr std::uint32_t kNoFn = 0xFFFFFFFFu;

  struct Item {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle{};  ///< non-null: resume this
    std::uint32_t fn = kNoFn;          ///< else: index into the fn slab
  };

  /// Enqueue a raw callback at absolute time `t` (>= the last popped time).
  void push_fn(double t, Callback fn);
  /// Enqueue a coroutine resumption at absolute time `t` (the hot path — no
  /// allocation, no type erasure).
  void push_resume(double t, std::coroutine_handle<> h);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Timestamp of the earliest pending item; +infinity when empty.  May
  /// sort a bucket / rebuild the window (amortised against the pops that
  /// must follow).
  double next_time();

  /// Remove and return the earliest item by (time, seq).  Returns false
  /// when the queue is empty.  For fn items the caller runs take_fn().
  bool pop_next(Item& out);

  /// Move callback `idx` out of the slab and recycle the slot.  Call before
  /// invoking, so the callback may freely push new events.
  Callback take_fn(std::uint32_t idx);

 private:
  struct Bucket {
    std::vector<Item> items;
    std::size_t offset = 0;  ///< items before this are drained
    bool sorted = true;
    [[nodiscard]] bool drained() const { return offset >= items.size(); }
  };

  static bool item_before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void insert(Item item);
  /// Make batch_ hold the next same-timestamp run; false when empty.
  bool ensure_batch();
  /// Re-partition overflow_ into a fresh window sized to its density.
  void rebuild_window();

  // Tier 0: active same-timestamp batch.
  std::vector<Item> batch_;
  std::size_t batch_pos_ = 0;
  double batch_time_ = 0.0;
  bool batch_active_ = false;

  // Tier 1: bucket window [win_start_, win_start_ + bucket_count_ * width_).
  std::vector<Bucket> buckets_;
  double win_start_ = 0.0;
  double width_ = 1.0;
  std::size_t bucket_count_ = 0;
  std::size_t cursor_ = 0;  ///< first possibly non-drained bucket

  // Tier 2: items beyond the window.
  std::vector<Item> overflow_;

  // Callback slab: push_fn stores here, take_fn recycles.
  std::vector<Callback> fn_slab_;
  std::vector<std::uint32_t> fn_free_;

  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lobster::des

#include "des/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

namespace lobster::des {

void Process::promise_type::FinalAwaiter::await_suspend(Handle h) noexcept {
  auto& pr = h.promise();
  Simulation* sim = pr.sim;
  // Keep the completion event alive past frame destruction.
  std::shared_ptr<Event> done = std::move(pr.done);
  if (sim) sim->unregister(pr.live);
  h.destroy();
  if (done) done->trigger();
}

void Process::promise_type::unhandled_exception() {
  if (sim)
    sim->record_error(std::current_exception());
  else
    std::terminate();
}

void Event::trigger() {
  if (triggered_) return;
  triggered_ = true;
  // Resume waiters through the event queue so trigger() never re-enters
  // user coroutines synchronously.
  for (auto h : waiters_) sim_->schedule_resume(0.0, h);
  waiters_.clear();
}

Simulation::~Simulation() {
  // Destroy frames of processes that never finished.  Their pending queue
  // callbacks may capture the (now dangling) handles, but the queue is
  // discarded without executing them.  Frames go down in reverse spawn
  // order (LIFO, like stack unwinding) so teardown side effects never
  // depend on slot-recycling order.
  std::vector<std::pair<std::uint64_t, void*>> frames;
  frames.reserve(live_.size());
  live_.for_each([&frames](EntityHandle, LiveProc& lp) {
    frames.emplace_back(lp.spawn_seq, lp.frame);
  });
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [spawn_seq, frame] : frames)
    std::coroutine_handle<>::from_address(frame).destroy();
}

void Simulation::schedule(double delay, std::function<void()> fn) {
  // !(>= 0) also rejects NaN, which would silently corrupt queue order.
  if (!(delay >= 0.0)) throw std::invalid_argument("schedule: negative delay");
  queue_.push_fn(now_ + delay, std::move(fn));
}

void Simulation::schedule_resume(double delay, std::coroutine_handle<> h) {
  if (!(delay >= 0.0)) throw std::invalid_argument("schedule: negative delay");
  queue_.push_resume(now_ + delay, h);
}

ProcessRef Simulation::spawn(Process p) {
  Process::Handle h = std::exchange(p.handle_, nullptr);
  assert(h && "spawn of moved-from Process");
  auto& pr = h.promise();
  pr.sim = this;
  pr.live = live_.emplace(LiveProc{h.address(), spawned_++});
  schedule_resume(0.0, h);
  return ProcessRef(this, pr.live);
}

std::shared_ptr<Event> Simulation::join_event(EntityHandle h) {
  if (LiveProc* lp = live_.get(h)) {
    auto& pr = Process::Handle::from_address(lp->frame).promise();
    if (!pr.done) pr.done = std::make_shared<Event>(*this);
    return pr.done;
  }
  // Process already finished (or handle stale): joining completes
  // immediately, exactly as awaiting its triggered done event would.
  if (!finished_event_) {
    finished_event_ = std::make_shared<Event>(*this);
    finished_event_->trigger();  // no waiters yet; just marks triggered
  }
  return finished_event_;
}

bool Simulation::step() {
  EventQueue::Item item;
  if (!queue_.pop_next(item)) return false;
  assert(item.time >= now_ && "event queue went backwards");
  now_ = item.time;
  ++executed_;
  events_counter_->add();
  if (item.handle) {
    item.handle.resume();
  } else {
    // Move the callback out (recycling its slab slot) before invoking, so
    // it may freely schedule new events.
    EventQueue::Callback fn = queue_.take_fn(item.fn);
    fn();
  }
  maybe_rethrow();
  return true;
}

void Simulation::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulation::run_until(double t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Simulation::maybe_rethrow() {
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

}  // namespace lobster::des

#include "des/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

namespace lobster::des {

void Process::promise_type::FinalAwaiter::await_suspend(Handle h) noexcept {
  auto& pr = h.promise();
  Simulation* sim = pr.sim;
  // Keep the completion event alive past frame destruction.
  std::shared_ptr<Event> done = std::move(pr.done);
  if (sim) sim->unregister(h.address());
  h.destroy();
  if (done) done->trigger();
}

void Process::promise_type::unhandled_exception() {
  if (sim)
    sim->record_error(std::current_exception());
  else
    std::terminate();
}

void Event::trigger() {
  if (triggered_) return;
  triggered_ = true;
  // Resume waiters through the event queue so trigger() never re-enters
  // user coroutines synchronously.
  for (auto h : waiters_)
    sim_->schedule(0.0, [h] { h.resume(); });
  waiters_.clear();
}

Simulation::~Simulation() {
  // Destroy frames of processes that never finished.  Their pending queue
  // callbacks may capture the (now dangling) handles, but the queue is
  // discarded without executing them.  Frames go down in reverse spawn
  // order (LIFO, like stack unwinding) so teardown side effects never
  // depend on hash order.
  std::vector<std::pair<std::uint64_t, void*>> frames;
  frames.reserve(live_.size());
  // lobster-lint: ordered-ok(collection only; destroyed after sorting)
  for (const auto& [frame, spawn_seq] : live_)
    frames.emplace_back(spawn_seq, frame);
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [spawn_seq, frame] : frames)
    std::coroutine_handle<>::from_address(frame).destroy();
}

void Simulation::schedule(double delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("schedule: negative delay");
  queue_.push(Entry{now_ + delay, seq_++, std::move(fn)});
}

ProcessRef Simulation::spawn(Process p) {
  Process::Handle h = std::exchange(p.handle_, nullptr);
  assert(h && "spawn of moved-from Process");
  auto& pr = h.promise();
  pr.sim = this;
  pr.done = std::make_shared<Event>(*this);
  live_.emplace(h.address(), spawned_++);
  schedule(0.0, [h] { h.resume(); });
  return ProcessRef(pr.done);
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Move the entry out before popping so the callback survives the pop.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  assert(e.time >= now_ && "event queue went backwards");
  now_ = e.time;
  ++executed_;
  events_counter_->add();
  e.fn();
  maybe_rethrow();
  return true;
}

void Simulation::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulation::run_until(double t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

void Simulation::maybe_rethrow() {
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

}  // namespace lobster::des

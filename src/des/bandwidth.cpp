#include "des/bandwidth.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lobster::des {

namespace {
// Flows are considered finished when less than this many bytes remain;
// absorbs floating-point residue from rate * dt integration.
constexpr double kEpsilonBytes = 1e-6;

double completion_eps(double total) {
  // Relative epsilon: large transfers accumulate proportionally larger
  // floating-point residue.
  return std::max(kEpsilonBytes, 1e-12 * total);
}
}  // namespace

BandwidthLink::BandwidthLink(Simulation& sim, double capacity_bytes_per_s)
    : sim_(sim), capacity_(capacity_bytes_per_s) {
  if (capacity_ < 0.0)
    throw std::invalid_argument("BandwidthLink: negative capacity");
}

void BandwidthLink::set_capacity(double bytes_per_s) {
  if (bytes_per_s < 0.0)
    throw std::invalid_argument("BandwidthLink: negative capacity");
  // Eager: allocated_rate() <= capacity() must hold the moment this
  // returns, even mid-timestamp, so the change cannot ride a batch.
  refresh_pending_ = advance(/*zero_width_sweep=*/true) || refresh_pending_;
  capacity_ = bytes_per_s;
  resolve();
}

double BandwidthLink::bytes_moved() const {
  double partial = 0.0;
  for (const Flow& f : flows_) partial += f.total - f.remaining;
  // NB: callers that need an exact instantaneous figure should be aware the
  // in-flight component is integrated up to last_update_ only.
  return completed_bytes_ + partial;
}

const BandwidthLink::Flow* BandwidthLink::find_flow(std::uint64_t id) const {
  const auto it = std::lower_bound(
      flows_.begin(), flows_.end(), id,
      [](const Flow& f, std::uint64_t v) { return f.id < v; });
  return it != flows_.end() && it->id == id ? &*it : nullptr;
}

std::shared_ptr<Event> BandwidthLink::start_flow(double bytes,
                                                 double rate_cap) {
  if (rate_cap <= 0.0)
    throw std::invalid_argument("BandwidthLink: rate cap must be positive");
  auto done = std::make_shared<Event>(sim_);
  // Integrate up to now at the pre-join rates (completions sweep first, in
  // id order, exactly as before); the solve itself is deferred to the
  // batch flush so a same-timestamp dispatch burst pays for one.
  refresh_pending_ = advance(/*zero_width_sweep=*/true) || refresh_pending_;
  Flow f;
  f.id = next_id_++;
  f.total = bytes;
  f.remaining = bytes;
  f.cap = rate_cap;
  f.done = done;
  // A joiner already below its completion epsilon finishes at the next
  // sweeping event (possibly this timestamp, via a later join or capacity
  // change; otherwise its own tiny completion timer) — the historical
  // contract, reproduced exactly by the oracle.
  if (bytes <= completion_eps(bytes)) sweep_pending_ = true;
  by_cap_.insert(
      std::upper_bound(by_cap_.begin(), by_cap_.end(), CapEntry{rate_cap, f.id}),
      CapEntry{rate_cap, f.id});
  pending_joins_.push_back(f.id);
  flows_.push_back(std::move(f));  // ids are monotone: order stays sorted
  request_batch();
  return done;
}

bool BandwidthLink::advance(bool zero_width_sweep) {
  const double now = sim_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  // Progress only changes through dt > 0 integration, so the completion
  // sweep is skipped entirely for zero-width updates — unless a
  // sub-epsilon joiner is waiting and this event is allowed to sweep it.
  if (dt <= 0.0 && !(sweep_pending_ && zero_width_sweep)) return false;
  sweep_pending_ = false;
  // Stable compaction in flow-id order: completions trigger in id order,
  // so event sequence numbers (and therefore every downstream golden) are
  // unchanged.
  removed_scratch_.clear();
  std::size_t out = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    if (dt > 0.0) {
      const double rate = std::min(f.cap, fair_rate_);
      f.remaining = std::max(0.0, f.remaining - rate * dt);
    }
    if (f.remaining <= completion_eps(f.total)) {
      completed_bytes_ += f.total;
      removed_scratch_.push_back(f.id);
      f.done->trigger();
    } else {
      if (out != i) flows_[out] = std::move(f);
      ++out;
    }
  }
  flows_.resize(out);
  if (!removed_scratch_.empty()) {
    // removed_scratch_ is id-sorted (the sweep walks id order), so the cap
    // index compacts with one pass + binary membership tests.
    std::erase_if(by_cap_, [this](const CapEntry& e) {
      return std::binary_search(removed_scratch_.begin(),
                                removed_scratch_.end(), e.id);
    });
  }
  return true;
}

void BandwidthLink::solve(double fair_prev) {
  const std::size_t n = flows_.size();
  min_capped_finish_ = kUncapped;
  if (n == 0) {
    fair_rate_ = kUncapped;
    allocated_ = 0.0;
    capped_count_ = 0;
    pending_joins_.clear();
    return;
  }
  // Canonical boundary scan (mirrored bit-for-bit by the oracle in
  // tests/reference_link.hpp): walk caps in ascending (cap, id) order,
  // accumulating the cap-bound prefix in Kahan-compensated long double.
  // A flow is cap-bound iff its cap fits under the running fair share of
  // the residual; the running share is monotone non-decreasing along the
  // walk, so the scan stops at the first cap it cannot cover.  Clamping
  // the residual at zero guarantees the fair share is never negative — an
  // over-subscribed prefix cannot stall the uncapped flows behind it.
  long double sum = 0.0L;
  long double comp = 0.0L;
  std::size_t k = 0;
  double fair = kUncapped;
  while (k < n) {
    const double residual =
        std::max(0.0, capacity_ - static_cast<double>(sum));
    const double share = residual / static_cast<double>(n - k);
    if (by_cap_[k].cap > share) {
      fair = share;
      break;
    }
    const long double y = static_cast<long double>(by_cap_[k].cap) - comp;
    const long double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
    // The cap-bound completion candidate rides along with the scan, so
    // reschedule() never rescans the prefix.
    const Flow* f = find_flow(by_cap_[k].id);
    min_capped_finish_ =
        std::min(min_capped_finish_, f->remaining / by_cap_[k].cap);
    ++k;
  }
  capped_count_ = k;
  fair_rate_ = fair;  // kUncapped when every flow is cap-bound
  const double capped_sum = static_cast<double>(sum);
  allocated_ = k == n ? capped_sum
                      : capped_sum + static_cast<double>(n - k) * fair;
  // Fair-floor bookkeeping without touching the (possibly huge) fair set:
  // when the share dropped, the flows whose caps fall in (fair, fair_prev]
  // migrated cap-bound -> fair-share; they are contiguous in by_cap_ right
  // after the prefix.  Fold them (and any joiner that landed fair-side)
  // into the cached minimum — at a zero-width batch nobody else's
  // remaining has changed.
  if (fair_rate_ < fair_prev) {
    for (std::size_t i = k; i < n && by_cap_[i].cap <= fair_prev; ++i) {
      const Flow* f = find_flow(by_cap_[i].id);
      min_fair_remaining_ = std::min(min_fair_remaining_, f->remaining);
    }
  }
  for (const std::uint64_t id : pending_joins_) {
    const Flow* f = find_flow(id);  // null when swept sub-epsilon already
    if (f != nullptr && f->cap > fair_rate_)
      min_fair_remaining_ = std::min(min_fair_remaining_, f->remaining);
  }
  pending_joins_.clear();
}

void BandwidthLink::refresh_fair_floor() {
  min_fair_remaining_ = kUncapped;
  for (const Flow& f : flows_)
    if (f.cap > fair_rate_)
      min_fair_remaining_ = std::min(min_fair_remaining_, f.remaining);
  refresh_pending_ = false;
}

void BandwidthLink::reschedule() {
  const std::uint64_t gen = ++gen_;
  // min over flows of remaining/rate, assembled from the two cached
  // minima: fair flows share one rate (rounding is monotone, so dividing
  // the minimum equals the minimum of the divisions); cap-bound flows
  // carry theirs from the solve scan.
  double min_dt = min_capped_finish_;
  if (capped_count_ < flows_.size() && fair_rate_ > 0.0)
    min_dt = std::min(min_dt, min_fair_remaining_ / fair_rate_);
  if (!std::isfinite(min_dt)) return;  // link down or no flows
  // Guarantee strict time progress: a delay below one ulp of now() would
  // fire at the same timestamp and make no headway.
  const double now = sim_.now();
  if (now + min_dt <= now)
    min_dt = std::nextafter(now, std::numeric_limits<double>::infinity()) -
             now;
  sim_.schedule(min_dt, [this, gen] { on_timer(gen); });
}

void BandwidthLink::resolve() {
  batch_pending_ = false;  // this update subsumes any pending batch
  const double fair_prev = fair_rate_;
  solve(fair_prev);
  // A rising fair share shrinks the fair set, so the cached floor could
  // belong to a now-cap-bound flow; progress integration invalidates every
  // cached remaining.  Either way the floor must be recomputed.
  if (refresh_pending_ || fair_rate_ > fair_prev) refresh_fair_floor();
  reschedule();
}

void BandwidthLink::flush(bool zero_width_sweep) {
  refresh_pending_ = advance(zero_width_sweep) || refresh_pending_;
  resolve();
}

void BandwidthLink::request_batch() {
  if (batch_pending_) return;
  batch_pending_ = true;
  sim_.schedule(0.0, [this] {
    // An eager path (capacity change, timer) may have flushed the batch
    // already at this timestamp; the flag makes the callback a no-op then.
    if (batch_pending_) flush(/*zero_width_sweep=*/false);
  });
}

void BandwidthLink::on_timer(std::uint64_t gen) {
  if (gen != gen_) return;  // superseded by a later topology change
  flush(/*zero_width_sweep=*/true);
}

}  // namespace lobster::des
